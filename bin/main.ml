(* ocr — command-line front-end: generate workloads, solve optimum
   cycle mean / cost-to-time ratio problems, inspect graphs. *)

open Cmdliner

(* ----------------------------------------------------------------- *)
(* shared arguments                                                   *)
(* ----------------------------------------------------------------- *)

let graph_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"GRAPH" ~doc:"Input graph file (p/a line format).")

let algorithm_arg =
  let parse s =
    match Registry.of_name s with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown algorithm %S (expected one of: %s)" s
             (String.concat ", " (List.map Registry.name Registry.all))))
  in
  let print ppf a = Format.pp_print_string ppf (Registry.name a) in
  Arg.(
    value
    & opt (conv (parse, print)) Registry.Howard
    & info [ "a"; "algorithm" ] ~docv:"ALG"
        ~doc:
          "Algorithm: burns, ko, yto, howard, ho, karp, dg, lawler, karp2, \
           oa1, oa2.")

let objective_arg =
  Arg.(
    value
    & opt (enum [ ("min", Solver.Minimize); ("max", Solver.Maximize) ])
        Solver.Minimize
    & info [ "o"; "objective" ] ~docv:"OBJ" ~doc:"min or max.")

let problem_arg =
  Arg.(
    value
    & opt (enum [ ("mean", Solver.Cycle_mean); ("ratio", Solver.Cycle_ratio) ])
        Solver.Cycle_mean
    & info [ "p"; "problem" ] ~docv:"PROBLEM"
        ~doc:"mean (cycle mean) or ratio (cost-to-time ratio).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker parallelism: N-1 domains plus the driving thread.")

let check_jobs jobs =
  if jobs < 1 then begin
    prerr_endline "ocr: --jobs must be >= 1";
    exit 1
  end

(* .gr files use the DIMACS shortest-path format; anything else the
   native p/a format — the dispatch lives in Graph_io.load so every
   front-end (and the cluster workers) agrees on it *)
let load_graph = Graph_io.load

let emit output g =
  match output with
  | None -> print_string (Graph_io.to_string g)
  | Some path ->
    Graph_io.write_file path g;
    Printf.printf "wrote %d nodes, %d arcs to %s\n" (Digraph.n g)
      (Digraph.m g) path

(* ----------------------------------------------------------------- *)
(* gen                                                                *)
(* ----------------------------------------------------------------- *)

let gen_sprand =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  let m = Arg.(required & pos 1 (some int) None & info [] ~docv:"M") in
  let transits =
    Arg.(
      value
      & opt (pair ~sep:',' int int) (1, 1)
      & info [ "transits" ] ~docv:"LO,HI"
          ~doc:"Transit-time range (default 1,1 — a pure mean instance).")
  in
  let run n m seed transits output =
    emit output (Sprand.generate ~seed ~transits ~n ~m ())
  in
  Cmd.v
    (Cmd.info "sprand" ~doc:"SPRAND random graph (Hamiltonian cycle + random arcs).")
    Term.(const run $ n $ m $ seed_arg $ transits $ output_arg)

let gen_circuit =
  let name_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:"Benchmark name (s27 … s38584) or 'list' to enumerate.")
  in
  let run name seed output =
    if name = "list" then
      List.iter
        (fun (nm, r) -> Printf.printf "%-8s %5d registers\n" nm r)
        Circuit.benchmark_suite
    else
      try emit output (Circuit.benchmark ~seed name)
      with Not_found ->
        prerr_endline ("unknown circuit " ^ name);
        exit 1
  in
  Cmd.v
    (Cmd.info "circuit" ~doc:"Synthetic sequential-circuit benchmark stand-in.")
    Term.(const run $ name_arg $ seed_arg $ output_arg)

let gen_ring =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  let run n output = emit output (Families.ring n) in
  Cmd.v (Cmd.info "ring" ~doc:"Single directed cycle.")
    Term.(const run $ n $ output_arg)

let gen_cmd =
  Cmd.group (Cmd.info "gen" ~doc:"Generate workload graphs.")
    [ gen_sprand; gen_circuit; gen_ring ]

(* ----------------------------------------------------------------- *)
(* solve                                                              *)
(* ----------------------------------------------------------------- *)

let solve_cmd =
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Certify the result exactly.")
  in
  let show_stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print operation counts.")
  in
  let show_cycle =
    Arg.(value & flag & info [ "cycle" ] ~doc:"Print the witness cycle arcs.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Abort after MS milliseconds of wall time; exits 5 with a \
             timeout line (and the best partial bound, if any).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record tracing spans during the solve and write them to FILE \
             as Chrome trace-event JSON (open in Perfetto or \
             about://tracing).")
  in
  let approx =
    Arg.(
      value
      & opt (some float) None
      & info [ "approx" ] ~docv:"EPS"
          ~doc:
            "Answer with a certified interval [lo, hi] of width at most \
             EPS times the weight scale instead of the exact optimum \
             (the (1+ε)-approximation lane; see docs/APPROX.md).  Under \
             $(b,--deadline-ms) the interval degrades gracefully instead \
             of timing out.")
  in
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:
            "Also print the answer as an exact rational: a \
             $(b,lambda_num=)/$(b,lambda_den=) line, recomputed from the \
             witness cycle's integer weight and transit sums and \
             cross-checked against the solver's λ (see docs/EXACT.md).  \
             Incompatible with $(b,--approx).")
  in
  let run file algorithm objective problem verify show_stats show_cycle
      deadline_ms jobs trace approx exact =
    check_jobs jobs;
    (match approx with
    | Some eps when Result.is_error (Approx.validate_eps eps) ->
      prerr_endline "ocr: --approx must be a positive finite float";
      exit 1
    | _ -> ());
    if exact && approx <> None then begin
      prerr_endline
        "ocr: --exact does not apply to --approx (an interval answer has no \
         single rational certificate)";
      exit 1
    end;
    let g = load_graph file in
    (match trace with
    | Some _ ->
      Trace.configure ();
      Obs.enable ()
    | None -> ());
    let finish_trace () =
      Option.iter (fun path -> Trace.write_chrome_json path) trace
    in
    let budget =
      Option.map
        (fun ms ->
          Budget.create ~now:Unix.gettimeofday
            ~deadline_at:(Unix.gettimeofday () +. (ms /. 1000.0))
            ())
        deadline_ms
    in
    match approx with
    | Some eps -> (
      let stats = Stats.create () in
      match Approx.solve ~stats ?budget ~jobs ~problem ~objective ~eps g with
      | None ->
        finish_trace ();
        print_endline "acyclic graph: no cycle to optimize";
        exit 2
      | Some c ->
        finish_trace ();
        Printf.printf "lambda in [%s, %s] ([%.6f, %.6f])\n"
          (Ratio.to_string c.Approx.lo) (Ratio.to_string c.Approx.hi)
          (Ratio.to_float c.Approx.lo) (Ratio.to_float c.Approx.hi);
        Printf.printf "width = %g (target %g) certified = %b tests = %d rounds = %d\n"
          (Ratio.to_float c.Approx.hi -. Ratio.to_float c.Approx.lo)
          (eps *. c.Approx.scale) c.Approx.converged c.Approx.tests
          c.Approx.rounds;
        if show_cycle then
          Printf.printf "cycle: %s\n"
            (String.concat " "
               (List.map
                  (fun a ->
                    Printf.sprintf "%d->%d" (Digraph.src g a) (Digraph.dst g a))
                  c.Approx.witness));
        if show_stats then Format.printf "stats: %a@." Stats.pp stats;
        if verify then begin
          match Approx.recheck ~objective ~problem g c with
          | Ok () -> print_endline "certificate: OK"
          | Error e ->
            Printf.printf "certificate FAILED: %s\n" e;
            exit 3
        end)
    | None -> (
    match Solver.solve ~objective ~problem ?budget ~jobs ~algorithm g with
    | exception Solver.Deadline_exceeded { partial } ->
      finish_trace ();
      (match partial with
      | None -> print_endline "timeout: deadline exceeded"
      | Some r ->
        Printf.printf "timeout: deadline exceeded (best partial lambda = %s)\n"
          (Ratio.to_string r.Solver.lambda));
      exit 5
    | None ->
      finish_trace ();
      print_endline "acyclic graph: no cycle to optimize";
      exit 2
    | Some r ->
      finish_trace ();
      Printf.printf "lambda = %s (%.6f)\n"
        (Ratio.to_string r.Solver.lambda)
        (Ratio.to_float r.Solver.lambda);
      if exact then begin
        match
          Verify.rational_certificate ~problem g r.Solver.lambda r.Solver.cycle
        with
        | Ok cert ->
          Printf.printf "lambda_num=%d lambda_den=%d\n" (Ratio.num cert)
            (Ratio.den cert)
        | Error e ->
          Printf.printf "certificate FAILED: %s\n" e;
          exit 3
      end;
      if show_cycle then
        Printf.printf "cycle: %s\n"
          (String.concat " "
             (List.map
                (fun a ->
                  Printf.sprintf "%d->%d" (Digraph.src g a) (Digraph.dst g a))
                r.Solver.cycle));
      if show_stats then begin
        Format.printf "stats: %a@." Stats.pp r.Solver.stats;
        (* heap-based algorithms (ko, yto, oa2): break the aggregate
           heap-op count of Stats.pp down by operation, the comparison
           currency of the study's §4.2 *)
        let h = r.Solver.stats.Stats.heap in
        if Heap_stats.total h > 0 then
          Printf.printf
            "heap ops: inserts=%d extract_mins=%d decrease_keys=%d \
             deletes=%d melds=%d total=%d\n"
            h.Heap_stats.inserts h.Heap_stats.extract_mins
            h.Heap_stats.decrease_keys h.Heap_stats.deletes h.Heap_stats.melds
            (Heap_stats.total h)
      end;
      if verify then begin
        match Verify.certify_report ~objective ~problem g r with
        | Ok () -> print_endline "certificate: OK"
        | Error e ->
          Printf.printf "certificate FAILED: %s\n" e;
          exit 3
      end)
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Compute the optimum cycle mean or cost-to-time ratio of a graph.")
    Term.(
      const run $ graph_file_arg $ algorithm_arg $ objective_arg $ problem_arg
      $ verify $ show_stats $ show_cycle $ deadline_ms $ jobs_arg $ trace
      $ approx $ exact)

(* ----------------------------------------------------------------- *)
(* info                                                               *)
(* ----------------------------------------------------------------- *)

let info_cmd =
  let run file =
    let g = load_graph file in
    let scc = Scc.compute g in
    let cyclic = List.length (Scc.nontrivial_components g scc) in
    Printf.printf "nodes: %d\narcs: %d\n" (Digraph.n g) (Digraph.m g);
    if Digraph.m g > 0 then
      Printf.printf "weights: [%d, %d]\ntotal transit: %d\n"
        (Digraph.min_weight g) (Digraph.max_weight g) (Digraph.total_transit g);
    Printf.printf "strongly connected components: %d (%d cyclic)\n"
      scc.Scc.count cyclic;
    Printf.printf "strongly connected: %b\n" (Traversal.is_strongly_connected g)
  in
  Cmd.v (Cmd.info "info" ~doc:"Print basic graph statistics.")
    Term.(const run $ graph_file_arg)

(* ----------------------------------------------------------------- *)
(* critical                                                           *)
(* ----------------------------------------------------------------- *)

let critical_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit GraphViz with the critical arcs highlighted.")
  in
  let run file problem dot =
    let g = load_graph file in
    let objective = Solver.Minimize in
    match Solver.solve ~objective ~problem ~algorithm:Registry.Howard g with
    | None ->
      print_endline "acyclic graph";
      exit 2
    | Some r ->
      let den =
        match problem with
        | Solver.Cycle_mean -> fun _ -> 1
        | Solver.Cycle_ratio -> Digraph.transit g
      in
      let arcs = Critical.critical_arcs ~den g r.Solver.lambda in
      if dot then print_string (Graph_io.to_dot ~highlight:arcs g)
      else begin
        Printf.printf "lambda = %s\ncritical arcs (%d):\n"
          (Ratio.to_string r.Solver.lambda)
          (List.length arcs);
        List.iter
          (fun a ->
            Printf.printf "  #%d: %d -> %d (w=%d, t=%d)\n" a (Digraph.src g a)
              (Digraph.dst g a) (Digraph.weight g a) (Digraph.transit g a))
          arcs
      end
  in
  Cmd.v
    (Cmd.info "critical"
       ~doc:"Compute the critical subgraph (arcs on optimum cycles).")
    Term.(const run $ graph_file_arg $ problem_arg $ dot)

(* ----------------------------------------------------------------- *)
(* batch / serve (the ocr_engine front-ends)                          *)
(* ----------------------------------------------------------------- *)

let cache_size_arg =
  Arg.(
    value & opt int 256
    & info [ "cache-size" ] ~docv:"K"
        ~doc:"LRU result-cache capacity in entries; 0 disables caching.")

let wall_arg =
  Arg.(
    value & flag
    & info [ "wall" ]
        ~doc:"Append per-request wall times (nondeterministic) to responses.")

let write_telemetry tel csv json =
  let dump path contents =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)
  in
  Option.iter (fun p -> dump p (Telemetry.to_csv tel)) csv;
  Option.iter (fun p -> dump p (Telemetry.to_json tel)) json

let batch_cmd =
  let reqfile =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUESTS"
          ~doc:
            "Request file: one request per line, \
             $(i,graph-file [key=value ...]); '-' reads stdin.  Keys: \
             problem=mean|ratio, objective=min|max, algorithm=auto|<name>, \
             deadline-ms=<float>, verify=true|false.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-csv" ] ~docv:"FILE" ~doc:"Write telemetry as CSV.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-json" ] ~docv:"FILE" ~doc:"Write telemetry as JSON.")
  in
  let run reqfile jobs cache_size wall csv json =
    check_jobs jobs;
    let lines =
      if reqfile = "-" then (
        let acc = ref [] in
        (try
           while true do
             acc := input_line stdin :: !acc
           done
         with End_of_file -> ());
        List.rev !acc)
      else
        String.split_on_char '\n'
          (let ic = open_in reqfile in
           Fun.protect
             ~finally:(fun () -> close_in ic)
             (fun () -> really_input_string ic (in_channel_length ic)))
    in
    let reqs =
      lines
      |> List.map String.trim
      |> List.filter (fun line -> line <> "" && line.[0] <> '#')
      |> List.mapi (fun i line ->
             match Request.parse_spec line with
             | Error msg ->
               Printf.eprintf "request %d: %s\n" (i + 1) msg;
               exit 1
             | Ok spec -> (
               match load_graph spec.Request.path with
               | exception Sys_error e ->
                 Printf.eprintf "request %d: %s\n" (i + 1) e;
                 exit 1
               | g -> Request.make ~id:(i + 1) ~graph:g spec))
    in
    let eng = Engine.create ~jobs ~cache_size () in
    Fun.protect
      ~finally:(fun () -> Engine.shutdown eng)
      (fun () ->
        let responses = Engine.run_batch eng reqs in
        List.iter (fun r -> print_endline (Engine.response_line ~wall r)) responses;
        Serve_loop.print_telemetry eng stdout;
        write_telemetry (Engine.telemetry eng) csv json)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Solve a batch of requests in parallel with result caching; \
          responses come back in request order, byte-identical across \
          $(b,--jobs) settings.")
    Term.(
      const run $ reqfile $ jobs_arg $ cache_size_arg $ wall_arg $ csv $ json)

let serve_cmd =
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write Prometheus text-format metrics (request counters, \
             cache hits/misses, solve-latency histogram, pool health) to \
             FILE on exit.  The 'metrics' protocol line prints the same \
             exposition to stdout at any point of the session.")
  in
  let run jobs cache_size wall metrics =
    check_jobs jobs;
    let eng = Engine.create ~jobs ~cache_size () in
    let dump_metrics () =
      Option.iter
        (fun path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc
                (Metrics.to_prometheus (Engine.metrics_snapshot eng))))
        metrics
    in
    Fun.protect
      ~finally:(fun () ->
        dump_metrics ();
        Engine.shutdown eng)
      (fun () -> Serve_loop.serve ~wall eng stdin stdout)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Line-protocol solve server on stdin/stdout.  Each input line is a \
          request ($(i,graph-file [key=value ...])); responses are emitted \
          as they complete.  'telemetry' prints counters, 'metrics' prints \
          Prometheus text, 'quit' or EOF exits.")
    Term.(const run $ jobs_arg $ cache_size_arg $ wall_arg $ metrics_arg)

(* ----------------------------------------------------------------- *)
(* stream (the ocr_dyn front-end)                                     *)
(* ----------------------------------------------------------------- *)

let stream_cmd =
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"JOURNAL"
          ~doc:
            "Process request lines from JOURNAL instead of stdin, then exit \
             — deterministic reproduction of a recorded session.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append one canonical protocol line per applied update and per \
             query to FILE (an $(b,--replay)able journal).")
  in
  let metrics_every_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-every" ] ~docv:"N"
          ~doc:
            "After every N handled requests, emit one NDJSON metrics \
             snapshot line (counters plus a solve-latency digest) to \
             stdout.")
  in
  let run file problem objective jobs cache_size replay journal metrics_every =
    check_jobs jobs;
    (match metrics_every with
    | Some n when n < 1 ->
      prerr_endline "ocr: --metrics-every must be >= 1";
      exit 1
    | _ -> ());
    let g = load_graph file in
    let session = Dyn.create ~problem ~objective ~jobs g in
    let jout = Option.map open_out journal in
    let log =
      Option.map (fun oc line -> output_string oc (line ^ "\n")) jout
    in
    let srv = Dyn_serve.create ~cache_size ?journal:log session in
    (* one request line -> one response line; malformed lines answer
       {"ok":false,...} and the stream continues *)
    let drain ic = Serve_loop.stream ?metrics_every srv ic stdout in
    Fun.protect
      ~finally:(fun () ->
        Option.iter close_out jout;
        Dyn.close session)
      (fun () ->
        match replay with
        | Some path ->
          let ic = open_in path in
          Fun.protect ~finally:(fun () -> close_in ic) (fun () -> drain ic)
        | None -> drain stdin)
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Dynamic-session server on stdin/stdout speaking an NDJSON line \
          protocol: one update ($(i,set_weight), $(i,set_transit), \
          $(i,add_arc), $(i,remove_arc)) or $(i,query) per line, answered \
          with epoch, exact lambda and witness.  Queries re-solve only the \
          components the updates dirtied, warm-started from the last \
          policy; per-epoch structural fingerprints feed an LRU answer \
          cache.  See docs/DYN.md for the protocol.")
    Term.(
      const run $ graph_file_arg $ problem_arg $ objective_arg $ jobs_arg
      $ cache_size_arg $ replay_arg $ journal_arg $ metrics_every_arg)

(* ----------------------------------------------------------------- *)
(* cluster (sharded multi-process serving)                            *)
(* ----------------------------------------------------------------- *)

let cluster_cmd =
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:"Number of worker processes (each with its own cache and pool).")
  in
  let queue_depth_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Per-worker in-flight bound.  Requests routed to a full worker \
             are shed with {\"ok\":false,\"err\":\"overloaded\",...}.")
  in
  let request_timeout_arg =
    Arg.(
      value & opt float 30_000.
      & info [ "request-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Kill and respawn a worker that spends longer than MS on one \
             request (<= 0 disables).")
  in
  let drain_timeout_arg =
    Arg.(
      value & opt float 5_000.
      & info [ "drain-timeout-ms" ] ~docv:"MS"
          ~doc:"Grace period for in-flight work on shutdown.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the final aggregated Prometheus exposition to FILE on \
             exit.  The 'metrics' protocol line prints the same aggregation \
             to stdout at any point.")
  in
  let trace_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "Record a distributed trace of every request: the router and \
             each worker write per-process Chrome trace files \
             (router.json, worker-N.json) into DIR on exit.  Merge them \
             into one timeline with $(b,ocr trace merge).")
  in
  let access_log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one NDJSON line per request to FILE: trace id, worker, \
             shard key, cache hit, queue depth at admission, per-phase \
             milliseconds and status.  An unwritable FILE disables the log \
             (with a note on stderr); the router keeps serving.")
  in
  let run workers jobs cache_size wall queue_depth request_timeout_ms
      drain_timeout_ms metrics_file trace_dir access_log =
    if workers < 1 then begin
      prerr_endline "ocr: --workers must be >= 1";
      exit 1
    end;
    check_jobs jobs;
    let cfg =
      Router.config ~workers ~jobs ~cache_size ~queue_depth
        ~request_timeout_ms ~drain_timeout_ms ~wall ?metrics_file ?trace_dir
        ?access_log ()
    in
    Router.run cfg Unix.stdin stdout
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Sharded multi-process serving on stdin/stdout: a router forks \
          $(b,--workers) shared-nothing worker processes and multiplexes \
          the $(b,serve) and $(b,stream) line protocols across them.  \
          One-shot solve lines are routed by structural graph fingerprint \
          (cache-affine, consistent across worker loss); \
          {\"op\":\"open\",\"session\":ID,\"graph\":FILE,...} opens a sticky \
          dyn session whose subsequent lines carry the \"session\" field.  \
          Crashed workers are respawned and their sessions replayed from \
          the router's update journal; 'status' prints per-worker pids, \
          'metrics' a cluster-wide aggregated exposition.  $(b,--cache-size) \
          is the cluster-total LRU budget, divided across workers.  See \
          docs/CLUSTER.md.")
    Term.(
      const run $ workers_arg $ jobs_arg $ cache_size_arg $ wall_arg
      $ queue_depth_arg $ request_timeout_arg $ drain_timeout_arg
      $ metrics_arg $ trace_dir_arg $ access_log_arg)

(* the hidden worker-side mode the router re-execs; not for humans *)
let cluster_worker_cmd =
  let worker_id_arg =
    Arg.(value & opt int 0 & info [ "worker-id" ] ~docv:"N" ~doc:"Worker index.")
  in
  let worker_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write this worker's trace file on exit.")
  in
  let run worker_id jobs cache_size wall trace_file =
    check_jobs jobs;
    Cluster_worker.run ~wall ~jobs ~cache_size ?trace_file ~worker_id stdin
      stdout
  in
  Cmd.v
    (Cmd.info "cluster-worker" ~docs:Manpage.s_none
       ~doc:"Internal: one cluster worker process (spawned by 'cluster').")
    Term.(
      const run $ worker_id_arg $ jobs_arg $ cache_size_arg $ wall_arg
      $ worker_trace_arg)

(* ----------------------------------------------------------------- *)
(* trace                                                              *)
(* ----------------------------------------------------------------- *)

let trace_cmd =
  let trace_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:"Chrome trace-event JSON file (from $(b,ocr solve --trace)).")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Print at most N rows (default 10).")
  in
  (* the per-request section only appears when the trace carries the
     router's rt.* phase markers, so plain `ocr solve --trace` output
     summaries are unchanged *)
  let print_attribution contents =
    match Trace_read.attribute contents with
    | Error _ | Ok [] -> ()
    | Ok rows ->
      let ms f = f /. 1000.0 in
      Printf.printf "\nper-request critical path (%d requests):\n"
        (List.length rows);
      Printf.printf "%-8s %12s %12s %12s %12s %12s\n" "trace" "dispatch(ms)"
        "queue(ms)" "solve(ms)" "serial(ms)" "total(ms)";
      List.iter
        (fun r ->
          Printf.printf "%-8d %12.3f %12.3f %12.3f %12.3f %12.3f\n"
            r.Trace_read.rp_trace
            (ms r.Trace_read.rp_dispatch_us)
            (ms r.Trace_read.rp_queue_us)
            (ms r.Trace_read.rp_solve_us)
            (ms r.Trace_read.rp_serialize_us)
            (ms r.Trace_read.rp_total_us))
        rows;
      let totals = List.map (fun r -> r.Trace_read.rp_total_us) rows in
      Printf.printf "total(ms) p50 %.3f  p95 %.3f  p99 %.3f\n"
        (ms (Trace_read.percentile totals 0.50))
        (ms (Trace_read.percentile totals 0.95))
        (ms (Trace_read.percentile totals 0.99))
  in
  let run file top =
    match Trace_read.read_file file with
    | Error msg ->
      Printf.eprintf "ocr: trace summarize: %s\n" msg;
      exit 1
    | Ok contents -> (
      match Trace_read.summarize contents with
      | Error msg ->
        Printf.eprintf "ocr: trace summarize: %s\n" msg;
        exit 1
      | Ok rows ->
        Printf.printf "%-24s %8s %14s %14s\n" "span" "count" "total(ms)"
          "self(ms)";
        List.iteri
          (fun i r ->
            if i < top then
              Printf.printf "%-24s %8d %14.3f %14.3f\n" r.Trace_read.sr_name
                r.Trace_read.sr_count
                (r.Trace_read.sr_total_us /. 1000.0)
                (r.Trace_read.sr_self_us /. 1000.0))
          rows;
        print_attribution contents)
  in
  let summarize =
    Cmd.v
      (Cmd.info "summarize"
         ~doc:
           "Aggregate a trace file's spans by name and print the top spans \
            by self-time (total minus directly nested spans); for traces \
            from a traced $(b,ocr cluster) run, also print per-request \
            critical-path attribution (dispatch/queue/solve/serialize \
            milliseconds per request, with p50/p95/p99 totals).  A \
            malformed file is a structured error and exit 1.")
      Term.(const run $ trace_file $ top)
  in
  let merge_inputs =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"TRACE"
          ~doc:
            "Per-process trace files from one traced cluster run \
             (router.json and worker-N.json).")
  in
  let merge_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the merged trace to FILE (default: stdout).")
  in
  let run_merge files out =
    let inputs =
      List.map
        (fun path ->
          match Trace_read.read_file path with
          | Error msg ->
            Printf.eprintf "ocr: trace merge: %s\n" msg;
            exit 1
          | Ok contents -> (Filename.basename path, contents))
        files
    in
    match Trace_read.merge inputs with
    | Error msg ->
      Printf.eprintf "ocr: trace merge: %s\n" msg;
      exit 1
    | Ok merged -> (
      match out with
      | None -> print_string merged
      | Some path -> (
        try
          let oc = open_out path in
          output_string oc merged;
          close_out oc
        with Sys_error e ->
          Printf.eprintf "ocr: trace merge: %s\n" e;
          exit 1))
  in
  let merge =
    Cmd.v
      (Cmd.info "merge"
         ~doc:
           "Align the per-process trace files of one traced $(b,ocr \
            cluster) run (router.json, worker-N.json from \
            $(b,--trace-dir)) into a single Chrome trace: worker \
            timestamps are shifted onto the router's clock using the \
            recorded handshake offsets, and each request becomes a flow \
            arrow from the router's dispatch to the worker that solved \
            it.  Open the result in Perfetto.")
      Term.(const run_merge $ merge_inputs $ merge_out)
  in
  Cmd.group (Cmd.info "trace" ~doc:"Inspect recorded trace files.")
    [ summarize; merge ]

(* ----------------------------------------------------------------- *)
(* compare                                                            *)
(* ----------------------------------------------------------------- *)

let compare_cmd =
  let run file objective problem =
    let g = load_graph file in
    Printf.printf "%-8s %14s %10s %8s %12s %10s\n" "alg" "lambda" "time(ms)"
      "iter" "relax/arcs" "heap-ops";
    let reference = ref None in
    let disagreements = ref 0 in
    List.iter
      (fun algorithm ->
        let t0 = Unix.gettimeofday () in
        match Solver.solve ~objective ~problem ~algorithm g with
        | None ->
          print_endline "acyclic graph: no cycle to optimize";
          exit 2
        | Some r ->
          let dt = 1000.0 *. (Unix.gettimeofday () -. t0) in
          (match !reference with
          | None -> reference := Some r.Solver.lambda
          | Some l ->
            if not (Ratio.equal l r.Solver.lambda) then incr disagreements);
          Printf.printf "%-8s %14s %10.2f %8d %12d %10d\n"
            (Registry.display_name algorithm)
            (Ratio.to_string r.Solver.lambda)
            dt r.Solver.stats.Stats.iterations
            (r.Solver.stats.Stats.relaxations + r.Solver.stats.Stats.arcs_visited)
            (Heap_stats.total r.Solver.stats.Stats.heap))
      Registry.all;
    if !disagreements > 0 then begin
      Printf.printf "DISAGREEMENT between algorithms (%d)!\n" !disagreements;
      exit 4
    end
    else print_endline "all algorithms agree"
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run every algorithm of the study on a graph and compare answers, \
          times and operation counts.")
    Term.(const run $ graph_file_arg $ objective_arg $ problem_arg)

let () =
  let doc = "Optimum cycle mean and cost-to-time ratio algorithms (DAC'99 study)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "ocr" ~version:"1.0.0" ~doc)
          [
            gen_cmd; solve_cmd; batch_cmd; serve_cmd; stream_cmd; cluster_cmd;
            cluster_worker_cmd; info_cmd; critical_cmd; compare_cmd; trace_cmd;
          ]))

#!/bin/sh
# End-to-end cluster smoke: boot a 2-worker cluster, push mixed
# traffic (one-shot solves + a dyn session), SIGKILL one worker, and
# check the router survives, the session answers bit-identically after
# journal replay, and the aggregated exposition reports the restart.
# Used by CI; runnable locally from the repo root after `dune build`.
set -eu

OCR=${OCR_BIN:-_build/default/bin/main.exe}
[ -x "$OCR" ] || { echo "cluster_smoke: $OCR not built" >&2; exit 2; }
case "$OCR" in /*) ;; *) OCR="$PWD/$OCR" ;; esac

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT
cd "$dir"

fail() { echo "cluster_smoke: FAIL: $1" >&2; sed 's/^/  out: /' out.log >&2; sed 's/^/  err: /' err.log >&2; exit 1; }

# wait until a pattern shows up in out.log (10s budget)
waitlog() {
  for _ in $(seq 1 100); do
    grep -q "$1" out.log && return 0
    sleep 0.1
  done
  fail "timeout waiting for $1"
}

"$OCR" gen sprand 64 192 --seed 7 --output g.ocr >/dev/null
"$OCR" gen ring 5 --output r.ocr >/dev/null

mkfifo req
"$OCR" cluster --workers 2 --request-timeout-ms 2000 < req > out.log 2> err.log &
cluster=$!
exec 3>req

# mixed traffic: solves on both graphs, a session (id "a", pinned to worker 1) with an update and a query
printf '%s\n' g.ocr r.ocr \
  '{"op":"open","session":"a","graph":"g.ocr"}' \
  '{"op":"set_weight","session":"a","arc":0,"weight":-3}' \
  '{"op":"query","session":"a"}' >&3
waitlog '"lambda"'
baseline=$(grep '"lambda"' out.log | tail -1)

# SIGKILL the worker hosting session "a" (worker 1; pinned by
# test_cluster.ml, same placement as test/cram/cluster.t relies on)
printf 'status\n' >&3
waitlog '"pid1"'
pid=$(grep -o '"pid1":[0-9]*' out.log | tail -1 | cut -d: -f2)
kill -9 "$pid"
for _ in $(seq 1 100); do
  printf 'status\n' >&3
  sleep 0.1
  grep -q '"restarts1":1' out.log && break
done
grep -q '"restarts1":1' out.log || fail "worker never respawned"

# the replayed session must answer bit-identically
printf '%s\n' '{"op":"query","session":"a"}' >&3
for _ in $(seq 1 100); do
  [ "$(grep -c '"lambda"' out.log)" -ge 2 ] && break
  sleep 0.1
done
replayed=$(grep '"lambda"' out.log | tail -1)
[ "$replayed" = "$baseline" ] || fail "replayed answer differs: $replayed vs $baseline"

# aggregated exposition: restart attributed to worker 1, solves counted
printf 'metrics\n' >&3
waitlog '^ocr_worker_sessions'
grep -q '^ocr_worker_restarts_total 1$' out.log || fail "aggregate restart count"
grep -q '^ocr_worker_restarts_total{worker="1"} 1$' out.log || fail "labeled restart count"
grep -q '^ocr_worker_up{worker="0"} 1$' out.log || fail "worker 0 up gauge"
grep -q '^ocr_requests_total' out.log || fail "merged engine counters missing"

# the per-worker latency histograms ride the same exposition
grep -q '^ocr_queue_wait_ms_bucket{worker="0",le="+Inf"}' out.log \
  || fail "queue wait histogram missing"
grep -q '^ocr_request_total_ms_count{worker="' out.log \
  || fail "request total histogram missing"

printf 'quit\n' >&3
exec 3>&-
wait "$cluster" || fail "router exited nonzero"

# ------------------------------------------------------------------
# traced session: every request must appear in BOTH the router's and
# a worker's track of the merged trace, phases must land in the
# access log, and summarize must attribute the critical path
# ------------------------------------------------------------------
mkdir traces
mkfifo req2
"$OCR" cluster --workers 2 --trace-dir traces --access-log access.ndjson \
  < req2 > out2.log 2> err2.log &
cluster=$!
exec 4>req2
printf '%s\n' g.ocr r.ocr g.ocr quit >&4
exec 4>&-
wait "$cluster" || fail "traced router exited nonzero"

[ -s traces/router.json ] || fail "router trace missing"
[ -s traces/worker-0.json ] || fail "worker 0 trace missing"
[ -s traces/worker-1.json ] || fail "worker 1 trace missing"

"$OCR" trace merge traces/router.json traces/worker-0.json \
  traces/worker-1.json -o merged.json || fail "trace merge failed"

# each of the three requests: router span + worker span + flow pair
for id in 1 2 3; do
  grep -q "\"name\":\"rt.request\",\"cat\":\"ocr\",\"ph\":\"b\",\"id\":\"$id\"" merged.json \
    || fail "request $id missing from the router track"
  grep -q "\"name\":\"engine.request\",\"cat\":\"ocr\",\"ph\":\"b\",\"id\":\"$id\"" merged.json \
    || fail "request $id missing from every worker track"
  grep -q "\"ph\":\"s\",\"id\":\"$id\"" merged.json \
    || fail "request $id has no flow start"
  grep -q "\"ph\":\"f\",\"id\":\"$id\"" merged.json \
    || fail "request $id has no flow end"
done

# access log: one line per request, every field present, ids propagate
[ "$(wc -l < access.ndjson)" -eq 3 ] || fail "access log line count"
for id in 1 2 3; do
  grep -q "\"trace\":$id,\"req\":$id," access.ndjson \
    || fail "access log misses request $id"
done
grep -vq '"dispatch_ms":' access.ndjson \
  && fail "access log line without phase fields"
grep -cq '"status":"ok"' access.ndjson || fail "access log status"

# summarize attributes the per-request critical path over the merge
"$OCR" trace summarize merged.json | grep -q 'per-request critical path (3 requests)' \
  || fail "per-request attribution missing"

echo "cluster_smoke: OK (baseline == replayed: $baseline; 3 traced requests merged)"

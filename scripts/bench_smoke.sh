#!/bin/sh
# The CI bench smoke in one pass: every smoke-tier experiment at
# --seeds 1 writing bench-eNN.json (experiments without a JSON emitter
# just ignore the flag), then every applicable check_regress gate —
# the E14 multicore-speedup promise and each committed BENCH_pr*.json
# baseline against the file this run just wrote.  Timings gate loose
# (2.5x + 1 ms slack; CI boxes are noisy and differ from the box that
# recorded the baselines), the identical / exact_matches_float flags
# gate strict.  Used by CI; runnable locally from the repo root after
# `dune build`.
set -eu

run() { dune exec bench/main.exe -- "$@"; }
gate() { dune exec bench/check_regress.exe -- "$@"; }

for e in 1 11 12 13 14 15 16 17 18 19; do
  run --only "E$e" --seeds 1 --bench-json "bench-e$e.json"
done

# the multicore promise: on a >=4-core host the E14 giant-SCC sweep
# must show jobs=4 at least 1.2x over jobs=1 (passes with a notice on
# smaller hosts, where the curve cannot physically show a speedup)
gate --speedup bench-e14.json 4 1.2

# committed baselines vs this run.  BENCH_pr7.json supersedes
# BENCH_pr4.json as the E14 baseline (same workload, recorded after
# the Bigarray CSR + adaptive-granularity rework); BENCH_pr9.json's
# exact_matches_float flags are the zero-tolerance exact-answer gate;
# BENCH_pr10.json gates the E19 cluster-observability run (identical
# and access_complete strict; its workers=2 timing skips when the
# host core count differs from the recording box).
gate \
  BENCH_pr2.json bench-e12.json \
  BENCH_pr3.json bench-e13.json \
  BENCH_pr7.json bench-e14.json \
  BENCH_pr5.json bench-e15.json \
  BENCH_pr6.json bench-e16.json \
  BENCH_pr8.json bench-e17.json \
  BENCH_pr9.json bench-e18.json \
  BENCH_pr10.json bench-e19.json

echo "bench_smoke: OK"

(* Wall-clock measurement helpers for the experiment tables.  The
   Bechamel microbenchmark suite (see Micro) covers the
   statistically careful per-call estimates; the tables measure whole
   solver runs, which last milliseconds to minutes, so a monotonic
   clock around each run is the right tool. *)

let now_ns () = Monotonic_clock.now ()

let time_once f =
  let t0 = now_ns () in
  let r = f () in
  let t1 = now_ns () in
  (r, Int64.to_float (Int64.sub t1 t0) /. 1e6)

(* Median of an odd number of repetitions, in milliseconds.  Cheap runs
   are repeated to dampen noise; anything over [rep_threshold_ms] is
   measured once. *)
let time_ms ?(reps = 3) ?(rep_threshold_ms = 200.0) f =
  let _, first = time_once f in
  if first >= rep_threshold_ms || reps <= 1 then first
  else begin
    let samples = ref [ first ] in
    for _ = 2 to reps do
      let _, dt = time_once f in
      samples := dt :: !samples
    done;
    let sorted = List.sort compare !samples in
    List.nth sorted (List.length sorted / 2)
  end

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

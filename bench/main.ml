(* Benchmark harness entry point.

     dune exec bench/main.exe                 # quick suite, all experiments
     dune exec bench/main.exe -- --full       # paper-scale sizes
     dune exec bench/main.exe -- --only E5    # one experiment
     dune exec bench/main.exe -- --micro      # Bechamel microbenchmarks
     dune exec bench/main.exe -- --seeds 5    # more repetitions *)

let () =
  let full = ref false in
  let micro = ref false in
  let only : string list ref = ref [] in
  let seeds = ref 0 in
  let args =
    [
      ("--full", Arg.Set full, " paper-scale sizes (512..8192)");
      ("--micro", Arg.Set micro, " also run the Bechamel microbenchmarks");
      ( "--only",
        Arg.String (fun s -> only := String.uppercase_ascii s :: !only),
        "EK run only the given experiment (repeatable): E1..E18" );
      ("--seeds", Arg.Set_int seeds, "K number of random seeds per cell");
      ( "--csv",
        Arg.String (fun dir -> Tables.csv_dir := Some dir),
        "DIR also write every table as DIR/<id>.csv" );
      ( "--bench-json",
        Arg.String (fun f -> Experiments.bench_json_path := Some f),
        "FILE write E12..E18 numbers as machine-readable JSON" );
    ]
  in
  Arg.parse (Arg.align args)
    (fun s -> raise (Arg.Bad ("unexpected argument " ^ s)))
    "ocr benchmark harness — regenerates the DAC'99 evaluation";
  let cfg =
    if !full then Experiments.full_config else Experiments.quick_config
  in
  let cfg =
    if !seeds > 0 then
      { cfg with Experiments.seeds = List.init !seeds (fun i -> i + 1) }
    else cfg
  in
  Printf.printf
    "ocr benchmark harness — %s mode; sizes %s; densities %s; %d seed(s)\n"
    (if !full then "full" else "quick")
    (String.concat "," (List.map string_of_int cfg.Experiments.sizes))
    (String.concat ","
       (List.map (Printf.sprintf "%.1f") cfg.Experiments.densities))
    (List.length cfg.Experiments.seeds);
  let selected =
    match !only with
    | [] -> Experiments.all
    | ids -> List.filter (fun (id, _) -> List.mem id ids) Experiments.all
  in
  if selected = [] then begin
    prerr_endline "no experiment matches --only (expected E1..E18)";
    exit 1
  end;
  List.iter
    (fun (id, f) ->
      Printf.printf "\n=== %s ===\n%!" id;
      let t0 = Unix.gettimeofday () in
      f cfg;
      Printf.printf "[%s done in %.1fs]\n%!" id (Unix.gettimeofday () -. t0))
    selected;
  if !micro then Micro.run ()

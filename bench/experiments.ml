(* The experiment suite E1-E8 (see DESIGN.md §2): every table of the
   paper's evaluation (Table 2) and every observation of §4 backed by
   tech report data is regenerated here, plus the ratio-problem and
   Howard-bound extensions. *)

type config = {
  sizes : int list;         (* node counts n *)
  densities : float list;   (* m / n *)
  seeds : int list;
  cell_budget_ms : float;   (* one-seed soft budget per (alg, instance) *)
  circuits : (string * int) list;
}

let quick_config =
  {
    sizes = [ 256; 512; 1024 ];
    densities = [ 1.0; 1.5; 2.0; 2.5; 3.0 ];
    seeds = [ 1; 2; 3 ];
    cell_budget_ms = 5_000.0;
    circuits =
      List.filter (fun (_, r) -> r <= 650) Circuit.benchmark_suite;
  }

let full_config =
  {
    sizes = [ 512; 1024; 2048; 4096; 8192 ];
    densities = [ 1.0; 1.5; 2.0; 2.5; 3.0 ];
    seeds = [ 1; 2; 3 ];
    cell_budget_ms = 60_000.0;
    circuits = Circuit.benchmark_suite;
  }

let instance ~n ~density ~seed =
  let m = max n (int_of_float (Float.round (density *. float_of_int n))) in
  Sprand.generate ~seed ~n ~m ()

let grid cfg f =
  List.iter
    (fun n -> List.iter (fun density -> f ~n ~density) cfg.densities)
    cfg.sizes

(* memory guard: the Karp-table family allocates (n+1)·n words per
   table; refuse beyond this budget, as the paper's N/A entries did *)
let memory_budget_words = 600_000_000

let table_words n = (n + 1) * n

let needs_too_much_memory alg n =
  match alg with
  | Registry.Karp | Registry.Dg -> table_words n > memory_budget_words
  | Registry.Ho -> 2 * table_words n > memory_budget_words
  | Registry.Burns | Registry.Ko | Registry.Yto | Registry.Howard
  | Registry.Lawler | Registry.Karp2 | Registry.Oa1 | Registry.Oa2 -> false

(* per-(algorithm, density) blow-up memo: once an algorithm exceeds 5x
   the cell budget at some n, larger n at the same density are skipped,
   like the paper's "could not get a result in a day" entries *)
let blown : (string * float, unit) Hashtbl.t = Hashtbl.create 16

let run_cell cfg ~alg ~n ~density =
  if needs_too_much_memory alg n then None
  else if Hashtbl.mem blown (Registry.name alg, density) then None
  else begin
    let times = ref [] in
    let budget_hit = ref false in
    List.iter
      (fun seed ->
        if not !budget_hit then begin
          let g = instance ~n ~density ~seed in
          let dt =
            Timing.time_ms ~reps:(if n <= 512 then 3 else 1) (fun () ->
                ignore (Registry.minimum_cycle_mean alg g))
          in
          times := dt :: !times;
          if dt > cfg.cell_budget_ms then budget_hit := true
        end)
      cfg.seeds;
    let avg = Timing.mean !times in
    if avg > 5.0 *. cfg.cell_budget_ms then
      Hashtbl.replace blown (Registry.name alg, density) ();
    Some avg
  end

(* ------------------------------------------------------------------ *)
(* E1: the minimum cycle mean vs the graph parameters (§4.1)           *)
(* ------------------------------------------------------------------ *)

let e1 cfg =
  let rows = ref [] in
  grid cfg (fun ~n ~density ->
      let lambdas =
        List.map
          (fun seed ->
            let g = instance ~n ~density ~seed in
            let lambda, _ = Registry.minimum_cycle_mean Registry.Howard g in
            Ratio.to_float lambda)
          cfg.seeds
      in
      rows :=
        [
          string_of_int n;
          Printf.sprintf "%.1f" density;
          Printf.sprintf "%.1f" (Timing.mean lambdas);
        ]
        :: !rows);
  Tables.print
    ~title:
      "E1 (§4.1): minimum cycle mean on SPRAND graphs — nearly independent \
       of n, decreasing in density m/n"
    ~header:[ "n"; "m/n"; "avg lambda*" ]
    (List.rev !rows);
  print_endline
    "  expectation: each column block shows lambda* shrinking as m/n grows,\n\
    \  and staying within the same range as n changes at fixed density."

(* ------------------------------------------------------------------ *)
(* E2: KO vs YTO heap operations (§4.2)                                *)
(* ------------------------------------------------------------------ *)

let e2 cfg =
  let rows = ref [] in
  grid cfg (fun ~n ~density ->
      let acc_ko = Stats.create () and acc_yto = Stats.create () in
      let t_ko = ref [] and t_yto = ref [] in
      List.iter
        (fun seed ->
          let g = instance ~n ~density ~seed in
          let s = Stats.create () in
          let dt = Timing.time_ms (fun () -> ignore (Ko.minimum_cycle_mean ~stats:s g)) in
          (* time_ms may run the solver several times; rebuild stats once *)
          Stats.reset s;
          ignore (Ko.minimum_cycle_mean ~stats:s g);
          Stats.add acc_ko s;
          t_ko := dt :: !t_ko;
          let s = Stats.create () in
          let dt = Timing.time_ms (fun () -> ignore (Yto.minimum_cycle_mean ~stats:s g)) in
          Stats.reset s;
          ignore (Yto.minimum_cycle_mean ~stats:s g);
          Stats.add acc_yto s;
          t_yto := dt :: !t_yto)
        cfg.seeds;
      let k = List.length cfg.seeds in
      let per x = x / k in
      rows :=
        [
          string_of_int n;
          Printf.sprintf "%.1f" density;
          string_of_int (per acc_ko.Stats.iterations);
          string_of_int (per acc_ko.Stats.heap.Heap_stats.inserts);
          string_of_int (per acc_yto.Stats.heap.Heap_stats.inserts);
          string_of_int (per acc_ko.Stats.heap.Heap_stats.decrease_keys);
          string_of_int (per acc_yto.Stats.heap.Heap_stats.decrease_keys);
          Tables.fmt_ms (Timing.mean !t_ko);
          Tables.fmt_ms (Timing.mean !t_yto);
        ]
        :: !rows);
  Tables.print
    ~title:
      "E2 (§4.2): KO vs YTO — same pivots, fewer heap operations for YTO \
       (savings grow with density)"
    ~header:
      [ "n"; "m/n"; "pivots"; "KO ins"; "YTO ins"; "KO dec"; "YTO dec";
        "KO ms"; "YTO ms" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E3: iteration counts (§4.3)                                         *)
(* ------------------------------------------------------------------ *)

let e3 cfg =
  let rows = ref [] in
  grid cfg (fun ~n ~density ->
      let iters solve =
        let xs =
          List.map
            (fun seed ->
              let g = instance ~n ~density ~seed in
              let s = Stats.create () in
              ignore (solve ~stats:s g);
              s)
            cfg.seeds
        in
        xs
      in
      let avg f xs =
        List.fold_left (fun a s -> a + f s) 0 xs / List.length xs
      in
      let burns = iters (fun ~stats g -> Burns.minimum_cycle_mean ~stats g) in
      let ko = iters (fun ~stats g -> Ko.minimum_cycle_mean ~stats g) in
      let yto = iters (fun ~stats g -> Yto.minimum_cycle_mean ~stats g) in
      let howard = iters (fun ~stats g -> Howard.minimum_cycle_mean ~stats g) in
      let ho = iters (fun ~stats g -> Ho.minimum_cycle_mean ~stats g) in
      rows :=
        [
          string_of_int n;
          Printf.sprintf "%.1f" density;
          string_of_int (avg (fun s -> s.Stats.iterations) burns);
          string_of_int (avg (fun s -> s.Stats.iterations) ko);
          string_of_int (avg (fun s -> s.Stats.iterations) yto);
          string_of_int (avg (fun s -> s.Stats.iterations) howard);
          string_of_int (avg (fun s -> s.Stats.level) ho);
        ]
        :: !rows);
  Tables.print
    ~title:
      "E3 (§4.3): iterations to convergence — KO/YTO around n/2, Burns \
       fewer, Howard drastically few, HO's terminal level k << n"
    ~header:[ "n"; "m/n"; "Burns"; "KO"; "YTO"; "Howard"; "HO k" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E4: the Karp family work counts (§4.4)                              *)
(* ------------------------------------------------------------------ *)

let e4 cfg =
  let rows = ref [] in
  let karp_family g =
    let sk = Stats.create () and sd = Stats.create () and s2 = Stats.create () in
    ignore (Karp.minimum_cycle_mean ~stats:sk g);
    ignore (Dg.minimum_cycle_mean ~stats:sd g);
    ignore (Karp2.minimum_cycle_mean ~stats:s2 g);
    (sk.Stats.arcs_visited, sd.Stats.arcs_visited, s2.Stats.arcs_visited)
  in
  let sizes = List.filter (fun n -> table_words n <= memory_budget_words) cfg.sizes in
  List.iter
    (fun n ->
      List.iter
        (fun density ->
          let k, d, k2 =
            List.fold_left
              (fun (a, b, c) seed ->
                let ka, da, k2a = karp_family (instance ~n ~density ~seed) in
                (a + ka, b + da, c + k2a))
              (0, 0, 0) cfg.seeds
          in
          let s = List.length cfg.seeds in
          rows :=
            [
              "sprand";
              string_of_int n;
              Printf.sprintf "%.1f" density;
              string_of_int (k / s);
              string_of_int (d / s);
              Printf.sprintf "%.2f" (float_of_int d /. float_of_int k);
              Printf.sprintf "%.2f" (float_of_int k2 /. float_of_int k);
            ]
            :: !rows)
        [ 1.0; 3.0 ])
    sizes;
  (* circuits: DG's improvement is far better on circuits (§4.4) *)
  List.iter
    (fun (name, registers) ->
      if registers >= 100 && registers <= 2000 then begin
        let g = Circuit.benchmark name in
        let k, d, k2 = karp_family g in
        rows :=
          [
            name;
            string_of_int (Digraph.n g);
            Printf.sprintf "%.1f"
              (float_of_int (Digraph.m g) /. float_of_int (Digraph.n g));
            string_of_int k;
            string_of_int d;
            Printf.sprintf "%.2f" (float_of_int d /. float_of_int k);
            Printf.sprintf "%.2f" (float_of_int k2 /. float_of_int k);
          ]
          :: !rows
      end)
    cfg.circuits;
  Tables.print
    ~title:
      "E4 (§4.4): arcs visited by the Karp family — DG saves little on \
       dense SPRAND, a lot on circuits; Karp2 does ~2x Karp"
    ~header:[ "workload"; "n"; "m/n"; "Karp arcs"; "DG arcs"; "DG/Karp"; "Karp2/Karp" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E5: Table 2 — running times of all ten algorithms                   *)
(* ------------------------------------------------------------------ *)

let e5 cfg =
  Hashtbl.reset blown;
  let header =
    [ "n"; "m" ]
    @ List.map Registry.display_name Registry.all
  in
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun density ->
          let m = max n (int_of_float (Float.round (density *. float_of_int n))) in
          let cells =
            List.map
              (fun alg ->
                match run_cell cfg ~alg ~n ~density with
                | None -> "N/A"
                | Some ms -> Tables.fmt_ms ms)
              Registry.all
          in
          rows := ([ string_of_int n; string_of_int m ] @ cells) :: !rows)
        cfg.densities)
    cfg.sizes;
  Tables.print
    ~title:
      "E5 (Table 2): average running times in milliseconds on SPRAND \
       graphs (weights uniform in [1,10000])"
    ~header (List.rev !rows);
  print_endline
    "  expectation (paper): Howard fastest by a wide margin; HO second;\n\
    \  Lawler slowest; OA uncompetitive and erratic at density 1; Karp's\n\
    \  simplicity helps on small graphs but degrades with n; Karp2 ~ 2x \
     Karp.\n\
    \  N/A follows the paper's protocol: quadratic-space table too large,\n\
    \  or the algorithm blew the time budget on a smaller instance."

(* ------------------------------------------------------------------ *)
(* E6: the circuit suite (§3; data in the tech report)                 *)
(* ------------------------------------------------------------------ *)

let e6 cfg =
  let algs =
    Registry.[ Howard; Ho; Dg; Karp; Karp2; Burns; Ko; Yto; Lawler ]
  in
  let header =
    [ "circuit"; "regs"; "arcs"; "lambda*" ] @ List.map Registry.display_name algs
  in
  let rows = ref [] in
  List.iter
    (fun (name, _) ->
      let g = Circuit.benchmark name in
      let lambda, _ = Registry.minimum_cycle_mean Registry.Howard g in
      let cells =
        List.map
          (fun alg ->
            if needs_too_much_memory alg (Digraph.n g) then "N/A"
            else
              Tables.fmt_ms
                (Timing.time_ms (fun () ->
                     ignore (Registry.minimum_cycle_mean alg g))))
          algs
      in
      rows :=
        ([
           name;
           string_of_int (Digraph.n g);
           string_of_int (Digraph.m g);
           Ratio.to_string lambda;
         ]
        @ cells)
        :: !rows)
    cfg.circuits;
  Tables.print
    ~title:
      "E6 (§3): running times (ms) on the synthetic stand-ins for the \
       LGSynth'91 sequential circuits"
    ~header (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E7: Howard's iteration bound ablation (§2.5, §4.3)                  *)
(* ------------------------------------------------------------------ *)

let e7 cfg =
  let rows = ref [] in
  grid cfg (fun ~n ~density ->
      let iters =
        List.map
          (fun seed ->
            let g = instance ~n ~density ~seed in
            let s = Stats.create () in
            ignore (Howard.minimum_cycle_mean ~stats:s g);
            s.Stats.iterations)
          cfg.seeds
      in
      let fmean =
        float_of_int (List.fold_left ( + ) 0 iters)
        /. float_of_int (List.length iters)
      in
      let worst = List.fold_left max 0 iters in
      rows :=
        [
          string_of_int n;
          Printf.sprintf "%.1f" density;
          Printf.sprintf "%.1f" fmean;
          string_of_int worst;
          Printf.sprintf "%.1f" (Float.log (float_of_int n));
        ]
        :: !rows);
  Tables.print
    ~title:
      "E7 (§4.3/§2.5): Howard's iterations vs the O(lg n) average-case \
       conjecture of Cochet-Terrasson et al."
    ~header:[ "n"; "m/n"; "avg iters"; "max iters"; "ln n" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E8: cost-to-time ratio algorithms (Table 1, rows 11-18)             *)
(* ------------------------------------------------------------------ *)

let e8 cfg =
  let sizes = List.filter (fun n -> n <= 2048) cfg.sizes in
  let rows = ref [] in
  List.iter
    (fun n ->
      let m = 2 * n in
      let mk seed = Sprand.generate ~seed ~n ~m ~transits:(1, 5) () in
      let timed solve =
        Timing.mean
          (List.map (fun seed ->
               let g = mk seed in
               Timing.time_ms ~reps:1 (fun () -> ignore (solve g)))
             cfg.seeds)
      in
      let t_howard = timed (Registry.minimum_cycle_ratio Registry.Howard) in
      let t_burns = timed (Registry.minimum_cycle_ratio Registry.Burns) in
      let t_lawler = timed (Registry.minimum_cycle_ratio Registry.Lawler) in
      let t_oa2 = timed (Registry.minimum_cycle_ratio Registry.Oa2) in
      let t_yto = timed (Registry.minimum_cycle_ratio Registry.Yto) in
      (* the Karp family only solves the ratio problem through the
         Hartmann-Orlin expansion: the instance grows to T ≈ 3m nodes *)
      let g0 = mk (List.hd cfg.seeds) in
      let total_t = Digraph.total_transit g0 in
      let expanded_n = total_t + Digraph.n g0 in
      let t_karp_exp =
        if table_words expanded_n > memory_budget_words then None
        else Some (timed (Registry.minimum_cycle_ratio Registry.Karp))
      in
      let t_ho_exp =
        if 2 * table_words expanded_n > memory_budget_words then None
        else Some (timed (Registry.minimum_cycle_ratio Registry.Ho))
      in
      (* agreement check across the native and expansion paths *)
      let l1, _ = Registry.minimum_cycle_ratio Registry.Howard g0 in
      let l2, _ = Registry.minimum_cycle_ratio Registry.Yto g0 in
      let l3, _ = Registry.minimum_cycle_ratio Registry.Karp2 g0 in
      assert (Ratio.equal l1 l2);
      assert (Ratio.equal l1 l3);
      let opt = function None -> "N/A" | Some t -> Tables.fmt_ms t in
      rows :=
        [
          string_of_int n;
          string_of_int m;
          string_of_int total_t;
          Tables.fmt_ms t_howard;
          Tables.fmt_ms t_burns;
          Tables.fmt_ms t_lawler;
          Tables.fmt_ms t_oa2;
          Tables.fmt_ms t_yto;
          opt t_karp_exp;
          opt t_ho_exp;
        ]
        :: !rows)
    sizes;
  Tables.print
    ~title:
      "E8 (Table 1 rows 11-18): minimum cost-to-time ratio — native \
       algorithms (Howard, Burns, Lawler, OA2, YTO) vs the Karp family \
       on the Hartmann-Orlin transit-time expansion (SPRAND, transit \
       times uniform in [1,5], density 2)"
    ~header:
      [ "n"; "m"; "T"; "Howard"; "Burns"; "Lawler"; "OA2"; "YTO";
        "Karp+exp"; "HO+exp" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E9: the improved variants announced in §5                           *)
(* ------------------------------------------------------------------ *)

let e9 cfg =
  let rows = ref [] in
  grid cfg (fun ~n ~density ->
      let measure f =
        let ss =
          List.map
            (fun seed ->
              let g = instance ~n ~density ~seed in
              let s = Stats.create () in
              f s g;
              s)
            cfg.seeds
        in
        ss
      in
      let avg f xs =
        float_of_int (List.fold_left (fun a s -> a + f s) 0 xs)
        /. float_of_int (List.length xs)
      in
      let lw = measure (fun s g -> ignore (Lawler.minimum_cycle_mean ~stats:s g)) in
      let lw' =
        measure (fun s g ->
            ignore (Lawler.minimum_cycle_mean ~stats:s ~improved:true g))
      in
      let hw_cheap =
        measure (fun s g ->
            ignore (Howard.minimum_cycle_mean ~stats:s ~init:`Cheapest_arc g))
      in
      let hw_first =
        measure (fun s g ->
            ignore (Howard.minimum_cycle_mean ~stats:s ~init:`First_arc g))
      in
      let hw_rand =
        measure (fun s g ->
            ignore (Howard.minimum_cycle_mean ~stats:s ~init:(`Random 7) g))
      in
      let oracle s = s.Stats.oracle_calls in
      let iters s = s.Stats.iterations in
      rows :=
        [
          string_of_int n;
          Printf.sprintf "%.1f" density;
          Printf.sprintf "%.1f" (avg oracle lw);
          Printf.sprintf "%.1f" (avg oracle lw');
          Printf.sprintf "%.1f" (avg iters hw_cheap);
          Printf.sprintf "%.1f" (avg iters hw_first);
          Printf.sprintf "%.1f" (avg iters hw_rand);
        ]
        :: !rows);
  Tables.print
    ~title:
      "E9 (§5): improved variants — Lawler with witness-tightened upper \
       bounds (oracle calls) and Howard under three initial policies \
       (iterations)"
    ~header:
      [ "n"; "m/n"; "Lawler orc"; "Lawler+ orc"; "How cheap"; "How first";
        "How rand" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E10: heap ablation for the parametric algorithms                    *)
(* ------------------------------------------------------------------ *)

let e10 cfg =
  let rows = ref [] in
  let kinds = [ ("fibonacci", `Fibonacci); ("binary", `Binary); ("pairing", `Pairing) ] in
  grid cfg (fun ~n ~density ->
      if density >= 2.0 then
        List.iter
          (fun variant ->
            let cells =
              List.concat_map
                (fun (_, kind) ->
                  let times = ref [] and ops = ref 0 in
                  List.iter
                    (fun seed ->
                      let g = instance ~n ~density ~seed in
                      let s = Stats.create () in
                      let dt =
                        Timing.time_ms ~reps:1 (fun () ->
                            ignore
                              (Parametric.minimum_cycle_mean ~stats:s
                                 ~heap:kind ~variant g))
                      in
                      times := dt :: !times;
                      ops := !ops + Heap_stats.total s.Stats.heap)
                    cfg.seeds;
                  [
                    Tables.fmt_ms (Timing.mean !times);
                    string_of_int (!ops / List.length cfg.seeds);
                  ])
                kinds
            in
            rows :=
              ([
                 (match variant with `Ko -> "KO" | `Yto -> "YTO");
                 string_of_int n;
                 Printf.sprintf "%.1f" density;
               ]
              @ cells)
              :: !rows)
          [ `Ko; `Yto ])
  ;
  Tables.print
    ~title:
      "E10: heap ablation for KO/YTO — Fibonacci (as in the paper's LEDA \
       setup) vs binary vs pairing heaps (time in ms / heap ops)"
    ~header:
      [ "variant"; "n"; "m/n"; "fib ms"; "fib ops"; "bin ms"; "bin ops";
        "pair ms"; "pair ops" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E11: engine throughput — parallel batch solve and cache behavior    *)
(* ------------------------------------------------------------------ *)

let e11 cfg =
  let n = match cfg.sizes with [] -> 256 | s :: _ -> min 512 s in
  let density = 2.0 in
  let n_requests = 24 in
  let spec i = Request.default_spec (Printf.sprintf "inst-%03d" i) in
  let distinct =
    List.init n_requests (fun i -> instance ~n ~density ~seed:(i + 1))
  in
  let rows = ref [] in
  (* distinct-instance workload: pure solve throughput across --jobs,
     cache disabled; response lines must be byte-identical to jobs=1 *)
  let base_ms = ref 0.0 in
  let base_lines = ref [] in
  List.iter
    (fun jobs ->
      let reqs =
        List.mapi (fun i g -> Request.make ~id:(i + 1) ~graph:g (spec i))
          distinct
      in
      let eng = Engine.create ~jobs ~cache_size:0 () in
      let t0 = Unix.gettimeofday () in
      let rs = Engine.run_batch eng reqs in
      let dt = 1000.0 *. (Unix.gettimeofday () -. t0) in
      Engine.shutdown eng;
      let lines = List.map (fun r -> Engine.response_line r) rs in
      if jobs = 1 then begin
        base_ms := dt;
        base_lines := lines
      end;
      rows :=
        [
          "distinct";
          string_of_int jobs;
          string_of_int n_requests;
          Tables.fmt_ms dt;
          Printf.sprintf "%.1f" (1000.0 *. float_of_int n_requests /. dt);
          Printf.sprintf "%.2fx" (!base_ms /. dt);
          "-";
          (if lines = !base_lines then "yes" else "NO");
        ]
        :: !rows)
    [ 1; 2; 4 ];
  (* repeated-instance workload: a small pool cycled many times through
     the LRU — the target regime is a >= 90% hit rate *)
  let pool = List.init 3 (fun i -> instance ~n ~density ~seed:(100 + i)) in
  let repeats = 30 in
  let reqs =
    List.init repeats (fun i ->
        let g = List.nth pool (i mod List.length pool) in
        Request.make ~id:(i + 1) ~graph:g
          { (spec (i mod List.length pool)) with Request.verify = true })
  in
  let eng = Engine.create ~jobs:1 ~cache_size:8 () in
  let t0 = Unix.gettimeofday () in
  let rs = Engine.run_batch eng reqs in
  let dt = 1000.0 *. (Unix.gettimeofday () -. t0) in
  let tel = Engine.telemetry eng in
  Engine.shutdown eng;
  let all_certified =
    List.for_all
      (fun r ->
        match r.Engine.outcome with
        | Engine.Solved s -> s.certified
        | _ -> false)
      rs
  in
  rows :=
    [
      "repeated";
      "1";
      string_of_int repeats;
      Tables.fmt_ms dt;
      Printf.sprintf "%.1f" (1000.0 *. float_of_int repeats /. dt);
      "-";
      Printf.sprintf "%.2f" (Telemetry.hit_rate tel);
      (if all_certified then "yes" else "NO");
    ]
    :: !rows;
  Tables.print
    ~title:
      (Printf.sprintf
         "E11: engine throughput — batch of SPRAND n=%d m/n=%.1f across \
          --jobs (identical = responses byte-equal to jobs=1; for the \
          repeated workload, = every cached result re-certified)"
         n density)
    ~header:
      [ "workload"; "jobs"; "reqs"; "wall"; "req/s"; "speedup"; "hit-rate";
        "identical" ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E12: perf probes for the kernel rewrite — Howard kernel throughput, *)
(* one-pass SCC partition vs repeated induced scans, parallel per-SCC  *)
(* solving.  --bench-json FILE additionally writes the numbers in      *)
(* machine-readable form (BENCH_pr2.json).                             *)
(* ------------------------------------------------------------------ *)

let bench_json_path : string option ref = ref None

(* stamped at the top level of every bench JSON file AND into every
   row: check_regress.ml reads the top-level value to decide whether
   jobs>1 timings are comparable across files, and the per-row copy
   keeps rows self-describing when they are quoted in isolation *)
let host_cores () = Domain.recommended_domain_count ()

let e12 _cfg =
  (* a) Howard kernel ns/op per family, scratch reused across reps *)
  let scratch = Howard.create_scratch () in
  let kernel =
    List.map
      (fun (family, g) ->
        let m = Digraph.m g in
        let ms =
          Timing.time_ms ~reps:5 (fun () ->
              ignore (Howard.minimum_cycle_mean ~scratch g))
        in
        (family, Digraph.n g, m, ms, ms *. 1e6 /. float_of_int m))
      [
        ("sprand", instance ~n:1024 ~density:3.0 ~seed:1);
        ("ring", Families.ring 4096);
        ("long_critical", Families.long_critical 512);
      ]
  in
  Tables.print
    ~title:
      "E12a: Howard kernel (zero-allocation steady state, scratch reused \
       across solves)"
    ~header:[ "family"; "n"; "m"; "ms/solve"; "ns/arc" ]
    (List.map
       (fun (family, n, m, ms, ns) ->
         [
           family; string_of_int n; string_of_int m; Tables.fmt_ms ms;
           Printf.sprintf "%.0f" ns;
         ])
       kernel);
  (* b) one O(n+m) partition sweep vs the per-component induced scans
     it replaced, on the many-SCC stress family *)
  let components = 64 and size = 96 in
  let gp = Families.many_scc ~components ~size () in
  let scc = Scc.compute gp in
  let one_pass_ms =
    Timing.time_ms ~reps:5 (fun () -> ignore (Scc.partition gp scc))
  in
  let induced_ms =
    Timing.time_ms ~reps:5 (fun () ->
        List.iter
          (fun members ->
            ignore (Digraph.induced gp (List.sort compare members)))
          (Scc.nontrivial_components gp scc))
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "E12b: SCC subproblem extraction on many_scc (%d components x %d \
          nodes)" components size)
    ~header:[ "method"; "ms"; "speedup" ]
    [
      [ "per-component induced"; Tables.fmt_ms induced_ms; "1.00x" ];
      [
        "one-pass partition"; Tables.fmt_ms one_pass_ms;
        Printf.sprintf "%.2fx" (induced_ms /. one_pass_ms);
      ];
    ];
  (* c) parallel per-SCC solving: wall time across --jobs, with the
     determinism guarantee checked on every run *)
  let base = Option.get (Solver.minimum_cycle_mean ~jobs:1 gp) in
  let parallel =
    List.map
      (fun jobs ->
        let ms =
          Timing.time_ms ~reps:3 (fun () ->
              ignore (Solver.minimum_cycle_mean ~jobs gp))
        in
        let r = Option.get (Solver.minimum_cycle_mean ~jobs gp) in
        let identical =
          Ratio.equal r.Solver.lambda base.Solver.lambda
          && r.Solver.cycle = base.Solver.cycle
          && r.Solver.stats = base.Solver.stats
        in
        (jobs, ms, identical))
      [ 1; 2; 4; 8 ]
  in
  let serial_ms = match parallel with (_, ms, _) :: _ -> ms | [] -> 0.0 in
  Tables.print
    ~title:
      (Printf.sprintf
         "E12c: Solver.solve ~jobs on many_scc (%d components; identical = \
          report bit-equal to jobs=1; host has %d core(s))"
         components
         (Domain.recommended_domain_count ()))
    ~header:[ "jobs"; "ms"; "speedup"; "identical" ]
    (List.map
       (fun (jobs, ms, identical) ->
         [
           string_of_int jobs; Tables.fmt_ms ms;
           Printf.sprintf "%.2fx" (serial_ms /. ms);
           (if identical then "yes" else "NO");
         ])
       parallel);
  match !bench_json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let out fmt = Printf.fprintf oc fmt in
    let cores = host_cores () in
    out "{\n  \"experiment\": \"E12\",\n";
    out "  \"host_cores\": %d,\n" cores;
    out "  \"howard_kernel\": [\n";
    List.iteri
      (fun i (family, n, m, ms, ns) ->
        out
          "    {\"family\": %S, \"n\": %d, \"m\": %d, \"host_cores\": %d, \
           \"ms_per_solve\": %.4f, \"ns_per_arc\": %.1f}%s\n"
          family n m cores ms ns
          (if i < List.length kernel - 1 then "," else ""))
      kernel;
    out "  ],\n";
    out
      "  \"scc_partition\": {\"graph\": \"many_scc %dx%d\", \"n\": %d, \
       \"m\": %d, \"host_cores\": %d, \"one_pass_ms\": %.4f, \
       \"induced_scan_ms\": %.4f, \"speedup\": %.2f},\n"
      components size (Digraph.n gp) (Digraph.m gp) cores one_pass_ms
      induced_ms
      (induced_ms /. one_pass_ms);
    out "  \"parallel_solve\": [\n";
    List.iteri
      (fun i (jobs, ms, identical) ->
        out
          "    {\"jobs\": %d, \"host_cores\": %d, \"ms\": %.4f, \
           \"speedup\": %.2f, \"identical\": %b}%s\n"
          jobs cores ms (serial_ms /. ms) identical
          (if i < List.length parallel - 1 then "," else ""))
      parallel;
    out "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* E13: dynamic sessions — warm incremental re-solve vs cold solve.    *)
(* a) single-arc weight edits on SPRAND: median session edit+query vs  *)
(* a cold Solver.solve of the same edited graph.  b) edit locality on  *)
(* many_scc: the fewer components a round of edits touches, the fewer  *)
(* the session re-solves.  --bench-json FILE writes the numbers in     *)
(* machine-readable form (BENCH_pr3.json).                             *)
(* ------------------------------------------------------------------ *)

let e13 _cfg =
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  (* a) SPRAND single-arc edits: the steady state of an optimization
     loop — one weight changes, the optimum is re-queried *)
  let edits = 32 in
  let sprand =
    List.map
      (fun n ->
        let g = instance ~n ~density:3.0 ~seed:1 in
        let session = Dyn.create g in
        ignore (Dyn.query session);
        let m = Digraph.m g in
        let warm = Array.make edits 0.0 and cold = Array.make edits 0.0 in
        (* warm pass: the session absorbs each edit and re-answers.
           Recorded (arc, weight) pairs drive the identical cold pass
           below — the two passes run separately so the cold client's
           per-edit graph rebuilds don't leak GC work into the warm
           timings (or vice versa). *)
        let applied = Array.make edits (0, 0) in
        for i = 0 to edits - 1 do
          let a = i * 7919 mod m in
          let w = Dyn.arc_weight session a in
          let w' = if w > 1 then w - 1 else w + 1 in
          applied.(i) <- (a, w');
          let t0 = Unix.gettimeofday () in
          Dyn.set_weight session a w';
          ignore (Dyn.query session);
          warm.(i) <- 1000.0 *. (Unix.gettimeofday () -. t0)
        done;
        Dyn.close session;
        (* cold pass: an immutable graph the client must relabel
           (map_weights, the cheapest rebuild) before every re-solve *)
        let cold_g = ref g in
        for i = 0 to edits - 1 do
          let a, w' = applied.(i) in
          let t0 = Unix.gettimeofday () in
          let prev = !cold_g in
          cold_g :=
            Digraph.map_weights prev (fun b ->
                if b = a then w' else Digraph.weight prev b);
          ignore (Solver.minimum_cycle_mean !cold_g);
          cold.(i) <- 1000.0 *. (Unix.gettimeofday () -. t0)
        done;
        (n, m, median warm, median cold))
      [ 1024; 4096 ]
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "E13a: dynamic session vs cold solve, %d single-arc weight edits \
          on SPRAND m/n=3.0 (warm = set_weight + query, cold = relabel + \
          Solver.solve of the edited graph; medians)"
         edits)
    ~header:[ "n"; "m"; "warm ms"; "cold ms"; "speedup" ]
    (List.map
       (fun (n, m, wm, cm) ->
         [
           string_of_int n; string_of_int m; Tables.fmt_ms wm;
           Tables.fmt_ms cm; Printf.sprintf "%.2fx" (cm /. wm);
         ])
       sprand);
  (* b) edit locality on many_scc: one round = one weight edit in each
     of k distinct components, then one query; the session re-solves
     exactly the k dirtied components *)
  let components = 64 and size = 32 in
  let gp = Families.many_scc ~components ~size () in
  let session = Dyn.create gp in
  ignore (Dyn.query session);
  let m = Digraph.m gp in
  (* one intra-block arc per block: editing it dirties that SCC only *)
  let block_arc = Array.make components (-1) in
  for a = 0 to m - 1 do
    let b = Dyn.arc_src session a / size in
    if b = Dyn.arc_dst session a / size && block_arc.(b) < 0 then
      block_arc.(b) <- a
  done;
  let cold_ms =
    Timing.time_ms ~reps:3 (fun () ->
        ignore (Solver.minimum_cycle_mean gp))
  in
  let rounds = 8 in
  let locality =
    List.map
      (fun k ->
        let ms = Array.make rounds 0.0 in
        let resolved = ref 0 in
        for r = 0 to rounds - 1 do
          let t0 = Unix.gettimeofday () in
          for j = 0 to k - 1 do
            let a = block_arc.(j * (components / k)) in
            Dyn.set_weight session a (Dyn.arc_weight session a + ((r land 1 * 2) - 1))
          done;
          (match Dyn.query session with
          | Some rep -> resolved := rep.Dyn.resolved
          | None -> ());
          ms.(r) <- 1000.0 *. (Unix.gettimeofday () -. t0)
        done;
        (k, !resolved, median ms))
      [ 1; 4; 16; 64 ]
  in
  Dyn.close session;
  Tables.print
    ~title:
      (Printf.sprintf
         "E13b: edit locality on many_scc (%d components x %d nodes): k \
          edits in k distinct components per round, then one query \
          (cold solve: %s)"
         components size (Tables.fmt_ms cold_ms))
    ~header:[ "k"; "resolved"; "ms/round"; "speedup vs cold" ]
    (List.map
       (fun (k, resolved, ms) ->
         [
           string_of_int k; string_of_int resolved; Tables.fmt_ms ms;
           Printf.sprintf "%.2fx" (cold_ms /. ms);
         ])
       locality);
  match !bench_json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let out fmt = Printf.fprintf oc fmt in
    let cores = host_cores () in
    out "{\n  \"experiment\": \"E13\",\n";
    out "  \"host_cores\": %d,\n" cores;
    out "  \"sprand_single_edit\": [\n";
    List.iteri
      (fun i (n, m, wm, cm) ->
        out
          "    {\"n\": %d, \"m\": %d, \"edits\": %d, \"host_cores\": %d, \
           \"warm_ms_median\": %.4f, \"cold_ms_median\": %.4f, \
           \"speedup\": %.2f}%s\n"
          n m edits cores wm cm (cm /. wm)
          (if i < List.length sprand - 1 then "," else ""))
      sprand;
    out "  ],\n";
    out
      "  \"edit_locality\": {\"graph\": \"many_scc %dx%d\", \"host_cores\": \
       %d, \"cold_ms\": %.4f, \"rounds\": [\n"
      components size cores cold_ms;
    List.iteri
      (fun i (k, resolved, ms) ->
        out
          "    {\"components_edited\": %d, \"resolved\": %d, \"host_cores\": \
           %d, \"ms\": %.4f, \"speedup\": %.2f}%s\n"
          k resolved cores ms (cold_ms /. ms)
          (if i < List.length locality - 1 then "," else ""))
      locality;
    out "  ]}\n}\n";
    close_out oc;
    Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* E14: chunked improvement sweep inside one giant SCC.  SPRAND is     *)
(* strongly connected by construction, so Solver's per-component       *)
(* fan-out has exactly one task and any scaling across --jobs comes    *)
(* from Howard's intra-SCC sweep alone.  The n=1024 row (m=3072) sits  *)
(* below the arcs-per-chunk grain (OCR_CHUNK_ARCS, default 4096) on    *)
(* purpose: it shows the sweep staying serial where fan-out overhead   *)
(* would dominate.  --bench-json FILE writes the numbers per job       *)
(* count with host_cores stamped (BENCH_pr7.json); the CI multicore    *)
(* leg gates jobs=4 speedup >= 1.2x on >=4-core hosts from this file.  *)
(* ------------------------------------------------------------------ *)

let e14 _cfg =
  let jobs_list = [ 1; 2; 4; 8 ] in
  let giant =
    List.map
      (fun n ->
        let g = instance ~n ~density:3.0 ~seed:1 in
        let m = Digraph.m g in
        let base =
          Option.get (Solver.solve ~algorithm:Registry.Howard ~jobs:1 g)
        in
        let per_jobs =
          List.map
            (fun jobs ->
              (* the pool is created outside the timed region: E14
                 measures the sweep, not domain spawns *)
              let pool = Executor.create ~jobs in
              let ms =
                Timing.time_ms ~reps:5 (fun () ->
                    ignore (Solver.solve ~algorithm:Registry.Howard ~pool g))
              in
              let r =
                Option.get (Solver.solve ~algorithm:Registry.Howard ~pool g)
              in
              Executor.shutdown pool;
              let identical =
                Ratio.equal r.Solver.lambda base.Solver.lambda
                && r.Solver.cycle = base.Solver.cycle
                && r.Solver.stats = base.Solver.stats
              in
              (jobs, ms, identical))
            jobs_list
        in
        (n, m, per_jobs))
      [ 1024; 4096 ]
  in
  Tables.print
    ~title:
      (Printf.sprintf
         "E14: Howard solve of a single giant SCC (SPRAND m/n=3.0) across \
          --jobs; all scaling is the chunked improvement sweep (identical \
          = report bit-equal to jobs=1; host has %d core(s))"
         (Domain.recommended_domain_count ()))
    ~header:[ "n"; "m"; "jobs"; "ms/solve"; "speedup"; "identical" ]
    (List.concat_map
       (fun (n, m, per_jobs) ->
         let serial_ms =
           match per_jobs with (_, ms, _) :: _ -> ms | [] -> 0.0
         in
         List.map
           (fun (jobs, ms, identical) ->
             [
               string_of_int n; string_of_int m; string_of_int jobs;
               Tables.fmt_ms ms;
               Printf.sprintf "%.2fx" (serial_ms /. ms);
               (if identical then "yes" else "NO");
             ])
           per_jobs)
       giant);
  match !bench_json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let out fmt = Printf.fprintf oc fmt in
    let cores = host_cores () in
    out "{\n  \"experiment\": \"E14\",\n";
    out "  \"host_cores\": %d,\n" cores;
    out "  \"chunk_arcs\": %d,\n" (Executor.chunk_arcs ());
    out "  \"giant_scc_sweep\": [\n";
    let rows =
      List.concat_map
        (fun (n, m, per_jobs) ->
          let serial_ms =
            match per_jobs with (_, ms, _) :: _ -> ms | [] -> 0.0
          in
          List.map
            (fun (jobs, ms, identical) -> (n, m, jobs, ms, serial_ms, identical))
            per_jobs)
        giant
    in
    List.iteri
      (fun i (n, m, jobs, ms, serial_ms, identical) ->
        out
          "    {\"family\": \"sprand\", \"n\": %d, \"m\": %d, \"jobs\": %d, \
           \"host_cores\": %d, \"ms_per_solve\": %.4f, \"speedup\": %.2f, \
           \"identical\": %b}%s\n"
          n m jobs cores ms (serial_ms /. ms) identical
          (if i < List.length rows - 1 then "," else ""))
      rows;
    out "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* E15: the cost of observability.  The E14 single-giant-SCC workload  *)
(* solved twice per size — tracing disabled (the production default;   *)
(* every record call is a taken branch) and tracing enabled with a     *)
(* recording ring.  The disabled rows are the perf-gated ones: they    *)
(* assert the instrumented kernel costs nothing when off.  The         *)
(* enabled rows report the recording overhead, which documents the     *)
(* <5% budget but is not gated (ring writes are allocation-free yet    *)
(* clock-heavy, and CI clocks are noisy).  [identical] checks the      *)
(* tracing run's report stays bit-equal to the untraced one.           *)
(* --bench-json FILE writes the numbers (BENCH_pr5.json).              *)
(* ------------------------------------------------------------------ *)

let e15 _cfg =
  let solve g = Option.get (Solver.solve ~algorithm:Registry.Howard ~jobs:1 g) in
  let rows =
    List.map
      (fun n ->
        let g = instance ~n ~density:3.0 ~seed:1 in
        let m = Digraph.m g in
        let base = solve g in
        let off_ms = Timing.time_ms ~reps:5 (fun () -> ignore (solve g)) in
        Trace.configure ~capacity:65536 ();
        Obs.enable ();
        let on_ms, traced =
          Fun.protect
            ~finally:(fun () ->
              Obs.disable ();
              Trace.configure ())
            (fun () ->
              let ms = Timing.time_ms ~reps:5 (fun () -> ignore (solve g)) in
              (ms, solve g))
        in
        let identical =
          Ratio.equal traced.Solver.lambda base.Solver.lambda
          && traced.Solver.cycle = base.Solver.cycle
          && traced.Solver.stats = base.Solver.stats
        in
        let overhead_pct = (on_ms -. off_ms) /. off_ms *. 100.0 in
        (n, m, off_ms, on_ms, overhead_pct, identical))
      [ 1024; 4096 ]
  in
  Tables.print
    ~title:
      "E15: tracing overhead on the E14 single-giant-SCC Howard solve \
       (jobs=1); off = global switch disabled, on = spans and counters \
       recorded into a 65536-record ring (identical = traced report \
       bit-equal to untraced)"
    ~header:[ "n"; "m"; "off ms/solve"; "on ms/solve"; "overhead"; "identical" ]
    (List.map
       (fun (n, m, off_ms, on_ms, pct, identical) ->
         [
           string_of_int n; string_of_int m; Tables.fmt_ms off_ms;
           Tables.fmt_ms on_ms;
           Printf.sprintf "%+.1f%%" pct;
           (if identical then "yes" else "NO");
         ])
       rows);
  match !bench_json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let out fmt = Printf.fprintf oc fmt in
    let cores = host_cores () in
    out "{\n  \"experiment\": \"E15\",\n";
    out "  \"host_cores\": %d,\n" cores;
    out "  \"tracing_overhead\": [\n";
    List.iteri
      (fun i (n, m, off_ms, on_ms, pct, identical) ->
        (* one off-row and one on-row per size, split by the "trace"
           discriminator: the off rows carry the gated ms_per_solve,
           the on rows only ungated informational metrics *)
        out
          "    {\"family\": \"sprand\", \"n\": %d, \"m\": %d, \"jobs\": 1, \
           \"host_cores\": %d, \"trace\": \"off\", \"ms_per_solve\": %.4f},\n"
          n m cores off_ms;
        out
          "    {\"family\": \"sprand\", \"n\": %d, \"m\": %d, \"jobs\": 1, \
           \"host_cores\": %d, \"trace\": \"on\", \"traced_ms_per_solve\": \
           %.4f, \"overhead_pct\": %.1f, \"identical\": %b}%s\n"
          n m cores on_ms pct identical
          (if i < List.length rows - 1 then "," else ""))
      rows;
    out "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s\n" path

(* E16: cluster serving.  The same one-shot request batch pushed       *)
(* through `ocr serve` (single process) and `ocr cluster` at           *)
(* workers = 1, 2, 4 — ms/request measures the router's multiplexing   *)
(* and sharding overhead (workers=1 vs serve) and the fan-out gain     *)
(* (workers=2,4); [identical] checks the response multiset matches     *)
(* serve exactly, including the cached= flags (fingerprint sharding    *)
(* gives each graph exactly one cold miss cluster-wide, like one       *)
(* process does).  A second scenario wedges nothing but floods one     *)
(* worker (queue-depth 4) and reports the shed rate — informational,   *)
(* not gated, since it depends on drain speed.  Needs the built ocr    *)
(* binary: $OCR_BIN, or the dune default path, else the experiment     *)
(* skips.  --bench-json FILE writes the numbers (BENCH_pr6.json).      *)
(* ------------------------------------------------------------------ *)

let e16 _cfg =
  let ocr_bin =
    match Sys.getenv_opt "OCR_BIN" with
    | Some p when Sys.file_exists p -> Some p
    | Some p ->
      Printf.printf "E16: $OCR_BIN=%s not found\n" p;
      None
    | None ->
      let dflt = "_build/default/bin/main.exe" in
      if Sys.file_exists dflt then Some dflt else None
  in
  match ocr_bin with
  | None ->
    print_endline
      "E16: skipped (no ocr binary; build bin/ or set $OCR_BIN)"
  | Some bin ->
    let n = 512 and density = 3.0 and pool = 8 and reps = 200 in
    let dir = Filename.temp_file "ocr_e16_" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let graphs =
      List.init pool (fun i ->
          let g = instance ~n ~density ~seed:(i + 1) in
          let path = Filename.concat dir (Printf.sprintf "g%d.ocr" i) in
          Graph_io.write_file path g;
          (path, Digraph.m g))
    in
    let m = snd (List.hd graphs) in
    let batch =
      List.init reps (fun i -> fst (List.nth graphs (i mod pool)))
    in
    (* one warmed, timed pass through a serving subprocess: spawn, one
       request per graph to absorb startup and cold solves, then the
       timed batch (one response line per request line, so a plain
       write-all / read-all is deadlock-free at this size) *)
    let run_server argv =
      let ic, oc =
        Unix.open_process_args bin (Array.of_list (bin :: argv))
      in
      let ask lines =
        List.iter (fun l -> output_string oc (l ^ "\n")) lines;
        flush oc;
        List.map (fun _ -> input_line ic) lines
      in
      ignore (ask (List.map fst graphs));
      let t0 = Unix.gettimeofday () in
      let responses = ask batch in
      let dt_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
      output_string oc "quit\n";
      flush oc;
      ignore (Unix.close_process (ic, oc));
      (dt_ms /. float_of_int reps, responses)
    in
    let ms_serve, ref_responses = run_server [ "serve" ] in
    let cluster_rows =
      List.map
        (fun workers ->
          (* the whole batch is written before the first read, so the
             queue bound must exceed it — admission control is the
             overload scenario's subject, not this one's *)
          let ms, responses =
            run_server
              [
                "cluster"; "--workers"; string_of_int workers;
                "--queue-depth"; string_of_int (2 * reps);
              ]
          in
          let identical =
            List.sort compare responses = List.sort compare ref_responses
          in
          (workers, ms, identical))
        [ 1; 2; 4 ]
    in
    (* overload: every request hits the same graph, hence one worker;
       with its queue bounded at 4 most of the flood is shed *)
    let overload_reqs = 300 in
    let shed =
      let ic, oc =
        Unix.open_process_args bin
          [| bin; "cluster"; "--workers"; "1"; "--queue-depth"; "4" |]
      in
      let g0 = fst (List.hd graphs) in
      for _ = 1 to overload_reqs do
        output_string oc (g0 ^ "\n")
      done;
      output_string oc "quit\n";
      flush oc;
      let shed = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if
             String.length line > 0
             && line.[0] = '{'
             && String.length line >= 21
             && String.sub line 0 21 = {|{"ok":false,"err":"ov|}
           then incr shed
         done
       with End_of_file -> ());
      ignore (Unix.close_process (ic, oc));
      !shed
    in
    let shed_rate = 100.0 *. float_of_int shed /. float_of_int overload_reqs in
    List.iter (fun (p, _) -> Sys.remove p) graphs;
    Unix.rmdir dir;
    Tables.print
      ~title:
        (Printf.sprintf
           "E16: cluster serving, %d requests over %d sprand graphs \
            (n=%d, m=%d); serve = single process baseline (identical = \
            response multiset matches serve); overload = %d requests \
            of one graph at queue-depth 4"
           reps pool n m overload_reqs)
      ~header:[ "server"; "workers"; "ms/req"; "identical" ]
      (([ "serve"; "1"; Tables.fmt_ms ms_serve; "-" ]
       :: List.map
            (fun (w, ms, identical) ->
              [
                "cluster"; string_of_int w; Tables.fmt_ms ms;
                (if identical then "yes" else "NO");
              ])
            cluster_rows)
      @ [ [ "overload"; "1"; Printf.sprintf "%.0f%% shed" shed_rate; "-" ] ]);
    match !bench_json_path with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      let out fmt = Printf.fprintf oc fmt in
      let cores = host_cores () in
      out "{\n  \"experiment\": \"E16\",\n";
      out "  \"host_cores\": %d,\n" cores;
      out "  \"cluster_throughput\": [\n";
      out
        "    {\"family\": \"sprand\", \"n\": %d, \"m\": %d, \"jobs\": 1, \
         \"host_cores\": %d, \"cluster\": \"serve\", \"workers\": 0, \
         \"requests\": %d, \"ms_per_req\": %.4f},\n"
        n m cores reps ms_serve;
      List.iter
        (fun (w, ms, identical) ->
          out
            "    {\"family\": \"sprand\", \"n\": %d, \"m\": %d, \"jobs\": 1, \
             \"host_cores\": %d, \"cluster\": \"cluster\", \"workers\": %d, \
             \"requests\": %d, \"ms_per_req\": %.4f, \"identical\": %b},\n"
            n m cores w reps ms identical)
        cluster_rows;
      out
        "    {\"family\": \"sprand\", \"n\": %d, \"m\": %d, \"jobs\": 1, \
         \"host_cores\": %d, \"cluster\": \"overload\", \"workers\": 1, \
         \"requests\": %d, \"shed_rate_pct\": %.1f}\n"
        n m cores overload_reqs shed_rate;
      out "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" path

(* E17: the certified approximation lane vs the exact portfolio.  Two  *)
(* families — the low-diameter expander (truncated value iteration's   *)
(* best case: every node reachable in few rounds) and plain SPRAND —   *)
(* across n and eps.  exact_ms times Howard, approx_ms the approx      *)
(* lane; width is the certified interval hi - lo, and [identical]      *)
(* asserts the certificate brackets Howard's exact optimum on every    *)
(* seed (the CI gate re-checks that flag).  --bench-json FILE writes   *)
(* the rows (BENCH_pr8.json) with eps as a row discriminator.          *)
(* ------------------------------------------------------------------ *)

let e17 cfg =
  let families =
    [
      ( "low_diameter",
        fun ~n ~seed -> Families.low_diameter ~seed ~diameter:3 n );
      ("sprand", fun ~n ~seed -> instance ~n ~density:3.0 ~seed);
    ]
  in
  let rows =
    List.concat_map
      (fun (fam, gen) ->
        List.concat_map
          (fun n ->
            List.map
              (fun eps ->
                let per_seed =
                  List.map
                    (fun seed ->
                      let g = gen ~n ~seed in
                      let exact_ms =
                        Timing.time_ms ~reps:3 (fun () ->
                            ignore (Solver.solve ~algorithm:Registry.Howard g))
                      in
                      let approx_ms =
                        Timing.time_ms ~reps:3 (fun () ->
                            ignore (Approx.solve ~eps g))
                      in
                      let exact =
                        Option.get (Solver.solve ~algorithm:Registry.Howard g)
                      in
                      let c = Option.get (Approx.solve ~eps g) in
                      let bracket =
                        Ratio.leq c.Approx.lo exact.Solver.lambda
                        && Ratio.leq exact.Solver.lambda c.Approx.hi
                        && c.Approx.converged
                      in
                      let width =
                        Ratio.to_float c.Approx.hi -. Ratio.to_float c.Approx.lo
                      in
                      (Digraph.m g, exact_ms, approx_ms, width, c, bracket))
                    cfg.seeds
                in
                let m =
                  match per_seed with (m, _, _, _, _, _) :: _ -> m | [] -> 0
                in
                let mean f = Timing.mean (List.map f per_seed) in
                let exact_ms = mean (fun (_, e, _, _, _, _) -> e) in
                let approx_ms = mean (fun (_, _, a, _, _, _) -> a) in
                let width = mean (fun (_, _, _, w, _, _) -> w) in
                let tests =
                  List.fold_left
                    (fun acc (_, _, _, _, c, _) -> acc + c.Approx.tests)
                    0 per_seed
                in
                let rounds =
                  List.fold_left
                    (fun acc (_, _, _, _, c, _) -> acc + c.Approx.rounds)
                    0 per_seed
                in
                let bracket =
                  List.for_all (fun (_, _, _, _, _, b) -> b) per_seed
                in
                (fam, n, m, eps, exact_ms, approx_ms, width, tests, rounds,
                 bracket))
              [ 0.1; 0.01 ])
          cfg.sizes)
      families
  in
  Tables.print
    ~title:
      "E17: exact (Howard) vs the certified approximation lane across \
       families, n and eps; width = certified hi - lo (target eps*scale); \
       identical = certificate brackets the exact optimum on every seed"
    ~header:
      [ "family"; "n"; "m"; "eps"; "exact ms"; "approx ms"; "speedup";
        "width"; "tests"; "identical" ]
    (List.map
       (fun (fam, n, m, eps, exact_ms, approx_ms, width, tests, _rounds,
             bracket) ->
         [
           fam; string_of_int n; string_of_int m; Printf.sprintf "%g" eps;
           Tables.fmt_ms exact_ms; Tables.fmt_ms approx_ms;
           Printf.sprintf "%.2fx" (exact_ms /. approx_ms);
           Printf.sprintf "%.3f" width; string_of_int tests;
           (if bracket then "yes" else "NO");
         ])
       rows);
  match !bench_json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let out fmt = Printf.fprintf oc fmt in
    let cores = host_cores () in
    out "{\n  \"experiment\": \"E17\",\n";
    out "  \"host_cores\": %d,\n" cores;
    out "  \"approx_vs_exact\": [\n";
    List.iteri
      (fun i (fam, n, m, eps, exact_ms, approx_ms, width, tests, rounds,
              bracket) ->
        out
          "    {\"family\": \"%s\", \"n\": %d, \"m\": %d, \"jobs\": 1, \
           \"eps\": %g, \"host_cores\": %d, \"exact_ms\": %.4f, \
           \"approx_ms\": %.4f, \"width\": %.4f, \"tests\": %d, \
           \"rounds\": %d, \"identical\": %b}%s\n"
          fam n m eps cores exact_ms approx_ms width tests rounds bracket
          (if i < List.length rows - 1 then "," else ""))
      rows;
    out "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s\n" path

(* E18: the exact-rational lane vs the float portfolio.  Every row    *)
(* solves the same instance twice — Howard (the portfolio champion)   *)
(* and the Stern–Brocot lane, whose λ comes purely from integer       *)
(* negative-cycle probes — then cross-checks the two through          *)
(* Verify.rational_certificate: the certificate recomputed from each  *)
(* witness cycle's integer sums must be the same rational bit for     *)
(* bit, and the float rendering must sit within 1 ulp of it.  The     *)
(* [exact_matches_float] flag gates in CI at zero tolerance, like the *)
(* identical flags: a false is an arithmetic bug, not noise.  probes  *)
(* counts the lane's Bellman–Ford invocations (the log-bounded tree   *)
(* descent).  --bench-json FILE writes the rows (BENCH_pr9.json).     *)
(* ------------------------------------------------------------------ *)

let e18 cfg =
  let problems =
    [
      ( "mean", Solver.Cycle_mean,
        (fun ~n ~seed -> instance ~n ~density:3.0 ~seed),
        (fun g -> Registry.minimum_cycle_mean Registry.Howard g),
        fun ~stats g -> Stern_brocot.minimum_cycle_mean ~stats g );
      ( "ratio", Solver.Cycle_ratio,
        (fun ~n ~seed ->
          Sprand.generate ~seed ~n ~m:(3 * n) ~transits:(1, 5) ()),
        (fun g -> Registry.minimum_cycle_ratio Registry.Howard g),
        fun ~stats g -> Stern_brocot.minimum_cycle_ratio ~stats g );
    ]
  in
  let rows =
    List.concat_map
      (fun (prob_name, problem, gen, float_solve, exact_solve) ->
        List.map
          (fun n ->
            let per_seed =
              List.map
                (fun seed ->
                  let g = gen ~n ~seed in
                  let float_ms =
                    Timing.time_ms ~reps:3 (fun () -> ignore (float_solve g))
                  in
                  let s = Stats.create () in
                  let exact_ms =
                    Timing.time_ms ~reps:3 (fun () ->
                        ignore (exact_solve ~stats:s g))
                  in
                  Stats.reset s;
                  let lf, cf = float_solve g in
                  let le, ce = exact_solve ~stats:s g in
                  let cert c lambda =
                    Verify.rational_certificate ~problem g lambda c
                  in
                  let matches =
                    match (cert cf lf, cert ce le) with
                    | Ok a, Ok b -> Ratio.equal a b && Ratio.equal a le
                    | _ -> false
                  in
                  (Digraph.m g, float_ms, exact_ms, s.Stats.iterations,
                   matches))
                cfg.seeds
            in
            let m =
              match per_seed with (m, _, _, _, _) :: _ -> m | [] -> 0
            in
            let mean f = Timing.mean (List.map f per_seed) in
            let float_ms = mean (fun (_, f, _, _, _) -> f) in
            let exact_ms = mean (fun (_, _, e, _, _) -> e) in
            let probes =
              List.fold_left (fun acc (_, _, _, p, _) -> acc + p) 0 per_seed
              / List.length per_seed
            in
            let matches =
              List.for_all (fun (_, _, _, _, ok) -> ok) per_seed
            in
            (prob_name, n, m, float_ms, exact_ms, probes, matches))
          cfg.sizes)
      problems
  in
  Tables.print
    ~title:
      "E18: float portfolio (Howard) vs the Stern-Brocot exact lane on \
       SPRAND (mean: unit transits; ratio: transits uniform in [1,5]); \
       probes = integer negative-cycle tests; exact=float = both \
       witnesses certify to the same rational, float within 1 ulp"
    ~header:
      [ "problem"; "n"; "m"; "float ms"; "exact ms"; "slowdown"; "probes";
        "exact=float" ]
    (List.map
       (fun (prob, n, m, float_ms, exact_ms, probes, matches) ->
         [
           prob; string_of_int n; string_of_int m; Tables.fmt_ms float_ms;
           Tables.fmt_ms exact_ms;
           Printf.sprintf "%.2fx" (exact_ms /. float_ms);
           string_of_int probes;
           (if matches then "yes" else "NO");
         ])
       rows);
  match !bench_json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    let out fmt = Printf.fprintf oc fmt in
    let cores = host_cores () in
    out "{\n  \"experiment\": \"E18\",\n";
    out "  \"host_cores\": %d,\n" cores;
    out "  \"exact_vs_float\": [\n";
    List.iteri
      (fun i (prob, n, m, float_ms, exact_ms, probes, matches) ->
        out
          "    {\"family\": \"sprand\", \"problem\": %S, \"n\": %d, \
           \"m\": %d, \"jobs\": 1, \"host_cores\": %d, \"float_ms\": %.4f, \
           \"exact_ms\": %.4f, \"slowdown\": %.2f, \"probes\": %d, \
           \"exact_matches_float\": %b}%s\n"
          prob n m cores float_ms exact_ms (exact_ms /. float_ms) probes
          matches
          (if i < List.length rows - 1 then "," else ""))
      rows;
    out "  ]\n}\n";
    close_out oc;
    Printf.printf "wrote %s\n" path

(* E19: the observability tax on the cluster path.  E16's batch (200   *)
(* one-shot requests over 8 sprand graphs) through a 2-worker cluster  *)
(* twice: once dark, once with --trace-dir and --access-log live —    *)
(* per-process trace rings in router and workers, trace ids on every   *)
(* forwarded request line, one access-log NDJSON line per request.     *)
(* ms/req of the dark run is the gated baseline; overhead_pct is the   *)
(* tax (informational, like E15's: absolute CI timings are noisy, the  *)
(* <5% promise is checked on the recording host).  [identical] checks  *)
(* the traced run's response multiset matches the dark run exactly,    *)
(* [access_complete] that the log holds one line per admitted          *)
(* request.  Needs the built ocr binary like E16; rows stamp           *)
(* host_cores and an "obs" discriminator.                              *)
(* ------------------------------------------------------------------ *)

let e19 _cfg =
  let ocr_bin =
    match Sys.getenv_opt "OCR_BIN" with
    | Some p when Sys.file_exists p -> Some p
    | Some p ->
      Printf.printf "E19: $OCR_BIN=%s not found\n" p;
      None
    | None ->
      let dflt = "_build/default/bin/main.exe" in
      if Sys.file_exists dflt then Some dflt else None
  in
  match ocr_bin with
  | None ->
    print_endline
      "E19: skipped (no ocr binary; build bin/ or set $OCR_BIN)"
  | Some bin ->
    let n = 512 and density = 3.0 and pool = 8 and reps = 200
    and workers = 2 in
    let dir = Filename.temp_file "ocr_e19_" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let graphs =
      List.init pool (fun i ->
          let g = instance ~n ~density ~seed:(i + 1) in
          let path = Filename.concat dir (Printf.sprintf "g%d.ocr" i) in
          Graph_io.write_file path g;
          (path, Digraph.m g))
    in
    let m = snd (List.hd graphs) in
    let batch =
      List.init reps (fun i -> fst (List.nth graphs (i mod pool)))
    in
    (* E16's warmed pass: spawn, one request per graph to absorb
       startup and cold solves, then the timed batch *)
    let run_cluster extra =
      let argv =
        [
          "cluster"; "--workers"; string_of_int workers; "--queue-depth";
          string_of_int (2 * reps);
        ]
        @ extra
      in
      let ic, oc =
        Unix.open_process_args bin (Array.of_list (bin :: argv))
      in
      let ask lines =
        List.iter (fun l -> output_string oc (l ^ "\n")) lines;
        flush oc;
        List.map (fun _ -> input_line ic) lines
      in
      ignore (ask (List.map fst graphs));
      let t0 = Unix.gettimeofday () in
      let responses = ask batch in
      let dt_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
      output_string oc "quit\n";
      flush oc;
      ignore (Unix.close_process (ic, oc));
      (dt_ms /. float_of_int reps, responses)
    in
    let ms_off, ref_responses = run_cluster [] in
    let trace_dir = Filename.concat dir "traces" in
    Unix.mkdir trace_dir 0o700;
    let access = Filename.concat dir "access.ndjson" in
    let ms_on, responses =
      run_cluster [ "--trace-dir"; trace_dir; "--access-log"; access ]
    in
    let identical =
      List.sort compare responses = List.sort compare ref_responses
    in
    let access_lines =
      let ic = open_in access in
      let k = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr k
         done
       with End_of_file -> ());
      close_in ic;
      !k
    in
    (* the warm-up pass is admitted traffic too: pool + reps lines *)
    let access_complete = access_lines = pool + reps in
    let overhead_pct = 100.0 *. (ms_on -. ms_off) /. ms_off in
    List.iter (fun (p, _) -> Sys.remove p) graphs;
    Sys.remove access;
    Array.iter
      (fun f -> Sys.remove (Filename.concat trace_dir f))
      (Sys.readdir trace_dir);
    Unix.rmdir trace_dir;
    Unix.rmdir dir;
    Tables.print
      ~title:
        (Printf.sprintf
           "E19: tracing + access-log tax on the cluster, %d requests \
            over %d sprand graphs (n=%d, m=%d) at workers=%d; identical \
            = traced response multiset matches the dark run; access = \
            one log line per admitted request"
           reps pool n m workers)
      ~header:[ "obs"; "workers"; "ms/req"; "overhead"; "identical"; "access" ]
      [
        [ "off"; string_of_int workers; Tables.fmt_ms ms_off; "-"; "-"; "-" ];
        [
          "on"; string_of_int workers; Tables.fmt_ms ms_on;
          Printf.sprintf "%+.1f%%" overhead_pct;
          (if identical then "yes" else "NO");
          (if access_complete then Printf.sprintf "%d/%d" access_lines
                                     (pool + reps)
           else Printf.sprintf "%d/%d MISSING" access_lines (pool + reps));
        ];
      ];
    match !bench_json_path with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      let out fmt = Printf.fprintf oc fmt in
      let cores = host_cores () in
      out "{\n  \"experiment\": \"E19\",\n";
      out "  \"host_cores\": %d,\n" cores;
      out "  \"cluster_observability\": [\n";
      out
        "    {\"family\": \"sprand\", \"n\": %d, \"m\": %d, \"jobs\": 1, \
         \"host_cores\": %d, \"workers\": %d, \"obs\": \"off\", \
         \"requests\": %d, \"ms_per_req\": %.4f},\n"
        n m cores workers reps ms_off;
      out
        "    {\"family\": \"sprand\", \"n\": %d, \"m\": %d, \"jobs\": 1, \
         \"host_cores\": %d, \"workers\": %d, \"obs\": \"on\", \
         \"requests\": %d, \"traced_ms_per_req\": %.4f, \
         \"overhead_pct\": %.1f, \"identical\": %b, \
         \"access_complete\": %b}\n"
        n m cores workers reps ms_on overhead_pct identical access_complete;
      out "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" path

let all : (string * (config -> unit)) list =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E19", e19) ]

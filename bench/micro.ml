(* Bechamel microbenchmarks: one Test.make per algorithm, grouped per
   experiment table, measured with the monotonic clock and analysed
   with OLS — the statistically careful counterpart of the wall-clock
   sweeps in Experiments. *)

open Bechamel
open Toolkit

let mcm_group ~name g =
  Test.make_grouped ~name ~fmt:"%s:%s"
    (List.map
       (fun alg ->
         Test.make ~name:(Registry.name alg)
           (Staged.stage (fun () -> ignore (Registry.minimum_cycle_mean alg g))))
       Registry.all)

let ratio_group ~name g =
  Test.make_grouped ~name ~fmt:"%s:%s"
    (List.map
       (fun alg ->
         Test.make ~name:(Registry.name alg)
           (Staged.stage (fun () -> ignore (Registry.minimum_cycle_ratio alg g))))
       Registry.[ Howard; Burns; Lawler; Oa2; Yto ])

let heap_group ~name =
  (* heap ablation: the same sort through each heap implementation *)
  let keys = Array.init 2000 (fun i -> (i * 7919) mod 65536) in
  let binary () =
    let h = Binary_heap.create ~capacity:(Array.length keys) ~cmp:compare () in
    Array.iteri (fun e k -> Binary_heap.insert h e k) keys;
    while not (Binary_heap.is_empty h) do
      ignore (Binary_heap.extract_min h)
    done
  in
  let fibonacci () =
    let h = Fibonacci_heap.create ~cmp:compare () in
    Array.iter (fun k -> ignore (Fibonacci_heap.insert h k ())) keys;
    while not (Fibonacci_heap.is_empty h) do
      ignore (Fibonacci_heap.extract_min h)
    done
  in
  let pairing () =
    let h = Pairing_heap.create ~cmp:compare () in
    Array.iter (fun k -> ignore (Pairing_heap.insert h k ())) keys;
    while not (Pairing_heap.is_empty h) do
      ignore (Pairing_heap.extract_min h)
    done
  in
  Test.make_grouped ~name ~fmt:"%s:%s"
    [
      Test.make ~name:"binary" (Staged.stage binary);
      Test.make ~name:"fibonacci" (Staged.stage fibonacci);
      Test.make ~name:"pairing" (Staged.stage pairing);
    ]

let run () =
  let sprand = Sprand.generate ~seed:1 ~n:256 ~m:512 () in
  let circuit = Circuit.benchmark "s9234" in
  let ratio_g = Sprand.generate ~seed:1 ~n:256 ~m:512 ~transits:(1, 5) () in
  let tests =
    Test.make_grouped ~name:"ocr" ~fmt:"%s/%s"
      [
        mcm_group ~name:"table2-sprand-256x512" sprand;
        mcm_group ~name:"circuit-s9234" circuit;
        ratio_group ~name:"ratio-256x512" ratio_g;
        heap_group ~name:"heap-2000-elements";
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "\nBechamel microbenchmarks (monotonic clock, ns/run):";
  let entries = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%12.0f" e
        | _ -> "?"
      in
      entries := (name, est) :: !entries)
    results;
  List.iter
    (fun (name, est) -> Printf.printf "  %-40s %s ns\n" name est)
    (List.sort compare !entries)

(* Minimal fixed-width table printer for the experiment outputs. *)

let hline widths =
  let parts = List.map (fun w -> String.make (w + 2) '-') widths in
  print_endline ("+" ^ String.concat "+" parts ^ "+")

let row widths cells =
  let padded =
    List.map2
      (fun w c ->
        let len = String.length c in
        if len >= w then " " ^ c ^ " " else " " ^ String.make (w - len) ' ' ^ c ^ " ")
      widths cells
  in
  print_endline ("|" ^ String.concat "|" padded ^ "|")

(* When set (bench --csv DIR), every printed table is also written as
   <DIR>/<first-word-of-title>.csv for downstream plotting. *)
let csv_dir : string option ref = ref None

let write_csv ~title ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    let first_word =
      match String.index_opt title ' ' with
      | Some i -> String.sub title 0 i
      | None -> title
    in
    let slug =
      String.lowercase_ascii first_word
      |> String.to_seq
      |> Seq.filter (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
      |> String.of_seq
    in
    let path = Filename.concat dir (slug ^ ".csv") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (String.concat "," header ^ "\n");
        List.iter
          (fun row -> output_string oc (String.concat "," row ^ "\n"))
          rows)

let print ~title ~header rows =
  Printf.printf "\n%s\n" title;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc r -> max acc (String.length (List.nth r i)))
          (String.length h) rows)
      header
  in
  hline widths;
  row widths header;
  hline widths;
  List.iter (row widths) rows;
  hline widths;
  write_csv ~title ~header rows

let fmt_ms dt = if dt < 10.0 then Printf.sprintf "%.2f" dt else Printf.sprintf "%.1f" dt


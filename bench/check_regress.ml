(* CI perf-regression gate.

     check_regress.exe BASELINE.json CURRENT.json [BASELINE CURRENT ...]
     check_regress.exe --speedup CURRENT.json JOBS MIN [pairs ...]

   Each pair is a committed baseline (BENCH_pr*.json, recorded on the
   container that grew this repo) against the JSON a CI smoke run just
   wrote (bench-e1N.json).  Absolute CI timings are noisy and the
   hardware differs, so the gate is deliberately loose: a timing
   metric fails only when

     current > 2.5 * baseline + 1.0   (milliseconds)

   i.e. a >2.5x slowdown with a 1 ms slack floor so micro-rows (tens of
   microseconds) never trip on scheduler jitter.  Speedups, ratios and
   counts are never gated by pairs.  What *is* gated hard, with no
   tolerance, is every "identical", "exact_matches_float" and
   "access_complete" flag in the current file: the first encodes the
   determinism guarantee (parallel report bit-equal to jobs=1), the
   second the exact-answer promise (both lanes certify to the same
   rational, float within 1 ulp), the third the access log's
   one-line-per-admitted-request contract — a false in any of them is
   a correctness bug, not noise.

   Core-count awareness: every bench file stamps "host_cores"
   (Domain.recommended_domain_count at recording time).  When baseline
   and current were recorded on hosts with different core counts, the
   timing comparison of every parallel row — jobs>1, or a workers>1
   cluster run — is skipped with a notice: a jobs=4 timing from a
   1-core box against one from an 8-core box is apples against oranges
   in both directions, and a 2-worker cluster's drain rate depends on
   the cores the same way.  Sequential rows and the identical flags
   still gate.

   The --speedup mode is the multicore promise: it reads CURRENT.json,
   finds every row with "jobs" = JOBS and a "speedup" field, and fails
   unless the best of them is >= MIN.  On a host reporting fewer than
   JOBS cores it prints a notice and passes (the promise only binds
   where the cores exist).  Remaining arguments are processed as
   ordinary baseline/current pairs.

   Rows inside arrays are matched by their discriminator fields
   (family/n/m/jobs/components_edited), not by position, so reordering
   or extending an experiment does not break the gate; a baseline row
   with no counterpart in the current file is reported but only warns
   (a smoke run may legitimately cover fewer rows than the committed
   full run). *)

(* ------------------------------------------------------------------ *)
(* A fifty-line JSON reader.  The bench harness only ever emits        *)
(* objects, arrays, strings, numbers and booleans, and the committed   *)
(* baselines are trusted inputs — no streaming, no unicode escapes.    *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | c -> Buffer.add_char b c);
        advance ();
        go ()
      | '\255' -> fail "unterminated string"
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while num_char (peek ()) do advance () done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((k, v) :: acc)
          | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); Arr [])
      else
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements (v :: acc)
          | ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elements []
    | '"' -> Str (string_lit ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Flattening: every leaf becomes (path, leaf).  Array elements that   *)
(* are objects are keyed by their discriminator fields so rows match   *)
(* across files regardless of order; other elements fall back to the   *)
(* index.                                                              *)
(* ------------------------------------------------------------------ *)

let discriminators = [ "family"; "graph"; "problem"; "n"; "m"; "jobs";
                       "workload"; "trace"; "obs"; "components_edited";
                       "cluster"; "workers"; "eps" ]

let row_key = function
  | Obj fields ->
    let parts =
      List.filter_map
        (fun d ->
          match List.assoc_opt d fields with
          | Some (Str s) -> Some (Printf.sprintf "%s=%s" d s)
          | Some (Num f) -> Some (Printf.sprintf "%s=%g" d f)
          | _ -> None)
        discriminators
    in
    if parts = [] then None else Some (String.concat "," parts)
  | _ -> None

let flatten (j : json) : (string * json) list =
  let acc = ref [] in
  let rec go path j =
    match j with
    | Obj fields ->
      List.iter (fun (k, v) -> go (path ^ "/" ^ k) v) fields
    | Arr elts ->
      List.iteri
        (fun i e ->
          let key =
            match row_key e with
            | Some k -> Printf.sprintf "%s[%s]" path k
            | None -> Printf.sprintf "%s[%d]" path i
          in
          go key e)
        elts
    | leaf -> acc := (path, leaf) :: !acc
  in
  go "" j;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* The gate                                                            *)
(* ------------------------------------------------------------------ *)

let slowdown_factor = 2.5
let slack_ms = 1.0

let leaf_name path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

(* only wall-clock metrics are gated; speedups, ns/arc, counts and
   rates depend on them and would double-report the same regression *)
let gated_metric path =
  List.mem (leaf_name path)
    [ "ms"; "ms_per_solve"; "ms_per_req"; "one_pass_ms"; "induced_scan_ms";
      "cold_ms"; "warm_ms_median"; "cold_ms_median"; "exact_ms"; "approx_ms";
      "float_ms" ]

let failures = ref 0
let warnings = ref 0
let checked = ref 0

(* the top-level "host_cores" stamp of a bench file *)
let host_cores_of = function
  | Obj fields -> (
    match List.assoc_opt "host_cores" fields with
    | Some (Num f) -> Some (int_of_float f)
    | _ -> None)
  | _ -> None

(* a numeric discriminator baked into a flattened row path by
   [row_key] (".../rows[family=sprand,n=4096,jobs=4]/ms_per_solve"
   with tag "jobs=" -> Some 4) *)
let path_num tag path =
  let tl = String.length tag in
  let n = String.length path in
  let rec find i =
    if i + tl > n then None
    else if String.sub path i tl = tag then begin
      let j = ref (i + tl) in
      while
        !j < n && (match path.[!j] with '0' .. '9' -> true | _ -> false)
      do
        incr j
      done;
      int_of_string_opt (String.sub path (i + tl) (!j - (i + tl)))
    end
    else find (i + 1)
  in
  find 0

let path_jobs path = path_num "jobs=" path

(* whether a row's timing depends on the host's parallelism: a jobs>1
   solve or a workers>1 cluster run — exactly the rows whose timings
   are not comparable across hosts with different core counts *)
let path_parallel path =
  (match path_jobs path with Some j -> j > 1 | None -> false)
  || (match path_num "workers=" path with Some w -> w > 1 | None -> false)

let check_pair ~baseline ~current =
  Printf.printf "== %s vs %s\n" baseline current;
  let base_json = parse (read_file baseline) in
  let cur_json = parse (read_file current) in
  let cores_differ =
    match (host_cores_of base_json, host_cores_of cur_json) with
    | Some b, Some c -> b <> c
    | _ -> false
  in
  if cores_differ then
    Printf.printf
      "  note: baseline and current recorded on different core counts; \
       jobs>1 and workers>1 timing rows are skipped\n";
  let base = flatten base_json in
  let cur = flatten cur_json in
  (* determinism and exact-answer flags in the *current* run gate
     unconditionally *)
  List.iter
    (fun (path, leaf) ->
      match leaf with
      | Bool ok when leaf_name path = "identical" ->
        incr checked;
        if not ok then begin
          incr failures;
          Printf.printf "FAIL %s: parallel result not identical to jobs=1\n"
            path
        end
      | Bool ok when leaf_name path = "exact_matches_float" ->
        incr checked;
        if not ok then begin
          incr failures;
          Printf.printf
            "FAIL %s: exact lane and float portfolio certify different \
             rationals\n"
            path
        end
      | Bool ok when leaf_name path = "access_complete" ->
        incr checked;
        if not ok then begin
          incr failures;
          Printf.printf
            "FAIL %s: access log dropped lines for admitted requests\n" path
        end
      | _ -> ())
    cur;
  List.iter
    (fun (path, leaf) ->
      match leaf with
      | Num _ when gated_metric path && cores_differ && path_parallel path ->
        Printf.printf "  skip %s: differing host core counts\n" path
      | Num b when gated_metric path -> (
        match List.assoc_opt path cur with
        | Some (Num c) ->
          incr checked;
          let limit = (slowdown_factor *. b) +. slack_ms in
          if c > limit then begin
            incr failures;
            Printf.printf "FAIL %s: %.4f ms vs baseline %.4f ms (limit %.4f)\n"
              path c b limit
          end
          else Printf.printf "  ok %s: %.4f ms (baseline %.4f)\n" path c b
        | Some _ ->
          incr failures;
          Printf.printf "FAIL %s: expected a number in the current run\n" path
        | None ->
          incr warnings;
          Printf.printf "  warn %s: in baseline but not in current run\n" path)
      | _ -> ())
    base

(* The multicore promise: the best "speedup" among rows with the given
   jobs count must reach [min_speedup] — but only on a host with at
   least that many cores; elsewhere the curve cannot physically show a
   speedup and the gate passes with a notice. *)
let check_speedup ~file ~jobs ~min_speedup =
  let j = parse (read_file file) in
  match host_cores_of j with
  | Some cores when cores < jobs ->
    Printf.printf
      "notice: %s records host_cores=%d < jobs=%d (this host detects %d); \
       multicore speedup gate skipped (needs a >=%d-core host)\n"
      file cores jobs
      (Domain.recommended_domain_count ())
      jobs
  | cores ->
    if cores = None then begin
      incr warnings;
      Printf.printf "  warn %s: no host_cores stamp; gating speedup anyway\n"
        file
    end;
    let best =
      List.fold_left
        (fun acc (path, leaf) ->
          match leaf with
          | Num v when leaf_name path = "speedup" && path_jobs path = Some jobs
            -> (
            match acc with Some b when b >= v -> acc | _ -> Some v)
          | _ -> acc)
        None (flatten j)
    in
    incr checked;
    (match best with
    | None ->
      incr failures;
      Printf.printf "FAIL %s: no jobs=%d rows with a speedup field\n" file jobs
    | Some b when b < min_speedup ->
      incr failures;
      Printf.printf "FAIL %s: best jobs=%d speedup %.2fx < required %.2fx\n"
        file jobs b min_speedup
    | Some b ->
      Printf.printf "  ok %s: best jobs=%d speedup %.2fx (>= %.2fx)\n" file
        jobs b min_speedup)

let usage () =
  prerr_endline
    "usage: check_regress [--speedup CURRENT.json JOBS MIN] BASELINE.json \
     CURRENT.json [B C ...]";
  exit 2

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let speedup, args =
    match args with
    | "--speedup" :: file :: jobs :: min_s :: rest -> (
      match (int_of_string_opt jobs, float_of_string_opt min_s) with
      | Some j, Some m when j >= 1 -> (Some (file, j, m), rest)
      | _ -> usage ())
    | "--speedup" :: _ -> usage ()
    | args -> (None, args)
  in
  let rec pairs = function
    | [] -> []
    | b :: c :: rest -> (b, c) :: pairs rest
    | [ _ ] -> usage ()
  in
  let ps = pairs args in
  if ps = [] && speedup = None then usage ();
  (try
     (match speedup with
     | Some (file, jobs, min_speedup) -> check_speedup ~file ~jobs ~min_speedup
     | None -> ());
     List.iter (fun (b, c) -> check_pair ~baseline:b ~current:c) ps
   with
  | Bad_json msg ->
    Printf.eprintf "malformed JSON: %s\n" msg;
    exit 2
  | Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2);
  Printf.printf
    "%d metric(s) checked, %d warning(s), %d failure(s); gate: current <= \
     %.1fx baseline + %.1f ms, identical flags must hold\n"
    !checked !warnings !failures slowdown_factor slack_ms;
  if !failures > 0 then exit 1

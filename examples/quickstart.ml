(* Quickstart: build a small graph, compute its minimum / maximum cycle
   mean and cost-to-time ratio, and certify the answers.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A 6-node graph with two interesting cycles:
       0 -> 1 -> 2 -> 0   (weights 2, 4, 3  -> mean 3)
       2 -> 3 -> 4 -> 5 -> 2 (weights 1, 2, 1, 2 -> mean 3/2)
     plus a heavy shortcut 4 -> 0. *)
  let g =
    Digraph.of_arcs 6
      [
        (0, 1, 2, 1);
        (1, 2, 4, 2);
        (2, 0, 3, 1);
        (2, 3, 1, 1);
        (3, 4, 2, 3);
        (4, 5, 1, 1);
        (5, 2, 2, 1);
        (4, 0, 9, 1);
      ]
  in
  let show label = function
    | None -> Printf.printf "%-28s: (graph is acyclic)\n" label
    | Some (r : Solver.report) ->
      Printf.printf "%-28s: %-8s  witness cycle arcs: [%s]\n" label
        (Ratio.to_string r.Solver.lambda)
        (String.concat "; " (List.map string_of_int r.Solver.cycle))
  in
  show "minimum cycle mean" (Solver.minimum_cycle_mean g);
  show "maximum cycle mean" (Solver.maximum_cycle_mean g);
  show "minimum cost-to-time ratio" (Solver.minimum_cycle_ratio g);
  show "maximum cost-to-time ratio" (Solver.maximum_cycle_ratio g);

  (* every algorithm of the study is available by name *)
  let by_karp = Solver.minimum_cycle_mean ~algorithm:Registry.Karp g in
  show "minimum mean, via Karp" by_karp;

  (* results can be certified independently of the solver *)
  (match Solver.minimum_cycle_mean g with
  | Some r -> (
    match Verify.certify_report g r with
    | Ok () -> print_endline "certificate: OK (witness tight, no better cycle)"
    | Error e -> Printf.printf "certificate FAILED: %s\n" e)
  | None -> ());

  (* the critical subgraph: all arcs lying on some optimum-mean cycle *)
  match Solver.minimum_cycle_mean g with
  | Some r ->
    let crit = Critical.critical_arcs ~den:(fun _ -> 1) g r.Solver.lambda in
    Printf.printf "critical arcs at the optimum: [%s]\n"
      (String.concat "; " (List.map string_of_int crit))
  | None -> ()

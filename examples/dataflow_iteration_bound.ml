(* Iteration bound of a DSP filter — the Ito & Parhi application the
   paper cites (§1.1): the fastest achievable iteration period of a
   recursive data-flow graph is its maximum cost-to-time ratio.

   Run with: dune exec examples/dataflow_iteration_bound.exe *)

let describe dfg name =
  match Dataflow.iteration_bound dfg with
  | None -> Printf.printf "%s: feed-forward (no recursion, bound 0)\n" name
  | Some (bound, loop) ->
    Printf.printf "%s: iteration bound = %s (%.3f time units)\n" name
      (Ratio.to_string bound) (Ratio.to_float bound);
    Printf.printf "  critical loop: %s\n"
      (String.concat " -> " (List.map (Dataflow.op_name dfg) loop))

(* Second-order IIR section:  y(n) = x(n) + a1·y(n−1) + a2·y(n−2).
   Multipliers take 2 time units, adders 1.  Two recursion loops:
     add1 -> m1 -> add1            (1 delay):  (1+2)/1 = 3
     add1 -> add2 -> m2 -> add1?   — here add2 feeds add1, m2 in the
     2-delay path: (1+1+2)/2 = 2.  Bound = 3. *)
let biquad () =
  let d = Dataflow.create () in
  let add1 = Dataflow.add_op d ~name:"add1" ~time:1 in
  let add2 = Dataflow.add_op d ~name:"add2" ~time:1 in
  let m1 = Dataflow.add_op d ~name:"mul_a1" ~time:2 in
  let m2 = Dataflow.add_op d ~name:"mul_a2" ~time:2 in
  let out = Dataflow.add_op d ~name:"out" ~time:0 in
  (* y feeds both multipliers through 1 and 2 registers *)
  Dataflow.add_edge d ~delays:1 add1 m1;
  Dataflow.add_edge d ~delays:2 add1 m2;
  Dataflow.add_edge d m1 add1;
  Dataflow.add_edge d m2 add2;
  Dataflow.add_edge d add2 add1;
  Dataflow.add_edge d add1 out;
  d

(* A lattice-style filter with a longer recursion. *)
let lattice () =
  let d = Dataflow.create () in
  let a = Array.init 6 (fun i ->
      Dataflow.add_op d ~name:(Printf.sprintf "stage%d" i)
        ~time:(if i mod 2 = 0 then 2 else 1))
  in
  for i = 0 to 4 do
    Dataflow.add_edge d a.(i) a.(i + 1)
  done;
  Dataflow.add_edge d ~delays:3 a.(5) a.(0);
  (* a short inner loop that is NOT critical: (1+2)/2 *)
  Dataflow.add_edge d ~delays:2 a.(1) a.(0);
  d

(* Feed-forward FIR: no cycle at all. *)
let fir () =
  let d = Dataflow.create () in
  let x = Dataflow.add_op d ~name:"x" ~time:0 in
  let m = Dataflow.add_op d ~name:"mul" ~time:2 in
  let s = Dataflow.add_op d ~name:"sum" ~time:1 in
  Dataflow.add_edge d x m;
  Dataflow.add_edge d ~delays:1 x m;
  Dataflow.add_edge d m s;
  d

let () =
  describe (biquad ()) "second-order IIR (biquad)";
  describe (lattice ()) "lattice filter";
  describe (fir ()) "FIR filter"

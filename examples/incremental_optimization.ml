(* Optimization loops re-solve the cycle mean after every local edit —
   the reason the paper cares about algorithm speed in the first place
   ("their applications require that they be run many times", §1.3).

   This example performs a crude timing optimization of a synthetic
   circuit: find the maximum mean cycle (the performance bottleneck),
   speed up the slowest combinational path on it (e.g. by resizing
   gates), and repeat.  Each re-solve is warm-started from Howard's
   previous policy via the Incremental module, which typically
   converges in a couple of sweeps.

   Run with: dune exec examples/incremental_optimization.exe *)

let () =
  (* register-to-register delay graph of a synthetic circuit; we
     optimize the MAXIMUM cycle mean, i.e. minimize the clock period.
     Incremental minimizes, so work on negated weights. *)
  let g = Circuit.generate ~seed:9 ~registers:400 ~density:1.9 () in
  let neg = Digraph.negate_weights g in
  let inc = Incremental.create neg in
  let budget = 12 in
  Printf.printf "%-5s %-12s %-28s %s\n" "step" "period" "bottleneck arc"
    "warm iterations";
  let total_iters = ref 0 in
  (try
     for step = 1 to budget do
       let stats = Stats.create () in
       let lambda, cycle = Incremental.solve ~stats inc in
       total_iters := !total_iters + stats.Stats.iterations;
       let period = Ratio.neg lambda in
       (* slowest arc on the critical cycle, in original weights *)
       let cur = Incremental.graph inc in
       let worst =
         List.fold_left
           (fun acc a ->
             match acc with
             | Some b when Digraph.weight cur b <= Digraph.weight cur a -> acc
             | _ -> Some a)
           None cycle
       in
       let a = Option.get worst in
       let delay = -Digraph.weight cur a in
       Printf.printf "%-5d %-12s #%d (%d->%d, delay %d)%*s %d\n" step
         (Ratio.to_string period) a
         (Digraph.src cur a) (Digraph.dst cur a) delay
         (12 - String.length (string_of_int delay)) ""
         stats.Stats.iterations;
       if delay <= 2 then raise Exit;
       (* "optimize" the path: 25% faster, at least one unit *)
       Incremental.set_weight inc a (-(max 1 (delay - (delay / 4) - 1)))
     done
   with Exit -> print_endline "bottleneck can no longer be improved");
  Printf.printf
    "total Howard iterations across all re-solves: %d (cold solves need \
     several each)\n"
    !total_iters

(* Throughput of a self-timed ring — Burns' event-rule analysis of
   asynchronous circuits (§1.1 of the paper).

   A ring of [stages] pipeline stages holds [tokens] data items.  Stage
   i fires (event e_i) when it has received data from its predecessor
   (forward latency) and its successor has freed its latch (backward
   latency).  The steady-state cycle period is the maximum
   delay-to-token ratio over the dependency cycles:

     period = max( forward:  Σ d_f / tokens,
                   backward: Σ d_b / bubbles )

   The event-rule solver finds this automatically, and the explicit
   simulation of the recurrence confirms it.

   Run with: dune exec examples/async_pipeline.exe *)

let ring ~stages ~tokens ~forward ~backward =
  let er = Eventrule.create () in
  let e =
    Array.init stages (fun i ->
        Eventrule.add_event er ~name:(Printf.sprintf "stage%d" i))
  in
  (* each ring slot holds either a token (data) or a bubble (hole):
     the forward arc across a slot with a token carries offset 1, and
     its backward companion offset 0 — and vice versa for bubbles.
     Every 2-cycle then has total offset 1 (no deadlock), the full
     forward cycle has offset = tokens and the full backward cycle
     offset = stages − tokens. *)
  for i = 0 to stages - 1 do
    let succ = (i + 1) mod stages in
    let f_offset = if i < tokens then 1 else 0 in
    Eventrule.add_rule er ~offset:f_offset ~delay:forward e.(i) e.(succ);
    Eventrule.add_rule er ~offset:(1 - f_offset) ~delay:backward e.(succ) e.(i)
  done;
  (er, e)

let analyse ~stages ~tokens ~forward ~backward =
  let er, e = ring ~stages ~tokens ~forward ~backward in
  Printf.printf "ring: %d stages, %d tokens, d_f=%d, d_b=%d\n" stages tokens
    forward backward;
  (match Eventrule.cycle_period er with
  | Some (p, critical) ->
    Printf.printf "  cycle period = %s (= %.3f)\n" (Ratio.to_string p)
      (Ratio.to_float p);
    Printf.printf "  critical cycle: %s\n"
      (String.concat " -> " (List.map (Eventrule.event_name er) critical))
  | None -> print_endline "  non-repetitive (acyclic rules)");
  (* simulate and report the measured asymptotic rate of stage 0 *)
  let k = 400 in
  let times = Eventrule.simulate er ~occurrences:k in
  let last = times.(k - 1).((e.(0) :> int)) in
  let prev = times.((k / 2) - 1).((e.(0) :> int)) in
  Printf.printf "  simulated rate over late occurrences: %.3f\n\n"
    (float_of_int (last - prev) /. float_of_int (k / 2))

let () =
  (* token-limited: the forward loop dominates: 4·10/2 = 20 *)
  analyse ~stages:4 ~tokens:2 ~forward:10 ~backward:1;
  (* bubble-limited: only one empty slot: backward loop 4·6/1 = 24
     beats forward 4·10/3 = 13.3 *)
  analyse ~stages:4 ~tokens:3 ~forward:10 ~backward:6;
  (* balanced occupancy *)
  analyse ~stages:6 ~tokens:3 ~forward:8 ~backward:2

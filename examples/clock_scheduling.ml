(* Optimal clock period by retiming — the clock scheduling application
   of §1.1 (Szymanski, DAC'92; model of Leiserson & Saxe).

   The circuit is the classic digital correlator: a host interface,
   four comparators (delay 3) and three adders (delay 7).  As drawn it
   clocks at 24 time units; the optimal retiming reaches 13.  The
   maximum delay-to-register cycle ratio gives the lower bound no
   retiming can beat.

   Run with: dune exec examples/clock_scheduling.exe *)

let correlator () =
  let c = Retiming.create () in
  let host = Retiming.add_block c ~name:"host" ~delay:0 in
  let cmp = Array.init 4 (fun i ->
      Retiming.add_block c ~name:(Printf.sprintf "cmp%d" i) ~delay:3)
  in
  let add = Array.init 3 (fun i ->
      Retiming.add_block c ~name:(Printf.sprintf "add%d" i) ~delay:7)
  in
  (* forward chain of comparators, one register between stages *)
  Retiming.add_wire c ~registers:1 host cmp.(0);
  Retiming.add_wire c ~registers:1 cmp.(0) cmp.(1);
  Retiming.add_wire c ~registers:1 cmp.(1) cmp.(2);
  Retiming.add_wire c ~registers:1 cmp.(2) cmp.(3);
  (* adder tree back towards the host, no registers *)
  Retiming.add_wire c cmp.(3) add.(2);
  Retiming.add_wire c add.(2) add.(1);
  Retiming.add_wire c add.(1) add.(0);
  Retiming.add_wire c add.(0) host;
  (* cross wires from the comparators into the adder chain *)
  Retiming.add_wire c cmp.(0) add.(0);
  Retiming.add_wire c cmp.(1) add.(1);
  Retiming.add_wire c cmp.(2) add.(2);
  c

let () =
  let c = correlator () in
  Printf.printf "correlator: %d blocks\n" (Retiming.block_count c);
  Printf.printf "clock period as designed : %d\n" (Retiming.clock_period c);
  (match Retiming.period_lower_bound c with
  | Some b ->
    Printf.printf "cycle-ratio lower bound  : %s (= %.2f)\n"
      (Ratio.to_string b) (Ratio.to_float b)
  | None -> print_endline "combinational circuit (no cycle)");
  let period, labels = Retiming.min_period c in
  Printf.printf "optimal period (retimed) : %d\n" period;
  let retimed = Retiming.retime c labels in
  Printf.printf "period after retiming    : %d\n"
    (Retiming.clock_period retimed);
  print_string "retiming labels          :";
  Array.iter
    (fun b ->
      Printf.printf " %s=%d" (Retiming.block_name c b) labels.((b :> int)))
    (Retiming.blocks c);
  print_newline ()

(* Level-clocked variant of the same loop (Szymanski, DAC'92): with
   transparent latches the clock can run at the maximum cycle MEAN of
   the latch-to-latch delays — faster than any edge-triggered period —
   and the solver emits the latch departure offsets realizing it. *)
let () =
  print_newline ();
  let c = Clock_schedule.create () in
  let l = Array.init 4 (fun i ->
      Clock_schedule.add_latch c ~name:(Printf.sprintf "L%d" i))
  in
  Clock_schedule.add_path c ~delay:9 l.(0) l.(1);
  Clock_schedule.add_path c ~delay:2 l.(1) l.(2);
  Clock_schedule.add_path c ~delay:7 l.(2) l.(3);
  Clock_schedule.add_path c ~delay:2 l.(3) l.(0);
  Clock_schedule.add_path c ~delay:4 l.(1) l.(3);
  match Clock_schedule.min_period c with
  | None -> print_endline "level-clocked loop: acyclic"
  | Some p ->
    Printf.printf "level-clocked loop: optimal period = %s (max path is 9)\n"
      (Ratio.to_string p);
    (match Clock_schedule.schedule c ~period:p with
    | Some x ->
      print_string "latch departure offsets  :";
      Array.iteri
        (fun i xi -> Printf.printf " L%d=%s" i (Ratio.to_string xi))
        x;
      print_newline ();
      Printf.printf "schedule verifies        : %b\n"
        (Clock_schedule.verify_schedule c ~period:p x)
    | None -> print_endline "unexpected: optimum infeasible")

(* Run every algorithm of the study on the same SPRAND instance and
   compare answers, running times and operation counts — a miniature of
   the paper's Table 2 on a single graph.

   Run with: dune exec examples/algorithm_comparison.exe [-- n m seed] *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 512 in
  let m = try int_of_string Sys.argv.(2) with _ -> 1024 in
  let seed = try int_of_string Sys.argv.(3) with _ -> 7 in
  let g = Sprand.generate ~seed ~n ~m () in
  Printf.printf "SPRAND graph: n=%d m=%d seed=%d (weights 1..10000)\n\n" n m
    seed;
  Printf.printf "%-8s %10s %10s %8s %10s %12s %10s\n" "alg" "lambda"
    "time(ms)" "iter" "relax" "arcs" "heap-ops";
  List.iter
    (fun alg ->
      let stats = Stats.create () in
      let solve () =
        Registry.minimum_cycle_mean alg ~stats g
      in
      let (lambda, cycle), dt = time solve in
      (match Verify.certify g lambda cycle with
      | Ok () -> ()
      | Error e ->
        Printf.printf "!! %s certificate failed: %s\n"
          (Registry.display_name alg) e);
      Printf.printf "%-8s %10s %10.2f %8d %10d %12d %10d\n"
        (Registry.display_name alg)
        (Ratio.to_string lambda)
        (1000.0 *. dt) stats.Stats.iterations stats.Stats.relaxations
        stats.Stats.arcs_visited
        (Heap_stats.total stats.Stats.heap))
    Registry.all

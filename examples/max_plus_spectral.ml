(* Max-plus spectral analysis of a timed event system — the setting in
   which Howard's algorithm reached the CAD community (Cochet-Terrasson
   et al., 1998; Bacelli et al., "Synchronization and Linearity").

   A small cyclic production line: three machines exchanging parts with
   transport + processing times.  The max-plus eigenvalue λ of the
   timing matrix is the steady-state cycle time (inverse throughput);
   the eigenvector gives the relative firing offsets.

   Run with: dune exec examples/max_plus_spectral.exe *)

let () =
  (* A(i,j) = processing+transport time from machine j to machine i *)
  let a =
    Maxplus.of_entries 3
      [ (0, 2, 8); (1, 0, 3); (2, 1, 4); (1, 1, 5); (0, 0, 2); (2, 0, 6) ]
  in
  Printf.printf "irreducible: %b\n" (Maxplus.is_irreducible a);
  (match Maxplus.eigenvalue a with
  | Some l ->
    Printf.printf "eigenvalue (cycle time): %s = %.3f\n" (Ratio.to_string l)
      (Ratio.to_float l)
  | None -> print_endline "system is acyclic");
  (match Maxplus.eigenvector a with
  | Some (l, v) ->
    Printf.printf "eigenvector at lambda = %s:\n" (Ratio.to_string l);
    Array.iteri
      (fun i x -> Printf.printf "  x%d = %s\n" i (Ratio.to_string x))
      v
  | None -> print_endline "not irreducible: no global eigenvector");
  (* power iteration: x(k+1) = A ⊗ x(k); increments approach λ *)
  let x = ref (Array.make 3 (Some 0)) in
  Printf.printf "power iteration increments (machine 0):\n";
  let prev = ref 0 in
  for k = 1 to 10 do
    x := Maxplus.vec_mul a !x;
    match !x.(0) with
    | Some v ->
      Printf.printf "  k=%2d  x0=%4d  step=%d\n" k v (v - !prev);
      prev := v
    | None -> ()
  done

(* Rate analysis of an embedded control system — the Mathur, Dasdan &
   Gupta application of §1.1 (RATAN): bound the sustainable execution
   rates of communicating processes whose computation and communication
   delays are known only as intervals.

   The system: a sensor task feeds a filter, the filter feeds a control
   task, and the controller acknowledges the sensor (closing the loop
   with one buffered message).  An independent watchdog pings the
   controller once per round trip.

   Run with: dune exec examples/embedded_rates.exe *)

let () =
  let r = Rate_analysis.create () in
  let sensor = Rate_analysis.add_process r ~name:"sensor" in
  let filter = Rate_analysis.add_process r ~name:"filter" in
  let control = Rate_analysis.add_process r ~name:"control" in
  let watchdog = Rate_analysis.add_process r ~name:"watchdog" in
  (* data path: delays are [best, worst] in microseconds *)
  Rate_analysis.add_dependency r ~dmin:40 ~dmax:70 sensor filter;
  Rate_analysis.add_dependency r ~dmin:25 ~dmax:60 filter control;
  (* flow control: the sensor may run one message ahead *)
  Rate_analysis.add_dependency r ~offset:1 ~dmin:5 ~dmax:15 control sensor;
  (* watchdog loop: two rounds of slack *)
  Rate_analysis.add_dependency r ~dmin:10 ~dmax:20 control watchdog;
  Rate_analysis.add_dependency r ~offset:2 ~dmin:10 ~dmax:30 watchdog control;

  (match Rate_analysis.period_interval r with
  | Some (best, worst) ->
    Printf.printf "execution period in [%s, %s] us per iteration\n"
      (Ratio.to_string best) (Ratio.to_string worst)
  | None -> print_endline "feed-forward system: no intrinsic period");

  (match Rate_analysis.rate_interval r with
  | Some (lowest, highest) ->
    let show = function
      | Some x -> Printf.sprintf "%.4f" (Ratio.to_float x)
      | None -> "unbounded"
    in
    Printf.printf "sustainable rate in [%s, %s] iterations/us\n" (show lowest)
      (show highest)
  | None -> ());

  (* what improves throughput?  Tightening the sensor->filter worst case
     only helps if that dependency is on the worst-case critical cycle. *)
  let faster = Rate_analysis.create () in
  let s = Rate_analysis.add_process faster ~name:"sensor" in
  let f = Rate_analysis.add_process faster ~name:"filter" in
  let c = Rate_analysis.add_process faster ~name:"control" in
  let w = Rate_analysis.add_process faster ~name:"watchdog" in
  Rate_analysis.add_dependency faster ~dmin:40 ~dmax:50 s f;
  Rate_analysis.add_dependency faster ~dmin:25 ~dmax:60 f c;
  Rate_analysis.add_dependency faster ~offset:1 ~dmin:5 ~dmax:15 c s;
  Rate_analysis.add_dependency faster ~dmin:10 ~dmax:20 c w;
  Rate_analysis.add_dependency faster ~offset:2 ~dmin:10 ~dmax:30 w c;
  match Rate_analysis.period_interval faster with
  | Some (_, worst) ->
    Printf.printf
      "after speeding the sensor link up (70 -> 50 us): worst period %s us\n"
      (Ratio.to_string worst)
  | None -> ()

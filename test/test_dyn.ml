(* Dynamic session subsystem (lib/dyn): equivalence with cold solves
   after arbitrary update sequences (including SCC merges and splits),
   steady-path allocation, journal replay, the NDJSON codec, and the
   Dyn_serve fingerprint cache. *)

(* ------------------------------------------------------------------ *)
(* Cold-solve reference                                                *)
(* ------------------------------------------------------------------ *)

(* Both sides rendered to a comparable string: λ, witness (graph-arc
   ids), component count — or the Invalid_argument message.  Stats are
   deliberately excluded: a warm query only counts the work it did. *)
let show_answer = function
  | Error msg -> "error: " ^ msg
  | Ok None -> "acyclic"
  | Ok (Some (lambda, cycle, components)) ->
    Printf.sprintf "%s [%s] k=%d" (Ratio.to_string lambda)
      (String.concat ";" (List.map string_of_int cycle))
      components

let cold_answer ~problem ~objective ~jobs g =
  match Solver.solve ~problem ~objective ~jobs ~algorithm:Registry.Howard g with
  | Some r -> Ok (Some (r.Solver.lambda, r.Solver.cycle, r.Solver.components))
  | None -> Ok None
  | exception Invalid_argument msg -> Error msg

let session_answer s =
  match Dyn.query s with
  | Some r ->
    Ok
      (Some
         ( r.Dyn.lambda,
           List.map (Dyn.to_graph_arc s) r.Dyn.cycle,
           r.Dyn.components ))
  | None -> Ok None
  | exception Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Randomized mixed-update equivalence                                 *)
(* ------------------------------------------------------------------ *)

let pick_live s rng =
  if Dyn.live_arcs s = 0 then None
  else begin
    let count = Dyn.arc_count s in
    let a = ref (Rng.int rng count) in
    while not (Dyn.arc_alive s !a) do
      a := Rng.int rng count
    done;
    Some !a
  end

(* One random update; arc insertions/removals drive SCC merges and
   splits on these tiny graphs constantly. *)
let random_update ~tlo s rng =
  let n = Dyn.n s in
  let roll = Rng.int rng 10 in
  match pick_live s rng with
  | Some a when roll < 5 -> Dyn.set_weight s a (Rng.in_range rng (-20) 20)
  | Some a when roll < 7 -> Dyn.set_transit s a (Rng.in_range rng tlo 3)
  | Some a when roll = 7 -> Dyn.remove_arc s a
  | _ ->
    ignore
      (Dyn.add_arc s ~src:(Rng.int rng n) ~dst:(Rng.int rng n)
         ~weight:(Rng.in_range rng (-20) 20)
         ~transit:(Rng.in_range rng (max tlo 0) 3))

let base_graph ~tlo rng n m =
  let arcs = ref [] in
  for _ = 1 to m do
    arcs :=
      ( Rng.int rng n, Rng.int rng n, Rng.in_range rng (-20) 20,
        Rng.in_range rng (max tlo 0) 3 )
      :: !arcs
  done;
  Digraph.of_arcs n !arcs

let mixed_updates ~problem ~objective ~jobs ~seed ~updates () =
  let rng = Rng.create seed in
  (* ratio sessions also draw zero transits, so ill-posed instances —
     and the error-message parity with Solver — are exercised *)
  let tlo = match problem with Solver.Cycle_ratio -> 0 | _ -> 1 in
  let g = base_graph ~tlo rng 8 12 in
  let s = Dyn.create ~problem ~objective ~jobs g in
  Fun.protect ~finally:(fun () -> Dyn.close s) @@ fun () ->
  for step = 1 to updates do
    random_update ~tlo s rng;
    let want = cold_answer ~problem ~objective ~jobs:1 (Dyn.graph s) in
    let got = session_answer s in
    Alcotest.(check string)
      (Printf.sprintf "step %d (epoch %d)" step (Dyn.epoch s))
      (show_answer want) (show_answer got)
  done;
  Alcotest.(check int) "epoch counts updates" updates (Dyn.epoch s);
  (* the per-epoch fingerprint is the snapshot's fingerprint *)
  Alcotest.(check string) "fingerprint matches snapshot"
    (Fingerprint.to_hex (Fingerprint.of_graph (Dyn.graph s)))
    (Fingerprint.to_hex (Dyn.fingerprint s))

let replay_roundtrip () =
  let rng = Rng.create 42 in
  let g = base_graph ~tlo:1 rng 8 12 in
  let s = Dyn.create g in
  for _ = 1 to 120 do
    random_update ~tlo:1 s rng
  done;
  let s2 = Dyn.replay g (Dyn.journal s) in
  Alcotest.(check int) "same epoch" (Dyn.epoch s) (Dyn.epoch s2);
  Alcotest.(check string) "same fingerprint"
    (Fingerprint.to_hex (Dyn.fingerprint s))
    (Fingerprint.to_hex (Dyn.fingerprint s2));
  Alcotest.(check string) "same answer"
    (show_answer (session_answer s))
    (show_answer (session_answer s2))

(* ------------------------------------------------------------------ *)
(* Error parity with Solver                                            *)
(* ------------------------------------------------------------------ *)

let err f = try f () |> ignore; "no error" with Invalid_argument m -> m

let zero_transit_parity () =
  let g = Digraph.of_arcs 2 [ (0, 1, 1, 0); (1, 0, 1, 0) ] in
  let want =
    err (fun () ->
        Solver.solve ~problem:Solver.Cycle_ratio ~algorithm:Registry.Howard g)
  in
  let s = Dyn.create ~problem:Solver.Cycle_ratio g in
  Alcotest.(check string) "same message" want (err (fun () -> Dyn.query s));
  (* raising the transit on one arc cures the instance *)
  Dyn.set_transit s 0 5;
  match Dyn.query s with
  | Some r -> Helpers.check_ratio "cured" (Ratio.make 2 5) r.Dyn.lambda
  | None -> Alcotest.fail "expected a cycle"

let overflow_parity () =
  let g = Digraph.of_arcs 1 [ (0, 0, max_int / 4, 1) ] in
  let want =
    err (fun () -> Solver.solve ~algorithm:Registry.Howard g)
  in
  let s = Dyn.create g in
  Alcotest.(check string) "same message" want (err (fun () -> Dyn.query s))

let dead_arc_updates () =
  let g = Digraph.of_weighted_arcs 2 [ (0, 1, 1); (1, 0, 2) ] in
  let s = Dyn.create g in
  Dyn.remove_arc s 0;
  Alcotest.(check bool) "set_weight on dead arc raises" true
    (match Dyn.set_weight s 0 5 with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check int) "failed update does not tick the epoch" 1 (Dyn.epoch s);
  (* the graph is now acyclic *)
  Alcotest.(check string) "acyclic" "acyclic" (show_answer (session_answer s));
  (* re-adding a back arc restores a cycle: SCC merge via insertion *)
  let a = Dyn.add_arc s ~src:0 ~dst:1 ~weight:7 ~transit:1 in
  Alcotest.(check string) "merged"
    (show_answer (cold_answer ~problem:Solver.Cycle_mean
                    ~objective:Solver.Minimize ~jobs:1 (Dyn.graph s)))
    (show_answer (session_answer s));
  Alcotest.(check int) "fresh session id" 2 a

(* ------------------------------------------------------------------ *)
(* Steady-path allocation                                              *)
(* ------------------------------------------------------------------ *)

(* A weight-only update + re-query on one component must not allocate
   proportionally to the whole graph: the partition, materialization
   and kernel scratch are all reused, so per-round minor words stay
   bounded by the touched component's size (policy seed + finisher),
   not by n = 2048. *)
let steady_allocation () =
  let g = Families.many_scc ~components:64 ~size:32 () in
  let s = Dyn.create g in
  ignore (Dyn.query s);
  (* arc 0 is the 0 -> 1 ring arc of component 0 *)
  for i = 1 to 5 do
    Dyn.set_weight s 0 (100 + i);
    ignore (Dyn.query s)
  done;
  let rounds = 100 in
  let w0 = Gc.minor_words () in
  for i = 1 to rounds do
    Dyn.set_weight s 0 (1000 + (i mod 7));
    ignore (Dyn.query s)
  done;
  let per_round = (Gc.minor_words () -. w0) /. float_of_int rounds in
  Alcotest.(check bool)
    (Printf.sprintf "per-round minor words %.0f < 8192" per_round)
    true
    (per_round < 8192.0)

(* ------------------------------------------------------------------ *)
(* Incremental: ratio problems and set_transit (satellite)             *)
(* ------------------------------------------------------------------ *)

let incremental_ratio () =
  let g = Sprand.generate ~seed:7 ~n:30 ~m:90 ~transits:(1, 5) () in
  let inc = Incremental.create ~problem:Warm.Ratio g in
  let rng = Rng.create 11 in
  for _ = 1 to 25 do
    let a = Rng.int rng (Digraph.m g) in
    if Rng.int rng 2 = 0 then
      Incremental.set_weight inc a (Rng.in_range rng 1 10000)
    else Incremental.set_transit inc a (Rng.in_range rng 1 5);
    let lambda, cycle = Incremental.solve inc in
    let want_l, want_c =
      Howard.minimum_cycle_ratio (Incremental.graph inc)
    in
    Helpers.check_ratio "warm ratio = cold ratio" want_l lambda;
    Alcotest.(check (list int)) "same witness" want_c cycle
  done

let incremental_transit_guard () =
  let g = Digraph.of_weighted_arcs 2 [ (0, 1, 1); (1, 0, 2) ] in
  let inc = Incremental.create g in
  Alcotest.(check bool) "negative transit raises" true
    (match Incremental.set_transit inc 0 (-1) with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad arc raises" true
    (match Incremental.set_transit inc 99 1 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* NDJSON codec                                                        *)
(* ------------------------------------------------------------------ *)

let codec_roundtrip () =
  let ops =
    [
      Dyn_protocol.Update (Dyn.Set_weight { arc = 3; weight = -17 });
      Dyn_protocol.Update (Dyn.Set_transit { arc = 0; transit = 4 });
      Dyn_protocol.Update
        (Dyn.Add_arc { arc = 9; src = 1; dst = 2; weight = 5; transit = 2 });
      Dyn_protocol.Update (Dyn.Remove_arc { arc = 7 });
      Dyn_protocol.Query { q_eps = None; q_exact = false };
      Dyn_protocol.Query { q_eps = None; q_exact = true };
      Dyn_protocol.Query { q_eps = Some 0.05; q_exact = false };
      Dyn_protocol.Query { q_eps = Some 0.001; q_exact = false };
      Dyn_protocol.Epoch;
      Dyn_protocol.Fingerprint_op;
      Dyn_protocol.Telemetry_op;
      Dyn_protocol.Quit;
    ]
  in
  List.iter
    (fun op ->
      let line = Dyn_protocol.render_op op in
      match Dyn_protocol.parse line with
      | Ok op' ->
        Alcotest.(check bool) ("roundtrip " ^ line) true (op = op')
      | Error e -> Alcotest.fail (line ^ ": " ^ e))
    ops

let codec_errors () =
  let bad l =
    match Dyn_protocol.parse l with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "garbage" true (bad "not json");
  Alcotest.(check bool) "missing op" true (bad {|{"arc":1}|});
  Alcotest.(check bool) "unknown op" true (bad {|{"op":"frobnicate"}|});
  Alcotest.(check bool) "missing field" true (bad {|{"op":"set_weight"}|});
  Alcotest.(check bool) "nested value" true (bad {|{"op":{"x":1}}|});
  Alcotest.(check bool) "eps zero" true (bad {|{"op":"query","eps":0}|});
  Alcotest.(check bool) "eps negative" true (bad {|{"op":"query","eps":-0.1}|});
  Alcotest.(check bool) "eps string" true (bad {|{"op":"query","eps":"x"}|});
  Alcotest.(check bool) "bad mode" true (bad {|{"op":"query","mode":"nope"}|});
  Alcotest.(check bool) "mode int" true (bad {|{"op":"query","mode":1}|});
  Alcotest.(check bool) "exact+eps" true
    (bad {|{"op":"query","mode":"exact","eps":0.1}|});
  Alcotest.(check bool) "mode float ok" true
    (match Dyn_protocol.parse {|{"op":"query","mode":"float"}|} with
    | Ok (Dyn_protocol.Query { q_eps = None; q_exact = false }) -> true
    | _ -> false);
  (* defaulted transit parses *)
  Alcotest.(check bool) "default transit" true
    (match Dyn_protocol.parse {|{"op":"add_arc","src":0,"dst":1,"weight":3}|} with
    | Ok (Dyn_protocol.Update (Dyn.Add_arc { transit = 1; arc = -1; _ })) -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Dyn_serve: errors continue the stream, fingerprint cache hits       *)
(* ------------------------------------------------------------------ *)

let contains line needle =
  let ll = String.length line and nl = String.length needle in
  let rec go i = i + nl <= ll && (String.sub line i nl = needle || go (i + 1)) in
  go 0

let serve_reply srv line =
  match Dyn_serve.handle srv line with
  | `Reply r -> r
  | `Quit -> Alcotest.fail "unexpected quit"

let serve_stream () =
  let g = Digraph.of_weighted_arcs 3 [ (0, 1, 2); (1, 0, 4); (2, 2, 9) ] in
  let srv = Dyn_serve.create (Dyn.create g) in
  let r = serve_reply srv {|{"op":"query"}|} in
  Alcotest.(check bool) "first query solves" true
    (contains r {|"cached":false|} && contains r {|"lambda":"3"|});
  (* malformed line mid-stream: structured error, session unharmed *)
  let r = serve_reply srv "}{ nonsense" in
  Alcotest.(check bool) "structured error" true (contains r {|"ok":false|});
  let r = serve_reply srv {|{"op":"set_weight","arc":99,"weight":1}|} in
  Alcotest.(check bool) "bad arc is an error reply" true
    (contains r {|"ok":false|});
  (* a weight change re-solves, reverting it hits the fingerprint cache *)
  ignore (serve_reply srv {|{"op":"set_weight","arc":0,"weight":10}|});
  let r = serve_reply srv {|{"op":"query"}|} in
  Alcotest.(check bool) "changed graph misses" true
    (contains r {|"cached":false|} && contains r {|"lambda":"7"|});
  ignore (serve_reply srv {|{"op":"set_weight","arc":0,"weight":2}|});
  let r = serve_reply srv {|{"op":"query"}|} in
  Alcotest.(check bool) "reverted graph hits the cache" true
    (contains r {|"cached":true|} && contains r {|"lambda":"3"|});
  let r = serve_reply srv {|{"op":"telemetry"}|} in
  Alcotest.(check bool) "telemetry counts the dynamic hit" true
    (contains r {|"cache_hits":1|} && contains r {|"cache_misses":2|});
  (* structural updates through the protocol: add an arc (reply carries
     the assigned session id), remove one, and keep answering *)
  let r = serve_reply srv {|{"op":"add_arc","src":2,"dst":0,"weight":1}|} in
  Alcotest.(check bool) "add_arc replies with the new id" true
    (contains r {|"arc":3|});
  let r = serve_reply srv {|{"op":"query"}|} in
  Alcotest.(check bool) "query after add_arc" true
    (contains r {|"lambda":"3"|});
  let r = serve_reply srv {|{"op":"remove_arc","arc":2}|} in
  Alcotest.(check bool) "remove_arc ok" true (contains r {|"ok":true|});
  let r = serve_reply srv {|{"op":"query"}|} in
  Alcotest.(check bool) "query after remove_arc" true
    (contains r {|"lambda":"3"|} && contains r {|"components":1|});
  Alcotest.(check bool) "quit" true
    (Dyn_serve.handle srv {|{"op":"quit"}|} = `Quit)

(* ------------------------------------------------------------------ *)

let suite =
  [
    (* the nominally-serial legs honor OCR_TEST_JOBS (CI's forced-
       multicore leg sets 8), so every update/query mix also runs
       through the pooled fan-out and the chunked sweep there *)
    Alcotest.test_case "mean/min: 220 mixed updates = cold solves (jobs=1)"
      `Quick
      (mixed_updates ~problem:Solver.Cycle_mean ~objective:Solver.Minimize
         ~jobs:Helpers.default_jobs ~seed:1 ~updates:220);
    Alcotest.test_case "mean/min: 220 mixed updates = cold solves (jobs=8)"
      `Quick
      (mixed_updates ~problem:Solver.Cycle_mean ~objective:Solver.Minimize
         ~jobs:8 ~seed:2 ~updates:220);
    Alcotest.test_case "mean/max: 200 mixed updates = cold solves (jobs=1)"
      `Quick
      (mixed_updates ~problem:Solver.Cycle_mean ~objective:Solver.Maximize
         ~jobs:Helpers.default_jobs ~seed:3 ~updates:200);
    Alcotest.test_case "ratio/min: 220 mixed updates = cold solves (jobs=1)"
      `Quick
      (mixed_updates ~problem:Solver.Cycle_ratio ~objective:Solver.Minimize
         ~jobs:Helpers.default_jobs ~seed:4 ~updates:220);
    Alcotest.test_case "ratio/min: 200 mixed updates = cold solves (jobs=8)"
      `Quick
      (mixed_updates ~problem:Solver.Cycle_ratio ~objective:Solver.Minimize
         ~jobs:8 ~seed:5 ~updates:200);
    Alcotest.test_case "ratio/max: 200 mixed updates = cold solves (jobs=1)"
      `Quick
      (mixed_updates ~problem:Solver.Cycle_ratio ~objective:Solver.Maximize
         ~jobs:Helpers.default_jobs ~seed:6 ~updates:200);
    Alcotest.test_case "journal replay reproduces the session" `Quick
      replay_roundtrip;
    Alcotest.test_case "zero-transit ratio: Solver's message, then cured"
      `Quick zero_transit_parity;
    Alcotest.test_case "overflow preflight: Solver's message" `Quick
      overflow_parity;
    Alcotest.test_case "dead-arc updates raise without ticking the epoch"
      `Quick dead_arc_updates;
    Alcotest.test_case "weight edit + re-query allocates O(component)"
      `Quick steady_allocation;
    Alcotest.test_case "Incremental ratio sessions warm = cold" `Quick
      incremental_ratio;
    Alcotest.test_case "Incremental.set_transit guards" `Quick
      incremental_transit_guard;
    Alcotest.test_case "protocol codec roundtrip" `Quick codec_roundtrip;
    Alcotest.test_case "protocol codec rejects malformed lines" `Quick
      codec_errors;
    Alcotest.test_case "Dyn_serve: errors continue, fingerprint cache hits"
      `Quick serve_stream;
  ]

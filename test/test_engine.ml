(* Engine tests: fingerprint quality, LRU behavior, the budget /
   deadline machinery, Stats merging, and the headline property — the
   engine's results (including cache hits) are identical to a fresh
   [Solver.solve], at --jobs 1 and --jobs 4 alike. *)

let ring ?(w = 1) n =
  Digraph.of_arcs n (List.init n (fun i -> (i, (i + 1) mod n, w, 1)))

(* ------------------------------------------------------------------ *)
(* fingerprint                                                         *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_distinct () =
  (* a few hundred structurally different graphs must all hash apart *)
  let seen = Hashtbl.create 1024 in
  let remember g =
    let hex = Fingerprint.to_hex (Fingerprint.of_graph g) in
    if Hashtbl.mem seen hex then
      Alcotest.failf "fingerprint collision on %s" hex;
    Hashtbl.replace seen hex ()
  in
  for seed = 1 to 300 do
    let n = 4 + (seed mod 23) in
    let m = n + (seed mod 37) in
    remember (Sprand.generate ~seed ~n ~m ())
  done;
  for n = 1 to 50 do
    remember (ring n)
  done;
  Alcotest.(check int) "all distinct" 350 (Hashtbl.length seen)

let test_fingerprint_sensitivity () =
  let base = ring 5 in
  let bumped =
    Digraph.of_arcs 5
      ((0, 1, 2, 1) :: List.init 4 (fun i -> (i + 1, (i + 2) mod 5, 1, 1)))
  in
  let transit =
    Digraph.of_arcs 5
      ((0, 1, 1, 2) :: List.init 4 (fun i -> (i + 1, (i + 2) mod 5, 1, 1)))
  in
  let fp = Fingerprint.of_graph in
  Alcotest.(check bool) "weight change" false (Fingerprint.equal (fp base) (fp bumped));
  Alcotest.(check bool) "transit change" false (Fingerprint.equal (fp base) (fp transit));
  (* arc ids are part of the structure (witness cycles name them), so
     a permuted arc list is a different identity... *)
  let arcs = List.init 5 (fun i -> (i, (i + 1) mod 5, 1, 1)) in
  let permuted = Digraph.of_arcs 5 (List.rev arcs) in
  Alcotest.(check bool) "permuted arc list differs" false
    (Fingerprint.equal (fp base) (fp permuted));
  (* ...while rebuilding the same graph reproduces the fingerprint *)
  let same = Digraph.of_arcs 5 arcs in
  Alcotest.(check bool) "same construction equal" true
    (Fingerprint.equal (fp base) (fp same));
  Alcotest.(check int) "hash consistent" (Fingerprint.hash (fp base))
    (Fingerprint.hash (fp same))

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction_promotion () =
  let c = Lru.create ~capacity:2 in
  Lru.add c 1 "a";
  Lru.add c 2 "b";
  (* touching 1 promotes it, so adding 3 evicts 2 *)
  Alcotest.(check (option string)) "find 1" (Some "a") (Lru.find c 1);
  Lru.add c 3 "c";
  Alcotest.(check (option string)) "2 evicted" None (Lru.find c 2);
  Alcotest.(check (option string)) "1 kept" (Some "a") (Lru.find c 1);
  Alcotest.(check (option string)) "3 present" (Some "c") (Lru.find c 3);
  Alcotest.(check int) "length" 2 (Lru.length c);
  (* refresh of an existing key must not evict *)
  Lru.add c 1 "a'";
  Alcotest.(check (option string)) "refreshed" (Some "a'") (Lru.find c 1);
  Alcotest.(check int) "length stable" 2 (Lru.length c)

let test_lru_disabled () =
  let c = Lru.create ~capacity:0 in
  Lru.add c 1 "a";
  Alcotest.(check (option string)) "disabled cache stores nothing" None
    (Lru.find c 1);
  Alcotest.(check int) "empty" 0 (Lru.length c)

(* ------------------------------------------------------------------ *)
(* budget                                                              *)
(* ------------------------------------------------------------------ *)

let test_budget_iterations () =
  let b = Budget.create ~max_iterations:3 () in
  Budget.tick b;
  Budget.tick b;
  Budget.tick b;
  Alcotest.check_raises "4th tick" (Budget.Exceeded Budget.Iterations)
    (fun () -> Budget.tick b)

let test_budget_deadline () =
  let time = ref 0.0 in
  let b =
    Budget.create ~now:(fun () -> !time) ~deadline_at:5.0 ()
  in
  Budget.check b;
  Budget.tick b;
  time := 10.0;
  Alcotest.check_raises "past deadline" (Budget.Exceeded Budget.Deadline)
    (fun () -> Budget.check b);
  Alcotest.check_raises "tick sees the clock too"
    (Budget.Exceeded Budget.Deadline) (fun () -> Budget.tick b)

(* Two disjoint rings with different cycle means: sweeping the
   iteration allowance must pass through all three regimes — nothing
   solved, a partial bound over the completed component, and the full
   optimum. *)
let test_solver_deadline_partial () =
  let g =
    Digraph.of_arcs 6
      (List.init 3 (fun i -> (i, (i + 1) mod 3, 1, 1))
      @ List.init 3 (fun i -> (i + 3, 3 + ((i + 1) mod 3), 2, 1)))
  in
  let solve_with k =
    let budget = Budget.create ~max_iterations:k () in
    match Solver.solve ~algorithm:Registry.Howard ~budget g with
    | exception Solver.Deadline_exceeded { partial } -> `Cut partial
    | Some r -> `Done r
    | None -> Alcotest.fail "unexpectedly acyclic"
  in
  let saw_none = ref false and saw_partial = ref false and done_ = ref None in
  for k = 0 to 50 do
    if !done_ = None then
      match solve_with k with
      | `Cut None -> saw_none := true
      | `Cut (Some r) ->
        saw_partial := true;
        (* a partial minimum over completed components is an upper
           bound on the true optimum *)
        Alcotest.(check bool) "upper bound" true
          (Ratio.leq (Ratio.make 1 1) r.Solver.lambda)
      | `Done r -> done_ := Some r
  done;
  Alcotest.(check bool) "tiny budgets cut before any component" true !saw_none;
  Alcotest.(check bool) "some budget yields a partial bound" true !saw_partial;
  match !done_ with
  | None -> Alcotest.fail "never completed within 50 iterations"
  | Some r ->
    Helpers.check_ratio "full optimum" (Ratio.make 1 1) r.Solver.lambda;
    Alcotest.(check int) "both components" 2 r.Solver.components

let test_stats_merge () =
  let s1 = Stats.create () and s2 = Stats.create () in
  s1.Stats.iterations <- 3;
  s1.Stats.relaxations <- 5;
  s1.Stats.heap.Heap_stats.inserts <- 7;
  s2.Stats.iterations <- 4;
  s2.Stats.arcs_visited <- 11;
  s2.Stats.heap.Heap_stats.inserts <- 2;
  let m = Stats.merge s1 s2 in
  Alcotest.(check int) "iterations" 7 m.Stats.iterations;
  Alcotest.(check int) "relaxations" 5 m.Stats.relaxations;
  Alcotest.(check int) "arcs_visited" 11 m.Stats.arcs_visited;
  Alcotest.(check int) "heap inserts" 9 m.Stats.heap.Heap_stats.inserts;
  (* inputs untouched *)
  Alcotest.(check int) "s1 intact" 3 s1.Stats.iterations;
  Alcotest.(check int) "s2 intact" 4 s2.Stats.iterations

(* ------------------------------------------------------------------ *)
(* engine vs solver                                                    *)
(* ------------------------------------------------------------------ *)

let with_engine ~jobs ?(cache_size = 16) f =
  let eng = Engine.create ~jobs ~cache_size () in
  Fun.protect ~finally:(fun () -> Engine.shutdown eng) (fun () -> f eng)

let spec_of ~problem ~objective ~algorithm ~verify =
  {
    (Request.default_spec "mem") with
    Request.problem;
    objective;
    algorithm;
    verify;
  }

(* The headline property: for any graph, a batch containing the same
   request twice returns (1) a fresh result identical to Solver.solve —
   lambda, witness cycle, component count — and (2) a cached duplicate
   carrying the very same answer, certified against the request's
   graph. *)
let qcheck_engine_matches_solver jobs =
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "engine --jobs %d = Solver.solve (incl. cache hits)" jobs)
    QCheck.(
      pair
        (Helpers.arb_any_graph ~max_n:8 ~max_m:16 ~tmax:3 ())
        (pair bool bool))
    (fun (g, (maximize, ratio)) ->
      let objective = if maximize then Solver.Maximize else Solver.Minimize in
      let problem = if ratio then Solver.Cycle_ratio else Solver.Cycle_mean in
      let spec =
        spec_of ~problem ~objective
          ~algorithm:(Request.Fixed Registry.Howard) ~verify:true
      in
      with_engine ~jobs (fun eng ->
          let reqs =
            [ Request.make ~id:1 ~graph:g spec;
              Request.make ~id:2 ~graph:g spec ]
          in
          let expect =
            Solver.solve ~objective ~problem ~algorithm:Registry.Howard g
          in
          match (Engine.run_batch eng reqs, expect) with
          | [ { Engine.outcome = Engine.Acyclic; _ };
              { Engine.outcome = Engine.Acyclic; _ } ], None ->
            true
          | [ { Engine.outcome = Engine.Solved s1; _ };
              { Engine.outcome = Engine.Solved s2; _ } ], Some r ->
            Ratio.equal s1.lambda r.Solver.lambda
            && s1.cycle = r.Solver.cycle
            && s1.components = r.Solver.components
            && (not s1.cached) && s1.certified
            && s2.cached && s2.certified
            && Ratio.equal s2.lambda s1.lambda
            && s2.cycle = s1.cycle
          | _ -> false))

(* Response lines — the entire observable batch output — are
   byte-identical across --jobs settings, with the Auto portfolio. *)
let qcheck_jobs_byte_identical =
  QCheck.Test.make ~count:40 ~name:"batch output identical at --jobs 1 and 4"
    (Helpers.arb_any_graph ~max_n:10 ~max_m:24 ~tmax:2 ())
    (fun g ->
      let spec =
        spec_of ~problem:Solver.Cycle_mean ~objective:Solver.Minimize
          ~algorithm:Request.Auto ~verify:false
      in
      let reqs =
        [ Request.make ~id:1 ~graph:g spec;
          Request.make ~id:2 ~graph:g spec;
          Request.make ~id:3 ~graph:g spec ]
      in
      let lines jobs =
        with_engine ~jobs (fun eng ->
            List.map
              (fun r -> Engine.response_line r)
              (Engine.run_batch eng reqs))
      in
      lines 1 = lines 4)

let test_serve_path_counters () =
  with_engine ~jobs:1 (fun eng ->
      let g = ring 7 in
      let spec =
        spec_of ~problem:Solver.Cycle_mean ~objective:Solver.Minimize
          ~algorithm:Request.Auto ~verify:true
      in
      let r1 = Engine.solve eng (Request.make ~id:1 ~graph:g spec) in
      let r2 = Engine.solve eng (Request.make ~id:2 ~graph:g spec) in
      (match (r1.Engine.outcome, r2.Engine.outcome) with
      | Engine.Solved s1, Engine.Solved s2 ->
        Alcotest.(check bool) "fresh then cached" true
          ((not s1.cached) && s2.cached);
        Alcotest.(check bool) "hit re-certified" true s2.certified
      | _ -> Alcotest.fail "expected two solved responses");
      let tel = Engine.telemetry eng in
      Alcotest.(check int) "requests" 2 tel.Telemetry.requests;
      Alcotest.(check int) "hits" 1 tel.Telemetry.cache_hits;
      Alcotest.(check int) "misses" 1 tel.Telemetry.cache_misses;
      Alcotest.(check int) "collisions" 0 tel.Telemetry.collisions)

let test_deadline_zero_times_out () =
  with_engine ~jobs:1 (fun eng ->
      let g = ring 9 in
      let spec =
        { (spec_of ~problem:Solver.Cycle_mean ~objective:Solver.Minimize
             ~algorithm:Request.Auto ~verify:false)
          with Request.deadline_ms = Some 0.0 }
      in
      match (Engine.solve eng (Request.make ~id:1 ~graph:g spec)).Engine.outcome with
      | Engine.Timeout { attempted; _ } ->
        Alcotest.(check bool) "tried at least one algorithm" true
          (attempted <> [])
      | _ -> Alcotest.fail "expected a timeout")

let suite =
  [
    Alcotest.test_case "fingerprint: 350 graphs, no collision" `Quick
      test_fingerprint_distinct;
    Alcotest.test_case "fingerprint: sensitive to every field" `Quick
      test_fingerprint_sensitivity;
    Alcotest.test_case "lru: eviction + promotion" `Quick
      test_lru_eviction_promotion;
    Alcotest.test_case "lru: capacity 0 disables" `Quick test_lru_disabled;
    Alcotest.test_case "budget: iteration allowance" `Quick
      test_budget_iterations;
    Alcotest.test_case "budget: deadline clock" `Quick test_budget_deadline;
    Alcotest.test_case "solver: deadline partial results" `Quick
      test_solver_deadline_partial;
    Alcotest.test_case "stats: merge" `Quick test_stats_merge;
    Alcotest.test_case "engine: serve-path cache counters" `Quick
      test_serve_path_counters;
    Alcotest.test_case "engine: deadline 0 times out" `Quick
      test_deadline_zero_times_out;
  ]
  @ Helpers.qtests
      [
        qcheck_engine_matches_solver 1;
        qcheck_engine_matches_solver 4;
        qcheck_jobs_byte_identical;
      ]

let g () = Families.two_cycles ~len1:2 ~w1:6 ~len2:3 ~w2:3

let good_cycle g =
  (Solver.minimum_cycle_mean g |> Option.get).Solver.cycle

let test_accepts_correct_result () =
  let g = g () in
  let r = Solver.minimum_cycle_mean g |> Option.get in
  Alcotest.(check bool) "Ok" true (Verify.certify_report g r = Ok ())

let expect_error got =
  match got with
  | Ok () -> Alcotest.fail "expected the certificate to fail"
  | Error _ -> ()

let test_rejects_wrong_lambda () =
  let g = g () in
  expect_error (Verify.certify g (Helpers.r 2 1) (good_cycle g));
  expect_error (Verify.certify g (Helpers.r 6 1) (good_cycle g))

let test_rejects_bad_witness () =
  let g = g () in
  expect_error (Verify.certify g (Helpers.r 3 1) []);
  expect_error (Verify.certify g (Helpers.r 3 1) [ 0 ])

let test_rejects_suboptimal_cycle () =
  let g = g () in
  (* the weight-6 cycle: a genuine cycle with the WRONG (non-optimal) mean *)
  let heavy =
    List.filter (fun a -> Digraph.weight g a = 6) (List.init (Digraph.m g) Fun.id)
  in
  (* claiming its own mean (6) must fail the optimality step *)
  expect_error (Verify.certify g (Helpers.r 6 1) heavy)

let test_maximize_certification () =
  let g = g () in
  let r = Solver.maximum_cycle_mean g |> Option.get in
  Alcotest.(check bool) "max certificate" true
    (Verify.certify_report ~objective:Solver.Maximize g r = Ok ());
  (* the same report fails under the wrong objective *)
  expect_error (Verify.certify_report ~objective:Solver.Minimize g r)

let test_ratio_certification () =
  let g = Digraph.of_arcs 2 [ (0, 1, 6, 2); (1, 0, 2, 2); (0, 0, 30, 3) ] in
  let r = Solver.minimum_cycle_ratio g |> Option.get in
  Alcotest.(check bool) "ratio certificate" true
    (Verify.certify_report ~problem:Solver.Cycle_ratio g r = Ok ())

let qcheck_all_reports_certify =
  QCheck.Test.make ~name:"verify: every solver report certifies" ~count:150
    (Helpers.arb_any_graph ~max_n:8 ~max_m:18 ())
    (fun g ->
      match Solver.minimum_cycle_mean g with
      | None -> true
      | Some r -> Verify.certify_report g r = Ok ())

let qcheck_shifted_lambda_rejected =
  QCheck.Test.make ~name:"verify: perturbed lambda is rejected" ~count:150
    (Helpers.arb_strongly_connected ~max_n:7 ~max_extra:10 ())
    (fun g ->
      match Solver.minimum_cycle_mean g with
      | None -> true
      | Some r ->
        let shifted = Ratio.add r.Solver.lambda Ratio.one in
        Verify.certify g shifted r.Solver.cycle <> Ok ())

let suite =
  [
    Alcotest.test_case "accepts correct result" `Quick test_accepts_correct_result;
    Alcotest.test_case "rejects wrong lambda" `Quick test_rejects_wrong_lambda;
    Alcotest.test_case "rejects bad witness" `Quick test_rejects_bad_witness;
    Alcotest.test_case "rejects suboptimal cycle" `Quick
      test_rejects_suboptimal_cycle;
    Alcotest.test_case "maximize certification" `Quick test_maximize_certification;
    Alcotest.test_case "ratio certification" `Quick test_ratio_certification;
  ]
  @ Helpers.qtests [ qcheck_all_reports_certify; qcheck_shifted_lambda_rejected ]

let w g = Digraph.weight g

let test_feasible () =
  let g = Digraph.of_weighted_arcs 3 [ (0, 1, 2); (1, 2, 3); (2, 0, -4) ] in
  match Bellman_ford.run ~cost:(w g) g with
  | Bellman_ford.Negative_cycle _ -> Alcotest.fail "cycle weight is +1, not negative"
  | Bellman_ford.Feasible d ->
    Digraph.iter_arcs g (fun a ->
        Alcotest.(check bool) "potential inequality" true
          (d.(Digraph.dst g a) <= d.(Digraph.src g a) + Digraph.weight g a))

let test_negative_cycle () =
  let g =
    Digraph.of_weighted_arcs 4
      [ (0, 1, 1); (1, 2, -2); (2, 1, -1); (2, 3, 5) ]
  in
  match Bellman_ford.negative_cycle ~cost:(w g) g with
  | None -> Alcotest.fail "cycle 1->2->1 has weight -3"
  | Some c ->
    Alcotest.(check bool) "is a cycle" true (Digraph.is_cycle g c);
    Alcotest.(check bool) "negative weight" true (Digraph.cycle_weight g c < 0)

let test_negative_self_loop () =
  let g = Digraph.of_weighted_arcs 2 [ (0, 1, 3); (1, 1, -1) ] in
  match Bellman_ford.negative_cycle ~cost:(w g) g with
  | Some [ a ] ->
    Alcotest.(check int) "the self loop" 1 a
  | Some _ -> Alcotest.fail "expected a length-1 cycle"
  | None -> Alcotest.fail "missed negative self loop"

let test_zero_cycle_not_negative () =
  let g = Digraph.of_weighted_arcs 2 [ (0, 1, 5); (1, 0, -5) ] in
  Alcotest.(check bool) "zero cycle is not negative" true
    (Bellman_ford.negative_cycle ~cost:(w g) g = None)

let test_custom_cost () =
  (* recost so the cycle becomes negative *)
  let g = Digraph.of_weighted_arcs 2 [ (0, 1, 5); (1, 0, -5) ] in
  let cost a = Digraph.weight g a - 1 in
  Alcotest.(check bool) "shifted costs reveal a cycle" true
    (Bellman_ford.negative_cycle ~cost g <> None)

let test_shortest_from () =
  let g =
    Digraph.of_weighted_arcs 5
      [ (0, 1, 4); (0, 2, 1); (2, 1, 1); (1, 3, 1); (2, 3, 5) ]
  in
  match Bellman_ford.shortest_from ~cost:(w g) g 0 with
  | Error _ -> Alcotest.fail "no negative cycle here"
  | Ok (dist, pred) ->
    Alcotest.(check int) "d(1) via 2" 2 dist.(1);
    Alcotest.(check int) "d(3)" 3 dist.(3);
    Alcotest.(check int) "unreachable" max_int dist.(4);
    Alcotest.(check int) "pred of 1 is arc 2->1" 2 pred.(1)

let test_disconnected_potentials () =
  (* virtual-source form must cover disconnected graphs *)
  let g = Digraph.of_weighted_arcs 4 [ (0, 1, -7); (2, 3, -7) ] in
  match Bellman_ford.potentials ~cost:(w g) g with
  | None -> Alcotest.fail "acyclic graph has potentials"
  | Some d ->
    Alcotest.(check bool) "both components constrained" true
      (d.(1) <= d.(0) - 7 && d.(3) <= d.(2) - 7)

let test_relax_counting () =
  (* negative costs force relaxations even from the all-zero virtual
     source start *)
  let g = Sprand.generate ~seed:2 ~n:30 ~m:90 () in
  let cost a = Digraph.weight g a - 10001 in
  let count = ref 0 in
  ignore (Bellman_ford.run ~on_relax:(fun () -> incr count) ~cost g);
  Alcotest.(check bool) "some relaxations happen" true (!count > 0)

let test_float_variant () =
  let g = Digraph.of_weighted_arcs 3 [ (0, 1, 3); (1, 2, 3); (2, 0, 3) ] in
  (* mean is 3: negative iff lambda > 3 *)
  let cost lambda a = float_of_int (Digraph.weight g a) -. lambda in
  Alcotest.(check bool) "no cycle below the mean" true
    (Bellman_ford.negative_cycle_float ~cost:(cost 2.9) g = None);
  (match Bellman_ford.negative_cycle_float ~cost:(cost 3.1) g with
  | Some c -> Alcotest.(check bool) "cycle found above the mean" true (Digraph.is_cycle g c)
  | None -> Alcotest.fail "lambda=3.1 must reveal the cycle")

(* property: outcome matches the oracle's minimum cycle weight sign *)
let qcheck_negative_cycle_iff =
  QCheck.Test.make
    ~name:"bellman-ford: negative cycle found iff some cycle is negative"
    ~count:300
    (Helpers.arb_any_graph ~max_n:7 ~max_m:18 ~wlo:(-10) ~whi:10 ())
    (fun g ->
      let has_neg = ref false in
      ignore
        (Cycles.iter_cycles g (fun c ->
             if Digraph.cycle_weight g c < 0 then has_neg := true));
      let found = Bellman_ford.negative_cycle ~cost:(w g) g in
      (match found with
      | Some c ->
        Digraph.is_cycle g c && Digraph.cycle_weight g c < 0 && !has_neg
      | None -> not !has_neg))

let qcheck_potentials_feasible =
  QCheck.Test.make ~name:"bellman-ford: returned potentials are feasible"
    ~count:300
    (Helpers.arb_any_graph ~max_n:8 ~max_m:16 ~wlo:0 ~whi:15 ())
    (fun g ->
      match Bellman_ford.potentials ~cost:(w g) g with
      | None -> false (* non-negative weights: no negative cycle *)
      | Some d ->
        Digraph.fold_arcs g
          (fun ok a ->
            ok && d.(Digraph.dst g a) <= d.(Digraph.src g a) + Digraph.weight g a)
          true)

let suite =
  [
    Alcotest.test_case "feasible potentials" `Quick test_feasible;
    Alcotest.test_case "negative cycle extraction" `Quick test_negative_cycle;
    Alcotest.test_case "negative self loop" `Quick test_negative_self_loop;
    Alcotest.test_case "zero cycle not negative" `Quick test_zero_cycle_not_negative;
    Alcotest.test_case "custom cost callback" `Quick test_custom_cost;
    Alcotest.test_case "single-source distances" `Quick test_shortest_from;
    Alcotest.test_case "disconnected potentials" `Quick test_disconnected_potentials;
    Alcotest.test_case "relaxation counter" `Quick test_relax_counting;
    Alcotest.test_case "float variant" `Quick test_float_variant;
  ]
  @ Helpers.qtests [ qcheck_negative_cycle_iff; qcheck_potentials_feasible ]

(* The arcs-per-chunk granularity model: chunks_for decides how many
   ways a sweep over [work] arcs splits on a [jobs]-worker pool given a
   [grain] (minimum arcs per chunk).  The contract the kernel relies
   on: never more chunks than workers, never a chunk smaller than the
   grain (so work under twice the grain stays serial), and a serial
   pool never splits at all. *)

let with_pool jobs f =
  let pool = Executor.create ~jobs in
  Fun.protect ~finally:(fun () -> Executor.shutdown pool) (fun () -> f pool)

let test_chunks_for_serial_pool () =
  with_pool 1 (fun p ->
      List.iter
        (fun work ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=1, work=%d" work)
            1
            (Executor.chunks_for p ~work ~grain:Executor.default_chunk_arcs))
        [ 0; 1; 4096; 1_000_000 ])

let test_chunks_for_grain_floor () =
  with_pool 8 (fun p ->
      (* below twice the grain there is no split: the second chunk
         would be under-grain *)
      List.iter
        (fun work ->
          Alcotest.(check int)
            (Printf.sprintf "work=%d stays serial" work)
            1
            (Executor.chunks_for p ~work ~grain:4096))
        [ 0; 1; 4095; 4096; 8191 ];
      Alcotest.(check int) "work=2*grain splits in two" 2
        (Executor.chunks_for p ~work:8192 ~grain:4096);
      Alcotest.(check int) "work=3*grain+1 splits in three" 3
        (Executor.chunks_for p ~work:12289 ~grain:4096))

let test_chunks_for_jobs_cap () =
  with_pool 4 (fun p ->
      Alcotest.(check int) "huge work is capped at the pool size" 4
        (Executor.chunks_for p ~work:10_000_000 ~grain:4096);
      (* every chunk still holds at least the grain at the cap *)
      let work = 10_000_000 and grain = 4096 in
      let chunks = Executor.chunks_for p ~work ~grain in
      Alcotest.(check bool) "chunks * grain <= work" true
        (chunks * grain <= work))

let test_chunks_for_degenerate_grain () =
  with_pool 8 (fun p ->
      Alcotest.(check int) "grain=0 means serial" 1
        (Executor.chunks_for p ~work:100_000 ~grain:0);
      Alcotest.(check int) "negative grain means serial" 1
        (Executor.chunks_for p ~work:100_000 ~grain:(-7));
      Alcotest.(check int) "negative work means serial" 1
        (Executor.chunks_for p ~work:(-1) ~grain:4096))

let test_chunk_arcs_default () =
  (* the test environment does not set OCR_CHUNK_ARCS, so the
     documented default must come back *)
  match Sys.getenv_opt "OCR_CHUNK_ARCS" with
  | Some _ -> ()  (* externally overridden: nothing to pin *)
  | None ->
    Alcotest.(check int) "default grain" Executor.default_chunk_arcs
      (Executor.chunk_arcs ());
    Alcotest.(check int) "documented minimum" 4096 Executor.default_chunk_arcs

let qcheck_chunks_for_invariants =
  QCheck.Test.make ~name:"executor: chunks_for invariants" ~count:60
    QCheck.(triple (int_range 1 8) (int_range 0 100_000) (int_range 1 10_000))
    (fun (jobs, work, grain) ->
      with_pool jobs (fun p ->
          let chunks = Executor.chunks_for p ~work ~grain in
          chunks >= 1
          && chunks <= jobs
          && (jobs = 1 || chunks <= max 1 (work / grain))
          && (chunks = 1 || chunks * grain <= work)))

let suite =
  [
    Alcotest.test_case "serial pool never splits" `Quick
      test_chunks_for_serial_pool;
    Alcotest.test_case "grain is a floor, not a target" `Quick
      test_chunks_for_grain_floor;
    Alcotest.test_case "pool size caps the split" `Quick
      test_chunks_for_jobs_cap;
    Alcotest.test_case "degenerate grain or work stays serial" `Quick
      test_chunks_for_degenerate_grain;
    Alcotest.test_case "OCR_CHUNK_ARCS default" `Quick test_chunk_arcs_default;
  ]
  @ Helpers.qtests [ qcheck_chunks_for_invariants ]

(* Exact-answer mode: the Stern–Brocot lane, the rational certificate
   cross-check, mode=exact request parsing, and the headline property —
   every float-mode answer on integer-weight inputs sits within 1 ulp
   of the exact rational certificate, across all generator families ×
   mean/ratio × min/max × job counts. *)

let ulp x = Float.succ (Float.abs x) -. Float.abs x

let with_engine ~jobs ?(cache_size = 16) f =
  let eng = Engine.create ~jobs ~cache_size () in
  Fun.protect ~finally:(fun () -> Engine.shutdown eng) (fun () -> f eng)

let spec_of ?(algorithm = Request.Auto) ?(mode = Request.Float_answer)
    ~problem ~objective () =
  {
    (Request.default_spec "mem") with
    Request.problem;
    objective;
    algorithm;
    mode;
  }

(* ------------------------------------------------------------------ *)
(* lane registration and direct Stern–Brocot answers                   *)
(* ------------------------------------------------------------------ *)

let test_lane_registered () =
  Alcotest.(check bool)
    "exact lane registered" true
    (Registry.exact_lane "exact" <> None);
  Alcotest.(check bool)
    "listed" true
    (List.mem "exact" (Registry.exact_lane_names ()))

let test_sb_direct () =
  (* 0 -3-> 1 -4-> 0: the only cycle has mean 7/2 *)
  let g = Digraph.of_arcs 2 [ (0, 1, 3, 1); (1, 0, 4, 1) ] in
  let lambda, cycle = Stern_brocot.minimum_cycle_mean g in
  Helpers.check_ratio "mean" (Helpers.r 7 2) lambda;
  Alcotest.(check (list int)) "witness" [ 0; 1 ] (List.sort compare cycle);
  (* same arcs with transits 1 and 2: ratio 7/3 *)
  let g2 = Digraph.of_arcs 2 [ (0, 1, 3, 1); (1, 0, 4, 2) ] in
  let lambda2, _ = Stern_brocot.minimum_cycle_ratio g2 in
  Helpers.check_ratio "ratio" (Helpers.r 7 3) lambda2;
  (* negative optimum exercises the left half of the tree *)
  let g3 = Digraph.of_arcs 3 [ (0, 1, -5, 1); (1, 2, 2, 1); (2, 0, -4, 1) ] in
  let lambda3, _ = Stern_brocot.minimum_cycle_mean g3 in
  Helpers.check_ratio "negative mean" (Helpers.r (-7) 3) lambda3;
  Alcotest.check_raises "acyclic input"
    (Invalid_argument "Stern_brocot: input graph is acyclic") (fun () ->
      ignore (Stern_brocot.minimum_cycle_mean (Digraph.of_arcs 2 [ (0, 1, 1, 1) ])))

(* The lane never looks at a float: on a strongly connected family
   instance it must reproduce the oracle exactly. *)
let qcheck_sb_matches_oracle =
  QCheck.Test.make ~count:120 ~name:"stern_brocot = oracle (mean and ratio)"
    (Helpers.arb_strongly_connected ~max_n:8 ~max_extra:14 ~tmax:3 ())
    (fun g ->
      let mean, _ = Stern_brocot.minimum_cycle_mean g in
      let ratio, _ = Stern_brocot.minimum_cycle_ratio g in
      let om = Option.get (Helpers.oracle_mean Oracle.Minimize g) in
      let orr = Option.get (Helpers.oracle_ratio Oracle.Minimize g) in
      Ratio.equal mean om && Ratio.equal ratio orr)

(* ------------------------------------------------------------------ *)
(* request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let test_parse_exact () =
  (match Request.parse_spec "g.ocr mode=exact" with
  | Ok s ->
    Alcotest.(check bool) "mode parsed" true (s.Request.mode = Request.Exact_answer)
  | Error e -> Alcotest.fail e);
  (match Request.parse_spec "g.ocr algorithm=exact" with
  | Ok s ->
    Alcotest.(check bool) "lane parsed" true (s.Request.algorithm = Request.Exact)
  | Error e -> Alcotest.fail e);
  let bad l = Result.is_error (Request.parse_spec l) in
  Alcotest.(check bool) "mode=exact algorithm=approx" true
    (bad "g.ocr mode=exact algorithm=approx");
  Alcotest.(check bool) "mode=exact approx-eps" true
    (bad "g.ocr mode=exact approx-eps=0.1");
  Alcotest.(check bool) "algorithm=exact approx-eps" true
    (bad "g.ocr algorithm=exact approx-eps=0.1");
  Alcotest.(check bool) "malformed mode" true (bad "g.ocr mode=banana");
  (* spec_to_string round-trips the new keys *)
  List.iter
    (fun line ->
      match Request.parse_spec line with
      | Error e -> Alcotest.fail e
      | Ok s -> (
        match Request.parse_spec (Request.spec_to_string s) with
        | Ok s' -> Alcotest.(check bool) ("roundtrip " ^ line) true (s = s')
        | Error e -> Alcotest.fail e))
    [
      "g.ocr mode=exact";
      "g.ocr algorithm=exact";
      "g.ocr problem=ratio objective=max algorithm=exact mode=exact";
    ]

(* ------------------------------------------------------------------ *)
(* engine: certificates, cache-key separation                          *)
(* ------------------------------------------------------------------ *)

let ring n = Digraph.of_arcs n (List.init n (fun i -> (i, (i + 1) mod n, 1, 1)))

let test_mode_distinct_cache () =
  let g = ring 4 in
  with_engine ~jobs:1 (fun eng ->
      let fspec =
        spec_of ~problem:Solver.Cycle_mean ~objective:Solver.Minimize ()
      in
      let espec = { fspec with Request.mode = Request.Exact_answer } in
      match
        ( (Engine.solve eng (Request.make ~id:1 ~graph:g fspec)).Engine.outcome,
          (Engine.solve eng (Request.make ~id:2 ~graph:g espec)).Engine.outcome,
          (Engine.solve eng (Request.make ~id:3 ~graph:g espec)).Engine.outcome
        )
      with
      | Engine.Solved s1, Engine.Solved s2, Engine.Solved s3 ->
        Alcotest.(check bool) "float answer carries no cert" true
          (s1.exact = None);
        (* the float entry must NOT satisfy the exact request: distinct
           cache keys force a fresh certified solve *)
        Alcotest.(check bool) "exact miss despite float entry" true
          ((not s2.cached) && s2.exact <> None);
        Alcotest.(check bool) "exact hit keeps its cert" true
          (s3.cached && s3.exact <> None)
      | _ -> Alcotest.fail "unexpected outcomes");
  Alcotest.(check bool)
    "keys differ on mode only" true
    (Request.key (Request.make ~id:1 ~graph:g
         (spec_of ~problem:Solver.Cycle_mean ~objective:Solver.Minimize ()))
    <> Request.key (Request.make ~id:1 ~graph:g
         (spec_of ~mode:Request.Exact_answer ~problem:Solver.Cycle_mean
            ~objective:Solver.Minimize ())))

let test_certificate_errors () =
  let g = ring 4 in
  let cycle = [ 0; 1; 2; 3 ] in
  (match Verify.rational_certificate g Ratio.one cycle with
  | Ok cert -> Helpers.check_ratio "certificate" Ratio.one cert
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "wrong lambda rejected" true
    (Result.is_error (Verify.rational_certificate g (Helpers.r 2 1) cycle));
  Alcotest.(check bool) "empty witness rejected" true
    (Result.is_error (Verify.rational_certificate g Ratio.one []));
  Alcotest.(check bool) "non-cycle rejected" true
    (Result.is_error (Verify.rational_certificate g Ratio.one [ 0; 2 ]))

(* ------------------------------------------------------------------ *)
(* the headline properties                                             *)
(* ------------------------------------------------------------------ *)

let objective_of b = if b then Solver.Maximize else Solver.Minimize
let problem_of b = if b then Solver.Cycle_ratio else Solver.Cycle_mean

(* Exact lane through the engine (per-SCC decomposition, objective
   restoration) answers exactly what Solver.solve answers, with a
   certificate agreeing with λ. *)
let qcheck_exact_lane_matches_solver jobs =
  QCheck.Test.make ~count:40
    ~name:(Printf.sprintf "algorithm=exact --jobs %d = Solver.solve" jobs)
    QCheck.(pair (Helpers.arb_family ()) (pair bool bool))
    (fun (g, (maximize, ratio)) ->
      let objective = objective_of maximize and problem = problem_of ratio in
      let spec =
        spec_of ~algorithm:Request.Exact ~mode:Request.Exact_answer ~problem
          ~objective ()
      in
      with_engine ~jobs (fun eng ->
          let resp = Engine.solve eng (Request.make ~id:1 ~graph:g spec) in
          let expect =
            Solver.solve ~objective ~problem ~algorithm:Registry.Howard g
          in
          match (resp.Engine.outcome, expect) with
          | Engine.Acyclic, None -> true
          | Engine.Solved s, Some r ->
            Ratio.equal s.lambda r.Solver.lambda
            && s.algorithm = "exact"
            && (match s.exact with
               | Some cert -> Ratio.equal cert s.lambda
               | None -> false)
          | _ -> false))

(* Every float-mode answer on integer-weight inputs is pinned inside
   the rational certificate: the Auto portfolio's λ equals the witness
   cycle's exact integer ratio, its denominator respects the paper's
   bound (n for means, total transit for ratios), the representation is
   canonical, and the rendered float is within 1 ulp. *)
let qcheck_float_pinned jobs =
  QCheck.Test.make ~count:60
    ~name:
      (Printf.sprintf "float answer within 1 ulp of certificate --jobs %d" jobs)
    QCheck.(pair (Helpers.arb_family ()) (pair bool bool))
    (fun (g, (maximize, ratio)) ->
      let objective = objective_of maximize and problem = problem_of ratio in
      let spec = spec_of ~mode:Request.Exact_answer ~problem ~objective () in
      with_engine ~jobs (fun eng ->
          match
            (Engine.solve eng (Request.make ~id:1 ~graph:g spec)).Engine.outcome
          with
          | Engine.Acyclic -> true
          | Engine.Solved s -> (
            match s.exact with
            | None -> false
            | Some cert ->
              let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
              let dmax =
                match problem with
                | Solver.Cycle_mean -> Digraph.n g
                | Solver.Cycle_ratio -> Digraph.total_transit g
              in
              Ratio.equal cert s.lambda
              && Ratio.den cert > 0
              && Ratio.den cert <= dmax
              && (Ratio.num cert = 0
                 || gcd (abs (Ratio.num cert)) (Ratio.den cert) = 1)
              && Float.abs (Ratio.to_float s.lambda -. Ratio.to_float cert)
                 <= ulp (Ratio.to_float cert))
          | _ -> false))

(* The entire observable exact-mode output — certificates included — is
   byte-identical across job counts. *)
let qcheck_exact_lines_jobs_identical =
  QCheck.Test.make ~count:25
    ~name:"exact response lines identical across --jobs"
    (Helpers.arb_family ())
    (fun g ->
      let mk algorithm =
        spec_of ~algorithm ~mode:Request.Exact_answer
          ~problem:Solver.Cycle_mean ~objective:Solver.Minimize ()
      in
      let reqs =
        [
          Request.make ~id:1 ~graph:g (mk Request.Auto);
          Request.make ~id:2 ~graph:g (mk Request.Exact);
          Request.make ~id:3 ~graph:g (mk Request.Auto);
        ]
      in
      let run jobs =
        with_engine ~jobs (fun eng ->
            List.map
              (fun r -> Engine.response_line r)
              (Engine.run_batch eng reqs))
      in
      let base = run 1 in
      List.for_all (fun j -> run j = base) (List.tl Helpers.jobs_sweep))

let suite =
  [
    Alcotest.test_case "exact lane registered" `Quick test_lane_registered;
    Alcotest.test_case "stern_brocot direct" `Quick test_sb_direct;
    Alcotest.test_case "mode=exact parsing" `Quick test_parse_exact;
    Alcotest.test_case "exact/float cache keys distinct" `Quick
      test_mode_distinct_cache;
    Alcotest.test_case "certificate cross-check errors" `Quick
      test_certificate_errors;
  ]
  @ Helpers.qtests
      ([ qcheck_sb_matches_oracle; qcheck_exact_lines_jobs_identical ]
      @ List.map qcheck_exact_lane_matches_solver Helpers.jobs_sweep
      @ List.map qcheck_float_pinned Helpers.jobs_sweep)

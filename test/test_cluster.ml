(* The cluster substrate that must hold without booting processes:
   rendezvous sharding (balance, determinism, minimal reshuffle),
   the Prometheus round-trip the router aggregates through, and the
   LRU resizing that re-splits one cache budget across workers.
   Process-level behaviour (crash, respawn, replay) lives in
   test/cram/cluster.t. *)

(* ------------------------------------------------------------------ *)
(* shard map                                                           *)
(* ------------------------------------------------------------------ *)

let test_assign_deterministic () =
  let m = Shard_map.create ~workers:4 in
  let m' = Shard_map.create ~workers:4 in
  for key = -1000 to 1000 do
    Alcotest.(check (option int))
      "same key, same worker, in any process" (Shard_map.assign m key)
      (Shard_map.assign m' key)
  done

let test_assign_range () =
  let m = Shard_map.create ~workers:3 in
  for key = 0 to 999 do
    match Shard_map.assign m key with
    | Some w when w >= 0 && w < 3 -> ()
    | Some w -> Alcotest.failf "key %d assigned out of range: %d" key w
    | None -> Alcotest.failf "key %d unassigned with all workers up" key
  done

let test_assign_balance () =
  (* 1/sqrt(k) variance: with 10_000 keys over 4 workers each share
     should be well within 2x of fair *)
  let workers = 4 and keys = 10_000 in
  let m = Shard_map.create ~workers in
  let counts = Array.make workers 0 in
  for key = 1 to keys do
    match Shard_map.assign m (key * 7919) with
    | Some w -> counts.(w) <- counts.(w) + 1
    | None -> Alcotest.fail "unassigned"
  done;
  let fair = keys / workers in
  Array.iteri
    (fun w c ->
      if c < fair / 2 || c > fair * 2 then
        Alcotest.failf "worker %d got %d of %d keys (fair share %d)" w c keys
          fair)
    counts

let test_down_worker_excluded () =
  let m = Shard_map.create ~workers:3 in
  Shard_map.set_up m 1 false;
  Alcotest.(check int) "up count" 2 (Shard_map.up_count m);
  for key = 0 to 999 do
    if Shard_map.assign m key = Some 1 then
      Alcotest.failf "key %d assigned to a down worker" key
  done;
  Shard_map.set_up m 1 true;
  Alcotest.(check int) "up count restored" 3 (Shard_map.up_count m)

let test_all_down () =
  let m = Shard_map.create ~workers:2 in
  Shard_map.set_up m 0 false;
  Shard_map.set_up m 1 false;
  Alcotest.(check (option int)) "no owner" None (Shard_map.assign m 42)

(* the consistent-hashing contract: killing one worker moves only that
   worker's keys, and they come back when it does *)
let qcheck_minimal_reshuffle =
  QCheck.Test.make ~name:"shard map: worker loss reshuffles minimally"
    ~count:100
    QCheck.(pair (int_range 2 8) small_int)
    (fun (workers, seed) ->
      let m = Shard_map.create ~workers in
      let keys = List.init 500 (fun i -> (i * 2654435761) + seed) in
      let before = List.map (fun k -> (k, Shard_map.assign m k)) keys in
      let victim = seed mod workers in
      Shard_map.set_up m victim false;
      let ok_down =
        List.for_all
          (fun (k, owner) ->
            match (owner, Shard_map.assign m k) with
            | Some w, Some w' when w = victim ->
              w' <> victim (* moved, to an up worker *)
            | owner, owner' -> owner = owner' (* survivors never move *))
          before
      in
      Shard_map.set_up m victim true;
      let ok_back =
        List.for_all (fun (k, owner) -> Shard_map.assign m k = owner) before
      in
      ok_down && ok_back)

let test_assign_string () =
  let m = Shard_map.create ~workers:2 in
  (match Shard_map.assign_string m "a" with
  | Some w ->
    (* pinned: test/cram/cluster.t kills pid<w> as the worker hosting
       session "a" — if this assignment ever changes, update the cram *)
    Alcotest.(check int) "session \"a\" placement" 1 w
  | None -> Alcotest.fail "unassigned");
  Alcotest.(check (option int))
    "deterministic" (Shard_map.assign_string m "a")
    (Shard_map.assign_string m "a");
  Alcotest.(check int)
    "hash_string deterministic" (Shard_map.hash_string "s344")
    (Shard_map.hash_string "s344")

(* ------------------------------------------------------------------ *)
(* Prometheus round-trip (the router's aggregation wire format)        *)
(* ------------------------------------------------------------------ *)

let test_prometheus_roundtrip () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "ocr_requests_total") 17;
  Metrics.set (Metrics.gauge m "ocr_exec_utilization") 0.5;
  Metrics.set (Metrics.gauge m "ocr_worker_up{worker=\"0\"}") 1.;
  Metrics.set (Metrics.gauge m "ocr_worker_up{worker=\"1\"}") 0.;
  Metrics.add (Metrics.counter m "ocr_worker_restarts_total{worker=\"1\"}") 3;
  let h = Metrics.histogram m "ocr_solve_latency_ms" in
  List.iter (Metrics.observe h) [ 0.5; 0.9; 3.; 100.; 100. ];
  let text = Metrics.to_prometheus m in
  match Metrics.of_prometheus text with
  | Error e -> Alcotest.failf "parse back failed: %s" e
  | Ok m' ->
    Alcotest.(check string) "exposition fixpoint" text
      (Metrics.to_prometheus m')

let test_prometheus_merge_shards () =
  (* two worker snapshots through the wire format, folded like the
     router does: counters add, histograms add, gauges last-write *)
  let shard i =
    let m = Metrics.create () in
    Metrics.add (Metrics.counter m "ocr_requests_total") (10 * (i + 1));
    Metrics.set (Metrics.gauge m "ocr_exec_queue_depth") (float_of_int i);
    Metrics.observe (Metrics.histogram m "ocr_solve_latency_ms") 2.;
    Metrics.to_prometheus m
  in
  let parse text =
    match Metrics.of_prometheus text with
    | Ok m -> m
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let into = parse (shard 0) in
  Metrics.merge_into ~into (parse (shard 1));
  Alcotest.(check int) "counters add" 30
    (Metrics.counter_value (Metrics.counter into "ocr_requests_total"));
  Alcotest.(check int) "histograms add" 2
    (Metrics.hist_count (Metrics.histogram into "ocr_solve_latency_ms"));
  Alcotest.(check (float 1e-9)) "gauge last-write" 1.
    (Metrics.gauge_value (Metrics.gauge into "ocr_exec_queue_depth"))

let test_prometheus_parse_errors () =
  (match Metrics.of_prometheus "ocr_x_total nonsense\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a non-numeric sample");
  match Metrics.of_prometheus "" with
  | Ok m -> Alcotest.(check string) "empty is empty" "" (Metrics.to_prometheus m)
  | Error e -> Alcotest.failf "empty exposition should parse: %s" e

(* ------------------------------------------------------------------ *)
(* Lru.resize (per-worker cache budgets from one cluster flag)         *)
(* ------------------------------------------------------------------ *)

let test_lru_resize_shrink_evicts_lru () =
  let c = Lru.create ~capacity:4 in
  List.iter (fun k -> Lru.add c k (10 * k)) [ 1; 2; 3; 4 ];
  ignore (Lru.find c 1);
  (* recency now 1 > 4 > 3 > 2 *)
  Lru.resize c 2;
  Alcotest.(check int) "capacity" 2 (Lru.capacity c);
  Alcotest.(check int) "length" 2 (Lru.length c);
  Alcotest.(check (option int)) "mru kept" (Some 10) (Lru.find c 1);
  Alcotest.(check (option int)) "next kept" (Some 40) (Lru.find c 4);
  Alcotest.(check (option int)) "lru evicted" None (Lru.find c 2);
  Alcotest.(check (option int)) "lru evicted 2" None (Lru.find c 3)

let test_lru_resize_grow_and_disable () =
  let c = Lru.create ~capacity:2 in
  Lru.add c 1 1;
  Lru.add c 2 2;
  Lru.resize c 3;
  Lru.add c 3 3;
  Alcotest.(check int) "grow keeps everything" 3 (Lru.length c);
  Alcotest.(check (option int)) "old entry intact" (Some 1) (Lru.find c 1);
  Lru.resize c 0;
  Alcotest.(check int) "resize 0 clears" 0 (Lru.length c);
  Lru.add c 9 9;
  Alcotest.(check (option int)) "disabled cache rejects adds" None
    (Lru.find c 9);
  Lru.resize c 2;
  Lru.add c 9 9;
  Alcotest.(check (option int)) "re-enabled cache works" (Some 9)
    (Lru.find c 9)

let suite =
  [
    Alcotest.test_case "shard: deterministic" `Quick test_assign_deterministic;
    Alcotest.test_case "shard: in range" `Quick test_assign_range;
    Alcotest.test_case "shard: balanced" `Quick test_assign_balance;
    Alcotest.test_case "shard: skips down workers" `Quick
      test_down_worker_excluded;
    Alcotest.test_case "shard: all down" `Quick test_all_down;
    Alcotest.test_case "shard: string keys" `Quick test_assign_string;
    Alcotest.test_case "prometheus: round-trip" `Quick
      test_prometheus_roundtrip;
    Alcotest.test_case "prometheus: shard merge" `Quick
      test_prometheus_merge_shards;
    Alcotest.test_case "prometheus: rejects garbage" `Quick
      test_prometheus_parse_errors;
    Alcotest.test_case "lru: shrink evicts lru-first" `Quick
      test_lru_resize_shrink_evicts_lru;
    Alcotest.test_case "lru: grow, disable, re-enable" `Quick
      test_lru_resize_grow_and_disable;
  ]
  @ Helpers.qtests [ qcheck_minimal_reshuffle ]

let diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 3 : a DAG *)
  Digraph.of_weighted_arcs 4 [ (0, 1, 1); (0, 2, 1); (1, 3, 1); (2, 3, 1) ]

let ring n = Families.ring n

let test_bfs_levels () =
  let g = diamond () in
  Alcotest.(check (array int)) "levels from 0" [| 0; 1; 1; 2 |]
    (Traversal.bfs_levels g 0);
  Alcotest.(check (array int)) "levels from 3 (sinks)" [| -1; -1; -1; 0 |]
    (Traversal.bfs_levels g 3)

let test_reachable () =
  let g = diamond () in
  Alcotest.(check (array bool)) "from 1" [| false; true; false; true |]
    (Traversal.reachable g 1);
  Alcotest.(check (array bool)) "co-reach of 1" [| true; true; false; false |]
    (Traversal.co_reachable g 1)

let test_strong_connectivity () =
  Alcotest.(check bool) "ring is SC" true
    (Traversal.is_strongly_connected (ring 5));
  Alcotest.(check bool) "dag is not SC" false
    (Traversal.is_strongly_connected (diamond ()));
  Alcotest.(check bool) "single node is SC" true
    (Traversal.is_strongly_connected (Digraph.of_arcs 1 []));
  Alcotest.(check bool) "empty graph is SC" true
    (Traversal.is_strongly_connected (Digraph.of_arcs 0 []))

let test_topological () =
  let g = diamond () in
  (match Traversal.topological_order g with
  | None -> Alcotest.fail "diamond is acyclic"
  | Some order ->
    let pos = Array.make 4 0 in
    Array.iteri (fun i v -> pos.(v) <- i) order;
    Digraph.iter_arcs g (fun a ->
        Alcotest.(check bool) "arc goes forward" true
          (pos.(Digraph.src g a) < pos.(Digraph.dst g a))));
  Alcotest.(check bool) "ring has no topo order" true
    (Traversal.topological_order (ring 3) = None)

let test_acyclicity () =
  Alcotest.(check bool) "diamond acyclic" true (Traversal.is_acyclic (diamond ()));
  Alcotest.(check bool) "ring cyclic" false (Traversal.is_acyclic (ring 4));
  let self = Digraph.of_weighted_arcs 1 [ (0, 0, 1) ] in
  Alcotest.(check bool) "self loop cyclic" false (Traversal.is_acyclic self)

let test_cycle_through () =
  let g =
    Digraph.of_weighted_arcs 4 [ (0, 1, 1); (1, 2, 1); (2, 1, 1); (2, 3, 1) ]
  in
  Alcotest.(check bool) "node 1 on cycle" true (Traversal.has_cycle_through g 1);
  Alcotest.(check bool) "node 0 not on cycle" false
    (Traversal.has_cycle_through g 0);
  Alcotest.(check bool) "node 3 not on cycle" false
    (Traversal.has_cycle_through g 3)

let qcheck_topo_iff_no_cycle =
  QCheck.Test.make ~name:"traversal: topo order exists iff oracle finds no cycle"
    ~count:200
    (Helpers.arb_any_graph ~max_n:7 ~max_m:14 ())
    (fun g -> Traversal.is_acyclic g = (Cycles.count g = 0))

let suite =
  [
    Alcotest.test_case "bfs levels" `Quick test_bfs_levels;
    Alcotest.test_case "reachable / co_reachable" `Quick test_reachable;
    Alcotest.test_case "strong connectivity" `Quick test_strong_connectivity;
    Alcotest.test_case "topological order" `Quick test_topological;
    Alcotest.test_case "acyclicity" `Quick test_acyclicity;
    Alcotest.test_case "has_cycle_through" `Quick test_cycle_through;
  ]
  @ Helpers.qtests [ qcheck_topo_iff_no_cycle ]

(* Every algorithm of the study is run over shared fixtures with known
   answers, then cross-validated against the brute-force oracle and
   certified on random strongly connected graphs (qcheck). *)

let den1 _ = 1

let all_mean =
  List.map
    (fun a ->
      ( Registry.display_name a,
        fun ?stats g -> Registry.minimum_cycle_mean a ?stats g ))
    Registry.all

let all_ratio =
  List.map
    (fun a ->
      ( Registry.display_name a,
        fun ?stats g -> Registry.minimum_cycle_ratio a ?stats g ))
    Registry.all

(* -------------------- fixtures with known answers ------------------ *)

type fixture = { fname : string; graph : Digraph.t; expected : Ratio.t }

let fixtures =
  [
    {
      fname = "self loop";
      graph = Digraph.of_weighted_arcs 1 [ (0, 0, 7) ];
      expected = Helpers.r 7 1;
    };
    {
      fname = "two self loops";
      graph = Digraph.of_weighted_arcs 1 [ (0, 0, 7); (0, 0, -2) ];
      expected = Helpers.r (-2) 1;
    };
    {
      fname = "uniform ring";
      graph = Families.ring ~weight:(fun _ -> 3) 6;
      expected = Helpers.r 3 1;
    };
    {
      fname = "ring with mixed weights";
      graph = Families.ring ~weight:(fun i -> i - 2) 5;
      (* weights -2 -1 0 1 2: mean 0 *)
      expected = Ratio.zero;
    };
    {
      fname = "two cycles sharing a node";
      graph = Families.two_cycles ~len1:3 ~w1:5 ~len2:4 ~w2:2;
      expected = Helpers.r 2 1;
    };
    {
      fname = "short heavy vs long light";
      graph = Families.two_cycles ~len1:1 ~w1:3 ~len2:7 ~w2:2;
      expected = Helpers.r 2 1;
    };
    {
      fname = "negative weights";
      graph =
        Digraph.of_weighted_arcs 3
          [ (0, 1, -5); (1, 2, 3); (2, 0, -1); (1, 0, 4) ];
      expected = Helpers.r (-1) 1;
      (* triangle mean (-5+3-1)/3 = -1; 2-cycle (-5+4)/2 = -1/2 *)
    };
    {
      fname = "parallel arcs";
      graph = Digraph.of_weighted_arcs 2 [ (0, 1, 10); (0, 1, 2); (1, 0, 4) ];
      expected = Helpers.r 3 1;
    };
    {
      fname = "all cycles equal mean";
      graph = Families.ring ~weight:(fun _ -> 4) 3;
      expected = Helpers.r 4 1;
      (* exercises the λ* = w_max edge case in Lawler's bisection *)
    };
  ]

let fixture_cases =
  List.concat_map
    (fun fx ->
      List.map
        (fun (name, solve) ->
          Alcotest.test_case
            (Printf.sprintf "%s on %s" name fx.fname)
            `Quick
            (fun () ->
              let lambda, cycle = solve ?stats:None fx.graph in
              Helpers.check_ratio "lambda" fx.expected lambda;
              Alcotest.(check bool) "witness is a cycle" true
                (Digraph.is_cycle fx.graph cycle);
              Helpers.check_ratio "witness achieves lambda" fx.expected
                (Critical.ratio_of_cycle fx.graph ~den:den1 cycle)))
        all_mean)
    fixtures

(* -------------------- ratio fixtures ------------------------------- *)

type rfixture = { rname : string; rgraph : Digraph.t; rexpected : Ratio.t }

let ratio_fixtures =
  [
    {
      rname = "two-node loop with transits";
      rgraph = Digraph.of_arcs 2 [ (0, 1, 6, 2); (1, 0, 2, 2) ];
      rexpected = Helpers.r 2 1;
    };
    {
      rname = "loop vs self-loop";
      rgraph = Digraph.of_arcs 2 [ (0, 1, 6, 2); (1, 0, 2, 2); (0, 0, 3, 1) ];
      rexpected = Helpers.r 2 1;
    };
    {
      rname = "light short cycle beats transit-heavy one";
      rgraph =
        Digraph.of_arcs 3
          [ (0, 1, 10, 5); (1, 0, 10, 5); (0, 2, 1, 1); (2, 0, 1, 1) ];
      (* 20/10 = 2 versus 2/2 = 1 *)
      rexpected = Helpers.r 1 1;
    };
  ]

let ratio_fixture_cases =
  List.concat_map
    (fun fx ->
      List.map
        (fun (name, solve) ->
          Alcotest.test_case
            (Printf.sprintf "%s (ratio) on %s" name fx.rname)
            `Quick
            (fun () ->
              let lambda, cycle = solve ?stats:None fx.rgraph in
              Helpers.check_ratio "lambda" fx.rexpected lambda;
              Helpers.check_ratio "witness achieves lambda" fx.rexpected
                (Critical.ratio_of_cycle fx.rgraph
                   ~den:(Digraph.transit fx.rgraph) cycle)))
        all_ratio)
    ratio_fixtures

(* -------------------- input validation ----------------------------- *)

let no_arcs_cases =
  List.map
    (fun (name, solve) ->
      Alcotest.test_case (name ^ " rejects arcless graph") `Quick (fun () ->
          let g = Digraph.of_arcs 1 [] in
          match solve ?stats:None g with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"))
    all_mean

(* -------------------- behavioural details -------------------------- *)

let test_ho_terminates_early () =
  (* a hub-and-spoke graph of small diameter with a cheap self-loop at
     the hub: HO proves optimality within the first few levels *)
  let n = 64 in
  let arcs =
    (0, 0, 1, 1)
    :: List.concat
         (List.init (n - 1) (fun i ->
              [ (0, i + 1, 100, 1); (i + 1, 0, 100, 1) ]))
  in
  let g = Digraph.of_arcs n arcs in
  let stats = Stats.create () in
  let lambda, _ = Ho.minimum_cycle_mean ~stats g in
  Helpers.check_ratio "lambda" (Helpers.r 1 1) lambda;
  Alcotest.(check bool) "early termination" true (stats.Stats.level < n)

let test_karp_level_is_n () =
  let g = Sprand.generate ~seed:3 ~n:40 ~m:100 () in
  let stats = Stats.create () in
  ignore (Karp.minimum_cycle_mean ~stats g);
  Alcotest.(check int) "karp always runs n levels" 40 stats.Stats.level

let test_karp2_visits_twice_karp () =
  let g = Sprand.generate ~seed:4 ~n:30 ~m:90 () in
  let s1 = Stats.create () and s2 = Stats.create () in
  ignore (Karp.minimum_cycle_mean ~stats:s1 g);
  ignore (Karp2.minimum_cycle_mean ~stats:s2 g);
  (* pass 1 (n levels) + pass 2 (n-1 levels) ≈ 2× Karp's arc visits *)
  Alcotest.(check bool) "karp2 does roughly double the work" true
    (s2.Stats.arcs_visited > (3 * s1.Stats.arcs_visited) / 2
    && s2.Stats.arcs_visited <= 2 * s1.Stats.arcs_visited)

let test_dg_beats_karp_on_ring () =
  (* on a bare ring the DG frontier is a single node per level *)
  let g = Families.ring 50 in
  let sk = Stats.create () and sd = Stats.create () in
  ignore (Karp.minimum_cycle_mean ~stats:sk g);
  ignore (Dg.minimum_cycle_mean ~stats:sd g);
  Alcotest.(check bool)
    (Printf.sprintf "DG visits far fewer arcs (%d vs %d)"
       sd.Stats.arcs_visited sk.Stats.arcs_visited)
    true
    (sd.Stats.arcs_visited * 10 < sk.Stats.arcs_visited)

let test_yto_fewer_heap_ops_than_ko () =
  let g = Sprand.generate ~seed:9 ~n:128 ~m:512 () in
  let sk = Stats.create () and sy = Stats.create () in
  let lk, _ = Ko.minimum_cycle_mean ~stats:sk g in
  let ly, _ = Yto.minimum_cycle_mean ~stats:sy g in
  Helpers.check_ratio "same answer" lk ly;
  Alcotest.(check bool) "same pivots" true
    (sk.Stats.iterations = sy.Stats.iterations);
  Alcotest.(check bool)
    (Printf.sprintf "YTO uses fewer heap ops (%d vs %d)"
       (Heap_stats.total sy.Stats.heap)
       (Heap_stats.total sk.Stats.heap))
    true
    (Heap_stats.total sy.Stats.heap < Heap_stats.total sk.Stats.heap)

let test_howard_few_iterations () =
  let g = Sprand.generate ~seed:12 ~n:256 ~m:1024 () in
  let s = Stats.create () in
  ignore (Howard.minimum_cycle_mean ~stats:s g);
  Alcotest.(check bool)
    (Printf.sprintf "howard iterations (%d) well below n" s.Stats.iterations)
    true
    (s.Stats.iterations < 64)

let test_lawler_without_finisher_is_approximate () =
  let g = Families.two_cycles ~len1:3 ~w1:7 ~len2:2 ~w2:3 in
  let lambda, cycle = Lawler.minimum_cycle_mean ~exact_finish:false g in
  (* the candidate is a real cycle whose mean is within epsilon of 3 *)
  Alcotest.(check bool) "real cycle" true (Digraph.is_cycle g cycle);
  Alcotest.(check bool) "close to optimum" true
    (abs_float (Ratio.to_float lambda -. 3.0) < 0.5)

let test_lawler_epsilon_control () =
  let g = Sprand.generate ~seed:5 ~n:24 ~m:60 () in
  let coarse = Stats.create () and fine = Stats.create () in
  ignore (Lawler.minimum_cycle_mean ~stats:coarse ~epsilon:100.0 g);
  ignore (Lawler.minimum_cycle_mean ~stats:fine ~epsilon:0.001 g);
  Alcotest.(check bool) "finer epsilon, more oracle calls" true
    (fine.Stats.oracle_calls > coarse.Stats.oracle_calls)

let test_burns_iterations_bounded () =
  let g = Sprand.generate ~seed:6 ~n:100 ~m:250 () in
  let s = Stats.create () in
  ignore (Burns.minimum_cycle_mean ~stats:s g);
  Alcotest.(check bool)
    (Printf.sprintf "burns iterations (%d) below n" s.Stats.iterations)
    true
    (s.Stats.iterations <= 100)

(* -------------------- qcheck cross-validation ---------------------- *)

let qcheck_algorithm_vs_oracle (name, solve) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s = oracle on random SC graphs (mean)" name)
    ~count:120
    (Helpers.arb_strongly_connected ~max_n:8 ~max_extra:12 ())
    (fun g ->
      let lambda, cycle = solve ?stats:None g in
      let opt = Helpers.oracle_mean Oracle.Minimize g |> Option.get in
      Ratio.equal lambda opt
      && Digraph.is_cycle g cycle
      && Ratio.equal (Critical.ratio_of_cycle g ~den:den1 cycle) opt)

let qcheck_algorithm_vs_oracle_ratio (name, solve) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s = oracle on random SC graphs (ratio)" name)
    ~count:80
    (Helpers.arb_strongly_connected ~max_n:6 ~max_extra:8 ~tmax:3 ())
    (fun g ->
      let lambda, cycle = solve ?stats:None g in
      let opt = Helpers.oracle_ratio Oracle.Minimize g |> Option.get in
      Ratio.equal lambda opt
      && Ratio.equal
           (Critical.ratio_of_cycle g ~den:(Digraph.transit g) cycle)
           opt)

let qcheck_pairwise_agreement =
  QCheck.Test.make
    ~name:"all algorithms agree on larger SC graphs" ~count:25
    (Helpers.arb_strongly_connected ~max_n:40 ~max_extra:120 ~wlo:(-100)
       ~whi:100 ())
    (fun g ->
      let results = List.map (fun (_, solve) -> fst (solve ?stats:None g)) all_mean in
      match results with
      | [] -> true
      | first :: rest -> List.for_all (Ratio.equal first) rest)

let suite =
  fixture_cases @ ratio_fixture_cases @ no_arcs_cases
  @ [
      Alcotest.test_case "HO terminates early" `Quick test_ho_terminates_early;
      Alcotest.test_case "Karp runs all n levels" `Quick test_karp_level_is_n;
      Alcotest.test_case "Karp2 visits ~2x Karp arcs" `Quick
        test_karp2_visits_twice_karp;
      Alcotest.test_case "DG beats Karp on a bare ring" `Quick
        test_dg_beats_karp_on_ring;
      Alcotest.test_case "YTO needs fewer heap ops than KO" `Quick
        test_yto_fewer_heap_ops_than_ko;
      Alcotest.test_case "Howard converges in few iterations" `Quick
        test_howard_few_iterations;
      Alcotest.test_case "Lawler without finisher is approximate" `Quick
        test_lawler_without_finisher_is_approximate;
      Alcotest.test_case "Lawler epsilon controls oracle calls" `Quick
        test_lawler_epsilon_control;
      Alcotest.test_case "Burns iteration count bounded" `Quick
        test_burns_iterations_bounded;
    ]
  @ Helpers.qtests
      (List.map qcheck_algorithm_vs_oracle all_mean
      @ List.map qcheck_algorithm_vs_oracle_ratio all_ratio
      @ [ qcheck_pairwise_agreement ])

(* -------------------- variant / ablation coverage ------------------ *)

let test_heap_kinds_agree () =
  let g = Sprand.generate ~seed:21 ~n:100 ~m:300 () in
  let reference, _ = Yto.minimum_cycle_mean g in
  List.iter
    (fun heap ->
      List.iter
        (fun variant ->
          let lambda, cycle =
            Parametric.minimum_cycle_mean ~heap ~variant g
          in
          Helpers.check_ratio "same optimum across heaps" reference lambda;
          Alcotest.(check bool) "valid witness" true (Digraph.is_cycle g cycle))
        [ `Ko; `Yto ])
    [ `Fibonacci; `Binary; `Pairing ]

let test_parametric_native_ratio () =
  let g = Sprand.generate ~seed:22 ~n:40 ~m:120 ~transits:(1, 4) () in
  let l_ko, c_ko = Ko.minimum_cycle_ratio g in
  let l_yto, _ = Yto.minimum_cycle_ratio g in
  let l_howard, _ = Howard.minimum_cycle_ratio g in
  Helpers.check_ratio "KO ratio = Howard ratio" l_howard l_ko;
  Helpers.check_ratio "YTO ratio = Howard ratio" l_howard l_yto;
  Helpers.check_ratio "KO witness attains the ratio" l_ko
    (Critical.ratio_of_cycle g ~den:(Digraph.transit g) c_ko)

let test_parametric_ratio_with_zero_transit_arcs () =
  (* zero-transit arcs are fine as long as no cycle has zero total *)
  let g = Digraph.of_arcs 3 [ (0, 1, 4, 0); (1, 2, 3, 2); (2, 0, 5, 1) ] in
  let lambda, _ = Yto.minimum_cycle_ratio g in
  Helpers.check_ratio "ratio 12/3" (Helpers.r 4 1) lambda

let test_lawler_improved_agrees_and_saves () =
  let g = Sprand.generate ~seed:23 ~n:64 ~m:160 () in
  let s_plain = Stats.create () and s_improved = Stats.create () in
  let l1, _ = Lawler.minimum_cycle_mean ~stats:s_plain g in
  let l2, _ = Lawler.minimum_cycle_mean ~stats:s_improved ~improved:true g in
  Helpers.check_ratio "same optimum" l1 l2;
  Alcotest.(check bool)
    (Printf.sprintf "improved needs <= oracle calls (%d vs %d)"
       s_improved.Stats.oracle_calls s_plain.Stats.oracle_calls)
    true
    (s_improved.Stats.oracle_calls <= s_plain.Stats.oracle_calls)

let test_howard_inits_agree () =
  let g = Sprand.generate ~seed:24 ~n:80 ~m:240 () in
  let reference, _ = Howard.minimum_cycle_mean g in
  List.iter
    (fun init ->
      let lambda, _ = Howard.minimum_cycle_mean ~init g in
      Helpers.check_ratio "same optimum across inits" reference lambda)
    [ `Cheapest_arc; `First_arc; `Random 1; `Random 99 ]

let test_long_critical_family () =
  let n = 24 in
  let g = Families.long_critical n in
  let stats = Stats.create () in
  let lambda, cycle = Ho.minimum_cycle_mean ~stats g in
  Helpers.check_ratio "ring mean 1" (Helpers.r 1 1) lambda;
  Alcotest.(check int) "critical cycle spans the whole ring" n
    (List.length cycle);
  Alcotest.(check int) "HO cannot exit early here" n stats.Stats.level

let qcheck_heap_kinds_ratio =
  QCheck.Test.make ~name:"parametric: all heaps agree on the ratio problem"
    ~count:60
    (Helpers.arb_strongly_connected ~max_n:7 ~max_extra:9 ~tmax:3 ())
    (fun g ->
      let expected = Helpers.oracle_ratio Oracle.Minimize g |> Option.get in
      List.for_all
        (fun heap ->
          let l, _ = Parametric.minimum_cycle_ratio ~heap ~variant:`Yto g in
          Ratio.equal l expected)
        [ `Fibonacci; `Binary; `Pairing ])

let qcheck_lawler_improved_vs_oracle =
  QCheck.Test.make ~name:"Lawler improved = oracle" ~count:80
    (Helpers.arb_strongly_connected ~max_n:8 ~max_extra:12 ())
    (fun g ->
      let l, _ = Lawler.minimum_cycle_mean ~improved:true g in
      Ratio.equal l (Helpers.oracle_mean Oracle.Minimize g |> Option.get))

let qcheck_howard_random_init_vs_oracle =
  QCheck.Test.make ~name:"Howard random init = oracle" ~count:80
    (Helpers.arb_strongly_connected ~max_n:8 ~max_extra:12 ())
    (fun g ->
      let l, _ = Howard.minimum_cycle_mean ~init:(`Random 5) g in
      Ratio.equal l (Helpers.oracle_mean Oracle.Minimize g |> Option.get))

let suite =
  suite
  @ [
      Alcotest.test_case "heap kinds agree (KO/YTO)" `Quick
        test_heap_kinds_agree;
      Alcotest.test_case "KO/YTO solve the ratio natively" `Quick
        test_parametric_native_ratio;
      Alcotest.test_case "parametric ratio with zero-transit arcs" `Quick
        test_parametric_ratio_with_zero_transit_arcs;
      Alcotest.test_case "Lawler improved agrees and saves oracles" `Quick
        test_lawler_improved_agrees_and_saves;
      Alcotest.test_case "Howard inits agree" `Quick test_howard_inits_agree;
      Alcotest.test_case "long_critical adversarial family" `Quick
        test_long_critical_family;
    ]
  @ Helpers.qtests
      [
        qcheck_heap_kinds_ratio;
        qcheck_lawler_improved_vs_oracle;
        qcheck_howard_random_init_vs_oracle;
      ]

let test_dg_low_space_agrees () =
  let g = Sprand.generate ~seed:31 ~n:60 ~m:150 () in
  let s_full = Stats.create () and s_low = Stats.create () in
  let l1, _ = Dg.minimum_cycle_mean ~stats:s_full g in
  let l2, c2 = Dg.minimum_cycle_mean_low_space ~stats:s_low g in
  Helpers.check_ratio "same optimum" l1 l2;
  Alcotest.(check bool) "valid witness" true (Digraph.is_cycle g c2);
  Alcotest.(check bool)
    (Printf.sprintf "low-space does ~2x the arc visits (%d vs %d)"
       s_low.Stats.arcs_visited s_full.Stats.arcs_visited)
    true
    (s_low.Stats.arcs_visited > (3 * s_full.Stats.arcs_visited) / 2)

let qcheck_dg_low_space_vs_oracle =
  QCheck.Test.make ~name:"DG low-space = oracle" ~count:80
    (Helpers.arb_strongly_connected ~max_n:8 ~max_extra:12 ())
    (fun g ->
      let l, _ = Dg.minimum_cycle_mean_low_space g in
      Ratio.equal l (Helpers.oracle_mean Oracle.Minimize g |> Option.get))

let suite =
  suite
  @ [ Alcotest.test_case "DG low-space variant" `Quick test_dg_low_space_agrees ]
  @ Helpers.qtests [ qcheck_dg_low_space_vs_oracle ]

(* every native ratio solver must reject zero-transit cycles up front
   rather than looping or crashing *)
let zero_transit_rejection_cases =
  let g = Digraph.of_arcs 2 [ (0, 1, -3, 0); (1, 0, 1, 0); (0, 0, 5, 2) ] in
  List.filter_map
    (fun alg ->
      if Registry.native_ratio alg then
        Some
          (Alcotest.test_case
             (Registry.display_name alg ^ " (ratio) rejects zero-transit cycle")
             `Quick
             (fun () ->
               match Registry.minimum_cycle_ratio alg g with
               | exception Invalid_argument _ -> ()
               | _ -> Alcotest.fail "expected Invalid_argument"))
      else None)
    Registry.all

let suite = suite @ zero_transit_rejection_cases

(* integration: every algorithm agrees on a spread of realistic
   workloads (circuit stand-ins, torus, layered dataflow) *)
let integration_workloads =
  [
    ("circuit s641", Circuit.benchmark "s641");
    ("circuit s1423", Circuit.benchmark "s1423");
    ("grid torus 8x8", Families.grid_torus ~seed:3 8 8);
    ("layered dataflow", Families.layered_dataflow ~seed:4 ~layers:6 ~width:5 ());
    ("long critical 40", Families.long_critical 40);
  ]

let integration_cases =
  List.map
    (fun (name, g) ->
      Alcotest.test_case ("all algorithms agree on " ^ name) `Slow (fun () ->
          let results =
            List.map
              (fun alg ->
                let lambda, cycle = Registry.minimum_cycle_mean alg g in
                (match Verify.certify g lambda cycle with
                | Ok () -> ()
                | Error e ->
                  Alcotest.failf "%s certificate: %s"
                    (Registry.display_name alg) e);
                lambda)
              Registry.all
          in
          match results with
          | first :: rest ->
            List.iteri
              (fun i l ->
                Helpers.check_ratio
                  (Printf.sprintf "algorithm %d agrees" (i + 1))
                  first l)
              rest
          | [] -> ()))
    integration_workloads

let suite = suite @ integration_cases

(* -------------------- incremental re-solving ----------------------- *)

let test_incremental_matches_cold () =
  let g = Sprand.generate ~seed:41 ~n:60 ~m:180 () in
  let inc = Incremental.create g in
  let rng = Rng.create 5 in
  for _ = 1 to 25 do
    (* perturb one random arc, then compare against a cold solve *)
    let a = Rng.int rng (Digraph.m g) in
    Incremental.set_weight inc a (Rng.in_range rng 1 10000);
    let l_inc, c_inc = Incremental.solve inc in
    let l_cold, _ = Howard.minimum_cycle_mean (Incremental.graph inc) in
    Helpers.check_ratio "incremental = cold" l_cold l_inc;
    Alcotest.(check bool) "witness valid" true
      (Digraph.is_cycle (Incremental.graph inc) c_inc)
  done

let test_incremental_warm_start_saves_iterations () =
  let g = Sprand.generate ~seed:42 ~n:256 ~m:768 () in
  let inc = Incremental.create g in
  let s_first = Stats.create () in
  ignore (Incremental.solve ~stats:s_first inc);
  (* a tiny perturbation off the critical cycle: the old policy is
     (nearly) optimal, so the warm re-solve needs very few sweeps *)
  Incremental.set_weight inc 0 (Digraph.weight g 0 + 1);
  let s_warm = Stats.create () in
  ignore (Incremental.solve ~stats:s_warm inc);
  Alcotest.(check bool)
    (Printf.sprintf "warm start uses fewer iterations (%d vs %d)"
       s_warm.Stats.iterations s_first.Stats.iterations)
    true
    (s_warm.Stats.iterations <= s_first.Stats.iterations)

let test_incremental_validation () =
  let g = Families.ring 4 in
  let inc = Incremental.create g in
  Alcotest.(check bool) "bad arc id" true
    (match Incremental.set_weight inc 99 1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "arcless rejected" true
    (match Incremental.create (Digraph.of_arcs 1 []) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qcheck_incremental_random_updates =
  QCheck.Test.make ~name:"incremental: random update sequences = oracle"
    ~count:60
    (QCheck.pair
       (Helpers.arb_strongly_connected ~max_n:7 ~max_extra:10 ())
       QCheck.(list (pair (int_range 0 1000) (int_range (-20) 20))))
    (fun (g, updates) ->
      let inc = Incremental.create g in
      List.for_all
        (fun (raw_arc, w) ->
          Incremental.set_weight inc (raw_arc mod Digraph.m g) w;
          let l, _ = Incremental.solve inc in
          let opt =
            Helpers.oracle_mean Oracle.Minimize (Incremental.graph inc)
            |> Option.get
          in
          Ratio.equal l opt)
        updates)

let suite =
  suite
  @ [
      Alcotest.test_case "incremental matches cold solves" `Quick
        test_incremental_matches_cold;
      Alcotest.test_case "incremental warm start saves work" `Quick
        test_incremental_warm_start_saves_iterations;
      Alcotest.test_case "incremental validation" `Quick
        test_incremental_validation;
    ]
  @ Helpers.qtests [ qcheck_incremental_random_updates ]

(* the "approximate" classification of Table 1 is quantitative: without
   the exact finisher, Lawler and OA1 return the ratio of a genuine
   cycle within epsilon of the optimum *)
let qcheck_lawler_epsilon_bound =
  QCheck.Test.make ~name:"Lawler (approximate): 0 <= error <= epsilon"
    ~count:100
    (Helpers.arb_strongly_connected ~max_n:8 ~max_extra:12 ())
    (fun g ->
      let epsilon = 0.75 in
      let lambda, cycle = Lawler.minimum_cycle_mean ~epsilon ~exact_finish:false g in
      let opt = Helpers.oracle_mean Oracle.Minimize g |> Option.get in
      let err = Ratio.to_float lambda -. Ratio.to_float opt in
      Digraph.is_cycle g cycle && err >= -1e-9 && err <= epsilon +. 1e-9)

let qcheck_oa1_epsilon_bound =
  QCheck.Test.make ~name:"OA1 (approximate): 0 <= error <= epsilon" ~count:100
    (Helpers.arb_strongly_connected ~max_n:8 ~max_extra:12 ())
    (fun g ->
      let epsilon = 0.75 in
      let lambda, cycle = Oa.oa1_minimum_cycle_mean ~epsilon g in
      let opt = Helpers.oracle_mean Oracle.Minimize g |> Option.get in
      let err = Ratio.to_float lambda -. Ratio.to_float opt in
      Digraph.is_cycle g cycle && err >= -1e-9 && err <= epsilon +. 1e-9)

let suite =
  suite @ Helpers.qtests [ qcheck_lawler_epsilon_bound; qcheck_oa1_epsilon_bound ]

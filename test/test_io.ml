let sample () =
  Digraph.of_arcs 3 [ (0, 1, -5, 1); (1, 2, 10000, 7); (2, 0, 0, 2) ]

let test_roundtrip () =
  let g = sample () in
  let g' = Graph_io.of_string (Graph_io.to_string g) in
  Alcotest.(check bool) "identical" true (Digraph.equal_structure g g')

let test_format_details () =
  let s = Graph_io.to_string (sample ()) in
  Alcotest.(check bool) "problem line" true
    (String.length s > 0 && String.sub s 0 9 = "p ocr 3 3")

let test_parse_defaults_and_comments () =
  let g =
    Graph_io.of_string
      "# a comment\np ocr 2 2\na 1 2 5\n\na 2 1 -3 4\n# trailing comment\n"
  in
  Alcotest.(check int) "m" 2 (Digraph.m g);
  Alcotest.(check int) "default transit" 1 (Digraph.transit g 0);
  Alcotest.(check int) "explicit transit" 4 (Digraph.transit g 1);
  Alcotest.(check int) "1-indexed in file, 0-indexed in API" 0 (Digraph.src g 0)

let expect_parse_error name input =
  Alcotest.test_case name `Quick (fun () ->
      match Graph_io.of_string input with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected a parse failure")

let test_file_io () =
  let path = Filename.temp_file "ocr_test" ".ocr" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let g = sample () in
      Graph_io.write_file path g;
      Alcotest.(check bool) "file roundtrip" true
        (Digraph.equal_structure g (Graph_io.read_file path)))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_dot () =
  let dot = Graph_io.to_dot ~highlight:[ 0 ] (sample ()) in
  Alcotest.(check bool) "mentions digraph" true
    (String.length dot > 8 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "has highlight colour" true
    (contains ~needle:"color=red" dot);
  Alcotest.(check bool) "only one highlighted arc" true
    (not (contains ~needle:"color=red" (Graph_io.to_dot (sample ()))))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"io: to_string/of_string roundtrip" ~count:200
    (Helpers.arb_any_graph ~max_n:10 ~max_m:25 ~tmax:5 ())
    (fun g -> Digraph.equal_structure g (Graph_io.of_string (Graph_io.to_string g)))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "format details" `Quick test_format_details;
    Alcotest.test_case "defaults and comments" `Quick
      test_parse_defaults_and_comments;
    expect_parse_error "arc before problem line" "a 1 2 3\n";
    expect_parse_error "duplicate problem line" "p ocr 1 0\np ocr 1 0\n";
    expect_parse_error "bad record" "p ocr 1 0\nx 1 2\n";
    expect_parse_error "malformed arc" "p ocr 2 1\na 1 two 3\n";
    expect_parse_error "missing problem line" "# nothing\n";
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "dot export" `Quick test_dot;
  ]
  @ Helpers.qtests [ qcheck_roundtrip ]

(* the parser must fail cleanly (Failure), never crash, on junk input *)
let qcheck_parser_never_crashes =
  QCheck.Test.make ~name:"io: parser raises Failure, never crashes" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 200))
    (fun s ->
      match Graph_io.of_string s with
      | _ -> true
      | exception Failure _ -> true
      | exception _ -> false)

let suite = suite @ Helpers.qtests [ qcheck_parser_never_crashes ]

let test_dimacs_roundtrip () =
  let g = Digraph.of_weighted_arcs 3 [ (0, 1, 5); (1, 2, -2); (2, 0, 7) ] in
  let g' = Graph_io.of_dimacs (Graph_io.to_dimacs g) in
  Alcotest.(check bool) "same structure" true (Digraph.equal_structure g g')

let test_dimacs_parse () =
  let g =
    Graph_io.of_dimacs
      "c SPRAND output\np sp 2 2\na 1 2 10\nc middle comment\na 2 1 3\n"
  in
  Alcotest.(check int) "n" 2 (Digraph.n g);
  Alcotest.(check int) "weight" 10 (Digraph.weight g 0);
  Alcotest.(check int) "transit defaults to 1" 1 (Digraph.transit g 0);
  Alcotest.(check bool) "bad format rejected" true
    (match Graph_io.of_dimacs "p ocr 1 0\n" with
    | exception Failure _ -> true
    | _ -> false)

let suite =
  suite
  @ [
      Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
      Alcotest.test_case "dimacs parsing" `Quick test_dimacs_parse;
    ]

(* The zero-allocation claims of the Howard kernel rewrite, checked
   directly with Gc counters, plus scratch-reuse correctness. *)

(* Two budget-capped runs of the same solve share an identical
   trajectory prefix, so the difference of their minor-heap usage is
   exactly (k2 - k1) times the steady-state per-iteration allocation —
   the per-solve constants (closures, the final exception) cancel. *)
let test_steady_state_allocation () =
  let g = Sprand.generate ~seed:3 ~n:2000 ~m:6000 () in
  let scratch = Howard.create_scratch () in
  let stats = Stats.create () in
  ignore (Howard.minimum_cycle_mean ~stats ~init:`First_arc ~scratch g);
  let total = stats.Stats.iterations in
  Alcotest.(check bool)
    (Printf.sprintf "enough iterations to measure (%d)" total)
    true (total >= 6);
  let run k =
    match
      Howard.minimum_cycle_mean ~init:`First_arc
        ~budget:(Budget.create ~max_iterations:k ())
        ~scratch g
    with
    | exception Budget.Exceeded _ -> ()
    | _ -> Alcotest.fail "the capped run should stop early"
  in
  let words k =
    run k;
    (* second run measures with the scratch warm *)
    let before = Gc.minor_words () in
    run k;
    Gc.minor_words () -. before
  in
  let k1 = 2 and k2 = total - 1 in
  let per_iter = (words k2 -. words k1) /. float_of_int (k2 - k1) in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state iteration allocates %.1f words (< 64)"
       per_iter)
    true (per_iter < 64.0)

(* One scratch across solves of different sizes: it grows monotonically
   and larger-than-n leftovers from earlier solves must not leak into
   later answers. *)
let test_scratch_reuse () =
  let scratch = Howard.create_scratch () in
  let check name g =
    let fresh_l, fresh_c = Howard.minimum_cycle_mean g in
    let l, c = Howard.minimum_cycle_mean ~scratch g in
    Helpers.check_ratio (name ^ ": lambda") fresh_l l;
    Alcotest.(check (list int)) (name ^ ": cycle") fresh_c c
  in
  check "large first" (Sprand.generate ~seed:11 ~n:300 ~m:900 ());
  check "then a tiny ring" (Families.ring 5);
  check "mid-size" (Sprand.generate ~seed:12 ~n:100 ~m:400 ())

let test_warm_start_with_scratch () =
  let g = Sprand.generate ~seed:13 ~n:200 ~m:600 () in
  let scratch = Howard.create_scratch () in
  let l0, _, policy = Howard.minimum_cycle_mean_warm ~scratch g in
  let l1, c1, _ = Howard.minimum_cycle_mean_warm ~scratch ~policy g in
  Helpers.check_ratio "re-solve from the optimal policy" l0 l1;
  Alcotest.(check bool) "witness is a cycle" true (Digraph.is_cycle g c1)

(* ------------------------------------------------------------------ *)
(* Chunked improvement sweep: bit-identical to the serial kernel       *)
(* ------------------------------------------------------------------ *)

(* The full kernel trajectory, not just the answer: λ, witness, final
   policy, and every operation counter must match the serial run for
   any pool size.  Tie-heavy families are the interesting inputs — with
   all weights equal every arc into a node proposes the same candidate,
   so any deviation from the lowest-arc-id merge rule shows up as a
   different final policy. *)
let check_chunked_matches_serial name g jobs =
  let st0 = Stats.create () in
  let l0, c0, p0 =
    Howard.minimum_cycle_mean_warm ~stats:st0 ~sweep_min_arcs:64 g
  in
  let pool = Executor.create ~jobs in
  Fun.protect
    ~finally:(fun () -> Executor.shutdown pool)
    (fun () ->
      let st = Stats.create () in
      let l, c, p =
        Howard.minimum_cycle_mean_warm ~stats:st ~pool ~sweep_min_arcs:64 g
      in
      Helpers.check_ratio (name ^ ": lambda") l0 l;
      Alcotest.(check (list int)) (name ^ ": cycle") c0 c;
      Alcotest.(check (array int)) (name ^ ": final policy") p0 p;
      Alcotest.(check bool)
        (name ^ ": stats bit-equal") true (st0 = st))

let test_chunked_sweep_tie_heavy () =
  List.iter
    (fun jobs ->
      (* every arc weighs 7: maximal ties, m = 96·95 = 9120 arcs *)
      check_chunked_matches_serial
        (Printf.sprintf "uniform complete, jobs=%d" jobs)
        (Families.complete ~weights:(7, 7) 96)
        jobs;
      check_chunked_matches_serial
        (Printf.sprintf "unit ring, jobs=%d" jobs)
        (Families.ring 8192) jobs;
      check_chunked_matches_serial
        (Printf.sprintf "sprand, jobs=%d" jobs)
        (Sprand.generate ~seed:7 ~n:2048 ~m:6144 ())
        jobs)
    [ 2; 3; Helpers.default_jobs ]

(* On arbitrary strongly connected graphs, with the chunking threshold
   forced all the way down so even ~10-arc instances split. *)
let qcheck_chunked_sweep_matches_serial =
  QCheck.Test.make
    ~name:"howard: chunked sweep bit-identical to serial (any graph)"
    ~count:60
    (Helpers.arb_strongly_connected ~max_n:10 ~max_extra:20 ~wlo:(-5) ~whi:5 ())
    (fun g ->
      let st0 = Stats.create () in
      let l0, c0, p0 =
        Howard.minimum_cycle_mean_warm ~stats:st0 ~sweep_min_arcs:2 g
      in
      List.for_all
        (fun jobs ->
          let pool = Executor.create ~jobs in
          Fun.protect
            ~finally:(fun () -> Executor.shutdown pool)
            (fun () ->
              let st = Stats.create () in
              let l, c, p =
                Howard.minimum_cycle_mean_warm ~stats:st ~pool
                  ~sweep_min_arcs:2 g
              in
              Ratio.equal l0 l && c0 = c && p0 = p && st0 = st))
        Helpers.jobs_sweep)

(* The parallel sweep's only steady-state allocation is the O(chunks)
   futures per iteration on the coordinating domain; the chunk winner
   tables live in the preallocated scratch.  Same differential
   technique as the serial test, with a bound that admits the futures
   but would catch any per-arc or per-node allocation. *)
let test_parallel_steady_state_allocation () =
  let g = Sprand.generate ~seed:3 ~n:2000 ~m:6000 () in
  let pool = Executor.create ~jobs:8 in
  Fun.protect
    ~finally:(fun () -> Executor.shutdown pool)
    (fun () ->
      let scratch = Howard.create_scratch () in
      let stats = Stats.create () in
      ignore
        (Howard.minimum_cycle_mean ~stats ~init:`First_arc ~scratch ~pool
           ~sweep_min_arcs:64 g);
      let total = stats.Stats.iterations in
      Alcotest.(check bool)
        (Printf.sprintf "enough iterations to measure (%d)" total)
        true (total >= 6);
      let run k =
        match
          Howard.minimum_cycle_mean ~init:`First_arc
            ~budget:(Budget.create ~max_iterations:k ())
            ~scratch ~pool ~sweep_min_arcs:64 g
        with
        | exception Budget.Exceeded _ -> ()
        | _ -> Alcotest.fail "the capped run should stop early"
      in
      let words k =
        run k;
        let before = Gc.minor_words () in
        run k;
        Gc.minor_words () -. before
      in
      let k1 = 2 and k2 = total - 1 in
      let per_iter = (words k2 -. words k1) /. float_of_int (k2 - k1) in
      Alcotest.(check bool)
        (Printf.sprintf
           "parallel steady-state iteration allocates %.1f words (< 512)"
           per_iter)
        true (per_iter < 512.0))

(* ------------------------------------------------------------------ *)
(* Observability: free when off, invisible when on                     *)
(* ------------------------------------------------------------------ *)

(* The kernel is now instrumented with spans and counters; with the
   global switch off every record call must compile down to a taken
   branch, so the steady-state per-iteration allocation stays exactly
   zero.  Same differential technique as above, but with the strict
   bound the instrumentation must preserve. *)
let test_disabled_tracing_zero_allocation () =
  Alcotest.(check bool) "tracing is off" false (Obs.enabled ());
  let g = Sprand.generate ~seed:3 ~n:2000 ~m:6000 () in
  let scratch = Howard.create_scratch () in
  let stats = Stats.create () in
  ignore (Howard.minimum_cycle_mean ~stats ~init:`First_arc ~scratch g);
  let total = stats.Stats.iterations in
  Alcotest.(check bool)
    (Printf.sprintf "enough iterations to measure (%d)" total)
    true (total >= 6);
  let run k =
    match
      Howard.minimum_cycle_mean ~init:`First_arc
        ~budget:(Budget.create ~max_iterations:k ())
        ~scratch g
    with
    | exception Budget.Exceeded _ -> ()
    | _ -> Alcotest.fail "the capped run should stop early"
  in
  let words k =
    run k;
    let before = Gc.minor_words () in
    run k;
    Gc.minor_words () -. before
  in
  let k1 = 2 and k2 = total - 1 in
  let per_iter = (words k2 -. words k1) /. float_of_int (k2 - k1) in
  Alcotest.(check bool)
    (Printf.sprintf
       "instrumented kernel, tracing off: %.2f words/iteration (= 0)"
       per_iter)
    true (per_iter = 0.0)

(* Enabling tracing must not perturb any observable output: λ, witness,
   final policy and every Stats counter bit-equal with recording on and
   off, serial and parallel.  (Ring capacity is tiny on purpose — wrap
   -around drops records, never correctness.) *)
let qcheck_tracing_invisible =
  QCheck.Test.make
    ~name:"howard: enabling tracing changes no report (jobs 1 and 8)"
    ~count:40
    (Helpers.arb_strongly_connected ~max_n:10 ~max_extra:20 ~wlo:(-5) ~whi:5 ())
    (fun g ->
      let solve pool =
        let st = Stats.create () in
        let l, c, p =
          Howard.minimum_cycle_mean_warm ~stats:st ?pool ~sweep_min_arcs:2 g
        in
        (l, c, p, st)
      in
      let with_pool jobs f =
        if jobs = 1 then f None
        else begin
          let pool = Executor.create ~jobs in
          Fun.protect
            ~finally:(fun () -> Executor.shutdown pool)
            (fun () -> f (Some pool))
        end
      in
      List.for_all
        (fun jobs ->
          with_pool jobs (fun pool ->
              let l0, c0, p0, st0 = solve pool in
              Trace.configure ~capacity:1024 ();
              Obs.enable ();
              let result =
                Fun.protect ~finally:Obs.disable (fun () -> solve pool)
              in
              let l, c, p, st = result in
              Trace.configure ();
              Ratio.equal l0 l && c0 = c && p0 = p && st0 = st))
        [ 1; 8 ])

let qcheck_random_init_agrees =
  QCheck.Test.make ~name:"howard: random init reaches the same optimum"
    ~count:60
    (Helpers.arb_strongly_connected ~max_n:8 ~max_extra:16 ())
    (fun g ->
      let expect, _ = Howard.minimum_cycle_mean g in
      List.for_all
        (fun seed ->
          let l, c = Howard.minimum_cycle_mean ~init:(`Random seed) g in
          Ratio.equal l expect && Digraph.is_cycle g c)
        [ 0; 1; 42 ])

let suite =
  [
    Alcotest.test_case "steady state allocates O(1) words" `Quick
      test_steady_state_allocation;
    Alcotest.test_case "scratch reuse across graphs" `Quick test_scratch_reuse;
    Alcotest.test_case "warm start threads scratch" `Quick
      test_warm_start_with_scratch;
    Alcotest.test_case "chunked sweep bit-identical on tie-heavy graphs"
      `Quick test_chunked_sweep_tie_heavy;
    Alcotest.test_case "parallel steady state allocates O(chunks) words"
      `Quick test_parallel_steady_state_allocation;
    Alcotest.test_case "instrumented kernel allocates 0 words with tracing off"
      `Quick test_disabled_tracing_zero_allocation;
  ]
  @ Helpers.qtests
      [
        qcheck_random_init_agrees; qcheck_chunked_sweep_matches_serial;
        qcheck_tracing_invisible;
      ]

(* The zero-allocation claims of the Howard kernel rewrite, checked
   directly with Gc counters, plus scratch-reuse correctness. *)

(* Two budget-capped runs of the same solve share an identical
   trajectory prefix, so the difference of their minor-heap usage is
   exactly (k2 - k1) times the steady-state per-iteration allocation —
   the per-solve constants (closures, the final exception) cancel. *)
let test_steady_state_allocation () =
  let g = Sprand.generate ~seed:3 ~n:2000 ~m:6000 () in
  let scratch = Howard.create_scratch () in
  let stats = Stats.create () in
  ignore (Howard.minimum_cycle_mean ~stats ~init:`First_arc ~scratch g);
  let total = stats.Stats.iterations in
  Alcotest.(check bool)
    (Printf.sprintf "enough iterations to measure (%d)" total)
    true (total >= 6);
  let run k =
    match
      Howard.minimum_cycle_mean ~init:`First_arc
        ~budget:(Budget.create ~max_iterations:k ())
        ~scratch g
    with
    | exception Budget.Exceeded _ -> ()
    | _ -> Alcotest.fail "the capped run should stop early"
  in
  let words k =
    run k;
    (* second run measures with the scratch warm *)
    let before = Gc.minor_words () in
    run k;
    Gc.minor_words () -. before
  in
  let k1 = 2 and k2 = total - 1 in
  let per_iter = (words k2 -. words k1) /. float_of_int (k2 - k1) in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state iteration allocates %.1f words (< 64)"
       per_iter)
    true (per_iter < 64.0)

(* One scratch across solves of different sizes: it grows monotonically
   and larger-than-n leftovers from earlier solves must not leak into
   later answers. *)
let test_scratch_reuse () =
  let scratch = Howard.create_scratch () in
  let check name g =
    let fresh_l, fresh_c = Howard.minimum_cycle_mean g in
    let l, c = Howard.minimum_cycle_mean ~scratch g in
    Helpers.check_ratio (name ^ ": lambda") fresh_l l;
    Alcotest.(check (list int)) (name ^ ": cycle") fresh_c c
  in
  check "large first" (Sprand.generate ~seed:11 ~n:300 ~m:900 ());
  check "then a tiny ring" (Families.ring 5);
  check "mid-size" (Sprand.generate ~seed:12 ~n:100 ~m:400 ())

let test_warm_start_with_scratch () =
  let g = Sprand.generate ~seed:13 ~n:200 ~m:600 () in
  let scratch = Howard.create_scratch () in
  let l0, _, policy = Howard.minimum_cycle_mean_warm ~scratch g in
  let l1, c1, _ = Howard.minimum_cycle_mean_warm ~scratch ~policy g in
  Helpers.check_ratio "re-solve from the optimal policy" l0 l1;
  Alcotest.(check bool) "witness is a cycle" true (Digraph.is_cycle g c1)

let qcheck_random_init_agrees =
  QCheck.Test.make ~name:"howard: random init reaches the same optimum"
    ~count:60
    (Helpers.arb_strongly_connected ~max_n:8 ~max_extra:16 ())
    (fun g ->
      let expect, _ = Howard.minimum_cycle_mean g in
      List.for_all
        (fun seed ->
          let l, c = Howard.minimum_cycle_mean ~init:(`Random seed) g in
          Ratio.equal l expect && Digraph.is_cycle g c)
        [ 0; 1; 42 ])

let suite =
  [
    Alcotest.test_case "steady state allocates O(1) words" `Quick
      test_steady_state_allocation;
    Alcotest.test_case "scratch reuse across graphs" `Quick test_scratch_reuse;
    Alcotest.test_case "warm start threads scratch" `Quick
      test_warm_start_with_scratch;
  ]
  @ Helpers.qtests [ qcheck_random_init_agrees ]

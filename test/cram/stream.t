The dynamic-session front-end: `ocr stream` speaks an NDJSON line
protocol over stdin/stdout against one mutable graph — label and
structural updates, exact queries warm-started from the last policy,
per-epoch fingerprints feeding the answer cache.

  $ cat > g3.ocr << EOF
  > p ocr 3 3
  > a 1 2 2 1
  > a 2 1 4 1
  > a 3 3 9 1
  > EOF

A full session: queries re-solve only dirtied components, a malformed
line mid-stream answers a structured error and the session continues,
reverting an edit hits the fingerprint cache, and structural updates
(add_arc answers the assigned session arc id) keep the session exact:

  $ printf '%s\n' \
  >   '{"op":"query"}' \
  >   'garbage' \
  >   '{"op":"set_weight","arc":0,"weight":10}' \
  >   '{"op":"query"}' \
  >   '{"op":"set_weight","arc":0,"weight":2}' \
  >   '{"op":"query"}' \
  >   '{"op":"epoch"}' \
  >   '{"op":"fingerprint"}' \
  >   '{"op":"add_arc","src":2,"dst":0,"weight":1}' \
  >   '{"op":"query"}' \
  >   '{"op":"remove_arc","arc":2}' \
  >   '{"op":"query"}' \
  >   '{"op":"telemetry"}' \
  >   '{"op":"quit"}' | ocr stream g3.ocr
  {"ok":true,"epoch":0,"lambda":"3","float":3.000000,"cycle":[0,1],"components":2,"resolved":2,"cached":false}
  {"ok":false,"error":"bad json: expected '{' at byte 0"}
  {"ok":true,"epoch":1}
  {"ok":true,"epoch":1,"lambda":"7","float":7.000000,"cycle":[0,1],"components":2,"resolved":1,"cached":false}
  {"ok":true,"epoch":2}
  {"ok":true,"epoch":2,"lambda":"3","float":3.000000,"cycle":[0,1],"components":2,"resolved":0,"cached":true}
  {"ok":true,"epoch":2}
  {"ok":true,"epoch":2,"fingerprint":"336c1e7a50d8a29ba7dcb8033edb143d"}
  {"ok":true,"epoch":3,"arc":3}
  {"ok":true,"epoch":3,"lambda":"3","float":3.000000,"cycle":[0,1],"components":2,"resolved":1,"cached":false}
  {"ok":true,"epoch":4}
  {"ok":true,"epoch":4,"lambda":"3","float":3.000000,"cycle":[0,1],"components":1,"resolved":0,"cached":false}
  {"ok":true,"requests":5,"solved":5,"approx":0,"exact":0,"acyclic":0,"rejected":1,"cache_hits":1,"cache_misses":4,"cache_entries":4}

A query carrying `eps` answers from the approximation lane — a
certified interval bracketing the exact optimum, never cached (an
interval must not shadow exact answers, nor vice versa); a bad `eps`
is a structured error and the session continues:

  $ printf '%s\n' \
  >   '{"op":"query","eps":0.05}' \
  >   '{"op":"query","eps":-1}' \
  >   '{"op":"query"}' \
  >   '{"op":"telemetry"}' \
  >   '{"op":"quit"}' | ocr stream g3.ocr
  {"ok":true,"epoch":0,"lambda_lo":"11/4","lambda_hi":"3","lo_float":2.750000,"hi_float":3.000000,"eps":0.05,"certified":true,"cycle":[0,1],"components":2,"cached":false}
  {"ok":false,"error":"field \"eps\" must be a positive finite number"}
  {"ok":true,"epoch":0,"lambda":"3","float":3.000000,"cycle":[0,1],"components":2,"resolved":2,"cached":false}
  {"ok":true,"requests":2,"solved":1,"approx":1,"exact":0,"acyclic":0,"rejected":1,"cache_hits":0,"cache_misses":2,"cache_entries":1}

`--journal` records one canonical line per applied update and query;
rejected lines are not recorded:

  $ printf '%s\n' \
  >   '{"op":"set_weight","arc":0,"weight":10}' \
  >   '{"op":"set_weight","arc":99,"weight":1}' \
  >   '{"op":"add_arc","src":2,"dst":0,"weight":1}' \
  >   '{"op":"query"}' \
  >   '{"op":"quit"}' | ocr stream g3.ocr --journal j.ndjson
  {"ok":true,"epoch":1}
  {"ok":false,"error":"Dyn.set_weight: no live arc 99"}
  {"ok":true,"epoch":2,"arc":3}
  {"ok":true,"epoch":2,"lambda":"7","float":7.000000,"cycle":[0,1],"components":2,"resolved":2,"cached":false}

  $ cat j.ndjson
  {"op":"set_weight","arc":0,"weight":10}
  {"op":"add_arc","src":2,"dst":0,"weight":1,"transit":1,"arc":3}
  {"op":"query"}

`--replay` reprocesses the recorded journal deterministically — same
epochs, same exact answers:

  $ ocr stream g3.ocr --replay j.ndjson
  {"ok":true,"epoch":1}
  {"ok":true,"epoch":2,"arc":3}
  {"ok":true,"epoch":2,"lambda":"7","float":7.000000,"cycle":[0,1],"components":2,"resolved":2,"cached":false}

Ratio sessions reuse the same protocol (`set_transit` changes the
denominator); a cycle whose transit drops to zero is a per-query
error, not a crash, and becomes answerable again once repaired:

  $ printf '%s\n' \
  >   '{"op":"query"}' \
  >   '{"op":"set_transit","arc":2,"transit":0}' \
  >   '{"op":"query"}' \
  >   '{"op":"set_transit","arc":2,"transit":3}' \
  >   '{"op":"query"}' \
  >   '{"op":"quit"}' | ocr stream g3.ocr --problem ratio
  {"ok":true,"epoch":0,"lambda":"3","float":3.000000,"cycle":[0,1],"components":2,"resolved":2,"cached":false}
  {"ok":true,"epoch":1}
  {"ok":false,"error":"Solver: cycle with zero total transit time (cost-to-time ratio undefined)"}
  {"ok":true,"epoch":2}
  {"ok":true,"epoch":2,"lambda":"3","float":3.000000,"cycle":[0,1],"components":2,"resolved":1,"cached":false}

A query carrying `"mode":"exact"` adds the rational certificate —
`lambda_num`/`lambda_den` recomputed from the witness cycle's integer
sums — to the answer; exact and float answers share the fingerprint
cache (the certificate is recomputed per query against the live graph).
A malformed mode and an exact eps-query are structured errors, and the
session survives both:

  $ printf '%s\n' \
  >   '{"op":"query","mode":"exact"}' \
  >   '{"op":"query","mode":"exact"}' \
  >   '{"op":"query","mode":"sideways"}' \
  >   '{"op":"query","mode":"exact","eps":0.05}' \
  >   '{"op":"query"}' \
  >   '{"op":"telemetry"}' \
  >   '{"op":"quit"}' | ocr stream g3.ocr
  {"ok":true,"epoch":0,"lambda":"3","float":3.000000,"lambda_num":3,"lambda_den":1,"cycle":[0,1],"components":2,"resolved":2,"cached":false}
  {"ok":true,"epoch":0,"lambda":"3","float":3.000000,"lambda_num":3,"lambda_den":1,"cycle":[0,1],"components":2,"resolved":0,"cached":true}
  {"ok":false,"error":"field \"mode\" must be \"float\" or \"exact\""}
  {"ok":false,"error":"\"mode\":\"exact\" does not apply to eps queries (an interval answer has no single rational certificate)"}
  {"ok":true,"epoch":0,"lambda":"3","float":3.000000,"cycle":[0,1],"components":2,"resolved":0,"cached":true}
  {"ok":true,"requests":3,"solved":3,"approx":0,"exact":2,"acyclic":0,"rejected":2,"cache_hits":2,"cache_misses":1,"cache_entries":1}

On a ratio session the certificate's denominator is the witness
cycle's transit sum, tracking `set_transit` edits:

  $ printf '%s\n' \
  >   '{"op":"query","mode":"exact"}' \
  >   '{"op":"set_transit","arc":0,"transit":3}' \
  >   '{"op":"query","mode":"exact"}' \
  >   '{"op":"quit"}' | ocr stream g3.ocr --problem ratio
  {"ok":true,"epoch":0,"lambda":"3","float":3.000000,"lambda_num":3,"lambda_den":1,"cycle":[0,1],"components":2,"resolved":2,"cached":false}
  {"ok":true,"epoch":1}
  {"ok":true,"epoch":1,"lambda":"3/2","float":1.500000,"lambda_num":3,"lambda_den":2,"cycle":[0,1],"components":2,"resolved":1,"cached":false}

The batch engine: parallel cache-aware solving behind `ocr batch` and
the `ocr serve` line protocol, plus the `--deadline-ms` budget on
`ocr solve`.

  $ ocr gen ring 4 --output r4.ocr
  wrote 4 nodes, 4 arcs to r4.ocr
  $ ocr gen ring 6 --output r6.ocr
  wrote 6 nodes, 6 arcs to r6.ocr
  $ ocr gen sprand 8 16 --seed 5 --output g.ocr
  wrote 8 nodes, 16 arcs to g.ocr

An acyclic instance (a 2-node chain):

  $ cat > dag.ocr << EOF
  > p ocr 2 1
  > a 1 2 3 1
  > EOF

A request file: one request per line, with per-request keys; repeated
instances exercise the result cache (request 3 is a cache hit, and its
certificate is re-checked against the request's own graph):

  $ cat > reqs.txt << EOF
  > # engine cram workload
  > g.ocr verify=true
  > r4.ocr
  > g.ocr verify=true
  > r6.ocr algorithm=karp objective=max
  > dag.ocr
  > g.ocr problem=ratio
  > EOF

  $ ocr batch reqs.txt
  req=1 file=g.ocr status=ok lambda=4677/4 float=1169.250000 alg=howard components=1 fallbacks=0 cached=false certificate=ok
  req=2 file=r4.ocr status=ok lambda=1 float=1.000000 alg=howard components=1 fallbacks=0 cached=false
  req=3 file=g.ocr status=ok lambda=4677/4 float=1169.250000 alg=howard components=1 fallbacks=0 cached=true certificate=ok
  req=4 file=r6.ocr status=ok lambda=1 float=1.000000 alg=karp components=1 fallbacks=0 cached=false
  req=5 file=dag.ocr status=acyclic
  req=6 file=g.ocr status=ok lambda=4677/4 float=1169.250000 alg=howard components=1 fallbacks=0 cached=false
  # requests=6 solved=5 approx=0 exact=0 acyclic=1 timeouts=0 rejected=0
  # cache: hits=1 misses=5 collisions=0 hit-rate=0.17
  # portfolio: fallbacks=0
  # alg howard: runs=3 blowouts=0
  # alg karp: runs=1 blowouts=0

The whole batch output — responses, ordering, cache-hit counters — is
byte-identical whatever the parallelism:

  $ ocr batch reqs.txt > jobs1.out
  $ ocr batch reqs.txt --jobs 4 > jobs4.out
  $ cmp jobs1.out jobs4.out && echo identical
  identical

Telemetry exports to CSV/JSON (the deterministic counters):

  $ ocr batch reqs.txt --telemetry-csv tel.csv > /dev/null
  $ grep -E '^(requests|solved|cache_hits|cache_misses|acyclic),' tel.csv
  requests,6
  solved,5
  cache_hits,1
  cache_misses,5
  acyclic,1

The server speaks the same request grammar, one line at a time;
`telemetry` dumps counters, `quit` (or EOF) ends the session:

  $ printf 'g.ocr\ng.ocr verify=true\ntelemetry\nquit\n' | ocr serve
  req=1 file=g.ocr status=ok lambda=4677/4 float=1169.250000 alg=howard components=1 fallbacks=0 cached=false
  req=2 file=g.ocr status=ok lambda=4677/4 float=1169.250000 alg=howard components=1 fallbacks=0 cached=true certificate=ok
  # requests=2 solved=2 approx=0 exact=0 acyclic=0 timeouts=0 rejected=0
  # cache: hits=1 misses=1 collisions=0 hit-rate=0.50
  # portfolio: fallbacks=0
  # alg howard: runs=1 blowouts=0

Malformed requests get an error response, not a crash:

  $ printf 'g.ocr problem=bogus\nquit\n' | ocr serve
  error msg="problem must be mean or ratio, got \"bogus\""

Corrupt graph files mid-stream likewise answer a structured error line
and the session keeps serving — truncated records, out-of-range
endpoints and missing files all stay inside the request that named
them:

  $ cat > corrupt.ocr << EOF
  > p ocr 2 1
  > a 1 7 3 1
  > EOF
  $ printf 'corrupt.ocr\nnosuch.ocr\ng.ocr\nquit\n' | ocr serve
  req=1 file=corrupt.ocr status=error msg="Graph_io: line 2: Digraph.add_arc: endpoint out of range"
  req=2 file=nosuch.ocr status=error msg="nosuch.ocr: No such file or directory"
  req=3 file=g.ocr status=ok lambda=4677/4 float=1169.250000 alg=howard components=1 fallbacks=0 cached=false

`ocr solve` honors a wall-clock deadline, reporting a timeout on a
clean nonzero exit:

  $ ocr solve g.ocr --deadline-ms 0
  timeout: deadline exceeded
  [5]

The approximation lane: `algorithm=approx` answers with a certified
interval [lo, hi] bracketing the exact optimum instead of a single
value; `approx-eps` sets the width target as a fraction of the weight
scale, and the certificate's witness cycle is re-checked on `verify`:

  $ printf 'g.ocr algorithm=approx approx-eps=0.05 verify=true\ntelemetry\nquit\n' | ocr serve
  req=1 file=g.ocr status=approx lambda_lo=773 lambda_hi=4677/4 lo_float=773.000000 hi_float=1169.250000 eps=0.05 certified=true components=1 fallback=false cached=false certificate=ok
  # requests=1 solved=0 approx=1 exact=0 acyclic=0 timeouts=0 rejected=0
  # cache: hits=0 misses=1 collisions=0 hit-rate=0.00
  # portfolio: fallbacks=0
  # alg approx: runs=1 blowouts=0

Invalid tolerances — and a tolerance attached to an exact algorithm —
are structured errors, and the server keeps serving:

  $ printf 'g.ocr approx-eps=0\ng.ocr approx-eps=nan\ng.ocr algorithm=karp approx-eps=0.1\ng.ocr\nquit\n' | ocr serve
  error msg="approx-eps must be a positive finite float, got \"0\""
  error msg="approx-eps must be a positive finite float, got \"nan\""
  error msg="approx-eps does not apply to exact algorithm \"karp\" (use algorithm=approx or algorithm=auto)"
  req=1 file=g.ocr status=ok lambda=4677/4 float=1169.250000 alg=howard components=1 fallbacks=0 cached=false

A doomed deadline answers `status=timeout` — unless the request opts
into the approx fallback with `approx-eps`, in which case it gets a
certified interval and an ok status instead of the timeout:

  $ printf 'g.ocr deadline-ms=0\ng.ocr deadline-ms=0 approx-eps=0.05\nquit\n' | ocr serve
  req=1 file=g.ocr status=timeout attempted=howard partial=-
  req=2 file=g.ocr status=approx lambda_lo=773 lambda_hi=4677/4 lo_float=773.000000 hi_float=1169.250000 eps=0.05 certified=true components=1 fallback=true cached=false

The same lane on the command line, with the exact-witness audit:

  $ ocr solve g.ocr --approx 0.05 --verify
  lambda in [773, 4677/4] ([773.000000, 1169.250000])
  width = 396.25 (target 493.7) certified = true tests = 2 rounds = 6
  certificate: OK

Exact-answer mode: `mode=exact` adds the rational certificate —
`lambda_num`/`lambda_den`, recomputed from the witness cycle's integer
sums — to the response; `algorithm=exact` routes the solve through the
Stern–Brocot lane, whose λ comes purely from integer negative-cycle
probes.  Float and exact answers live under distinct cache keys (the
mode=exact repeat of request 1 below is a miss, then a hit), and both
render the same λ:

  $ printf 'g.ocr\ng.ocr mode=exact\ng.ocr mode=exact\ng.ocr mode=exact algorithm=exact\ng.ocr mode=exact algorithm=exact problem=ratio\ntelemetry\nquit\n' | ocr serve
  req=1 file=g.ocr status=ok lambda=4677/4 float=1169.250000 alg=howard components=1 fallbacks=0 cached=false
  req=2 file=g.ocr status=ok lambda=4677/4 float=1169.250000 lambda_num=4677 lambda_den=4 alg=howard components=1 fallbacks=0 cached=false
  req=3 file=g.ocr status=ok lambda=4677/4 float=1169.250000 lambda_num=4677 lambda_den=4 alg=howard components=1 fallbacks=0 cached=true
  req=4 file=g.ocr status=ok lambda=4677/4 float=1169.250000 lambda_num=4677 lambda_den=4 alg=exact components=1 fallbacks=0 cached=false
  req=5 file=g.ocr status=ok lambda=4677/4 float=1169.250000 lambda_num=4677 lambda_den=4 alg=exact components=1 fallbacks=0 cached=false
  # requests=5 solved=5 approx=0 exact=4 acyclic=0 timeouts=0 rejected=0
  # cache: hits=1 misses=4 collisions=0 hit-rate=0.20
  # portfolio: fallbacks=0
  # alg exact: runs=2 blowouts=0
  # alg howard: runs=2 blowouts=0

On a true cost-to-time instance (transits above 1) the certificate's
denominator is the witness cycle's transit sum, not its length:

  $ ocr gen sprand 8 16 --seed 5 --transits 2,3 --output gt.ocr
  wrote 8 nodes, 16 arcs to gt.ocr
  $ printf 'gt.ocr mode=exact problem=ratio\ngt.ocr mode=exact problem=ratio algorithm=exact\nquit\n' | ocr serve
  req=1 file=gt.ocr status=ok lambda=4677/10 float=467.700000 lambda_num=4677 lambda_den=10 alg=howard components=1 fallbacks=0 cached=false
  req=2 file=gt.ocr status=ok lambda=4677/10 float=467.700000 lambda_num=4677 lambda_den=10 alg=exact components=1 fallbacks=0 cached=false

mode=exact refuses interval answers — the approx lane and eps-fallback
requests — with structured errors, and malformed mode values never
kill the serve loop:

  $ printf 'g.ocr mode=exact algorithm=approx\ng.ocr mode=exact approx-eps=0.05\ng.ocr mode=banana\ng.ocr mode=exact\nquit\n' | ocr serve
  error msg="mode=exact does not apply to algorithm=approx (an interval answer has no single rational certificate)"
  error msg="mode=exact does not apply to approx-eps requests (the deadline fallback would answer an interval, not a certificate)"
  error msg="mode must be float or exact, got \"banana\""
  req=1 file=g.ocr status=ok lambda=4677/4 float=1169.250000 lambda_num=4677 lambda_den=4 alg=howard components=1 fallbacks=0 cached=false

On the command line, `--exact` prints the certificate line after the
answer (and composes with any algorithm choice):

  $ ocr solve g.ocr --exact
  lambda = 4677/4 (1169.250000)
  lambda_num=4677 lambda_den=4
  $ ocr solve g.ocr --exact -a karp2 -p ratio
  lambda = 4677/4 (1169.250000)
  lambda_num=4677 lambda_den=4
  $ ocr solve g.ocr --exact --approx 0.05
  ocr: --exact does not apply to --approx (an interval answer has no single rational certificate)
  [1]

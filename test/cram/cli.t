The CLI drives the whole pipeline: generate, inspect, solve, certify.

Generate a small SPRAND instance (deterministic for a fixed seed):

  $ ocr gen sprand 8 16 --seed 5 --output g.ocr
  wrote 8 nodes, 16 arcs to g.ocr

  $ ocr info g.ocr
  nodes: 8
  arcs: 16
  weights: [376, 9874]
  total transit: 16
  strongly connected components: 1 (1 cyclic)
  strongly connected: true

Solve it with the default algorithm (Howard) and certify the result:

  $ ocr solve g.ocr --verify
  lambda = 4677/4 (1169.250000)
  certificate: OK

Every algorithm gives the same optimum:

  $ for a in burns ko yto howard ho karp dg lawler karp2 oa1 oa2; do
  >   ocr solve g.ocr -a $a | head -1
  > done
  lambda = 4677/4 (1169.250000)
  lambda = 4677/4 (1169.250000)
  lambda = 4677/4 (1169.250000)
  lambda = 4677/4 (1169.250000)
  lambda = 4677/4 (1169.250000)
  lambda = 4677/4 (1169.250000)
  lambda = 4677/4 (1169.250000)
  lambda = 4677/4 (1169.250000)
  lambda = 4677/4 (1169.250000)
  lambda = 4677/4 (1169.250000)
  lambda = 4677/4 (1169.250000)

The witness cycle and operation counts are available on demand:

  $ ocr solve g.ocr -a yto --cycle | tail -1
  cycle: 2->3 3->7 7->4 4->2

Maximization and the cost-to-time ratio problem:

  $ ocr solve g.ocr -o max | head -1
  lambda = 7834 (7834.000000)
  $ ocr solve g.ocr -p ratio | head -1
  lambda = 4677/4 (1169.250000)

The critical subgraph:

  $ ocr critical g.ocr | head -2
  lambda = 4677/4
  critical arcs (4):

Acyclic inputs are reported, not crashed on:

  $ cat > dag.ocr <<EOD
  > p ocr 3 2
  > a 1 2 5
  > a 2 3 5
  > EOD
  $ ocr solve dag.ocr
  acyclic graph: no cycle to optimize
  [2]

Unknown algorithms are rejected with the valid choices:

  $ ocr solve g.ocr -a dijkstra 2>&1 | head -1 | cut -c1-40
  ocr: option '-a': unknown algorithm "dij

Circuit benchmark stand-ins can be listed and generated:

  $ ocr gen circuit list | head -3
  s27          3 registers
  s208         8 registers
  s298        14 registers
  $ ocr gen circuit s344 --output s344.ocr
  wrote 15 nodes, 27 arcs to s344.ocr
  $ ocr solve s344.ocr --verify | tail -1
  certificate: OK

Ratio instances with transit times:

  $ ocr gen sprand 8 16 --seed 5 --transits 1,4 --output r.ocr
  wrote 8 nodes, 16 arcs to r.ocr
  $ ocr solve r.ocr -p ratio -a yto --verify | tail -1
  certificate: OK
  $ ocr solve r.ocr -p ratio -a karp | head -1 > karp_ratio.txt
  $ ocr solve r.ocr -p ratio -a howard | head -1 > howard_ratio.txt
  $ diff karp_ratio.txt howard_ratio.txt

DIMACS .gr interchange (the format SPRAND itself emits):

  $ cat > g.gr <<EOD
  > c a 3-cycle
  > p sp 3 3
  > a 1 2 4
  > a 2 3 5
  > a 3 1 6
  > EOD
  $ ocr solve g.gr
  lambda = 5 (5.000000)
  $ ocr info g.gr | head -2
  nodes: 3
  arcs: 3

Comparing all algorithms on one instance:

  $ ocr compare g.ocr | tail -1
  all algorithms agree

Sharded multi-process serving: `ocr cluster` forks shared-nothing
workers, shards one-shot solves by structural graph fingerprint, pins
dyn sessions to a worker, sheds overload, and survives worker death by
respawning and replaying the session journal.

  $ cat > g3.ocr << EOF
  > p ocr 3 3
  > a 1 2 2 1
  > a 2 1 4 1
  > a 3 3 9 1
  > EOF

One-shot solves ride the serve protocol; the second request for the
same graph lands on the same worker (fingerprint affinity) and hits
its cache:

  $ printf '%s\n' g3.ocr g3.ocr quit | ocr cluster --workers 2 2>/dev/null
  req=1 file=g3.ocr status=ok lambda=3 float=3.000000 alg=howard components=2 fallbacks=0 cached=false
  req=2 file=g3.ocr status=ok lambda=3 float=3.000000 alg=howard components=2 fallbacks=0 cached=true

The approximation lane rides the same one-shot path: an explicit
`algorithm=approx` request answers a certified interval, and a request
with a doomed deadline that opts in via `approx-eps` degrades to that
interval instead of a timeout:

  $ printf '%s\n' 'g3.ocr algorithm=approx approx-eps=0.05' 'g3.ocr deadline-ms=0 approx-eps=0.05' quit | ocr cluster --workers 2 2>/dev/null
  req=1 file=g3.ocr status=approx lambda_lo=11/4 lambda_hi=3 lo_float=2.750000 hi_float=3.000000 eps=0.05 certified=true components=2 fallback=false cached=false
  req=2 file=g3.ocr status=approx lambda_lo=11/4 lambda_hi=3 lo_float=2.750000 hi_float=3.000000 eps=0.05 certified=true components=2 fallback=true cached=false

Admission control: with the one worker wedged (SIGSTOP), a queue depth
of 2 admits exactly two requests and sheds the rest with structured
errors; the admitted ones are answered after the worker resumes:

  $ mkfifo req1
  $ ocr cluster --workers 1 --queue-depth 2 < req1 > shed.log 2> shed.err &
  $ CLUSTER=$!
  $ exec 3>req1
  $ printf 'status\n' >&3
  $ for _ in $(seq 1 100); do grep -q pid0 shed.log && break; sleep 0.1; done
  $ PID=$(grep -o '"pid0":[0-9]*' shed.log | tail -1 | cut -d: -f2)
  $ kill -STOP $PID
  $ printf '%s\n' g3.ocr g3.ocr g3.ocr g3.ocr g3.ocr >&3
  $ for _ in $(seq 1 100); do [ $(grep -c overloaded shed.log) -eq 3 ] && break; sleep 0.1; done
  $ kill -CONT $PID
  $ printf 'quit\n' >&3
  $ exec 3>&-
  $ wait $CLUSTER
  $ grep -v '"workers"' shed.log
  {"ok":false,"err":"overloaded","req":3}
  {"ok":false,"err":"overloaded","req":4}
  {"ok":false,"err":"overloaded","req":5}
  req=1 file=g3.ocr status=ok lambda=3 float=3.000000 alg=howard components=2 fallbacks=0 cached=false
  req=2 file=g3.ocr status=ok lambda=3 float=3.000000 alg=howard components=2 fallbacks=0 cached=true

Sticky sessions and recovery.  Session "a" is pinned to worker 1 (the
placement is itself pinned by a unit test).  We update, query, then
kill the hosting worker twice — once outright (SIGKILL by the pid the
status line reports), once by wedging it with a query in flight so the
request timeout fires — and each time the respawned worker replays the
router's journal and answers the re-query bit-identically:

  $ waitlog () { for _ in $(seq 1 200); do grep -q "$1" out.log && return 0; sleep 0.1; done; echo "TIMEOUT waiting for $1"; }
  $ mkfifo req2
  $ ocr cluster --workers 2 --request-timeout-ms 600 < req2 > out.log 2> err.log &
  $ CLUSTER=$!
  $ exec 3>req2
  $ printf '%s\n' \
  >   '{"op":"open","session":"a","graph":"g3.ocr"}' \
  >   '{"op":"set_weight","session":"a","arc":0,"weight":10}' \
  >   '{"op":"query","session":"a"}' >&3
  $ waitlog '"lambda"'
  $ printf 'status\n' >&3
  $ waitlog '"pid1"'
  $ PID=$(grep -o '"pid1":[0-9]*' out.log | tail -1 | cut -d: -f2)
  $ kill -9 $PID
  $ for _ in $(seq 1 200); do printf 'status\n' >&3; sleep 0.1; grep -q '"restarts1":1' out.log && break; done
  $ printf '%s\n' '{"op":"query","session":"a"}' >&3
  $ for _ in $(seq 1 200); do [ $(grep -c '"lambda"' out.log) -ge 2 ] && break; sleep 0.1; done
  $ PID=$(grep '"restarts1":1' out.log | tail -1 | grep -o '"pid1":[0-9]*' | cut -d: -f2)
  $ kill -STOP $PID
  $ printf '%s\n' '{"op":"query","session":"a"}' >&3
  $ for _ in $(seq 1 200); do printf 'status\n' >&3; sleep 0.1; grep -q '"restarts1":2' out.log && break; done
  $ printf '%s\n' '{"op":"query","session":"a"}' >&3
  $ for _ in $(seq 1 200); do [ $(grep -c '"lambda"' out.log) -ge 3 ] && break; sleep 0.1; done
  $ printf 'metrics\n' >&3
  $ waitlog ocr_worker_sessions
  $ printf 'quit\n' >&3
  $ exec 3>&-
  $ wait $CLUSTER

The session's protocol lines, in order: open, update, the pre-crash
query, the query replayed after the SIGKILL, the in-flight query
failed by the second crash, and the final replayed query — every
answer bit-identical to the first:

  $ grep '"session"' out.log
  {"session":"a","ok":true,"epoch":0,"nodes":3,"arcs":3}
  {"session":"a","ok":true,"epoch":1}
  {"session":"a","ok":true,"epoch":1,"lambda":"7","float":7.000000,"cycle":[0,1],"components":2,"resolved":2,"cached":false}
  {"session":"a","ok":true,"epoch":1,"lambda":"7","float":7.000000,"cycle":[0,1],"components":2,"resolved":2,"cached":false}
  {"session":"a","ok":false,"err":"worker died"}
  {"session":"a","ok":true,"epoch":1,"lambda":"7","float":7.000000,"cycle":[0,1],"components":2,"resolved":2,"cached":false}

Every recovered answer equals the uninterrupted single-process run of
the same ops (modulo the session tag the router adds):

  $ printf '%s\n' '{"op":"set_weight","arc":0,"weight":10}' '{"op":"query"}' '{"op":"quit"}' \
  >   | ocr stream g3.ocr | grep '"lambda"' > single.txt
  $ grep '"lambda"' out.log | sed 's/"session":"a",//' | sort -u > cluster.txt
  $ diff single.txt cluster.txt

The aggregated exposition reports both restarts against the right
worker, and the router saw both deaths:

  $ grep '^ocr_worker_restarts_total' out.log
  ocr_worker_restarts_total 2
  ocr_worker_restarts_total{worker="0"} 0
  ocr_worker_restarts_total{worker="1"} 2
  $ grep '^ocr_cluster_workers ' out.log
  ocr_cluster_workers 2
  $ grep -c respawned err.log
  2

`--access-log` appends one NDJSON line per request: routing decision,
cache outcome, queue depth at admission and the per-phase breakdown
(phase times vary run to run, so keep the stable fields):

  $ printf '%s\n' g3.ocr g3.ocr quit | ocr cluster --workers 2 --access-log access.ndjson 2>/dev/null
  req=1 file=g3.ocr status=ok lambda=3 float=3.000000 alg=howard components=2 fallbacks=0 cached=false
  req=2 file=g3.ocr status=ok lambda=3 float=3.000000 alg=howard components=2 fallbacks=0 cached=true
  $ grep -o '"req":[0-9]*,"worker":[0-9]*,"key":[0-9]*,"cache":[a-z]*,"queue":[0-9]*' access.ndjson
  "req":1,"worker":0,"key":2872372986434491453,"cache":false,"queue":0
  "req":2,"worker":0,"key":2872372986434491453,"cache":true,"queue":1
  $ grep -c '"dispatch_ms":[0-9.]*,"queue_ms":[0-9.]*,"solve_ms":[0-9.]*,"serialize_ms":[0-9.]*,"total_ms":[0-9.]*,"status":"ok"' access.ndjson
  2

An unwritable access-log path is logged and the log disabled; the
router keeps serving (satellite of the metrics-file guard):

  $ printf '%s\n' g3.ocr quit | ocr cluster --workers 1 --access-log /nonexistent/dir/a.ndjson 2>access.err
  req=1 file=g3.ocr status=ok lambda=3 float=3.000000 alg=howard components=2 fallbacks=0 cached=false
  $ grep -c 'cannot open access log' access.err
  1

`--trace-dir` records a distributed trace: the router and every worker
write per-process files, requests propagate their trace id to the
worker (`"trace":1` in the access log below, equal to the request id),
and `trace merge` aligns the files into one timeline with a flow arrow
per request; summarize then attributes the per-request critical path:

  $ mkdir td
  $ printf '%s\n' g3.ocr quit | ocr cluster --workers 2 --trace-dir td --access-log traced.ndjson 2>/dev/null
  req=1 file=g3.ocr status=ok lambda=3 float=3.000000 alg=howard components=2 fallbacks=0 cached=false
  $ ls td
  router.json
  worker-0.json
  worker-1.json
  $ grep -o '"trace":[0-9]*,"req":[0-9]*' traced.ndjson
  "trace":1,"req":1
  $ ocr trace merge td/router.json td/worker-0.json td/worker-1.json -o m.json
  $ grep -c '"ph":"s"' m.json
  1
  $ grep -c '"ph":"f"' m.json
  1
  $ ocr trace summarize m.json | grep -c 'per-request critical path'
  1

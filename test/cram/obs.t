Observability: `--trace` Chrome/Perfetto export, `trace summarize`,
Prometheus metrics from `serve`, NDJSON metrics from `stream`, and the
per-heap operation breakdown under `solve --stats`.

  $ ocr gen sprand 8 16 --seed 5 --output g.ocr
  wrote 8 nodes, 16 arcs to g.ocr

Solving with `--trace` writes a Chrome trace-event JSON file; span
timings vary run to run, but which spans fire and how often is
deterministic, so summarize the trace and keep the name/count columns:

  $ ocr solve g.ocr --trace t.json
  lambda = 4677/4 (1169.250000)
  $ ocr trace summarize t.json | tail -n +2 | awk '{print $1, $2}' | sort
  bf.run 1
  howard.eval 1
  howard.iteration 1
  howard.solve 1
  howard.sweep 1
  solver.component 1
  solver.partition 1
  solver.reduce 1

The file is valid JSON holding one complete event per span plus the
track metadata Perfetto needs:

  $ grep -c '"ph":"X"' t.json
  8
  $ grep -c '"ph":"M"' t.json
  2

A committed miniature trace pins the full table: timestamps are fixed,
so totals and self-times are exact (`solve` covers 100us, its two
`eval` children 40us, leaving 60us of self-time):

  $ cat > mini.json << EOF
  > [ {"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"ocr"}},
  >   {"ph":"X","pid":0,"tid":0,"ts":0,"dur":100,"name":"solve"},
  >   {"ph":"X","pid":0,"tid":0,"ts":10,"dur":30,"name":"eval"},
  >   {"ph":"X","pid":0,"tid":0,"ts":50,"dur":10,"name":"eval"},
  >   {"ph":"i","pid":0,"tid":0,"ts":60,"name":"cache.hit"} ]
  > EOF
  $ ocr trace summarize mini.json
  span                        count      total(ms)       self(ms)
  solve                           1          0.100          0.060
  eval                            2          0.040          0.040

`--top` truncates the table:

  $ ocr trace summarize mini.json --top 1 | tail -n +2
  solve                           1          0.100          0.060

Malformed input is a structured error on stderr and a nonzero exit,
never an exception trace:

  $ printf 'not json' > bad.json
  $ ocr trace summarize bad.json
  ocr: trace summarize: bad JSON: expected 'u' at byte 1
  [1]
  $ ocr trace summarize missing.json
  ocr: trace summarize: missing.json: No such file or directory
  [1]

So is an empty or whitespace-only file (a crashed writer leaves one):

  $ : > empty.json
  $ ocr trace summarize empty.json
  ocr: trace summarize: empty trace file
  [1]
  $ printf '  \n' > blank.json
  $ ocr trace summarize blank.json
  ocr: trace summarize: empty trace file
  [1]

`trace merge` aligns per-process files from a traced cluster run onto
one clock and draws a flow arrow per request; on the committed
miniature pair (the worker's clock reads 1ms behind, offset +1000000ns)
the worker span shifts from 1500..3500 to 2500..4500:

  $ cat > router.json << EOF
  > {"traceEvents":[
  >   {"name":"clock_offset_ns","ph":"M","pid":0,"tid":0,"args":{"value":0}},
  >   {"name":"rt.sent","cat":"ocr","ph":"i","ts":1100,"s":"t","pid":0,"tid":0,"args":{"trace":1}} ]}
  > EOF
  $ cat > worker-0.json << EOF
  > {"traceEvents":[
  >   {"name":"clock_offset_ns","ph":"M","pid":1,"tid":0,"args":{"value":1000000}},
  >   {"name":"engine.request","cat":"ocr","ph":"b","id":"1","ts":1500,"pid":1,"tid":0,"args":{"trace":1}},
  >   {"name":"engine.request","cat":"ocr","ph":"e","id":"1","ts":3500,"pid":1,"tid":0,"args":{"trace":1}} ]}
  > EOF
  $ ocr trace merge router.json worker-0.json -o merged.json
  $ grep -o '"name":"engine.request","cat":"ocr","ph":"[be]","id":"1","ts":[0-9]*' merged.json
  "name":"engine.request","cat":"ocr","ph":"b","id":"1","ts":2500
  "name":"engine.request","cat":"ocr","ph":"e","id":"1","ts":4500
  $ grep -c '"ph":"s"' merged.json
  1
  $ grep -c '"ph":"f"' merged.json
  1

A malformed input fails the merge naming the file:

  $ ocr trace merge router.json bad.json
  ocr: trace merge: bad.json: bad JSON: expected 'u' at byte 1
  [1]

`serve --metrics` dumps Prometheus text exposition on exit, and the
`metrics` protocol line prints the same snapshot mid-session; the
counters are deterministic (latency samples are not, so keep the
counter lines):

  $ printf 'g.ocr\ng.ocr\nmetrics\nquit\n' | ocr serve --metrics m.prom | grep -E '^(ocr_(requests|solved|cache)|# TYPE ocr_solve_latency)'
  ocr_requests_total 2
  ocr_solved_total 2
  ocr_cache_hits_total 1
  ocr_cache_misses_total 1
  ocr_cache_collisions_total 0
  # TYPE ocr_solve_latency_ms histogram
  $ grep -E '^ocr_(requests|cache_hits)' m.prom
  ocr_requests_total 2
  ocr_cache_hits_total 1
  $ grep -c 'ocr_solve_latency_ms_count 2' m.prom
  1

`stream --metrics-every N` interleaves an NDJSON metrics digest after
every Nth handled line, and `{"op":"metrics"}` asks for one on demand:

  $ cat > g3.ocr << EOF
  > p ocr 3 3
  > a 1 2 2 1
  > a 2 1 4 1
  > a 3 3 9 1
  > EOF
  $ printf '%s\n' '{"op":"query"}' '{"op":"set_weight","arc":0,"weight":2}' \
  >   '{"op":"metrics"}' '{"op":"quit"}' | ocr stream g3.ocr --metrics-every 2 \
  >   | grep -o '"ok":true,"requests":[0-9]*,"cache_hits":[0-9]*,"cache_misses":[0-9]*'
  "ok":true,"requests":1,"cache_hits":0,"cache_misses":1
  "ok":true,"requests":1,"cache_hits":0,"cache_misses":1

Heap-based algorithms expose their heap-operation breakdown under
`--stats` (KO drives a meldable heap, YTO a decrease-key heap; Howard
uses no heap, so no breakdown line):

  $ ocr solve g.ocr -a ko --stats | tail -1
  heap ops: inserts=14 extract_mins=10 decrease_keys=0 deletes=7 melds=0 total=31
  $ ocr solve g.ocr -a yto --stats | tail -1
  heap ops: inserts=6 extract_mins=3 decrease_keys=5 deletes=0 melds=0 total=14
  $ ocr solve g.ocr -a howard --stats | tail -1
  stats: iter=1 relax=4 arcs=0 cycles=1 oracle=1 level=0 heap:[ins=0 ext=0 dec=0 del=0 meld=0]

(* The (1+ε)-approximation lane: certificate soundness against the
   exact solver, convergence to the width target, determinism across
   job counts, and the dyadic / value-iteration building blocks. *)

let check_ratio = Helpers.check_ratio
let r = Helpers.r

(* ------------------------------------------------------------------ *)
(* Dyadic grid                                                         *)
(* ------------------------------------------------------------------ *)

let test_dyadic () =
  Alcotest.(check int) "denom_for 1" 1 (Dyadic.denom_for 1.0);
  Alcotest.(check int) "denom_for 0.5" 2 (Dyadic.denom_for 0.5);
  Alcotest.(check int) "denom_for 0.3" 4 (Dyadic.denom_for 0.3);
  Alcotest.(check int) "denom_for huge" 1 (Dyadic.denom_for 1e30);
  Alcotest.(check int) "floor_pow2 1" 1 (Dyadic.floor_pow2 1);
  Alcotest.(check int) "floor_pow2 7" 4 (Dyadic.floor_pow2 7);
  Alcotest.(check int) "floor_pow2 8" 8 (Dyadic.floor_pow2 8);
  check_ratio "quantize half" (r 1 2) (Dyadic.quantize ~denom:2 0.5);
  check_ratio "quantize rounds" (r 3 4) (Dyadic.quantize ~denom:4 0.7);
  check_ratio "quantize negative" (r (-5) 8) (Dyadic.quantize ~denom:8 (-0.625))

(* ------------------------------------------------------------------ *)
(* Truncated value iteration                                           *)
(* ------------------------------------------------------------------ *)

let test_value_iter_verdicts () =
  (* a 3-ring: all-positive costs have no negative cycle; all-negative
     costs must produce one *)
  let g = Families.ring 3 in
  let pos = [| 1; 1; 1 |] and neg = [| -1; -1; -1 |] in
  (match Value_iter.run ~max_rounds:10 ~costs:pos g with
  | Value_iter.No_negative_cycle, _ -> ()
  | _ -> Alcotest.fail "positive ring: expected No_negative_cycle");
  (match Value_iter.run ~max_rounds:10 ~costs:neg g with
  | Value_iter.Negative_cycle c, _ ->
    Alcotest.(check bool) "witness is a cycle" true (Digraph.is_cycle g c);
    Alcotest.(check bool) "witness is negative" true
      (List.fold_left (fun acc a -> acc + neg.(a)) 0 c < 0)
  | _ -> Alcotest.fail "negative ring: expected Negative_cycle");
  (* truncation: one round cannot traverse the whole ring, and on an
     all-zero graph nothing improves after round 1, so a too-small
     budget on a slow-converging instance must stay inconclusive *)
  let g2 = Families.ring 40 in
  let costs = Array.make 40 1 in
  costs.(0) <- -39;
  (* total weight 0: values keep circulating for ~n rounds *)
  match Value_iter.run ~max_rounds:2 ~costs g2 with
  | Value_iter.Inconclusive, rounds ->
    Alcotest.(check bool) "stopped at the cap" true (rounds <= 2)
  | Value_iter.No_negative_cycle, _ -> Alcotest.fail "expected Inconclusive"
  | Value_iter.Negative_cycle _, _ ->
    Alcotest.fail "zero-weight ring has no negative cycle"

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let test_two_cycles_fixture () =
  let g = Families.two_cycles ~len1:3 ~w1:7 ~len2:4 ~w2:2 in
  let c = Option.get (Approx.solve ~eps:0.01 g) in
  (* λ* = 2; the interval must bracket it within eps·scale = 0.07 *)
  Alcotest.(check bool) "lo <= 2" true (Ratio.leq c.Approx.lo (r 2 1));
  Alcotest.(check bool) "2 <= hi" true (Ratio.leq (r 2 1) c.Approx.hi);
  Alcotest.(check bool) "converged" true c.Approx.converged;
  Alcotest.(check bool) "width" true
    (Ratio.to_float c.Approx.hi -. Ratio.to_float c.Approx.lo
    <= c.Approx.eps *. c.Approx.scale);
  Alcotest.(check (result unit string)) "recheck" (Ok ()) (Approx.recheck g c)

let test_acyclic_and_errors () =
  let dag = Digraph.of_arcs 3 [ (0, 1, 1, 1); (1, 2, 1, 1) ] in
  Alcotest.(check bool) "acyclic -> None" true
    (Approx.solve ~eps:0.1 dag = None);
  let g = Families.ring 4 in
  List.iter
    (fun eps ->
      Alcotest.(check bool)
        (Printf.sprintf "eps=%g rejected" eps)
        true
        (match Approx.solve ~eps g with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ 0.0; -0.5; Float.nan; Float.infinity ];
  Alcotest.(check bool) "jobs=0 rejected" true
    (match Approx.solve ~jobs:0 ~eps:0.1 g with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_budget_starvation () =
  (* a zero-iteration budget starves every λ-test, but the certificate
     stays sound: the a-priori lower bound and an exact witness ratio *)
  let g = Sprand.generate ~seed:11 ~weights:(-20, 20) ~n:40 ~m:160 () in
  let budget = Budget.create ~max_iterations:0 () in
  let c = Option.get (Approx.solve ~budget ~eps:0.001 g) in
  let exact = (Option.get (Solver.minimum_cycle_mean g)).Solver.lambda in
  Alcotest.(check bool) "lo <= exact" true (Ratio.leq c.Approx.lo exact);
  Alcotest.(check bool) "exact <= hi" true (Ratio.leq exact c.Approx.hi);
  Alcotest.(check (result unit string)) "recheck" (Ok ()) (Approx.recheck g c)

let test_registry_lane () =
  match Registry.lane "approx" with
  | None -> Alcotest.fail "approx lane not registered"
  | Some l ->
    Alcotest.(check string) "name" "approx" l.Registry.lane_name;
    Alcotest.(check bool) "listed" true
      (List.mem "approx" (Registry.lane_names ()));
    let g = Families.ring ~weight:(fun i -> i) 5 in
    (* λ* = 10/5 = 2 *)
    let lr = l.Registry.lane_mean ~eps:0.01 g in
    Alcotest.(check bool) "lane lo <= 2" true
      (Ratio.leq lr.Registry.lane_lo (r 2 1));
    Alcotest.(check bool) "lane 2 <= hi" true
      (Ratio.leq (r 2 1) lr.Registry.lane_hi);
    Alcotest.(check bool) "lane converged" true lr.Registry.lane_converged

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* every family graph, both problems and objectives, two tolerances:
   the certificate brackets the exact optimum with exact-rational
   comparisons, converges to the width target, and survives recheck *)
let qcheck_certificate_brackets_exact =
  QCheck.Test.make ~name:"approx: certificate brackets the exact optimum"
    ~count:60
    QCheck.(pair (Helpers.arb_family ()) (oneofl [ 0.1; 0.01 ]))
    (fun (g, eps) ->
      List.for_all
        (fun (problem, objective) ->
          let exact =
            Solver.solve ~problem ~objective ~algorithm:Registry.Howard g
          in
          let cert = Approx.solve ~problem ~objective ~eps g in
          match (exact, cert) with
          | None, None -> true
          | Some _, None | None, Some _ -> false
          | Some rep, Some c ->
            let lambda = rep.Solver.lambda in
            Ratio.leq c.Approx.lo lambda
            && Ratio.leq lambda c.Approx.hi
            && c.Approx.converged
            && Ratio.to_float c.Approx.hi -. Ratio.to_float c.Approx.lo
               <= (eps *. c.Approx.scale) +. 1e-9
            && Approx.recheck ~problem ~objective g c = Ok ())
        [
          (Solver.Cycle_mean, Solver.Minimize);
          (Solver.Cycle_mean, Solver.Maximize);
          (Solver.Cycle_ratio, Solver.Minimize);
          (Solver.Cycle_ratio, Solver.Maximize);
        ])

(* parallel component fan-out must not change the answer: the whole
   certificate is bit-identical for every job count *)
let qcheck_jobs_deterministic =
  QCheck.Test.make ~name:"approx: certificate identical across job counts"
    ~count:40
    (Helpers.arb_family ())
    (fun g ->
      let solve jobs = Approx.solve ~jobs ~eps:0.05 g in
      match solve 1 with
      | None -> List.for_all (fun j -> solve j = None) Helpers.jobs_sweep
      | Some base ->
        List.for_all
          (fun jobs ->
            match solve jobs with
            | None -> false
            | Some c ->
              Ratio.equal c.Approx.lo base.Approx.lo
              && Ratio.equal c.Approx.hi base.Approx.hi
              && c.Approx.witness = base.Approx.witness
              && c.Approx.components = base.Approx.components)
          Helpers.jobs_sweep)

let suite =
  [
    Alcotest.test_case "dyadic grid" `Quick test_dyadic;
    Alcotest.test_case "value iteration verdicts" `Quick
      test_value_iter_verdicts;
    Alcotest.test_case "two-cycles fixture" `Quick test_two_cycles_fixture;
    Alcotest.test_case "acyclic + validation" `Quick test_acyclic_and_errors;
    Alcotest.test_case "budget starvation stays sound" `Quick
      test_budget_starvation;
    Alcotest.test_case "registry lane" `Quick test_registry_lane;
  ]
  @ Helpers.qtests
      [ qcheck_certificate_brackets_exact; qcheck_jobs_deterministic ]

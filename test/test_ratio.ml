let r = Helpers.r

let test_normalization () =
  Helpers.check_ratio "reduced" (r 1 2) (r 4 8);
  Helpers.check_ratio "sign in numerator" (r (-1) 3) (r 1 (-3));
  Helpers.check_ratio "double negative" (r 1 3) (r (-1) (-3));
  Helpers.check_ratio "zero" Ratio.zero (r 0 17);
  Alcotest.(check int) "den positive" 3 (Ratio.den (r 2 (-3)));
  Alcotest.(check int) "num carries sign" (-2) (Ratio.num (r 2 (-3)))

let test_zero_denominator () =
  Alcotest.check_raises "make 1/0" Division_by_zero (fun () -> ignore (r 1 0));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Ratio.div Ratio.one Ratio.zero))

(* -min_int = min_int: unchecked, it would defeat the den > 0
   canonicalization and make serialized num/den pairs ambiguous *)
let test_min_int_guard () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "num = min_int" (fun () -> r min_int 3);
  expect_invalid "den = min_int" (fun () -> r 3 min_int);
  (* the neighboring magnitudes are fine *)
  Helpers.check_ratio "max_int den" (r 1 max_int) (r 1 max_int)

let test_comparisons () =
  Alcotest.(check bool) "1/3 < 1/2" true (Ratio.lt (r 1 3) (r 1 2));
  Alcotest.(check bool) "-1/2 < 1/3" true (Ratio.lt (r (-1) 2) (r 1 3));
  Alcotest.(check bool) "equal cross forms" true (Ratio.equal (r 2 4) (r 3 6));
  Alcotest.(check bool) "leq reflexive" true (Ratio.leq (r 5 7) (r 5 7));
  Helpers.check_ratio "min" (r 1 3) (Ratio.min (r 1 2) (r 1 3));
  Helpers.check_ratio "max" (r 1 2) (Ratio.max (r 1 2) (r 1 3))

let test_arithmetic () =
  Helpers.check_ratio "add" (r 5 6) (Ratio.add (r 1 2) (r 1 3));
  Helpers.check_ratio "sub" (r 1 6) (Ratio.sub (r 1 2) (r 1 3));
  Helpers.check_ratio "mul" (r 1 6) (Ratio.mul (r 1 2) (r 1 3));
  Helpers.check_ratio "div" (r 3 2) (Ratio.div (r 1 2) (r 1 3));
  Helpers.check_ratio "neg" (r (-1) 2) (Ratio.neg (r 1 2));
  Helpers.check_ratio "add to zero" Ratio.zero (Ratio.add (r 1 2) (r (-1) 2))

let test_conversions () =
  Alcotest.(check (float 1e-12)) "to_float" 0.5 (Ratio.to_float (r 1 2));
  Alcotest.(check string) "print integral" "7" (Ratio.to_string (r 14 2));
  Alcotest.(check string) "print fraction" "-3/4" (Ratio.to_string (r 3 (-4)));
  Helpers.check_ratio "of_int" (r 5 1) (Ratio.of_int 5)

let arb_ratio =
  QCheck.(
    map
      (fun (n, d) -> Ratio.make n (if d = 0 then 1 else d))
      (pair (int_range (-1000) 1000) (int_range (-50) 50)))

let qcheck_compare_antisym =
  QCheck.Test.make ~name:"ratio: compare is antisymmetric" ~count:500
    (QCheck.pair arb_ratio arb_ratio)
    (fun (a, b) -> Ratio.compare a b = -Ratio.compare b a)

let qcheck_add_commutes =
  QCheck.Test.make ~name:"ratio: addition commutes and respects floats"
    ~count:500
    (QCheck.pair arb_ratio arb_ratio)
    (fun (a, b) ->
      let s = Ratio.add a b in
      Ratio.equal s (Ratio.add b a)
      && abs_float (Ratio.to_float s -. (Ratio.to_float a +. Ratio.to_float b))
         < 1e-9)

let qcheck_mul_div_inverse =
  QCheck.Test.make ~name:"ratio: (a*b)/b = a for b<>0" ~count:500
    (QCheck.pair arb_ratio arb_ratio)
    (fun (a, b) ->
      QCheck.assume (Ratio.num b <> 0);
      Ratio.equal a (Ratio.div (Ratio.mul a b) b))

(* Uniqueness: every rational has exactly one (num, den) image — equal
   values built from scaled (even negatively scaled) fractions share
   the representation bit for bit, so serialized lambda_num/lambda_den
   pairs can be compared textually. *)
let qcheck_unique_representation =
  QCheck.Test.make ~name:"ratio: equal implies identical num/den" ~count:500
    (QCheck.pair arb_ratio (QCheck.int_range 1 40))
    (fun (a, k) ->
      let b = Ratio.make (Ratio.num a * k) (Ratio.den a * k) in
      let c = Ratio.make (-(Ratio.num a * k)) (-(Ratio.den a * k)) in
      Ratio.equal a b && Ratio.equal a c
      && Ratio.num b = Ratio.num a && Ratio.den b = Ratio.den a
      && Ratio.num c = Ratio.num a && Ratio.den c = Ratio.den a)

let qcheck_normalized =
  QCheck.Test.make ~name:"ratio: always normalized" ~count:500 arb_ratio
    (fun a ->
      let rec gcd x y = if y = 0 then x else gcd y (x mod y) in
      Ratio.den a > 0 && (Ratio.num a = 0 || gcd (abs (Ratio.num a)) (Ratio.den a) = 1))

let suite =
  [
    Alcotest.test_case "normalization" `Quick test_normalization;
    Alcotest.test_case "zero denominator" `Quick test_zero_denominator;
    Alcotest.test_case "min_int guard" `Quick test_min_int_guard;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "conversions" `Quick test_conversions;
  ]
  @ Helpers.qtests
      [
        qcheck_compare_antisym;
        qcheck_add_commutes;
        qcheck_mul_div_inverse;
        qcheck_unique_representation;
        qcheck_normalized;
      ]

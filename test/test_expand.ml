let test_sizes () =
  let g = Digraph.of_arcs 2 [ (0, 1, 5, 3); (1, 0, 2, 1) ] in
  let ex = Expand.transit_expand g in
  (* total transit 4, so 4 arcs; 2 original + 2 chain nodes *)
  Alcotest.(check int) "expanded arcs" 4 (Digraph.m ex.Expand.graph);
  Alcotest.(check int) "expanded nodes" 4 (Digraph.n ex.Expand.graph);
  Digraph.iter_arcs ex.Expand.graph (fun a ->
      Alcotest.(check int) "unit transit" 1 (Digraph.transit ex.Expand.graph a))

let test_weight_placement () =
  let g = Digraph.of_arcs 2 [ (0, 1, 7, 3) ] in
  let ex = Expand.transit_expand g in
  let total =
    Digraph.fold_arcs ex.Expand.graph
      (fun s a -> s + Digraph.weight ex.Expand.graph a)
      0
  in
  Alcotest.(check int) "total weight preserved" 7 total

let test_mapping () =
  let g = Digraph.of_arcs 2 [ (0, 1, 5, 2); (1, 0, 2, 2) ] in
  let ex = Expand.transit_expand g in
  let weight_bearing =
    Array.to_list ex.Expand.orig_arc |> List.filter (fun o -> o >= 0)
  in
  Alcotest.(check (list int)) "each original arc appears once" [ 0; 1 ]
    (List.sort compare weight_bearing);
  Alcotest.(check int) "original nodes keep ids" 0 ex.Expand.orig_node.(0);
  Alcotest.(check int) "chain node marked" (-1) ex.Expand.orig_node.(2)

let test_zero_transit_rejected () =
  let g = Digraph.of_arcs 2 [ (0, 1, 5, 0); (1, 0, 2, 1) ] in
  Alcotest.check_raises "zero transit"
    (Invalid_argument "Expand.transit_expand: zero transit time") (fun () ->
      ignore (Expand.transit_expand g))

let test_restrict_cycle () =
  let g = Digraph.of_arcs 2 [ (0, 1, 5, 2); (1, 0, 2, 3) ] in
  let ex = Expand.transit_expand g in
  (* the expanded graph is one big ring; its only cycle maps back *)
  let cycle = Cycles.list ex.Expand.graph |> List.hd in
  let back = Expand.restrict_cycle ex cycle in
  Alcotest.(check (list int)) "mapped back" [ 0; 1 ] (List.sort compare back);
  Alcotest.(check bool) "a real cycle of g" true (Digraph.is_cycle g back)

let qcheck_ratio_preserved =
  QCheck.Test.make
    ~name:"expand: min ratio of g = min mean of expanded g" ~count:150
    (Helpers.arb_strongly_connected ~max_n:6 ~max_extra:8 ~wlo:(-9) ~whi:9
       ~tmax:3 ())
    (fun g ->
      let ex = Expand.transit_expand g in
      let ratio = Helpers.oracle_ratio Oracle.Minimize g in
      let mean = Helpers.oracle_mean Oracle.Minimize ex.Expand.graph in
      match (ratio, mean) with
      | Some a, Some b -> Ratio.equal a b
      | None, None -> true
      | _ -> false)

let qcheck_strong_connectivity_preserved =
  QCheck.Test.make ~name:"expand: preserves strong connectivity" ~count:100
    (Helpers.arb_strongly_connected ~max_n:6 ~max_extra:6 ~tmax:4 ())
    (fun g ->
      Traversal.is_strongly_connected (Expand.transit_expand g).Expand.graph)

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "weight on first chain arc" `Quick test_weight_placement;
    Alcotest.test_case "arc/node mapping" `Quick test_mapping;
    Alcotest.test_case "zero transit rejected" `Quick test_zero_transit_rejected;
    Alcotest.test_case "restrict_cycle" `Quick test_restrict_cycle;
  ]
  @ Helpers.qtests [ qcheck_ratio_preserved; qcheck_strong_connectivity_preserved ]

(* The shared Karp-recurrence machinery, tested directly. *)

let triangle () =
  Digraph.of_weighted_arcs 3 [ (0, 1, 2); (1, 2, 4); (2, 0, 3) ]

let test_alloc_table () =
  let g = triangle () in
  let d = Karp_core.alloc_table g in
  Alcotest.(check int) "size (n+1)*n" 12 (Array.length d);
  Alcotest.(check int) "source at 0" 0 d.(0);
  Alcotest.(check bool) "others infinite" true
    (d.(1) = Karp_core.inf && d.(2) = Karp_core.inf)

let test_relax_level () =
  let g = triangle () in
  let d = Karp_core.alloc_table g in
  Karp_core.relax_level g d 1;
  Alcotest.(check int) "D_1(1) = w(0,1)" 2 d.(3 + 1);
  Alcotest.(check bool) "D_1(2) unreachable in one step" true
    (d.(3 + 2) = Karp_core.inf);
  Karp_core.relax_level g d 2;
  Karp_core.relax_level g d 3;
  Alcotest.(check int) "D_3(0) = full cycle" 9 d.(9 + 0)

let test_lambda_of_table () =
  let g = triangle () in
  let d = Karp_core.alloc_table g in
  for k = 1 to 3 do
    Karp_core.relax_level g d k
  done;
  Helpers.check_ratio "lambda = 9/3" (Helpers.r 3 1)
    (Karp_core.lambda_of_table g d)

let test_witness_checks_optimality () =
  let g = triangle () in
  Alcotest.(check bool) "non-optimal lambda rejected" true
    (match Karp_core.witness g (Helpers.r 5 1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let w = Karp_core.witness g (Helpers.r 3 1) in
  Alcotest.(check bool) "witness is the triangle" true (Digraph.is_cycle g w)

let test_arc_visit_accounting () =
  let g = triangle () in
  let d = Karp_core.alloc_table g in
  let stats = Stats.create () in
  Karp_core.relax_level ~stats g d 1;
  Alcotest.(check int) "one visit per arc per level" 3 stats.Stats.arcs_visited

let test_stats_counters () =
  let s = Stats.create () in
  s.Stats.iterations <- 3;
  s.Stats.level <- 7;
  s.Stats.heap.Heap_stats.inserts <- 11;
  let acc = Stats.create () in
  acc.Stats.level <- 9;
  Stats.add acc s;
  Alcotest.(check int) "iterations add" 3 acc.Stats.iterations;
  Alcotest.(check int) "level maxes" 9 acc.Stats.level;
  Alcotest.(check int) "heap stats add" 11 acc.Stats.heap.Heap_stats.inserts;
  Stats.reset s;
  Alcotest.(check int) "reset" 0 s.Stats.iterations;
  Alcotest.(check int) "reset heap" 0 s.Stats.heap.Heap_stats.inserts;
  Alcotest.(check int) "heap_stats total" 11 (Heap_stats.total acc.Stats.heap)

let suite =
  [
    Alcotest.test_case "alloc_table" `Quick test_alloc_table;
    Alcotest.test_case "relax_level" `Quick test_relax_level;
    Alcotest.test_case "lambda_of_table" `Quick test_lambda_of_table;
    Alcotest.test_case "witness checks optimality" `Quick
      test_witness_checks_optimality;
    Alcotest.test_case "arc visit accounting" `Quick test_arc_visit_accounting;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
  ]

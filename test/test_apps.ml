(* ------------------------------------------------------------------ *)
(* dataflow iteration bound                                             *)
(* ------------------------------------------------------------------ *)

let biquad_full () =
  let d = Dataflow.create () in
  let add1 = Dataflow.add_op d ~name:"add1" ~time:1 in
  let m1 = Dataflow.add_op d ~name:"mul1" ~time:2 in
  let m2 = Dataflow.add_op d ~name:"mul2" ~time:2 in
  Dataflow.add_edge d ~delays:1 add1 m1;
  Dataflow.add_edge d m1 add1;
  Dataflow.add_edge d ~delays:2 add1 m2;
  Dataflow.add_edge d m2 add1;
  (d, add1)

let biquad () = fst (biquad_full ())

let test_iteration_bound () =
  match Dataflow.iteration_bound (biquad ()) with
  | Some (bound, loop) ->
    Helpers.check_ratio "bound (1+2)/1" (Helpers.r 3 1) bound;
    Alcotest.(check int) "critical loop length" 2 (List.length loop)
  | None -> Alcotest.fail "recursive graph has a bound"

let test_feedforward_no_bound () =
  let d = Dataflow.create () in
  let a = Dataflow.add_op d ~name:"a" ~time:1 in
  let b = Dataflow.add_op d ~name:"b" ~time:1 in
  Dataflow.add_edge d a b;
  Alcotest.(check bool) "no bound" true (Dataflow.iteration_bound d = None)

let test_delay_free_loop_rejected () =
  let d = Dataflow.create () in
  let a = Dataflow.add_op d ~name:"a" ~time:1 in
  let b = Dataflow.add_op d ~name:"b" ~time:1 in
  Dataflow.add_edge d a b;
  Dataflow.add_edge d b a;
  match Dataflow.iteration_bound d with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "delay-free loop must be rejected"

let test_dataflow_accessors () =
  let d, add1 = biquad_full () in
  Alcotest.(check string) "name" "add1" (Dataflow.op_name d add1);
  Alcotest.(check int) "time" 1 (Dataflow.op_time d add1);
  Alcotest.(check int) "graph nodes" 3 (Digraph.n (Dataflow.to_graph d))

let test_dataflow_bound_dominates_all_loops () =
  (* adding a slower loop raises the bound *)
  let d, add1 = biquad_full () in
  let slow = Dataflow.add_op d ~name:"slow" ~time:9 in
  Dataflow.add_edge d ~delays:1 add1 slow;
  Dataflow.add_edge d slow add1;
  match Dataflow.iteration_bound d with
  | Some (bound, _) -> Helpers.check_ratio "new bound (1+9)/1" (Helpers.r 10 1) bound
  | None -> Alcotest.fail "bound exists"

(* ------------------------------------------------------------------ *)
(* retiming                                                             *)
(* ------------------------------------------------------------------ *)

let correlator () =
  let c = Retiming.create () in
  let host = Retiming.add_block c ~name:"host" ~delay:0 in
  let cmp = Array.init 4 (fun i ->
      Retiming.add_block c ~name:(Printf.sprintf "cmp%d" i) ~delay:3)
  in
  let add = Array.init 3 (fun i ->
      Retiming.add_block c ~name:(Printf.sprintf "add%d" i) ~delay:7)
  in
  Retiming.add_wire c ~registers:1 host cmp.(0);
  Retiming.add_wire c ~registers:1 cmp.(0) cmp.(1);
  Retiming.add_wire c ~registers:1 cmp.(1) cmp.(2);
  Retiming.add_wire c ~registers:1 cmp.(2) cmp.(3);
  Retiming.add_wire c cmp.(3) add.(2);
  Retiming.add_wire c add.(2) add.(1);
  Retiming.add_wire c add.(1) add.(0);
  Retiming.add_wire c add.(0) host;
  Retiming.add_wire c cmp.(0) add.(0);
  Retiming.add_wire c cmp.(1) add.(1);
  Retiming.add_wire c cmp.(2) add.(2);
  c

let test_correlator_period () =
  let c = correlator () in
  Alcotest.(check int) "period as designed" 24 (Retiming.clock_period c);
  let period, labels = Retiming.min_period c in
  Alcotest.(check int) "Leiserson-Saxe optimum" 13 period;
  let retimed = Retiming.retime c labels in
  Alcotest.(check int) "retimed period matches" 13 (Retiming.clock_period retimed)

let test_lower_bound_respected () =
  let c = correlator () in
  match Retiming.period_lower_bound c with
  | Some b ->
    let period, _ = Retiming.min_period c in
    Alcotest.(check bool) "bound <= optimum" true
      (Ratio.to_float b <= float_of_int period)
  | None -> Alcotest.fail "cyclic circuit has a bound"

let test_combinational_loop_detected () =
  let c = Retiming.create () in
  let a = Retiming.add_block c ~name:"a" ~delay:2 in
  let b = Retiming.add_block c ~name:"b" ~delay:2 in
  Retiming.add_wire c a b;
  Retiming.add_wire c b a;
  Alcotest.check_raises "combinational loop"
    (Invalid_argument
       "Retiming.clock_period: register-free cycle (combinational loop)")
    (fun () -> ignore (Retiming.clock_period c))

let test_retime_validation () =
  let c = correlator () in
  Alcotest.(check bool) "bad label count" true
    (match Retiming.retime c [| 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* labels that would push a register count negative *)
  let n = Retiming.block_count c in
  let bad = Array.make n 0 in
  bad.(0) <- 5;
  Alcotest.(check bool) "negative register count" true
    (match Retiming.retime c bad with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_acyclic_pipeline () =
  let c = Retiming.create () in
  let a = Retiming.add_block c ~name:"a" ~delay:4 in
  let b = Retiming.add_block c ~name:"b" ~delay:6 in
  Retiming.add_wire c ~registers:0 a b;
  Alcotest.(check bool) "no cycle, no bound" true
    (Retiming.period_lower_bound c = None);
  Alcotest.(check int) "period = path delay" 10 (Retiming.clock_period c);
  (* a pipeline register can cut the critical path *)
  let period, _ = Retiming.min_period c in
  Alcotest.(check bool) "optimum no worse than designed" true (period <= 10)

let qcheck_min_period_realizable =
  (* random small circuits: the period claimed by min_period must be
     realized by the returned labels *)
  let arb =
    QCheck.make
      ~print:(fun (blocks, wires) ->
        Printf.sprintf "blocks=%s wires=%s"
          (String.concat ","
             (List.map string_of_int blocks))
          (String.concat ","
             (List.map
                (fun (u, v, r) -> Printf.sprintf "(%d,%d,%d)" u v r)
                wires)))
      QCheck.Gen.(
        let* nb = int_range 2 6 in
        let* blocks = list_repeat nb (int_range 0 9) in
        let* seed = int_range 0 100000 in
        let rng = Rng.create seed in
        (* ring with registers guarantees no combinational loop *)
        let wires = ref [] in
        for i = 0 to nb - 1 do
          wires := (i, (i + 1) mod nb, 1 + Rng.int rng 2) :: !wires
        done;
        let extra = Rng.int rng 5 in
        for _ = 1 to extra do
          let u = Rng.int rng nb and v = Rng.int rng nb in
          wires := (u, v, 1 + Rng.int rng 2) :: !wires
        done;
        return (blocks, !wires))
  in
  QCheck.Test.make ~name:"retiming: min_period labels realize the period"
    ~count:100 arb
    (fun (blocks, wires) ->
      let c = Retiming.create () in
      let ids =
        List.mapi
          (fun i d -> Retiming.add_block c ~name:(string_of_int i) ~delay:d)
          blocks
      in
      let arr = Array.of_list ids in
      List.iter
        (fun (u, v, r) -> Retiming.add_wire c ~registers:r arr.(u) arr.(v))
        wires;
      let period, labels = Retiming.min_period c in
      let retimed = Retiming.retime c labels in
      Retiming.clock_period retimed <= period
      && period <= Retiming.clock_period c)

(* ------------------------------------------------------------------ *)
(* max-plus                                                             *)
(* ------------------------------------------------------------------ *)

let production () =
  Maxplus.of_entries 3
    [ (0, 2, 8); (1, 0, 3); (2, 1, 4); (1, 1, 5); (0, 0, 2); (2, 0, 6) ]

let test_eigenvalue () =
  match Maxplus.eigenvalue (production ()) with
  | Some l -> Helpers.check_ratio "known eigenvalue" (Helpers.r 7 1) l
  | None -> Alcotest.fail "irreducible system has an eigenvalue"

let test_eigenvector_equation () =
  let a = production () in
  match Maxplus.eigenvector a with
  | None -> Alcotest.fail "irreducible"
  | Some (l, v) ->
    (* check A ⊗ v = λ + v exactly, in rationals *)
    let n = Maxplus.dim a in
    for i = 0 to n - 1 do
      let best = ref None in
      for j = 0 to n - 1 do
        match Maxplus.get a i j with
        | None -> ()
        | Some w ->
          let cand = Ratio.add (Ratio.of_int w) v.(j) in
          best :=
            Some
              (match !best with
              | None -> cand
              | Some b -> Ratio.max b cand)
      done;
      match !best with
      | None -> Alcotest.fail "irreducible matrix has entries in every row"
      | Some b -> Helpers.check_ratio "eigen equation row" (Ratio.add l v.(i)) b
    done

let test_power_iteration_growth () =
  let a = production () in
  let l = Maxplus.eigenvalue a |> Option.get in
  let x0 = Array.make 3 (Some 0) in
  let k = 24 in
  let xk = Maxplus.cycle_time a ~x0 ~rounds:k in
  let xk1 = Maxplus.cycle_time a ~x0 ~rounds:(k + 2) in
  (* the critical cycle has length 2, so after the transient the
     sequence is 2-periodic: growth over 2 steps is exactly 2λ *)
  (match (xk.(0), xk1.(0)) with
  | Some u, Some w ->
    Alcotest.(check int) "asymptotic growth rate" (2 * Ratio.num l) (w - u)
  | _ -> Alcotest.fail "entries must stay finite")

let test_matrix_ops () =
  let a = Maxplus.of_entries 2 [ (0, 1, 3); (1, 0, 4) ] in
  let sq = Maxplus.mul a a in
  Alcotest.(check (option int)) "A²(0,0) = 3+4" (Some 7) (Maxplus.get sq 0 0);
  Alcotest.(check (option int)) "A²(0,1) stays -inf" None (Maxplus.get sq 0 1);
  let x = Maxplus.vec_mul a [| Some 0; Some 10 |] in
  Alcotest.(check (option int)) "vec mul" (Some 13) x.(0)

let test_reducible () =
  let a = Maxplus.of_entries 2 [ (0, 0, 1) ] in
  Alcotest.(check bool) "not irreducible" false (Maxplus.is_irreducible a);
  Alcotest.(check bool) "no eigenvector" true (Maxplus.eigenvector a = None);
  (* eigenvalue still defined as max cycle mean *)
  match Maxplus.eigenvalue a with
  | Some l -> Helpers.check_ratio "self loop" (Helpers.r 1 1) l
  | None -> Alcotest.fail "cycle exists"

let test_graph_roundtrip () =
  let a = production () in
  let b = Maxplus.of_graph (Maxplus.to_graph a) in
  let same = ref true in
  for i = 0 to 2 do
    for j = 0 to 2 do
      if Maxplus.get a i j <> Maxplus.get b i j then same := false
    done
  done;
  Alcotest.(check bool) "roundtrip" true !same

let qcheck_eigenvector_property =
  QCheck.Test.make
    ~name:"maxplus: eigenvector satisfies A⊗v = λ+v on random irreducible"
    ~count:100
    (Helpers.arb_strongly_connected ~max_n:6 ~max_extra:8 ~wlo:0 ~whi:12 ())
    (fun g ->
      let a = Maxplus.of_graph g in
      match Maxplus.eigenvector a with
      | None -> false (* strongly connected -> irreducible *)
      | Some (l, v) ->
        let n = Maxplus.dim a in
        let ok = ref true in
        for i = 0 to n - 1 do
          let best = ref None in
          for j = 0 to n - 1 do
            match Maxplus.get a i j with
            | None -> ()
            | Some w ->
              let cand = Ratio.add (Ratio.of_int w) v.(j) in
              best :=
                Some (match !best with None -> cand | Some b -> Ratio.max b cand)
          done;
          match !best with
          | None -> ok := false
          | Some b -> if not (Ratio.equal b (Ratio.add l v.(i))) then ok := false
        done;
        !ok)

let suite =
  [
    Alcotest.test_case "dataflow: iteration bound" `Quick test_iteration_bound;
    Alcotest.test_case "dataflow: feed-forward" `Quick test_feedforward_no_bound;
    Alcotest.test_case "dataflow: delay-free loop" `Quick
      test_delay_free_loop_rejected;
    Alcotest.test_case "dataflow: accessors" `Quick test_dataflow_accessors;
    Alcotest.test_case "dataflow: slowest loop dominates" `Quick
      test_dataflow_bound_dominates_all_loops;
    Alcotest.test_case "retiming: correlator 24 -> 13" `Quick
      test_correlator_period;
    Alcotest.test_case "retiming: ratio bound respected" `Quick
      test_lower_bound_respected;
    Alcotest.test_case "retiming: combinational loop" `Quick
      test_combinational_loop_detected;
    Alcotest.test_case "retiming: label validation" `Quick test_retime_validation;
    Alcotest.test_case "retiming: acyclic pipeline" `Quick test_acyclic_pipeline;
    Alcotest.test_case "maxplus: eigenvalue" `Quick test_eigenvalue;
    Alcotest.test_case "maxplus: eigenvector equation" `Quick
      test_eigenvector_equation;
    Alcotest.test_case "maxplus: power iteration growth" `Quick
      test_power_iteration_growth;
    Alcotest.test_case "maxplus: matrix operations" `Quick test_matrix_ops;
    Alcotest.test_case "maxplus: reducible matrix" `Quick test_reducible;
    Alcotest.test_case "maxplus: graph roundtrip" `Quick test_graph_roundtrip;
  ]
  @ Helpers.qtests [ qcheck_min_period_realizable; qcheck_eigenvector_property ]

(* ------------------------------------------------------------------ *)
(* event-rule systems                                                   *)
(* ------------------------------------------------------------------ *)

let self_timed_ring ~stages ~tokens ~forward ~backward =
  let er = Eventrule.create () in
  let e =
    Array.init stages (fun i ->
        Eventrule.add_event er ~name:(Printf.sprintf "e%d" i))
  in
  for i = 0 to stages - 1 do
    let succ = (i + 1) mod stages in
    let f_offset = if i < tokens then 1 else 0 in
    Eventrule.add_rule er ~offset:f_offset ~delay:forward e.(i) e.(succ);
    Eventrule.add_rule er ~offset:(1 - f_offset) ~delay:backward e.(succ) e.(i)
  done;
  (er, e)

let test_eventrule_period () =
  (* forward-limited: 4 stages, 2 tokens, d_f=10: period 40/2 = 20 *)
  let er, _ = self_timed_ring ~stages:4 ~tokens:2 ~forward:10 ~backward:1 in
  (match Eventrule.cycle_period er with
  | Some (p, _) -> Helpers.check_ratio "token-limited" (Helpers.r 20 1) p
  | None -> Alcotest.fail "ring is repetitive");
  (* bubble-limited: 3 tokens in 4 stages, d_b=6: period 24/1 = 24 *)
  let er, _ = self_timed_ring ~stages:4 ~tokens:3 ~forward:10 ~backward:6 in
  match Eventrule.cycle_period er with
  | Some (p, _) -> Helpers.check_ratio "bubble-limited" (Helpers.r 24 1) p
  | None -> Alcotest.fail "ring is repetitive"

let test_eventrule_simulation_matches_period () =
  let er, e = self_timed_ring ~stages:5 ~tokens:2 ~forward:7 ~backward:3 in
  let p =
    match Eventrule.cycle_period er with
    | Some (p, _) -> Ratio.to_float p
    | None -> Alcotest.fail "repetitive"
  in
  let k = 400 in
  let times = Eventrule.simulate er ~occurrences:k in
  let e0 = (e.(0) :> int) in
  let rate =
    float_of_int (times.(k - 1).(e0) - times.((k / 2) - 1).(e0))
    /. float_of_int (k / 2)
  in
  Alcotest.(check (float 0.2)) "simulated rate ~ period" p rate

let test_eventrule_deadlock () =
  let er = Eventrule.create () in
  let a = Eventrule.add_event er ~name:"a" in
  let b = Eventrule.add_event er ~name:"b" in
  Eventrule.add_rule er ~delay:1 a b;
  Eventrule.add_rule er ~delay:1 b a;
  Alcotest.(check bool) "cycle_period rejects zero-offset cycle" true
    (match Eventrule.cycle_period er with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "simulate rejects zero-offset cycle" true
    (match Eventrule.simulate er ~occurrences:3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_eventrule_acyclic () =
  let er = Eventrule.create () in
  let a = Eventrule.add_event er ~name:"a" in
  let b = Eventrule.add_event er ~name:"b" in
  Eventrule.add_rule er ~delay:5 a b;
  Alcotest.(check bool) "no period" true (Eventrule.cycle_period er = None);
  let times = Eventrule.simulate er ~occurrences:3 in
  Alcotest.(check int) "b waits for a" 5 times.(0).((b :> int));
  Alcotest.(check int) "stable across occurrences" 5 times.(2).((b :> int))

let test_eventrule_validation () =
  let er = Eventrule.create () in
  let a = Eventrule.add_event er ~name:"a" in
  Alcotest.(check bool) "negative delay" true
    (match Eventrule.add_rule er ~delay:(-1) a a with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative offset" true
    (match Eventrule.add_rule er ~offset:(-1) ~delay:1 a a with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check string) "event name" "a" (Eventrule.event_name er a)

let suite =
  suite
  @ [
      Alcotest.test_case "eventrule: ring periods" `Quick test_eventrule_period;
      Alcotest.test_case "eventrule: simulation matches period" `Quick
        test_eventrule_simulation_matches_period;
      Alcotest.test_case "eventrule: deadlock detection" `Quick
        test_eventrule_deadlock;
      Alcotest.test_case "eventrule: acyclic system" `Quick
        test_eventrule_acyclic;
      Alcotest.test_case "eventrule: validation" `Quick
        test_eventrule_validation;
    ]

(* ------------------------------------------------------------------ *)
(* clock schedules (Szymanski)                                          *)
(* ------------------------------------------------------------------ *)

let latch_ring () =
  (* 3 latches, delays 5, 1, 3 around the loop: max cycle mean = 3 *)
  let c = Clock_schedule.create () in
  let l = Array.init 3 (fun i ->
      Clock_schedule.add_latch c ~name:(Printf.sprintf "L%d" i))
  in
  Clock_schedule.add_path c ~delay:5 l.(0) l.(1);
  Clock_schedule.add_path c ~delay:1 l.(1) l.(2);
  Clock_schedule.add_path c ~delay:3 l.(2) l.(0);
  c

let test_clock_min_period () =
  match Clock_schedule.min_period (latch_ring ()) with
  | Some p -> Helpers.check_ratio "mean (5+1+3)/3" (Helpers.r 3 1) p
  | None -> Alcotest.fail "cyclic circuit"

let test_clock_schedule_at_optimum () =
  let c = latch_ring () in
  let p = Clock_schedule.min_period c |> Option.get in
  (match Clock_schedule.schedule c ~period:p with
  | Some x ->
    Alcotest.(check bool) "schedule verifies" true
      (Clock_schedule.verify_schedule c ~period:p x)
  | None -> Alcotest.fail "optimum period must be feasible");
  (* slack: any larger period also feasible *)
  let p' = Ratio.add p Ratio.one in
  Alcotest.(check bool) "larger period feasible" true
    (Clock_schedule.schedule c ~period:p' <> None)

let test_clock_below_optimum_infeasible () =
  let c = latch_ring () in
  Alcotest.(check bool) "period below the cycle mean" true
    (Clock_schedule.schedule c ~period:(Helpers.r 5 2) = None)

let test_clock_level_sensitive_beats_longest_path () =
  (* the longest single path is 5, but borrowing lets the ring clock at
     3 — the essence of level-clocked scheduling *)
  let c = latch_ring () in
  let p = Clock_schedule.min_period c |> Option.get in
  Alcotest.(check bool) "period < max path delay" true
    (Ratio.lt p (Helpers.r 5 1))

let test_clock_acyclic () =
  let c = Clock_schedule.create () in
  let a = Clock_schedule.add_latch c ~name:"a" in
  let b = Clock_schedule.add_latch c ~name:"b" in
  Clock_schedule.add_path c ~delay:9 a b;
  Alcotest.(check bool) "no period bound" true
    (Clock_schedule.min_period c = None);
  (* even tiny periods are feasible by borrowing into offsets *)
  match Clock_schedule.schedule c ~period:(Helpers.r 1 2) with
  | Some x ->
    Alcotest.(check bool) "schedule verifies" true
      (Clock_schedule.verify_schedule c ~period:(Helpers.r 1 2) x)
  | None -> Alcotest.fail "acyclic circuits always schedulable"

let qcheck_clock_schedule_feasible_iff =
  QCheck.Test.make
    ~name:"clock_schedule: feasible exactly above the max cycle mean"
    ~count:100
    (QCheck.pair
       (Helpers.arb_strongly_connected ~max_n:6 ~max_extra:8 ~wlo:0 ~whi:15 ())
       (QCheck.int_range 0 20))
    (fun (g, num) ->
      let c = Clock_schedule.create () in
      let handles =
        Array.init (Digraph.n g) (fun v ->
            Clock_schedule.add_latch c ~name:(string_of_int v))
      in
      Digraph.iter_arcs g (fun a ->
          Clock_schedule.add_path c ~delay:(Digraph.weight g a)
            handles.(Digraph.src g a) handles.(Digraph.dst g a));
      let period = Ratio.make num 2 in
      let opt = Clock_schedule.min_period c |> Option.get in
      let feasible = Clock_schedule.schedule c ~period <> None in
      feasible = Ratio.leq opt period)

let suite =
  suite
  @ [
      Alcotest.test_case "clock: min period = max cycle mean" `Quick
        test_clock_min_period;
      Alcotest.test_case "clock: schedule at the optimum" `Quick
        test_clock_schedule_at_optimum;
      Alcotest.test_case "clock: infeasible below optimum" `Quick
        test_clock_below_optimum_infeasible;
      Alcotest.test_case "clock: borrowing beats longest path" `Quick
        test_clock_level_sensitive_beats_longest_path;
      Alcotest.test_case "clock: acyclic circuit" `Quick test_clock_acyclic;
    ]
  @ Helpers.qtests [ qcheck_clock_schedule_feasible_iff ]

(* ------------------------------------------------------------------ *)
(* rate analysis                                                        *)
(* ------------------------------------------------------------------ *)

let producer_consumer () =
  (* producer -> consumer -> (ack) producer, one token on the ack *)
  let r = Rate_analysis.create () in
  let p = Rate_analysis.add_process r ~name:"producer" in
  let c = Rate_analysis.add_process r ~name:"consumer" in
  Rate_analysis.add_dependency r ~dmin:2 ~dmax:5 p c;
  Rate_analysis.add_dependency r ~offset:1 ~dmin:1 ~dmax:3 c p;
  r

let test_rate_period_interval () =
  match Rate_analysis.period_interval (producer_consumer ()) with
  | Some (best, worst) ->
    (* one cycle with offset 1: periods [2+1, 5+3] *)
    Helpers.check_ratio "best case" (Helpers.r 3 1) best;
    Helpers.check_ratio "worst case" (Helpers.r 8 1) worst
  | None -> Alcotest.fail "cyclic system"

let test_rate_interval () =
  match Rate_analysis.rate_interval (producer_consumer ()) with
  | Some (Some lowest, Some highest) ->
    Helpers.check_ratio "lowest rate 1/8" (Helpers.r 1 8) lowest;
    Helpers.check_ratio "highest rate 1/3" (Helpers.r 1 3) highest
  | _ -> Alcotest.fail "both ends bounded here"

let test_rate_zero_best_case () =
  let r = Rate_analysis.create () in
  let a = Rate_analysis.add_process r ~name:"a" in
  Rate_analysis.add_dependency r ~offset:1 ~dmin:0 ~dmax:4 a a;
  match Rate_analysis.rate_interval r with
  | Some (Some lowest, None) ->
    Helpers.check_ratio "lowest rate" (Helpers.r 1 4) lowest
  | _ -> Alcotest.fail "zero best-case period means unbounded top rate"

let test_rate_acyclic () =
  let r = Rate_analysis.create () in
  let a = Rate_analysis.add_process r ~name:"a" in
  let b = Rate_analysis.add_process r ~name:"b" in
  Rate_analysis.add_dependency r ~dmin:1 ~dmax:2 a b;
  Alcotest.(check bool) "no intrinsic period" true
    (Rate_analysis.period_interval r = None)

let test_rate_validation () =
  let r = Rate_analysis.create () in
  let a = Rate_analysis.add_process r ~name:"a" in
  Alcotest.(check bool) "dmax < dmin rejected" true
    (match Rate_analysis.add_dependency r ~dmin:5 ~dmax:2 a a with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check string) "name" "a" (Rate_analysis.process_name r a);
  Alcotest.(check int) "count" 1 (Rate_analysis.process_count r)

let qcheck_rate_interval_ordered =
  QCheck.Test.make
    ~name:"rate_analysis: best period <= worst period on random systems"
    ~count:100
    (Helpers.arb_strongly_connected ~max_n:6 ~max_extra:8 ~wlo:1 ~whi:9 ())
    (fun g ->
      let r = Rate_analysis.create () in
      let handles =
        Array.init (Digraph.n g) (fun v ->
            Rate_analysis.add_process r ~name:(string_of_int v))
      in
      Digraph.iter_arcs g (fun a ->
          let d = Digraph.weight g a in
          Rate_analysis.add_dependency r ~offset:1 ~dmin:d ~dmax:(d + 3)
            handles.(Digraph.src g a)
            handles.(Digraph.dst g a));
      match Rate_analysis.period_interval r with
      | Some (best, worst) -> Ratio.leq best worst
      | None -> false)

let suite =
  suite
  @ [
      Alcotest.test_case "rate: period interval" `Quick
        test_rate_period_interval;
      Alcotest.test_case "rate: rate interval" `Quick test_rate_interval;
      Alcotest.test_case "rate: zero best case" `Quick test_rate_zero_best_case;
      Alcotest.test_case "rate: acyclic" `Quick test_rate_acyclic;
      Alcotest.test_case "rate: validation" `Quick test_rate_validation;
    ]
  @ Helpers.qtests [ qcheck_rate_interval_ordered ]

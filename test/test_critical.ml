let den1 _ = 1

let test_scaled_cost () =
  let g = Digraph.of_arcs 2 [ (0, 1, 7, 3); (1, 0, 5, 2) ] in
  let lambda = Helpers.r 3 2 in
  (* cost = 2·w − 3·t *)
  Alcotest.(check int) "arc 0" ((2 * 7) - (3 * 3))
    (Critical.scaled_cost g ~den:(Digraph.transit g) lambda 0);
  Alcotest.(check int) "arc 1 (mean)" ((2 * 5) - 3)
    (Critical.scaled_cost g ~den:den1 lambda 1)

let test_ratio_of_cycle () =
  let g = Digraph.of_arcs 2 [ (0, 1, 7, 3); (1, 0, 5, 2) ] in
  Helpers.check_ratio "mean" (Helpers.r 6 1)
    (Critical.ratio_of_cycle g ~den:den1 [ 0; 1 ]);
  Helpers.check_ratio "ratio" (Helpers.r 12 5)
    (Critical.ratio_of_cycle g ~den:(Digraph.transit g) [ 0; 1 ])

let test_cycle_in () =
  let g =
    Digraph.of_weighted_arcs 4 [ (0, 1, 1); (1, 2, 1); (2, 0, 1); (2, 3, 1) ]
  in
  (match Critical.cycle_in g (fun _ -> true) with
  | Some c -> Alcotest.(check bool) "found a valid cycle" true (Digraph.is_cycle g c)
  | None -> Alcotest.fail "graph has a cycle");
  Alcotest.(check bool) "restricted to a DAG: none" true
    (Critical.cycle_in g (fun a -> a <> 2) = None)

let fixture () = Families.two_cycles ~len1:2 ~w1:4 ~len2:3 ~w2:1

let test_locate_below () =
  match Critical.locate ~den:den1 (fixture ()) (Helpers.r 1 2) with
  | Critical.Below -> ()
  | _ -> Alcotest.fail "1/2 < min mean 1"

let test_locate_optimal () =
  match Critical.locate ~den:den1 (fixture ()) (Helpers.r 1 1) with
  | Critical.Optimal c ->
    Helpers.check_ratio "witness mean" (Helpers.r 1 1)
      (Critical.ratio_of_cycle (fixture ()) ~den:den1 c)
  | _ -> Alcotest.fail "1 is the optimum"

let test_locate_above () =
  match Critical.locate ~den:den1 (fixture ()) (Helpers.r 3 1) with
  | Critical.Above c ->
    Alcotest.(check bool) "strictly better cycle" true
      (Ratio.lt (Critical.ratio_of_cycle (fixture ()) ~den:den1 c) (Helpers.r 3 1))
  | _ -> Alcotest.fail "3 > optimum 1"

let test_improve_to_optimal () =
  let g = fixture () in
  (* start from the BAD cycle (mean 4) *)
  let bad =
    List.filter (fun a -> Digraph.weight g a = 4) (List.init (Digraph.m g) Fun.id)
  in
  Alcotest.(check bool) "fixture sanity" true (Digraph.is_cycle g bad);
  let lambda, witness = Critical.improve_to_optimal ~den:den1 g bad in
  Helpers.check_ratio "descended to optimum" (Helpers.r 1 1) lambda;
  Alcotest.(check bool) "witness valid" true (Digraph.is_cycle g witness)

let test_improve_rejects_non_cycle () =
  Alcotest.check_raises "not a cycle"
    (Invalid_argument "Critical.improve_to_optimal: not a cycle") (fun () ->
      ignore (Critical.improve_to_optimal ~den:den1 (fixture ()) [ 0 ]))

let test_critical_arcs () =
  let g = fixture () in
  let crit = Critical.critical_arcs ~den:den1 g (Helpers.r 1 1) in
  (* exactly the arcs of the weight-1 cycle (3 arcs) *)
  Alcotest.(check int) "three critical arcs" 3 (List.length crit);
  List.iter
    (fun a -> Alcotest.(check int) "weight 1" 1 (Digraph.weight g a))
    crit;
  (* below the optimum the tight subgraph is acyclic: nothing critical *)
  Alcotest.(check (list int)) "below optimum: empty" []
    (Critical.critical_arcs ~den:den1 g (Helpers.r 1 2))

let qcheck_locate_against_oracle =
  QCheck.Test.make ~name:"critical: locate agrees with the oracle" ~count:300
    (QCheck.pair
       (Helpers.arb_strongly_connected ~max_n:7 ~max_extra:10 ())
       (QCheck.int_range (-25) 25))
    (fun (g, num) ->
      let lambda = Ratio.make num 2 in
      let opt = Helpers.oracle_mean Oracle.Minimize g |> Option.get in
      match Critical.locate ~den:den1 g lambda with
      | Critical.Below -> Ratio.lt lambda opt
      | Critical.Optimal c ->
        Ratio.equal lambda opt
        && Ratio.equal (Critical.ratio_of_cycle g ~den:den1 c) lambda
      | Critical.Above c ->
        Ratio.lt opt lambda
        && Ratio.lt (Critical.ratio_of_cycle g ~den:den1 c) lambda)

let qcheck_improve_reaches_oracle =
  QCheck.Test.make
    ~name:"critical: improve_to_optimal reaches the oracle optimum" ~count:200
    (Helpers.arb_strongly_connected ~max_n:7 ~max_extra:10 ())
    (fun g ->
      let start = Critical.cycle_in g (fun _ -> true) |> Option.get in
      let lambda, w = Critical.improve_to_optimal ~den:den1 g start in
      let opt = Helpers.oracle_mean Oracle.Minimize g |> Option.get in
      Ratio.equal lambda opt
      && Ratio.equal (Critical.ratio_of_cycle g ~den:den1 w) opt)

let suite =
  [
    Alcotest.test_case "scaled_cost" `Quick test_scaled_cost;
    Alcotest.test_case "ratio_of_cycle" `Quick test_ratio_of_cycle;
    Alcotest.test_case "cycle_in" `Quick test_cycle_in;
    Alcotest.test_case "locate: below" `Quick test_locate_below;
    Alcotest.test_case "locate: optimal" `Quick test_locate_optimal;
    Alcotest.test_case "locate: above" `Quick test_locate_above;
    Alcotest.test_case "improve_to_optimal" `Quick test_improve_to_optimal;
    Alcotest.test_case "improve rejects non-cycles" `Quick
      test_improve_rejects_non_cycle;
    Alcotest.test_case "critical_arcs" `Quick test_critical_arcs;
  ]
  @ Helpers.qtests [ qcheck_locate_against_oracle; qcheck_improve_reaches_oracle ]

(* critical_arcs must be exactly the arcs lying on some optimum-mean
   cycle; the oracle enumerates all cycles, so it can say precisely
   which arcs those are. *)
let qcheck_critical_arcs_exact =
  QCheck.Test.make
    ~name:"critical: critical_arcs = arcs on optimum cycles (oracle)"
    ~count:150
    (Helpers.arb_strongly_connected ~max_n:7 ~max_extra:9 ())
    (fun g ->
      let opt = Helpers.oracle_mean Oracle.Minimize g |> Option.get in
      let expected = Hashtbl.create 16 in
      ignore
        (Cycles.iter_cycles g (fun c ->
             let mean =
               Ratio.make (Digraph.cycle_weight g c) (List.length c)
             in
             if Ratio.equal mean opt then
               List.iter (fun a -> Hashtbl.replace expected a ()) c));
      let got = Critical.critical_arcs ~den:den1 g opt in
      List.sort compare got
      = List.sort compare (Hashtbl.fold (fun a () l -> a :: l) expected []))

let qcheck_locate_monotone =
  (* Below / Optimal / Above must be monotone in lambda *)
  QCheck.Test.make ~name:"critical: locate is monotone in lambda" ~count:150
    (Helpers.arb_strongly_connected ~max_n:7 ~max_extra:9 ())
    (fun g ->
      let opt = Helpers.oracle_mean Oracle.Minimize g |> Option.get in
      let below = Ratio.sub opt Ratio.one in
      let above = Ratio.add opt Ratio.one in
      (match Critical.locate ~den:den1 g below with
      | Critical.Below -> true
      | _ -> false)
      && (match Critical.locate ~den:den1 g opt with
         | Critical.Optimal _ -> true
         | _ -> false)
      &&
      match Critical.locate ~den:den1 g above with
      | Critical.Above _ -> true
      | _ -> false)

let suite =
  suite @ Helpers.qtests [ qcheck_critical_arcs_exact; qcheck_locate_monotone ]

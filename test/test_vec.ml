let test_empty () =
  let v = Vec.create () in
  Alcotest.(check int) "length" 0 (Vec.length v);
  Alcotest.(check bool) "is_empty" true (Vec.is_empty v);
  Alcotest.(check (list int)) "to_list" [] (Vec.to_list v)

let test_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 0" 0 (Vec.get v 0);
  Alcotest.(check int) "get 99" 9801 (Vec.get v 99);
  Vec.set v 50 (-1);
  Alcotest.(check int) "set/get" (-1) (Vec.get v 50)

let test_pop () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "pop" 3 (Vec.pop v);
  Alcotest.(check int) "pop" 2 (Vec.pop v);
  Alcotest.(check int) "length after pops" 1 (Vec.length v);
  Vec.push v 9;
  Alcotest.(check (list int)) "after push" [ 1; 9 ] (Vec.to_list v)

let test_bounds () =
  let v = Vec.of_list [ 0 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of range")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of range")
    (fun () -> Vec.set v (-1) 0);
  Vec.clear v;
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Vec.pop v))

let test_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iter (fun x -> acc := x :: !acc) v;
  Alcotest.(check (list int)) "iter order" [ 4; 3; 2; 1 ] !acc;
  Alcotest.(check (array int)) "to_array" [| 1; 2; 3; 4 |] (Vec.to_array v)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"vec: of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun l -> Vec.to_list (Vec.of_list l) = l)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "push/get/set" `Quick test_push_get;
    Alcotest.test_case "pop" `Quick test_pop;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "iter/fold/to_array" `Quick test_iter_fold;
  ]
  @ Helpers.qtests [ qcheck_roundtrip ]

(* All three heaps are exercised against the same reference model: a
   sorted association list.  The binary heap is indexed (int elements),
   the Fibonacci and pairing heaps are handle-based. *)

let int_cmp = compare

(* ------------------------------------------------------------------ *)
(* binary heap                                                         *)
(* ------------------------------------------------------------------ *)

let test_binary_basics () =
  let h = Binary_heap.create ~capacity:10 ~cmp:int_cmp () in
  Alcotest.(check bool) "empty" true (Binary_heap.is_empty h);
  Binary_heap.insert h 3 30;
  Binary_heap.insert h 1 10;
  Binary_heap.insert h 2 20;
  Alcotest.(check int) "size" 3 (Binary_heap.size h);
  Alcotest.(check (pair int int)) "min" (1, 10) (Binary_heap.find_min h);
  Alcotest.(check (pair int int)) "extract" (1, 10) (Binary_heap.extract_min h);
  Alcotest.(check (pair int int)) "next" (2, 20) (Binary_heap.extract_min h);
  Alcotest.(check int) "size after" 1 (Binary_heap.size h)

let test_binary_decrease_update () =
  let h = Binary_heap.create ~capacity:5 ~cmp:int_cmp () in
  for e = 0 to 4 do
    Binary_heap.insert h e (100 + e)
  done;
  Binary_heap.decrease_key h 4 1;
  Alcotest.(check (pair int int)) "decreased to front" (4, 1)
    (Binary_heap.find_min h);
  Binary_heap.update_key h 4 500;
  Alcotest.(check (pair int int)) "increased to back" (0, 100)
    (Binary_heap.find_min h);
  Alcotest.(check int) "key readback" 500 (Binary_heap.key h 4);
  Alcotest.check_raises "decrease with larger key"
    (Invalid_argument "Binary_heap.decrease_key: new key larger than current")
    (fun () -> Binary_heap.decrease_key h 0 1000)

let test_binary_remove () =
  let h = Binary_heap.create ~capacity:4 ~cmp:int_cmp () in
  Binary_heap.insert h 0 5;
  Binary_heap.insert h 1 1;
  Binary_heap.insert h 2 9;
  Binary_heap.remove h 1;
  Alcotest.(check bool) "removed" false (Binary_heap.mem h 1);
  Alcotest.(check (pair int int)) "min after removal" (0, 5)
    (Binary_heap.find_min h);
  Binary_heap.remove h 1;
  (* second removal is a no-op *)
  Alcotest.(check int) "size" 2 (Binary_heap.size h);
  Binary_heap.clear h;
  Alcotest.(check bool) "cleared" true (Binary_heap.is_empty h)

let test_binary_errors () =
  let h = Binary_heap.create ~capacity:2 ~cmp:int_cmp () in
  Alcotest.check_raises "find_min empty"
    (Invalid_argument "Binary_heap.find_min: empty") (fun () ->
      ignore (Binary_heap.find_min h));
  Binary_heap.insert h 0 1;
  Alcotest.check_raises "duplicate insert"
    (Invalid_argument "Binary_heap.insert: element already present") (fun () ->
      Binary_heap.insert h 0 2);
  Alcotest.check_raises "element out of range"
    (Invalid_argument "Binary_heap.insert: element out of range") (fun () ->
      Binary_heap.insert h 5 2)

let test_binary_stats () =
  let stats = Heap_stats.create () in
  let h = Binary_heap.create ~stats ~capacity:8 ~cmp:int_cmp () in
  for e = 0 to 7 do
    Binary_heap.insert h e e
  done;
  ignore (Binary_heap.extract_min h);
  Binary_heap.decrease_key h 7 (-1);
  Alcotest.(check int) "inserts" 8 stats.Heap_stats.inserts;
  Alcotest.(check int) "extracts" 1 stats.Heap_stats.extract_mins;
  Alcotest.(check int) "decreases" 1 stats.Heap_stats.decrease_keys

(* ------------------------------------------------------------------ *)
(* fibonacci heap                                                      *)
(* ------------------------------------------------------------------ *)

let test_fib_basics () =
  let h = Fibonacci_heap.create ~cmp:int_cmp () in
  let _ = Fibonacci_heap.insert h 5 "five" in
  let n3 = Fibonacci_heap.insert h 3 "three" in
  let _ = Fibonacci_heap.insert h 8 "eight" in
  Alcotest.(check int) "size" 3 (Fibonacci_heap.size h);
  Alcotest.(check (pair int string)) "min" (3, "three") (Fibonacci_heap.find_min h);
  Alcotest.(check bool) "handle alive" true (Fibonacci_heap.node_in_heap n3);
  Alcotest.(check (pair int string)) "extract" (3, "three")
    (Fibonacci_heap.extract_min h);
  Alcotest.(check bool) "handle dead" false (Fibonacci_heap.node_in_heap n3);
  Alcotest.(check (pair int string)) "next" (5, "five")
    (Fibonacci_heap.extract_min h)

let test_fib_decrease () =
  let h = Fibonacci_heap.create ~cmp:int_cmp () in
  let nodes = Array.init 20 (fun i -> Fibonacci_heap.insert h (100 + i) i) in
  (* force some consolidation first *)
  ignore (Fibonacci_heap.extract_min h);
  Fibonacci_heap.decrease_key h nodes.(15) 1;
  Alcotest.(check (pair int int)) "decreased node surfaces" (1, 15)
    (Fibonacci_heap.find_min h);
  Alcotest.check_raises "cannot increase"
    (Invalid_argument "Fibonacci_heap.decrease_key: new key larger than current")
    (fun () -> Fibonacci_heap.decrease_key h nodes.(10) 10_000)

let test_fib_delete () =
  let h = Fibonacci_heap.create ~cmp:int_cmp () in
  let nodes = Array.init 10 (fun i -> Fibonacci_heap.insert h i i) in
  Fibonacci_heap.delete h nodes.(0);
  Alcotest.(check (pair int int)) "min gone" (1, 1) (Fibonacci_heap.find_min h);
  Fibonacci_heap.delete h nodes.(5);
  Alcotest.(check int) "size" 8 (Fibonacci_heap.size h);
  (* draining yields the remaining keys in order *)
  let drained = List.init 8 (fun _ -> fst (Fibonacci_heap.extract_min h)) in
  Alcotest.(check (list int)) "drain order" [ 1; 2; 3; 4; 6; 7; 8; 9 ] drained

let test_fib_meld () =
  let h1 = Fibonacci_heap.create ~cmp:int_cmp () in
  let h2 = Fibonacci_heap.create ~cmp:int_cmp () in
  List.iter (fun k -> ignore (Fibonacci_heap.insert h1 k k)) [ 5; 9 ];
  List.iter (fun k -> ignore (Fibonacci_heap.insert h2 k k)) [ 2; 7 ];
  Fibonacci_heap.meld h1 h2;
  Alcotest.(check int) "melded size" 4 (Fibonacci_heap.size h1);
  Alcotest.(check int) "source empty" 0 (Fibonacci_heap.size h2);
  let drained = List.init 4 (fun _ -> fst (Fibonacci_heap.extract_min h1)) in
  Alcotest.(check (list int)) "drain order" [ 2; 5; 7; 9 ] drained

let test_fib_iter () =
  let h = Fibonacci_heap.create ~cmp:int_cmp () in
  List.iter (fun k -> ignore (Fibonacci_heap.insert h k k)) [ 4; 1; 3 ];
  ignore (Fibonacci_heap.extract_min h);
  let seen = ref [] in
  Fibonacci_heap.iter (fun k _ -> seen := k :: !seen) h;
  Alcotest.(check (list int)) "iter sees all" [ 3; 4 ] (List.sort compare !seen)

(* ------------------------------------------------------------------ *)
(* pairing heap                                                        *)
(* ------------------------------------------------------------------ *)

let test_pairing_basics () =
  let h = Pairing_heap.create ~cmp:int_cmp () in
  let n7 = Pairing_heap.insert h 7 () in
  let _ = Pairing_heap.insert h 2 () in
  let _ = Pairing_heap.insert h 5 () in
  Alcotest.(check int) "size" 3 (Pairing_heap.size h);
  Alcotest.(check int) "min key" 2 (fst (Pairing_heap.find_min h));
  Pairing_heap.decrease_key h n7 1;
  Alcotest.(check int) "after decrease" 1 (fst (Pairing_heap.extract_min h));
  Alcotest.(check int) "next" 2 (fst (Pairing_heap.extract_min h))

let test_pairing_delete () =
  let h = Pairing_heap.create ~cmp:int_cmp () in
  let nodes = Array.init 12 (fun i -> Pairing_heap.insert h i i) in
  Pairing_heap.delete h nodes.(0);
  Pairing_heap.delete h nodes.(6);
  let drained = List.init 10 (fun _ -> snd (Pairing_heap.extract_min h)) in
  Alcotest.(check (list int)) "drain order"
    [ 1; 2; 3; 4; 5; 7; 8; 9; 10; 11 ] drained;
  Alcotest.check_raises "double delete"
    (Invalid_argument "Pairing_heap.delete: node removed") (fun () ->
      Pairing_heap.delete h nodes.(0))

(* ------------------------------------------------------------------ *)
(* model-based property: random operation sequences                    *)
(* ------------------------------------------------------------------ *)

(* operations: 0 = insert, 1 = extract-min, 2 = decrease-key *)
let arb_ops = QCheck.(list (pair (int_range 0 2) (int_range 0 1000)))

(* Reference model: list of (element, key), element = insertion index. *)
let model_run ops ~insert ~extract ~decrease ~key_of_min =
  let model = ref [] in
  let next = ref 0 in
  let ok = ref true in
  List.iter
    (fun (op, x) ->
      match op with
      | 0 ->
        insert !next x;
        model := (!next, x) :: !model;
        incr next
      | 1 ->
        if !model <> [] then begin
          let mk = List.fold_left (fun acc (_, k) -> min acc k) max_int !model in
          if key_of_min () <> mk then ok := false;
          let e, k = extract () in
          (* the heap may break ties arbitrarily; remove that entry *)
          if k <> mk then ok := false;
          let rec remove = function
            | [] -> []
            | (e', _) :: tl when e' = e -> tl
            | hd :: tl -> hd :: remove tl
          in
          model := remove !model
        end
      | _ ->
        (match !model with
        | [] -> ()
        | (e, k) :: tl ->
          let k' = min k (k - (x mod 50)) in
          decrease e k';
          model := (e, k') :: tl))
    ops;
  !ok

let qcheck_binary_model =
  QCheck.Test.make ~name:"binary heap: model-based random ops" ~count:300
    arb_ops
    (fun ops ->
      let h = Binary_heap.create ~capacity:(List.length ops + 1) ~cmp:int_cmp () in
      model_run ops
        ~insert:(fun e k -> Binary_heap.insert h e k)
        ~extract:(fun () -> Binary_heap.extract_min h)
        ~decrease:(fun e k -> Binary_heap.decrease_key h e k)
        ~key_of_min:(fun () -> snd (Binary_heap.find_min h)))

let qcheck_fib_model =
  QCheck.Test.make ~name:"fibonacci heap: model-based random ops" ~count:300
    arb_ops
    (fun ops ->
      let h = Fibonacci_heap.create ~cmp:int_cmp () in
      let handles = Hashtbl.create 16 in
      model_run ops
        ~insert:(fun e k -> Hashtbl.replace handles e (Fibonacci_heap.insert h k e))
        ~extract:(fun () ->
          let k, e = Fibonacci_heap.extract_min h in
          (e, k))
        ~decrease:(fun e k ->
          Fibonacci_heap.decrease_key h (Hashtbl.find handles e) k)
        ~key_of_min:(fun () -> fst (Fibonacci_heap.find_min h)))

let qcheck_pairing_model =
  QCheck.Test.make ~name:"pairing heap: model-based random ops" ~count:300
    arb_ops
    (fun ops ->
      let h = Pairing_heap.create ~cmp:int_cmp () in
      let handles = Hashtbl.create 16 in
      model_run ops
        ~insert:(fun e k -> Hashtbl.replace handles e (Pairing_heap.insert h k e))
        ~extract:(fun () ->
          let k, e = Pairing_heap.extract_min h in
          (e, k))
        ~decrease:(fun e k ->
          Pairing_heap.decrease_key h (Hashtbl.find handles e) k)
        ~key_of_min:(fun () -> fst (Pairing_heap.find_min h)))

let qcheck_heapsort each =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: drains in sorted order" each)
    ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let sorted = List.sort compare keys in
      let drained =
        match each with
        | "fibonacci" ->
          let h = Fibonacci_heap.create ~cmp:int_cmp () in
          List.iter (fun k -> ignore (Fibonacci_heap.insert h k ())) keys;
          List.init (List.length keys) (fun _ -> fst (Fibonacci_heap.extract_min h))
        | "pairing" ->
          let h = Pairing_heap.create ~cmp:int_cmp () in
          List.iter (fun k -> ignore (Pairing_heap.insert h k ())) keys;
          List.init (List.length keys) (fun _ -> fst (Pairing_heap.extract_min h))
        | _ ->
          let h = Binary_heap.create ~capacity:(List.length keys) ~cmp:int_cmp () in
          List.iteri (fun e k -> Binary_heap.insert h e k) keys;
          List.init (List.length keys) (fun _ -> snd (Binary_heap.extract_min h))
      in
      drained = sorted)

let suite =
  [
    Alcotest.test_case "binary: basics" `Quick test_binary_basics;
    Alcotest.test_case "binary: decrease/update key" `Quick
      test_binary_decrease_update;
    Alcotest.test_case "binary: remove/clear" `Quick test_binary_remove;
    Alcotest.test_case "binary: errors" `Quick test_binary_errors;
    Alcotest.test_case "binary: stats counters" `Quick test_binary_stats;
    Alcotest.test_case "fibonacci: basics" `Quick test_fib_basics;
    Alcotest.test_case "fibonacci: decrease key" `Quick test_fib_decrease;
    Alcotest.test_case "fibonacci: delete" `Quick test_fib_delete;
    Alcotest.test_case "fibonacci: meld" `Quick test_fib_meld;
    Alcotest.test_case "fibonacci: iter" `Quick test_fib_iter;
    Alcotest.test_case "pairing: basics" `Quick test_pairing_basics;
    Alcotest.test_case "pairing: delete" `Quick test_pairing_delete;
  ]
  @ Helpers.qtests
      [
        qcheck_binary_model;
        qcheck_fib_model;
        qcheck_pairing_model;
        qcheck_heapsort "binary";
        qcheck_heapsort "fibonacci";
        qcheck_heapsort "pairing";
      ]

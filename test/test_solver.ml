let test_acyclic_returns_none () =
  let g = Digraph.of_weighted_arcs 3 [ (0, 1, 5); (1, 2, 5) ] in
  Alcotest.(check bool) "None on DAG" true (Solver.minimum_cycle_mean g = None);
  Alcotest.(check bool) "None on arcless" true
    (Solver.minimum_cycle_mean (Digraph.of_arcs 4 []) = None);
  Alcotest.(check bool) "None on empty" true
    (Solver.minimum_cycle_mean (Digraph.of_arcs 0 []) = None)

let test_multiple_components () =
  (* two cyclic components with different means, joined one-way, plus an
     acyclic tail *)
  let g =
    Digraph.of_weighted_arcs 6
      [
        (0, 1, 10); (1, 0, 10);   (* mean 10 *)
        (1, 2, 1);
        (2, 3, 2); (3, 2, 4);     (* mean 3 *)
        (3, 4, 99); (4, 5, 99);   (* tail *)
      ]
  in
  let r = Solver.minimum_cycle_mean g |> Option.get in
  Helpers.check_ratio "global minimum across components" (Helpers.r 3 1)
    r.Solver.lambda;
  Alcotest.(check int) "two cyclic components" 2 r.Solver.components;
  Alcotest.(check bool) "witness in the right component" true
    (Digraph.is_cycle g r.Solver.cycle);
  Helpers.check_ratio "witness mean" (Helpers.r 3 1)
    (Critical.ratio_of_cycle g ~den:(fun _ -> 1) r.Solver.cycle)

let test_cycle_ids_map_back () =
  (* the witness must use the ORIGINAL graph's arc ids even though the
     algorithm ran on a renumbered SCC *)
  let g =
    Digraph.of_weighted_arcs 4
      [ (0, 1, 1); (2, 3, 5); (3, 2, 7) ]
  in
  let r = Solver.minimum_cycle_mean g |> Option.get in
  Alcotest.(check (list int)) "arc ids from the input graph" [ 1; 2 ]
    (List.sort compare r.Solver.cycle)

let test_maximize () =
  let g = Families.two_cycles ~len1:2 ~w1:9 ~len2:3 ~w2:1 in
  let mx = Solver.maximum_cycle_mean g |> Option.get in
  Helpers.check_ratio "max mean" (Helpers.r 9 1) mx.Solver.lambda;
  let mn = Solver.minimum_cycle_mean g |> Option.get in
  Helpers.check_ratio "min mean" (Helpers.r 1 1) mn.Solver.lambda

let test_ratio_problem () =
  let g = Digraph.of_arcs 2 [ (0, 1, 6, 2); (1, 0, 2, 2); (0, 0, 30, 3) ] in
  let mn = Solver.minimum_cycle_ratio g |> Option.get in
  Helpers.check_ratio "min ratio" (Helpers.r 2 1) mn.Solver.lambda;
  let mx = Solver.maximum_cycle_ratio g |> Option.get in
  Helpers.check_ratio "max ratio" (Helpers.r 10 1) mx.Solver.lambda

let test_zero_transit_cycle_rejected () =
  let g = Digraph.of_arcs 2 [ (0, 1, 1, 0); (1, 0, 1, 0) ] in
  Alcotest.check_raises "ill-posed"
    (Invalid_argument
       "Solver: cycle with zero total transit time (cost-to-time ratio \
        undefined)") (fun () -> ignore (Solver.minimum_cycle_ratio g))

let test_zero_transit_arc_ok_if_no_zero_cycle () =
  (* individual zero-transit arcs are fine as long as every cycle has
     positive total transit (native ratio algorithms only) *)
  let g = Digraph.of_arcs 2 [ (0, 1, 3, 0); (1, 0, 5, 2) ] in
  let r =
    Solver.solve ~problem:Solver.Cycle_ratio ~algorithm:Registry.Howard g
    |> Option.get
  in
  Helpers.check_ratio "ratio 8/2" (Helpers.r 4 1) r.Solver.lambda

let test_stats_accumulate () =
  let g =
    Digraph.of_weighted_arcs 4 [ (0, 1, 1); (1, 0, 2); (2, 3, 3); (3, 2, 4) ]
  in
  let r =
    Solver.solve ~algorithm:Registry.Howard g |> Option.get
  in
  Alcotest.(check bool) "iterations from both components" true
    (r.Solver.stats.Stats.iterations >= 2)

let all_algorithms_on_general_graphs =
  List.map
    (fun alg ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf "solver(%s) = oracle on arbitrary graphs"
             (Registry.name alg))
        ~count:100
        (Helpers.arb_any_graph ~max_n:8 ~max_m:18 ())
        (fun g ->
          match (Solver.solve ~algorithm:alg g, Helpers.oracle_mean Oracle.Minimize g) with
          | None, None -> true
          | Some r, Some opt ->
            Ratio.equal r.Solver.lambda opt
            && Digraph.is_cycle g r.Solver.cycle
          | _ -> false))
    Registry.all

let qcheck_max_is_negated_min =
  QCheck.Test.make ~name:"solver: maximize = -minimize(negated)" ~count:150
    (Helpers.arb_any_graph ~max_n:8 ~max_m:18 ())
    (fun g ->
      let mx = Solver.maximum_cycle_mean g in
      let mn = Solver.minimum_cycle_mean (Digraph.negate_weights g) in
      match (mx, mn) with
      | None, None -> true
      | Some a, Some b -> Ratio.equal a.Solver.lambda (Ratio.neg b.Solver.lambda)
      | _ -> false)

let qcheck_ratio_solver_vs_oracle =
  QCheck.Test.make ~name:"solver: ratio problem = oracle" ~count:100
    (Helpers.arb_any_graph ~max_n:7 ~max_m:14 ~tmax:3 ())
    (fun g ->
      match
        (Solver.minimum_cycle_ratio g, Helpers.oracle_ratio Oracle.Minimize g)
      with
      | None, None -> true
      | Some r, Some opt -> Ratio.equal r.Solver.lambda opt
      | _ -> false)

let suite =
  [
    Alcotest.test_case "acyclic returns None" `Quick test_acyclic_returns_none;
    Alcotest.test_case "multiple components" `Quick test_multiple_components;
    Alcotest.test_case "cycle ids map back" `Quick test_cycle_ids_map_back;
    Alcotest.test_case "maximize" `Quick test_maximize;
    Alcotest.test_case "ratio problem" `Quick test_ratio_problem;
    Alcotest.test_case "zero-transit cycle rejected" `Quick
      test_zero_transit_cycle_rejected;
    Alcotest.test_case "zero-transit arc tolerated" `Quick
      test_zero_transit_arc_ok_if_no_zero_cycle;
    Alcotest.test_case "stats accumulate across components" `Quick
      test_stats_accumulate;
  ]
  @ Helpers.qtests
      (all_algorithms_on_general_graphs
      @ [ qcheck_max_is_negated_min; qcheck_ratio_solver_vs_oracle ])

let test_overflow_guard () =
  (* weights far beyond the exact-arithmetic envelope are refused
     up front instead of silently overflowing *)
  let huge = max_int / 4 in
  let g = Digraph.of_weighted_arcs 2 [ (0, 1, huge); (1, 0, huge) ] in
  Alcotest.(check bool) "guard fires" true
    (match Solver.minimum_cycle_mean g with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* paper-scale weights at a realistic size pass *)
  let g = Sprand.generate ~seed:1 ~n:64 ~m:128 () in
  Alcotest.(check bool) "normal weights fine" true
    (Solver.minimum_cycle_mean g <> None)

let suite =
  suite @ [ Alcotest.test_case "overflow guard" `Quick test_overflow_guard ]

(* ------------------------------------------------------------------ *)
(* Parallel per-SCC solving: same answer for every job count.          *)
(* ------------------------------------------------------------------ *)

let same_report (a : Solver.report) (b : Solver.report) =
  Ratio.equal a.Solver.lambda b.Solver.lambda
  && a.Solver.cycle = b.Solver.cycle
  && a.Solver.components = b.Solver.components
  && a.Solver.stats = b.Solver.stats

let qcheck_parallel_determinism =
  QCheck.Test.make
    ~name:"solver: every job count gives a bit-identical report" ~count:25
    (Helpers.arb_any_graph ~max_n:14 ~max_m:35 ())
    (fun g ->
      let base = Solver.solve ~jobs:1 ~algorithm:Registry.Howard g in
      List.for_all
        (fun jobs ->
          match (base, Solver.solve ~jobs ~algorithm:Registry.Howard g) with
          | None, None -> true
          | Some a, Some b -> same_report a b
          | _ -> false)
        Helpers.jobs_sweep)

let test_many_scc_parallel_identical () =
  let g = Families.many_scc ~seed:7 ~components:12 ~size:10 () in
  let base = Solver.minimum_cycle_mean ~jobs:1 g |> Option.get in
  Alcotest.(check int) "12 cyclic components" 12 base.Solver.components;
  List.iter
    (fun jobs ->
      let r = Solver.minimum_cycle_mean ~jobs g |> Option.get in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d matches jobs=1" jobs)
        true (same_report base r))
    [ 2; 3; 8 ]

(* One giant SCC (SPRAND is strongly connected by construction): the
   per-component fan-out degenerates to a single task, so this pins the
   other level of parallelism — the chunked improvement sweep, which at
   m = 9216 >= 2 x 4096 arcs splits at the default grain
   (Executor.chunk_arcs). *)
let test_single_scc_parallel_identical () =
  let g = Sprand.generate ~seed:9 ~n:2048 ~m:9216 () in
  let base = Solver.minimum_cycle_mean ~jobs:1 g |> Option.get in
  Alcotest.(check int) "one component" 1 base.Solver.components;
  List.iter
    (fun jobs ->
      let r = Solver.minimum_cycle_mean ~jobs g |> Option.get in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d matches jobs=1" jobs)
        true (same_report base r))
    (List.filter (fun j -> j > 1) Helpers.jobs_sweep)

let test_parallel_partial_report () =
  (* 8 components need well over 4 Howard iterations in total, so the
     shared atomic budget must run out mid-fan-out; whatever partial
     report survives has to be sound *)
  let g = Families.many_scc ~seed:3 ~components:8 ~size:8 () in
  let opt = (Solver.minimum_cycle_mean g |> Option.get).Solver.lambda in
  match
    Solver.solve ~jobs:4
      ~budget:(Budget.create ~max_iterations:4 ())
      ~algorithm:Registry.Howard g
  with
  | exception Solver.Deadline_exceeded { partial } -> (
    match partial with
    | None -> ()
    | Some r ->
      Alcotest.(check bool) "witness is a cycle" true
        (Digraph.is_cycle g r.Solver.cycle);
      Helpers.check_ratio "partial lambda is its witness's mean"
        r.Solver.lambda
        (Critical.ratio_of_cycle g ~den:(fun _ -> 1) r.Solver.cycle);
      Alcotest.(check bool) "upper bound on the optimum" true
        (Ratio.leq opt r.Solver.lambda))
  | _ -> Alcotest.fail "a 4-iteration budget over 8 components must run out"

(* The Bigarray-backed solve must not let the float64 weight/transit
   mirrors or the two-level parallelism arbitration leak into results:
   on a graph from ANY generator family, both problems produce reports
   bit-identical across job counts (the ISSUE's jobs in {1, 8}
   contract, widened to the whole sweep). *)
let qcheck_all_families_jobs_bit_identical =
  QCheck.Test.make
    ~name:"solver: mean and ratio bit-identical across jobs (all families)"
    ~count:30 (Helpers.arb_family ())
    (fun g ->
      let identical problem =
        let base = Solver.solve ~problem ~jobs:1 ~algorithm:Registry.Howard g in
        List.for_all
          (fun jobs ->
            match
              (base, Solver.solve ~problem ~jobs ~algorithm:Registry.Howard g)
            with
            | None, None -> true
            | Some a, Some b -> same_report a b
            | _ -> false)
          (List.filter (fun j -> j > 1) Helpers.jobs_sweep)
      in
      identical Solver.Cycle_mean && identical Solver.Cycle_ratio)

let qcheck_parallel_determinism_ratio =
  QCheck.Test.make
    ~name:"solver: ratio problem bit-identical across job counts" ~count:25
    (Helpers.arb_any_graph ~max_n:12 ~max_m:30 ~tmax:3 ())
    (fun g ->
      let base = Solver.solve ~problem:Solver.Cycle_ratio ~jobs:1
          ~algorithm:Registry.Howard g in
      List.for_all
        (fun jobs ->
          match
            ( base,
              Solver.solve ~problem:Solver.Cycle_ratio ~jobs
                ~algorithm:Registry.Howard g )
          with
          | None, None -> true
          | Some a, Some b -> same_report a b
          | _ -> false)
        Helpers.jobs_sweep)

let suite =
  suite
  @ [
      Alcotest.test_case "many-SCC family: parallel = serial" `Quick
        test_many_scc_parallel_identical;
      Alcotest.test_case "single giant SCC: chunked sweep = serial" `Quick
        test_single_scc_parallel_identical;
      Alcotest.test_case "parallel partial report is sound" `Quick
        test_parallel_partial_report;
    ]
  @ Helpers.qtests
      [
        qcheck_parallel_determinism; qcheck_parallel_determinism_ratio;
        qcheck_all_families_jobs_bit_identical;
      ]

let sample () =
  Digraph.of_arcs 4
    [ (0, 1, 5, 1); (1, 2, -3, 2); (2, 0, 7, 1); (2, 3, 0, 4); (3, 3, 2, 1) ]

let test_basic () =
  let g = sample () in
  Alcotest.(check int) "n" 4 (Digraph.n g);
  Alcotest.(check int) "m" 5 (Digraph.m g);
  Alcotest.(check int) "src 1" 1 (Digraph.src g 1);
  Alcotest.(check int) "dst 1" 2 (Digraph.dst g 1);
  Alcotest.(check int) "weight 1" (-3) (Digraph.weight g 1);
  Alcotest.(check int) "transit 3" 4 (Digraph.transit g 3);
  Alcotest.(check int) "min_weight" (-3) (Digraph.min_weight g);
  Alcotest.(check int) "max_weight" 7 (Digraph.max_weight g);
  Alcotest.(check int) "total_transit" 9 (Digraph.total_transit g)

let test_degrees () =
  let g = sample () in
  Alcotest.(check int) "out 2" 2 (Digraph.out_degree g 2);
  Alcotest.(check int) "in 3" 2 (Digraph.in_degree g 3);
  Alcotest.(check int) "out 3 (self loop)" 1 (Digraph.out_degree g 3);
  Alcotest.(check int) "in 0" 1 (Digraph.in_degree g 0)

let test_iteration () =
  let g = sample () in
  let outs = Digraph.fold_out g 2 (fun acc a -> Digraph.dst g a :: acc) [] in
  Alcotest.(check (list int)) "out neighbours of 2" [ 0; 3 ]
    (List.sort compare outs);
  let ins = Digraph.fold_in g 3 (fun acc a -> Digraph.src g a :: acc) [] in
  Alcotest.(check (list int)) "in neighbours of 3" [ 2; 3 ]
    (List.sort compare ins);
  Alcotest.(check int) "fold_arcs count" 5 (Digraph.fold_arcs g (fun k _ -> k + 1) 0)

let test_reverse () =
  let g = sample () in
  let h = Digraph.reverse g in
  Alcotest.(check int) "reverse src" (Digraph.dst g 0) (Digraph.src h 0);
  Alcotest.(check int) "reverse dst" (Digraph.src g 0) (Digraph.dst h 0);
  Alcotest.(check int) "reverse preserves weight" (Digraph.weight g 1)
    (Digraph.weight h 1);
  Alcotest.(check bool) "double reverse" true
    (Digraph.equal_structure g (Digraph.reverse h))

let test_map_negate () =
  let g = sample () in
  let h = Digraph.negate_weights g in
  Digraph.iter_arcs g (fun a ->
      Alcotest.(check int) "negated" (-Digraph.weight g a) (Digraph.weight h a));
  let k = Digraph.map_weights g (fun a -> 2 * Digraph.weight g a) in
  Alcotest.(check int) "doubled" 10 (Digraph.weight k 0)

let test_induced () =
  let g = sample () in
  let sub, node_of, arc_of = Digraph.induced g [ 2; 3 ] in
  Alcotest.(check int) "sub n" 2 (Digraph.n sub);
  (* arcs kept: 2->3 and 3->3 *)
  Alcotest.(check int) "sub m" 2 (Digraph.m sub);
  Alcotest.(check (array int)) "node map" [| 2; 3 |] node_of;
  Alcotest.(check (array int)) "arc map" [| 3; 4 |] arc_of;
  Alcotest.(check int) "renumbered src" 0 (Digraph.src sub 0);
  Alcotest.(check int) "renumbered dst" 1 (Digraph.dst sub 0)

let test_induced_errors () =
  let g = sample () in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Digraph.induced: duplicate node") (fun () ->
      ignore (Digraph.induced g [ 1; 1 ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Digraph.induced: node out of range") (fun () ->
      ignore (Digraph.induced g [ 7 ]))

let test_cycle_predicates () =
  let g = sample () in
  Alcotest.(check bool) "triangle is cycle" true (Digraph.is_cycle g [ 0; 1; 2 ]);
  Alcotest.(check bool) "self loop is cycle" true (Digraph.is_cycle g [ 4 ]);
  Alcotest.(check bool) "path is not cycle" false (Digraph.is_cycle g [ 0; 1 ]);
  Alcotest.(check bool) "empty is not cycle" false (Digraph.is_cycle g []);
  Alcotest.(check bool) "wrong order is not cycle" false
    (Digraph.is_cycle g [ 1; 0; 2 ]);
  Alcotest.(check int) "cycle weight" 9 (Digraph.cycle_weight g [ 0; 1; 2 ]);
  Alcotest.(check int) "cycle transit" 4 (Digraph.cycle_transit g [ 0; 1; 2 ])

let test_arc_between () =
  let g = sample () in
  Alcotest.(check (option int)) "existing" (Some 0) (Digraph.arc_between g 0 1);
  Alcotest.(check (option int)) "missing" None (Digraph.arc_between g 1 0);
  Alcotest.(check (option int)) "self" (Some 4) (Digraph.arc_between g 3 3)

let test_builder_errors () =
  Alcotest.check_raises "negative n"
    (Invalid_argument "Digraph.create_builder: negative node count") (fun () ->
      ignore (Digraph.create_builder (-1)));
  let b = Digraph.create_builder 2 in
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Digraph.add_arc: endpoint out of range") (fun () ->
      ignore (Digraph.add_arc b ~src:0 ~dst:2 ~weight:0 ()));
  Alcotest.check_raises "negative transit"
    (Invalid_argument "Digraph.add_arc: negative transit time") (fun () ->
      ignore (Digraph.add_arc b ~src:0 ~dst:1 ~weight:0 ~transit:(-1) ()));
  ignore (Digraph.build b);
  Alcotest.check_raises "reuse after build"
    (Invalid_argument "Digraph.add_arc: builder already built") (fun () ->
      ignore (Digraph.add_arc b ~src:0 ~dst:1 ~weight:0 ()));
  Alcotest.check_raises "double build"
    (Invalid_argument "Digraph.build: builder already built") (fun () ->
      ignore (Digraph.build b))

let test_empty_graph () =
  let g = Digraph.of_arcs 0 [] in
  Alcotest.(check int) "n" 0 (Digraph.n g);
  Alcotest.(check int) "m" 0 (Digraph.m g);
  Alcotest.check_raises "min_weight on arcless"
    (Invalid_argument "Digraph.min_weight: graph has no arcs") (fun () ->
      ignore (Digraph.min_weight g))

let test_parallel_arcs () =
  let g = Digraph.of_weighted_arcs 2 [ (0, 1, 1); (0, 1, 2); (1, 0, 3) ] in
  Alcotest.(check int) "m" 3 (Digraph.m g);
  Alcotest.(check int) "out degree with parallels" 2 (Digraph.out_degree g 0)

(* The float64 mirrors are the kernel's view of the labels; they must
   track every mutation path (set_weight / set_transit / the map_*
   builders) exactly — int -> float64 is lossless for every admissible
   label, so equality here is exact, not approximate. *)
let qcheck_float_mirrors_track_labels =
  QCheck.Test.make ~name:"digraph: float mirrors track weights/transits"
    ~count:200
    (Helpers.arb_any_graph ~max_n:10 ~max_m:30 ~tmax:4 ())
    (fun g ->
      let mirrors_ok g =
        let wf = Digraph.Unsafe.weights_float g
        and tf = Digraph.Unsafe.transits_float g in
        let ok = ref true in
        for a = 0 to Digraph.m g - 1 do
          if
            wf.{a} <> float_of_int (Digraph.weight g a)
            || tf.{a} <> float_of_int (Digraph.transit g a)
          then ok := false
        done;
        !ok
      in
      let fresh = mirrors_ok g in
      let negated = mirrors_ok (Digraph.negate_weights g) in
      if Digraph.m g > 0 then begin
        Digraph.Unsafe.set_weight g 0 12345;
        Digraph.Unsafe.set_transit g 0 7
      end;
      fresh && negated && mirrors_ok g)

let qcheck_csr_consistent =
  QCheck.Test.make ~name:"digraph: CSR out/in views agree with arc list"
    ~count:200
    (Helpers.arb_any_graph ~max_n:10 ~max_m:30 ())
    (fun g ->
      let from_out = ref [] and from_in = ref [] in
      for u = 0 to Digraph.n g - 1 do
        Digraph.iter_out g u (fun a -> from_out := a :: !from_out);
        Digraph.iter_in g u (fun a -> from_in := a :: !from_in)
      done;
      let all = List.init (Digraph.m g) Fun.id in
      List.sort compare !from_out = all && List.sort compare !from_in = all)

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_basic;
    Alcotest.test_case "degrees" `Quick test_degrees;
    Alcotest.test_case "iteration" `Quick test_iteration;
    Alcotest.test_case "reverse" `Quick test_reverse;
    Alcotest.test_case "map/negate weights" `Quick test_map_negate;
    Alcotest.test_case "induced subgraph" `Quick test_induced;
    Alcotest.test_case "induced errors" `Quick test_induced_errors;
    Alcotest.test_case "cycle predicates" `Quick test_cycle_predicates;
    Alcotest.test_case "arc_between" `Quick test_arc_between;
    Alcotest.test_case "builder errors" `Quick test_builder_errors;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "parallel arcs" `Quick test_parallel_arcs;
  ]
  @ Helpers.qtests [ qcheck_csr_consistent; qcheck_float_mirrors_track_labels ]

(* Number of directed elementary cycles of the complete digraph on n
   nodes (no self loops): sum over k=2..n of n!/((n-k)!·k). *)
let complete_digraph_cycles n =
  let fact k =
    let r = ref 1 in
    for i = 2 to k do
      r := !r * i
    done;
    !r
  in
  let total = ref 0 in
  for k = 2 to n do
    total := !total + (fact n / (fact (n - k) * k))
  done;
  !total

let complete n =
  let arcs = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then arcs := (u, v, 1) :: !arcs
    done
  done;
  Digraph.of_weighted_arcs n !arcs

let test_counts_on_known_graphs () =
  Alcotest.(check int) "ring has one cycle" 1 (Cycles.count (Families.ring 7));
  Alcotest.(check int) "K3" (complete_digraph_cycles 3) (Cycles.count (complete 3));
  Alcotest.(check int) "K4" (complete_digraph_cycles 4) (Cycles.count (complete 4));
  Alcotest.(check int) "K5" (complete_digraph_cycles 5) (Cycles.count (complete 5));
  Alcotest.(check int) "DAG has none" 0
    (Cycles.count (Digraph.of_weighted_arcs 3 [ (0, 1, 1); (1, 2, 1); (0, 2, 1) ]))

let test_self_loops_and_parallels () =
  let g = Digraph.of_weighted_arcs 2 [ (0, 0, 1); (0, 1, 1); (0, 1, 2); (1, 0, 1) ] in
  (* cycles: the self loop, and two 2-cycles through the parallel arcs *)
  Alcotest.(check int) "count with parallels" 3 (Cycles.count g)

let test_cycles_are_valid () =
  let g = Sprand.generate ~seed:11 ~n:7 ~m:18 () in
  let all = Cycles.list g in
  List.iter
    (fun c -> Alcotest.(check bool) "valid cycle" true (Digraph.is_cycle g c))
    all;
  let sorted = List.map (List.sort compare) all in
  Alcotest.(check int) "all distinct" (List.length sorted)
    (List.length (List.sort_uniq compare sorted))

let test_truncation () =
  let g = complete 6 in
  let k = ref 0 in
  let status = Cycles.iter_cycles ~max_cycles:10 g (fun _ -> incr k) in
  Alcotest.(check int) "stopped at cap" 10 !k;
  Alcotest.(check bool) "reported truncated" true (status = `Truncated);
  let status2 = Cycles.iter_cycles g (fun _ -> ()) in
  Alcotest.(check bool) "complete without cap" true (status2 = `Complete)

let test_oracle_mean () =
  let g = Families.two_cycles ~len1:3 ~w1:5 ~len2:4 ~w2:2 in
  (match Oracle.cycle_mean Oracle.Minimize g with
  | Some a ->
    Helpers.check_ratio "min mean" (Helpers.r 2 1)
      (Ratio.make a.Oracle.num a.Oracle.den)
  | None -> Alcotest.fail "cycles exist");
  match Oracle.cycle_mean Oracle.Maximize g with
  | Some a ->
    Helpers.check_ratio "max mean" (Helpers.r 5 1)
      (Ratio.make a.Oracle.num a.Oracle.den)
  | None -> Alcotest.fail "cycles exist"

let test_oracle_acyclic () =
  let g = Digraph.of_weighted_arcs 2 [ (0, 1, 1) ] in
  Alcotest.(check bool) "no cycle" true (Oracle.cycle_mean Oracle.Minimize g = None)

let test_oracle_ratio () =
  let g =
    Digraph.of_arcs 2 [ (0, 1, 6, 2); (1, 0, 2, 2); (0, 0, 3, 1) ]
  in
  (* cycles: 0->1->0 ratio 8/4 = 2; self loop 3/1 = 3 *)
  (match Oracle.cycle_ratio Oracle.Minimize g with
  | Some a -> Helpers.check_ratio "min ratio" (Helpers.r 2 1) (Ratio.make a.num a.den)
  | None -> Alcotest.fail "cycles exist");
  match Oracle.cycle_ratio Oracle.Maximize g with
  | Some a -> Helpers.check_ratio "max ratio" (Helpers.r 3 1) (Ratio.make a.num a.den)
  | None -> Alcotest.fail "cycles exist"

let test_oracle_zero_transit () =
  let g = Digraph.of_arcs 1 [ (0, 0, 5, 0) ] in
  Alcotest.check_raises "ill-posed ratio"
    (Invalid_argument "Oracle.cycle_ratio: cycle with zero total transit time")
    (fun () -> ignore (Oracle.cycle_ratio Oracle.Minimize g))

let qcheck_witness_achieves_optimum =
  QCheck.Test.make ~name:"oracle: witness cycle achieves the reported mean"
    ~count:200
    (Helpers.arb_any_graph ~max_n:7 ~max_m:16 ())
    (fun g ->
      match Oracle.cycle_mean Oracle.Minimize g with
      | None -> Cycles.count g = 0
      | Some a ->
        Digraph.is_cycle g a.Oracle.cycle
        && Digraph.cycle_weight g a.Oracle.cycle = a.Oracle.num
        && List.length a.Oracle.cycle = a.Oracle.den)

let suite =
  [
    Alcotest.test_case "counts on known graphs" `Quick test_counts_on_known_graphs;
    Alcotest.test_case "self loops and parallel arcs" `Quick
      test_self_loops_and_parallels;
    Alcotest.test_case "emitted cycles are valid and distinct" `Quick
      test_cycles_are_valid;
    Alcotest.test_case "truncation cap" `Quick test_truncation;
    Alcotest.test_case "oracle: two cycles fixture" `Quick test_oracle_mean;
    Alcotest.test_case "oracle: acyclic" `Quick test_oracle_acyclic;
    Alcotest.test_case "oracle: ratio problem" `Quick test_oracle_ratio;
    Alcotest.test_case "oracle: zero transit rejected" `Quick
      test_oracle_zero_transit;
  ]
  @ Helpers.qtests [ qcheck_witness_achieves_optimum ]

(* the two oracles are structurally independent (cycle enumeration vs
   min-plus matrix powers); they must agree everywhere *)
let qcheck_oracles_agree =
  QCheck.Test.make ~name:"oracle: enumeration and matrix powers agree"
    ~count:200
    (Helpers.arb_any_graph ~max_n:7 ~max_m:16 ())
    (fun g ->
      List.for_all
        (fun objective ->
          let a = Helpers.oracle_mean objective g in
          let b =
            Option.map
              (fun (num, den) -> Ratio.make num den)
              (Oracle.cycle_mean_matrix objective g)
          in
          match (a, b) with
          | None, None -> true
          | Some x, Some y -> Ratio.equal x y
          | _ -> false)
        [ Oracle.Minimize; Oracle.Maximize ])

let test_matrix_oracle_fixture () =
  let g = Families.two_cycles ~len1:2 ~w1:6 ~len2:5 ~w2:2 in
  (match Oracle.cycle_mean_matrix Oracle.Minimize g with
  | Some (num, den) -> Helpers.check_ratio "min" (Helpers.r 2 1) (Ratio.make num den)
  | None -> Alcotest.fail "cycles exist");
  match Oracle.cycle_mean_matrix Oracle.Maximize g with
  | Some (num, den) -> Helpers.check_ratio "max" (Helpers.r 6 1) (Ratio.make num den)
  | None -> Alcotest.fail "cycles exist"

let suite =
  suite
  @ [ Alcotest.test_case "matrix oracle fixture" `Quick test_matrix_oracle_fixture ]
  @ Helpers.qtests [ qcheck_oracles_agree ]

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.create 43 in
  let zs = List.init 20 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed, different stream" true (xs <> zs)

let test_rng_ranges () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.in_range r (-5) 5 in
    Alcotest.(check bool) "in range" true (x >= -5 && x <= 5)
  done;
  Alcotest.check_raises "empty range"
    (Invalid_argument "Rng.in_range: empty range") (fun () ->
      ignore (Rng.in_range r 3 2));
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: non-positive bound")
    (fun () -> ignore (Rng.int r 0))

let test_rng_shuffle_permutes () =
  let r = Rng.create 1 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  Alcotest.(check (list int)) "is a permutation" (List.init 50 Fun.id)
    (List.sort compare (Array.to_list a))

let test_rng_float_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_sprand_shape () =
  let g = Sprand.generate ~seed:3 ~n:100 ~m:250 () in
  Alcotest.(check int) "n" 100 (Digraph.n g);
  Alcotest.(check int) "m" 250 (Digraph.m g);
  Alcotest.(check bool) "strongly connected" true
    (Traversal.is_strongly_connected g);
  Alcotest.(check bool) "weights in [1,10000]" true
    (Digraph.min_weight g >= 1 && Digraph.max_weight g <= 10000)

let test_sprand_determinism () =
  let a = Sprand.generate ~seed:8 ~n:50 ~m:120 () in
  let b = Sprand.generate ~seed:8 ~n:50 ~m:120 () in
  Alcotest.(check bool) "same seed, same graph" true (Digraph.equal_structure a b);
  let c = Sprand.generate ~seed:9 ~n:50 ~m:120 () in
  Alcotest.(check bool) "different seed differs" false (Digraph.equal_structure a c)

let test_sprand_options () =
  let g = Sprand.generate ~seed:1 ~weights:(5, 5) ~transits:(2, 4) ~n:20 ~m:60 () in
  Digraph.iter_arcs g (fun a ->
      Alcotest.(check int) "fixed weight" 5 (Digraph.weight g a);
      Alcotest.(check bool) "transit range" true
        (Digraph.transit g a >= 2 && Digraph.transit g a <= 4));
  Alcotest.check_raises "m < n"
    (Invalid_argument "Sprand.generate: m must be at least n") (fun () ->
      ignore (Sprand.generate ~n:10 ~m:5 ()))

let test_sprand_minimum_density () =
  (* m = n is exactly the Hamiltonian cycle *)
  let g = Sprand.generate ~seed:2 ~n:30 ~m:30 () in
  Alcotest.(check int) "pure cycle arcs" 30 (Digraph.m g);
  for v = 0 to 29 do
    Alcotest.(check int) "out degree 1" 1 (Digraph.out_degree g v)
  done

let test_circuit_shape () =
  let g = Circuit.generate ~seed:4 ~registers:200 () in
  Alcotest.(check int) "n" 200 (Digraph.n g);
  Alcotest.(check bool) "strongly connected" true
    (Traversal.is_strongly_connected g);
  let density = float_of_int (Digraph.m g) /. float_of_int (Digraph.n g) in
  Alcotest.(check bool) "sparse like a circuit" true
    (density >= 1.0 && density <= 3.0)

let test_circuit_benchmarks () =
  Alcotest.(check bool) "suite covers the ISCAS'89 list" true
    (List.length Circuit.benchmark_suite >= 25);
  let g = Circuit.benchmark "s344" in
  Alcotest.(check int) "register count respected" 15 (Digraph.n g);
  Alcotest.(check bool) "unknown name" true
    (match Circuit.benchmark "sXXX" with
    | exception Not_found -> true
    | _ -> false)

let test_families_ring () =
  let g = Families.ring ~weight:(fun i -> i) 5 in
  Alcotest.(check int) "m" 5 (Digraph.m g);
  let r = Solver.minimum_cycle_mean g |> Option.get in
  Helpers.check_ratio "mean of 0..4" (Helpers.r 10 5) r.Solver.lambda

let test_families_complete () =
  let g = Families.complete ~seed:3 10 in
  Alcotest.(check int) "m = n(n-1)" 90 (Digraph.m g);
  Alcotest.(check bool) "SC" true (Traversal.is_strongly_connected g)

let test_families_grid () =
  let g = Families.grid_torus 4 5 in
  Alcotest.(check int) "n" 20 (Digraph.n g);
  Alcotest.(check int) "m = 2n" 40 (Digraph.m g);
  Alcotest.(check bool) "SC" true (Traversal.is_strongly_connected g)

let test_families_layered () =
  let g = Families.layered_dataflow ~seed:2 ~layers:5 ~width:4 () in
  Alcotest.(check int) "n" 20 (Digraph.n g);
  Alcotest.(check bool) "SC" true (Traversal.is_strongly_connected g)

let test_families_low_diameter () =
  let g = Families.low_diameter ~seed:5 ~diameter:3 64 in
  Alcotest.(check int) "n" 64 (Digraph.n g);
  Alcotest.(check bool) "SC" true (Traversal.is_strongly_connected g);
  (* degree = ceil(64^(1/3)) = 4: ring arc + 3 chords per node *)
  Alcotest.(check int) "m = 4n" 256 (Digraph.m g);
  Alcotest.(check bool) "deterministic" true
    (Digraph.equal_structure g (Families.low_diameter ~seed:5 ~diameter:3 64));
  Alcotest.(check bool) "bad n" true
    (match Families.low_diameter ~diameter:2 1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad diameter" true
    (match Families.low_diameter ~diameter:0 8 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_families_two_cycles () =
  let g = Families.two_cycles ~len1:4 ~w1:8 ~len2:5 ~w2:3 in
  Alcotest.(check int) "nodes" 8 (Digraph.n g);
  Alcotest.(check int) "arcs" 9 (Digraph.m g);
  Alcotest.(check int) "exactly two cycles" 2 (Cycles.count g)

let qcheck_sprand_always_sc =
  QCheck.Test.make ~name:"sprand: always strongly connected" ~count:50
    QCheck.(pair (int_range 1 40) (int_range 0 80))
    (fun (n, extra) ->
      Traversal.is_strongly_connected
        (Sprand.generate ~seed:(n + extra) ~n ~m:(n + extra) ()))

let qcheck_low_diameter_sc =
  QCheck.Test.make ~name:"low_diameter: always strongly connected" ~count:50
    QCheck.(triple (int_range 2 60) (int_range 1 4) (int_range 0 1000))
    (fun (n, diameter, seed) ->
      let n = max 2 n and diameter = max 1 diameter in
      Traversal.is_strongly_connected
        (Families.low_diameter ~seed ~diameter n))

let qcheck_circuit_always_sc =
  QCheck.Test.make ~name:"circuit: always strongly connected" ~count:50
    QCheck.(pair (int_range 2 60) (int_range 0 10_000))
    (fun (registers, seed) ->
      (* clamp: QCheck shrinking can step outside the declared range *)
      let registers = max 2 registers in
      Traversal.is_strongly_connected (Circuit.generate ~seed ~registers ()))

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "rng float" `Quick test_rng_float_bounds;
    Alcotest.test_case "sprand shape" `Quick test_sprand_shape;
    Alcotest.test_case "sprand determinism" `Quick test_sprand_determinism;
    Alcotest.test_case "sprand options + errors" `Quick test_sprand_options;
    Alcotest.test_case "sprand minimum density" `Quick test_sprand_minimum_density;
    Alcotest.test_case "circuit shape" `Quick test_circuit_shape;
    Alcotest.test_case "circuit benchmark table" `Quick test_circuit_benchmarks;
    Alcotest.test_case "families: ring" `Quick test_families_ring;
    Alcotest.test_case "families: complete" `Quick test_families_complete;
    Alcotest.test_case "families: grid torus" `Quick test_families_grid;
    Alcotest.test_case "families: layered dataflow" `Quick test_families_layered;
    Alcotest.test_case "families: two cycles" `Quick test_families_two_cycles;
    Alcotest.test_case "families: low diameter" `Quick
      test_families_low_diameter;
  ]
  @ Helpers.qtests
      [
        qcheck_sprand_always_sc; qcheck_circuit_always_sc;
        qcheck_low_diameter_sc;
      ]

(* The ocr_obs substrate: ring-buffer recording, the metrics registry,
   the exporters, the trace reader, and the escaping helpers the
   telemetry exporters now rely on. *)

let sp_a = Obs.intern "test.a"
let sp_b = Obs.intern "test.b"
let sp_c = Obs.intern "test.counter"

(* run [f] with tracing on in a fresh ring configuration, restoring the
   disabled default afterwards so the allocation tests of other suites
   stay valid *)
let with_tracing ?capacity f =
  Trace.configure ?capacity ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Trace.configure ())
    f

(* ------------------------------------------------------------------ *)
(* interning and recording                                             *)
(* ------------------------------------------------------------------ *)

let test_intern () =
  Alcotest.(check int) "idempotent" sp_a (Obs.intern "test.a");
  Alcotest.(check string) "inverse" "test.a" (Obs.name_of sp_a);
  Alcotest.(check bool) "distinct names, distinct ids" true (sp_a <> sp_b)

let test_recording_roundtrip () =
  with_tracing (fun () ->
      Trace.begin_span sp_a;
      Trace.begin_span sp_b;
      Trace.counter_int sp_c 42;
      Trace.end_span sp_b;
      Trace.instant sp_b;
      Trace.end_span sp_a;
      let evs = Trace.events () in
      Alcotest.(check int) "six records" 6 (List.length evs);
      let kinds = List.map (fun e -> e.Trace.ev_kind) evs in
      Alcotest.(check bool)
        "kind sequence" true
        (kinds = [ `Begin; `Begin; `Counter; `End; `Instant; `End ]);
      let ts = List.map (fun e -> e.Trace.ev_ts) evs in
      Alcotest.(check bool)
        "timestamps monotone" true
        (List.sort compare ts = ts);
      match List.nth evs 2 with
      | { Trace.ev_id; ev_arg; _ } ->
        Alcotest.(check int) "counter id" sp_c ev_id;
        Alcotest.(check (float 0.0)) "counter value" 42.0 ev_arg)

let test_disabled_records_nothing () =
  Trace.configure ();
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  Trace.begin_span sp_a;
  Trace.end_span sp_a;
  Trace.instant sp_b;
  Trace.counter_int sp_c 1;
  Alcotest.(check int) "no records" 0 (List.length (Trace.events ()))

let test_ring_wraparound () =
  with_tracing ~capacity:16 (fun () ->
      for _ = 1 to 50 do
        Trace.instant sp_a
      done;
      let evs = Trace.events () in
      Alcotest.(check int) "ring keeps capacity records" 16 (List.length evs);
      Alcotest.(check int) "all recorded counted" 50 (Trace.recorded ());
      Alcotest.(check int) "drops counted" 34 (Trace.dropped ()))

(* ------------------------------------------------------------------ *)
(* Chrome export -> reader round trip                                  *)
(* ------------------------------------------------------------------ *)

let test_chrome_json_roundtrip () =
  with_tracing (fun () ->
      Trace.begin_span sp_a;
      Trace.begin_span sp_b;
      Trace.end_span sp_b;
      Trace.end_span sp_a;
      Trace.instant sp_c;
      let json = Trace.to_chrome_json () in
      (match Trace_read.parse_json json with
      | Error e -> Alcotest.fail ("export is not valid JSON: " ^ e)
      | Ok (Trace_read.Obj fields) ->
        Alcotest.(check bool)
          "has traceEvents" true
          (List.mem_assoc "traceEvents" fields)
      | Ok _ -> Alcotest.fail "export is not a JSON object");
      match Trace_read.summarize json with
      | Error e -> Alcotest.fail e
      | Ok rows ->
        let row name =
          List.find (fun r -> r.Trace_read.sr_name = name) rows
        in
        Alcotest.(check int) "outer span count" 1 (row "test.a").sr_count;
        Alcotest.(check int) "inner span count" 1 (row "test.b").sr_count;
        (* the inner span nests inside the outer one, so the outer
           self-time is its total minus the inner total *)
        let a = row "test.a" and b = row "test.b" in
        Alcotest.(check (float 0.001))
          "self = total - nested" (a.sr_total_us -. b.sr_total_us)
          a.sr_self_us)

(* ------------------------------------------------------------------ *)
(* trace reader on hand-built inputs                                   *)
(* ------------------------------------------------------------------ *)

let mini_trace =
  {|{"traceEvents":[
      {"name":"outer","ph":"X","ts":0,"dur":100,"pid":0,"tid":0},
      {"name":"inner","ph":"X","ts":10,"dur":30,"pid":0,"tid":0},
      {"name":"inner","ph":"X","ts":50,"dur":20,"pid":0,"tid":0},
      {"name":"other","ph":"X","ts":0,"dur":5,"pid":0,"tid":1},
      {"name":"noise","ph":"i","ts":1,"pid":0,"tid":0}
  ]}|}

let test_summarize_self_time () =
  match Trace_read.summarize mini_trace with
  | Error e -> Alcotest.fail e
  | Ok rows ->
    let row name = List.find (fun r -> r.Trace_read.sr_name = name) rows in
    Alcotest.(check (float 1e-9)) "outer total" 100.0 (row "outer").sr_total_us;
    Alcotest.(check (float 1e-9)) "outer self" 50.0 (row "outer").sr_self_us;
    Alcotest.(check int) "inner count" 2 (row "inner").sr_count;
    Alcotest.(check (float 1e-9)) "inner self" 50.0 (row "inner").sr_self_us;
    (* rows sorted by self-time descending; "other" is on its own track *)
    Alcotest.(check (float 1e-9)) "other self" 5.0 (row "other").sr_self_us;
    Alcotest.(check bool)
      "sorted by self desc" true
      (match rows with
      | r1 :: r2 :: r3 :: _ ->
        r1.Trace_read.sr_self_us >= r2.Trace_read.sr_self_us
        && r2.Trace_read.sr_self_us >= r3.Trace_read.sr_self_us
      | _ -> false)

let test_summarize_bare_array () =
  match
    Trace_read.summarize
      {|[{"name":"x","ph":"X","ts":0,"dur":7,"pid":0,"tid":0}]|}
  with
  | Error e -> Alcotest.fail e
  | Ok [ r ] ->
    Alcotest.(check string) "name" "x" r.Trace_read.sr_name;
    Alcotest.(check (float 1e-9)) "total" 7.0 r.Trace_read.sr_total_us
  | Ok _ -> Alcotest.fail "expected exactly one row"

let test_summarize_malformed () =
  let is_error s =
    match Trace_read.summarize s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "garbage" true (is_error "not json at all");
  Alcotest.(check bool) "truncated" true (is_error {|{"traceEvents":[|});
  Alcotest.(check bool) "wrong shape" true (is_error {|{"traceEvents":42}|});
  Alcotest.(check bool) "number literal" true (is_error "123abc");
  (* events missing fields are skipped, not fatal *)
  match
    Trace_read.summarize
      {|{"traceEvents":[{"ph":"X"},{"name":"ok","ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}|}
  with
  | Ok [ r ] -> Alcotest.(check string) "survivor" "ok" r.Trace_read.sr_name
  | Ok _ -> Alcotest.fail "expected one surviving row"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "reqs" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check bool)
    "find-or-create returns the same cell" true
    (Metrics.counter m "reqs" == c);
  let g = Metrics.gauge m "depth" in
  Metrics.set g 3.5;
  Alcotest.(check (float 0.0)) "gauge" 3.5 (Metrics.gauge_value g);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics.gauge: reqs is not a gauge") (fun () ->
      ignore (Metrics.gauge m "reqs"))

let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.0; 100.0 ];
  Alcotest.(check int) "count" 6 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 108.0 (Metrics.hist_sum h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Metrics.hist_max h);
  Alcotest.(check (float 1e-9)) "mean" 18.0 (Metrics.hist_mean h);
  (* log2 bucket upper bounds: p50 of {<=1,<=1,<=2,<=2,<=4,<=128} is 2 *)
  Alcotest.(check (float 1e-9)) "p50 bound" 2.0 (Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p100 bound" 128.0 (Metrics.quantile h 1.0)

let test_metrics_merge_deterministic () =
  let shard i =
    let m = Metrics.create () in
    Metrics.add (Metrics.counter m "n") i;
    Metrics.observe (Metrics.histogram m "h") (float_of_int i);
    m
  in
  let merged = Metrics.merge (shard 1) (shard 2) in
  Alcotest.(check int) "counters sum" 3
    (Metrics.counter_value (Metrics.counter merged "n"));
  Alcotest.(check int) "histogram counts sum" 2
    (Metrics.hist_count (Metrics.histogram merged "h"));
  (* same shards, either nesting: identical exposition *)
  let a = Metrics.merge (Metrics.merge (shard 1) (shard 2)) (shard 3) in
  let b = Metrics.merge (shard 1) (Metrics.merge (shard 2) (shard 3)) in
  Alcotest.(check string)
    "associative exposition" (Metrics.to_prometheus a)
    (Metrics.to_prometheus b)

let test_prometheus_format () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "ocr_requests_total") 7;
  let h = Metrics.histogram m "ocr_solve_latency_ms" in
  List.iter (Metrics.observe h) [ 0.5; 3.0 ];
  let text = Metrics.to_prometheus m in
  let has s =
    let n = String.length text and k = String.length s in
    let rec scan i = i + k <= n && (String.sub text i k = s || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun line -> Alcotest.(check bool) ("has " ^ line) true (has line))
    [
      "# TYPE ocr_requests_total counter"; "ocr_requests_total 7";
      "# TYPE ocr_solve_latency_ms histogram";
      "ocr_solve_latency_ms_bucket{le=\"1\"} 1";
      "ocr_solve_latency_ms_bucket{le=\"4\"} 2";
      "ocr_solve_latency_ms_bucket{le=\"+Inf\"} 2";
      "ocr_solve_latency_ms_sum 3.5"; "ocr_solve_latency_ms_count 2";
    ]

(* ------------------------------------------------------------------ *)
(* escaping helpers and the telemetry export fix                       *)
(* ------------------------------------------------------------------ *)

let test_json_string_escaping () =
  let roundtrip s =
    match Trace_read.parse_json (Obs.json_string s) with
    | Ok (Trace_read.Str s') -> s'
    | Ok _ -> Alcotest.fail "not a string literal"
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (roundtrip s))
    [ "plain"; "with \"quotes\""; "back\\slash"; "tab\tnewline\n"; "\x01\x1f" ]

let test_csv_field_quoting () =
  Alcotest.(check string) "plain untouched" "plain" (Obs.csv_field "plain");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Obs.csv_field "a,b");
  Alcotest.(check string)
    "inner quotes doubled" "\"a\"\"b\"" (Obs.csv_field "a\"b");
  Alcotest.(check string)
    "newline quoted" "\"a\nb\"" (Obs.csv_field "a\nb")

(* the PR-motivating bug: an algorithm name with quotes/commas must
   leave to_json parseable and to_csv one-field-safe *)
let test_telemetry_export_escaping () =
  let tel = Telemetry.create () in
  let evil = "ho\"ward, the \\ 2nd" in
  Telemetry.record_run tel evil ~wall_ms:1.5;
  tel.Telemetry.requests <- 1;
  (match Trace_read.parse_json (Telemetry.to_json tel) with
  | Error e -> Alcotest.fail ("to_json unparsable: " ^ e)
  | Ok (Trace_read.Obj fields) -> (
    match List.assoc "algorithms" fields with
    | Trace_read.Arr [ Trace_read.Obj alg ] -> (
      match List.assoc "name" alg with
      | Trace_read.Str name ->
        Alcotest.(check string) "name round-trips" evil name
      | _ -> Alcotest.fail "name is not a string")
    | _ -> Alcotest.fail "algorithms is not a one-object array")
  | Ok _ -> Alcotest.fail "to_json is not an object");
  let csv = Telemetry.to_csv tel in
  let quoted = Printf.sprintf "\"alg_ho\"\"ward, the \\ 2nd_runs\",1" in
  Alcotest.(check bool)
    "csv quotes the metric name" true
    (List.mem quoted (String.split_on_char '\n' csv))

let suite =
  [
    Alcotest.test_case "interning" `Quick test_intern;
    Alcotest.test_case "recording round-trip" `Quick test_recording_roundtrip;
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "ring wrap-around" `Quick test_ring_wraparound;
    Alcotest.test_case "chrome export parses and nests" `Quick
      test_chrome_json_roundtrip;
    Alcotest.test_case "summarize computes self-time" `Quick
      test_summarize_self_time;
    Alcotest.test_case "summarize accepts bare arrays" `Quick
      test_summarize_bare_array;
    Alcotest.test_case "summarize rejects malformed files" `Quick
      test_summarize_malformed;
    Alcotest.test_case "counters and gauges" `Quick test_metrics_basics;
    Alcotest.test_case "histogram log2 buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "shard merge is deterministic" `Quick
      test_metrics_merge_deterministic;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_format;
    Alcotest.test_case "json_string escapes correctly" `Quick
      test_json_string_escaping;
    Alcotest.test_case "csv_field quotes correctly" `Quick
      test_csv_field_quoting;
    Alcotest.test_case "telemetry exports escape names" `Quick
      test_telemetry_export_escaping;
  ]

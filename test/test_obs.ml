(* The ocr_obs substrate: ring-buffer recording, the metrics registry,
   the exporters, the trace reader, and the escaping helpers the
   telemetry exporters now rely on. *)

let sp_a = Obs.intern "test.a"
let sp_b = Obs.intern "test.b"
let sp_c = Obs.intern "test.counter"

(* run [f] with tracing on in a fresh ring configuration, restoring the
   disabled default afterwards so the allocation tests of other suites
   stay valid *)
let with_tracing ?capacity f =
  Trace.configure ?capacity ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Trace.configure ())
    f

(* ------------------------------------------------------------------ *)
(* interning and recording                                             *)
(* ------------------------------------------------------------------ *)

let test_intern () =
  Alcotest.(check int) "idempotent" sp_a (Obs.intern "test.a");
  Alcotest.(check string) "inverse" "test.a" (Obs.name_of sp_a);
  Alcotest.(check bool) "distinct names, distinct ids" true (sp_a <> sp_b)

let test_recording_roundtrip () =
  with_tracing (fun () ->
      Trace.begin_span sp_a;
      Trace.begin_span sp_b;
      Trace.counter_int sp_c 42;
      Trace.end_span sp_b;
      Trace.instant sp_b;
      Trace.end_span sp_a;
      let evs = Trace.events () in
      Alcotest.(check int) "six records" 6 (List.length evs);
      let kinds = List.map (fun e -> e.Trace.ev_kind) evs in
      Alcotest.(check bool)
        "kind sequence" true
        (kinds = [ `Begin; `Begin; `Counter; `End; `Instant; `End ]);
      let ts = List.map (fun e -> e.Trace.ev_ts) evs in
      Alcotest.(check bool)
        "timestamps monotone" true
        (List.sort compare ts = ts);
      match List.nth evs 2 with
      | { Trace.ev_id; ev_arg; _ } ->
        Alcotest.(check int) "counter id" sp_c ev_id;
        Alcotest.(check (float 0.0)) "counter value" 42.0 ev_arg)

let test_disabled_records_nothing () =
  Trace.configure ();
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  Trace.begin_span sp_a;
  Trace.end_span sp_a;
  Trace.instant sp_b;
  Trace.counter_int sp_c 1;
  Alcotest.(check int) "no records" 0 (List.length (Trace.events ()))

let test_ring_wraparound () =
  with_tracing ~capacity:16 (fun () ->
      for _ = 1 to 50 do
        Trace.instant sp_a
      done;
      let evs = Trace.events () in
      Alcotest.(check int) "ring keeps capacity records" 16 (List.length evs);
      Alcotest.(check int) "all recorded counted" 50 (Trace.recorded ());
      Alcotest.(check int) "drops counted" 34 (Trace.dropped ()))

(* ------------------------------------------------------------------ *)
(* Chrome export -> reader round trip                                  *)
(* ------------------------------------------------------------------ *)

let test_chrome_json_roundtrip () =
  with_tracing (fun () ->
      Trace.begin_span sp_a;
      Trace.begin_span sp_b;
      Trace.end_span sp_b;
      Trace.end_span sp_a;
      Trace.instant sp_c;
      let json = Trace.to_chrome_json () in
      (match Trace_read.parse_json json with
      | Error e -> Alcotest.fail ("export is not valid JSON: " ^ e)
      | Ok (Trace_read.Obj fields) ->
        Alcotest.(check bool)
          "has traceEvents" true
          (List.mem_assoc "traceEvents" fields)
      | Ok _ -> Alcotest.fail "export is not a JSON object");
      match Trace_read.summarize json with
      | Error e -> Alcotest.fail e
      | Ok rows ->
        let row name =
          List.find (fun r -> r.Trace_read.sr_name = name) rows
        in
        Alcotest.(check int) "outer span count" 1 (row "test.a").sr_count;
        Alcotest.(check int) "inner span count" 1 (row "test.b").sr_count;
        (* the inner span nests inside the outer one, so the outer
           self-time is its total minus the inner total *)
        let a = row "test.a" and b = row "test.b" in
        Alcotest.(check (float 0.001))
          "self = total - nested" (a.sr_total_us -. b.sr_total_us)
          a.sr_self_us)

(* ------------------------------------------------------------------ *)
(* trace reader on hand-built inputs                                   *)
(* ------------------------------------------------------------------ *)

let mini_trace =
  {|{"traceEvents":[
      {"name":"outer","ph":"X","ts":0,"dur":100,"pid":0,"tid":0},
      {"name":"inner","ph":"X","ts":10,"dur":30,"pid":0,"tid":0},
      {"name":"inner","ph":"X","ts":50,"dur":20,"pid":0,"tid":0},
      {"name":"other","ph":"X","ts":0,"dur":5,"pid":0,"tid":1},
      {"name":"noise","ph":"i","ts":1,"pid":0,"tid":0}
  ]}|}

let test_summarize_self_time () =
  match Trace_read.summarize mini_trace with
  | Error e -> Alcotest.fail e
  | Ok rows ->
    let row name = List.find (fun r -> r.Trace_read.sr_name = name) rows in
    Alcotest.(check (float 1e-9)) "outer total" 100.0 (row "outer").sr_total_us;
    Alcotest.(check (float 1e-9)) "outer self" 50.0 (row "outer").sr_self_us;
    Alcotest.(check int) "inner count" 2 (row "inner").sr_count;
    Alcotest.(check (float 1e-9)) "inner self" 50.0 (row "inner").sr_self_us;
    (* rows sorted by self-time descending; "other" is on its own track *)
    Alcotest.(check (float 1e-9)) "other self" 5.0 (row "other").sr_self_us;
    Alcotest.(check bool)
      "sorted by self desc" true
      (match rows with
      | r1 :: r2 :: r3 :: _ ->
        r1.Trace_read.sr_self_us >= r2.Trace_read.sr_self_us
        && r2.Trace_read.sr_self_us >= r3.Trace_read.sr_self_us
      | _ -> false)

let test_summarize_bare_array () =
  match
    Trace_read.summarize
      {|[{"name":"x","ph":"X","ts":0,"dur":7,"pid":0,"tid":0}]|}
  with
  | Error e -> Alcotest.fail e
  | Ok [ r ] ->
    Alcotest.(check string) "name" "x" r.Trace_read.sr_name;
    Alcotest.(check (float 1e-9)) "total" 7.0 r.Trace_read.sr_total_us
  | Ok _ -> Alcotest.fail "expected exactly one row"

let test_summarize_malformed () =
  let is_error s =
    match Trace_read.summarize s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "garbage" true (is_error "not json at all");
  Alcotest.(check bool) "truncated" true (is_error {|{"traceEvents":[|});
  Alcotest.(check bool) "wrong shape" true (is_error {|{"traceEvents":42}|});
  Alcotest.(check bool) "number literal" true (is_error "123abc");
  (* events missing fields are skipped, not fatal *)
  match
    Trace_read.summarize
      {|{"traceEvents":[{"ph":"X"},{"name":"ok","ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}|}
  with
  | Ok [ r ] -> Alcotest.(check string) "survivor" "ok" r.Trace_read.sr_name
  | Ok _ -> Alcotest.fail "expected one surviving row"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* tagged events (distributed tracing)                                 *)
(* ------------------------------------------------------------------ *)

(* helpers over parsed merged/exported traces *)
let events_of json =
  match Trace_read.parse_json json with
  | Ok (Trace_read.Obj fields) -> (
    match List.assoc_opt "traceEvents" fields with
    | Some (Trace_read.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array")
  | Ok _ -> Alcotest.fail "trace is not an object"
  | Error e -> Alcotest.fail e

let ev_str e k =
  match e with
  | Trace_read.Obj fields -> (
    match List.assoc_opt k fields with
    | Some (Trace_read.Str s) -> Some s
    | _ -> None)
  | _ -> None

let ev_num e k =
  match e with
  | Trace_read.Obj fields -> (
    match List.assoc_opt k fields with
    | Some (Trace_read.Num f) -> Some f
    | _ -> None)
  | _ -> None

let find_events json ~name ~ph =
  List.filter
    (fun e -> ev_str e "name" = Some name && ev_str e "ph" = Some ph)
    (events_of json)

let test_tagged_async_export () =
  with_tracing (fun () ->
      (* two same-name spans overlapping in a non-LIFO way: stack
         pairing would mis-attribute them, async pairing by trace id
         must not *)
      Trace.begin_span_id sp_a 7;
      Trace.begin_span_id sp_a 9;
      Trace.end_span_id sp_a 7;
      Trace.instant_id sp_b 7;
      Trace.end_span_id sp_a 9;
      Trace.begin_span sp_b;
      Trace.end_span sp_b;
      let json = Trace.to_chrome_json () in
      let ids ph =
        find_events json ~name:"test.a" ~ph
        |> List.filter_map (fun e -> ev_str e "id")
        |> List.sort compare
      in
      Alcotest.(check (list string)) "async begins" [ "7"; "9" ] (ids "b");
      Alcotest.(check (list string)) "async ends" [ "7"; "9" ] (ids "e");
      (match find_events json ~name:"test.b" ~ph:"i" with
      | [ e ] -> (
        match e with
        | Trace_read.Obj fields -> (
          match List.assoc_opt "args" fields with
          | Some (Trace_read.Obj args) ->
            Alcotest.(check bool)
              "instant carries args.trace" true
              (List.assoc_opt "trace" args = Some (Trace_read.Num 7.0))
          | _ -> Alcotest.fail "tagged instant without args")
        | _ -> Alcotest.fail "bad event shape")
      | l ->
        Alcotest.fail
          (Printf.sprintf "expected one tagged instant, got %d"
             (List.length l)));
      (* the untagged span still exports as a stack-paired complete
         event *)
      Alcotest.(check int)
        "untagged span is ph X" 1
        (List.length (find_events json ~name:"test.b" ~ph:"X")))

let test_tagged_disabled_no_alloc () =
  Trace.configure ();
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  let before = Gc.minor_words () in
  for i = 1 to 1000 do
    Trace.begin_span_id sp_a i;
    Trace.instant_id sp_b i;
    Trace.end_span_id sp_a i
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check (float 0.0)) "no allocation while disabled" 0.0 allocated

let test_set_process_absolute () =
  with_tracing (fun () ->
      Trace.set_process ~pid:3 ~name:"worker 2" ();
      Trace.set_clock_offset_ns 1_500_000;
      Trace.instant sp_a;
      let json = Trace.to_chrome_json () in
      (match find_events json ~name:"clock_offset_ns" ~ph:"M" with
      | [ Trace_read.Obj fields ] ->
        (match List.assoc_opt "args" fields with
        | Some (Trace_read.Obj args) ->
          Alcotest.(check bool)
            "offset recorded" true
            (List.assoc_opt "value" args = Some (Trace_read.Num 1_500_000.0))
        | _ -> Alcotest.fail "offset record without args");
        Alcotest.(check (option (float 0.0)))
          "offset record carries the pid" (Some 3.0)
          (ev_num (Trace_read.Obj fields) "pid")
      | _ -> Alcotest.fail "expected one clock_offset_ns record");
      match find_events json ~name:"test.a" ~ph:"i" with
      | [ e ] ->
        Alcotest.(check (option (float 0.0))) "event pid" (Some 3.0)
          (ev_num e "pid");
        (* absolute mode: timestamps are not rebased to the first
           record, so a fresh instant is far from zero *)
        Alcotest.(check bool)
          "absolute timestamp" true
          (match ev_num e "ts" with Some ts -> ts > 1e6 | None -> false)
      | _ -> Alcotest.fail "expected the one instant");
  (* configure resets the identity: a fresh trace is standalone again *)
  with_tracing (fun () ->
      Trace.instant sp_a;
      match find_events (Trace.to_chrome_json ()) ~name:"test.a" ~ph:"i" with
      | [ e ] ->
        Alcotest.(check (option (float 0.0))) "pid back to 0" (Some 0.0)
          (ev_num e "pid");
        Alcotest.(check bool)
          "timestamps rebased again" true
          (match ev_num e "ts" with Some ts -> ts < 1e6 | None -> false)
      | _ -> Alcotest.fail "expected the one instant")

(* ------------------------------------------------------------------ *)
(* multi-process merge                                                 *)
(* ------------------------------------------------------------------ *)

(* synthetic two-process run: the router dispatches request 1 to a
   worker whose clock reads 1ms behind the router's *)
let router_events =
  [
    {|{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"router"}}|};
    {|{"name":"clock_offset_ns","ph":"M","pid":0,"tid":0,"args":{"value":0}}|};
    {|{"name":"rt.request","cat":"ocr","ph":"b","id":"1","ts":1000,"pid":0,"tid":0,"args":{"trace":1}}|};
    {|{"name":"rt.admit","cat":"ocr","ph":"i","ts":1000,"s":"t","pid":0,"tid":0,"args":{"trace":1}}|};
    {|{"name":"rt.sent","cat":"ocr","ph":"i","ts":1100,"s":"t","pid":0,"tid":0,"args":{"trace":1}}|};
    {|{"name":"rt.head","cat":"ocr","ph":"i","ts":1100,"s":"t","pid":0,"tid":0,"args":{"trace":1}}|};
    {|{"name":"rt.reply","cat":"ocr","ph":"i","ts":5000,"s":"t","pid":0,"tid":0,"args":{"trace":1}}|};
    {|{"name":"rt.done","cat":"ocr","ph":"i","ts":5050,"s":"t","pid":0,"tid":0,"args":{"trace":1}}|};
    {|{"name":"rt.request","cat":"ocr","ph":"e","id":"1","ts":5050,"pid":0,"tid":0,"args":{"trace":1}}|};
    {|{"name":"rt.admit","cat":"ocr","ph":"i","ts":6000,"s":"t","pid":0,"tid":0,"args":{"trace":2}}|};
  ]

let worker_events =
  [
    {|{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"worker 0"}}|};
    {|{"name":"clock_offset_ns","ph":"M","pid":1,"tid":0,"args":{"value":1000000}}|};
    {|{"name":"engine.request","cat":"ocr","ph":"b","id":"1","ts":1500,"pid":1,"tid":0,"args":{"trace":1}}|};
    {|{"name":"engine.request","cat":"ocr","ph":"e","id":"1","ts":3500,"pid":1,"tid":0,"args":{"trace":1}}|};
  ]

let trace_file events = "{\"traceEvents\":[" ^ String.concat "," events ^ "]}"

let merge_exn inputs =
  match Trace_read.merge inputs with
  | Ok s -> s
  | Error e -> Alcotest.fail ("merge failed: " ^ e)

let test_merge_offset_and_containment () =
  let merged =
    merge_exn
      [
        ("router.json", trace_file router_events);
        ("worker-0.json", trace_file worker_events);
      ]
  in
  (* the worker's span lands on the router's clock: shifted by the
     recorded +1000000ns = +1000us offset *)
  let b_ts =
    match find_events merged ~name:"engine.request" ~ph:"b" with
    | [ e ] -> Option.get (ev_num e "ts")
    | _ -> Alcotest.fail "expected one worker begin"
  in
  let e_ts =
    match find_events merged ~name:"engine.request" ~ph:"e" with
    | [ e ] -> Option.get (ev_num e "ts")
    | _ -> Alcotest.fail "expected one worker end"
  in
  Alcotest.(check (float 1e-6)) "begin shifted" 2500.0 b_ts;
  Alcotest.(check (float 1e-6)) "end shifted" 4500.0 e_ts;
  (* offset-corrected containment: the worker's solve lies inside the
     router's sent->reply window *)
  Alcotest.(check bool) "contained" true (1100.0 <= b_ts && e_ts <= 5000.0);
  (* events come out in nondecreasing timestamp order *)
  let tss = List.filter_map (fun e -> ev_num e "ts") (events_of merged) in
  Alcotest.(check bool)
    "sorted by ts" true
    (List.sort compare tss = tss)

let test_merge_flow_arrows () =
  let merged =
    merge_exn
      [
        ("router.json", trace_file router_events);
        ("worker-0.json", trace_file worker_events);
      ]
  in
  (match find_events merged ~name:"req" ~ph:"s" with
  | [ e ] ->
    Alcotest.(check (option string)) "flow id" (Some "1") (ev_str e "id");
    Alcotest.(check (option (float 1e-6)))
      "flow starts at rt.sent" (Some 1100.0) (ev_num e "ts");
    Alcotest.(check (option (float 0.0))) "on the router track" (Some 0.0)
      (ev_num e "pid")
  | l ->
    Alcotest.fail
      (Printf.sprintf "expected one flow start, got %d" (List.length l)));
  match find_events merged ~name:"req" ~ph:"f" with
  | [ e ] ->
    Alcotest.(check (option string)) "flow id" (Some "1") (ev_str e "id");
    Alcotest.(check (option (float 1e-6)))
      "flow ends at the worker's first event" (Some 2500.0) (ev_num e "ts");
    Alcotest.(check (option (float 0.0))) "on the worker track" (Some 1.0)
      (ev_num e "pid");
    Alcotest.(check (option string)) "binds enclosing slice" (Some "e")
      (ev_str e "bp")
  | l ->
    Alcotest.fail
      (Printf.sprintf "expected one flow end, got %d" (List.length l))

let test_merge_bad_input_named () =
  match
    Trace_read.merge
      [ ("router.json", trace_file router_events); ("worker-0.json", "nope") ]
  with
  | Ok _ -> Alcotest.fail "merge accepted a malformed input"
  | Error e ->
    Alcotest.(check bool)
      "error names the offending file" true
      (String.length e >= 13 && String.sub e 0 13 = "worker-0.json")

let qcheck_merge_interleaving_independent =
  let reference =
    lazy
      (merge_exn
         [
           ("a", trace_file router_events); ("b", trace_file worker_events);
         ])
  in
  QCheck.Test.make ~count:60
    ~name:"merge is independent of ring interleaving and file order"
    QCheck.(
      triple
        (make (Gen.shuffle_l router_events))
        (make (Gen.shuffle_l worker_events))
        bool)
    (fun (router', worker', swap) ->
      let inputs =
        [ ("a", trace_file router'); ("b", trace_file worker') ]
      in
      let inputs = if swap then List.rev inputs else inputs in
      merge_exn inputs = Lazy.force reference)

(* ------------------------------------------------------------------ *)
(* per-request attribution                                             *)
(* ------------------------------------------------------------------ *)

let test_attribute_phases () =
  match Trace_read.attribute (trace_file router_events) with
  | Error e -> Alcotest.fail e
  | Ok [ r ] ->
    (* request 2 has only rt.admit (a shed request) and must be
       skipped; request 1's phases follow from the marker timestamps *)
    Alcotest.(check int) "trace id" 1 r.Trace_read.rp_trace;
    Alcotest.(check (float 1e-9)) "dispatch" 100.0 r.Trace_read.rp_dispatch_us;
    Alcotest.(check (float 1e-9)) "queue" 0.0 r.Trace_read.rp_queue_us;
    Alcotest.(check (float 1e-9)) "solve" 3900.0 r.Trace_read.rp_solve_us;
    Alcotest.(check (float 1e-9)) "serialize" 50.0 r.Trace_read.rp_serialize_us;
    Alcotest.(check (float 1e-9)) "total" 4050.0 r.Trace_read.rp_total_us
  | Ok rows ->
    Alcotest.fail (Printf.sprintf "expected one row, got %d" (List.length rows))

let test_attribute_merged_agrees () =
  (* attribution over the merged file sees the same router markers *)
  let merged =
    merge_exn
      [
        ("router.json", trace_file router_events);
        ("worker-0.json", trace_file worker_events);
      ]
  in
  match (Trace_read.attribute (trace_file router_events),
         Trace_read.attribute merged)
  with
  | Ok [ a ], Ok [ b ] ->
    Alcotest.(check (float 1e-9)) "same total" a.Trace_read.rp_total_us
      b.Trace_read.rp_total_us
  | _ -> Alcotest.fail "expected one row on each side"

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.0)) "p50" 50.0 (Trace_read.percentile xs 0.50);
  Alcotest.(check (float 0.0)) "p95" 95.0 (Trace_read.percentile xs 0.95);
  Alcotest.(check (float 0.0)) "p99" 99.0 (Trace_read.percentile xs 0.99);
  Alcotest.(check (float 0.0)) "p100" 100.0 (Trace_read.percentile xs 1.0);
  Alcotest.(check (float 0.0)) "empty" 0.0 (Trace_read.percentile [] 0.5);
  Alcotest.(check (float 0.0)) "singleton" 7.0 (Trace_read.percentile [ 7.0 ] 0.99)

let test_summarize_file_errors () =
  let check_error path expect_substring =
    match Trace_read.summarize_file path with
    | Ok _ -> Alcotest.fail ("expected an error for " ^ path)
    | Error e ->
      let has =
        let n = String.length e and k = String.length expect_substring in
        let rec scan i =
          i + k <= n && (String.sub e i k = expect_substring || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" e expect_substring)
        true has
  in
  let empty = Filename.temp_file "ocr_test_empty" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove empty)
    (fun () -> check_error empty "empty trace file");
  let blank = Filename.temp_file "ocr_test_blank" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove blank)
    (fun () ->
      let oc = open_out blank in
      output_string oc "  \n\t\n";
      close_out oc;
      check_error blank "empty trace file");
  let truncated = Filename.temp_file "ocr_test_trunc" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove truncated)
    (fun () ->
      let oc = open_out truncated in
      output_string oc "{\"traceEvents\":[";
      close_out oc;
      check_error truncated "");
  check_error "/nonexistent/ocr_no_such_trace.json" ""

(* ------------------------------------------------------------------ *)
(* metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "reqs" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check bool)
    "find-or-create returns the same cell" true
    (Metrics.counter m "reqs" == c);
  let g = Metrics.gauge m "depth" in
  Metrics.set g 3.5;
  Alcotest.(check (float 0.0)) "gauge" 3.5 (Metrics.gauge_value g);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics.gauge: reqs is not a gauge") (fun () ->
      ignore (Metrics.gauge m "reqs"))

let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.0; 100.0 ];
  Alcotest.(check int) "count" 6 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 108.0 (Metrics.hist_sum h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Metrics.hist_max h);
  Alcotest.(check (float 1e-9)) "mean" 18.0 (Metrics.hist_mean h);
  (* log2 bucket upper bounds: p50 of {<=1,<=1,<=2,<=2,<=4,<=128} is 2 *)
  Alcotest.(check (float 1e-9)) "p50 bound" 2.0 (Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p100 bound" 128.0 (Metrics.quantile h 1.0)

let test_metrics_merge_deterministic () =
  let shard i =
    let m = Metrics.create () in
    Metrics.add (Metrics.counter m "n") i;
    Metrics.observe (Metrics.histogram m "h") (float_of_int i);
    m
  in
  let merged = Metrics.merge (shard 1) (shard 2) in
  Alcotest.(check int) "counters sum" 3
    (Metrics.counter_value (Metrics.counter merged "n"));
  Alcotest.(check int) "histogram counts sum" 2
    (Metrics.hist_count (Metrics.histogram merged "h"));
  (* same shards, either nesting: identical exposition *)
  let a = Metrics.merge (Metrics.merge (shard 1) (shard 2)) (shard 3) in
  let b = Metrics.merge (shard 1) (Metrics.merge (shard 2) (shard 3)) in
  Alcotest.(check string)
    "associative exposition" (Metrics.to_prometheus a)
    (Metrics.to_prometheus b)

let test_prometheus_format () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "ocr_requests_total") 7;
  let h = Metrics.histogram m "ocr_solve_latency_ms" in
  List.iter (Metrics.observe h) [ 0.5; 3.0 ];
  let text = Metrics.to_prometheus m in
  let has s =
    let n = String.length text and k = String.length s in
    let rec scan i = i + k <= n && (String.sub text i k = s || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun line -> Alcotest.(check bool) ("has " ^ line) true (has line))
    [
      "# TYPE ocr_requests_total counter"; "ocr_requests_total 7";
      "# TYPE ocr_solve_latency_ms histogram";
      "ocr_solve_latency_ms_bucket{le=\"1\"} 1";
      "ocr_solve_latency_ms_bucket{le=\"4\"} 2";
      "ocr_solve_latency_ms_bucket{le=\"+Inf\"} 2";
      "ocr_solve_latency_ms_sum 3.5"; "ocr_solve_latency_ms_count 2";
    ]

let contains_sub text s =
  let n = String.length text and k = String.length s in
  let rec scan i = i + k <= n && (String.sub text i k = s || scan (i + 1)) in
  scan 0

let test_labeled_histogram_exposition () =
  let m = Metrics.create () in
  let h0 = Metrics.histogram m "ocr_queue_wait_ms{worker=\"0\"}" in
  let h1 = Metrics.histogram m "ocr_queue_wait_ms{worker=\"1\"}" in
  List.iter (Metrics.observe h0) [ 0.5; 3.0 ];
  Metrics.observe h1 10.0;
  let text = Metrics.to_prometheus m in
  List.iter
    (fun line ->
      Alcotest.(check bool) ("has " ^ line) true (contains_sub text line))
    [
      "# TYPE ocr_queue_wait_ms histogram";
      "ocr_queue_wait_ms_bucket{worker=\"0\",le=\"1\"} 1";
      "ocr_queue_wait_ms_bucket{worker=\"0\",le=\"4\"} 2";
      "ocr_queue_wait_ms_bucket{worker=\"0\",le=\"+Inf\"} 2";
      "ocr_queue_wait_ms_sum{worker=\"0\"} 3.5";
      "ocr_queue_wait_ms_count{worker=\"0\"} 2";
      "ocr_queue_wait_ms_bucket{worker=\"1\",le=\"16\"} 1";
      "ocr_queue_wait_ms_count{worker=\"1\"} 1";
    ]

let test_labeled_histogram_roundtrip () =
  let m = Metrics.create () in
  let h0 = Metrics.histogram m "ocr_request_total_ms{worker=\"0\"}" in
  let h1 = Metrics.histogram m "ocr_request_total_ms{worker=\"1\"}" in
  List.iter (Metrics.observe h0) [ 0.5; 3.0; 200.0 ];
  Metrics.observe h1 10.0;
  Metrics.add (Metrics.counter m "plain_total") 2;
  let text = Metrics.to_prometheus m in
  match Metrics.of_prometheus text with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    (* the parsed registry distinguishes the per-worker series *)
    Alcotest.(check int) "worker 0 count" 3
      (Metrics.hist_count
         (Metrics.histogram m' "ocr_request_total_ms{worker=\"0\"}"));
    Alcotest.(check int) "worker 1 count" 1
      (Metrics.hist_count
         (Metrics.histogram m' "ocr_request_total_ms{worker=\"1\"}"));
    Alcotest.(check (float 1e-9)) "worker 0 sum" 203.5
      (Metrics.hist_sum
         (Metrics.histogram m' "ocr_request_total_ms{worker=\"0\"}"));
    (* and the re-exposition is byte-identical, so aggregation across
       processes is stable under the text round-trip *)
    Alcotest.(check string) "exposition round-trips" text
      (Metrics.to_prometheus m')

(* ------------------------------------------------------------------ *)
(* escaping helpers and the telemetry export fix                       *)
(* ------------------------------------------------------------------ *)

let test_json_string_escaping () =
  let roundtrip s =
    match Trace_read.parse_json (Obs.json_string s) with
    | Ok (Trace_read.Str s') -> s'
    | Ok _ -> Alcotest.fail "not a string literal"
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (roundtrip s))
    [ "plain"; "with \"quotes\""; "back\\slash"; "tab\tnewline\n"; "\x01\x1f" ]

let test_csv_field_quoting () =
  Alcotest.(check string) "plain untouched" "plain" (Obs.csv_field "plain");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Obs.csv_field "a,b");
  Alcotest.(check string)
    "inner quotes doubled" "\"a\"\"b\"" (Obs.csv_field "a\"b");
  Alcotest.(check string)
    "newline quoted" "\"a\nb\"" (Obs.csv_field "a\nb")

(* the PR-motivating bug: an algorithm name with quotes/commas must
   leave to_json parseable and to_csv one-field-safe *)
let test_telemetry_export_escaping () =
  let tel = Telemetry.create () in
  let evil = "ho\"ward, the \\ 2nd" in
  Telemetry.record_run tel evil ~wall_ms:1.5;
  tel.Telemetry.requests <- 1;
  (match Trace_read.parse_json (Telemetry.to_json tel) with
  | Error e -> Alcotest.fail ("to_json unparsable: " ^ e)
  | Ok (Trace_read.Obj fields) -> (
    match List.assoc "algorithms" fields with
    | Trace_read.Arr [ Trace_read.Obj alg ] -> (
      match List.assoc "name" alg with
      | Trace_read.Str name ->
        Alcotest.(check string) "name round-trips" evil name
      | _ -> Alcotest.fail "name is not a string")
    | _ -> Alcotest.fail "algorithms is not a one-object array")
  | Ok _ -> Alcotest.fail "to_json is not an object");
  let csv = Telemetry.to_csv tel in
  let quoted = Printf.sprintf "\"alg_ho\"\"ward, the \\ 2nd_runs\",1" in
  Alcotest.(check bool)
    "csv quotes the metric name" true
    (List.mem quoted (String.split_on_char '\n' csv))

let suite =
  [
    Alcotest.test_case "interning" `Quick test_intern;
    Alcotest.test_case "recording round-trip" `Quick test_recording_roundtrip;
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "ring wrap-around" `Quick test_ring_wraparound;
    Alcotest.test_case "chrome export parses and nests" `Quick
      test_chrome_json_roundtrip;
    Alcotest.test_case "summarize computes self-time" `Quick
      test_summarize_self_time;
    Alcotest.test_case "summarize accepts bare arrays" `Quick
      test_summarize_bare_array;
    Alcotest.test_case "summarize rejects malformed files" `Quick
      test_summarize_malformed;
    Alcotest.test_case "tagged spans export as async pairs" `Quick
      test_tagged_async_export;
    Alcotest.test_case "tagged entry points allocate nothing when off" `Quick
      test_tagged_disabled_no_alloc;
    Alcotest.test_case "set_process switches to absolute export" `Quick
      test_set_process_absolute;
    Alcotest.test_case "merge aligns clocks and contains spans" `Quick
      test_merge_offset_and_containment;
    Alcotest.test_case "merge synthesizes per-request flows" `Quick
      test_merge_flow_arrows;
    Alcotest.test_case "merge names the malformed input" `Quick
      test_merge_bad_input_named;
    QCheck_alcotest.to_alcotest qcheck_merge_interleaving_independent;
    Alcotest.test_case "attribute extracts request phases" `Quick
      test_attribute_phases;
    Alcotest.test_case "attribute agrees on the merged file" `Quick
      test_attribute_merged_agrees;
    Alcotest.test_case "nearest-rank percentile" `Quick test_percentile;
    Alcotest.test_case "summarize_file maps bad files to errors" `Quick
      test_summarize_file_errors;
    Alcotest.test_case "labeled histogram exposition" `Quick
      test_labeled_histogram_exposition;
    Alcotest.test_case "labeled histogram text round-trip" `Quick
      test_labeled_histogram_roundtrip;
    Alcotest.test_case "counters and gauges" `Quick test_metrics_basics;
    Alcotest.test_case "histogram log2 buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "shard merge is deterministic" `Quick
      test_metrics_merge_deterministic;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_format;
    Alcotest.test_case "json_string escapes correctly" `Quick
      test_json_string_escaping;
    Alcotest.test_case "csv_field quotes correctly" `Quick
      test_csv_field_quoting;
    Alcotest.test_case "telemetry exports escape names" `Quick
      test_telemetry_export_escaping;
  ]

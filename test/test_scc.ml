let test_two_triangles () =
  (* two triangles joined by a one-way bridge *)
  let g =
    Digraph.of_weighted_arcs 6
      [
        (0, 1, 1); (1, 2, 1); (2, 0, 1);
        (2, 3, 1);
        (3, 4, 1); (4, 5, 1); (5, 3, 1);
      ]
  in
  let scc = Scc.compute g in
  Alcotest.(check int) "count" 2 scc.Scc.count;
  Alcotest.(check bool) "0,1,2 together" true
    (scc.Scc.component.(0) = scc.Scc.component.(1)
    && scc.Scc.component.(1) = scc.Scc.component.(2));
  Alcotest.(check bool) "3,4,5 together" true
    (scc.Scc.component.(3) = scc.Scc.component.(4)
    && scc.Scc.component.(4) = scc.Scc.component.(5));
  Alcotest.(check bool) "separated" true
    (scc.Scc.component.(0) <> scc.Scc.component.(3))

let test_reverse_topological_numbering () =
  (* arcs between distinct components must go from higher id to lower *)
  let g =
    Digraph.of_weighted_arcs 5
      [ (0, 1, 1); (1, 0, 1); (1, 2, 1); (2, 3, 1); (3, 2, 1); (3, 4, 1) ]
  in
  let scc = Scc.compute g in
  Digraph.iter_arcs g (fun a ->
      let cu = scc.Scc.component.(Digraph.src g a)
      and cv = scc.Scc.component.(Digraph.dst g a) in
      if cu <> cv then
        Alcotest.(check bool) "reverse topological" true (cu > cv))

let test_members () =
  let g = Digraph.of_weighted_arcs 3 [ (0, 1, 1); (1, 0, 1) ] in
  let scc = Scc.compute g in
  Alcotest.(check int) "count" 2 scc.Scc.count;
  let comp01 = scc.Scc.component.(0) in
  Alcotest.(check (list int)) "members of {0,1}" [ 0; 1 ]
    (List.sort compare scc.Scc.members.(comp01));
  Alcotest.(check (list int)) "members of {2}" [ 2 ]
    scc.Scc.members.(scc.Scc.component.(2))

let test_trivial () =
  let g = Digraph.of_weighted_arcs 2 [ (0, 0, 1) ] in
  let scc = Scc.compute g in
  Alcotest.(check bool) "self loop is not trivial" false
    (Scc.is_trivial g scc scc.Scc.component.(0));
  Alcotest.(check bool) "isolated node is trivial" true
    (Scc.is_trivial g scc scc.Scc.component.(1));
  Alcotest.(check int) "one nontrivial component" 1
    (List.length (Scc.nontrivial_components g scc))

let test_single_big_scc () =
  let g = Sprand.generate ~seed:5 ~n:100 ~m:300 () in
  let scc = Scc.compute g in
  Alcotest.(check int) "sprand graphs are strongly connected" 1 scc.Scc.count

let test_empty_and_singleton () =
  let scc0 = Scc.compute (Digraph.of_arcs 0 []) in
  Alcotest.(check int) "empty graph" 0 scc0.Scc.count;
  let scc1 = Scc.compute (Digraph.of_arcs 1 []) in
  Alcotest.(check int) "singleton" 1 scc1.Scc.count

(* Reference implementation: u ~ v iff v reachable from u and u from v. *)
let qcheck_matches_reachability =
  QCheck.Test.make ~name:"scc: agrees with pairwise reachability" ~count:150
    (Helpers.arb_any_graph ~max_n:8 ~max_m:20 ())
    (fun g ->
      let n = Digraph.n g in
      let scc = Scc.compute g in
      let reach = Array.init n (Traversal.reachable g) in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let same = scc.Scc.component.(u) = scc.Scc.component.(v) in
          let mutually = reach.(u).(v) && reach.(v).(u) in
          if same <> mutually then ok := false
        done
      done;
      !ok)

let qcheck_members_partition =
  QCheck.Test.make ~name:"scc: members form a partition" ~count:150
    (Helpers.arb_any_graph ~max_n:10 ~max_m:25 ())
    (fun g ->
      let scc = Scc.compute g in
      let all = Array.to_list scc.Scc.members |> List.concat in
      List.sort compare all = List.init (Digraph.n g) Fun.id)

let suite =
  [
    Alcotest.test_case "two triangles" `Quick test_two_triangles;
    Alcotest.test_case "reverse topological ids" `Quick
      test_reverse_topological_numbering;
    Alcotest.test_case "members" `Quick test_members;
    Alcotest.test_case "trivial components" `Quick test_trivial;
    Alcotest.test_case "sprand is one SCC" `Quick test_single_big_scc;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
  ]
  @ Helpers.qtests [ qcheck_matches_reachability; qcheck_members_partition ]

let test_condensation () =
  let g =
    Digraph.of_weighted_arcs 5
      [ (0, 1, 1); (1, 0, 2); (1, 2, 7); (2, 3, 3); (3, 2, 4); (3, 4, 9) ]
  in
  let scc = Scc.compute g in
  let dag = Scc.condensation g scc in
  Alcotest.(check int) "one node per component" scc.Scc.count (Digraph.n dag);
  Alcotest.(check int) "cross arcs kept" 2 (Digraph.m dag);
  Alcotest.(check bool) "condensation is acyclic" true (Traversal.is_acyclic dag)

let qcheck_condensation_acyclic =
  QCheck.Test.make ~name:"scc: condensation is always acyclic" ~count:150
    (Helpers.arb_any_graph ~max_n:10 ~max_m:25 ())
    (fun g ->
      let scc = Scc.compute g in
      Traversal.is_acyclic (Scc.condensation g scc))

let suite =
  suite
  @ [ Alcotest.test_case "condensation" `Quick test_condensation ]
  @ Helpers.qtests [ qcheck_condensation_acyclic ]

(* The one-pass partition must be indistinguishable from the
   per-component [Digraph.induced] loop it replaced: same subgraphs,
   same renumbering, same back-maps, in the same component order. *)
let qcheck_partition_matches_induced =
  QCheck.Test.make ~name:"scc: partition = per-component induced" ~count:200
    (Helpers.arb_any_graph ~max_n:12 ~max_m:30 ())
    (fun g ->
      let scc = Scc.compute g in
      let subs = Array.to_list (Scc.partition g scc) in
      let cyclic =
        List.filter
          (fun c -> not (Scc.is_trivial g scc c))
          (List.init scc.Scc.count Fun.id)
      in
      List.length cyclic = List.length subs
      && List.for_all2
           (fun c (sp : Scc.subproblem) ->
             let members = List.sort compare scc.Scc.members.(c) in
             let sub, node_of_sub, arc_of_sub = Digraph.induced g members in
             sp.Scc.comp = c
             && Digraph.equal_structure sp.Scc.sub sub
             && sp.Scc.node_of_sub = node_of_sub
             && sp.Scc.arc_of_sub = arc_of_sub)
           cyclic subs)

let qcheck_partition_covers_graph =
  QCheck.Test.make
    ~name:"scc: partition ~nontrivial_only:false covers every node and \
           intra-component arc"
    ~count:150
    (Helpers.arb_any_graph ~max_n:12 ~max_m:30 ())
    (fun g ->
      let scc = Scc.compute g in
      let subs = Scc.partition ~nontrivial_only:false g scc in
      let intra =
        Digraph.fold_arcs g
          (fun acc a ->
            if
              scc.Scc.component.(Digraph.src g a)
              = scc.Scc.component.(Digraph.dst g a)
            then acc + 1
            else acc)
          0
      in
      Array.length subs = scc.Scc.count
      && Array.for_all
           (fun (sp : Scc.subproblem) ->
             Array.length sp.Scc.node_of_sub = Digraph.n sp.Scc.sub
             && Array.length sp.Scc.arc_of_sub = Digraph.m sp.Scc.sub)
           subs
      && Array.fold_left (fun acc sp -> acc + Digraph.n sp.Scc.sub) 0 subs
         = Digraph.n g
      && Array.fold_left (fun acc sp -> acc + Digraph.m sp.Scc.sub) 0 subs
         = intra)

let suite =
  suite
  @ Helpers.qtests
      [ qcheck_partition_matches_induced; qcheck_partition_covers_graph ]

(* Shared test utilities: Alcotest testables and QCheck generators. *)

let ratio = Alcotest.testable Ratio.pp Ratio.equal

let check_ratio = Alcotest.check ratio

let r = Ratio.make

(* ------------------------------------------------------------------ *)
(* QCheck generators                                                   *)
(* ------------------------------------------------------------------ *)

(* A strongly connected graph: permutation ring + extra random arcs.
   Weights may be negative; transit times in [1, tmax]. *)
let gen_strongly_connected ?(max_n = 10) ?(max_extra = 20) ?(wlo = -20)
    ?(whi = 20) ?(tmax = 1) () =
  let open QCheck.Gen in
  let* n = int_range 1 max_n in
  let* extra = int_range 0 max_extra in
  let* seed = int_range 0 1_000_000 in
  let rng = Rng.create seed in
  let perm = Array.init n Fun.id in
  Rng.shuffle rng perm;
  let arcs = ref [] in
  for i = 0 to n - 1 do
    arcs :=
      (perm.(i), perm.((i + 1) mod n), Rng.in_range rng wlo whi,
       Rng.in_range rng 1 tmax)
      :: !arcs
  done;
  for _ = 1 to extra do
    arcs :=
      (Rng.int rng n, Rng.int rng n, Rng.in_range rng wlo whi,
       Rng.in_range rng 1 tmax)
      :: !arcs
  done;
  return (Digraph.of_arcs n !arcs)

(* Arbitrary digraph, possibly disconnected or acyclic. *)
let gen_any_graph ?(max_n = 8) ?(max_m = 16) ?(wlo = -20) ?(whi = 20)
    ?(tmax = 1) () =
  let open QCheck.Gen in
  let* n = int_range 0 max_n in
  if n = 0 then return (Digraph.of_arcs 0 [])
  else
    let* m = int_range 0 max_m in
    let* seed = int_range 0 1_000_000 in
    let rng = Rng.create seed in
    let arcs = ref [] in
    for _ = 1 to m do
      arcs :=
        (Rng.int rng n, Rng.int rng n, Rng.in_range rng wlo whi,
         Rng.in_range rng 1 tmax)
        :: !arcs
    done;
    return (Digraph.of_arcs n !arcs)

(* One graph drawn from ANY generator family — the cross-family stress
   input for determinism properties.  Sizes are kept small enough that
   a property can afford to solve each instance several times, but the
   set spans every structural extreme the generators cover: a bare
   cycle, maximal density, torus locality, layered feedback, the
   long-critical adversary, a many-SCC chain, disjoint cycles, SPRAND,
   the circuit register graphs and the low-diameter expander. *)
let gen_family () =
  let open QCheck.Gen in
  let* seed = int_range 0 1_000_000 in
  let* pick = int_range 0 9 in
  match pick with
  | 0 ->
    let+ n = int_range 1 24 in
    Families.ring ~weight:(fun i -> ((i + seed) mod 7) - 3) n
  | 1 ->
    let+ n = int_range 2 10 in
    Families.complete ~seed ~weights:(-4, 4) n
  | 2 ->
    let* rows = int_range 2 5 in
    let+ cols = int_range 2 5 in
    Families.grid_torus ~seed ~weights:(-6, 6) rows cols
  | 3 ->
    let* layers = int_range 2 4 in
    let+ width = int_range 1 4 in
    Families.layered_dataflow ~seed ~weights:(-5, 5) ~layers ~width ()
  | 4 ->
    let+ n = int_range 3 16 in
    Families.long_critical ~chord_weight:50 n
  | 5 ->
    let* components = int_range 1 4 in
    let+ size = int_range 2 6 in
    Families.many_scc ~seed ~weights:(-8, 8) ~components ~size ()
  | 6 ->
    let* len1 = int_range 1 6 in
    let+ len2 = int_range 1 6 in
    Families.two_cycles ~len1 ~w1:(seed mod 9) ~len2 ~w2:((seed mod 5) - 2)
  | 7 ->
    let* n = int_range 2 24 in
    let+ extra = int_range 0 24 in
    Sprand.generate ~seed ~weights:(-10, 10) ~transits:(1, 3) ~n
      ~m:(n + extra) ()
  | 8 ->
    let* n = int_range 4 40 in
    let+ diameter = int_range 2 4 in
    Families.low_diameter ~seed ~weights:(-6, 6) ~diameter n
  | _ ->
    let+ registers = int_range 2 24 in
    Circuit.generate ~seed ~registers ()

let print_graph g = Graph_io.to_string g

let arb_family () = QCheck.make ~print:print_graph (gen_family ())

let arb_strongly_connected ?max_n ?max_extra ?wlo ?whi ?tmax () =
  QCheck.make ~print:print_graph
    (gen_strongly_connected ?max_n ?max_extra ?wlo ?whi ?tmax ())

let arb_any_graph ?max_n ?max_m ?wlo ?whi ?tmax () =
  QCheck.make ~print:print_graph (gen_any_graph ?max_n ?max_m ?wlo ?whi ?tmax ())

let qtests cases = List.map QCheck_alcotest.to_alcotest cases

(* ------------------------------------------------------------------ *)
(* Multicore test configuration                                        *)
(* ------------------------------------------------------------------ *)

(* OCR_TEST_JOBS (CI's forced-multicore leg sets it to 8) makes every
   test that takes a job count run with that many workers instead of
   its serial default, so the chunked improvement sweep and the
   per-component fan-out face the same assertions as the serial
   paths. *)
let env_jobs =
  match Sys.getenv_opt "OCR_TEST_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt s with
    | Some j when j >= 1 -> Some j
    | _ -> None)

let default_jobs = Option.value env_jobs ~default:1

(* the job counts a determinism sweep must cover: serial, the smallest
   parallel pool, an oversubscribed one, and any distinct override *)
let jobs_sweep =
  match env_jobs with
  | Some j when not (List.mem j [ 1; 2; 8 ]) -> [ 1; 2; 8; j ]
  | _ -> [ 1; 2; 8 ]

(* The oracle value as a Ratio, for cross-checking. *)
let oracle_mean objective g =
  Option.map
    (fun (a : Oracle.answer) -> Ratio.make a.Oracle.num a.Oracle.den)
    (Oracle.cycle_mean objective g)

let oracle_ratio objective g =
  Option.map
    (fun (a : Oracle.answer) -> Ratio.make a.Oracle.num a.Oracle.den)
    (Oracle.cycle_ratio objective g)

let () =
  Alcotest.run "ocr"
    [
      ("obs", Test_obs.suite);
      ("vec", Test_vec.suite);
      ("digraph", Test_digraph.suite);
      ("traversal", Test_traversal.suite);
      ("scc", Test_scc.suite);
      ("bellman-ford", Test_bellman_ford.suite);
      ("cycles+oracle", Test_cycles.suite);
      ("expand", Test_expand.suite);
      ("io", Test_io.suite);
      ("heaps", Test_heaps.suite);
      ("ratio", Test_ratio.suite);
      ("critical", Test_critical.suite);
      ("executor", Test_executor.suite);
      ("karp-core", Test_karp_core.suite);
      ("algorithms", Test_algorithms.suite);
      ("solver", Test_solver.suite);
      ("howard-kernel", Test_howard_kernel.suite);
      ("verify", Test_verify.suite);
      ("generators", Test_gen.suite);
      ("approx", Test_approx.suite);
      ("exact", Test_exact.suite);
      ("engine", Test_engine.suite);
      ("dyn", Test_dyn.suite);
      ("cluster", Test_cluster.suite);
      ("applications", Test_apps.suite);
    ]

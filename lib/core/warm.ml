type problem = Mean | Ratio

let sp_locate = Obs.intern "warm.locate"
let sp_howard = Obs.intern "warm.howard"

let repair_policy g policy =
  let n = Digraph.n g and m = Digraph.m g in
  if Array.length policy <> n then
    invalid_arg "Warm.repair_policy: policy has wrong length";
  for u = 0 to n - 1 do
    let a = policy.(u) in
    let valid = a >= 0 && a < m && Digraph.src g a = u in
    if not valid then begin
      (* cheapest out-arc, lowest arc id on ties — [iter_out] yields
         arcs in increasing id order, so keeping the first strict
         minimum reproduces Howard's [`Cheapest_arc] choice *)
      let best = ref (-1) in
      Digraph.iter_out g u (fun b ->
          if !best < 0 || Digraph.weight g b < Digraph.weight g !best then
            best := b);
      if !best < 0 then
        invalid_arg "Warm.repair_policy: node without out-arc";
      policy.(u) <- !best
    end
  done

let solve_warm ?stats ?policy ?potentials ?scratch ?hint ?pool problem g =
  let policy =
    match policy with
    | None -> None
    | Some p ->
      repair_policy g p;
      Some p
  in
  (* Hint fast path: when the caller knows the optimum of a slightly
     different labelling of this graph, one location pass classifies it
     against the current labels.  [Optimal] proves the hint is still
     the optimum — and since the location pass at λ* (Bellman–Ford from
     the all-zero super-source, then the tight-arc cycle search) is
     exactly how a cold solve derives its witness, the answer is
     bit-identical to Howard's.  [Above] hands a strictly better cycle
     to the same exact finisher Howard ends with.  Only [Below] (the
     optimum rose past the hint) needs the full policy iteration. *)
  let tr = !Obs.enabled_flag in
  let fast =
    match hint, policy with
    | Some lambda, Some pol -> (
      let den =
        match problem with
        | Mean -> fun _ -> 1
        | Ratio ->
          (* the Howard entry points check this; the fast path must
             too, or an ill-posed instance would descend forever *)
          Critical.assert_ratio_well_posed g;
          Digraph.transit g
      in
      if tr then Trace.begin_span sp_locate;
      let located = Critical.locate ?stats ~den g lambda in
      if tr then Trace.end_span sp_locate;
      match located with
      | Critical.Optimal w -> Some (lambda, w, pol)
      | Critical.Above c ->
        let lambda', w = Critical.improve_to_optimal ?stats ~den g c in
        Some (lambda', w, pol)
      | Critical.Below -> None)
    | _ -> None
  in
  match fast with
  | Some result -> result
  | None ->
    if tr then Trace.begin_span sp_howard;
    let result =
      match problem with
      | Mean ->
        Howard.minimum_cycle_mean_warm ?stats ?policy ?potentials ?scratch
          ?pool g
      | Ratio ->
        Howard.minimum_cycle_ratio_warm ?stats ?policy ?potentials ?scratch
          ?pool g
    in
    if tr then Trace.end_span sp_howard;
    result

type t = {
  problem : problem;
  base : Digraph.t;
  weights : int array;  (* current labels, arc id -> value *)
  transits : int array;
  mutable graph : Digraph.t; (* [base] relabelled; valid unless [dirty] *)
  mutable dirty : bool;
  mutable policy : int array option;
  mutable last : Ratio.t option; (* last optimum, the next solve's hint *)
  potentials : float array; (* in/out node distances, kept across solves *)
  scratch : Howard.scratch; (* kernel workspace, reused across re-solves *)
  pool : Executor.t option; (* chunks the improvement sweep when present *)
}

let create ?(problem = Mean) ?pool g =
  if Digraph.m g = 0 then invalid_arg "Warm.create: graph has no arcs";
  {
    problem;
    base = g;
    weights = Array.init (Digraph.m g) (Digraph.weight g);
    transits = Array.init (Digraph.m g) (Digraph.transit g);
    graph = g;
    dirty = false;
    policy = None;
    last = None;
    potentials = Array.make (Digraph.n g) 0.0;
    scratch = Howard.create_scratch ();
    pool;
  }

let problem t = t.problem

let refresh t =
  if t.dirty then begin
    let w = t.weights and tt = t.transits in
    t.graph <-
      Digraph.map_transits (Digraph.map_weights t.base (fun a -> w.(a)))
        (fun a -> tt.(a));
    t.dirty <- false
  end

let graph t =
  refresh t;
  t.graph

let set_weight t a w =
  if a < 0 || a >= Array.length t.weights then
    invalid_arg "Warm.set_weight: arc out of range";
  if t.weights.(a) <> w then begin
    t.weights.(a) <- w;
    t.dirty <- true
  end

let set_transit t a tt =
  if a < 0 || a >= Array.length t.transits then
    invalid_arg "Warm.set_transit: arc out of range";
  if tt < 0 then invalid_arg "Warm.set_transit: negative transit time";
  if t.transits.(a) <> tt then begin
    t.transits.(a) <- tt;
    t.dirty <- true
  end

let solve ?stats t =
  refresh t;
  let lambda, cycle, policy =
    solve_warm ?stats ?policy:t.policy ~potentials:t.potentials
      ~scratch:t.scratch ?hint:t.last ?pool:t.pool t.problem t.graph
  in
  t.policy <- Some policy;
  t.last <- Some lambda;
  (lambda, cycle)

(** Karp2: the space-efficient two-pass variant of Karp's algorithm
    (suggested by S. Gaubert; §2.2 of the paper).

    Pass 1 computes the final row [D_n] keeping only two rolling rows;
    pass 2 recomputes every row and folds the Karp fraction on the fly.
    Θ(n) space instead of Θ(n²), at roughly twice the running time —
    the 2× slowdown is one of the measurements reproduced in §4.4.

    Precondition: strongly connected input with at least one arc. *)

val minimum_cycle_mean :
  ?stats:Stats.t -> ?budget:Budget.t -> Digraph.t -> Ratio.t * int list
(** [budget] is ticked once per relaxation pass (so up to [2n − 1]
    ticks over the two passes).
    @raise Budget.Exceeded when the budget runs out mid-solve. *)

let any_cycle g =
  match Critical.cycle_in g (fun _ -> true) with
  | Some c -> c
  | None -> invalid_arg "Oa: input graph is acyclic"

(* Scaling search: bisection over λ in which node prices survive from
   phase to phase.  At each probe λ=mid we first look for a cycle in
   the admissible graph (arcs whose reduced cost under the prices is
   non-positive) — a sound "λ* <= mid" certificate obtained in O(m) —
   and only run the full Bellman-Ford oracle when the quick test is
   inconclusive. *)
let solve ?stats ~den ~lo ~hi ~epsilon g =
  if Digraph.m g = 0 then invalid_arg "Oa: graph has no arcs";
  let n = Digraph.n g in
  let prices = Array.make n 0.0 in
  let lo = ref lo and hi = ref hi in
  let candidate = ref None in
  let on_relax =
    Option.map (fun s () -> s.Stats.relaxations <- s.Stats.relaxations + 1) stats
  in
  while !hi -. !lo > epsilon do
    (match stats with
    | Some s -> s.Stats.iterations <- s.Stats.iterations + 1
    | None -> ());
    let mid = 0.5 *. (!lo +. !hi) in
    let reduced a =
      float_of_int (Digraph.weight g a)
      -. (mid *. float_of_int (den a))
      +. prices.(Digraph.src g a)
      -. prices.(Digraph.dst g a)
    in
    let admissible a = reduced a <= 0.0 in
    (match Critical.cycle_in g admissible with
    | Some cycle ->
      (* all reduced costs on the cycle are <= 0 and prices telescope,
         so the cycle's ratio is <= mid *)
      candidate := Some cycle;
      hi := mid
    | None ->
      (match stats with
      | Some s -> s.Stats.oracle_calls <- s.Stats.oracle_calls + 1
      | None -> ());
      let cost a =
        float_of_int (Digraph.weight g a) -. (mid *. float_of_int (den a))
      in
      (match Bellman_ford.run_float ?on_relax ~cost g with
      | Error cycle ->
        candidate := Some cycle;
        hi := mid
      | Ok pot ->
        (* refresh the prices with the feasible potentials *)
        Array.blit pot 0 prices 0 n;
        lo := mid))
  done;
  match !candidate with Some c -> c | None -> any_cycle g

let default_epsilon g =
  let n = float_of_int (max 2 (Digraph.n g)) in
  1.0 /. (2.0 *. n *. n)

let bounds_mean g =
  (float_of_int (Digraph.min_weight g), float_of_int (Digraph.max_weight g))

let bounds_ratio g =
  let maxabs =
    Digraph.fold_arcs g (fun acc a -> max acc (abs (Digraph.weight g a))) 1
  in
  let b = float_of_int ((Digraph.n g * maxabs) + 1) in
  (-.b, b)

let run ?stats ~den ~bounds ~exact ?epsilon g =
  let epsilon = match epsilon with Some e -> e | None -> default_epsilon g in
  let lo, hi = bounds g in
  let cycle = solve ?stats ~den ~lo ~hi ~epsilon g in
  if exact then Critical.improve_to_optimal ?stats ~den g cycle
  else (Critical.ratio_of_cycle g ~den cycle, cycle)

let mean_den _ = 1

let oa1_minimum_cycle_mean ?stats ?epsilon g =
  run ?stats ~den:mean_den ~bounds:bounds_mean ~exact:false ?epsilon g

let oa2_minimum_cycle_mean ?stats ?epsilon g =
  run ?stats ~den:mean_den ~bounds:bounds_mean ~exact:true ?epsilon g

let oa1_minimum_cycle_ratio ?stats ?epsilon g =
  Critical.assert_ratio_well_posed g;
  run ?stats ~den:(Digraph.transit g) ~bounds:bounds_ratio ~exact:false ?epsilon g

let oa2_minimum_cycle_ratio ?stats ?epsilon g =
  Critical.assert_ratio_well_posed g;
  run ?stats ~den:(Digraph.transit g) ~bounds:bounds_ratio ~exact:true ?epsilon g

(* A thin veneer over the shared warm-start core: every operation
   delegates to Warm so this path and the dynamic session subsystem
   (lib/dyn/) cannot diverge. *)

type t = Warm.t

let create ?(problem = Warm.Mean) ?pool g =
  if Digraph.m g = 0 then invalid_arg "Incremental.create: graph has no arcs";
  Warm.create ~problem ?pool g

let graph = Warm.graph

let set_weight t a w =
  (* re-raise under this module's name for error-message stability *)
  try Warm.set_weight t a w
  with Invalid_argument _ ->
    invalid_arg "Incremental.set_weight: arc out of range"

let set_transit t a tt =
  if tt < 0 then invalid_arg "Incremental.set_transit: negative transit time";
  try Warm.set_transit t a tt
  with Invalid_argument _ ->
    invalid_arg "Incremental.set_transit: arc out of range"

let solve = Warm.solve

type t = {
  mutable graph : Digraph.t;
  mutable weights : int array; (* current weights, arc id -> w *)
  mutable policy : int array option;
  mutable dirty : bool; (* weights changed since [graph] was built *)
  scratch : Howard.scratch; (* kernel workspace, reused across re-solves *)
}

let create g =
  if Digraph.m g = 0 then invalid_arg "Incremental.create: graph has no arcs";
  {
    graph = g;
    weights = Array.init (Digraph.m g) (Digraph.weight g);
    policy = None;
    dirty = false;
    scratch = Howard.create_scratch ();
  }

let refresh t =
  if t.dirty then begin
    let w = t.weights in
    t.graph <- Digraph.map_weights t.graph (fun a -> w.(a));
    t.dirty <- false
  end

let graph t =
  refresh t;
  t.graph

let set_weight t a w =
  if a < 0 || a >= Array.length t.weights then
    invalid_arg "Incremental.set_weight: arc out of range";
  if t.weights.(a) <> w then begin
    t.weights.(a) <- w;
    t.dirty <- true
  end

let solve ?stats t =
  refresh t;
  let lambda, cycle, policy =
    Howard.minimum_cycle_mean_warm ?stats ?policy:t.policy ~scratch:t.scratch
      t.graph
  in
  t.policy <- Some policy;
  (lambda, cycle)

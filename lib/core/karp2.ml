let inf = Karp_core.inf

(* One rolling relaxation step: fills [cur] from [prev]. *)
let step ?stats g prev cur =
  Array.fill cur 0 (Array.length cur) inf;
  let bump =
    match stats with
    | Some s -> fun () -> s.Stats.arcs_visited <- s.Stats.arcs_visited + 1
    | None -> fun () -> ()
  in
  Digraph.iter_arcs g (fun a ->
      bump ();
      let du = prev.(Digraph.src g a) in
      if du < inf then begin
        let v = Digraph.dst g a in
        let cand = du + Digraph.weight g a in
        if cand < cur.(v) then cur.(v) <- cand
      end)

let minimum_cycle_mean ?stats ?budget g =
  if Digraph.m g = 0 then invalid_arg "Karp2: graph has no arcs";
  let tick () = match budget with Some b -> Budget.tick b | None -> () in
  let n = Digraph.n g in
  let init () =
    let row = Array.make n inf in
    row.(0) <- 0;
    row
  in
  (* Pass 1: obtain D_n with two rolling rows. *)
  let prev = ref (init ()) and cur = ref (Array.make n inf) in
  for _ = 1 to n do
    tick ();
    step ?stats g !prev !cur;
    let t = !prev in
    prev := !cur;
    cur := t
  done;
  let d_n = Array.copy !prev in
  (* Pass 2: recompute D_k and fold max_k (D_n - D_k) / (n - k). *)
  let max_num = Array.make n 0 and max_den = Array.make n 0 in
  let fold k row =
    for v = 0 to n - 1 do
      if row.(v) < inf && d_n.(v) < inf then begin
        let num = d_n.(v) - row.(v) and den = n - k in
        if max_den.(v) = 0 || num * max_den.(v) > max_num.(v) * den then begin
          max_num.(v) <- num;
          max_den.(v) <- den
        end
      end
    done
  in
  let prev = ref (init ()) and cur = ref (Array.make n inf) in
  fold 0 !prev;
  for k = 1 to n - 1 do
    tick ();
    step ?stats g !prev !cur;
    fold k !cur;
    let t = !prev in
    prev := !cur;
    cur := t
  done;
  (match stats with Some s -> s.Stats.level <- n | None -> ());
  let best_num = ref 0 and best_den = ref 0 in
  for v = 0 to n - 1 do
    if max_den.(v) > 0
       && (!best_den = 0 || max_num.(v) * !best_den < !best_num * max_den.(v))
    then begin
      best_num := max_num.(v);
      best_den := max_den.(v)
    end
  done;
  if !best_den = 0 then invalid_arg "Karp2: no finite candidate";
  let lambda = Ratio.make !best_num !best_den in
  (lambda, Karp_core.witness ?stats g lambda)

(** The ten algorithms of the study, behind one uniform interface.

    Every entry point assumes a strongly connected input with at least
    one arc (use {!Solver} for arbitrary graphs) and returns the exact
    optimum together with a witness cycle. *)

type algorithm =
  | Burns
  | Ko
  | Yto
  | Howard
  | Ho
  | Karp
  | Dg
  | Lawler
  | Karp2
  | Oa1
  | Oa2

val all : algorithm list
(** In the column order of the paper's Table 2 (plus OA2). *)

val name : algorithm -> string
(** Lower-case identifier, e.g. ["yto"]. *)

val display_name : algorithm -> string
(** As printed in the paper, e.g. ["YTO"], ["Howard"]. *)

val of_name : string -> algorithm option
(** Case-insensitive inverse of {!name} / {!display_name}. *)

val native_ratio : algorithm -> bool
(** Whether the algorithm solves the cost-to-time ratio problem
    directly (Burns, Howard, Lawler, OA, KO, YTO); the Karp family
    goes through the Hartmann–Orlin transit-time expansion
    ({!Expand}). *)

val supports_budget : algorithm -> bool
(** Whether the algorithm honors a mid-solve {!Budget} (Howard per
    policy iteration, HO per table level, Karp2 per relaxation pass).
    For the others a supplied budget is only consulted between
    strongly connected components by {!Solver}. *)

val minimum_cycle_mean :
  algorithm -> ?stats:Stats.t -> ?budget:Budget.t -> ?pool:Executor.t ->
  Digraph.t -> Ratio.t * int list
(** [pool] parallelizes the intra-SCC improvement sweep of {!Howard}
    (bit-identical answers and stats with or without it); the other
    algorithms ignore it.
    @raise Budget.Exceeded from budget-supporting algorithms when the
    supplied budget runs out mid-solve. *)

val minimum_cycle_ratio :
  algorithm -> ?stats:Stats.t -> ?budget:Budget.t -> ?pool:Executor.t ->
  Digraph.t -> Ratio.t * int list
(** For non-[native_ratio] algorithms this expands transit times first,
    so it requires every transit time to be a positive integer; native
    algorithms only require every {e cycle} to have positive transit. *)

(** The ten algorithms of the study, behind one uniform interface.

    Every entry point assumes a strongly connected input with at least
    one arc (use {!Solver} for arbitrary graphs) and returns the exact
    optimum together with a witness cycle. *)

type algorithm =
  | Burns
  | Ko
  | Yto
  | Howard
  | Ho
  | Karp
  | Dg
  | Lawler
  | Karp2
  | Oa1
  | Oa2

val all : algorithm list
(** In the column order of the paper's Table 2 (plus OA2). *)

val name : algorithm -> string
(** Lower-case identifier, e.g. ["yto"]. *)

val display_name : algorithm -> string
(** As printed in the paper, e.g. ["YTO"], ["Howard"]. *)

val of_name : string -> algorithm option
(** Case-insensitive inverse of {!name} / {!display_name}. *)

(** {1 Approximation lanes}

    The exact algorithms above are a closed set; approximation lanes —
    solvers that return a certified interval around λ* instead of the
    exact value — register themselves here at module-initialization
    time (the [ocr_approx] library registers ["approx"]).  The hook
    keeps the core free of a dependency on the lane libraries while
    letting the engine, the CLI and the request parser discover lanes
    by name. *)

type lane_result = {
  lane_lo : Ratio.t;     (** certified: [lane_lo <= λ*] *)
  lane_hi : Ratio.t;     (** exact value of [lane_witness]: [λ* <= lane_hi] *)
  lane_witness : int list;  (** cycle attaining [lane_hi], arc ids in path order *)
  lane_tests : int;      (** binary-search λ-tests performed *)
  lane_rounds : int;     (** inner value-iteration rounds performed *)
  lane_converged : bool; (** interval width reached the ε target *)
}

type lane_solver =
  ?stats:Stats.t -> ?budget:Budget.t -> ?pool:Executor.t -> eps:float ->
  Digraph.t -> lane_result
(** Same contract as the exact entry points: strongly connected input
    with at least one arc.  [eps] is relative to the instance's weight
    scale; a partial (budget-interrupted) result is still a sound
    interval, with [lane_converged = false]. *)

type lane = {
  lane_name : string;
  lane_mean : lane_solver;
  lane_ratio : lane_solver;
}

val register_lane : lane -> unit
(** Idempotent by name (last registration wins). *)

val lane : string -> lane option
(** Case-insensitive lookup. *)

val lane_names : unit -> string list
(** Registered lane names, sorted. *)

(** {1 Exact lanes}

    The same self-registration hook for {e exact} alternative solvers:
    lanes that return λ* itself (with a witness cycle) through a
    different computation than the table's algorithms, usable as
    independent verification.  {!Stern_brocot} registers ["exact"] —
    the mediant-search lane converging on λ* through exact integer
    negative-cycle probes. *)

type exact_solver =
  ?stats:Stats.t -> ?budget:Budget.t -> ?pool:Executor.t ->
  Digraph.t -> Ratio.t * int list
(** Same contract as {!minimum_cycle_mean}/{!minimum_cycle_ratio}:
    strongly connected input with at least one arc, exact optimum plus
    witness cycle.
    @raise Budget.Exceeded when the supplied budget runs out. *)

type exact_lane = {
  exact_name : string;
  exact_mean : exact_solver;
  exact_ratio : exact_solver;
}

val register_exact_lane : exact_lane -> unit
(** Idempotent by name (last registration wins). *)

val exact_lane : string -> exact_lane option
(** Case-insensitive lookup. *)

val exact_lane_names : unit -> string list
(** Registered exact-lane names, sorted. *)

val native_ratio : algorithm -> bool
(** Whether the algorithm solves the cost-to-time ratio problem
    directly (Burns, Howard, Lawler, OA, KO, YTO); the Karp family
    goes through the Hartmann–Orlin transit-time expansion
    ({!Expand}). *)

val supports_budget : algorithm -> bool
(** Whether the algorithm honors a mid-solve {!Budget} (Howard per
    policy iteration, HO per table level, Karp2 per relaxation pass).
    For the others a supplied budget is only consulted between
    strongly connected components by {!Solver}. *)

val minimum_cycle_mean :
  algorithm -> ?stats:Stats.t -> ?budget:Budget.t -> ?pool:Executor.t ->
  Digraph.t -> Ratio.t * int list
(** [pool] parallelizes the intra-SCC improvement sweep of {!Howard}
    (bit-identical answers and stats with or without it); the other
    algorithms ignore it.
    @raise Budget.Exceeded from budget-supporting algorithms when the
    supplied budget runs out mid-solve. *)

val minimum_cycle_ratio :
  algorithm -> ?stats:Stats.t -> ?budget:Budget.t -> ?pool:Executor.t ->
  Digraph.t -> Ratio.t * int list
(** For non-[native_ratio] algorithms this expands transit times first,
    so it requires every transit time to be a positive integer; native
    algorithms only require every {e cycle} to have positive transit. *)

let minimum_cycle_mean ?stats g =
  if Digraph.m g = 0 then invalid_arg "Karp: graph has no arcs";
  let n = Digraph.n g in
  let d = Karp_core.alloc_table g in
  for k = 1 to n do
    Karp_core.relax_level ?stats g d k
  done;
  (match stats with Some s -> s.Stats.level <- n | None -> ());
  let lambda = Karp_core.lambda_of_table g d in
  (lambda, Karp_core.witness ?stats g lambda)

let minimum_cycle_mean ?stats ?heap g =
  Parametric.minimum_cycle_mean ?stats ?heap ~variant:`Yto g

let minimum_cycle_ratio ?stats ?heap g =
  Parametric.minimum_cycle_ratio ?stats ?heap ~variant:`Yto g

type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* [min_int] has no representable negation or absolute value, so the
   den>0 / gcd>0 normalization below would silently produce a negative
   denominator ([- min_int = min_int]).  Such magnitudes are far outside
   the solver's documented exact-arithmetic range (|w|·D² < 2⁵⁹); fail
   loudly instead of constructing an unnormalized value. *)
let make num den =
  if den = 0 then raise Division_by_zero;
  if num = min_int || den = min_int then
    invalid_arg "Ratio.make: magnitude exceeds the exact native-int range";
  let num, den = if den < 0 then (-num, -den) else (num, den) in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int k = { num = k; den = 1 }
let zero = of_int 0
let one = of_int 1
let num t = t.num
let den t = t.den

let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = compare a b = 0
let lt a b = compare a b < 0
let leq a b = compare a b <= 0
let min a b = if leq a b then a else b
let max a b = if leq a b then b else a

let neg a = { num = -a.num; den = a.den }
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = add a (neg b)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if b.num = 0 then raise Division_by_zero;
  make (a.num * b.den) (a.den * b.num)

let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a

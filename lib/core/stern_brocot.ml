(* Exact optimum by mediant search on the Stern–Brocot tree.

   λ* is a rational with bounded denominator — at most n for cycle
   means, at most the total transit time for cost-to-time ratios — and
   every probe "is λ below, at, or above the optimum?" is one exact
   integer negative-cycle test (Critical.locate: Bellman–Ford over the
   re-costed graph plus a tight-arc cycle search).  The search walks
   the Stern–Brocot tree: it keeps an interval (L, R] containing λ*
   whose endpoints are unimodular (bc − ad = 1, so every interior
   rational has denominator ≥ den L + den R), probes the mediant, and
   descends left or right.  Two accelerations keep the walk short:

   - runs in the same direction take doubling k-fold mediant steps
     against the fixed opposite endpoint (the continued-fraction
     expansion of λ* in O(log) probes per term) — k-fold steps toward
     R preserve unimodularity, so only single steps ever move R;
   - every Above verdict returns a witness cycle whose exact ratio
     becomes the new attained upper bound [hi]; when the mediant
     reaches [hi], the probe targets [hi] itself, so the search also
     enjoys the witness-descent convergence of the exact finisher.

   Once den L + den R exceeds the denominator bound, no rational of
   bounded denominator is left strictly inside the interval, so λ*
   must equal the attained bound [hi] — the closing probe at [hi]
   returns the Optimal witness.  Everything is integer arithmetic;
   no float ever enters the answer. *)

let tick stats budget =
  (match budget with Some b -> Budget.tick b | None -> ());
  match stats with
  | Some s -> s.Stats.iterations <- s.Stats.iterations + 1
  | None -> ()

let search ?stats ?budget ~den ~lower_int ~dmax g =
  let c0 =
    match Critical.cycle_in g (fun _ -> true) with
    | Some c -> c
    | None -> invalid_arg "Stern_brocot: input graph is acyclic"
  in
  let hi = ref (Critical.ratio_of_cycle g ~den c0) in
  (* L = la/lb < λ* (strict, from the a-priori bound), R = rc/rd ≥ λ*;
     1/0 is the tree's right sentinel and keeps (L, R) unimodular *)
  let la = ref (lower_int - 1) and lb = ref 1 in
  let rc = ref 1 and rd = ref 0 in
  let step = ref 1 in
  let result = ref None in
  let probe q =
    tick stats budget;
    Critical.locate ?stats ~den g q
  in
  (* probe the attained bound itself: λ* ≤ hi, so Below is impossible —
     either hi is optimal or the witness descends strictly *)
  let probe_hi () =
    step := 1;
    match probe !hi with
    | Critical.Optimal c -> result := Some (!hi, c)
    | Critical.Above c -> hi := Critical.ratio_of_cycle g ~den c
    | Critical.Below -> assert false
  in
  while !result = None do
    if !lb + !rd > dmax then
      (* interior rationals now have denominator > dmax ≥ den λ* *)
      probe_hi ()
    else begin
      (* k-fold mediant toward R, k clamped against the denominator
         bound and native-int overflow *)
      let k =
        let k = !step in
        let k = if !rd > 0 then min k (max 1 (((2 * dmax) / !rd) + 1)) else k in
        let cap v = if v = 0 then k else max 1 (max_int / 8 / v) in
        min k (min (cap (abs !rc)) (cap !rd))
      in
      let mn = !la + (k * !rc) and md = !lb + (k * !rd) in
      let m = Ratio.make mn md in
      if Ratio.leq !hi m then probe_hi ()
      else
        match probe m with
        | Critical.Optimal c -> result := Some (m, c)
        | Critical.Below ->
          (* λ* > m; k-fold steps against the fixed R stay unimodular *)
          la := mn;
          lb := md;
          step := 2 * k
        | Critical.Above c ->
          (* harvest the witness; only a single (k = 1) mediant may
             move R — a k-fold jump would break unimodularity *)
          if k = 1 then begin
            rc := mn;
            rd := md
          end;
          step := 1;
          let r = Critical.ratio_of_cycle g ~den c in
          if Ratio.lt r !hi then hi := r
    end
  done;
  Option.get !result

let minimum_cycle_mean ?stats ?budget ?pool g =
  ignore pool;
  if Digraph.m g = 0 then invalid_arg "Stern_brocot: graph has no arcs";
  search ?stats ?budget
    ~den:(fun _ -> 1)
    ~lower_int:(Digraph.min_weight g)
    ~dmax:(max 1 (Digraph.n g))
    g

let minimum_cycle_ratio ?stats ?budget ?pool g =
  ignore pool;
  if Digraph.m g = 0 then invalid_arg "Stern_brocot: graph has no arcs";
  Critical.assert_ratio_well_posed g;
  let maxabs =
    Digraph.fold_arcs g (fun acc a -> max acc (abs (Digraph.weight g a))) 1
  in
  search ?stats ?budget
    ~den:(Digraph.transit g)
    ~lower_int:(-((Digraph.n g * maxabs) + 1))
    ~dmax:(max 1 (Digraph.total_transit g))
    g

let () =
  Registry.register_exact_lane
    {
      Registry.exact_name = "exact";
      exact_mean = minimum_cycle_mean;
      exact_ratio = minimum_cycle_ratio;
    }

let inf = Karp_core.inf

let minimum_cycle_mean ?stats g =
  if Digraph.m g = 0 then invalid_arg "Dg: graph has no arcs";
  let n = Digraph.n g in
  let d = Karp_core.alloc_table g in
  let bump =
    match stats with
    | Some s -> fun () -> s.Stats.arcs_visited <- s.Stats.arcs_visited + 1
    | None -> fun () -> ()
  in
  let frontier = ref (Vec.of_list [ 0 ]) in
  for k = 1 to n do
    let prev = (k - 1) * n and cur = k * n in
    let next = Vec.create () in
    Vec.iter
      (fun u ->
        let du = d.(prev + u) in
        Digraph.iter_out g u (fun a ->
            bump ();
            let v = Digraph.dst g a in
            let cand = du + Digraph.weight g a in
            if cand < d.(cur + v) then begin
              if d.(cur + v) = inf then Vec.push next v;
              d.(cur + v) <- cand
            end))
      !frontier;
    frontier := next
  done;
  (match stats with Some s -> s.Stats.level <- n | None -> ());
  let lambda = Karp_core.lambda_of_table g d in
  (lambda, Karp_core.witness ?stats g lambda)

(* One frontier-driven rolling step: fills [cur] from [prev], returning
   the next frontier.  Shared by both passes of the low-space form. *)
let step ?stats g prev cur frontier =
  Array.fill cur 0 (Array.length cur) inf;
  let bump =
    match stats with
    | Some s -> fun () -> s.Stats.arcs_visited <- s.Stats.arcs_visited + 1
    | None -> fun () -> ()
  in
  let next = Vec.create () in
  Vec.iter
    (fun u ->
      let du = prev.(u) in
      Digraph.iter_out g u (fun a ->
          bump ();
          let v = Digraph.dst g a in
          let cand = du + Digraph.weight g a in
          if cand < cur.(v) then begin
            if cur.(v) = inf then Vec.push next v;
            cur.(v) <- cand
          end))
    frontier;
  next

let minimum_cycle_mean_low_space ?stats g =
  if Digraph.m g = 0 then invalid_arg "Dg: graph has no arcs";
  let n = Digraph.n g in
  let init () =
    let row = Array.make n inf in
    row.(0) <- 0;
    (row, Vec.of_list [ 0 ])
  in
  (* pass 1: D_n via rolling rows *)
  let row, frontier = init () in
  let prev = ref row and cur = ref (Array.make n inf) and front = ref frontier in
  for _ = 1 to n do
    front := step ?stats g !prev !cur !front;
    let t = !prev in
    prev := !cur;
    cur := t
  done;
  let d_n = Array.copy !prev in
  (* pass 2: recompute D_k, folding Karp's fraction on the fly *)
  let max_num = Array.make n 0 and max_den = Array.make n 0 in
  let fold k row =
    for v = 0 to n - 1 do
      if row.(v) < inf && d_n.(v) < inf then begin
        let num = d_n.(v) - row.(v) and den = n - k in
        if max_den.(v) = 0 || num * max_den.(v) > max_num.(v) * den then begin
          max_num.(v) <- num;
          max_den.(v) <- den
        end
      end
    done
  in
  let row, frontier = init () in
  let prev = ref row and cur = ref (Array.make n inf) and front = ref frontier in
  fold 0 !prev;
  for k = 1 to n - 1 do
    front := step ?stats g !prev !cur !front;
    fold k !cur;
    let t = !prev in
    prev := !cur;
    cur := t
  done;
  (match stats with Some s -> s.Stats.level <- n | None -> ());
  let best_num = ref 0 and best_den = ref 0 in
  for v = 0 to n - 1 do
    if max_den.(v) > 0
       && (!best_den = 0 || max_num.(v) * !best_den < !best_num * max_den.(v))
    then begin
      best_num := max_num.(v);
      best_den := max_den.(v)
    end
  done;
  if !best_den = 0 then invalid_arg "Dg: no finite candidate";
  let lambda = Ratio.make !best_num !best_den in
  (lambda, Karp_core.witness ?stats g lambda)

(** Howard's algorithm (policy iteration), in the improved form of
    Figure 1 of the paper (after Cochet-Terrasson, Cohen, Gaubert,
    McGettrick & Quadrat, 1997).

    Maintains a {e policy} — one out-arc per node — whose functional
    graph is evaluated each iteration: the best policy cycle gives the
    current λ, node distances are propagated backwards from that cycle,
    and every arc is then tested for an improvement.  The only known
    worst-case bounds are pseudopolynomial (O(Nm) for N the product of
    out-degrees; the paper adds O(nmα) and O(n²m(w_max−w_min)/ε)), yet
    it is by far the fastest algorithm in the study.

    The steady-state loop is a zero-allocation kernel: the node
    distances, the policy-reverse adjacency (counting-sorted each
    iteration), the backward-BFS ring, and the sweep winner tables all
    live in unboxed {!Bigarray.Array1} scratch — off the OCaml heap,
    invisible to the GC, and shareable across domains without copying —
    and the candidate cycle in reusable int arrays; lists are
    materialized only on return (see docs/PERF.md for the layout and
    the domain-sharing safety argument).

    The per-arc improvement test is chunkable: every entry point takes
    an optional executor [pool], and with a multi-worker pool on a
    large enough graph the arc range is split into chunks swept
    concurrently, one scratch winner table per chunk.  Candidates are
    evaluated against the node distances frozen at the start of the
    sweep, and the per-chunk winners are merged deterministically —
    smallest candidate first, lowest arc id on ties — so the sweep's
    outcome (policy, distances, operation counts, and therefore the
    whole solve) is bit-identical for every chunk and job count,
    including the serial path.  This is what makes [--jobs] pay off on
    a single giant SCC, where the per-component fan-out of
    {!Solver.solve} has nothing to parallelize (bench E14).

    The iteration runs in floating point exactly as published; on
    convergence the best policy cycle is handed to
    {!Critical.improve_to_optimal}, so the returned value is the exact
    optimum with a witness cycle regardless of rounding.

    Preconditions: strongly connected input with at least one arc; for
    the ratio form, every cycle must have positive total transit
    time. *)

type init = [ `Cheapest_arc | `First_arc | `Random of int ]
(** Initial policy choice: the improved initialization of Figure 1
    (cheapest out-arc, the default), the naive first-out-arc policy, or
    a seeded random policy (unbiased per-node arc draw) — ablated in
    bench E9. *)

type scratch
(** The kernel's preallocated workspace.  Passing the same scratch to
    repeated solves (the warm-start/incremental path, or any solve
    loop) skips re-allocating the per-node arrays; it grows
    monotonically to the largest instance seen.  A scratch must not be
    shared between concurrently running solves (one per domain). *)

val create_scratch : unit -> scratch
(** An empty workspace; arrays are sized lazily on first use. *)

val minimum_cycle_mean :
  ?stats:Stats.t -> ?budget:Budget.t -> ?epsilon:float -> ?init:init ->
  ?scratch:scratch -> ?pool:Executor.t -> ?sweep_min_arcs:int ->
  Digraph.t -> Ratio.t * int list
(** [epsilon] is the improvement threshold of Figure 1 (relative to the
    weight scale; default [1e-9]).  [budget] is ticked once per policy
    iteration (on the coordinating domain only — chunk tasks never
    touch it); see {!Budget}.

    [pool] parallelizes the improvement sweep across the executor's
    workers; [sweep_min_arcs] is the arcs-per-chunk grain of the split
    (default {!Executor.chunk_arcs}[ ()], i.e. [OCR_CHUNK_ARCS] or
    4096): the sweep uses [min jobs (m / grain)] chunks, so a graph
    under twice the grain stays serial — below that the fan-out
    overhead outweighs the sweep (see docs/PERF.md, "Granularity").
    The answer, and every counter in [stats], is bit-identical with and
    without a pool.  The pool may be shared with the per-component
    fan-out of {!Solver.solve}: its help-first waiting makes the
    nesting deadlock-free.
    @raise Budget.Exceeded when the budget runs out mid-solve. *)

val minimum_cycle_ratio :
  ?stats:Stats.t -> ?budget:Budget.t -> ?epsilon:float -> ?init:init ->
  ?scratch:scratch -> ?pool:Executor.t -> ?sweep_min_arcs:int ->
  Digraph.t -> Ratio.t * int list
(** Cost-to-time ratio form: policy values use [w − λ·t]. *)

val minimum_cycle_mean_warm :
  ?stats:Stats.t -> ?epsilon:float -> ?policy:int array ->
  ?potentials:float array -> ?scratch:scratch -> ?pool:Executor.t ->
  ?sweep_min_arcs:int -> Digraph.t -> Ratio.t * int list * int array
(** Warm-start entry point for repeated re-solves (the paper's §1.3
    notes the applications "require that they be run many times"): the
    optional [policy] (one out-arc id per node, e.g. the third
    component of a previous call's result) seeds the iteration, which
    typically converges in one or two sweeps after a small weight
    change.  [potentials] is an in/out buffer of one distance per node:
    on entry (with [policy]) it seeds the node distances — without it a
    re-solve falls back to raw arc weights for nodes behind other
    policy cycles and re-derives everything — and on return it holds
    the final distances for the next call.  Returns the final policy
    along with the optimum.  Used by {!Warm} (and through it
    {!Incremental}), which also threads one [scratch] through every
    re-solve so repeat solves allocate no fresh workspace.
    @raise Invalid_argument if [policy] or [potentials] has the wrong
    length, or [policy] names an arc that does not leave its node. *)

val minimum_cycle_ratio_warm :
  ?stats:Stats.t -> ?epsilon:float -> ?policy:int array ->
  ?potentials:float array -> ?scratch:scratch -> ?pool:Executor.t ->
  ?sweep_min_arcs:int -> Digraph.t -> Ratio.t * int list * int array
(** Cost-to-time ratio form of {!minimum_cycle_mean_warm}.
    @raise Invalid_argument on zero-total-transit cycles or an invalid
    [policy] (see {!minimum_cycle_mean_warm}; {!Warm.solve} repairs
    stale policies instead of raising). *)

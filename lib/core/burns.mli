(** Burns' algorithm (Caltech PhD thesis, 1991), the primal–dual method
    on the linear program [max λ s.t. d(v) − d(u) ≤ w(u,v) − λ·t(u,v)].

    Each iteration rebuilds the {e critical graph} of tight constraints
    from scratch; if it contains a cycle the current λ is optimal,
    otherwise the dual step lengths ξ (longest tight-path counts) give
    the largest feasible increase θ of λ, with
    [d ← d + θ·ξ].  Identical to the Cuninghame-Green & Yixun (1996)
    algorithm, as the paper observes.

    As with {!Howard}, the iteration runs in floating point and the
    final candidate cycle is handed to {!Critical.improve_to_optimal},
    so results are exact.

    Preconditions: strongly connected input with at least one arc; for
    the ratio form every cycle must have positive total transit time. *)

val minimum_cycle_mean :
  ?stats:Stats.t -> ?epsilon:float -> Digraph.t -> Ratio.t * int list

val minimum_cycle_ratio :
  ?stats:Stats.t -> ?epsilon:float -> Digraph.t -> Ratio.t * int list

(** DG: the Dasdan–Gupta breadth-first unfolding of Karp's recurrence
    (IEEE TCAD 1998; §2.2 of the paper).

    Instead of scanning every arc at every level, only the out-arcs of
    nodes actually reached at the previous level are visited, so the
    work equals the size of the "unfolded" graph: between Θ(m) (e.g. a
    bare cycle, where the frontier has one node per level) and O(nm).
    The [arcs_visited] counter exposes the difference against Karp
    (§4.4).  Same Θ(n²) space as Karp.

    Precondition: strongly connected input with at least one arc. *)

val minimum_cycle_mean : ?stats:Stats.t -> Digraph.t -> Ratio.t * int list

val minimum_cycle_mean_low_space :
  ?stats:Stats.t -> Digraph.t -> Ratio.t * int list
(** The Karp2 space trick applied to DG, as §4.4 of the paper suggests
    ("the space efficiency of the Karp2 algorithm is directly
    applicable to the DG and HO algorithms"): two frontier-driven
    passes over rolling rows, Θ(n) space, roughly twice the work. *)

(** Repeated minimum-cycle-mean / cycle-ratio queries under arc-label
    updates, on one strongly connected graph.

    The paper's motivation (§1.3): "finding more efficient
    implementation of these algorithms is very important because their
    applications require that they be run many times" — retiming loops,
    rate optimization, and clock scheduling all re-solve after small
    edits.  This module keeps Howard's last optimal policy and
    warm-starts from it: after a local label change the policy is
    usually still optimal or one improvement sweep away, so a re-solve
    costs one or two O(m) iterations instead of a cold start.

    Results are identical to a cold solve (every answer goes through
    the exact finisher); only the work differs.

    {b Deprecation note.}  This module is kept as a stable, minimal
    front for the strongly-connected label-update case; it is now a
    thin delegation layer over {!Warm}, which also backs the dynamic
    session subsystem [Dyn] (`lib/dyn/`).  New code that needs
    structural updates ([add_arc]/[remove_arc]), non-strongly-connected
    inputs, epoching, or journals should use [Dyn] directly. *)

type t

val create : ?problem:Warm.problem -> ?pool:Executor.t -> Digraph.t -> t
(** The graph must be strongly connected with at least one arc (as for
    the raw algorithms; use {!Solver} + fresh solves, or [Dyn],
    otherwise).  [problem] defaults to [Warm.Mean]; pass [Warm.Ratio]
    for cost-to-time ratio queries.  [pool] chunks each re-solve's
    improvement sweep across the executor's workers (caller-owned;
    answers are bit-identical with or without it). *)

val graph : t -> Digraph.t
(** Current graph (reflects all updates). *)

val set_weight : t -> int -> int -> unit
(** [set_weight t arc w] changes one arc weight.
    @raise Invalid_argument on a bad arc id. *)

val set_transit : t -> int -> int -> unit
(** [set_transit t arc tt] changes one arc transit time (only
    meaningful for [Warm.Ratio] sessions; legal on any).
    @raise Invalid_argument on a bad arc id or negative transit. *)

val solve : ?stats:Stats.t -> t -> Ratio.t * int list
(** Exact optimum of the current graph, warm-started from the previous
    solution when one exists.
    @raise Invalid_argument for [Warm.Ratio] sessions whose current
    graph has a cycle with zero total transit time. *)

(** Repeated minimum-cycle-mean queries under arc-weight updates.

    The paper's motivation (§1.3): "finding more efficient
    implementation of these algorithms is very important because their
    applications require that they be run many times" — retiming loops,
    rate optimization, and clock scheduling all re-solve after small
    edits.  This module keeps Howard's last optimal policy and
    warm-starts from it: after a local weight change the policy is
    usually still optimal or one improvement sweep away, so a re-solve
    costs one or two O(m) iterations instead of a cold start.

    Results are identical to a cold solve (every answer goes through
    the exact finisher); only the work differs. *)

type t

val create : Digraph.t -> t
(** The graph must be strongly connected with at least one arc (as for
    the raw algorithms; use {!Solver} + fresh solves otherwise). *)

val graph : t -> Digraph.t
(** Current graph (reflects all updates). *)

val set_weight : t -> int -> int -> unit
(** [set_weight t arc w] changes one arc weight.
    @raise Invalid_argument on a bad arc id. *)

val solve : ?stats:Stats.t -> t -> Ratio.t * int list
(** Exact minimum cycle mean of the current graph, warm-started from
    the previous solution when one exists. *)

(** Shared warm-start core for repeated Howard re-solves.

    Both warm-start clients — {!Incremental} (strongly connected,
    label-only updates) and the dynamic session subsystem [Dyn]
    (`lib/dyn/`, arbitrary graphs, structural updates) — route their
    per-component re-solves through this module, so the two paths
    cannot diverge: the policy-repair rule and the warm Howard entry
    points live here and nowhere else.

    The key property the clients rely on: Howard's exact finisher
    ({!Critical.improve_to_optimal}) makes the returned (λ, witness)
    pair a function of the graph alone — the terminal location pass at
    the optimum λ* runs a deterministic Bellman–Ford plus tight-arc
    cycle search that does not depend on the starting cycle — so a
    warm-started solve returns the {e same} optimum and the {e same}
    witness as a cold solve; only the iteration counts differ. *)

type problem = Mean | Ratio

val repair_policy : Digraph.t -> int array -> unit
(** [repair_policy g policy] rewrites, in place, every entry of
    [policy] that is not a valid out-arc choice for its node — negative
    ids, out-of-range ids, and arcs that no longer leave the node — to
    the node's cheapest out-arc (lowest arc id on ties, matching
    Howard's [`Cheapest_arc] initialization).  Valid entries are kept,
    which is what makes the start {e warm}.
    @raise Invalid_argument if [policy] has the wrong length or some
    node has no out-arc (the graph is not strongly connected). *)

val solve_warm :
  ?stats:Stats.t -> ?policy:int array -> ?potentials:float array ->
  ?scratch:Howard.scratch -> ?hint:Ratio.t -> ?pool:Executor.t ->
  problem -> Digraph.t -> Ratio.t * int list * int array
(** One warm re-solve on a strongly connected graph.  [policy] (if
    given) is repaired in place with {!repair_policy} and seeds the
    iteration; the returned array is the final policy, to be fed back
    into the next call.  [potentials] is the in/out node-distance
    buffer of {!Howard.minimum_cycle_mean_warm} — keep one per
    component and pass it to every call, or re-solves of a barely
    changed graph re-derive all distances from scratch.

    [pool] is forwarded to the warm Howard entry points, which chunk
    their per-arc improvement sweep across the executor's workers on
    large enough graphs — answers stay bit-identical (see
    {!Howard.minimum_cycle_mean}).

    [hint] (requires [policy]) is a candidate optimum — typically the
    exact answer for a slightly different labelling of this graph.  A
    single {!Critical.locate} pass classifies it against the current
    labels: confirmed or improvable hints resolve the query without
    running policy iteration at all; only a hint strictly below the
    current optimum falls back to the full warm Howard solve.  Any
    [Ratio.t] is a sound hint; a good one makes the common case of an
    update stream (most edits leave the optimum unchanged) cost one
    Bellman–Ford pass.

    Exact: identical (λ, witness) to a cold
    {!Howard.minimum_cycle_mean}/[_ratio] solve of the same graph —
    the witness is derived by the location pass at the optimum, which
    depends only on the graph, never on the warm-start state.
    @raise Invalid_argument on graphs with a node lacking an out-arc,
    or (for [Ratio]) with a zero-total-transit cycle. *)

(** {1 Stateful convenience wrapper}

    A single-graph overlay: current labels, last policy and one kernel
    scratch.  {!Incremental} is a thin veneer over this type. *)

type t

val create : ?problem:problem -> ?pool:Executor.t -> Digraph.t -> t
(** The graph must be strongly connected with at least one arc.
    [problem] defaults to [Mean].  [pool], if given, chunks the
    improvement sweep of every re-solve across the executor's workers;
    the caller keeps ownership (and shuts it down). *)

val problem : t -> problem

val graph : t -> Digraph.t
(** Current graph (reflects all label updates). *)

val set_weight : t -> int -> int -> unit
(** @raise Invalid_argument on a bad arc id. *)

val set_transit : t -> int -> int -> unit
(** @raise Invalid_argument on a bad arc id or negative transit. *)

val solve : ?stats:Stats.t -> t -> Ratio.t * int list
(** Exact optimum of the current graph under [problem t], warm-started
    from the previous solution when one exists. *)

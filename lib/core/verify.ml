let certify ?(objective = Solver.Minimize) ?(problem = Solver.Cycle_mean) g
    lambda cycle =
  let den =
    match problem with
    | Solver.Cycle_mean -> fun _ -> 1
    | Solver.Cycle_ratio -> Digraph.transit g
  in
  if cycle = [] then Error "empty witness cycle"
  else if not (Digraph.is_cycle g cycle) then
    Error "witness arcs do not form a cycle"
  else begin
    let w = Digraph.cycle_weight g cycle in
    let d = List.fold_left (fun s a -> s + den a) 0 cycle in
    if d <= 0 then Error "witness cycle has non-positive denominator"
    else if not (Ratio.equal lambda (Ratio.make w d)) then
      Error
        (Printf.sprintf "witness cycle has ratio %s, claimed %s"
           (Ratio.to_string (Ratio.make w d))
           (Ratio.to_string lambda))
    else begin
      (* optimality: no improving cycle under the scaled integer costs *)
      let sign = match objective with Solver.Minimize -> 1 | Solver.Maximize -> -1 in
      let cost a =
        sign
        * ((Ratio.den lambda * Digraph.weight g a)
          - (Ratio.num lambda * den a))
      in
      match Bellman_ford.negative_cycle ~cost g with
      | None -> Ok ()
      | Some better ->
        let bw = Digraph.cycle_weight g better in
        let bd = List.fold_left (fun s a -> s + den a) 0 better in
        Error
          (Printf.sprintf "found a better cycle of ratio %s"
             (Ratio.to_string (Ratio.make bw bd)))
    end
  end

let certify_report ?objective ?problem g (r : Solver.report) =
  certify ?objective ?problem g r.Solver.lambda r.Solver.cycle

(* one unit in the last place of x, i.e. the gap to the next float *)
let ulp x =
  if Float.is_finite x then Float.succ (Float.abs x) -. Float.abs x
  else Float.infinity

let rational_certificate ?(problem = Solver.Cycle_mean) g lambda cycle =
  let den =
    match problem with
    | Solver.Cycle_mean -> fun _ -> 1
    | Solver.Cycle_ratio -> Digraph.transit g
  in
  if cycle = [] then Error "exact certificate: empty witness cycle"
  else if not (Digraph.is_cycle g cycle) then
    Error "exact certificate: witness arcs do not form a cycle"
  else begin
    (* the certificate is the cycle's integer weight/transit sums —
       never the solver's iterate, float or otherwise *)
    let w = Digraph.cycle_weight g cycle in
    let d = List.fold_left (fun s a -> s + den a) 0 cycle in
    if d <= 0 then
      Error "exact certificate: witness cycle has non-positive denominator"
    else
      let cert = Ratio.make w d in
      if not (Ratio.equal cert lambda) then
        Error
          (Printf.sprintf
             "exact certificate: cycle sums give %s, solver reported %s"
             (Ratio.to_string cert) (Ratio.to_string lambda))
      else
        let f = Ratio.to_float lambda and fc = Ratio.to_float cert in
        if Float.abs (f -. fc) > ulp fc then
          Error
            (Printf.sprintf
               "exact certificate: float answer %.17g is more than 1 ulp \
                from %d/%d"
               f (Ratio.num cert) (Ratio.den cert))
        else Ok cert
  end

(** Independent certification of solver results.

    A claimed optimum [(λ, C)] is checked from scratch, using only
    exact integer arithmetic:
    {ol
    {- [C] is a genuine cycle of the graph;}
    {- the exact ratio of [C] equals λ;}
    {- no better cycle exists — a Bellman–Ford pass over the costs
       [den λ · w(a) − num λ · t(a)] (sign-adjusted for maximization)
       finds no improving cycle.}}

    Together these prove optimality by LP duality, independently of the
    algorithm that produced the result. *)

val certify :
  ?objective:Solver.objective ->
  ?problem:Solver.problem ->
  Digraph.t ->
  Ratio.t ->
  int list ->
  (unit, string) result
(** [Error msg] pinpoints the first failing condition. *)

val certify_report :
  ?objective:Solver.objective ->
  ?problem:Solver.problem ->
  Digraph.t ->
  Solver.report ->
  (unit, string) result

val rational_certificate :
  ?problem:Solver.problem ->
  Digraph.t ->
  Ratio.t ->
  int list ->
  (Ratio.t, string) result
(** The exact-answer-mode cross-check: recompute λ from the witness
    cycle's integer weight and transit sums alone (never from the
    solver's iterate), and return it as the canonical rational
    certificate.  Fails if the witness is not a cycle of this graph, if
    the cycle sums disagree with the claimed λ, or if the float
    rendering of the answer is more than 1 ulp from the certificate's
    correctly rounded quotient.  Objective-independent: the cycle's
    ratio is the attained value under either sign. *)

(** Independent certification of solver results.

    A claimed optimum [(λ, C)] is checked from scratch, using only
    exact integer arithmetic:
    {ol
    {- [C] is a genuine cycle of the graph;}
    {- the exact ratio of [C] equals λ;}
    {- no better cycle exists — a Bellman–Ford pass over the costs
       [den λ · w(a) − num λ · t(a)] (sign-adjusted for maximization)
       finds no improving cycle.}}

    Together these prove optimality by LP duality, independently of the
    algorithm that produced the result. *)

val certify :
  ?objective:Solver.objective ->
  ?problem:Solver.problem ->
  Digraph.t ->
  Ratio.t ->
  int list ->
  (unit, string) result
(** [Error msg] pinpoints the first failing condition. *)

val certify_report :
  ?objective:Solver.objective ->
  ?problem:Solver.problem ->
  Digraph.t ->
  Solver.report ->
  (unit, string) result

(** Shared machinery for the Karp recurrence family (Karp, Karp2, DG,
    HO).  Internal to the library; applications should use the
    algorithm modules or {!Solver}.

    The table [d] is the flattened [(n+1) × n] array of walk weights:
    [d.(k*n + v)] is the minimum weight of a walk of exactly [k] arcs
    from the source (node 0) to [v], or {!inf} if none exists.  All
    algorithms in this family assume a strongly connected input with at
    least one arc, so the source reaches every node. *)

val inf : int
(** Sentinel "no walk" value, safe against one addition. *)

val alloc_table : Digraph.t -> int array
(** Fresh [(n+1) × n] table with row 0 initialized for source 0. *)

val relax_level : ?stats:Stats.t -> Digraph.t -> int array -> int -> unit
(** [relax_level g d k] fills row [k] from row [k-1] by scanning every
    arc (Karp's original recurrence); counts one [arcs_visited] per arc
    scanned. *)

val lambda_of_table : Digraph.t -> int array -> Ratio.t
(** Karp's theorem applied to a complete table:
    [λ* = min_v max_k (D_n(v) − D_k(v)) / (n − k)], skipping infinite
    entries.  @raise Invalid_argument if the table yields no finite
    candidate (cannot happen on strongly connected cyclic inputs). *)

val witness : ?stats:Stats.t -> Digraph.t -> Ratio.t -> int list
(** Extracts a cycle whose mean is exactly the given optimum, via the
    tight subgraph of exact potentials.
    @raise Invalid_argument if λ is not the optimum. *)

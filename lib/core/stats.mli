(** Representative operation counts, as advocated by Ahuja et al. and
    measured throughout §4 of the paper.  Every algorithm accepts an
    optional [Stats.t] and increments the counters relevant to it. *)

type t = {
  mutable iterations : int;
      (** main-loop iterations (Burns, KO, YTO, Howard pivots/policies;
          bisection steps for Lawler/OA) *)
  mutable relaxations : int;
      (** successful distance/potential updates *)
  mutable arcs_visited : int;
      (** arcs scanned (the DG-vs-Karp measure of §4.4) *)
  mutable cycles_examined : int;
      (** cycles whose mean/ratio was evaluated *)
  mutable oracle_calls : int;
      (** negative-cycle tests (Lawler, OA) *)
  mutable level : int;
      (** Karp-recurrence level reached at termination — the HO
          "number of iterations" of §4.3 (equals [n] for plain Karp) *)
  heap : Heap_stats.t;  (** heap operations (KO vs YTO, §4.2) *)
}

val create : unit -> t
val reset : t -> unit
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]; [level] accumulates by
    [max]. *)

val merge : t -> t -> t
(** Functional combination of two counter records into a fresh one
    ([level] by [max], everything else by sum); the arguments are left
    untouched.  This is the only safe way to combine counters produced
    on different domains: each solve gets its own [Stats.t] and the
    join merges — counter records are never shared across domains. *)

val pp : Format.formatter -> t -> unit

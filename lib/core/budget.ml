type cause = Iterations | Deadline

exception Exceeded of cause

let cause_name = function Iterations -> "iterations" | Deadline -> "deadline"

type t = {
  mutable remaining : int; (* max_int when unbounded *)
  now : (unit -> float) option;
  deadline_at : float;
}

let create ?max_iterations ?now ?deadline_at () =
  (match (now, deadline_at) with
  | None, Some _ ->
    invalid_arg "Budget.create: a deadline requires a clock (~now)"
  | _ -> ());
  {
    remaining = (match max_iterations with Some k -> k | None -> max_int);
    now;
    deadline_at = (match deadline_at with Some d -> d | None -> infinity);
  }

let check t =
  match t.now with
  | Some f when f () >= t.deadline_at -> raise (Exceeded Deadline)
  | _ -> ()

let tick t =
  if t.remaining <= 0 then raise (Exceeded Iterations);
  if t.remaining < max_int then t.remaining <- t.remaining - 1;
  check t

type cause = Iterations | Deadline

exception Exceeded of cause

let cause_name = function Iterations -> "iterations" | Deadline -> "deadline"

type t = {
  remaining : int Atomic.t option; (* None when unbounded *)
  now : (unit -> float) option;
  deadline_at : float;
}

let create ?max_iterations ?now ?deadline_at () =
  (match (now, deadline_at) with
  | None, Some _ ->
    invalid_arg "Budget.create: a deadline requires a clock (~now)"
  | _ -> ());
  {
    remaining = Option.map Atomic.make max_iterations;
    now;
    deadline_at = (match deadline_at with Some d -> d | None -> infinity);
  }

let check t =
  match t.now with
  | Some f when f () >= t.deadline_at -> raise (Exceeded Deadline)
  | _ -> ()

let tick t =
  (match t.remaining with
  | Some r ->
    (* fetch-and-add keeps concurrent ticks from distinct domains exact:
       exactly [max_iterations] ticks succeed, pool-wide *)
    if Atomic.fetch_and_add r (-1) <= 0 then raise (Exceeded Iterations)
  | None -> ());
  check t

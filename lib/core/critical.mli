(** Exact location of a candidate value λ relative to the optimum, the
    critical subgraph, and the "improve to optimal" finisher.

    All functions work for both problems through the [den] callback:
    [den a = 1] gives the cycle {e mean} and [den a = transit a] gives
    the cost-to-time {e ratio}.  Given λ = p/q, arcs are re-costed as
    the integer [q·w(a) − p·den(a)]; a cycle is negative under this
    cost iff its ratio is below λ, zero iff equal.  Everything here is
    exact integer arithmetic. *)

val scaled_cost : Digraph.t -> den:(int -> int) -> Ratio.t -> int -> int
(** [scaled_cost g ~den lambda a = den lambda · w(a) − num lambda · den a]. *)

val ratio_of_cycle : Digraph.t -> den:(int -> int) -> int list -> Ratio.t
(** Exact ratio of a cycle (arc-id list).
    @raise Division_by_zero if the cycle's total [den] is zero. *)

val assert_ratio_well_posed : Digraph.t -> unit
(** @raise Invalid_argument if the graph contains a cycle of zero total
    transit time, on which the cost-to-time ratio is undefined.  Called
    by every native ratio solver. *)

val cycle_in : Digraph.t -> (int -> bool) -> int list option
(** [cycle_in g keep] finds some cycle (arc ids, path order) in the
    subgraph of arcs selected by [keep], or [None] if it is acyclic.
    DFS, O(n + m). *)

type position =
  | Below  (** λ < λ*: feasible potentials exist but no cycle attains λ *)
  | Optimal of int list
      (** λ = λ*: a witness cycle of ratio exactly λ, in path order *)
  | Above of int list
      (** λ > λ*: a cycle of ratio strictly below λ, in path order *)

val locate : ?stats:Stats.t -> den:(int -> int) -> Digraph.t -> Ratio.t -> position
(** One Bellman–Ford over the re-costed graph plus a search for a cycle
    among the tight arcs.  Increments [stats.oracle_calls]. *)

val improve_to_optimal :
  ?stats:Stats.t -> den:(int -> int) -> Digraph.t -> int list -> Ratio.t * int list
(** [improve_to_optimal ~den g cycle] starts from any genuine cycle of
    [g] and repeatedly descends ([locate], take the negative cycle)
    until λ* is reached; returns the exact optimum and a witness.
    Terminates because every step moves strictly down within the finite
    set of cycle ratios.  This is the exact finisher applied to the
    candidates produced by float-based iterations (Howard, Burns) and
    ε-approximate searches (Lawler, OA). *)

val critical_arcs : den:(int -> int) -> Digraph.t -> Ratio.t -> int list
(** Arcs of the critical subgraph at λ = λ*: tight arcs that lie on a
    cycle of the tight subgraph (§2 of the paper).  Meaningful only when
    λ is the optimum; returns [] when the tight subgraph is acyclic. *)

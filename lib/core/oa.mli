(** OA1/OA2: scaling algorithms in the style of Orlin & Ahuja
    (Mathematical Programming, 1992).

    The published algorithms combine an {e approximate binary search}
    with an auction/assignment relaxation and (for OA2) the successive
    shortest path algorithm, giving O(√n·m·log(nW)) bounds for integer
    weights bounded by W.  The full auction machinery is replaced here
    by a behaviourally equivalent scaling search (the substitution is
    recorded in DESIGN.md):

    {ul
    {- node prices are maintained {e across} scaling phases and each
       phase first attempts a cheap admissible-graph test — a DFS for a
       cycle that is non-positive under the current prices — before
       falling back to a full Bellman–Ford oracle (whose potentials
       refresh the prices);}
    {- OA1 stops at precision [epsilon], exactly as the paper's
       "approximate" classification;}
    {- OA2 additionally runs the exact finisher
       ({!Critical.improve_to_optimal}) on the final candidate cycle,
       playing the role of the successive-shortest-path clean-up
       phase.}}

    Preconditions: strongly connected input with at least one arc; for
    the ratio form every cycle must have positive total transit time. *)

val oa1_minimum_cycle_mean :
  ?stats:Stats.t -> ?epsilon:float -> Digraph.t -> Ratio.t * int list
(** Approximate: the returned value is the exact ratio of the best
    cycle found, which lies within [epsilon] of λ*. *)

val oa2_minimum_cycle_mean :
  ?stats:Stats.t -> ?epsilon:float -> Digraph.t -> Ratio.t * int list
(** Exact (finisher applied). *)

val oa1_minimum_cycle_ratio :
  ?stats:Stats.t -> ?epsilon:float -> Digraph.t -> Ratio.t * int list

val oa2_minimum_cycle_ratio :
  ?stats:Stats.t -> ?epsilon:float -> Digraph.t -> Ratio.t * int list

(** Exact optimum by Stern–Brocot (mediant) search.

    A verification-grade lane: λ* is found purely through exact integer
    negative-cycle probes ({!Critical.locate}) guided by the
    Stern–Brocot tree, without the float iterates of Howard/Lawler —
    an independent computation path for auditing their answers.  The
    denominator of λ* is at most [n] for cycle means and at most the
    total transit time for cost-to-time ratios, which bounds the tree
    descent; witness cycles returned by Above probes accelerate the
    walk the way the improved Lawler search does.  See docs/EXACT.md.

    Registers itself as the exact lane ["exact"]
    ({!Registry.register_exact_lane}) at module initialization.

    Both entry points assume a strongly connected input with at least
    one arc (use the engine or {!Solver}-style per-SCC decomposition
    for arbitrary graphs); [pool] is accepted for interface uniformity
    and ignored — every probe is one sequential Bellman–Ford. *)

val minimum_cycle_mean :
  ?stats:Stats.t -> ?budget:Budget.t -> ?pool:Executor.t ->
  Digraph.t -> Ratio.t * int list
(** @raise Invalid_argument on a graph with no arcs or no cycle.
    @raise Budget.Exceeded when the supplied budget runs out (ticked
    once per probe). *)

val minimum_cycle_ratio :
  ?stats:Stats.t -> ?budget:Budget.t -> ?pool:Executor.t ->
  Digraph.t -> Ratio.t * int list
(** @raise Invalid_argument additionally if some cycle has zero total
    transit time. *)

type algorithm =
  | Burns
  | Ko
  | Yto
  | Howard
  | Ho
  | Karp
  | Dg
  | Lawler
  | Karp2
  | Oa1
  | Oa2

let all = [ Burns; Ko; Yto; Howard; Ho; Karp; Dg; Lawler; Karp2; Oa1; Oa2 ]

let name = function
  | Burns -> "burns"
  | Ko -> "ko"
  | Yto -> "yto"
  | Howard -> "howard"
  | Ho -> "ho"
  | Karp -> "karp"
  | Dg -> "dg"
  | Lawler -> "lawler"
  | Karp2 -> "karp2"
  | Oa1 -> "oa1"
  | Oa2 -> "oa2"

let display_name = function
  | Burns -> "Burns"
  | Ko -> "KO"
  | Yto -> "YTO"
  | Howard -> "Howard"
  | Ho -> "HO"
  | Karp -> "Karp"
  | Dg -> "DG"
  | Lawler -> "Lawler"
  | Karp2 -> "Karp2"
  | Oa1 -> "OA1"
  | Oa2 -> "OA2"

let of_name s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun a -> name a = s) all

(* ------------------------------------------------------------------ *)
(* Approximation lanes                                                 *)
(* ------------------------------------------------------------------ *)

(* Exact algorithms are a closed variant (the paper's table); lanes
   that trade exactness for speed register themselves here at module
   init, so the core stays free of a dependency on the lane libraries
   while the engine, CLI and request parser can still discover them by
   name. *)

type lane_result = {
  lane_lo : Ratio.t;
  lane_hi : Ratio.t;
  lane_witness : int list;
  lane_tests : int;
  lane_rounds : int;
  lane_converged : bool;
}

type lane_solver =
  ?stats:Stats.t -> ?budget:Budget.t -> ?pool:Executor.t -> eps:float ->
  Digraph.t -> lane_result

type lane = {
  lane_name : string;
  lane_mean : lane_solver;
  lane_ratio : lane_solver;
}

let lanes : (string, lane) Hashtbl.t = Hashtbl.create 4

let register_lane l = Hashtbl.replace lanes l.lane_name l

let lane s = Hashtbl.find_opt lanes (String.lowercase_ascii s)

let lane_names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) lanes [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Exact lanes                                                         *)
(* ------------------------------------------------------------------ *)

(* Same registration pattern as the approximation lanes, but for
   verification-grade solvers that return the exact optimum through a
   different computation than the table's algorithms (the Stern–Brocot
   mediant search registers "exact").  No eps: the answer is λ* itself. *)

type exact_solver =
  ?stats:Stats.t -> ?budget:Budget.t -> ?pool:Executor.t ->
  Digraph.t -> Ratio.t * int list

type exact_lane = {
  exact_name : string;
  exact_mean : exact_solver;
  exact_ratio : exact_solver;
}

let exact_lanes : (string, exact_lane) Hashtbl.t = Hashtbl.create 4

let register_exact_lane l = Hashtbl.replace exact_lanes l.exact_name l

let exact_lane s = Hashtbl.find_opt exact_lanes (String.lowercase_ascii s)

let exact_lane_names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) exact_lanes [] |> List.sort compare

let native_ratio = function
  | Burns | Howard | Lawler | Oa1 | Oa2 | Ko | Yto -> true
  | Ho | Karp | Dg | Karp2 -> false

let supports_budget = function
  | Howard | Ho | Karp2 -> true
  | Burns | Ko | Yto | Karp | Dg | Lawler | Oa1 | Oa2 -> false

(* [pool] parallelizes the intra-SCC improvement sweep; only Howard
   has a chunkable kernel, every other algorithm ignores it *)
let minimum_cycle_mean alg ?stats ?budget ?pool g =
  match alg with
  | Burns -> Burns.minimum_cycle_mean ?stats g
  | Ko -> Ko.minimum_cycle_mean ?stats g
  | Yto -> Yto.minimum_cycle_mean ?stats g
  | Howard -> Howard.minimum_cycle_mean ?stats ?budget ?pool g
  | Ho -> Ho.minimum_cycle_mean ?stats ?budget g
  | Karp -> Karp.minimum_cycle_mean ?stats g
  | Dg -> Dg.minimum_cycle_mean ?stats g
  | Lawler -> Lawler.minimum_cycle_mean ?stats g
  | Karp2 -> Karp2.minimum_cycle_mean ?stats ?budget g
  | Oa1 -> Oa.oa1_minimum_cycle_mean ?stats g
  | Oa2 -> Oa.oa2_minimum_cycle_mean ?stats g

let minimum_cycle_ratio alg ?stats ?budget ?pool g =
  match alg with
  | Burns -> Burns.minimum_cycle_ratio ?stats g
  | Howard -> Howard.minimum_cycle_ratio ?stats ?budget ?pool g
  | Lawler -> Lawler.minimum_cycle_ratio ?stats g
  | Oa1 -> Oa.oa1_minimum_cycle_ratio ?stats g
  | Oa2 -> Oa.oa2_minimum_cycle_ratio ?stats g
  | Ko -> Ko.minimum_cycle_ratio ?stats g
  | Yto -> Yto.minimum_cycle_ratio ?stats g
  | Ho | Karp | Dg | Karp2 ->
    (* Hartmann-Orlin reduction: expand transit times, solve the mean
       problem, and map the witness back *)
    let ex = Expand.transit_expand g in
    let lambda, cycle =
      minimum_cycle_mean alg ?stats ?budget ?pool ex.Expand.graph
    in
    (lambda, Expand.restrict_cycle ex cycle)

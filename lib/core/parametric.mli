(** Parametric shortest path engine shared by the KO and YTO algorithms
    (Karp & Orlin 1981; Young, Tarjan & Orlin 1991).

    A shortest-path tree from node 0 is maintained in the reweighted
    graph [G_λ] (arc costs [w − λ·t]) as λ grows from −∞, where the
    initial tree is the λ → −∞ limit: lexicographic (transit, weight)
    shortest paths.  Each pivot replaces one tree arc at the smallest λ
    where a non-tree arc becomes tight, i.e. at key
    [λ̂(u,v) = (d_w(u) + w − d_w(v)) / (d_t(u) + t − d_t(v))]
    over arcs with positive denominator.  The first pivot that would
    create a cycle stops the algorithm: that cycle attains the optimum
    and [λ* = λ̂] exactly (keys are exact rationals).  With unit
    transit times this is the classic minimum-mean-cycle algorithm; with
    general transit times it solves the cost-to-time ratio problem
    directly.

    The two published variants differ only in heap bookkeeping, which is
    what §4.2 of the paper measures:
    {ul
    {- [`Ko] keeps one heap entry {e per arc} and reinserts every arc
       whose key a pivot changes;}
    {- [`Yto] keeps one entry {e per node} (the minimum key over its
       incoming arcs) and recomputes keys only for nodes whose incoming
       keys actually changed — fewer, cheaper heap operations.}}

    The heap itself is pluggable ([`Fibonacci] as in the paper's LEDA
    implementation and the published bounds, [`Binary] and [`Pairing]
    for the ablation of E10).

    Preconditions: strongly connected input with at least one arc; for
    the ratio form, every cycle must have positive total transit
    time. *)

type variant = [ `Ko | `Yto ]
type heap_kind = [ `Fibonacci | `Binary | `Pairing ]

val minimum_cycle_mean :
  ?stats:Stats.t -> ?heap:heap_kind -> variant:variant -> Digraph.t ->
  Ratio.t * int list
(** [heap] defaults to [`Fibonacci]. *)

val minimum_cycle_ratio :
  ?stats:Stats.t -> ?heap:heap_kind -> variant:variant -> Digraph.t ->
  Ratio.t * int list

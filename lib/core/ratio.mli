(** Exact rational arithmetic on native ints.

    Cycle means and cost-to-time ratios are rationals [w(C)/|C|] or
    [w(C)/t(C)]; with the paper's parameters (weights ≤ 10^4, n ≤ 10^4)
    every intermediate product fits comfortably in a 63-bit int, so no
    arbitrary-precision arithmetic is needed.  Values are kept
    normalized: [den > 0] and [gcd (abs num) den = 1]. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] normalizes the fraction: the representation is
    unique — [equal a b] implies [num a = num b && den a = den b] — so
    serialized [num]/[den] pairs are canonical.
    @raise Division_by_zero if [den = 0].
    @raise Invalid_argument if [num] or [den] is [min_int] (no
    representable negation, so sign canonicalization would fail). *)

val of_int : int -> t
val zero : t
val one : t

val num : t -> int
val den : t -> int

val compare : t -> t -> int
(** Exact comparison by cross-multiplication. *)

val equal : t -> t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val to_float : t -> float
val pp : Format.formatter -> t -> unit
(** Prints [num/den], or just [num] when [den = 1]. *)

val to_string : t -> string

type t = {
  mutable iterations : int;
  mutable relaxations : int;
  mutable arcs_visited : int;
  mutable cycles_examined : int;
  mutable oracle_calls : int;
  mutable level : int;
  heap : Heap_stats.t;
}

let create () =
  {
    iterations = 0;
    relaxations = 0;
    arcs_visited = 0;
    cycles_examined = 0;
    oracle_calls = 0;
    level = 0;
    heap = Heap_stats.create ();
  }

let reset t =
  t.iterations <- 0;
  t.relaxations <- 0;
  t.arcs_visited <- 0;
  t.cycles_examined <- 0;
  t.oracle_calls <- 0;
  t.level <- 0;
  Heap_stats.reset t.heap

let add acc x =
  acc.iterations <- acc.iterations + x.iterations;
  acc.relaxations <- acc.relaxations + x.relaxations;
  acc.arcs_visited <- acc.arcs_visited + x.arcs_visited;
  acc.cycles_examined <- acc.cycles_examined + x.cycles_examined;
  acc.oracle_calls <- acc.oracle_calls + x.oracle_calls;
  acc.level <- max acc.level x.level;
  Heap_stats.add acc.heap x.heap

let merge a b =
  let t = create () in
  add t a;
  add t b;
  t

let pp ppf t =
  Format.fprintf ppf
    "iter=%d relax=%d arcs=%d cycles=%d oracle=%d level=%d heap:[%a]"
    t.iterations t.relaxations t.arcs_visited t.cycles_examined t.oracle_calls
    t.level Heap_stats.pp t.heap

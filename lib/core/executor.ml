type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = { mutable st : 'a state } (* guarded by the pool mutex *)

(* Pool-health observability.  The atomics are only touched when the
   global switch is on, so the disabled path keeps the queue mutex as
   its sole synchronization cost; the per-task span plus busy-time
   accounting give worker utilization without any per-task clock read
   when tracing is off. *)
let sp_task = Obs.intern "exec.task"
let sp_depth = Obs.intern "exec.queue_depth"

type obs = {
  enqueued : int Atomic.t;   (* tasks pushed via [async] *)
  dequeued : int Atomic.t;   (* tasks popped by a worker domain *)
  helped : int Atomic.t;     (* tasks stolen by a waiter in [await] *)
  busy_ns : int Atomic.t;    (* cumulative ns spent inside task bodies *)
  created_ns : int;          (* pool birth, for the utilization ratio *)
}

type t = {
  mutex : Mutex.t;
  pending : Condition.t;   (* a task was queued, or the pool is closing *)
  progress : Condition.t;  (* some future completed *)
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
  obs : obs;
}

let jobs t = t.jobs

(* Granularity cost model: work is split by items-per-chunk, not by a
   fixed chunk count, so tiny inputs never pay task-spawn overhead.
   The 4096-arc default is the measured break-even of the Howard
   improvement sweep: below roughly that many arcs per chunk, queueing
   a task plus the per-chunk winner merge costs more than sweeping the
   arcs on the calling domain (docs/PERF.md, "Granularity").  The env
   knob exists for bench sweeps of the threshold itself. *)
let default_chunk_arcs = 4096

let chunk_arcs () =
  match Sys.getenv_opt "OCR_CHUNK_ARCS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v > 0 -> v
    | _ -> default_chunk_arcs)
  | None -> default_chunk_arcs

let chunks_for t ~work ~grain =
  if t.jobs <= 1 || grain <= 0 || work <= 0 then 1
  else max 1 (min t.jobs (work / grain))

(* run one task body with the tracing span and busy-time accounting;
   [from_help] distinguishes steals from worker dequeues *)
let run_task t ~from_help task =
  if !Obs.enabled_flag then begin
    Atomic.incr (if from_help then t.obs.helped else t.obs.dequeued);
    Trace.begin_span sp_task;
    let t0 = Obs.now_ns () in
    task ();
    ignore (Atomic.fetch_and_add t.obs.busy_ns (Obs.now_ns () - t0));
    Trace.end_span sp_task
  end
  else task ()

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.pending t.mutex
  done;
  if Queue.is_empty t.queue then (
    (* closing and drained *)
    Mutex.unlock t.mutex)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    run_task t ~from_help:false task;
    worker_loop t
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Executor.create: jobs must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      pending = Condition.create ();
      progress = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [];
      jobs;
      obs =
        {
          enqueued = Atomic.make 0;
          dequeued = Atomic.make 0;
          helped = Atomic.make 0;
          busy_ns = Atomic.make 0;
          created_ns = Obs.now_ns ();
        };
    }
  in
  (* the coordinating thread is the jobs-th worker: it executes queued
     tasks while it waits in [await], so only jobs-1 domains are
     spawned and jobs=1 runs everything inline with no domain at all *)
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let async t f =
  let fut = { st = Pending } in
  let task () =
    let r =
      try Done (f ())
      with e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.mutex;
    fut.st <- r;
    Condition.broadcast t.progress;
    Mutex.unlock t.mutex
  in
  Mutex.lock t.mutex;
  if t.closing then begin
    Mutex.unlock t.mutex;
    invalid_arg "Executor.async: pool is shut down"
  end;
  Queue.push task t.queue;
  let depth = Queue.length t.queue in
  Condition.signal t.pending;
  Mutex.unlock t.mutex;
  if !Obs.enabled_flag then begin
    Atomic.incr t.obs.enqueued;
    Trace.counter_int sp_depth depth
  end;
  fut

let rec await t fut =
  Mutex.lock t.mutex;
  match fut.st with
  | Done v ->
    Mutex.unlock t.mutex;
    v
  | Failed (e, bt) ->
    Mutex.unlock t.mutex;
    Printexc.raise_with_backtrace e bt
  | Pending ->
    if not (Queue.is_empty t.queue) then begin
      (* help-first: run queued work instead of blocking, so nested
         fan-outs (a request spawning per-SCC subtasks) cannot
         deadlock even with a single thread *)
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      run_task t ~from_help:true task;
      await t fut
    end
    else begin
      Condition.wait t.progress t.mutex;
      Mutex.unlock t.mutex;
      await t fut
    end

let shutdown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.pending;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Snapshot the pool-health counters into [m].  Utilization is the
   cumulative task-body time over the pool's total capacity-seconds
   (wall time since creation × jobs); it only accumulates while the
   global observability switch is on, so with tracing off it reads 0. *)
let sample_metrics t m =
  Metrics.add (Metrics.counter m "ocr_exec_enqueued_total")
    (Atomic.get t.obs.enqueued);
  Metrics.add (Metrics.counter m "ocr_exec_dequeued_total")
    (Atomic.get t.obs.dequeued);
  Metrics.add (Metrics.counter m "ocr_exec_helped_total")
    (Atomic.get t.obs.helped);
  Mutex.lock t.mutex;
  let depth = Queue.length t.queue in
  Mutex.unlock t.mutex;
  Metrics.set (Metrics.gauge m "ocr_exec_queue_depth") (float_of_int depth);
  let wall = Obs.now_ns () - t.obs.created_ns in
  let util =
    if wall <= 0 then 0.0
    else
      float_of_int (Atomic.get t.obs.busy_ns)
      /. (float_of_int wall *. float_of_int t.jobs)
  in
  Metrics.set (Metrics.gauge m "ocr_exec_utilization") util

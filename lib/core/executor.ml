type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = { mutable st : 'a state } (* guarded by the pool mutex *)

type t = {
  mutex : Mutex.t;
  pending : Condition.t;   (* a task was queued, or the pool is closing *)
  progress : Condition.t;  (* some future completed *)
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

let jobs t = t.jobs

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.pending t.mutex
  done;
  if Queue.is_empty t.queue then (
    (* closing and drained *)
    Mutex.unlock t.mutex)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Executor.create: jobs must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      pending = Condition.create ();
      progress = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [];
      jobs;
    }
  in
  (* the coordinating thread is the jobs-th worker: it executes queued
     tasks while it waits in [await], so only jobs-1 domains are
     spawned and jobs=1 runs everything inline with no domain at all *)
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let async t f =
  let fut = { st = Pending } in
  let task () =
    let r =
      try Done (f ())
      with e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.mutex;
    fut.st <- r;
    Condition.broadcast t.progress;
    Mutex.unlock t.mutex
  in
  Mutex.lock t.mutex;
  if t.closing then begin
    Mutex.unlock t.mutex;
    invalid_arg "Executor.async: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.signal t.pending;
  Mutex.unlock t.mutex;
  fut

let rec await t fut =
  Mutex.lock t.mutex;
  match fut.st with
  | Done v ->
    Mutex.unlock t.mutex;
    v
  | Failed (e, bt) ->
    Mutex.unlock t.mutex;
    Printexc.raise_with_backtrace e bt
  | Pending ->
    if not (Queue.is_empty t.queue) then begin
      (* help-first: run queued work instead of blocking, so nested
         fan-outs (a request spawning per-SCC subtasks) cannot
         deadlock even with a single thread *)
      let task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      task ();
      await t fut
    end
    else begin
      Condition.wait t.progress t.mutex;
      Mutex.unlock t.mutex;
      await t fut
    end

let shutdown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.pending;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let inf = max_int / 4

let alloc_table g =
  let n = Digraph.n g in
  let d = Array.make ((n + 1) * n) inf in
  d.(0) <- 0;
  (* row 0: only the source (node 0) is at distance 0 *)
  d

let relax_level ?stats g d k =
  let n = Digraph.n g in
  let prev = (k - 1) * n and cur = k * n in
  let bump =
    match stats with
    | Some s -> fun () -> s.Stats.arcs_visited <- s.Stats.arcs_visited + 1
    | None -> fun () -> ()
  in
  Digraph.iter_arcs g (fun a ->
      bump ();
      let u = Digraph.src g a in
      let du = d.(prev + u) in
      if du < inf then begin
        let v = Digraph.dst g a in
        let cand = du + Digraph.weight g a in
        if cand < d.(cur + v) then d.(cur + v) <- cand
      end)

let lambda_of_table g d =
  let n = Digraph.n g in
  let last = n * n in
  (* min over v of max over k, exact fraction comparison throughout *)
  let best_num = ref 0 and best_den = ref 0 in
  for v = 0 to n - 1 do
    if d.(last + v) < inf then begin
      (* inner max over k of (D_n(v) - D_k(v)) / (n - k) *)
      let max_num = ref 0 and max_den = ref 0 in
      for k = 0 to n - 1 do
        let dk = d.((k * n) + v) in
        if dk < inf then begin
          let num = d.(last + v) - dk and den = n - k in
          if !max_den = 0 || num * !max_den > !max_num * den then begin
            max_num := num;
            max_den := den
          end
        end
      done;
      if !max_den > 0
         && (!best_den = 0 || !max_num * !best_den < !best_num * !max_den)
      then begin
        best_num := !max_num;
        best_den := !max_den
      end
    end
  done;
  if !best_den = 0 then
    invalid_arg "Karp_core.lambda_of_table: no finite candidate \
                 (input not strongly connected and cyclic?)";
  Ratio.make !best_num !best_den

let witness ?stats g lambda =
  match Critical.locate ?stats ~den:(fun _ -> 1) g lambda with
  | Critical.Optimal c -> c
  | Critical.Below | Critical.Above _ ->
    invalid_arg "Karp_core.witness: value is not the optimum cycle mean"

let any_cycle g =
  match Critical.cycle_in g (fun _ -> true) with
  | Some c -> c
  | None -> invalid_arg "Lawler: input graph is acyclic"

let solve ?stats ~den ~lo ~hi ~epsilon ~exact_finish ~improved g =
  if Digraph.m g = 0 then invalid_arg "Lawler: graph has no arcs";
  let lo = ref lo and hi = ref hi in
  let candidate = ref None in
  let on_relax =
    Option.map (fun s () -> s.Stats.relaxations <- s.Stats.relaxations + 1) stats
  in
  while !hi -. !lo > epsilon do
    (match stats with
    | Some s ->
      s.Stats.iterations <- s.Stats.iterations + 1;
      s.Stats.oracle_calls <- s.Stats.oracle_calls + 1
    | None -> ());
    let mid = 0.5 *. (!lo +. !hi) in
    let cost a =
      float_of_int (Digraph.weight g a) -. (mid *. float_of_int (den a))
    in
    match Bellman_ford.run_float ?on_relax ~cost g with
    | Error cycle ->
      (* a cycle with ratio < mid exists: λ* < mid.  The improved
         variant uses the witness itself as the new upper bound — the
         cycle's exact ratio is at most mid but usually far below it,
         so the interval shrinks by much more than half. *)
      candidate := Some cycle;
      hi :=
        if improved then
          Float.min mid (Ratio.to_float (Critical.ratio_of_cycle g ~den cycle))
        else mid
    | Ok _ ->
      (* no negative cycle: λ* >= mid *)
      lo := mid
  done;
  let cycle = match !candidate with Some c -> c | None -> any_cycle g in
  if exact_finish then Critical.improve_to_optimal ?stats ~den g cycle
  else (Critical.ratio_of_cycle g ~den cycle, cycle)

let bounds_mean g =
  (float_of_int (Digraph.min_weight g), float_of_int (Digraph.max_weight g))

let bounds_ratio g =
  (* with t(C) >= 1 every cycle ratio lies within ±n·max|w| *)
  let maxabs =
    Digraph.fold_arcs g (fun acc a -> max acc (abs (Digraph.weight g a))) 1
  in
  let b = float_of_int ((Digraph.n g * maxabs) + 1) in
  (-.b, b)

let minimum_cycle_mean ?stats ?epsilon ?(exact_finish = true)
    ?(improved = false) g =
  let lo, hi = bounds_mean g in
  let epsilon =
    match epsilon with
    | Some e -> e
    | None ->
      (* distinct cycle means differ by at least 1/n², so this width
         already pins the optimum to a unique value *)
      let n = float_of_int (max 2 (Digraph.n g)) in
      1.0 /. (2.0 *. n *. n)
  in
  solve ?stats ~den:(fun _ -> 1) ~lo ~hi ~epsilon ~exact_finish ~improved g

let minimum_cycle_ratio ?stats ?epsilon ?(exact_finish = true)
    ?(improved = false) g =
  Critical.assert_ratio_well_posed g;
  let lo, hi = bounds_ratio g in
  let epsilon =
    match epsilon with
    | Some e -> e
    | None ->
      let t = float_of_int (max 2 (Digraph.total_transit g)) in
      1.0 /. (2.0 *. t *. t)
  in
  solve ?stats ~den:(Digraph.transit g) ~lo ~hi ~epsilon ~exact_finish
    ~improved g

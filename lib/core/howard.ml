type init = [ `Cheapest_arc | `First_arc | `Random of int ]

(* Policy evaluation: find every cycle of the functional graph
   u -> dst(pi(u)), returning the one with the smallest exact ratio.
   O(n) with colour stamps. *)
let best_policy_cycle ?stats g den pi =
  let n = Digraph.n g in
  let color = Array.make n 0 in (* 0 unseen, 1 on current walk, 2 done *)
  let pos = Array.make n (-1) in
  let walk = Array.make (n + 1) (-1) in
  let best = ref None in
  for start = 0 to n - 1 do
    if color.(start) = 0 then begin
      let len = ref 0 in
      let x = ref start in
      while color.(!x) = 0 do
        color.(!x) <- 1;
        pos.(!x) <- !len;
        walk.(!len) <- !x;
        incr len;
        x := Digraph.dst g pi.(!x)
      done;
      if color.(!x) = 1 then begin
        (* new cycle: walk.(pos(!x)) .. walk.(len-1) *)
        (match stats with
        | Some s -> s.Stats.cycles_examined <- s.Stats.cycles_examined + 1
        | None -> ());
        let num = ref 0 and d = ref 0 and arcs = ref [] in
        for i = !len - 1 downto pos.(!x) do
          let a = pi.(walk.(i)) in
          num := !num + Digraph.weight g a;
          d := !d + den a;
          arcs := a :: !arcs
        done;
        if !d <= 0 then
          invalid_arg "Howard: policy cycle with non-positive denominator \
                       (zero-transit cycle in the ratio problem?)";
        let replace =
          match !best with
          | None -> true
          | Some (bn, bd, _, _) -> !num * bd < bn * !d
        in
        if replace then best := Some (!num, !d, !arcs, !x)
      end;
      (* close the walk *)
      for i = 0 to !len - 1 do
        color.(walk.(i)) <- 2
      done
    end
  done;
  match !best with
  | Some b -> b
  | None -> assert false (* every functional graph has a cycle *)

let solve ?stats ?budget ?(init = `Cheapest_arc) ?policy ~den ~epsilon g =
  if Digraph.m g = 0 then invalid_arg "Howard: graph has no arcs";
  let n = Digraph.n g in
  (* initial policy: cheapest out-arc (Figure 1, lines 1-4) by
     default; a caller-supplied warm-start policy overrides [init]
     (the incremental re-solve path); the alternatives ablate how much
     the improved initialization buys (bench E9) *)
  let d = Array.make n infinity in
  let pi = Array.make n (-1) in
  (match policy with
  | Some p ->
    if Array.length p <> n then invalid_arg "Howard: wrong policy length";
    Array.iteri
      (fun u a ->
        if a < 0 || a >= Digraph.m g || Digraph.src g a <> u then
          invalid_arg "Howard: invalid warm-start policy";
        pi.(u) <- a;
        d.(u) <- float_of_int (Digraph.weight g a))
      p
  | None -> ());
  (match (policy, init) with
  | Some _, _ -> ()
  | None, `Cheapest_arc ->
    Digraph.iter_arcs g (fun a ->
        let u = Digraph.src g a in
        let w = float_of_int (Digraph.weight g a) in
        if w < d.(u) then begin
          d.(u) <- w;
          pi.(u) <- a
        end)
  | None, `First_arc ->
    Digraph.iter_arcs g (fun a ->
        let u = Digraph.src g a in
        if pi.(u) < 0 then begin
          pi.(u) <- a;
          d.(u) <- float_of_int (Digraph.weight g a)
        end)
  | None, `Random seed ->
    (* xorshift-mixed reservoir choice among each node's out-arcs *)
    let state = ref (seed lxor 0x2545F4914F6CDD1D) in
    let next () =
      let x = !state in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      state := x;
      x land max_int
    in
    for u = 0 to n - 1 do
      let deg = Digraph.out_degree g u in
      if deg > 0 then begin
        let pick = next () mod deg in
        let i = ref 0 in
        Digraph.iter_out g u (fun a ->
            if !i = pick then begin
              pi.(u) <- a;
              d.(u) <- float_of_int (Digraph.weight g a)
            end;
            incr i)
      end
    done);
  Array.iter
    (fun a -> if a < 0 then invalid_arg "Howard: node without out-arc")
    pi;
  let scale =
    Digraph.fold_arcs g (fun acc a -> max acc (abs (Digraph.weight g a))) 1
    |> float_of_int
  in
  let eps = epsilon *. scale in
  let rev = Array.make n [] in
  let visited = Array.make n false in
  let queue = Queue.create () in
  let cap = (8 * n) + 64 in
  let iter = ref 0 in
  let result = ref None in
  while !result = None && !iter < cap do
    incr iter;
    (match budget with Some b -> Budget.tick b | None -> ());
    (match stats with
    | Some s -> s.Stats.iterations <- s.Stats.iterations + 1
    | None -> ());
    let num, dn, cycle, s_node = best_policy_cycle ?stats g den pi in
    let lambda = float_of_int num /. float_of_int dn in
    (* node distances by reverse BFS from s_node over policy arcs
       (Figure 1, lines 10-12) *)
    Array.fill rev 0 n [];
    for u = 0 to n - 1 do
      let v = Digraph.dst g pi.(u) in
      rev.(v) <- u :: rev.(v)
    done;
    Array.fill visited 0 n false;
    Queue.clear queue;
    visited.(s_node) <- true;
    Queue.add s_node queue;
    while not (Queue.is_empty queue) do
      let x = Queue.take queue in
      List.iter
        (fun u ->
          if not visited.(u) then begin
            visited.(u) <- true;
            let a = pi.(u) in
            d.(u) <-
              d.(x) +. float_of_int (Digraph.weight g a)
              -. (lambda *. float_of_int (den a));
            Queue.add u queue
          end)
        rev.(x)
    done;
    (* improvement sweep (Figure 1, lines 13-18) *)
    let improved = ref false in
    Digraph.iter_arcs g (fun a ->
        let u = Digraph.src g a and v = Digraph.dst g a in
        let cand =
          d.(v) +. float_of_int (Digraph.weight g a)
          -. (lambda *. float_of_int (den a))
        in
        let delta = d.(u) -. cand in
        if delta > 0.0 then begin
          (match stats with
          | Some s -> s.Stats.relaxations <- s.Stats.relaxations + 1
          | None -> ());
          d.(u) <- cand;
          pi.(u) <- a;
          if delta > eps then improved := true
        end);
    if not !improved then result := Some cycle
  done;
  let cycle =
    match !result with
    | Some c -> c
    | None ->
      (* iteration cap hit: the best policy cycle is still a sound
         candidate; the exact finisher below corrects any gap *)
      let _, _, c, _ = best_policy_cycle ?stats g den pi in
      c
  in
  let lambda, witness = Critical.improve_to_optimal ?stats ~den g cycle in
  (lambda, witness, pi)

let minimum_cycle_mean ?stats ?budget ?(epsilon = 1e-9) ?init g =
  let lambda, cycle, _ =
    solve ?stats ?budget ?init ~den:(fun _ -> 1) ~epsilon g
  in
  (lambda, cycle)

let minimum_cycle_ratio ?stats ?budget ?(epsilon = 1e-9) ?init g =
  Critical.assert_ratio_well_posed g;
  let lambda, cycle, _ =
    solve ?stats ?budget ?init ~den:(Digraph.transit g) ~epsilon g
  in
  (lambda, cycle)

let minimum_cycle_mean_warm ?stats ?(epsilon = 1e-9) ?policy g =
  solve ?stats ?policy ~den:(fun _ -> 1) ~epsilon g

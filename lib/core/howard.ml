type init = [ `Cheapest_arc | `First_arc | `Random of int ]

(* Tracing span names, interned once at module initialization.  Every
   recording below sits behind one [tr] check sampled at solve entry,
   so the disabled path costs a handful of branches per iteration and
   allocates nothing — the kernel's Gc tests run with the
   instrumentation compiled in. *)
let sp_solve = Obs.intern "howard.solve"
let sp_iter = Obs.intern "howard.iteration"
let sp_eval = Obs.intern "howard.eval"
let sp_sweep = Obs.intern "howard.sweep"
let sp_improved = Obs.intern "howard.improved"

type int_array1 = Digraph.int_array1
type float_array1 = Digraph.float_array1

let ia len = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len
let fa len = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len

(* Reusable workspace: every array the steady-state policy iteration
   touches is preallocated here, so iterations allocate nothing on the
   minor heap (verified by the kernel's Gc.minor_words test).  The hot
   state — distances, the policy-reverse CSR, the BFS ring, and the
   per-chunk winner tables — lives in unboxed Bigarrays: off the OCaml
   heap (the GC never scans or moves it) and therefore shareable
   across domains without copying, which is what lets sweep chunks on
   worker domains read [d] and write their winner tables in place.
   One record serves repeated solves — Incremental keeps a single
   scratch across warm-start re-solves — growing monotonically to the
   largest instance seen. *)
type scratch = {
  mutable cap : int; (* arrays valid for n <= cap *)
  mutable d : float_array1;
  mutable pi : int array;
  (* policy-reverse adjacency in CSR form, rebuilt by counting sort
     each iteration: predecessors of v under u -> dst(pi(u)) are
     rev_nodes.{rev_start.{v} .. rev_start.{v+1} - 1} *)
  mutable rev_start : int_array1;  (* n+1 *)
  mutable rev_cursor : int_array1; (* n+1, fill cursors for the sort *)
  mutable rev_nodes : int_array1;  (* n: each node is one predecessor *)
  mutable queue : int_array1;      (* n: BFS buffer (each node enters once) *)
  mutable visited : bool array;    (* n *)
  mutable color : int array;       (* n: 0 unseen, 1 on walk, 2 done *)
  mutable pos : int array;         (* n *)
  mutable walk : int array;        (* n+1 *)
  mutable cycle_arcs : int array;  (* n: best policy cycle, path order *)
  (* all-ones float denominator, the cycle-mean counterpart of the
     graph's transit mirror: the sweep reads one uniform [denf] array
     for both problems, and multiplying by an exact 1.0 is bit-identical
     to the mean form's plain [-. lambda] *)
  mutable ones_cap : int;
  mutable ones : float_array1;     (* ones_cap >= m, every entry 1.0 *)
  (* Chunked improvement sweep (serial and parallel paths share it):
     chunk [ci] records, for every node it saw as an arc source, the
     best candidate value and the lowest arc id attaining it.  Stamps
     replace per-iteration fills: an entry is live iff its stamp equals
     [sweep_epoch], which increases monotonically across iterations and
     solves, so reusing a scratch never reads stale winners. *)
  mutable sweep_epoch : int;
  sweep_lambda : float array;        (* current λ, read by chunk tasks;
                                        a 1-cell float array so the
                                        per-iteration store stays
                                        unboxed (a mutable float field
                                        of this mixed record would box
                                        on every write) *)
  sweep_eps : float array;           (* convergence threshold ε·scale;
                                        same 1-cell trick — passing it
                                        as a float argument would box
                                        at every apply_winners call *)
  mutable chunk_cap : int;           (* chunk tables allocated *)
  mutable chunk_n : int;             (* inner arrays valid for n <= chunk_n *)
  mutable chunk_cand : float_array1 array; (* chunk -> node -> best cand *)
  mutable chunk_arc : int_array1 array;    (* chunk -> node -> best arc *)
  mutable chunk_stamp : int_array1 array;  (* chunk -> node -> epoch *)
  mutable chunk_relax : int array;         (* chunk -> improving-arc count *)
}

let create_scratch () =
  {
    cap = 0;
    d = fa 0;
    pi = [||];
    rev_start = ia 0;
    rev_cursor = ia 0;
    rev_nodes = ia 0;
    queue = ia 0;
    visited = [||];
    color = [||];
    pos = [||];
    walk = [||];
    cycle_arcs = [||];
    ones_cap = 0;
    ones = fa 0;
    sweep_epoch = 0;
    sweep_lambda = Array.make 1 0.0;
    sweep_eps = Array.make 1 0.0;
    chunk_cap = 0;
    chunk_n = 0;
    chunk_cand = [||];
    chunk_arc = [||];
    chunk_stamp = [||];
    chunk_relax = [||];
  }

let ensure_scratch s n =
  if n > s.cap then begin
    s.cap <- n;
    s.d <- fa n;
    s.pi <- Array.make n (-1);
    s.rev_start <- ia (n + 1);
    s.rev_cursor <- ia (n + 1);
    s.rev_nodes <- ia n;
    s.queue <- ia n;
    s.visited <- Array.make n false;
    s.color <- Array.make n 0;
    s.pos <- Array.make n (-1);
    s.walk <- Array.make (n + 1) (-1)
  end;
  if Array.length s.cycle_arcs < n then s.cycle_arcs <- Array.make n (-1)

(* the all-ones denominator never changes after the fill, so growing it
   is the only write it ever sees *)
let ensure_ones s m =
  if m > s.ones_cap then begin
    s.ones <- fa m;
    Bigarray.Array1.fill s.ones 1.0;
    s.ones_cap <- m
  end;
  s.ones

let ensure_chunks s chunks =
  if chunks > s.chunk_cap || s.chunk_n < s.cap then begin
    let k = max chunks s.chunk_cap in
    s.chunk_cap <- k;
    s.chunk_n <- s.cap;
    s.chunk_cand <-
      Array.init k (fun _ ->
          let t = fa s.cap in
          Bigarray.Array1.fill t infinity;
          t);
    s.chunk_arc <-
      Array.init k (fun _ ->
          let t = ia s.cap in
          Bigarray.Array1.fill t (-1);
          t);
    s.chunk_stamp <-
      Array.init k (fun _ ->
          let t = ia s.cap in
          Bigarray.Array1.fill t 0;
          t);
    s.chunk_relax <- Array.make k 0
  end

(* One chunk of the improvement sweep (Figure 1, lines 13-18) over the
   arc range [lo, hi).  Candidates are evaluated against the node
   distances FROZEN at the start of the sweep — [d] is only read here,
   so chunks race-freely share it across domains (it is a Bigarray:
   plain memory no domain's GC ever moves) — and the chunk's winner
   table keeps, per source node, the smallest candidate with the lowest
   arc id on ties (arcs are visited in increasing id order, so a strict
   comparison keeps the first minimum).  [srcs]/[dsts]/[wf] are the
   graph's own CSR Bigarrays and [denf] the float64 denominator mirror
   (all ones for the mean problem, the transit mirror for the ratio
   problem — both exact, so the float arithmetic is bit-identical to
   the [float_of_int] version it replaces).  Allocation-free: all
   state lives in the preallocated chunk tables. *)
let sweep_chunk s ~srcs ~dsts ~wf ~denf lo hi ci =
  let d = s.d in
  let lambda = s.sweep_lambda.(0) in
  let epoch = s.sweep_epoch in
  let cand_t = s.chunk_cand.(ci)
  and arc_t = s.chunk_arc.(ci)
  and stamp_t = s.chunk_stamp.(ci) in
  let relax = ref 0 in
  for a = lo to hi - 1 do
    let u = (srcs : int_array1).{a} and v = (dsts : int_array1).{a} in
    let cand =
      d.{v} +. (wf : float_array1).{a} -. (lambda *. (denf : float_array1).{a})
    in
    if cand < d.{u} then incr relax;
    if stamp_t.{u} <> epoch || cand < cand_t.{u} then begin
      stamp_t.{u} <- epoch;
      cand_t.{u} <- cand;
      arc_t.{u} <- a
    end
  done;
  s.chunk_relax.(ci) <- !relax

(* Merge the per-chunk winner tables in chunk order — chunk [ci] covers
   strictly lower arc ids than chunk [ci+1], so keeping the earlier
   chunk on candidate ties preserves the global lowest-arc-id rule —
   and apply the merged winners to [d]/[pi].  Returns whether any node
   improved by more than [eps].  The partition of the arc range is
   invisible here: the merged winner, the relaxation total, and the
   improvement verdict are identical for every chunk count, which is
   what makes reports bit-identical across job counts. *)
let apply_winners s ~n ~chunks st =
  let eps = s.sweep_eps.(0) in
  let epoch = s.sweep_epoch in
  let d = s.d and pi = s.pi in
  let improved = ref false in
  for u = 0 to n - 1 do
    let bc = ref (-1) in
    for ci = 0 to chunks - 1 do
      if
        s.chunk_stamp.(ci).{u} = epoch
        && (!bc < 0 || s.chunk_cand.(ci).{u} < s.chunk_cand.(!bc).{u})
      then bc := ci
    done;
    if !bc >= 0 then begin
      let cand = s.chunk_cand.(!bc).{u} in
      let delta = d.{u} -. cand in
      if delta > 0.0 then begin
        d.{u} <- cand;
        pi.(u) <- s.chunk_arc.(!bc).{u};
        if delta > eps then improved := true
      end
    end
  done;
  for ci = 0 to chunks - 1 do
    st.Stats.relaxations <- st.Stats.relaxations + s.chunk_relax.(ci)
  done;
  !improved

(* Arcs-per-chunk grain for the sweep: a chunk below this many arcs is
   not worth a task spawn (queueing plus an O(chunks · n) merge beats
   the sweep itself), so the chunk count is
   [min jobs (m / grain)] — small components and small sweeps stay
   serial, big ones split into at-least-[grain]-arc chunks.  The
   default comes from [Executor.chunk_arcs ()] (4096, overridable via
   OCR_CHUNK_ARCS); [sweep_min_arcs] overrides it per solve — bench E14
   and the tie-merge property tests force chunking on small instances
   with it.  The grain never affects results, only where the arcs are
   swept. *)

let solve ?stats ?budget ?(init = `Cheapest_arc) ?policy ?potentials ?scratch
    ?pool ?sweep_min_arcs ~ratio ~epsilon g =
  if Digraph.m g = 0 then invalid_arg "Howard: graph has no arcs";
  let tr = !Obs.enabled_flag in
  if tr then Trace.begin_span sp_solve;
  let n = Digraph.n g and m = Digraph.m g in
  let s = match scratch with Some s -> s | None -> create_scratch () in
  ensure_scratch s n;
  (* the graph's unboxed arrays: endpoints, the float64 weight mirror,
     and the denominator mirror (exact by construction; see Digraph) *)
  let srcs = Digraph.Unsafe.srcs g
  and dsts = Digraph.Unsafe.dsts g
  and wf = Digraph.Unsafe.weights_float g in
  let denf = if ratio then Digraph.Unsafe.transits_float g else ensure_ones s m in
  let den = if ratio then Digraph.transit g else fun _ -> 1 in
  (* chunk count for the improvement sweep, by the arcs-per-chunk cost
     model above: 1 (the serial path) without a multi-worker pool or
     on a sweep too small to amortize the fan-out *)
  let grain =
    match sweep_min_arcs with Some v -> v | None -> Executor.chunk_arcs ()
  in
  let chunks =
    match pool with
    | Some p -> Executor.chunks_for p ~work:m ~grain
    | None -> 1
  in
  ensure_chunks s chunks;
  let chunk_lo ci = ci * m / chunks in
  (* per-solve task closures, reused every iteration: each reads the
     current λ and epoch from the scratch, so the steady state only
     allocates the futures of the fan-out (O(chunks) words/iteration),
     never fresh sweep state *)
  let tasks =
    if chunks <= 1 then [||]
    else
      Array.init (chunks - 1) (fun i ->
          let ci = i + 1 in
          let lo = chunk_lo ci and hi = chunk_lo (ci + 1) in
          fun () -> sweep_chunk s ~srcs ~dsts ~wf ~denf lo hi ci)
  in
  (* unconditional counter updates beat an option match in the hot
     loop; the dummy costs one allocation per un-instrumented solve *)
  let st = match stats with Some st -> st | None -> Stats.create () in
  let d = s.d and pi = s.pi in
  (* initial policy: cheapest out-arc (Figure 1, lines 1-4) by
     default; a caller-supplied warm-start policy overrides [init]
     (the incremental re-solve path); the alternatives ablate how much
     the improved initialization buys (bench E9) *)
  for u = 0 to n - 1 do
    d.{u} <- infinity;
    pi.(u) <- -1
  done;
  (match policy with
  | Some p ->
    if Array.length p <> n then invalid_arg "Howard: wrong policy length";
    Array.iteri
      (fun u a ->
        if a < 0 || a >= m || Digraph.src g a <> u then
          invalid_arg "Howard: invalid warm-start policy";
        pi.(u) <- a;
        d.{u} <- wf.{a})
      p
  | None -> ());
  (* warm-started distances: the weight init above only seeds nodes the
     first backward BFS will not reach (those feeding other policy
     cycles), and stale-but-nearly-feasible potentials from the last
     solve beat raw arc weights there by orders of magnitude — with
     them an unchanged graph reconverges in one sweep *)
  (match potentials with
  | Some pot ->
    if Array.length pot <> n then
      invalid_arg "Howard: wrong potentials length";
    if policy <> None then
      for u = 0 to n - 1 do
        d.{u} <- pot.(u)
      done
  | None -> ());
  (match (policy, init) with
  | Some _, _ -> ()
  | None, `Cheapest_arc ->
    for a = 0 to m - 1 do
      let u = srcs.{a} in
      let w = wf.{a} in
      if w < d.{u} then begin
        d.{u} <- w;
        pi.(u) <- a
      end
    done
  | None, `First_arc ->
    for a = 0 to m - 1 do
      let u = srcs.{a} in
      if pi.(u) < 0 then begin
        pi.(u) <- a;
        d.{u} <- wf.{a}
      end
    done
  | None, `Random seed ->
    (* xorshift-mixed reservoir choice among each node's out-arcs *)
    let state = ref (seed lxor 0x2545F4914F6CDD1D) in
    let next () =
      let x = !state in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      state := x;
      x land max_int
    in
    (* rejection sampling keeps the draw unbiased: a plain [next () mod
       deg] overweights small residues whenever deg does not divide
       max_int + 1 *)
    let draw deg =
      let lim = max_int - (max_int mod deg) in
      let rec go () =
        let x = next () in
        if x >= lim then go () else x mod deg
      in
      go ()
    in
    for u = 0 to n - 1 do
      let deg = Digraph.out_degree g u in
      if deg > 0 then begin
        let pick = draw deg in
        let i = ref 0 in
        Digraph.iter_out g u (fun a ->
            if !i = pick then begin
              pi.(u) <- a;
              d.{u} <- wf.{a}
            end;
            incr i)
      end
    done);
  for u = 0 to n - 1 do
    if pi.(u) < 0 then invalid_arg "Howard: node without out-arc"
  done;
  let scale =
    let acc = ref 1 in
    for a = 0 to m - 1 do
      let w = abs (Digraph.weight g a) in
      if w > !acc then acc := w
    done;
    float_of_int !acc
  in
  s.sweep_eps.(0) <- epsilon *. scale;
  (* Policy evaluation (zero-allocation): find every cycle of the
     functional graph u -> dst(pi(u)) with colour stamps, track the one
     with the smallest exact ratio in the int refs below, and copy its
     arcs into [cycle_arcs] — materialized as a list only on return. *)
  let best_num = ref 0 in
  let best_den = ref 0 (* 0 = none found yet; real denominators are > 0 *) in
  let best_start = ref (-1) in
  let cycle_len = ref 0 in
  let eval_policy () =
    Array.fill s.color 0 n 0;
    best_den := 0;
    for start = 0 to n - 1 do
      if s.color.(start) = 0 then begin
        let len = ref 0 in
        let x = ref start in
        while s.color.(!x) = 0 do
          s.color.(!x) <- 1;
          s.pos.(!x) <- !len;
          s.walk.(!len) <- !x;
          incr len;
          x := dsts.{pi.(!x)}
        done;
        if s.color.(!x) = 1 then begin
          (* new cycle: walk.(pos(!x)) .. walk.(len-1) *)
          st.Stats.cycles_examined <- st.Stats.cycles_examined + 1;
          let num = ref 0 and dn = ref 0 in
          let first = s.pos.(!x) in
          for i = first to !len - 1 do
            let a = pi.(s.walk.(i)) in
            num := !num + Digraph.weight g a;
            dn := !dn + den a
          done;
          if !dn <= 0 then
            invalid_arg "Howard: policy cycle with non-positive denominator \
                         (zero-transit cycle in the ratio problem?)";
          let replace =
            !best_den = 0 || !num * !best_den < !best_num * !dn
          in
          if replace then begin
            best_num := !num;
            best_den := !dn;
            best_start := !x;
            cycle_len := !len - first;
            for i = first to !len - 1 do
              s.cycle_arcs.(i - first) <- pi.(s.walk.(i))
            done
          end
        end;
        (* close the walk *)
        for i = 0 to !len - 1 do
          s.color.(s.walk.(i)) <- 2
        done
      end
    done;
    assert (!best_den > 0) (* every functional graph has a cycle *)
  in
  let cap = (8 * n) + 64 in
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < cap do
    incr iter;
    (match budget with Some b -> Budget.tick b | None -> ());
    st.Stats.iterations <- st.Stats.iterations + 1;
    if tr then begin
      Trace.begin_span sp_iter;
      Trace.begin_span sp_eval
    end;
    eval_policy ();
    let lambda = float_of_int !best_num /. float_of_int !best_den in
    (* node distances by reverse BFS from the cycle entry over policy
       arcs (Figure 1, lines 10-12).  The policy-reverse adjacency is
       counting-sorted into two preallocated int Bigarrays — no cons
       cells, no Queue nodes.  Subrange fills and the cursor copy are
       explicit loops: [Bigarray.Array1.sub] would allocate a view on
       every iteration. *)
    let rev_start = s.rev_start
    and rev_cursor = s.rev_cursor
    and rev_nodes = s.rev_nodes in
    for v = 0 to n do
      rev_start.{v} <- 0
    done;
    for u = 0 to n - 1 do
      let v = dsts.{pi.(u)} in
      rev_start.{v + 1} <- rev_start.{v + 1} + 1
    done;
    for v = 1 to n do
      rev_start.{v} <- rev_start.{v} + rev_start.{v - 1}
    done;
    for v = 0 to n do
      rev_cursor.{v} <- rev_start.{v}
    done;
    for u = 0 to n - 1 do
      let v = dsts.{pi.(u)} in
      rev_nodes.{rev_cursor.{v}} <- u;
      rev_cursor.{v} <- rev_cursor.{v} + 1
    done;
    Array.fill s.visited 0 n false;
    let queue = s.queue in
    let head = ref 0 and tail = ref 0 in
    s.visited.(!best_start) <- true;
    queue.{!tail} <- !best_start;
    incr tail;
    while !head < !tail do
      let x = queue.{!head} in
      incr head;
      for i = rev_start.{x} to rev_start.{x + 1} - 1 do
        let u = rev_nodes.{i} in
        if not s.visited.(u) then begin
          s.visited.(u) <- true;
          let a = pi.(u) in
          d.{u} <- d.{x} +. wf.{a} -. (lambda *. denf.{a});
          queue.{!tail} <- u;
          incr tail
        end
      done
    done;
    (* improvement sweep (Figure 1, lines 13-18): each chunk records
       per-node winners against the distances frozen above; the merge
       applies them.  With one chunk this is the serial kernel; with a
       pool, chunk 0 runs here while chunks 1.. run on the executor. *)
    if tr then begin
      Trace.end_span sp_eval;
      Trace.begin_span sp_sweep
    end;
    let relax_before = st.Stats.relaxations in
    s.sweep_epoch <- s.sweep_epoch + 1;
    s.sweep_lambda.(0) <- lambda;
    (match pool with
    | Some p when chunks > 1 ->
      let futs = Array.map (Executor.async p) tasks in
      sweep_chunk s ~srcs ~dsts ~wf ~denf 0 (chunk_lo 1) 0;
      Array.iter (fun fut -> Executor.await p fut) futs
    | _ -> sweep_chunk s ~srcs ~dsts ~wf ~denf 0 m 0);
    if not (apply_winners s ~n ~chunks st) then converged := true;
    if tr then begin
      Trace.counter_int sp_improved (st.Stats.relaxations - relax_before);
      Trace.end_span sp_sweep;
      Trace.end_span sp_iter
    end
  done;
  (* iteration cap hit: the best policy cycle of the current policy is
     still a sound candidate; the exact finisher corrects any gap.
     On convergence [cycle_arcs] already holds the cycle evaluated
     BEFORE the final sweep's sub-epsilon updates, as Figure 1 wants. *)
  if not !converged then eval_policy ();
  let cycle = ref [] in
  for i = !cycle_len - 1 downto 0 do
    cycle := s.cycle_arcs.(i) :: !cycle
  done;
  (match potentials with
  | Some pot ->
    for u = 0 to n - 1 do
      pot.(u) <- d.{u}
    done
  | None -> ());
  let lambda, witness = Critical.improve_to_optimal ?stats ~den g !cycle in
  if tr then Trace.end_span sp_solve;
  (lambda, witness, Array.sub pi 0 n)

let minimum_cycle_mean ?stats ?budget ?(epsilon = 1e-9) ?init ?scratch ?pool
    ?sweep_min_arcs g =
  let lambda, cycle, _ =
    solve ?stats ?budget ?init ?scratch ?pool ?sweep_min_arcs
      ~ratio:false ~epsilon g
  in
  (lambda, cycle)

let minimum_cycle_ratio ?stats ?budget ?(epsilon = 1e-9) ?init ?scratch ?pool
    ?sweep_min_arcs g =
  Critical.assert_ratio_well_posed g;
  let lambda, cycle, _ =
    solve ?stats ?budget ?init ?scratch ?pool ?sweep_min_arcs
      ~ratio:true ~epsilon g
  in
  (lambda, cycle)

let minimum_cycle_mean_warm ?stats ?(epsilon = 1e-9) ?policy ?potentials
    ?scratch ?pool ?sweep_min_arcs g =
  solve ?stats ?policy ?potentials ?scratch ?pool ?sweep_min_arcs
    ~ratio:false ~epsilon g

let minimum_cycle_ratio_warm ?stats ?(epsilon = 1e-9) ?policy ?potentials
    ?scratch ?pool ?sweep_min_arcs g =
  Critical.assert_ratio_well_posed g;
  solve ?stats ?policy ?potentials ?scratch ?pool ?sweep_min_arcs
    ~ratio:true ~epsilon g

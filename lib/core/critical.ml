let scaled_cost g ~den lambda a =
  (Ratio.den lambda * Digraph.weight g a) - (Ratio.num lambda * den a)

let ratio_of_cycle g ~den cycle =
  let w = Digraph.cycle_weight g cycle in
  let d = List.fold_left (fun s a -> s + den a) 0 cycle in
  Ratio.make w d

type position =
  | Below
  | Optimal of int list
  | Above of int list

(* Tight arcs under potentials [d]: d(dst) = d(src) + cost. *)
let tight_arc g ~cost d a =
  d.(Digraph.dst g a) = d.(Digraph.src g a) + cost a

(* Finds a cycle (arc ids, path order) within the subgraph formed by the
   arcs selected by [keep], via iterative DFS with an explicit arc
   stack.  Returns None if that subgraph is acyclic. *)
let find_cycle_in_subgraph g keep =
  let n = Digraph.n g in
  let color = Array.make n 0 in        (* 0 white, 1 on stack, 2 done *)
  let stack_pos = Array.make n (-1) in (* node -> depth on current path *)
  let path_arcs = Vec.create () in     (* arcs of the current DFS path *)
  let result = ref None in
  let rec dfs u =
    color.(u) <- 1;
    stack_pos.(u) <- Vec.length path_arcs;
    Digraph.iter_out g u (fun a ->
        if !result = None && keep a then begin
          let v = Digraph.dst g a in
          if color.(v) = 1 then begin
            (* back arc: the cycle is the path suffix from v, plus a *)
            let acc = ref [ a ] in
            for i = Vec.length path_arcs - 1 downto stack_pos.(v) do
              acc := Vec.get path_arcs i :: !acc
            done;
            result := Some !acc
          end
          else if color.(v) = 0 then begin
            Vec.push path_arcs a;
            dfs v;
            if !result = None then ignore (Vec.pop path_arcs)
          end
        end);
    if !result = None then begin
      color.(u) <- 2;
      stack_pos.(u) <- -1
    end
  in
  let u = ref 0 in
  while !result = None && !u < n do
    if color.(!u) = 0 then dfs !u;
    incr u
  done;
  !result

let cycle_in g keep = find_cycle_in_subgraph g keep

let assert_ratio_well_posed g =
  match find_cycle_in_subgraph g (fun a -> Digraph.transit g a = 0) with
  | Some _ ->
    invalid_arg
      "cost-to-time ratio undefined: the graph has a cycle of zero total \
       transit time"
  | None -> ()

let locate ?stats ~den g lambda =
  (match stats with Some s -> s.Stats.oracle_calls <- s.Stats.oracle_calls + 1 | None -> ());
  (* scaled costs materialized once: Bellman-Ford re-reads every arc
     cost on each pass, and an int-array load beats re-doing the two
     multiplications behind accessor calls each time *)
  let costs = Array.init (Digraph.m g) (scaled_cost g ~den lambda) in
  let cost a = costs.(a) in
  let on_relax =
    Option.map (fun s () -> s.Stats.relaxations <- s.Stats.relaxations + 1) stats
  in
  match Bellman_ford.run_arr ?on_relax ~costs g with
  | Bellman_ford.Negative_cycle c -> Above c
  | Bellman_ford.Feasible d -> (
    match find_cycle_in_subgraph g (tight_arc g ~cost d) with
    | Some c -> Optimal c
    | None -> Below)

let improve_to_optimal ?stats ~den g cycle =
  if not (Digraph.is_cycle g cycle) then
    invalid_arg "Critical.improve_to_optimal: not a cycle";
  let rec go lambda =
    match locate ?stats ~den g lambda with
    | Optimal w -> (lambda, w)
    | Above better ->
      let lambda' = ratio_of_cycle g ~den better in
      assert (Ratio.lt lambda' lambda);
      go lambda'
    | Below ->
      (* impossible: lambda is the ratio of a genuine cycle *)
      assert false
  in
  go (ratio_of_cycle g ~den cycle)

let critical_arcs ~den g lambda =
  let cost = scaled_cost g ~den lambda in
  match Bellman_ford.run ~cost g with
  | Bellman_ford.Negative_cycle _ -> []
  | Bellman_ford.Feasible d ->
    (* Keep tight arcs, then keep only those inside a nontrivial SCC of
       the tight subgraph: exactly the arcs on some optimum cycle. *)
    let keep = tight_arc g ~cost d in
    let b = Digraph.create_builder (Digraph.n g) in
    let ids = Vec.create () in
    Digraph.iter_arcs g (fun a ->
        if keep a then begin
          ignore
            (Digraph.add_arc b ~src:(Digraph.src g a) ~dst:(Digraph.dst g a)
               ~weight:(Digraph.weight g a) ());
          Vec.push ids a
        end);
    let tight = Digraph.build b in
    let scc = Scc.compute tight in
    let result = ref [] in
    for ta = Digraph.m tight - 1 downto 0 do
      let u = Digraph.src tight ta and v = Digraph.dst tight ta in
      let same = scc.Scc.component.(u) = scc.Scc.component.(v) in
      let cyclic = (not (Scc.is_trivial tight scc scc.Scc.component.(u))) in
      if same && cyclic then result := Vec.get ids ta :: !result
    done;
    !result

(** Lawler's algorithm (Combinatorial Optimization, 1976): binary
    search over λ with a Bellman–Ford negative-cycle oracle on [G_λ]
    (§2.4 of the paper).

    The search runs in floating point down to a width of [epsilon]
    (the "precision" of the paper's Table 1); that alone yields an
    approximate value.  This implementation then hands the last
    negative cycle found to {!Critical.improve_to_optimal}, so the
    returned value is exact — set [exact_finish:false] to measure the
    algorithm exactly as published.

    Preconditions: strongly connected input with at least one arc; for
    the ratio form every cycle must have positive total transit time. *)

val minimum_cycle_mean :
  ?stats:Stats.t -> ?epsilon:float -> ?exact_finish:bool -> ?improved:bool ->
  Digraph.t -> Ratio.t * int list
(** With [exact_finish:false] the result is the ratio of the best cycle
    found by the bisection, whose mean lies within [epsilon] of λ*.
    [improved] (default false) enables the variant announced in §5 of
    the paper: the upper bound drops to the exact ratio of the witness
    cycle instead of the probe value, so each positive oracle answer
    shrinks the interval by more than half (ablated in bench E9). *)

val minimum_cycle_ratio :
  ?stats:Stats.t -> ?epsilon:float -> ?exact_finish:bool -> ?improved:bool ->
  Digraph.t -> Ratio.t * int list

(** HO: Karp's algorithm with the Hartmann–Orlin early-termination
    scheme (Networks 1993; §2.2 of the paper).

    The recurrence and table are Karp's; additionally, at selected
    levels [k] the algorithm (a) walks the predecessor chains of the
    level-[k] walks to collect the cycles they contain and (b) checks
    exactly — via the potentials [d(v) = min_j (D_j(v) − j·λ)] — whether
    the best cycle found proves optimal.  If it does, the algorithm
    stops at level [k] (reported in [stats.level], the "number of
    iterations" of §4.3); otherwise it falls back to the full Karp
    evaluation at [k = n].

    Checks run at every level up to 8, at powers of two, and at [n]:
    the chain walks then cost O(n²) total and the feasibility checks
    O(m·lg n), matching the overhead bound quoted in the paper.

    Precondition: strongly connected input with at least one arc. *)

val minimum_cycle_mean :
  ?stats:Stats.t -> ?budget:Budget.t -> Digraph.t -> Ratio.t * int list
(** [budget] is ticked once per table level.
    @raise Budget.Exceeded when the budget runs out mid-solve. *)

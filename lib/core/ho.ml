let inf = Karp_core.inf

(* Like Karp_core.relax_level but also records, for every entry of row
   [k], the arc that realized it. *)
let relax_level_with_parents ?stats g d par k =
  let n = Digraph.n g in
  let prev = (k - 1) * n and cur = k * n in
  let bump =
    match stats with
    | Some s -> fun () -> s.Stats.arcs_visited <- s.Stats.arcs_visited + 1
    | None -> fun () -> ()
  in
  Digraph.iter_arcs g (fun a ->
      bump ();
      let u = Digraph.src g a in
      let du = d.(prev + u) in
      if du < inf then begin
        let v = Digraph.dst g a in
        let cand = du + Digraph.weight g a in
        if cand < d.(cur + v) then begin
          d.(cur + v) <- cand;
          par.(cur + v) <- a
        end
      end)

type candidate = { mutable num : int; mutable den : int; mutable cycle : int list }

(* Walks the predecessor chain of the level-k walk ending at [v] and
   updates [best] with every cycle found on it.  [last_seen] is a
   scratch array (node -> level within this chain, or -1). *)
let scan_chain ?stats g d par k v last_seen node_at arc_into best =
  let n = Digraph.n g in
  let touched = ref [] in
  let x = ref v in
  node_at.(k) <- v;
  last_seen.(v) <- k;
  touched := v :: !touched;
  (try
     for j = k downto 1 do
       let a = par.((j * n) + !x) in
       arc_into.(j) <- a;
       let u = Digraph.src g a in
       node_at.(j - 1) <- u;
       if last_seen.(u) >= 0 then begin
         (* cycle between levels (j-1) and last_seen.(u) *)
         let hi = last_seen.(u) and lo = j - 1 in
         let num = d.((hi * n) + u) - d.((lo * n) + u) in
         let den = hi - lo in
         (match stats with
         | Some s -> s.Stats.cycles_examined <- s.Stats.cycles_examined + 1
         | None -> ());
         if best.den = 0 || num * best.den < best.num * den then begin
           let cycle = ref [] in
           for l = hi downto lo + 1 do
             cycle := arc_into.(l) :: !cycle
           done;
           best.num <- num;
           best.den <- den;
           best.cycle <- !cycle
         end;
         raise Exit
       end;
       last_seen.(u) <- j - 1;
       touched := u :: !touched;
       x := u
     done
   with Exit -> ());
  List.iter (fun u -> last_seen.(u) <- -1) !touched

(* Exact optimality test of λ = best.num / best.den using potentials
   d(v) = min_{j <= k} (q·D_j(v) − j·p); sound by LP duality: feasible
   potentials prove λ* >= λ, the witness cycle proves λ* <= λ. *)
let proves_optimal g d k best =
  let n = Digraph.n g in
  let p = best.num and q = best.den in
  let pot = Array.make n max_int in
  for j = 0 to k do
    let base = j * n in
    for v = 0 to n - 1 do
      if d.(base + v) < inf then begin
        let cand = (q * d.(base + v)) - (j * p) in
        if cand < pot.(v) then pot.(v) <- cand
      end
    done
  done;
  let ok = ref true in
  for v = 0 to n - 1 do
    if pot.(v) = max_int then ok := false
  done;
  if !ok then
    Digraph.iter_arcs g (fun a ->
        let u = Digraph.src g a and v = Digraph.dst g a in
        if pot.(v) > pot.(u) + (q * Digraph.weight g a) - p then ok := false);
  !ok

let check_level k n = k <= 8 || k land (k - 1) = 0 || k = n

let minimum_cycle_mean ?stats ?budget g =
  if Digraph.m g = 0 then invalid_arg "Ho: graph has no arcs";
  let n = Digraph.n g in
  let d = Karp_core.alloc_table g in
  let par = Array.make ((n + 1) * n) (-1) in
  let last_seen = Array.make n (-1) in
  let node_at = Array.make (n + 1) (-1) in
  let arc_into = Array.make (n + 1) (-1) in
  let best = { num = 0; den = 0; cycle = [] } in
  let result = ref None in
  let k = ref 1 in
  while !result = None && !k <= n do
    (match budget with Some b -> Budget.tick b | None -> ());
    relax_level_with_parents ?stats g d par !k;
    if check_level !k n then begin
      let base = !k * n in
      for v = 0 to n - 1 do
        if d.(base + v) < inf then
          scan_chain ?stats g d par !k v last_seen node_at arc_into best
      done;
      if best.den > 0 && proves_optimal g d !k best then begin
        (match stats with Some s -> s.Stats.level <- !k | None -> ());
        result := Some (Ratio.make best.num best.den, best.cycle)
      end
    end;
    incr k
  done;
  match !result with
  | Some r -> r
  | None ->
    (match stats with Some s -> s.Stats.level <- n | None -> ());
    let lambda = Karp_core.lambda_of_table g d in
    (lambda, Karp_core.witness ?stats g lambda)

(** The safe front-end for arbitrary graphs.

    Following §2 of the paper: the input is decomposed into strongly
    connected components, the chosen algorithm runs on every component
    that contains a cycle, and the best component optimum is returned
    ("this is the way we implemented all of the algorithms").
    Maximization is handled by weight negation. *)

type objective = Minimize | Maximize

type problem =
  | Cycle_mean  (** optimize [w(C)/|C|] *)
  | Cycle_ratio  (** optimize [w(C)/t(C)] — the cost-to-time ratio *)

type report = {
  lambda : Ratio.t;  (** exact optimum over the whole graph *)
  cycle : int list;  (** witness cycle, arc ids of the input graph *)
  components : int;  (** number of cyclic SCCs solved *)
  stats : Stats.t;   (** operation counts accumulated over components *)
}

val preflight : problem:problem -> Digraph.t -> unit
(** The well-posedness checks of {!solve}, exposed for front-ends
    (such as the batch engine) that drive the per-component loop
    themselves.
    @raise Invalid_argument under the conditions documented on
    {!solve}. *)

exception Deadline_exceeded of { partial : report option }
(** Raised by {!solve} when the supplied budget runs out: [partial] is
    the best optimum over the components that completed (an upper bound
    on the true optimum for minimization, lower for maximization), or
    [None] if no component completed.  Under [~jobs]/[~pool] the
    completed set may include components beyond the first failure —
    every finished component contributes to the bound. *)

val solve :
  ?objective:objective ->
  ?problem:problem ->
  ?budget:Budget.t ->
  ?jobs:int ->
  ?pool:Executor.t ->
  algorithm:Registry.algorithm ->
  Digraph.t ->
  report option
(** [None] iff the graph is acyclic (no cycle to optimize).

    The graph is split into its cyclic strongly connected components by
    one O(n+m) partition sweep ({!Scc.partition}); with [jobs > 1] (a
    private pool of [jobs-1] domains plus the calling thread) or an
    externally managed [pool], independent components solve
    concurrently.  The same pool is handed down into each component
    solve, so with [algorithm = Howard] the per-arc improvement sweep
    inside a large component is also chunked across the workers
    ({!Howard.minimum_cycle_mean}) — this is what makes [jobs] pay off
    on a single giant SCC, where the component fan-out alone has
    nothing to parallelize.  The reduction is deterministic: the
    chunked sweep merges winners by (candidate, lowest arc id) and
    per-component results are folded in component order with the serial
    loop's exact tie-breaking, so the report — λ, witness cycle, merged
    stats — is bit-identical for every job count.  Default [jobs = 1]
    runs inline with no domain spawned.

    [budget] bounds the work: the clock is checked before every
    component and budget-supporting algorithms
    ({!Registry.supports_budget}) tick it mid-solve (the iteration
    counter is atomic, so one budget governs the whole pool);
    exhaustion raises {!Deadline_exceeded} carrying the partial result.

    @raise Invalid_argument for [Cycle_ratio] if some cycle has zero
    total transit time (the ratio is then ill-defined), when the
    weight magnitudes are so large that the exact native-int rational
    arithmetic could overflow (roughly [|w| · D² < 2⁵⁹] is required,
    with [D] = node count for means and total transit time for
    ratios — far beyond the paper's [1..10000] weights at any
    realistic size), or if [jobs < 1]. *)

(** {1 Convenience wrappers} — default algorithm {!Registry.Howard},
    the study's overall winner. *)

val minimum_cycle_mean :
  ?algorithm:Registry.algorithm -> ?jobs:int -> Digraph.t -> report option

val maximum_cycle_mean :
  ?algorithm:Registry.algorithm -> ?jobs:int -> Digraph.t -> report option

val minimum_cycle_ratio :
  ?algorithm:Registry.algorithm -> ?jobs:int -> Digraph.t -> report option

val maximum_cycle_ratio :
  ?algorithm:Registry.algorithm -> ?jobs:int -> Digraph.t -> report option

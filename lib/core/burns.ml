(* Longest path, counted in arcs, starting at each node inside the DAG
   of tight arcs: xi(u) = max over tight (u,v) of 1 + xi(v).  Kahn
   topological order over the tight subgraph, processed in reverse. *)
let xi_of_tight g tight =
  let n = Digraph.n g in
  let indeg = Array.make n 0 in
  Digraph.iter_arcs g (fun a ->
      if tight a then indeg.(Digraph.dst g a) <- indeg.(Digraph.dst g a) + 1);
  let order = Array.make n (-1) in
  let k = ref 0 in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    order.(!k) <- u;
    incr k;
    Digraph.iter_out g u (fun a ->
        if tight a then begin
          let v = Digraph.dst g a in
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.add v queue
        end)
  done;
  assert (!k = n) (* the caller guarantees the tight subgraph is acyclic *);
  let xi = Array.make n 0 in
  for i = n - 1 downto 0 do
    let u = order.(i) in
    Digraph.iter_out g u (fun a ->
        if tight a then xi.(u) <- max xi.(u) (1 + xi.(Digraph.dst g a)))
  done;
  xi

let any_cycle g =
  match Critical.cycle_in g (fun _ -> true) with
  | Some c -> c
  | None -> invalid_arg "Burns: input graph is acyclic"

let solve ?stats ~den ~lambda0 ~epsilon g =
  if Digraph.m g = 0 then invalid_arg "Burns: graph has no arcs";
  let n = Digraph.n g in
  let m = Digraph.m g in
  let maxabs =
    Digraph.fold_arcs g (fun acc a -> max acc (abs (Digraph.weight g a))) 1
  in
  let tol = epsilon *. float_of_int maxabs in
  let costf a =
    float_of_int (Digraph.weight g a) -. (lambda0 *. float_of_int (den a))
  in
  let d =
    match Bellman_ford.run_float ~cost:costf g with
    | Ok pot -> pot
    | Error _ -> assert false (* λ0 is below every cycle ratio *)
  in
  let lambda = ref lambda0 in
  let slack = Array.make m 0.0 in
  let cap = (4 * n) + 64 in
  let iter = ref 0 in
  let result = ref None in
  while !result = None && !iter < cap do
    incr iter;
    (match stats with
    | Some s -> s.Stats.iterations <- s.Stats.iterations + 1
    | None -> ());
    Digraph.iter_arcs g (fun a ->
        slack.(a) <-
          float_of_int (Digraph.weight g a)
          -. (!lambda *. float_of_int (den a))
          +. d.(Digraph.src g a) -. d.(Digraph.dst g a));
    let tight a = slack.(a) <= tol in
    match Critical.cycle_in g tight with
    | Some c -> result := Some c
    | None ->
      let xi = xi_of_tight g tight in
      (* θ = min over arcs with ξ(v)+1 > ξ(u) of slack / (ξ(v)+1−ξ(u));
         tight arcs satisfy ξ(u) ≥ ξ(v)+1 and are excluded automatically *)
      let theta = ref infinity in
      Digraph.iter_arcs g (fun a ->
          let coeff =
            xi.(Digraph.dst g a) + 1 - xi.(Digraph.src g a)
          in
          if coeff > 0 then begin
            let t = slack.(a) /. float_of_int coeff in
            if t < !theta then theta := t
          end);
      if !theta = infinity || !theta <= 0.0 then
        (* no useful step (numerically stuck): bail out to the exact
           finisher from any cycle *)
        result := Some (any_cycle g)
      else begin
        lambda := !lambda +. !theta;
        for v = 0 to n - 1 do
          d.(v) <- d.(v) +. (!theta *. float_of_int xi.(v))
        done
      end
  done;
  let cycle = match !result with Some c -> c | None -> any_cycle g in
  Critical.improve_to_optimal ?stats ~den g cycle

let minimum_cycle_mean ?stats ?(epsilon = 1e-9) g =
  (* every cycle mean is at least the minimum arc weight *)
  let lambda0 = float_of_int (Digraph.min_weight g) in
  solve ?stats ~den:(fun _ -> 1) ~lambda0 ~epsilon g

let minimum_cycle_ratio ?stats ?(epsilon = 1e-9) g =
  Critical.assert_ratio_well_posed g;
  (* safe lower bound: |w(C)/t(C)| <= n·max|w| when t(C) >= 1 *)
  let maxabs =
    Digraph.fold_arcs g (fun acc a -> max acc (abs (Digraph.weight g a))) 1
  in
  let lambda0 = float_of_int (-(Digraph.n g * maxabs) - 1) in
  solve ?stats ~den:(Digraph.transit g) ~lambda0 ~epsilon g

type objective = Minimize | Maximize

type problem = Cycle_mean | Cycle_ratio

type report = {
  lambda : Ratio.t;
  cycle : int list;
  components : int;
  stats : Stats.t;
}

(* A zero-transit cycle makes the ratio problem ill-posed; such a cycle
   exists iff the subgraph of zero-transit arcs is cyclic. *)
let check_ratio_well_posed g =
  match Critical.cycle_in g (fun a -> Digraph.transit g a = 0) with
  | Some _ ->
    invalid_arg "Solver: cycle with zero total transit time \
                 (cost-to-time ratio undefined)"
  | None -> ()

(* Exact arithmetic safety: every cross-multiplication in the library
   is bounded by (2·D·W)·D where W = max |weight| and D = the largest
   possible denominator (n for means, total transit for ratios); keep
   that product far from max_int. *)
let check_arithmetic_range ~problem g =
  if Digraph.m g > 0 then begin
    let w = max 1 (max (abs (Digraph.min_weight g)) (abs (Digraph.max_weight g))) in
    let d =
      match problem with
      | Cycle_mean -> max 1 (Digraph.n g)
      | Cycle_ratio -> max (Digraph.n g) (Digraph.total_transit g)
    in
    if d > 0 && w > max_int / 8 / d / d then
      invalid_arg
        (Printf.sprintf
           "Solver: weights up to %d on an instance with denominator range \
            %d would overflow exact native-int arithmetic" w d)
  end

let preflight ~problem g =
  check_arithmetic_range ~problem g;
  match problem with
  | Cycle_ratio -> check_ratio_well_posed g
  | Cycle_mean -> ()

exception Deadline_exceeded of { partial : report option }

let solve ?(objective = Minimize) ?(problem = Cycle_mean) ?budget ~algorithm g
    =
  preflight ~problem g;
  let g_min =
    match objective with Minimize -> g | Maximize -> Digraph.negate_weights g
  in
  let run =
    match problem with
    | Cycle_mean -> Registry.minimum_cycle_mean algorithm
    | Cycle_ratio -> Registry.minimum_cycle_ratio algorithm
  in
  let stats = ref (Stats.create ()) in
  let scc = Scc.compute g_min in
  let best = ref None in
  let components = ref 0 in
  (* best-so-far as a full report, with the objective sign restored —
     this is both the happy-path return value and the partial result
     carried by Deadline_exceeded *)
  let current_report () =
    match !best with
    | None -> None
    | Some (lambda, cycle) ->
      let lambda =
        match objective with Minimize -> lambda | Maximize -> Ratio.neg lambda
      in
      Some { lambda; cycle; components = !components; stats = !stats }
  in
  (try
     List.iter
       (fun nodes ->
         (match budget with Some b -> Budget.check b | None -> ());
         let sub, _, arc_of_sub = Digraph.induced g_min nodes in
         let sub_stats = Stats.create () in
         let lambda, cycle = run ~stats:sub_stats ?budget sub in
         incr components;
         stats := Stats.merge !stats sub_stats;
         let cycle = List.map (fun a -> arc_of_sub.(a)) cycle in
         match !best with
         | Some (bl, _) when Ratio.leq bl lambda -> ()
         | _ -> best := Some (lambda, cycle))
       (Scc.nontrivial_components g_min scc)
   with Budget.Exceeded _ ->
     raise (Deadline_exceeded { partial = current_report () }));
  current_report ()

let minimum_cycle_mean ?(algorithm = Registry.Howard) g =
  solve ~objective:Minimize ~problem:Cycle_mean ~algorithm g

let maximum_cycle_mean ?(algorithm = Registry.Howard) g =
  solve ~objective:Maximize ~problem:Cycle_mean ~algorithm g

let minimum_cycle_ratio ?(algorithm = Registry.Howard) g =
  solve ~objective:Minimize ~problem:Cycle_ratio ~algorithm g

let maximum_cycle_ratio ?(algorithm = Registry.Howard) g =
  solve ~objective:Maximize ~problem:Cycle_ratio ~algorithm g

type objective = Minimize | Maximize

type problem = Cycle_mean | Cycle_ratio

type report = {
  lambda : Ratio.t;
  cycle : int list;
  components : int;
  stats : Stats.t;
}

(* A zero-transit cycle makes the ratio problem ill-posed; such a cycle
   exists iff the subgraph of zero-transit arcs is cyclic. *)
let check_ratio_well_posed g =
  match Critical.cycle_in g (fun a -> Digraph.transit g a = 0) with
  | Some _ ->
    invalid_arg "Solver: cycle with zero total transit time \
                 (cost-to-time ratio undefined)"
  | None -> ()

(* Exact arithmetic safety: every cross-multiplication in the library
   is bounded by (2·D·W)·D where W = max |weight| and D = the largest
   possible denominator (n for means, total transit for ratios); keep
   that product far from max_int. *)
let check_arithmetic_range ~problem g =
  if Digraph.m g > 0 then begin
    let w = max 1 (max (abs (Digraph.min_weight g)) (abs (Digraph.max_weight g))) in
    let d =
      match problem with
      | Cycle_mean -> max 1 (Digraph.n g)
      | Cycle_ratio -> max (Digraph.n g) (Digraph.total_transit g)
    in
    if d > 0 && w > max_int / 8 / d / d then
      invalid_arg
        (Printf.sprintf
           "Solver: weights up to %d on an instance with denominator range \
            %d would overflow exact native-int arithmetic" w d)
  end

let preflight ~problem g =
  check_arithmetic_range ~problem g;
  match problem with
  | Cycle_ratio -> check_ratio_well_posed g
  | Cycle_mean -> ()

exception Deadline_exceeded of { partial : report option }

let sp_partition = Obs.intern "solver.partition"
let sp_component = Obs.intern "solver.component"
let sp_reduce = Obs.intern "solver.reduce"
let sp_comp_arcs = Obs.intern "solver.component_arcs"

let solve ?(objective = Minimize) ?(problem = Cycle_mean) ?budget ?(jobs = 1)
    ?pool ~algorithm g =
  if jobs < 1 then invalid_arg "Solver.solve: jobs must be >= 1";
  preflight ~problem g;
  let g_min =
    match objective with Minimize -> g | Maximize -> Digraph.negate_weights g
  in
  let run =
    match problem with
    | Cycle_mean -> Registry.minimum_cycle_mean algorithm
    | Cycle_ratio -> Registry.minimum_cycle_ratio algorithm
  in
  let tr = !Obs.enabled_flag in
  if tr then Trace.begin_span sp_partition;
  let scc = Scc.compute g_min in
  (* one O(n+m) sweep builds every cyclic-SCC subproblem, replacing the
     former per-component Digraph.induced scans (O(m · #SCCs)) *)
  let subs = Scc.partition g_min scc in
  if tr then Trace.end_span sp_partition;
  let solve_sub ?pool (sp : Scc.subproblem) =
    (match budget with Some b -> Budget.check b | None -> ());
    let tr = !Obs.enabled_flag in
    if tr then begin
      Trace.begin_span sp_component;
      Trace.counter_int sp_comp_arcs (Digraph.m sp.Scc.sub)
    end;
    let sub_stats = Stats.create () in
    let lambda, cycle = run ~stats:sub_stats ?budget ?pool sp.Scc.sub in
    if tr then Trace.end_span sp_component;
    (lambda, List.map (fun a -> sp.Scc.arc_of_sub.(a)) cycle, sub_stats)
  in
  (* Per-component results in component (reverse topological) order;
     [None] marks a component that did not complete within the budget.
     Serial and parallel paths fill the same array, so the reduction
     below is identical for every job count. *)
  let exceeded = ref false in
  let results =
    match pool with
    | None when jobs = 1 ->
      let out = Array.make (Array.length subs) None in
      (try Array.iteri (fun i sp -> out.(i) <- Some (solve_sub sp)) subs
       with Budget.Exceeded _ -> exceeded := true);
      out
    | _ ->
      let p, owned =
        match pool with
        | Some p -> (p, false)
        | None -> (Executor.create ~jobs, true)
      in
      (* Arbitration between the two levels of parallelism.  The pool
         can serve both: components fan out here, and a Howard solve
         can re-use it to chunk its improvement sweep (help-first
         waiting makes the nesting deadlock-free).  But when the
         component fan-out already saturates the workers, nested sweep
         chunks only add queueing and merge overhead — so a component
         gets the inner pool only if the fan-out leaves workers idle
         (fewer components than jobs) or the component dominates the
         cyclic arc mass (≥ half; one giant SCC among crumbs is
         exactly where the intra-solve sweep is the only win).  Purely
         a placement decision: results are bit-identical either way. *)
      let total_arcs =
        Array.fold_left (fun acc sp -> acc + Digraph.m sp.Scc.sub) 0 subs
      in
      let saturated = Array.length subs >= Executor.jobs p in
      let inner_pool sp =
        if (not saturated) || 2 * Digraph.m sp.Scc.sub >= total_arcs then
          Some p
        else None
      in
      let compute () =
        subs
        |> Array.map (fun sp ->
               let inner = inner_pool sp in
               Executor.async p (fun () -> solve_sub ?pool:inner sp))
        |> Array.map (fun fut ->
               match Executor.await p fut with
               | v -> Some v
               | exception Budget.Exceeded _ ->
                 exceeded := true;
                 None)
      in
      if owned then
        Fun.protect ~finally:(fun () -> Executor.shutdown p) compute
      else compute ()
  in
  (* deterministic reduction: fold completed components in component
     order, whatever order the domains finished in; ties keep the
     lower-id component's witness, exactly as the serial loop did *)
  if tr then Trace.begin_span sp_reduce;
  let stats = ref (Stats.create ()) in
  let best = ref None in
  let components = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some (lambda, cycle, sub_stats) -> (
        incr components;
        stats := Stats.merge !stats sub_stats;
        match !best with
        | Some (bl, _) when Ratio.leq bl lambda -> ()
        | _ -> best := Some (lambda, cycle)))
    results;
  if tr then Trace.end_span sp_reduce;
  (* best-so-far as a full report, with the objective sign restored —
     this is both the happy-path return value and the partial result
     carried by Deadline_exceeded *)
  let current_report () =
    match !best with
    | None -> None
    | Some (lambda, cycle) ->
      let lambda =
        match objective with Minimize -> lambda | Maximize -> Ratio.neg lambda
      in
      Some { lambda; cycle; components = !components; stats = !stats }
  in
  if !exceeded then raise (Deadline_exceeded { partial = current_report () })
  else current_report ()

let minimum_cycle_mean ?(algorithm = Registry.Howard) ?jobs g =
  solve ~objective:Minimize ~problem:Cycle_mean ?jobs ~algorithm g

let maximum_cycle_mean ?(algorithm = Registry.Howard) ?jobs g =
  solve ~objective:Maximize ~problem:Cycle_mean ?jobs ~algorithm g

let minimum_cycle_ratio ?(algorithm = Registry.Howard) ?jobs g =
  solve ~objective:Minimize ~problem:Cycle_ratio ?jobs ~algorithm g

let maximum_cycle_ratio ?(algorithm = Registry.Howard) ?jobs g =
  solve ~objective:Maximize ~problem:Cycle_ratio ?jobs ~algorithm g

(** Cooperative iteration / wall-clock budgets for long-running solves.

    A budget is threaded (optionally) through the iterative algorithms:
    Howard ticks once per policy iteration, HO once per table level,
    Karp2 once per relaxation pass, and {!Solver} checks the clock
    between strongly connected components.  When the budget runs out
    the algorithm escapes with {!Exceeded} instead of finishing — the
    engine's portfolio policy uses iteration budgets to decide when to
    fall back from Howard to HO to Karp2, and deadline budgets to honor
    per-request time limits.

    The module is clock-agnostic (the core library has no [unix]
    dependency): callers that want a wall-clock deadline supply [~now]
    (e.g. [Unix.gettimeofday]) together with the absolute
    [~deadline_at] in the same time base.

    Budgets are domain-safe: the iteration counter is an [Atomic.t], so
    a single budget may be shared by the per-SCC subtasks of a parallel
    {!Solver.solve} — exactly [max_iterations] ticks succeed pool-wide,
    whichever domains perform them. *)

type cause = Iterations | Deadline

exception Exceeded of cause

val cause_name : cause -> string
(** ["iterations"] or ["deadline"]. *)

type t

val create :
  ?max_iterations:int -> ?now:(unit -> float) -> ?deadline_at:float ->
  unit -> t
(** Omitted [max_iterations] means unbounded; omitted [deadline_at]
    means no time limit.  @raise Invalid_argument if [deadline_at] is
    given without [now]. *)

val tick : t -> unit
(** Consume one iteration and check the clock.
    @raise Exceeded when either limit is exhausted. *)

val check : t -> unit
(** Clock check only (does not consume an iteration).
    @raise Exceeded past the deadline. *)

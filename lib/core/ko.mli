(** KO: the Karp–Orlin parametric shortest path algorithm (Discrete
    Applied Mathematics, 1981), O(nm log n) with Fibonacci heaps.
    See {!Parametric} for the engine; KO keeps one heap entry per arc.

    Preconditions: strongly connected input with at least one arc; for
    the ratio form every cycle needs positive total transit time. *)

val minimum_cycle_mean :
  ?stats:Stats.t -> ?heap:Parametric.heap_kind -> Digraph.t ->
  Ratio.t * int list

val minimum_cycle_ratio :
  ?stats:Stats.t -> ?heap:Parametric.heap_kind -> Digraph.t ->
  Ratio.t * int list

(** A work-stealing-style task pool on OCaml 5 domains.

    [create ~jobs] provides [jobs]-way parallelism: [jobs - 1] worker
    domains plus the coordinating thread itself, which {e helps} — in
    {!await} it executes queued tasks instead of blocking.  Help-first
    waiting means nested fan-outs (a batch request that spawns per-SCC
    subtasks and awaits them from inside a task) cannot deadlock, and
    [jobs = 1] degenerates to plain inline execution with no domain
    spawned at all.

    Tasks must not share mutable state: give every task its own
    {!Stats.t} / {!Budget.t} and merge at the join
    ({!Stats.merge}). *)

type t

type 'a future

val create : jobs:int -> t
(** @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

val async : t -> (unit -> 'a) -> 'a future
(** Queue a task.  @raise Invalid_argument after {!shutdown}. *)

val await : t -> 'a future -> 'a
(** Block until the future resolves, executing queued tasks while
    waiting.  Re-raises (with its backtrace) any exception the task
    died with — including {!Budget.Exceeded}. *)

val shutdown : t -> unit
(** Drain the queue, join the worker domains.  Idempotent. *)

val sample_metrics : t -> Metrics.t -> unit
(** Export pool-health counters into a metrics registry:
    [ocr_exec_enqueued_total] / [ocr_exec_dequeued_total] /
    [ocr_exec_helped_total] counters, an [ocr_exec_queue_depth] gauge,
    and an [ocr_exec_utilization] gauge (cumulative task-body time over
    wall-clock capacity).  The underlying counters only accumulate
    while observability is enabled ({!Obs.enable}). *)

(** A work-stealing-style task pool on OCaml 5 domains.

    [create ~jobs] provides [jobs]-way parallelism: [jobs - 1] worker
    domains plus the coordinating thread itself, which {e helps} — in
    {!await} it executes queued tasks instead of blocking.  Help-first
    waiting means nested fan-outs (a batch request that spawns per-SCC
    subtasks and awaits them from inside a task) cannot deadlock, and
    [jobs = 1] degenerates to plain inline execution with no domain
    spawned at all.

    Tasks must not share mutable state: give every task its own
    {!Stats.t} / {!Budget.t} and merge at the join
    ({!Stats.merge}). *)

type t

type 'a future

val create : jobs:int -> t
(** @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

val default_chunk_arcs : int
(** The built-in arcs-per-chunk grain: [4096]. *)

val chunk_arcs : unit -> int
(** The arcs-per-chunk grain for data-parallel sweeps: the value of
    [OCR_CHUNK_ARCS] when set to a positive integer, else
    {!default_chunk_arcs}.  Read per call, so tests and bench sweeps
    can vary the knob between solves. *)

val chunks_for : t -> work:int -> grain:int -> int
(** [chunks_for t ~work ~grain] is the number of chunks a sweep over
    [work] items should use on this pool:
    [max 1 (min (jobs t) (work / grain))] — at least [grain] items per
    chunk, never more chunks than workers, and always [1] on a
    single-worker pool.  [1] means "stay serial": callers skip the
    fan-out entirely.  The split never affects results, only where the
    items are processed. *)

val async : t -> (unit -> 'a) -> 'a future
(** Queue a task.  @raise Invalid_argument after {!shutdown}. *)

val await : t -> 'a future -> 'a
(** Block until the future resolves, executing queued tasks while
    waiting.  Re-raises (with its backtrace) any exception the task
    died with — including {!Budget.Exceeded}. *)

val shutdown : t -> unit
(** Drain the queue, join the worker domains.  Idempotent. *)

val sample_metrics : t -> Metrics.t -> unit
(** Export pool-health counters into a metrics registry:
    [ocr_exec_enqueued_total] / [ocr_exec_dequeued_total] /
    [ocr_exec_helped_total] counters, an [ocr_exec_queue_depth] gauge,
    and an [ocr_exec_utilization] gauge (cumulative task-body time over
    wall-clock capacity).  The underlying counters only accumulate
    while observability is enabled ({!Obs.enable}). *)

let minimum_cycle_mean ?stats ?heap g =
  Parametric.minimum_cycle_mean ?stats ?heap ~variant:`Ko g

let minimum_cycle_ratio ?stats ?heap g =
  Parametric.minimum_cycle_ratio ?stats ?heap ~variant:`Ko g

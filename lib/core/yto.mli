(** YTO: the Young–Tarjan–Orlin parametric shortest path algorithm
    (Networks, 1991), O(nm + n² log n) — an efficient implementation of
    KO keeping one heap entry per node and touching only the keys that
    a pivot actually changes.  §4.2 of the paper compares the two by
    heap operation counts.

    Preconditions: strongly connected input with at least one arc; for
    the ratio form every cycle needs positive total transit time. *)

val minimum_cycle_mean :
  ?stats:Stats.t -> ?heap:Parametric.heap_kind -> Digraph.t ->
  Ratio.t * int list

val minimum_cycle_ratio :
  ?stats:Stats.t -> ?heap:Parametric.heap_kind -> Digraph.t ->
  Ratio.t * int list

(** Karp's minimum mean cycle algorithm (Discrete Mathematics, 1978).

    Θ(nm) time and Θ(n²) space; the best and worst cases coincide
    because the dynamic program always fills the complete
    [(n+1) × n] table (§2.2 of the paper).

    Precondition (all algorithm modules): the input graph is strongly
    connected and contains at least one arc, hence at least one cycle.
    Use {!Solver} for arbitrary graphs. *)

val minimum_cycle_mean : ?stats:Stats.t -> Digraph.t -> Ratio.t * int list
(** Exact minimum cycle mean and a critical cycle (arc ids, path
    order). *)

type variant = [ `Ko | `Yto ]
type heap_kind = [ `Fibonacci | `Binary | `Pairing ]

(* ------------------------------------------------------------------ *)
(* pluggable heaps over (element:int, key:Ratio.t)                     *)
(* ------------------------------------------------------------------ *)

(* The engine needs two flavours of key maintenance, matching the two
   published variants: [replace] is KO's delete-then-insert, [update]
   is YTO's decrease-key-when-possible.  [extract_min] detaches the
   element, after which it is absent until re-set. *)
module type KEY_HEAP = sig
  type t

  val create : ?stats:Heap_stats.t -> capacity:int -> unit -> t
  val is_empty : t -> bool
  val extract_min : t -> Ratio.t * int
  val replace : t -> int -> Ratio.t option -> unit
  val update : t -> int -> Ratio.t option -> unit
end

module Fib_heap : KEY_HEAP = struct
  type t = {
    heap : (Ratio.t, int) Fibonacci_heap.t;
    handle : (Ratio.t, int) Fibonacci_heap.node option array;
  }

  let create ?stats ~capacity () =
    {
      heap = Fibonacci_heap.create ?stats ~cmp:Ratio.compare ();
      handle = Array.make (max capacity 1) None;
    }

  let is_empty t = Fibonacci_heap.is_empty t.heap

  let extract_min t =
    let k, e = Fibonacci_heap.extract_min t.heap in
    t.handle.(e) <- None;
    (k, e)

  let remove t e =
    match t.handle.(e) with
    | Some h ->
      Fibonacci_heap.delete t.heap h;
      t.handle.(e) <- None
    | None -> ()

  let replace t e key =
    remove t e;
    match key with
    | Some k -> t.handle.(e) <- Some (Fibonacci_heap.insert t.heap k e)
    | None -> ()

  let update t e key =
    match (t.handle.(e), key) with
    | None, Some k -> t.handle.(e) <- Some (Fibonacci_heap.insert t.heap k e)
    | None, None -> ()
    | Some _, None -> remove t e
    | Some h, Some k ->
      let c = Ratio.compare k (Fibonacci_heap.node_key h) in
      if c < 0 then Fibonacci_heap.decrease_key t.heap h k
      else if c > 0 then replace t e key
end

module Bin_heap : KEY_HEAP = struct
  type t = Ratio.t Binary_heap.t

  let create ?stats ~capacity () =
    Binary_heap.create ?stats ~capacity:(max capacity 1) ~cmp:Ratio.compare ()

  let is_empty = Binary_heap.is_empty
  let extract_min t =
    let e, k = Binary_heap.extract_min t in
    (k, e)

  let replace t e key =
    Binary_heap.remove t e;
    match key with Some k -> Binary_heap.insert t e k | None -> ()

  let update t e key =
    match key with
    | Some k -> Binary_heap.update_key t e k
    | None -> Binary_heap.remove t e
end

module Pair_heap : KEY_HEAP = struct
  type t = {
    heap : (Ratio.t, int) Pairing_heap.t;
    handle : (Ratio.t, int) Pairing_heap.node option array;
  }

  let create ?stats ~capacity () =
    {
      heap = Pairing_heap.create ?stats ~cmp:Ratio.compare ();
      handle = Array.make (max capacity 1) None;
    }

  let is_empty t = Pairing_heap.is_empty t.heap

  let extract_min t =
    let k, e = Pairing_heap.extract_min t.heap in
    t.handle.(e) <- None;
    (k, e)

  let remove t e =
    match t.handle.(e) with
    | Some h ->
      Pairing_heap.delete t.heap h;
      t.handle.(e) <- None
    | None -> ()

  let replace t e key =
    remove t e;
    match key with
    | Some k -> t.handle.(e) <- Some (Pairing_heap.insert t.heap k e)
    | None -> ()

  let update t e key =
    match (t.handle.(e), key) with
    | None, Some k -> t.handle.(e) <- Some (Pairing_heap.insert t.heap k e)
    | None, None -> ()
    | Some _, None -> remove t e
    | Some h, Some k ->
      let c = Ratio.compare k (Pairing_heap.node_key h) in
      if c < 0 then Pairing_heap.decrease_key t.heap h k
      else if c > 0 then replace t e key
end

let heap_module : heap_kind -> (module KEY_HEAP) = function
  | `Fibonacci -> (module Fib_heap)
  | `Binary -> (module Bin_heap)
  | `Pairing -> (module Pair_heap)

(* ------------------------------------------------------------------ *)
(* initial tree: shortest paths in G_λ as λ → −∞                       *)
(* ------------------------------------------------------------------ *)

(* With cost w − λ·t and λ → −∞, paths compare lexicographically by
   (total transit, total weight).  A FIFO Bellman-Ford over the pairs
   converges because every cycle is lex-positive: t(C) > 0, or
   t(C) = 0 with w(C) >= 0 (zero-transit negative cycles are excluded
   by the well-posedness precondition).  For the mean problem (t ≡ 1)
   this specializes to BFS layers with a per-layer weight DP. *)
let initial_tree ~den g =
  let n = Digraph.n g in
  let dt = Array.make n max_int in
  let dw = Array.make n max_int in
  let parent = Array.make n (-1) in
  dt.(0) <- 0;
  dw.(0) <- 0;
  let in_queue = Array.make n false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  in_queue.(0) <- true;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    in_queue.(u) <- false;
    Digraph.iter_out g u (fun a ->
        let v = Digraph.dst g a in
        let ct = dt.(u) + den a and cw = dw.(u) + Digraph.weight g a in
        if ct < dt.(v) || (ct = dt.(v) && cw < dw.(v)) then begin
          dt.(v) <- ct;
          dw.(v) <- cw;
          parent.(v) <- a;
          if not in_queue.(v) then begin
            in_queue.(v) <- true;
            Queue.add v queue
          end
        end)
  done;
  Array.iteri
    (fun v t ->
      if t = max_int then
        invalid_arg
          (Printf.sprintf
             "Parametric: node %d unreachable from node 0 (input must be \
              strongly connected)" v))
    dt;
  (dt, dw, parent)

let key ~den g dt dw a =
  let u = Digraph.src g a and v = Digraph.dst g a in
  let d = dt.(u) + den a - dt.(v) in
  if d <= 0 then None
  else Some (Ratio.make (dw.(u) + Digraph.weight g a - dw.(v)) d)

(* true iff [anc] lies on the tree path from [x] to the root *)
let is_ancestor g parent anc x =
  let rec go x = x = anc || (parent.(x) >= 0 && go (Digraph.src g parent.(x))) in
  go x

(* cycle made of the tree path v ~> u followed by the arc a = (u, v) *)
let pivot_cycle g parent a =
  let v = Digraph.dst g a in
  let rec path acc x =
    if x = v then acc else path (parent.(x) :: acc) (Digraph.src g parent.(x))
  in
  path [ a ] (Digraph.src g a)

(* nodes of the subtree rooted at v, via freshly built children lists *)
let subtree g parent v =
  let n = Digraph.n g in
  let children = Array.make n [] in
  for x = 0 to n - 1 do
    if parent.(x) >= 0 then begin
      let p = Digraph.src g parent.(x) in
      children.(p) <- x :: children.(p)
    end
  done;
  let acc = Vec.create () in
  let rec go x =
    Vec.push acc x;
    List.iter go children.(x)
  in
  go v;
  acc

let bump_iter stats =
  match stats with
  | Some s -> s.Stats.iterations <- s.Stats.iterations + 1
  | None -> ()

(* ------------------------------------------------------------------ *)
(* KO: one heap entry per arc                                          *)
(* ------------------------------------------------------------------ *)

let run_ko (module H : KEY_HEAP) ?stats ~den g =
  let n = Digraph.n g and m = Digraph.m g in
  let dt, dw, parent = initial_tree ~den g in
  let heap_stats = Option.map (fun s -> s.Stats.heap) stats in
  let heap = H.create ?stats:heap_stats ~capacity:m () in
  for a = 0 to m - 1 do
    H.replace heap a (key ~den g dt dw a)
  done;
  let in_s = Array.make n false in
  let result = ref None in
  let guard = ref ((4 * n * n) + 64) in
  while !result = None do
    decr guard;
    if !guard < 0 then failwith "Parametric(KO): pivot bound exceeded";
    if H.is_empty heap then
      failwith "Parametric(KO): heap exhausted (acyclic input?)";
    let lambda_hat, a = H.extract_min heap in
    bump_iter stats;
    let u = Digraph.src g a and v = Digraph.dst g a in
    if is_ancestor g parent v u then
      result := Some (lambda_hat, pivot_cycle g parent a)
    else begin
      let delta_w = dw.(u) + Digraph.weight g a - dw.(v) in
      let delta_t = dt.(u) + den a - dt.(v) in
      let s = subtree g parent v in
      Vec.iter
        (fun x ->
          in_s.(x) <- true;
          dw.(x) <- dw.(x) + delta_w;
          dt.(x) <- dt.(x) + delta_t)
        s;
      parent.(v) <- a;
      (* keys change exactly for arcs with one endpoint in the moved
         subtree; KO refreshes them all by delete + insert *)
      Vec.iter
        (fun x ->
          Digraph.iter_out g x (fun b ->
              if not in_s.(Digraph.dst g b) then
                H.replace heap b (key ~den g dt dw b));
          Digraph.iter_in g x (fun b ->
              if not in_s.(Digraph.src g b) then
                H.replace heap b (key ~den g dt dw b)))
        s;
      Vec.iter (fun x -> in_s.(x) <- false) s
    end
  done;
  Option.get !result

(* ------------------------------------------------------------------ *)
(* YTO: one heap entry per node (min over its in-arcs)                 *)
(* ------------------------------------------------------------------ *)

let run_yto (module H : KEY_HEAP) ?stats ~den g =
  let n = Digraph.n g in
  let dt, dw, parent = initial_tree ~den g in
  let heap_stats = Option.map (fun s -> s.Stats.heap) stats in
  let heap = H.create ?stats:heap_stats ~capacity:n () in
  let best_arc = Array.make n (-1) in
  let node_key v =
    Digraph.fold_in g v
      (fun acc a ->
        match key ~den g dt dw a with
        | None -> acc
        | Some k -> (
          match acc with
          | Some (bk, _) when Ratio.leq bk k -> acc
          | _ -> Some (k, a)))
      None
  in
  let refresh v =
    match node_key v with
    | None ->
      best_arc.(v) <- -1;
      H.update heap v None
    | Some (k, a) ->
      best_arc.(v) <- a;
      H.update heap v (Some k)
  in
  for v = 0 to n - 1 do
    refresh v
  done;
  let in_s = Array.make n false in
  let affected = Array.make n false in
  let result = ref None in
  let guard = ref ((4 * n * n) + 64) in
  while !result = None do
    decr guard;
    if !guard < 0 then failwith "Parametric(YTO): pivot bound exceeded";
    if H.is_empty heap then
      failwith "Parametric(YTO): heap exhausted (acyclic input?)";
    let lambda_hat, v = H.extract_min heap in
    bump_iter stats;
    let a = best_arc.(v) in
    let u = Digraph.src g a in
    if is_ancestor g parent v u then
      result := Some (lambda_hat, pivot_cycle g parent a)
    else begin
      let delta_w = dw.(u) + Digraph.weight g a - dw.(v) in
      let delta_t = dt.(u) + den a - dt.(v) in
      let s = subtree g parent v in
      Vec.iter
        (fun x ->
          in_s.(x) <- true;
          dw.(x) <- dw.(x) + delta_w;
          dt.(x) <- dt.(x) + delta_t)
        s;
      parent.(v) <- a;
      (* a node's key changes iff one of its in-arcs crosses the
         boundary of the moved subtree: every node of S, plus the
         out-neighbours of S outside S *)
      let to_fix = Vec.create () in
      let mark x =
        if not affected.(x) then begin
          affected.(x) <- true;
          Vec.push to_fix x
        end
      in
      Vec.iter
        (fun x ->
          mark x;
          Digraph.iter_out g x (fun b ->
              let y = Digraph.dst g b in
              if not in_s.(y) then mark y))
        s;
      Vec.iter refresh to_fix;
      Vec.iter (fun x -> affected.(x) <- false) to_fix;
      Vec.iter (fun x -> in_s.(x) <- false) s
    end
  done;
  Option.get !result

let solve ?stats ?(heap = `Fibonacci) ~variant ~den g =
  if Digraph.m g = 0 then invalid_arg "Parametric: graph has no arcs";
  let h = heap_module heap in
  let lambda, cycle =
    match variant with
    | `Ko -> run_ko h ?stats ~den g
    | `Yto -> run_yto h ?stats ~den g
  in
  assert (Digraph.is_cycle g cycle);
  assert (Ratio.equal lambda (Critical.ratio_of_cycle g ~den cycle));
  (lambda, cycle)

let minimum_cycle_mean ?stats ?heap ~variant g =
  solve ?stats ?heap ~variant ~den:(fun _ -> 1) g

let minimum_cycle_ratio ?stats ?heap ~variant g =
  Critical.assert_ratio_well_posed g;
  solve ?stats ?heap ~variant ~den:(Digraph.transit g) g

(** Minimal flat JSON, for the NDJSON line protocol of [ocr stream].

    The wire format is one JSON object per line whose fields are
    scalars (requests) or scalars plus one int array (responses), so
    this codec handles exactly that subset: a hand-rolled parser for
    flat objects of strings / ints / floats / bools / null, and
    printing helpers.  No external JSON dependency. *)

type value =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool
  | Null

val parse_flat : string -> ((string * value) list, string) result
(** Parses one flat JSON object, fields in order of appearance.
    Rejects nested objects/arrays, duplicate-free-ness is {e not}
    enforced (last occurrence wins with {!field}).  The error string is
    human-readable and position-annotated. *)

val field : (string * value) list -> string -> value option
(** Last binding of the name, if any. *)

val field_int : (string * value) list -> string -> int option
(** The field as an int (accepts integral floats). *)

val field_float : (string * value) list -> string -> float option
(** The field as a float (accepts ints). *)

val field_string : (string * value) list -> string -> string option

val escape : string -> string
(** JSON string literal (including the quotes). *)

val obj : (string * string) list -> string
(** One-line object from pre-rendered field values:
    [obj [("ok", "true"); ("epoch", "3")]] is [{"ok":true,"epoch":3}].
    Keys are escaped; values are spliced verbatim. *)

val int_array : int list -> string
(** Renders [[1;2;3]] as ["[1,2,3]"]. *)

val float_lit : float -> string
(** A finite float as a JSON number literal that parses back to the
    same float ["%g"], widened to ["%.17g"] only when needed. *)

type update =
  | Set_weight of { arc : int; weight : int }
  | Set_transit of { arc : int; transit : int }
  | Add_arc of { arc : int; src : int; dst : int; weight : int; transit : int }
  | Remove_arc of { arc : int }

type report = {
  epoch : int;
  lambda : Ratio.t;
  cycle : int list;
  components : int;
  resolved : int;
  stats : Stats.t;
}

(* One cyclic SCC of the current materialization.  [p_sub] holds
   min-form weights (negated for Maximize sessions) and is mutated in
   place on label updates, so a clean component's cached [p_result]
   always describes its current labels. *)
type part = {
  p_nodes : int array; (* session node ids, increasing *)
  p_arcs : int array;  (* session arc ids, in sub arc order *)
  p_sub : Digraph.t;
  mutable p_dirty : bool;
  mutable p_result : (Ratio.t * int list) option;
      (* min-form λ, witness session arc ids *)
}

type t = {
  nn : int;
  prob : Solver.problem;
  obj : Solver.objective;
  mutable pool : Executor.t option;
  owns_pool : bool;
  mutable closed : bool;
  (* session arc store: ids are stable, removed ids stay dead *)
  srcs : int Vec.t;
  dsts : int Vec.t;
  weights : int Vec.t;  (* user-form weights *)
  transits : int Vec.t;
  alive : bool Vec.t;
  mutable live : int;
  mutable ep : int;
  jnl : update Vec.t;
  (* preflight bookkeeping, maintained incrementally *)
  mutable total_tt : int;     (* sum of live transits *)
  mutable wabs : int;         (* max |weight| over live arcs ... *)
  mutable wabs_stale : bool;  (* ... unless stale (max may have left) *)
  mutable ratio_ok : bool option; (* cached well-posedness verdict *)
  (* materialization: mat (min-form weights) + id maps + partition.
     [struct_valid] covers all of them; label updates keep them in sync
     in place, structural updates invalidate and [refresh] rebuilds. *)
  mutable struct_valid : bool;
  mutable mat : Digraph.t;
  mutable mat_of_session : int array; (* session arc -> mat arc | -1 *)
  mutable session_of_mat : int array;
  mutable parts : part array;         (* component (rev. topo) order *)
  mutable comp_of_node : int array;   (* node -> part index | -1 *)
  mutable sub_idx : int array;        (* intra-part session arc -> sub arc *)
  pending_dirty : int Vec.t; (* label edits made while struct invalid *)
  (* warm-start state *)
  last_policy : int array; (* node -> last chosen out-arc (session id) *)
  last_pot : float array;  (* node -> last Howard distance (potential) *)
  scratch : Howard.scratch;
  (* per-epoch caches *)
  mutable fp_cache : (int * Fingerprint.t) option;
  mutable last_report : (int * report option) option;
}

let sign t = match t.obj with Solver.Minimize -> 1 | Solver.Maximize -> -1

let create ?(problem = Solver.Cycle_mean) ?(objective = Solver.Minimize)
    ?(jobs = 1) ?pool g =
  if jobs < 1 then invalid_arg "Dyn.create: jobs must be >= 1";
  let pool, owns_pool =
    match pool with
    | Some p -> (Some p, false)
    | None -> if jobs > 1 then (Some (Executor.create ~jobs), true) else (None, false)
  in
  let m = Digraph.m g in
  let srcs = Vec.create () and dsts = Vec.create () in
  let weights = Vec.create () and transits = Vec.create () in
  let alive = Vec.create () in
  let total_tt = ref 0 and wabs = ref 0 in
  for a = 0 to m - 1 do
    Vec.push srcs (Digraph.src g a);
    Vec.push dsts (Digraph.dst g a);
    Vec.push weights (Digraph.weight g a);
    Vec.push transits (Digraph.transit g a);
    Vec.push alive true;
    total_tt := !total_tt + Digraph.transit g a;
    if abs (Digraph.weight g a) > !wabs then wabs := abs (Digraph.weight g a)
  done;
  {
    nn = Digraph.n g;
    prob = problem;
    obj = objective;
    pool;
    owns_pool;
    closed = false;
    srcs;
    dsts;
    weights;
    transits;
    alive;
    live = m;
    ep = 0;
    jnl = Vec.create ();
    total_tt = !total_tt;
    wabs = !wabs;
    wabs_stale = false;
    ratio_ok = None;
    struct_valid = false;
    mat = g;
    mat_of_session = [||];
    session_of_mat = [||];
    parts = [||];
    comp_of_node = Array.make (Digraph.n g) (-1);
    sub_idx = [||];
    pending_dirty = Vec.create ();
    last_policy = Array.make (Digraph.n g) (-1);
    last_pot = Array.make (Digraph.n g) 0.0;
    scratch = Howard.create_scratch ();
    fp_cache = None;
    last_report = None;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    if t.owns_pool then begin
      (match t.pool with Some p -> Executor.shutdown p | None -> ());
      t.pool <- None (* later queries fall back to the serial path *)
    end
  end

let n t = t.nn
let live_arcs t = t.live
let problem t = t.prob
let objective t = t.obj
let epoch t = t.ep
let journal t = Vec.to_list t.jnl

let arc_count t = Vec.length t.srcs

let check_arc name t a =
  if a < 0 || a >= arc_count t || not (Vec.get t.alive a) then
    invalid_arg (Printf.sprintf "Dyn.%s: no live arc %d" name a)

let arc_src t a = check_arc "arc_src" t a; Vec.get t.srcs a
let arc_dst t a = check_arc "arc_dst" t a; Vec.get t.dsts a
let arc_weight t a = check_arc "arc_weight" t a; Vec.get t.weights a
let arc_transit t a = check_arc "arc_transit" t a; Vec.get t.transits a
let arc_alive t a = a >= 0 && a < arc_count t && Vec.get t.alive a

(* ------------------------------------------------------------------ *)
(* Materialization and lazy re-partition                               *)
(* ------------------------------------------------------------------ *)

let rebuild_mat t =
  let count = arc_count t in
  let b = Digraph.create_builder ~expected_arcs:t.live t.nn in
  let mos = Array.make (max count 1) (-1) in
  let som = Array.make (max t.live 1) (-1) in
  let sg = sign t in
  for a = 0 to count - 1 do
    if Vec.get t.alive a then begin
      let id =
        Digraph.add_arc b ~src:(Vec.get t.srcs a) ~dst:(Vec.get t.dsts a)
          ~weight:(sg * Vec.get t.weights a)
          ~transit:(Vec.get t.transits a) ()
      in
      mos.(a) <- id;
      som.(id) <- a
    end
  done;
  t.mat <- Digraph.build b;
  t.mat_of_session <- mos;
  t.session_of_mat <- som

(* Full lazy re-partition after structural updates.  Components whose
   node set and (session-id) arc set are unchanged inherit their cached
   optimum and dirtiness — the incremental maintenance promise: an
   insertion or deletion only costs re-solves in the components it
   actually touched (merged, split, or entered). *)
let rebuild_parts t =
  let old_parts = t.parts and old_comp = t.comp_of_node in
  rebuild_mat t;
  let scc = Scc.compute t.mat in
  let subs = Scc.partition t.mat scc in
  Array.fill t.comp_of_node 0 t.nn (-1);
  let count = arc_count t in
  if Array.length t.sub_idx < count then t.sub_idx <- Array.make count (-1);
  let parts =
    Array.mapi
      (fun ci (sp : Scc.subproblem) ->
        let p_nodes = sp.Scc.node_of_sub in
        let p_arcs =
          Array.map (fun ma -> t.session_of_mat.(ma)) sp.Scc.arc_of_sub
        in
        Array.iter (fun u -> t.comp_of_node.(u) <- ci) p_nodes;
        Array.iteri (fun i a -> t.sub_idx.(a) <- i) p_arcs;
        (* carry-over: same nodes + same session arcs = same component *)
        let inherited =
          let rep = p_nodes.(0) in
          let oc = if Array.length old_comp = 0 then -1 else old_comp.(rep) in
          if oc >= 0 && oc < Array.length old_parts then begin
            let op = old_parts.(oc) in
            if op.p_nodes = p_nodes && op.p_arcs = p_arcs then
              Some (op.p_dirty, op.p_result)
            else None
          end
          else None
        in
        match inherited with
        | Some (d, r) ->
          { p_nodes; p_arcs; p_sub = sp.Scc.sub; p_dirty = d; p_result = r }
        | None ->
          { p_nodes; p_arcs; p_sub = sp.Scc.sub; p_dirty = true;
            p_result = None })
      subs
  in
  t.parts <- parts;
  (* label edits recorded while the partition was invalid dirty their
     (new) containing component now *)
  Vec.iter
    (fun a ->
      if arc_alive t a then begin
        let cu = t.comp_of_node.(Vec.get t.srcs a) in
        if cu >= 0 && cu = t.comp_of_node.(Vec.get t.dsts a) then
          parts.(cu).p_dirty <- true
      end)
    t.pending_dirty;
  Vec.clear t.pending_dirty;
  t.struct_valid <- true

let refresh t = if not t.struct_valid then rebuild_parts t

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)
(* ------------------------------------------------------------------ *)

let bump t u =
  Vec.push t.jnl u;
  t.ep <- t.ep + 1

(* Dirty the cyclic component containing live arc [a], updating the
   materialized copies of its label in place.  O(1). *)
let touch_label t a ~dirties =
  if t.struct_valid then begin
    let ma = t.mat_of_session.(a) in
    let sg = sign t in
    Digraph.Unsafe.set_weight t.mat ma (sg * Vec.get t.weights a);
    Digraph.Unsafe.set_transit t.mat ma (Vec.get t.transits a);
    let cu = t.comp_of_node.(Vec.get t.srcs a) in
    if cu >= 0 && cu = t.comp_of_node.(Vec.get t.dsts a) then begin
      let p = t.parts.(cu) in
      let i = t.sub_idx.(a) in
      Digraph.Unsafe.set_weight p.p_sub i (sg * Vec.get t.weights a);
      Digraph.Unsafe.set_transit p.p_sub i (Vec.get t.transits a);
      if dirties then p.p_dirty <- true
    end
  end
  else if dirties then Vec.push t.pending_dirty a

let set_weight t a w =
  check_arc "set_weight" t a;
  let old = Vec.get t.weights a in
  Vec.set t.weights a w;
  bump t (Set_weight { arc = a; weight = w });
  if abs w >= t.wabs then begin
    t.wabs <- abs w;
    t.wabs_stale <- false
  end
  else if abs old >= t.wabs then t.wabs_stale <- true;
  touch_label t a ~dirties:true

let set_transit t a tt =
  check_arc "set_transit" t a;
  if tt < 0 then invalid_arg "Dyn.set_transit: negative transit time";
  let old = Vec.get t.transits a in
  Vec.set t.transits a tt;
  bump t (Set_transit { arc = a; transit = tt });
  t.total_tt <- t.total_tt - old + tt;
  if (old = 0) <> (tt = 0) then t.ratio_ok <- None;
  (* transit times only affect answers for ratio sessions *)
  touch_label t a ~dirties:(t.prob = Solver.Cycle_ratio)

let add_arc t ~src ~dst ~weight ~transit =
  if src < 0 || src >= t.nn || dst < 0 || dst >= t.nn then
    invalid_arg "Dyn.add_arc: endpoint out of range";
  if transit < 0 then invalid_arg "Dyn.add_arc: negative transit time";
  let id = arc_count t in
  Vec.push t.srcs src;
  Vec.push t.dsts dst;
  Vec.push t.weights weight;
  Vec.push t.transits transit;
  Vec.push t.alive true;
  t.live <- t.live + 1;
  t.total_tt <- t.total_tt + transit;
  (* [wabs] is an upper bound when stale; a new arc at or above it
     dominates every live weight and makes the bound exact again *)
  if abs weight >= t.wabs then begin
    t.wabs <- abs weight;
    t.wabs_stale <- false
  end;
  t.ratio_ok <- None;
  t.struct_valid <- false;
  bump t (Add_arc { arc = id; src; dst; weight; transit });
  id

let remove_arc t a =
  check_arc "remove_arc" t a;
  Vec.set t.alive a false;
  t.live <- t.live - 1;
  t.total_tt <- t.total_tt - Vec.get t.transits a;
  if abs (Vec.get t.weights a) >= t.wabs then t.wabs_stale <- true;
  t.ratio_ok <- None;
  t.struct_valid <- false;
  bump t (Remove_arc { arc = a })

let apply t u =
  match u with
  | Set_weight { arc; weight } -> set_weight t arc weight
  | Set_transit { arc; transit } -> set_transit t arc transit
  | Add_arc { arc; src; dst; weight; transit } ->
    let id = add_arc t ~src ~dst ~weight ~transit in
    if arc >= 0 && arc <> id then
      invalid_arg
        (Printf.sprintf
           "Dyn.apply: journal inserted arc %d but this session assigned %d"
           arc id)
  | Remove_arc { arc } -> remove_arc t arc

(* ------------------------------------------------------------------ *)
(* Preflight — same checks, same messages as Solver.preflight, but     *)
(* O(1) per query from incrementally maintained aggregates.            *)
(* ------------------------------------------------------------------ *)

let rescan_wabs t =
  let w = ref 0 in
  for a = 0 to arc_count t - 1 do
    if Vec.get t.alive a && abs (Vec.get t.weights a) > !w then
      w := abs (Vec.get t.weights a)
  done;
  t.wabs <- !w;
  t.wabs_stale <- false

let preflight t =
  if t.live > 0 then begin
    if t.wabs_stale then rescan_wabs t;
    let w = max 1 t.wabs in
    let d =
      match t.prob with
      | Solver.Cycle_mean -> max 1 t.nn
      | Solver.Cycle_ratio -> max t.nn t.total_tt
    in
    if d > 0 && w > max_int / 8 / d / d then
      invalid_arg
        (Printf.sprintf
           "Solver: weights up to %d on an instance with denominator range \
            %d would overflow exact native-int arithmetic" w d)
  end;
  if t.prob = Solver.Cycle_ratio then begin
    let ok =
      match t.ratio_ok with
      | Some ok -> ok
      | None ->
        let ok =
          Critical.cycle_in t.mat (fun a -> Digraph.transit t.mat a = 0)
          = None
        in
        t.ratio_ok <- Some ok;
        ok
    in
    if not ok then
      invalid_arg "Solver: cycle with zero total transit time \
                   (cost-to-time ratio undefined)"
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(* Warm policy for one component: the node's last chosen out-arc when
   it is still a valid intra-component choice, else -1 (repaired to the
   cheapest out-arc by Warm.solve_warm). *)
let assemble_policy t ci (p : part) =
  let k = Array.length p.p_nodes in
  let policy = Array.make k (-1) in
  for i = 0 to k - 1 do
    let u = p.p_nodes.(i) in
    let a = t.last_policy.(u) in
    if
      a >= 0 && a < arc_count t
      && Vec.get t.alive a
      && Vec.get t.srcs a = u
      && t.comp_of_node.(Vec.get t.dsts a) = ci
    then policy.(i) <- t.sub_idx.(a)
  done;
  policy

let warm_problem t =
  match t.prob with
  | Solver.Cycle_mean -> Warm.Mean
  | Solver.Cycle_ratio -> Warm.Ratio

let solve_part t ?pool ci (p : part) scratch =
  let policy = assemble_policy t ci p in
  let k = Array.length p.p_nodes in
  let pot = Array.make k 0.0 in
  for i = 0 to k - 1 do
    pot.(i) <- t.last_pot.(p.p_nodes.(i))
  done;
  let st = Stats.create () in
  (* the stale cached optimum is the hint: for label-only edits it is
     the exact answer of the pre-edit component, and most edits leave
     it confirmable by a single location pass *)
  let hint = Option.map fst p.p_result in
  (* [pool] chunks the improvement sweep inside this component — the
     interesting case being one giant dirty SCC, where the
     per-component fan-out of [query] has nothing to parallelize; the
     caller arbitrates which components get it *)
  let lambda, cyc, pol =
    Warm.solve_warm ~stats:st ~policy ~potentials:pot ?scratch ?hint
      ?pool (warm_problem t) p.p_sub
  in
  (lambda, List.map (fun i -> p.p_arcs.(i)) cyc, pol, pot, st)

let query t =
  match t.last_report with
  | Some (e, r) when e = t.ep -> r
  | _ ->
    refresh t;
    preflight t;
    let parts = t.parts in
    let k = Array.length parts in
    let dirty = ref [] in
    for ci = k - 1 downto 0 do
      if parts.(ci).p_dirty then dirty := ci :: !dirty
    done;
    let dirty = !dirty in
    let resolved = List.length dirty in
    (* re-solve dirty components; [solved] lines up with [dirty] *)
    let solved =
      match t.pool with
      | Some pool when resolved > 1 ->
        (* each task gets its own scratch and stats; the session
           scratch is not shared across domains.  Same two-level
           arbitration as Solver.solve: a dirty component only nests
           the chunked sweep if the fan-out leaves workers idle or it
           holds at least half the dirty arc mass. *)
        let total_arcs =
          List.fold_left
            (fun acc ci -> acc + Digraph.m parts.(ci).p_sub)
            0 dirty
        in
        let saturated = resolved >= Executor.jobs pool in
        dirty
        |> List.map (fun ci ->
               let inner =
                 if
                   (not saturated)
                   || 2 * Digraph.m parts.(ci).p_sub >= total_arcs
                 then Some pool
                 else None
               in
               Executor.async pool (fun () ->
                   solve_part t ?pool:inner ci parts.(ci)
                     (Some (Howard.create_scratch ()))))
        |> List.map (Executor.await pool)
      | _ ->
        (* serial: thread the session's one scratch through every
           re-solve, so the steady path allocates no fresh workspace *)
        List.map
          (fun ci -> solve_part t ?pool:t.pool ci parts.(ci) (Some t.scratch))
          dirty
    in
    (* join: commit results and feed final policies back, in component
       order, on the coordinating thread *)
    let stats = ref (Stats.create ()) in
    List.iter2
      (fun ci (lambda, cyc, pol, pot, st) ->
        let p = parts.(ci) in
        p.p_result <- Some (lambda, cyc);
        p.p_dirty <- false;
        Array.iteri (fun i a -> t.last_policy.(p.p_nodes.(i)) <- p.p_arcs.(a)) pol;
        Array.iteri (fun i v -> t.last_pot.(p.p_nodes.(i)) <- v) pot;
        stats := Stats.merge !stats st)
      dirty solved;
    (* deterministic reduction: fold every component in component
       order with Solver.solve's exact tie-breaking (ties keep the
       lower-id component's witness) *)
    let best = ref None in
    Array.iter
      (fun p ->
        match p.p_result with
        | None -> ()
        | Some (lambda, cycle) -> (
          match !best with
          | Some (bl, _) when Ratio.leq bl lambda -> ()
          | _ -> best := Some (lambda, cycle)))
      parts;
    let answer =
      match !best with
      | None -> None
      | Some (lambda, cycle) ->
        let lambda =
          match t.obj with
          | Solver.Minimize -> lambda
          | Solver.Maximize -> Ratio.neg lambda
        in
        Some
          { epoch = t.ep; lambda; cycle; components = k; resolved;
            stats = !stats }
    in
    t.last_report <- Some (t.ep, answer);
    answer

(* ------------------------------------------------------------------ *)
(* Snapshots, id mapping, fingerprints                                 *)
(* ------------------------------------------------------------------ *)

let graph t =
  let b = Digraph.create_builder ~expected_arcs:t.live t.nn in
  for a = 0 to arc_count t - 1 do
    if Vec.get t.alive a then
      ignore
        (Digraph.add_arc b ~src:(Vec.get t.srcs a) ~dst:(Vec.get t.dsts a)
           ~weight:(Vec.get t.weights a)
           ~transit:(Vec.get t.transits a) ())
  done;
  Digraph.build b

let to_graph_arc t a =
  check_arc "to_graph_arc" t a;
  refresh t;
  t.mat_of_session.(a)

let of_graph_arc t ma =
  refresh t;
  if ma < 0 || ma >= Digraph.m t.mat then
    invalid_arg "Dyn.of_graph_arc: arc out of range";
  t.session_of_mat.(ma)

let fingerprint t =
  match t.fp_cache with
  | Some (e, fp) when e = t.ep -> fp
  | _ ->
    refresh t;
    let user_mat =
      match t.obj with
      | Solver.Minimize -> t.mat
      | Solver.Maximize -> Digraph.negate_weights t.mat
    in
    let fp = Fingerprint.of_graph user_mat in
    t.fp_cache <- Some (t.ep, fp);
    fp

let replay ?problem ?objective ?jobs ?pool g updates =
  let t = create ?problem ?objective ?jobs ?pool g in
  List.iter (apply t) updates;
  t

(** Dynamic-graph sessions: exact MCM/MCR answers over a stream of
    updates.

    The paper's motivation (§1.3) is that cycle-mean/ratio solvers "be
    run many times" inside retiming, rate-optimization and
    clock-scheduling loops, where each iteration makes a {e small edit}
    to the graph.  A session owns a mutable overlay over the CSR
    digraph and answers [query] after any prefix of [set_weight] /
    [set_transit] / [add_arc] / [remove_arc] updates, maintaining:

    - an {b epoch} counter (one tick per update) identifying graph
      versions;
    - an {b update journal} for deterministic replay;
    - the {b SCC partition}, incrementally: label updates dirty only
      the containing cyclic component (cross-component arcs dirty
      nothing), while structural updates — which may merge or split
      components — lazily trigger one re-partition in which unchanged
      components carry their cached optimum and last policy over;
    - per-component {b warm starts}: dirty components re-solve with
      Howard seeded from the component's last policy through the shared
      {!Warm} core and the kernel's reusable zero-allocation scratch.

    Dirty components re-solve concurrently on the {!Executor} pool with
    the same deterministic component-order reduction as
    [Solver.solve ~jobs], so a session query is {b bit-identical} to a
    cold [Solver.solve] of the materialized graph — same λ, same
    witness, same component count, for every job count (property-tested
    in [test_dyn.ml]).  Only [report.stats] differs: it counts the work
    {e this} query performed, which is the point of the subsystem.

    See docs/DYN.md for the session model, the journal format and the
    NDJSON wire protocol of [ocr stream]. *)

type t

(** {1 Construction} *)

val create :
  ?problem:Solver.problem -> ?objective:Solver.objective ->
  ?jobs:int -> ?pool:Executor.t -> Digraph.t -> t
(** A session rooted at a snapshot of the given graph (the graph value
    itself is never mutated).  [problem] defaults to [Cycle_mean],
    [objective] to [Minimize].  [jobs > 1] (default [1]) spawns a
    private executor pool reused by every query until {!close};
    [pool] supplies an externally managed one instead.
    @raise Invalid_argument if [jobs < 1]. *)

val close : t -> unit
(** Shuts down the private pool, if any.  Idempotent; the session
    remains usable for serial queries afterwards. *)

(** {1 Updates}

    Session arc ids are stable: the arcs of the base graph keep their
    ids, [add_arc] returns fresh ids in sequence, and removed ids are
    never reused.  Every successful update appends to the journal and
    advances the epoch by one; failed updates (out-of-range ids,
    removed arcs, negative transits) raise [Invalid_argument] and leave
    the session — epoch, journal and answers — untouched. *)

val set_weight : t -> int -> int -> unit
val set_transit : t -> int -> int -> unit

val add_arc : t -> src:int -> dst:int -> weight:int -> transit:int -> int
(** Returns the new arc's session id. *)

val remove_arc : t -> int -> unit

(** {1 Queries} *)

type report = {
  epoch : int;       (** the epoch this answer is for *)
  lambda : Ratio.t;  (** exact optimum over the whole current graph *)
  cycle : int list;  (** witness cycle, session arc ids *)
  components : int;  (** number of cyclic SCCs in the current graph *)
  resolved : int;    (** components re-solved by this query (the rest
                         were served from per-component caches) *)
  stats : Stats.t;   (** operation counts of this query's work *)
}

val query : t -> report option
(** [None] iff the current graph is acyclic.  Equal to
    [Solver.solve ~algorithm:Howard] on {!graph} — λ bit-identical,
    witness mapped through {!to_graph_arc}, same component count — for
    every job count.  Re-queries at an unchanged epoch are served from
    the session's answer cache.
    @raise Invalid_argument under exactly the conditions (and with
    exactly the messages) of [Solver.solve]: ill-posed ratio instances
    and weights outside the exact-arithmetic range. *)

val epoch : t -> int
(** Number of updates applied so far (0 for a fresh session). *)

(** {1 Introspection} *)

val n : t -> int
val live_arcs : t -> int

val arc_count : t -> int
(** Total session arc ids ever allocated (live or removed); valid ids
    are [0 .. arc_count t - 1]. *)

val problem : t -> Solver.problem
val objective : t -> Solver.objective
val arc_src : t -> int -> int
val arc_dst : t -> int -> int
val arc_weight : t -> int -> int
val arc_transit : t -> int -> int
val arc_alive : t -> int -> bool

val graph : t -> Digraph.t
(** Snapshot of the current graph (fresh value; later updates do not
    affect it).  Arcs appear in session-id order, skipping removed
    ones; {!to_graph_arc}/{!of_graph_arc} translate ids. *)

val to_graph_arc : t -> int -> int
(** Session arc id → arc id in {!graph} (and in the cold-solve report);
    [-1] for removed arcs. *)

val of_graph_arc : t -> int -> int
(** Arc id in {!graph} → session arc id. *)

val fingerprint : t -> Fingerprint.t
(** Structural fingerprint of the current graph — equal to
    [Fingerprint.of_graph (graph t)], cached per epoch.  Lets engine
    front-ends key result caches and count dynamic hits/misses. *)

(** {1 Journal and replay} *)

type update =
  | Set_weight of { arc : int; weight : int }
  | Set_transit of { arc : int; transit : int }
  | Add_arc of { arc : int; src : int; dst : int; weight : int; transit : int }
      (** [arc] is the session id the insertion received (or [-1] in a
          hand-built update, meaning "don't check"). *)
  | Remove_arc of { arc : int }

val journal : t -> update list
(** All updates applied so far, oldest first.  Replaying them against
    the base graph reproduces the session state exactly. *)

val apply : t -> update -> unit
(** Applies one journal entry.
    @raise Invalid_argument if an [Add_arc] entry carries an id
    different from the one the session assigns (the journal does not
    match this session's history), or under the same conditions as the
    named update functions. *)

val replay :
  ?problem:Solver.problem -> ?objective:Solver.objective ->
  ?jobs:int -> ?pool:Executor.t -> Digraph.t -> update list -> t
(** [replay g updates] = a fresh session on [g] with every update
    applied. *)

(** Codec for the NDJSON line protocol of [ocr stream] and for session
    journal files (docs/DYN.md documents the wire format).

    Requests are flat JSON objects, one per line, dispatched on their
    ["op"] field: the four update ops mirror {!Dyn.update} ([add_arc]'s
    ["transit"] defaults to 1; its optional ["arc"] field is the
    replay-check id), plus ["query"], ["epoch"], ["fingerprint"],
    ["telemetry"], ["metrics"] and ["quit"].  A ["query"] may carry an
    optional ["eps"] field (a positive finite number) requesting a
    certified (1+ε)-approximate answer instead of an exact one, or an
    optional ["mode"] field ([{"mode":"exact"}]) requesting the exact
    rational certificate ([lambda_num]/[lambda_den]) alongside the
    float answer; combining ["mode":"exact"] with ["eps"] is a
    structured error (an interval has no single rational certificate),
    answered without killing the stream. *)

type op =
  | Update of Dyn.update
  | Query of { q_eps : float option; q_exact : bool }
      (** [q_eps = Some eps]: approximate query with certified interval;
          [q_exact]: exact-answer mode — never both *)
  | Epoch
  | Fingerprint_op
  | Telemetry_op
  | Metrics_op
  | Quit

val parse : string -> (op, string) result
(** Parses one request line; the error string is ready to ship in an
    {!error_line}. *)

val render_update : Dyn.update -> string
(** Canonical journal line for an update ([parse] round-trips it). *)

val render_op : op -> string

val error_line : string -> string
(** [{"ok":false,"error":...}] — the structured error response; the
    stream continues after it. *)

type value =
  | String of string
  | Int of int
  | Float of float
  | Bool of bool
  | Null

exception Bad of string

let parse_flat line =
  let len = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < len then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < len
      && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> Some c then fail (Printf.sprintf "expected '%c'" c);
    incr pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      let c = line.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= len then fail "dangling escape";
        let e = line.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > len then fail "truncated \\u escape";
          let hex = String.sub line !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* BMP code points only, encoded as UTF-8 *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_scalar () =
    skip_ws ();
    match peek () with
    | Some '"' -> String (parse_string ())
    | Some ('{' | '[') -> fail "nested values are not part of the protocol"
    | Some c when c = '-' || (c >= '0' && c <= '9') ->
      let start = !pos in
      let is_float = ref false in
      while
        !pos < len
        &&
        match line.[!pos] with
        | '0' .. '9' | '-' | '+' -> true
        | '.' | 'e' | 'E' ->
          is_float := true;
          true
        | _ -> false
      do
        incr pos
      done;
      let s = String.sub line start (!pos - start) in
      if !is_float then
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail "bad number"
      else (
        match int_of_string_opt s with
        | Some i -> Int i
        | None -> fail "bad number")
    | Some 't' ->
      if !pos + 4 <= len && String.sub line !pos 4 = "true" then begin
        pos := !pos + 4;
        Bool true
      end
      else fail "bad literal"
    | Some 'f' ->
      if !pos + 5 <= len && String.sub line !pos 5 = "false" then begin
        pos := !pos + 5;
        Bool false
      end
      else fail "bad literal"
    | Some 'n' ->
      if !pos + 4 <= len && String.sub line !pos 4 = "null" then begin
        pos := !pos + 4;
        Null
      end
      else fail "bad literal"
    | _ -> fail "expected a value"
  in
  try
    expect '{';
    skip_ws ();
    let fields = ref [] in
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        expect ':';
        let v = parse_scalar () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ()
        | Some '}' -> incr pos
        | _ -> fail "expected ',' or '}'"
      in
      members ()
    end;
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    Ok (List.rev !fields)
  with Bad msg -> Error msg

let field fields name =
  List.fold_left
    (fun acc (k, v) -> if k = name then Some v else acc)
    None fields

let field_int fields name =
  match field fields name with
  | Some (Int i) -> Some i
  | Some (Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let field_float fields name =
  match field fields name with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let field_string fields name =
  match field fields name with Some (String s) -> Some s | _ -> None

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let obj fields =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (escape k);
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let int_array xs = "[" ^ String.concat "," (List.map string_of_int xs) ^ "]"

let float_lit f =
  let s = Printf.sprintf "%g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

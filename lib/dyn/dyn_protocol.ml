type op =
  | Update of Dyn.update
  | Query of float option  (* [Some eps]: approximate, certified answer *)
  | Epoch
  | Fingerprint_op
  | Telemetry_op
  | Metrics_op
  | Quit

let parse line =
  match Njson.parse_flat line with
  | Error e -> Error ("bad json: " ^ e)
  | Ok fields -> (
    let int_field ?default name k =
      match Njson.field_int fields name with
      | Some v -> k v
      | None -> (
        match default with
        | Some v -> k v
        | None -> Error (Printf.sprintf "missing int field %S" name))
    in
    match Njson.field_string fields "op" with
    | None -> Error "missing string field \"op\""
    | Some "set_weight" ->
      int_field "arc" (fun arc ->
          int_field "weight" (fun weight ->
              Ok (Update (Dyn.Set_weight { arc; weight }))))
    | Some "set_transit" ->
      int_field "arc" (fun arc ->
          int_field "transit" (fun transit ->
              Ok (Update (Dyn.Set_transit { arc; transit }))))
    | Some "add_arc" ->
      int_field "src" (fun src ->
          int_field "dst" (fun dst ->
              int_field "weight" (fun weight ->
                  int_field ~default:1 "transit" (fun transit ->
                      int_field ~default:(-1) "arc" (fun arc ->
                          Ok
                            (Update
                               (Dyn.Add_arc { arc; src; dst; weight; transit })))))))
    | Some "remove_arc" ->
      int_field "arc" (fun arc -> Ok (Update (Dyn.Remove_arc { arc })))
    | Some "query" -> (
      match Njson.field fields "eps" with
      | None -> Ok (Query None)
      | Some _ -> (
        match Njson.field_float fields "eps" with
        | Some e when Float.is_finite e && e > 0.0 -> Ok (Query (Some e))
        | _ -> Error "field \"eps\" must be a positive finite number"))
    | Some "epoch" -> Ok Epoch
    | Some "fingerprint" -> Ok Fingerprint_op
    | Some "telemetry" -> Ok Telemetry_op
    | Some "metrics" -> Ok Metrics_op
    | Some "quit" -> Ok Quit
    | Some other -> Error (Printf.sprintf "unknown op %S" other))

let render_update u =
  let i = string_of_int in
  match u with
  | Dyn.Set_weight { arc; weight } ->
    Njson.obj
      [ ("op", {|"set_weight"|}); ("arc", i arc); ("weight", i weight) ]
  | Dyn.Set_transit { arc; transit } ->
    Njson.obj
      [ ("op", {|"set_transit"|}); ("arc", i arc); ("transit", i transit) ]
  | Dyn.Add_arc { arc; src; dst; weight; transit } ->
    Njson.obj
      [ ("op", {|"add_arc"|}); ("src", i src); ("dst", i dst);
        ("weight", i weight); ("transit", i transit); ("arc", i arc) ]
  | Dyn.Remove_arc { arc } ->
    Njson.obj [ ("op", {|"remove_arc"|}); ("arc", i arc) ]

let render_op = function
  | Update u -> render_update u
  | Query None -> Njson.obj [ ("op", {|"query"|}) ]
  | Query (Some eps) ->
    Njson.obj [ ("op", {|"query"|}); ("eps", Njson.float_lit eps) ]
  | Epoch -> Njson.obj [ ("op", {|"epoch"|}) ]
  | Fingerprint_op -> Njson.obj [ ("op", {|"fingerprint"|}) ]
  | Telemetry_op -> Njson.obj [ ("op", {|"telemetry"|}) ]
  | Metrics_op -> Njson.obj [ ("op", {|"metrics"|}) ]
  | Quit -> Njson.obj [ ("op", {|"quit"|}) ]

let error_line msg = Njson.obj [ ("ok", "false"); ("error", Njson.escape msg) ]

type op =
  | Update of Dyn.update
  | Query of { q_eps : float option; q_exact : bool }
      (* [q_eps = Some eps]: approximate, certified answer;
         [q_exact]: also answer the exact rational certificate *)
  | Epoch
  | Fingerprint_op
  | Telemetry_op
  | Metrics_op
  | Quit

let ( let* ) = Result.bind

let parse line =
  match Njson.parse_flat line with
  | Error e -> Error ("bad json: " ^ e)
  | Ok fields -> (
    let int_field ?default name k =
      match Njson.field_int fields name with
      | Some v -> k v
      | None -> (
        match default with
        | Some v -> k v
        | None -> Error (Printf.sprintf "missing int field %S" name))
    in
    match Njson.field_string fields "op" with
    | None -> Error "missing string field \"op\""
    | Some "set_weight" ->
      int_field "arc" (fun arc ->
          int_field "weight" (fun weight ->
              Ok (Update (Dyn.Set_weight { arc; weight }))))
    | Some "set_transit" ->
      int_field "arc" (fun arc ->
          int_field "transit" (fun transit ->
              Ok (Update (Dyn.Set_transit { arc; transit }))))
    | Some "add_arc" ->
      int_field "src" (fun src ->
          int_field "dst" (fun dst ->
              int_field "weight" (fun weight ->
                  int_field ~default:1 "transit" (fun transit ->
                      int_field ~default:(-1) "arc" (fun arc ->
                          Ok
                            (Update
                               (Dyn.Add_arc { arc; src; dst; weight; transit })))))))
    | Some "remove_arc" ->
      int_field "arc" (fun arc -> Ok (Update (Dyn.Remove_arc { arc })))
    | Some "query" -> (
      let* q_eps =
        match Njson.field fields "eps" with
        | None -> Ok None
        | Some _ -> (
          match Njson.field_float fields "eps" with
          | Some e when Float.is_finite e && e > 0.0 -> Ok (Some e)
          | _ -> Error "field \"eps\" must be a positive finite number")
      in
      let* q_exact =
        match Njson.field fields "mode" with
        | None -> Ok false
        | Some _ -> (
          match Njson.field_string fields "mode" with
          | Some "float" -> Ok false
          | Some "exact" -> Ok true
          | _ -> Error "field \"mode\" must be \"float\" or \"exact\"")
      in
      if q_exact && q_eps <> None then
        Error
          "\"mode\":\"exact\" does not apply to eps queries (an interval \
           answer has no single rational certificate)"
      else Ok (Query { q_eps; q_exact }))
    | Some "epoch" -> Ok Epoch
    | Some "fingerprint" -> Ok Fingerprint_op
    | Some "telemetry" -> Ok Telemetry_op
    | Some "metrics" -> Ok Metrics_op
    | Some "quit" -> Ok Quit
    | Some other -> Error (Printf.sprintf "unknown op %S" other))

let render_update u =
  let i = string_of_int in
  match u with
  | Dyn.Set_weight { arc; weight } ->
    Njson.obj
      [ ("op", {|"set_weight"|}); ("arc", i arc); ("weight", i weight) ]
  | Dyn.Set_transit { arc; transit } ->
    Njson.obj
      [ ("op", {|"set_transit"|}); ("arc", i arc); ("transit", i transit) ]
  | Dyn.Add_arc { arc; src; dst; weight; transit } ->
    Njson.obj
      [ ("op", {|"add_arc"|}); ("src", i src); ("dst", i dst);
        ("weight", i weight); ("transit", i transit); ("arc", i arc) ]
  | Dyn.Remove_arc { arc } ->
    Njson.obj [ ("op", {|"remove_arc"|}); ("arc", i arc) ]

let render_op = function
  | Update u -> render_update u
  | Query { q_eps = None; q_exact = false } -> Njson.obj [ ("op", {|"query"|}) ]
  | Query { q_eps = None; q_exact = true } ->
    Njson.obj [ ("op", {|"query"|}); ("mode", {|"exact"|}) ]
  | Query { q_eps = Some eps; q_exact = _ } ->
    Njson.obj [ ("op", {|"query"|}); ("eps", Njson.float_lit eps) ]
  | Epoch -> Njson.obj [ ("op", {|"epoch"|}) ]
  | Fingerprint_op -> Njson.obj [ ("op", {|"fingerprint"|}) ]
  | Telemetry_op -> Njson.obj [ ("op", {|"telemetry"|}) ]
  | Metrics_op -> Njson.obj [ ("op", {|"metrics"|}) ]
  | Quit -> Njson.obj [ ("op", {|"quit"|}) ]

let error_line msg = Njson.obj [ ("ok", "false"); ("error", Njson.escape msg) ]

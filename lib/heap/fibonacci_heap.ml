(* Classic CLRS-style Fibonacci heap with circular doubly-linked root
   and child lists.  [delete] is implemented with a [forced] flag that
   makes a node compare below every key, avoiding a -infinity key. *)

type ('k, 'v) node = {
  mutable key : 'k;
  value : 'v;
  mutable parent : ('k, 'v) node option;
  mutable child : ('k, 'v) node option;
  mutable left : ('k, 'v) node;   (* circular list; self-linked when alone *)
  mutable right : ('k, 'v) node;
  mutable degree : int;
  mutable mark : bool;
  mutable in_heap : bool;
  mutable forced : bool;          (* treated as smaller than any key *)
}

type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  stats : Heap_stats.t option;
  mutable min : ('k, 'v) node option;
  mutable size : int;
}

let create ?stats ~cmp () = { cmp; stats; min = None; size = 0 }
let size h = h.size
let is_empty h = h.size = 0

let bump f h = match h.stats with Some s -> f s | None -> ()

let node_key n =
  if not n.in_heap then invalid_arg "Fibonacci_heap.node_key: node removed";
  n.key

let node_value n = n.value
let node_in_heap n = n.in_heap

(* x strictly smaller than y under forced flags *)
let less h x y =
  if x.forced then true
  else if y.forced then false
  else h.cmp x.key y.key < 0

(* Splice node [x] (self-linked or not) into the circular list of [y],
   to the right of [y]. *)
let splice_right y x =
  let yr = y.right in
  y.right <- x;
  x.left <- y;
  x.right <- yr;
  yr.left <- x

let remove_from_list x =
  x.left.right <- x.right;
  x.right.left <- x.left;
  x.left <- x;
  x.right <- x

let add_root h x =
  x.parent <- None;
  match h.min with
  | None ->
    x.left <- x;
    x.right <- x;
    h.min <- Some x
  | Some m ->
    splice_right m x;
    if less h x m then h.min <- Some x

let insert h k v =
  bump (fun s -> s.inserts <- s.inserts + 1) h;
  let rec n =
    { key = k; value = v; parent = None; child = None; left = n; right = n;
      degree = 0; mark = false; in_heap = true; forced = false }
  in
  add_root h n;
  h.size <- h.size + 1;
  n

let find_min h =
  match h.min with
  | None -> invalid_arg "Fibonacci_heap.find_min: empty"
  | Some m -> (m.key, m.value)

(* Make y a child of x. *)
let link x y =
  remove_from_list y;
  y.parent <- Some x;
  y.mark <- false;
  (match x.child with
  | None ->
    y.left <- y;
    y.right <- y;
    x.child <- Some y
  | Some c -> splice_right c y);
  x.degree <- x.degree + 1

let consolidate h =
  match h.min with
  | None -> ()
  | Some start ->
    (* Collect current roots into a list first: the ring is about to be
       restructured. *)
    let roots = ref [] in
    let cur = ref start in
    let continue = ref true in
    while !continue do
      roots := !cur :: !roots;
      cur := !cur.right;
      if !cur == start then continue := false
    done;
    let max_degree =
      (* log_phi bound; 2 + log2(size) is a safe overapproximation *)
      let rec bits k acc = if k = 0 then acc else bits (k lsr 1) (acc + 1) in
      2 * (bits (max h.size 1) 0) + 2
    in
    let slots = Array.make (max_degree + 1) None in
    let place x =
      let x = ref x in
      let continue = ref true in
      while !continue do
        let d = !x.degree in
        match slots.(d) with
        | None ->
          slots.(d) <- Some !x;
          continue := false
        | Some y ->
          slots.(d) <- None;
          let smaller, larger = if less h y !x then (y, !x) else (!x, y) in
          link smaller larger;
          x := smaller
      done
    in
    List.iter
      (fun r ->
        remove_from_list r;
        r.parent <- None;
        place r)
      !roots;
    h.min <- None;
    Array.iter
      (function
        | None -> ()
        | Some r -> add_root h r)
      slots

let extract_min_node h =
  match h.min with
  | None -> invalid_arg "Fibonacci_heap.extract_min: empty"
  | Some m ->
    bump (fun s -> s.extract_mins <- s.extract_mins + 1) h;
    (* promote children to the root list *)
    (match m.child with
    | None -> ()
    | Some c ->
      let cur = ref c in
      let stop = ref false in
      let children = ref [] in
      while not !stop do
        children := !cur :: !children;
        cur := !cur.right;
        if !cur == c then stop := true
      done;
      List.iter
        (fun ch ->
          remove_from_list ch;
          ch.parent <- None;
          splice_right m ch)
        !children;
      m.child <- None);
    let was_alone = m.right == m in
    let next = m.right in
    remove_from_list m;
    if was_alone then h.min <- None else h.min <- Some next;
    consolidate h;
    h.size <- h.size - 1;
    m.in_heap <- false;
    m.forced <- false;
    m

let extract_min h =
  let m = extract_min_node h in
  (m.key, m.value)

let cut h x parent =
  (match parent.child with
  | Some c when c == x ->
    parent.child <- (if x.right == x then None else Some x.right)
  | _ -> ());
  remove_from_list x;
  parent.degree <- parent.degree - 1;
  x.mark <- false;
  add_root h x

let rec cascading_cut h x =
  match x.parent with
  | None -> ()
  | Some p ->
    if not x.mark then x.mark <- true
    else begin
      cut h x p;
      cascading_cut h p
    end

let decrease_raw h x =
  (match x.parent with
  | Some p when less h x p ->
    cut h x p;
    cascading_cut h p
  | _ -> ());
  match h.min with
  | Some m when less h x m -> h.min <- Some x
  | Some _ -> ()
  | None -> assert false

let decrease_key h x k =
  if not x.in_heap then invalid_arg "Fibonacci_heap.decrease_key: node removed";
  if h.cmp k x.key > 0 then
    invalid_arg "Fibonacci_heap.decrease_key: new key larger than current";
  bump (fun s -> s.decrease_keys <- s.decrease_keys + 1) h;
  x.key <- k;
  decrease_raw h x

let delete h x =
  if not x.in_heap then invalid_arg "Fibonacci_heap.delete: node removed";
  bump (fun s -> s.deletes <- s.deletes + 1) h;
  x.forced <- true;
  decrease_raw h x;
  (* x is now the minimum *)
  h.min <- Some x;
  ignore (extract_min_node h)

let meld dst src =
  bump (fun s -> s.melds <- s.melds + 1) dst;
  (match (dst.min, src.min) with
  | _, None -> ()
  | None, Some _ ->
    dst.min <- src.min;
    dst.size <- src.size
  | Some dm, Some sm ->
    (* concatenate the two circular root lists *)
    let dr = dm.right and sr = sm.right in
    dm.right <- sr;
    sr.left <- dm;
    sm.right <- dr;
    dr.left <- sm;
    if less dst sm dm then dst.min <- Some sm;
    dst.size <- dst.size + src.size);
  src.min <- None;
  src.size <- 0

let iter f h =
  let rec visit n =
    f n.key n.value;
    (match n.child with Some c -> ring c | None -> ())
  and ring start =
    let cur = ref start in
    let stop = ref false in
    while not !stop do
      visit !cur;
      cur := !cur.right;
      if !cur == start then stop := true
    done
  in
  match h.min with None -> () | Some m -> ring m

type 'k t = {
  cmp : 'k -> 'k -> int;
  stats : Heap_stats.t option;
  elems : int array;          (* heap slot -> element *)
  pos : int array;            (* element -> heap slot, or -1 *)
  keys : 'k option array;     (* element -> current key *)
  mutable len : int;
}

let create ?stats ~capacity ~cmp () =
  if capacity < 0 then invalid_arg "Binary_heap.create: negative capacity";
  {
    cmp;
    stats;
    elems = Array.make (max capacity 1) (-1);
    pos = Array.make (max capacity 1) (-1);
    keys = Array.make (max capacity 1) None;
    len = 0;
  }

let capacity h = Array.length h.pos
let size h = h.len
let is_empty h = h.len = 0

let check_elem h e name =
  if e < 0 || e >= Array.length h.pos then
    invalid_arg ("Binary_heap." ^ name ^ ": element out of range")

let mem h e =
  check_elem h e "mem";
  h.pos.(e) >= 0

let get_key h e name =
  match h.keys.(e) with
  | Some k -> k
  | None -> invalid_arg ("Binary_heap." ^ name ^ ": element not in heap")

let key h e =
  check_elem h e "key";
  get_key h e "key"

let swap h i j =
  let a = h.elems.(i) and b = h.elems.(j) in
  h.elems.(i) <- b;
  h.elems.(j) <- a;
  h.pos.(b) <- i;
  h.pos.(a) <- j

let key_at h i = get_key h h.elems.(i) "internal"

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (key_at h i) (key_at h parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.cmp (key_at h l) (key_at h !smallest) < 0 then smallest := l;
  if r < h.len && h.cmp (key_at h r) (key_at h !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let bump f h = match h.stats with Some s -> f s | None -> ()

let insert h e k =
  check_elem h e "insert";
  if h.pos.(e) >= 0 then invalid_arg "Binary_heap.insert: element already present";
  bump (fun s -> s.inserts <- s.inserts + 1) h;
  h.elems.(h.len) <- e;
  h.pos.(e) <- h.len;
  h.keys.(e) <- Some k;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let find_min h =
  if h.len = 0 then invalid_arg "Binary_heap.find_min: empty";
  let e = h.elems.(0) in
  (e, get_key h e "find_min")

let extract_min h =
  if h.len = 0 then invalid_arg "Binary_heap.extract_min: empty";
  bump (fun s -> s.extract_mins <- s.extract_mins + 1) h;
  let e = h.elems.(0) in
  let k = get_key h e "extract_min" in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    let last = h.elems.(h.len) in
    h.elems.(0) <- last;
    h.pos.(last) <- 0
  end;
  h.pos.(e) <- -1;
  h.keys.(e) <- None;
  if h.len > 0 then sift_down h 0;
  (e, k)

let decrease_key h e k =
  check_elem h e "decrease_key";
  let cur = get_key h e "decrease_key" in
  if h.cmp k cur > 0 then
    invalid_arg "Binary_heap.decrease_key: new key larger than current";
  bump (fun s -> s.decrease_keys <- s.decrease_keys + 1) h;
  h.keys.(e) <- Some k;
  sift_up h h.pos.(e)

let update_key h e k =
  check_elem h e "update_key";
  if h.pos.(e) < 0 then insert h e k
  else begin
    let cur = get_key h e "update_key" in
    bump (fun s -> s.decrease_keys <- s.decrease_keys + 1) h;
    h.keys.(e) <- Some k;
    if h.cmp k cur < 0 then sift_up h h.pos.(e) else sift_down h h.pos.(e)
  end

let remove h e =
  check_elem h e "remove";
  let i = h.pos.(e) in
  if i >= 0 then begin
    bump (fun s -> s.deletes <- s.deletes + 1) h;
    h.len <- h.len - 1;
    if i < h.len then begin
      let last = h.elems.(h.len) in
      h.elems.(i) <- last;
      h.pos.(last) <- i
    end;
    h.pos.(e) <- -1;
    h.keys.(e) <- None;
    if i < h.len then begin
      sift_down h i;
      sift_up h i
    end
  end

let clear h =
  for i = 0 to h.len - 1 do
    let e = h.elems.(i) in
    h.pos.(e) <- -1;
    h.keys.(e) <- None
  done;
  h.len <- 0

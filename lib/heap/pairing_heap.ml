(* Standard pairing heap: a multiway tree kept as first-child /
   next-sibling links, with two-pass pairing on extract-min.
   decrease_key detaches the node and melds it back at the root. *)

type ('k, 'v) node = {
  mutable key : 'k;
  value : 'v;
  mutable child : ('k, 'v) node option;
  mutable sibling : ('k, 'v) node option;
  mutable parent : ('k, 'v) node option; (* or previous sibling *)
  mutable in_heap : bool;
}

type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  stats : Heap_stats.t option;
  mutable root : ('k, 'v) node option;
  mutable size : int;
}

let create ?stats ~cmp () = { cmp; stats; root = None; size = 0 }
let size h = h.size
let is_empty h = h.size = 0
let bump f h = match h.stats with Some s -> f s | None -> ()

let node_key n =
  if not n.in_heap then invalid_arg "Pairing_heap.node_key: node removed";
  n.key

let node_value n = n.value
let node_in_heap n = n.in_heap

(* meld two root nodes, returning the smaller as the new root *)
let meld_nodes h a b =
  if h.cmp a.key b.key <= 0 then begin
    b.parent <- Some a;
    b.sibling <- a.child;
    (match a.child with Some c -> c.parent <- Some b | None -> ());
    a.child <- Some b;
    a
  end
  else begin
    a.parent <- Some b;
    a.sibling <- b.child;
    (match b.child with Some c -> c.parent <- Some a | None -> ());
    b.child <- Some a;
    b
  end

let insert h k v =
  bump (fun s -> s.inserts <- s.inserts + 1) h;
  let n =
    { key = k; value = v; child = None; sibling = None; parent = None;
      in_heap = true }
  in
  (match h.root with
  | None -> h.root <- Some n
  | Some r -> h.root <- Some (meld_nodes h r n));
  h.size <- h.size + 1;
  n

let find_min h =
  match h.root with
  | None -> invalid_arg "Pairing_heap.find_min: empty"
  | Some r -> (r.key, r.value)

(* two-pass pairing of a sibling list *)
let rec pair h = function
  | None -> None
  | Some n -> (
    match n.sibling with
    | None ->
      n.parent <- None;
      n.sibling <- None;
      Some n
    | Some next ->
      let rest = next.sibling in
      n.sibling <- None;
      n.parent <- None;
      next.sibling <- None;
      next.parent <- None;
      let merged = meld_nodes h n next in
      (match pair h rest with
      | None -> Some merged
      | Some r -> Some (meld_nodes h merged r)))

let extract_min h =
  match h.root with
  | None -> invalid_arg "Pairing_heap.extract_min: empty"
  | Some r ->
    bump (fun s -> s.extract_mins <- s.extract_mins + 1) h;
    h.root <- pair h r.child;
    r.child <- None;
    r.in_heap <- false;
    h.size <- h.size - 1;
    (r.key, r.value)

(* Detach n from its parent's child list. n must not be the root. *)
let detach n =
  match n.parent with
  | None -> ()
  | Some p ->
    (match p.child with
    | Some c when c == n ->
      (* n is p's first child *)
      p.child <- n.sibling;
      (match n.sibling with Some s -> s.parent <- Some p | None -> ())
    | _ ->
      (* p is actually n's previous sibling *)
      p.sibling <- n.sibling;
      (match n.sibling with Some s -> s.parent <- Some p | None -> ()));
    n.parent <- None;
    n.sibling <- None

let decrease_key h n k =
  if not n.in_heap then invalid_arg "Pairing_heap.decrease_key: node removed";
  if h.cmp k n.key > 0 then
    invalid_arg "Pairing_heap.decrease_key: new key larger than current";
  bump (fun s -> s.decrease_keys <- s.decrease_keys + 1) h;
  n.key <- k;
  match h.root with
  | Some r when r == n -> ()
  | Some r ->
    detach n;
    h.root <- Some (meld_nodes h r n)
  | None -> assert false

let delete h n =
  if not n.in_heap then invalid_arg "Pairing_heap.delete: node removed";
  bump (fun s -> s.deletes <- s.deletes + 1) h;
  (match h.root with
  | Some r when r == n ->
    h.root <- pair h n.child;
    n.child <- None
  | Some _ ->
    detach n;
    let sub = pair h n.child in
    n.child <- None;
    (match (h.root, sub) with
    | Some r, Some s -> h.root <- Some (meld_nodes h r s)
    | Some _, None -> ()
    | None, _ -> assert false)
  | None -> assert false);
  n.in_heap <- false;
  h.size <- h.size - 1

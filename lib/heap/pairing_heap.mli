(** Pairing heaps — a simpler self-adjusting alternative to Fibonacci
    heaps with excellent constants in practice; provided so the heap
    choice of the parametric algorithms (KO/YTO) can be ablated. *)

type ('k, 'v) t
type ('k, 'v) node

val create : ?stats:Heap_stats.t -> cmp:('k -> 'k -> int) -> unit -> ('k, 'v) t
val size : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

val insert : ('k, 'v) t -> 'k -> 'v -> ('k, 'v) node
val node_key : ('k, 'v) node -> 'k
val node_value : ('k, 'v) node -> 'v
val node_in_heap : ('k, 'v) node -> bool

val find_min : ('k, 'v) t -> 'k * 'v
(** @raise Invalid_argument if empty. *)

val extract_min : ('k, 'v) t -> 'k * 'v
(** @raise Invalid_argument if empty. *)

val decrease_key : ('k, 'v) t -> ('k, 'v) node -> 'k -> unit
(** @raise Invalid_argument if the node was removed or the key grows. *)

val delete : ('k, 'v) t -> ('k, 'v) node -> unit
(** @raise Invalid_argument if the node was removed. *)

(** Fibonacci heaps (Fredman–Tarjan), the heap used by the paper's KO
    and YTO implementations (LEDA's default, §4.2).

    Handle-based interface: [insert] returns a node handle that can
    later be passed to [decrease_key] or [delete].  Amortized costs:
    insert O(1), find-min O(1), decrease-key O(1), extract-min and
    delete O(log n). *)

type ('k, 'v) t
type ('k, 'v) node

val create : ?stats:Heap_stats.t -> cmp:('k -> 'k -> int) -> unit -> ('k, 'v) t
val size : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

val insert : ('k, 'v) t -> 'k -> 'v -> ('k, 'v) node

val node_key : ('k, 'v) node -> 'k
(** @raise Invalid_argument if the node was already removed. *)

val node_value : ('k, 'v) node -> 'v
val node_in_heap : ('k, 'v) node -> bool

val find_min : ('k, 'v) t -> 'k * 'v
(** @raise Invalid_argument if empty. *)

val extract_min : ('k, 'v) t -> 'k * 'v
(** @raise Invalid_argument if empty. *)

val extract_min_node : ('k, 'v) t -> ('k, 'v) node
(** Like {!extract_min} but returns the (now detached) handle. *)

val decrease_key : ('k, 'v) t -> ('k, 'v) node -> 'k -> unit
(** @raise Invalid_argument if the node is not in this heap or the new
    key is larger than the current one. *)

val delete : ('k, 'v) t -> ('k, 'v) node -> unit
(** Removes an arbitrary node.  @raise Invalid_argument if absent. *)

val meld : ('k, 'v) t -> ('k, 'v) t -> unit
(** [meld dst src] moves all of [src] into [dst]; [src] becomes empty.
    Both heaps must use compatible comparison functions. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Applies to every element, in no particular order. *)

(** Operation counters shared by all heap implementations.

    The DAC'99 study compares KO and YTO by their numbers of heap
    operations (§4.2); every heap in this library can be created with a
    counter record that it increments on each operation. *)

type t = {
  mutable inserts : int;
  mutable extract_mins : int;
  mutable decrease_keys : int;
  mutable deletes : int;
  mutable melds : int;
}

val create : unit -> t
val reset : t -> unit
val total : t -> int
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val merge : t -> t -> t
(** Functional combination: a fresh counter record holding the sums of
    the two arguments, which are left untouched.  Safe for combining
    per-domain counters at a parallel join. *)

val pp : Format.formatter -> t -> unit

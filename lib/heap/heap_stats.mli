(** Operation counters shared by all heap implementations.

    The DAC'99 study compares KO and YTO by their numbers of heap
    operations (§4.2); every heap in this library can be created with a
    counter record that it increments on each operation. *)

type t = {
  mutable inserts : int;
  mutable extract_mins : int;
  mutable decrease_keys : int;
  mutable deletes : int;
  mutable melds : int;
}

val create : unit -> t
val reset : t -> unit
val total : t -> int
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val pp : Format.formatter -> t -> unit

type t = {
  mutable inserts : int;
  mutable extract_mins : int;
  mutable decrease_keys : int;
  mutable deletes : int;
  mutable melds : int;
}

let create () =
  { inserts = 0; extract_mins = 0; decrease_keys = 0; deletes = 0; melds = 0 }

let reset t =
  t.inserts <- 0;
  t.extract_mins <- 0;
  t.decrease_keys <- 0;
  t.deletes <- 0;
  t.melds <- 0

let total t = t.inserts + t.extract_mins + t.decrease_keys + t.deletes + t.melds

let add acc x =
  acc.inserts <- acc.inserts + x.inserts;
  acc.extract_mins <- acc.extract_mins + x.extract_mins;
  acc.decrease_keys <- acc.decrease_keys + x.decrease_keys;
  acc.deletes <- acc.deletes + x.deletes;
  acc.melds <- acc.melds + x.melds

let merge a b =
  let t = create () in
  add t a;
  add t b;
  t

let pp ppf t =
  Format.fprintf ppf "ins=%d ext=%d dec=%d del=%d meld=%d" t.inserts
    t.extract_mins t.decrease_keys t.deletes t.melds

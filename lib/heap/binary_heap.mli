(** Indexed binary min-heap.

    Elements are integers in [0 .. capacity-1] (node or arc ids); each
    element can be in the heap at most once, and an element's position
    is tracked so that [decrease_key], [update_key] and [remove] run in
    O(log n) without searching. *)

type 'k t

val create : ?stats:Heap_stats.t -> capacity:int -> cmp:('k -> 'k -> int) -> unit -> 'k t
(** @raise Invalid_argument if [capacity < 0]. *)

val capacity : 'k t -> int
val size : 'k t -> int
val is_empty : 'k t -> bool

val mem : 'k t -> int -> bool
(** Whether the element is currently in the heap.
    @raise Invalid_argument on out-of-range element. *)

val key : 'k t -> int -> 'k
(** Current key of an element in the heap.
    @raise Invalid_argument if absent. *)

val insert : 'k t -> int -> 'k -> unit
(** @raise Invalid_argument if the element is already present. *)

val find_min : 'k t -> int * 'k
(** @raise Invalid_argument if empty. *)

val extract_min : 'k t -> int * 'k
(** @raise Invalid_argument if empty. *)

val decrease_key : 'k t -> int -> 'k -> unit
(** @raise Invalid_argument if absent or if the new key is larger than
    the current one. *)

val update_key : 'k t -> int -> 'k -> unit
(** Sets the key to any value, restoring heap order in O(log n);
    inserts the element if absent. *)

val remove : 'k t -> int -> unit
(** Removes the element if present; no-op otherwise. *)

val clear : 'k t -> unit

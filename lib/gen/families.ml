let ring ?(weight = fun _ -> 1) n =
  if n < 1 then invalid_arg "Families.ring: empty";
  let b = Digraph.create_builder n in
  for i = 0 to n - 1 do
    ignore
      (Digraph.add_arc b ~src:i ~dst:((i + 1) mod n) ~weight:(weight i) ())
  done;
  Digraph.build b

let complete ?(seed = 1) ?(weights = (1, 10000)) n =
  if n < 2 then invalid_arg "Families.complete: need at least 2 nodes";
  let rng = Rng.create seed in
  let wlo, whi = weights in
  let b = Digraph.create_builder ~expected_arcs:(n * (n - 1)) n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then
        ignore
          (Digraph.add_arc b ~src:u ~dst:v ~weight:(Rng.in_range rng wlo whi)
             ())
    done
  done;
  Digraph.build b

let grid_torus ?(seed = 1) ?(weights = (1, 10000)) rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Families.grid_torus: empty";
  let rng = Rng.create seed in
  let wlo, whi = weights in
  let id r c = (r * cols) + c in
  let b = Digraph.create_builder (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let add v =
        ignore
          (Digraph.add_arc b ~src:(id r c) ~dst:v
             ~weight:(Rng.in_range rng wlo whi) ())
      in
      add (id r ((c + 1) mod cols));
      add (id ((r + 1) mod rows) c)
    done
  done;
  Digraph.build b

let layered_dataflow ?(seed = 1) ?(weights = (1, 100)) ~layers ~width () =
  if layers < 2 || width < 1 then
    invalid_arg "Families.layered_dataflow: need >= 2 layers, >= 1 width";
  let rng = Rng.create seed in
  let wlo, whi = weights in
  let id l k = (l * width) + k in
  let b = Digraph.create_builder (layers * width) in
  let add u v =
    ignore
      (Digraph.add_arc b ~src:u ~dst:v ~weight:(Rng.in_range rng wlo whi) ())
  in
  for l = 0 to layers - 2 do
    for k = 0 to width - 1 do
      let fanout = 1 + Rng.int rng 3 in
      (* always connect to the same lane to keep every node reachable *)
      add (id l k) (id (l + 1) k);
      for _ = 2 to fanout do
        add (id l k) (id (l + 1) (Rng.int rng width))
      done
    done
  done;
  (* feedback: last layer back to the first, same lane *)
  for k = 0 to width - 1 do
    add (id (layers - 1) k) (id 0 k)
  done;
  Digraph.build b

let long_critical ?(chord_weight = 1000) n =
  if n < 3 then invalid_arg "Families.long_critical: need at least 3 nodes";
  let b = Digraph.create_builder n in
  for i = 0 to n - 1 do
    ignore (Digraph.add_arc b ~src:i ~dst:((i + 1) mod n) ~weight:1 ());
    ignore (Digraph.add_arc b ~src:i ~dst:((i + 2) mod n) ~weight:chord_weight ())
  done;
  Digraph.build b

let many_scc ?(seed = 1) ?(weights = (1, 10000)) ~components ~size () =
  if components < 1 || size < 1 then
    invalid_arg "Families.many_scc: need >= 1 components of >= 1 nodes";
  let rng = Rng.create seed in
  let wlo, whi = weights in
  let b = Digraph.create_builder (components * size) in
  let add u v =
    ignore (Digraph.add_arc b ~src:u ~dst:v ~weight:(Rng.in_range rng wlo whi) ())
  in
  for k = 0 to components - 1 do
    let base = k * size in
    (* strongly connected block: a ring plus [size] random chords *)
    for i = 0 to size - 1 do
      add (base + i) (base + ((i + 1) mod size))
    done;
    for _ = 1 to size do
      add (base + Rng.int rng size) (base + Rng.int rng size)
    done;
    (* a one-way bridge from the previous block keeps the graph weakly
       connected without merging components *)
    if k > 0 then add (base - 1) base
  done;
  Digraph.build b

let low_diameter ?(seed = 1) ?(weights = (1, 10000)) ~diameter n =
  if n < 2 then invalid_arg "Families.low_diameter: need at least 2 nodes";
  if diameter < 1 then invalid_arg "Families.low_diameter: diameter must be >= 1";
  let rng = Rng.create seed in
  let wlo, whi = weights in
  (* out-degree d with d^diameter >= n, so random chords alone give
     every node an expected hop-radius of about [diameter] *)
  let degree =
    max 2
      (int_of_float
         (Float.ceil (Float.pow (float_of_int n) (1.0 /. float_of_int diameter))))
  in
  let b = Digraph.create_builder ~expected_arcs:(n * degree) n in
  let add u v =
    ignore (Digraph.add_arc b ~src:u ~dst:v ~weight:(Rng.in_range rng wlo whi) ())
  in
  for i = 0 to n - 1 do
    (* a ring arc guarantees strong connectivity... *)
    add i ((i + 1) mod n);
    (* ...and degree-1 uniform chords shrink the diameter *)
    for _ = 2 to degree do
      add i (Rng.int rng n)
    done
  done;
  Digraph.build b

let two_cycles ~len1 ~w1 ~len2 ~w2 =
  if len1 < 1 || len2 < 1 then invalid_arg "Families.two_cycles: empty cycle";
  (* node 0 is shared; cycle 1 uses nodes 1..len1-1, cycle 2 the rest *)
  let n = len1 + len2 - 1 in
  let b = Digraph.create_builder (max n 1) in
  let add u v w = ignore (Digraph.add_arc b ~src:u ~dst:v ~weight:w ()) in
  (* cycle 1: 0 -> 1 -> ... -> len1-1 -> 0 (or a self-loop if len1=1) *)
  if len1 = 1 then add 0 0 w1
  else begin
    for i = 0 to len1 - 2 do
      add i (i + 1) w1
    done;
    add (len1 - 1) 0 w1
  end;
  (* cycle 2 over 0 and nodes len1..n-1 *)
  if len2 = 1 then add 0 0 w2
  else begin
    add 0 len1 w2;
    for i = len1 to n - 2 do
      add i (i + 1) w2
    done;
    add (n - 1) 0 w2
  end;
  Digraph.build b

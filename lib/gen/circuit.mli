(** Synthetic sequential-circuit benchmarks.

    The paper's second test suite consists of cyclic sequential
    multi-level logic circuits from the 1991 MCNC/LGSynth benchmarks
    (§3); that data set is not redistributable here, so this module
    generates {e register graphs} with the structural properties the
    study exploits: nodes are registers, an arc is a combinational path
    between two registers weighted by its gate delay, connectivity is
    {e local} (most paths connect registers that are close in the
    placement order), and the graphs are much sparser than SPRAND
    instances.  The substitution is recorded in DESIGN.md.

    Locality is the property that makes the DG algorithm shine on
    circuits (§4.4): breadth-first unfolding stays narrow. *)

val generate :
  ?seed:int ->
  ?density:float ->
  ?locality:int ->
  ?delays:int * int ->
  registers:int ->
  unit ->
  Digraph.t
(** A strongly connected register graph: a ring backbone over a random
    register ordering (the global feedback every sequential circuit
    has) plus [density·registers − registers] local arcs whose span is
    geometric with mean [locality].  [density] defaults to [1.8]
    (m/n of typical ISCAS'89 register graphs), [locality] to [8],
    [delays] (arc weights, i.e. combinational path delays) to
    [(1, 100)].  Transit times are 1.
    @raise Invalid_argument if [registers < 2] or [density < 1.0]. *)

val benchmark_suite : (string * int) list
(** Names and register counts mirroring the ISCAS'89/LGSynth'91
    sequential circuits used in the study (s27 … s38584); feed the
    sizes to {!generate} to obtain the stand-in suite. *)

val benchmark : ?seed:int -> string -> Digraph.t
(** [benchmark name] generates the stand-in for the named circuit.
    @raise Not_found for unknown names. *)

(** The SPRAND random graph generator of Cherkassky, Goldberg & Radzik
    (SODA 1994), reimplemented: first a Hamiltonian cycle over all [n]
    nodes (which makes the graph strongly connected), then [m − n]
    arcs with independently uniform endpoints.  Arc weights are uniform
    in [1, 10000] by default — the interval used throughout the paper's
    experiments (§3). *)

val generate :
  ?seed:int ->
  ?weights:int * int ->
  ?transits:int * int ->
  n:int ->
  m:int ->
  unit ->
  Digraph.t
(** [weights] defaults to [(1, 10000)]; [transits] to [(1, 1)] (all
    transit times 1, i.e. a pure mean-problem instance).
    @raise Invalid_argument if [n < 1] or [m < n]. *)

let generate ?(seed = 1) ?(density = 1.8) ?(locality = 8)
    ?(delays = (1, 100)) ~registers () =
  if registers < 2 then invalid_arg "Circuit.generate: need at least 2 registers";
  if density < 1.0 then invalid_arg "Circuit.generate: density below 1.0";
  let n = registers in
  let rng = Rng.create seed in
  let dlo, dhi = delays in
  let m = int_of_float (ceil (density *. float_of_int n)) in
  let b = Digraph.create_builder ~expected_arcs:m n in
  let add u v =
    ignore
      (Digraph.add_arc b ~src:u ~dst:v ~weight:(Rng.in_range rng dlo dhi) ())
  in
  (* global feedback ring over a random placement order *)
  let perm = Array.init n Fun.id in
  Rng.shuffle rng perm;
  for i = 0 to n - 1 do
    add perm.(i) perm.((i + 1) mod n)
  done;
  (* local combinational paths: geometric span, random direction *)
  let geometric rng mean =
    (* number of failures before success, p = 1/mean *)
    let p = 1.0 /. float_of_int (max 1 mean) in
    let u = Rng.float rng in
    1 + int_of_float (Float.log1p (-.u) /. Float.log1p (-.p))
  in
  for _ = n + 1 to m do
    let i = Rng.int rng n in
    let span = geometric rng locality in
    (* the geometric tail is unbounded, so reduce with a true positive
       modulo — a fixed [+ k*n] offset underflows for span > k*n *)
    let j =
      if Rng.bool rng then (i + span) mod n
      else (((i - span) mod n) + n) mod n
    in
    if i <> j then add perm.(i) perm.(j)
  done;
  Digraph.build b

(* Register counts of the ISCAS'89 / LGSynth'91 sequential circuits the
   study drew from (flip-flop counts of the published netlists). *)
let benchmark_suite =
  [
    ("s27", 3); ("s208", 8); ("s298", 14); ("s344", 15); ("s349", 15);
    ("s382", 21); ("s386", 6); ("s400", 21); ("s420", 16); ("s444", 21);
    ("s510", 6); ("s526", 21); ("s641", 19); ("s713", 19); ("s820", 5);
    ("s832", 5); ("s838", 32); ("s953", 29); ("s1196", 18); ("s1238", 18);
    ("s1423", 74); ("s1488", 6); ("s1494", 6); ("s5378", 179);
    ("s9234", 211); ("s13207", 638); ("s15850", 534); ("s35932", 1728);
    ("s38417", 1636); ("s38584", 1426);
  ]

let benchmark ?(seed = 1) name =
  match List.assoc_opt name benchmark_suite with
  | None -> raise Not_found
  | Some registers ->
    (* derive a per-circuit seed so different circuits differ even with
       the same user seed *)
    let h = Hashtbl.hash name in
    generate ~seed:(seed + (h * 7919)) ~registers ()

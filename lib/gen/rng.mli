(** Deterministic pseudo-random numbers (SplitMix64).

    Self-contained so that every generated workload is reproducible
    from its seed across OCaml versions and platforms, which the
    benchmark harness relies on. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val next64 : t -> int64
(** Raw 64-bit step. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [lo, hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val split : t -> t
(** Independent child generator (advances the parent). *)

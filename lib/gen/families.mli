(** Structured graph families with known or easily analysed optima —
    used by the tests as fixed points and by the benches as extreme
    densities. *)

val ring : ?weight:(int -> int) -> int -> Digraph.t
(** Single directed cycle [0 → 1 → … → n−1 → 0]; arc [i] has weight
    [weight i] (default all 1).  The only cycle is the ring itself, so
    the minimum mean equals the average weight. *)

val complete : ?seed:int -> ?weights:int * int -> int -> Digraph.t
(** Complete digraph without self-loops, random weights (default
    uniform [1, 10000]). *)

val grid_torus : ?seed:int -> ?weights:int * int -> int -> int -> Digraph.t
(** [grid_torus rows cols]: each cell has arcs to its right and down
    neighbours with wrap-around; strongly connected, density 2. *)

val layered_dataflow :
  ?seed:int -> ?weights:int * int -> layers:int -> width:int -> unit -> Digraph.t
(** DSP-style layered pipeline with feedback: [layers × width] nodes,
    arcs from each node to 1–3 nodes of the next layer, and feedback
    arcs from the last layer to the first; strongly connected. *)

val long_critical : ?chord_weight:int -> int -> Digraph.t
(** Adversarial instance for early-termination schemes: a ring of [n]
    unit-weight arcs (the unique optimum, mean 1) plus heavy chords
    [i → (i+2) mod n] (weight [chord_weight], default 1000) that create
    an abundance of short, far-from-optimal cycles.  The critical cycle
    has length exactly [n], so any method that must {e exhibit} it
    (Karp-table walks, HO's level check) works to depth n. *)

val many_scc :
  ?seed:int -> ?weights:int * int -> components:int -> size:int -> unit ->
  Digraph.t
(** [components] disjoint strongly connected blocks of [size] nodes
    each (a ring plus [size] random chords, SPRAND-style weights),
    chained by one-way bridge arcs: exactly [components] cyclic SCCs.
    The stress instance for per-component solving — partition sweeps,
    parallel SCC fan-out (bench E12). *)

val low_diameter :
  ?seed:int -> ?weights:int * int -> diameter:int -> int -> Digraph.t
(** Strongly connected expander-style graph of [n] nodes whose hop
    radius concentrates around [diameter]: a Hamiltonian ring plus
    [d − 1] uniform random chords per node, with out-degree
    [d = max 2 ⌈n^(1/diameter)⌉].  The regime where truncated value
    iteration shines — short cycles reach every node in few rounds —
    which is what bench E17 sweeps against the exact lane.
    @raise Invalid_argument if [n < 2] or [diameter < 1]. *)

val two_cycles : len1:int -> w1:int -> len2:int -> w2:int -> Digraph.t
(** Two disjoint cycles sharing node 0: one of length [len1] with
    every arc weighing [w1], one of length [len2] weighing [w2].  The
    minimum cycle mean is [min w1 w2] — a convenient exact fixture. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.mul (Int64.of_int seed) 0x2545F4914F6CDD1DL }

(* SplitMix64 (Steele, Lea & Flood): state += golden; mix. *)
let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let r = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  r mod bound

let in_range t lo hi =
  if hi < lo then invalid_arg "Rng.in_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  done

let split t = { state = next64 t }

let generate ?(seed = 1) ?(weights = (1, 10000)) ?(transits = (1, 1)) ~n ~m () =
  if n < 1 then invalid_arg "Sprand.generate: n must be positive";
  if m < n then invalid_arg "Sprand.generate: m must be at least n";
  let rng = Rng.create seed in
  let wlo, whi = weights and tlo, thi = transits in
  let b = Digraph.create_builder ~expected_arcs:m n in
  let add u v =
    ignore
      (Digraph.add_arc b ~src:u ~dst:v ~weight:(Rng.in_range rng wlo whi)
         ~transit:(Rng.in_range rng tlo thi) ())
  in
  (* Hamiltonian cycle over a random node permutation *)
  let perm = Array.init n Fun.id in
  Rng.shuffle rng perm;
  for i = 0 to n - 1 do
    add perm.(i) perm.((i + 1) mod n)
  done;
  (* remaining arcs uniformly at random (parallel arcs allowed, as in
     the original generator; self-loops excluded) *)
  for _ = n + 1 to m do
    let u = Rng.int rng n in
    let v = ref (Rng.int rng n) in
    while !v = u && n > 1 do
      v := Rng.int rng n
    done;
    add u !v
  done;
  Digraph.build b

(** The certified (1+ε)-approximation lane: near-linear solves with an
    exact interval certificate.

    For graphs (or deadlines) where the exact portfolio cannot finish,
    this lane answers with a {e certified interval} [lo <= λ* <= hi]
    of width at most [eps · scale g], plus a witness cycle attaining
    the bound on the achievable side.  Both sides are exact rational
    arithmetic — the approximation is only in how tightly the interval
    pins λ*, never in the soundness of its endpoints.  See
    [docs/APPROX.md] for the algorithm and the certificate semantics.

    The module registers itself as the ["approx"] lane in {!Registry}
    at initialization time. *)

type certificate = {
  lo : Ratio.t;  (** certified lower bound: [lo <= λ*] *)
  hi : Ratio.t;  (** certified upper bound: [λ* <= hi] *)
  witness : int list;
      (** a genuine cycle of the input graph (arc ids, path order)
          whose exact value equals the attained endpoint: [hi] when
          minimizing, [lo] when maximizing *)
  eps : float;   (** the requested relative tolerance *)
  scale : float;  (** [max 1 (max |w|)]; the width target is [eps·scale] *)
  components : int;  (** cyclic SCCs solved *)
  tests : int;   (** λ-tests across all components *)
  rounds : int;  (** value-iteration rounds across all tests *)
  converged : bool;
      (** [hi - lo <= eps·scale] was reached; [false] after a budget
          interruption (the interval is still sound, just wider) *)
}

val default_eps : float
(** [0.01]. *)

val scale : Digraph.t -> float
(** [max 1 (max |w|)] — the natural scale of the instance; [1.0] on
    arcless graphs.  Monotone under subgraphs, which is what lets
    per-component searches share one absolute width target. *)

val validate_eps : float -> (unit, string) result
(** [Error msg] unless [eps] is positive and finite. *)

val solve :
  ?stats:Stats.t -> ?budget:Budget.t -> ?jobs:int -> ?pool:Executor.t ->
  ?problem:Solver.problem -> ?objective:Solver.objective -> eps:float ->
  Digraph.t -> certificate option
(** [None] iff the graph has no cycle.  Components fan out on the pool
    exactly like {!Solver.solve} (bit-identical certificates for every
    job count); a budget interruption degrades to a wider but still
    sound certificate instead of raising.  [stats] accumulates the
    merged per-component counters.
    @raise Invalid_argument on invalid [eps]/[jobs], and from
    {!Solver.preflight} on instances outside exact-arithmetic range. *)

val recheck :
  ?problem:Solver.problem -> ?objective:Solver.objective -> Digraph.t ->
  certificate -> (unit, string) result
(** Witness-side audit, O(n + |witness|): the witness is a genuine
    cycle of this graph, its exact value equals the attained
    certificate endpoint, and the interval is non-empty.  (The other
    endpoint is sound by construction — every binary-search test is
    exact integer arithmetic — and can only be re-derived by an exact
    solve.)  Used by the engine as the cache-collision guard and by
    [--verify]. *)

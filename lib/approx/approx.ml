type certificate = {
  lo : Ratio.t;
  hi : Ratio.t;
  witness : int list;
  eps : float;
  scale : float;
  components : int;
  tests : int;
  rounds : int;
  converged : bool;
}

let default_eps = 0.01

let scale g =
  if Digraph.m g = 0 then 1.0
  else
    Float.max 1.0
      (float_of_int
         (max (abs (Digraph.min_weight g)) (abs (Digraph.max_weight g))))

let validate_eps eps =
  if Float.is_finite eps && eps > 0.0 then Ok ()
  else Error "eps must be a positive finite float"

let sp_solve = Obs.intern "approx.solve"
let sp_component = Obs.intern "approx.component"

(* per-problem denominator callback and a-priori integer λ* bounds *)
let problem_spec problem g =
  match problem with
  | Solver.Cycle_mean ->
    ((fun _ -> 1), (Digraph.min_weight g, Digraph.max_weight g))
  | Solver.Cycle_ratio ->
    let maxabs =
      Digraph.fold_arcs g (fun acc a -> max acc (abs (Digraph.weight g a))) 1
    in
    let b = (Digraph.n g * maxabs) + 1 in
    (Digraph.transit g, (-b, b))

(* the Altschuler–Parrilo-style truncation: ~1/ε rounds of value
   iteration per test, never more than n (after n rounds the exact
   FIFO engine is the better spend) *)
let truncation ~eps n = min (max 1 n) (max 16 (int_of_float (Float.ceil (2.0 /. eps))))

let solve ?stats ?budget ?(jobs = 1) ?pool ?(problem = Solver.Cycle_mean)
    ?(objective = Solver.Minimize) ~eps g =
  (match validate_eps eps with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Approx.solve: " ^ msg));
  if jobs < 1 then invalid_arg "Approx.solve: jobs must be >= 1";
  Solver.preflight ~problem g;
  let sc = scale g in
  let width = eps *. sc in
  let g_min =
    match objective with
    | Solver.Minimize -> g
    | Solver.Maximize -> Digraph.negate_weights g
  in
  let tr = !Obs.enabled_flag in
  if tr then Trace.begin_span sp_solve;
  let scc = Scc.compute g_min in
  let subs = Scc.partition g_min scc in
  let result =
    if Array.length subs = 0 then None
    else begin
      let solve_sub (sp : Scc.subproblem) =
        (match budget with Some b -> Budget.check b | None -> ());
        let tr = !Obs.enabled_flag in
        if tr then Trace.begin_span sp_component;
        let sub = sp.Scc.sub in
        let den, bounds = problem_spec problem sub in
        let sub_stats = Stats.create () in
        let r =
          Approx_lane.solve ~stats:sub_stats ?budget ?pool ~den ~bounds ~width
            ~max_rounds:(truncation ~eps (Digraph.n sub)) sub
        in
        if tr then Trace.end_span sp_component;
        let witness = List.map (fun a -> sp.Scc.arc_of_sub.(a)) r.Approx_lane.witness in
        ({ r with Approx_lane.witness }, witness, sub_stats)
      in
      (* the same fan-out and arbitration as Solver.solve: components in
         parallel, the inner pool only where workers would idle; results
         land in component order so the reduction is job-count-blind *)
      let results =
        match pool with
        | None when jobs = 1 ->
          let out = Array.make (Array.length subs) None in
          (try Array.iteri (fun i sp -> out.(i) <- Some (solve_sub sp)) subs
           with Budget.Exceeded _ -> ());
          out
        | _ ->
          let p, owned =
            match pool with
            | Some p -> (p, false)
            | None -> (Executor.create ~jobs, true)
          in
          let compute () =
            subs
            |> Array.map (fun sp -> Executor.async p (fun () -> solve_sub sp))
            |> Array.map (fun fut ->
                   match Executor.await p fut with
                   | v -> Some v
                   | exception Budget.Exceeded _ -> None)
          in
          if owned then
            Fun.protect ~finally:(fun () -> Executor.shutdown p) compute
          else compute ()
      in
      let merged_stats = ref (Stats.create ()) in
      let lo = ref None in
      let upper = ref None in
      let components = ref 0 in
      let tests = ref 0 in
      let rounds = ref 0 in
      let all_converged = ref true in
      let skipped = ref false in
      Array.iter
        (function
          | None -> skipped := true
          | Some ((r : Approx_lane.t), witness, sub_stats) ->
            incr components;
            merged_stats := Stats.merge !merged_stats sub_stats;
            tests := !tests + r.Approx_lane.tests;
            rounds := !rounds + r.Approx_lane.rounds;
            if not r.Approx_lane.converged then all_converged := false;
            (match !lo with
            | Some l when Ratio.leq l r.Approx_lane.lo -> ()
            | _ -> lo := Some r.Approx_lane.lo);
            (match !upper with
            | Some (h, _) when Ratio.leq h r.Approx_lane.hi -> ()
            | _ -> upper := Some (r.Approx_lane.hi, witness)))
        results;
      (match stats with
      | Some s -> Stats.add s !merged_stats
      | None -> ());
      let den_g, (blo_g, _) = problem_spec problem g_min in
      (* components the budget never reached only widen the interval:
         their λ* is still above the graph-wide a-priori lower bound,
         and any completed component's hi keeps bounding the global
         minimum from above *)
      let lo =
        if !skipped || !lo = None then Ratio.of_int blo_g
        else Option.get !lo
      in
      let hi, witness =
        match !upper with
        | Some hw -> hw
        | None ->
          (* every component was budget-skipped: fall back to an exact
             O(n+m) witness so even a fully starved solve certifies *)
          let c =
            match Critical.cycle_in g_min (fun _ -> true) with
            | Some c -> c
            | None -> assert false (* subs is non-empty *)
          in
          (Critical.ratio_of_cycle g_min ~den:den_g c, c)
      in
      let converged =
        (not !skipped) && !all_converged
        && Ratio.to_float hi -. Ratio.to_float lo <= width
      in
      let lo, hi =
        match objective with
        | Solver.Minimize -> (lo, hi)
        | Solver.Maximize -> (Ratio.neg hi, Ratio.neg lo)
      in
      Some
        {
          lo;
          hi;
          witness;
          eps;
          scale = sc;
          components = !components;
          tests = !tests;
          rounds = !rounds;
          converged;
        }
    end
  in
  if tr then Trace.end_span sp_solve;
  result

let recheck ?(problem = Solver.Cycle_mean) ?(objective = Solver.Minimize) g
    cert =
  let den =
    match problem with
    | Solver.Cycle_mean -> fun _ -> 1
    | Solver.Cycle_ratio -> Digraph.transit g
  in
  try
    if cert.witness = [] then Error "approx certificate: empty witness"
    else if not (Digraph.is_cycle g cert.witness) then
      Error "approx certificate: witness is not a cycle of this graph"
    else if not (Ratio.leq cert.lo cert.hi) then
      Error "approx certificate: empty interval"
    else
      let r = Critical.ratio_of_cycle g ~den cert.witness in
      let attained =
        match objective with
        | Solver.Minimize -> cert.hi
        | Solver.Maximize -> cert.lo
      in
      if Ratio.equal r attained then Ok ()
      else Error "approx certificate: witness does not attain its bound"
  with _ -> Error "approx certificate: witness refers outside this graph"

(* ------------------------------------------------------------------ *)
(* Registry lane                                                       *)
(* ------------------------------------------------------------------ *)

(* the strongly-connected entry points the Registry hook expects,
   mirroring Registry.minimum_cycle_mean/_ratio *)
let lane_run problem ?stats ?budget ?pool ~eps g =
  (match validate_eps eps with
  | Ok () -> ()
  | Error msg -> invalid_arg ("approx lane: " ^ msg));
  (match problem with
  | Solver.Cycle_ratio -> Critical.assert_ratio_well_posed g
  | Solver.Cycle_mean -> ());
  let den, bounds = problem_spec problem g in
  let width = eps *. scale g in
  let r =
    Approx_lane.solve ?stats ?budget ?pool ~den ~bounds ~width
      ~max_rounds:(truncation ~eps (Digraph.n g)) g
  in
  {
    Registry.lane_lo = r.Approx_lane.lo;
    lane_hi = r.Approx_lane.hi;
    lane_witness = r.Approx_lane.witness;
    lane_tests = r.Approx_lane.tests;
    lane_rounds = r.Approx_lane.rounds;
    lane_converged = r.Approx_lane.converged;
  }

let () =
  Registry.register_lane
    {
      Registry.lane_name = "approx";
      lane_mean = lane_run Solver.Cycle_mean;
      lane_ratio = lane_run Solver.Cycle_ratio;
    }

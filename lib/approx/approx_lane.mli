(** Certified ε-approximate binary search on one strongly connected
    component.

    Lawler's scaffolding with exact tests: candidates λ are drawn from
    a dyadic grid ({!Dyadic}), each tested by re-costing the arcs as
    the integers [q·w(a) − p·den(a)] and asking for a negative cycle —
    first with the truncated value iteration ({!Value_iter}), then,
    if that is inconclusive, with the exact FIFO engine
    ({!Bellman_ford.run_arr}).  Because every test is exact integer
    arithmetic, both certificate sides are sound:

    - [lo] is a grid value proven to have no cycle below it, so
      [lo <= λ*] exactly;
    - [hi] is the exact {!Ratio} of the best witness cycle found (the
      "improved Lawler" step: the witness's own value, not the tested
      λ, becomes the new upper bound), so [λ* <= hi] exactly.

    Each test shrinks the interval by at least a 3/8 factor, so the
    search reaches the width target in logarithmically many tests.
    The grid denominator is clamped so that every scaled cost and
    every ≤ n-arc walk sum stays far inside native-int range; if the
    clamp makes the requested width unreachable the search stops at
    grid resolution with [converged = false] — still a sound
    interval. *)

type t = {
  lo : Ratio.t;      (** certified lower bound: [lo <= λ*] *)
  hi : Ratio.t;      (** exact value of [witness]: [λ* <= hi] *)
  witness : int list;  (** cycle attaining [hi], arc ids in path order *)
  tests : int;       (** λ-tests performed *)
  rounds : int;      (** value-iteration rounds across all tests *)
  converged : bool;  (** [hi - lo <= width] was reached *)
}

val solve :
  ?stats:Stats.t -> ?budget:Budget.t -> ?pool:Executor.t ->
  den:(int -> int) -> bounds:int * int -> width:float -> max_rounds:int ->
  Digraph.t -> t
(** [solve ~den ~bounds ~width ~max_rounds g] on a strongly connected
    [g] with at least one arc.  [den a = 1] gives the cycle mean,
    [den a = transit a] the cost-to-time ratio.  [bounds = (blo, bhi)]
    are a-priori integer bounds on λ*, [width] the absolute target for
    [hi - lo], [max_rounds] the value-iteration truncation per test.
    A budget interruption returns the current (sound) interval with
    [converged = false] instead of raising.
    @raise Invalid_argument on arcless or acyclic input, or if [width]
    is not positive and finite. *)

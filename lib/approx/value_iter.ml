type verdict =
  | No_negative_cycle
  | Negative_cycle of int list
  | Inconclusive

let sp_run = Obs.intern "approx.vi"
let sp_rounds = Obs.intern "approx.vi_rounds"

(* One Jacobi round over the node range [vlo, vhi): for every node the
   next value is the min of its current value and the best relaxation
   over its in-arcs, scanned in CSR order (ties keep the first arc, so
   the round is deterministic).  Walks the raw reverse-CSR Bigarrays
   for the same reason the Bellman-Ford engine does: this is the inner
   loop, and all indices come from the graph's own CSR.  Returns the
   number of nodes improved in the range. *)
let relax_range ~in_start ~in_arcs ~arc_src ~costs ~cur ~nxt ~pred vlo vhi =
  let improved = ref 0 in
  for v = vlo to vhi - 1 do
    let best = ref (Array.unsafe_get cur v) in
    let besta = ref (-1) in
    let hi = Bigarray.Array1.unsafe_get in_start (v + 1) in
    for i = Bigarray.Array1.unsafe_get in_start v to hi - 1 do
      let a = Bigarray.Array1.unsafe_get in_arcs i in
      let u = Bigarray.Array1.unsafe_get arc_src a in
      let cand = Array.unsafe_get cur u + Array.unsafe_get costs a in
      if cand < !best then begin
        best := cand;
        besta := a
      end
    done;
    Array.unsafe_set nxt v !best;
    if !besta >= 0 then begin
      Array.unsafe_set pred v !besta;
      incr improved
    end
  done;
  !improved

let run ?stats ?budget ?pool ~max_rounds ~costs g =
  let n = Digraph.n g in
  let m = Digraph.m g in
  if Array.length costs <> m then
    invalid_arg "Value_iter.run: costs length <> arc count";
  if m = 0 then (No_negative_cycle, 0)
  else begin
    let cmax = Array.fold_left (fun acc c -> max acc (abs c)) 1 costs in
    if cmax > max_int / (n + 1) then (Inconclusive, 0)
    else begin
      let tr = !Obs.enabled_flag in
      if tr then Trace.begin_span sp_run;
      let in_start, in_arcs = Digraph.Unsafe.in_csr g in
      let arc_src = Digraph.Unsafe.srcs g in
      let cur = ref (Array.make n 0) in
      let nxt = ref (Array.make n 0) in
      let pred = Array.make n (-1) in
      (* node-range chunks balanced by in-arc mass; 1 chunk = serial *)
      let nchunks =
        match pool with
        | None -> 1
        | Some p -> Executor.chunks_for p ~work:m ~grain:(Executor.chunk_arcs ())
      in
      let bounds = Array.make (nchunks + 1) n in
      bounds.(0) <- 0;
      let v = ref 0 in
      for k = 1 to nchunks - 1 do
        let target = k * m / nchunks in
        while !v < n && Bigarray.Array1.get in_start !v < target do
          incr v
        done;
        bounds.(k) <- !v
      done;
      let round () =
        let cur = !cur and nxt = !nxt in
        match pool with
        | Some p when nchunks > 1 ->
          Array.init nchunks (fun k ->
              Executor.async p (fun () ->
                  relax_range ~in_start ~in_arcs ~arc_src ~costs ~cur ~nxt
                    ~pred bounds.(k) bounds.(k + 1)))
          |> Array.fold_left (fun acc fut -> acc + Executor.await p fut) 0
        | _ -> relax_range ~in_start ~in_arcs ~arc_src ~costs ~cur ~nxt ~pred 0 n
      in
      let verdict = ref None in
      let rounds = ref 0 in
      while !verdict = None && !rounds < max_rounds do
        (match budget with Some b -> Budget.tick b | None -> ());
        incr rounds;
        let improved = round () in
        (match stats with
        | Some s ->
          s.Stats.arcs_visited <- s.Stats.arcs_visited + m;
          s.Stats.relaxations <- s.Stats.relaxations + improved
        | None -> ());
        let t = !cur in
        cur := !nxt;
        nxt := t;
        if improved = 0 then verdict := Some No_negative_cycle
        else
          (* any pred-graph cycle is a negative cycle; and while the
             pred graph stays acyclic every value is bounded below by
             -(n-1)·cmax, so a diverging run cannot escape this scan *)
          match Bellman_ford.cycle_in_pred_graph g pred with
          | Some cycle -> verdict := Some (Negative_cycle cycle)
          | None -> ()
      done;
      if tr then begin
        Trace.counter_int sp_rounds !rounds;
        Trace.end_span sp_run
      end;
      (Option.value !verdict ~default:Inconclusive, !rounds)
    end
  end

(** Dyadic rationals: the λ grid of the certified binary search.

    The approx lane bisects over candidate values λ and tests each one
    with exact integer arithmetic (arcs re-costed as
    [q·w(a) − p·den(a)] for λ = p/q).  Picking the candidates from a
    fixed grid of denominator [q = 2^k] keeps every such product small
    and predictable — the grid resolution, not the interval endpoints,
    bounds the magnitude of the scaled costs — which is what makes the
    certificate exact without big-integer arithmetic. *)

val max_denom : int
(** Upper clamp on grid denominators ([2^50]). *)

val denom_for : float -> int
(** [denom_for max_err] is the smallest power of two [q] with
    [1/q <= max_err], clamped to {!max_denom}.
    @raise Invalid_argument unless [max_err] is positive and finite. *)

val floor_pow2 : int -> int
(** Largest power of two [<= x].
    @raise Invalid_argument if [x < 1]. *)

val quantize : denom:int -> float -> Ratio.t
(** Nearest rational with denominator [denom] (round to nearest, so
    the result is within [1/(2·denom)] of the input).  The returned
    ratio is normalized; its denominator divides [denom].
    @raise Invalid_argument if [denom <= 0] or the scaled value does
    not fit a native int. *)

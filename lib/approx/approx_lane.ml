type t = {
  lo : Ratio.t;
  hi : Ratio.t;
  witness : int list;
  tests : int;
  rounds : int;
  converged : bool;
}

let sp_lane = Obs.intern "approx.lane"
let sp_tests = Obs.intern "approx.tests"

let solve ?stats ?budget ?pool ~den ~bounds ~width ~max_rounds g =
  if Digraph.m g = 0 then invalid_arg "Approx_lane.solve: graph has no arcs";
  if not (Float.is_finite width) || width <= 0.0 then
    invalid_arg "Approx_lane.solve: width must be positive and finite";
  let tr = !Obs.enabled_flag in
  if tr then Trace.begin_span sp_lane;
  let n = Digraph.n g in
  let m = Digraph.m g in
  let witness =
    ref
      (match Critical.cycle_in g (fun _ -> true) with
      | Some c -> c
      | None -> invalid_arg "Approx_lane.solve: graph is acyclic")
  in
  let hi = ref (Critical.ratio_of_cycle g ~den !witness) in
  let blo, bhi = bounds in
  let lo = ref (Ratio.of_int blo) in
  (* Grid denominator: fine enough to quarter the width target, coarse
     enough that |q·w - p·den| stays ≤ q·(wmax + bmag·dmax) per arc and
     every ≤ n-arc walk sum stays within max_int/8 — the overflow
     headroom contract the whole exact layer relies on. *)
  let wmax =
    max 1 (max (abs (Digraph.min_weight g)) (abs (Digraph.max_weight g)))
  in
  let dmax = Digraph.fold_arcs g (fun acc a -> max acc (den a)) 1 in
  let bmag = max (abs blo) (abs bhi) + 1 in
  let q_safe = max 1 (max_int / 8 / (n + 1) / (wmax + (bmag * dmax))) in
  let q_target = Dyadic.denom_for (width /. 4.0) in
  let q = if q_target <= q_safe then q_target else Dyadic.floor_pow2 q_safe in
  let tests = ref 0 in
  let rounds = ref 0 in
  let costs = Array.make m 0 in
  let interval_width () = Ratio.to_float !hi -. Ratio.to_float !lo in
  (try
     let running = ref true in
     while !running && interval_width () > width do
       (match budget with Some b -> Budget.tick b | None -> ());
       let mid =
         Dyadic.quantize ~denom:q
           (0.5 *. (Ratio.to_float !lo +. Ratio.to_float !hi))
       in
       if not (Ratio.lt !lo mid && Ratio.lt mid !hi) then
         (* no grid point strictly inside: the interval is already at
            this grid's resolution — as tight as exact arithmetic
            allows here *)
         running := false
       else begin
         incr tests;
         (match stats with
         | Some s ->
           s.Stats.iterations <- s.Stats.iterations + 1;
           s.Stats.oracle_calls <- s.Stats.oracle_calls + 1
         | None -> ());
         for a = 0 to m - 1 do
           costs.(a) <- Critical.scaled_cost g ~den mid a
         done;
         let lower_witness c =
           (* improved-Lawler step: the witness's exact ratio (< mid by
              the sign of the test) becomes the new upper bound *)
           let rc = Critical.ratio_of_cycle g ~den c in
           if Ratio.lt rc !hi then begin
             hi := rc;
             witness := c
           end
         in
         let verdict, r =
           Value_iter.run ?stats ?budget ?pool ~max_rounds ~costs g
         in
         rounds := !rounds + r;
         match verdict with
         | Value_iter.No_negative_cycle -> lo := mid
         | Value_iter.Negative_cycle c -> lower_witness c
         | Value_iter.Inconclusive -> (
           (* truncation hit: settle this test with the exact engine *)
           match Bellman_ford.run_arr ~costs g with
           | Bellman_ford.Feasible _ -> lo := mid
           | Bellman_ford.Negative_cycle c -> lower_witness c)
       end
     done
   with Budget.Exceeded _ -> ());
  if tr then begin
    Trace.counter_int sp_tests !tests;
    Trace.end_span sp_lane
  end;
  {
    lo = !lo;
    hi = !hi;
    witness = !witness;
    tests = !tests;
    rounds = !rounds;
    converged = interval_width () <= width;
  }

let max_denom = 1 lsl 50

let denom_for max_err =
  if not (Float.is_finite max_err) || max_err <= 0.0 then
    invalid_arg "Dyadic.denom_for: max_err must be positive and finite";
  let q = ref 1 in
  while 1.0 /. float_of_int !q > max_err && !q < max_denom do
    q := !q * 2
  done;
  !q

let floor_pow2 x =
  if x < 1 then invalid_arg "Dyadic.floor_pow2: need a positive int";
  let p = ref 1 in
  while !p <= x / 2 do
    p := !p * 2
  done;
  !p

let quantize ~denom x =
  if denom <= 0 then invalid_arg "Dyadic.quantize: denom must be positive";
  let scaled = Float.round (x *. float_of_int denom) in
  if not (Float.is_finite scaled) || Float.abs scaled >= 0x1p62 then
    invalid_arg "Dyadic.quantize: value out of native-int range";
  Ratio.make (int_of_float scaled) denom

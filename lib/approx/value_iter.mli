(** Truncated synchronous value iteration: the approx lane's fast
    negative-cycle test.

    In the style of Altschuler–Parrilo's near-linear min-mean-cycle
    approximation, the test runs Jacobi-style Bellman rounds from the
    all-zeros vector: after round [r], [x(v)] is the minimum cost of a
    walk of at most [r] arcs ending at [v].  Two certificates can end
    the run early:

    - a round with {e no update} means the vector is a fixpoint, i.e.
      feasible potentials — no negative cycle exists;
    - a cycle of the {e predecessor graph} (the arc last used to
      improve each node) is always a negative cycle, by the classic
      Cherkassky–Goldberg invariant of label-correcting methods — the
      same argument that bounds any pred-acyclic vector below by
      [-(n-1)·max|cost|], so divergence is always caught.

    If neither certificate appears within [max_rounds] rounds the test
    is {!Inconclusive} and the caller settles it with the exact FIFO
    engine ({!Bellman_ford.run_arr}).  On low-diameter graphs the
    fixpoint arrives in ~diameter rounds, which is where the lane wins.

    Rounds are data-parallel over the in-CSR ({!Digraph.Unsafe.in_csr}):
    each chunk owns a node range, reads the frozen previous vector and
    writes disjoint entries of the next one, so the result is
    bit-identical for every chunk count. *)

type verdict =
  | No_negative_cycle  (** fixpoint reached: feasible potentials exist *)
  | Negative_cycle of int list
      (** arc ids of a negative-cost cycle, in path order *)
  | Inconclusive  (** round budget exhausted without a certificate *)

val run :
  ?stats:Stats.t -> ?budget:Budget.t -> ?pool:Executor.t ->
  max_rounds:int -> costs:int array -> Digraph.t -> verdict * int
(** [run ~max_rounds ~costs g] returns the verdict and the number of
    rounds actually performed.  [budget] ticks once per round on the
    coordinating domain.  [stats] counts arcs scanned and node
    improvements (deterministic across chunk counts).  Callers must
    keep [(n-1) · max|costs|] within native-int range (the lane's grid
    clamp guarantees it); otherwise the test returns [Inconclusive]
    immediately rather than risk overflow.
    @raise Invalid_argument if [costs] does not have one entry per arc.
    @raise Budget.Exceeded mid-run when the budget runs out. *)

type t = {
  graph : Digraph.t;
  orig_arc : int array;
  orig_node : int array;
}

let transit_expand g =
  let n = Digraph.n g in
  Digraph.iter_arcs g (fun a ->
      if Digraph.transit g a = 0 then
        invalid_arg "Expand.transit_expand: zero transit time");
  let extra = Digraph.fold_arcs g (fun s a -> s + Digraph.transit g a - 1) 0 in
  let b = Digraph.create_builder (n + extra) in
  let orig_arc = Vec.create () in
  let next_fresh = ref n in
  Digraph.iter_arcs g (fun a ->
      let u = Digraph.src g a and v = Digraph.dst g a in
      let t = Digraph.transit g a and w = Digraph.weight g a in
      (* chain u -> x1 -> ... -> x_{t-1} -> v; weight rides the first arc *)
      let cur = ref u in
      for step = 1 to t do
        let target =
          if step = t then v
          else begin
            let x = !next_fresh in
            incr next_fresh;
            x
          end
        in
        let weight = if step = 1 then w else 0 in
        ignore (Digraph.add_arc b ~src:!cur ~dst:target ~weight ~transit:1 ());
        Vec.push orig_arc (if step = 1 then a else -1);
        cur := target
      done);
  let orig_node = Array.init (n + extra) (fun v -> if v < n then v else -1) in
  { graph = Digraph.build b; orig_arc = Vec.to_array orig_arc; orig_node }

let restrict_cycle t cycle =
  List.filter_map
    (fun a ->
      let o = t.orig_arc.(a) in
      if o >= 0 then Some o else None)
    cycle

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length v = v.len
let is_empty v = v.len = 0

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let check v i name =
  if i < 0 || i >= v.len then invalid_arg ("Vec." ^ name ^ ": index out of range")

let get v i =
  check v i "get";
  v.data.(i)

let set v i x =
  check v i "set";
  v.data.(i) <- x

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) v;
  !acc

let to_array v = Array.sub v.data 0 v.len

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let to_string g =
  let buf = Buffer.create (32 * (Digraph.m g + 1)) in
  Buffer.add_string buf
    (Printf.sprintf "p ocr %d %d\n" (Digraph.n g) (Digraph.m g));
  Digraph.iter_arcs g (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "a %d %d %d %d\n"
           (Digraph.src g a + 1) (Digraph.dst g a + 1)
           (Digraph.weight g a) (Digraph.transit g a)));
  Buffer.contents buf

let fail lineno msg = failwith (Printf.sprintf "Graph_io: line %d: %s" lineno msg)

let of_string s =
  let builder = ref None in
  let lineno = ref 0 in
  let handle_line line =
    incr lineno;
    let line = String.trim line in
    if line <> "" && line.[0] <> '#' then
      match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
      | [ "p"; "ocr"; sn; sm ] -> (
        if !builder <> None then fail !lineno "duplicate problem line";
        match (int_of_string_opt sn, int_of_string_opt sm) with
        | Some n, Some _ when n >= 0 -> builder := Some (Digraph.create_builder n)
        | _ -> fail !lineno "malformed problem line")
      | "a" :: rest -> (
        let b =
          match !builder with
          | Some b -> b
          | None -> fail !lineno "arc before problem line"
        in
        let ints = List.map int_of_string_opt rest in
        (* endpoint/transit violations surface from Digraph as
           Invalid_argument; rewrap them as parse failures so callers
           only ever see Failure for corrupt input *)
        match ints with
        | [ Some u; Some v; Some w ] -> (
          try ignore (Digraph.add_arc b ~src:(u - 1) ~dst:(v - 1) ~weight:w ())
          with Invalid_argument m -> fail !lineno m)
        | [ Some u; Some v; Some w; Some t ] -> (
          try
            ignore
              (Digraph.add_arc b ~src:(u - 1) ~dst:(v - 1) ~weight:w ~transit:t ())
          with Invalid_argument m -> fail !lineno m)
        | _ -> fail !lineno "malformed arc line")
      | tok :: _ -> fail !lineno (Printf.sprintf "unknown record %S" tok)
      | [] -> ()
  in
  String.split_on_char '\n' s |> List.iter handle_line;
  match !builder with
  | Some b -> Digraph.build b
  | None -> failwith "Graph_io: missing problem line"

let write_file path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string g))

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len)
  |> of_string


let of_dimacs s =
  let builder = ref None in
  let lineno = ref 0 in
  let handle_line line =
    incr lineno;
    let line = String.trim line in
    if line <> "" && line.[0] <> 'c' then
      match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
      | [ "p"; "sp"; sn; sm ] -> (
        if !builder <> None then fail !lineno "duplicate problem line";
        match (int_of_string_opt sn, int_of_string_opt sm) with
        | Some n, Some _ when n >= 0 -> builder := Some (Digraph.create_builder n)
        | _ -> fail !lineno "malformed problem line")
      | [ "a"; su; sv; sw ] -> (
        let b =
          match !builder with
          | Some b -> b
          | None -> fail !lineno "arc before problem line"
        in
        match (int_of_string_opt su, int_of_string_opt sv, int_of_string_opt sw) with
        | Some u, Some v, Some w -> (
          try ignore (Digraph.add_arc b ~src:(u - 1) ~dst:(v - 1) ~weight:w ())
          with Invalid_argument m -> fail !lineno m)
        | _ -> fail !lineno "malformed arc line")
      | tok :: _ -> fail !lineno (Printf.sprintf "unknown record %S" tok)
      | [] -> ()
  in
  String.split_on_char '\n' s |> List.iter handle_line;
  match !builder with
  | Some b -> Digraph.build b
  | None -> failwith "Graph_io: missing problem line"

let to_dimacs g =
  let buf = Buffer.create (32 * (Digraph.m g + 1)) in
  Buffer.add_string buf
    (Printf.sprintf "p sp %d %d\n" (Digraph.n g) (Digraph.m g));
  Digraph.iter_arcs g (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "a %d %d %d\n"
           (Digraph.src g a + 1) (Digraph.dst g a + 1) (Digraph.weight g a)));
  Buffer.contents buf

let to_dot ?(name = "g") ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  let hot = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace hot a ()) highlight;
  Digraph.iter_arcs g (fun a ->
      let attrs =
        if Hashtbl.mem hot a then
          Printf.sprintf "label=\"%d/%d\", color=red, penwidth=2.0"
            (Digraph.weight g a) (Digraph.transit g a)
        else
          Printf.sprintf "label=\"%d/%d\"" (Digraph.weight g a)
            (Digraph.transit g a)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [%s];\n" (Digraph.src g a)
           (Digraph.dst g a) attrs));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let load path =
  if Filename.check_suffix path ".gr" then
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        really_input_string ic len)
    |> of_dimacs
  else read_file path

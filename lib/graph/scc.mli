(** Strongly connected components (iterative Tarjan). *)

type t = {
  count : int;             (** number of components *)
  component : int array;   (** node -> component id *)
  members : int list array; (** component id -> member nodes *)
}

val compute : Digraph.t -> t
(** Component ids are numbered in {e reverse topological} order of the
    condensation: every arc between distinct components goes from a
    higher id to a lower id. *)

val is_trivial : Digraph.t -> t -> int -> bool
(** A component is trivial if it is a single node without a self-loop;
    trivial components contain no cycle. *)

val nontrivial_components : Digraph.t -> t -> int list list
(** Member lists of all components that contain at least one cycle. *)

val condensation : Digraph.t -> t -> Digraph.t
(** The component DAG: one node per component (same ids as
    [component]), one arc per original arc joining distinct components
    (weights and transit times preserved; parallel arcs kept).  The
    result is acyclic, with arcs flowing from higher component ids to
    lower ones. *)

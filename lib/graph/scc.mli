(** Strongly connected components (iterative Tarjan). *)

type t = {
  count : int;             (** number of components *)
  component : int array;   (** node -> component id *)
  members : int list array; (** component id -> member nodes *)
}

val compute : Digraph.t -> t
(** Component ids are numbered in {e reverse topological} order of the
    condensation: every arc between distinct components goes from a
    higher id to a lower id. *)

val is_trivial : Digraph.t -> t -> int -> bool
(** A component is trivial if it is a single node without a self-loop;
    trivial components contain no cycle. *)

val nontrivial_components : Digraph.t -> t -> int list list
(** Member lists of all components that contain at least one cycle. *)

type subproblem = {
  comp : int;              (** component id in the decomposition *)
  sub : Digraph.t;         (** induced subgraph, nodes renumbered *)
  node_of_sub : int array; (** sub node -> original node *)
  arc_of_sub : int array;  (** sub arc -> original arc *)
}

val partition : ?nontrivial_only:bool -> Digraph.t -> t -> subproblem array
(** All component subgraphs in one O(n + m) sweep, in increasing
    component id (= reverse topological) order.  Each entry is
    structurally identical to
    [Digraph.induced g (List.sort compare members)] for that component
    — the same renumbering and arc order the per-component solvers have
    always seen — without the O(m · count) repeated arc scans.  With
    [nontrivial_only] (the default) components without a cycle are
    skipped, mirroring {!nontrivial_components}. *)

val condensation : Digraph.t -> t -> Digraph.t
(** The component DAG: one node per component (same ids as
    [component]), one arc per original arc joining distinct components
    (weights and transit times preserved; parallel arcs kept).  The
    result is acyclic, with arcs flowing from higher component ids to
    lower ones. *)

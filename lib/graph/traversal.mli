(** Elementary graph traversals over {!Digraph}. *)

val bfs_levels : Digraph.t -> int -> int array
(** [bfs_levels g s] returns the arc-count distance from [s] to every
    node ([-1] for unreachable nodes). *)

val reachable : Digraph.t -> int -> bool array
(** Nodes reachable from the given source (the source included). *)

val co_reachable : Digraph.t -> int -> bool array
(** Nodes from which the given node can be reached (the node included). *)

val is_strongly_connected : Digraph.t -> bool
(** Whether every node reaches every other node.  The empty graph and
    the one-node graph are strongly connected. *)

val topological_order : Digraph.t -> int array option
(** Kahn's algorithm: [Some order] (a permutation of the nodes such that
    every arc goes forward) if the graph is acyclic, [None] otherwise. *)

val is_acyclic : Digraph.t -> bool

val has_cycle_through : Digraph.t -> int -> bool
(** Whether some (non-empty) cycle passes through the node; a self-loop
    counts. *)

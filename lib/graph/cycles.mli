(** Enumeration of elementary (simple) cycles — Johnson's algorithm.

    Intended as a {e test oracle} and for small critical subgraphs; the
    number of elementary cycles can be exponential, so every entry point
    takes a hard cap. *)

exception Limit_reached
(** Raised internally when the cap is hit; callers of [iter_cycles] see
    a normal return with [`Truncated]. *)

val iter_cycles :
  ?max_cycles:int -> Digraph.t -> (int list -> unit) -> [ `Complete | `Truncated ]
(** [iter_cycles g f] calls [f] with the arc ids of every elementary
    cycle of [g], each in path order.  Parallel arcs yield distinct
    cycles; self-loops are cycles of length 1.  Stops after
    [max_cycles] (default [1_000_000]) and reports [`Truncated]. *)

val count : ?max_cycles:int -> Digraph.t -> int
(** Number of elementary cycles (capped). *)

val list : ?max_cycles:int -> Digraph.t -> int list list
(** All elementary cycles (capped), as arc-id lists. *)

(** Growable arrays (the stdlib gained [Dynarray] only in OCaml 5.2;
    this is the small subset the library needs, for OCaml 5.1). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Appends an element (amortized O(1)). *)

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-range index. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-range index. *)

val pop : 'a t -> 'a
(** Removes and returns the last element.
    @raise Invalid_argument if empty. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t

(** Immutable directed multigraphs in compressed sparse row form.

    Nodes are integers [0 .. n-1].  Arcs are integers [0 .. m-1] and carry
    an integer weight (cost) and a non-negative integer transit time, as in
    the minimum cycle mean / cost-to-time ratio setting of Dasdan, Irani &
    Gupta (DAC 1999).  Parallel arcs and self-loops are allowed.

    The CSR arrays are stored in unboxed {!Bigarray.Array1} buffers:
    the graph's bulk data lives outside the OCaml heap (GC-invisible),
    can be read concurrently from every domain without copying, and
    the integer labels are mirrored as float64 so numeric kernels read
    fully unboxed floats (see docs/PERF.md). *)

type t

type int_array1 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Unboxed native-int vector; the storage type of every CSR index
    and label array. *)

type float_array1 =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Unboxed float64 vector; the storage type of the label mirrors. *)

(** {1 Construction} *)

type builder

val create_builder : ?expected_arcs:int -> int -> builder
(** [create_builder n] starts a graph on nodes [0 .. n-1].
    @raise Invalid_argument if [n < 0]. *)

val add_arc : builder -> src:int -> dst:int -> weight:int -> ?transit:int -> unit -> int
(** Adds an arc and returns its id (ids are dense, in insertion order).
    [transit] defaults to [1].
    @raise Invalid_argument on out-of-range endpoints or negative transit. *)

val build : builder -> t
(** Freezes the builder.  The builder must not be reused afterwards. *)

val of_arcs : int -> (int * int * int * int) list -> t
(** [of_arcs n arcs] builds a graph from [(src, dst, weight, transit)]
    tuples; arc ids follow list order. *)

val of_weighted_arcs : int -> (int * int * int) list -> t
(** Like {!of_arcs} with every transit time equal to [1]. *)

(** {1 Accessors} *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of arcs. *)

val src : t -> int -> int
val dst : t -> int -> int
val weight : t -> int -> int
val transit : t -> int -> int

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val min_weight : t -> int
(** Minimum arc weight.  @raise Invalid_argument on arcless graphs. *)

val max_weight : t -> int
(** Maximum arc weight.  @raise Invalid_argument on arcless graphs. *)

val total_transit : t -> int
(** Sum of all transit times (the quantity [T] of the paper). *)

(** {1 Iteration}

    All iterators pass {e arc ids}; use {!src}/{!dst}/{!weight} to
    inspect them. *)

val iter_out : t -> int -> (int -> unit) -> unit
(** [iter_out g u f] applies [f] to every arc leaving [u]. *)

val iter_in : t -> int -> (int -> unit) -> unit
(** [iter_in g v f] applies [f] to every arc entering [v]. *)

val fold_out : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val fold_in : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val iter_arcs : t -> (int -> unit) -> unit
val fold_arcs : t -> ('a -> int -> 'a) -> 'a -> 'a

(** {1 Transformations} *)

val reverse : t -> t
(** Graph with every arc flipped; arc ids are preserved. *)

val map_weights : t -> (int -> int) -> t
(** [map_weights g f] replaces the weight of arc [a] by [f a]; structure
    and transit times are shared. *)

val negate_weights : t -> t
(** Negates every weight (used to turn maximization into minimization). *)

val map_transits : t -> (int -> int) -> t
(** [map_transits g f] replaces the transit time of arc [a] by [f a];
    structure and weights are shared.
    @raise Invalid_argument if [f] returns a negative transit time. *)

(** In-place mutation of arc labels, for owners of private graphs.

    CSR structure (endpoints, adjacency) is immutable; only the weight
    and transit labels can be rewritten.  Because {!map_weights} and
    {!reverse} {e share} label arrays with the original graph, mutating
    a graph also mutates every graph derived from it by those
    functions.  Use only on graphs with a single owner — the dynamic
    session subsystem ([Dyn]) is the intended client. *)
module Unsafe : sig
  val set_weight : t -> int -> int -> unit
  (** [set_weight g a w] rewrites the weight of arc [a].
      @raise Invalid_argument on out-of-range arc ids. *)

  val set_transit : t -> int -> int -> unit
  (** [set_transit g a tt] rewrites the transit time of arc [a].
      @raise Invalid_argument on out-of-range arc ids or negative
      transit times. *)

  val out_csr : t -> int_array1 * int_array1
  (** [(start, arcs)]: the internal CSR adjacency — the out-arcs of
      node [u] are [arcs.{start.{u}} .. arcs.{start.{u+1} - 1}].  The
      arrays are the graph's own storage: read-only, for kernel inner
      loops that cannot afford one closure per {!iter_out} call.
      Being Bigarrays, they may be read concurrently from any
      domain. *)

  val in_csr : t -> int_array1 * int_array1
  (** [(start, arcs)]: the internal reverse-CSR adjacency — the in-arcs
      of node [v] are [arcs.{start.{v}} .. arcs.{start.{v+1} - 1}].
      Same storage rules as {!out_csr}: read-only, safe to read from
      any domain.  The natural layout for gather-style kernels that
      compute each node's value from its predecessors (the approx
      lane's value-iteration sweep). *)

  val srcs : t -> int_array1
  (** The internal arc-tail array ([srcs.{a} = src g a]); read-only. *)

  val dsts : t -> int_array1
  (** The internal arc-head array ([dsts.{a} = dst g a]); read-only. *)

  val weights_float : t -> float_array1
  (** The float64 mirror of the weights ([weights_float g).{a} =
      float_of_int (weight g a)], exact for every admissible label).
      Read-only; kept in sync by {!set_weight} and the [map_*]
      builders. *)

  val transits_float : t -> float_array1
  (** The float64 mirror of the transit times; read-only. *)
end

val induced : t -> int list -> t * int array * int array
(** [induced g nodes] is the subgraph induced by [nodes] with nodes
    renumbered [0 .. k-1] (in the order given).  Returns
    [(sub, node_of_sub, arc_of_sub)] mapping new ids back to originals.
    @raise Invalid_argument if [nodes] contains duplicates or
    out-of-range ids. *)

val partition :
  t -> count:int -> component:int array -> keep:(int -> bool) ->
  (t * int array * int array) array
(** [partition g ~count ~component ~keep] splits [g] along the node
    partition [component] (node → class id in [0 .. count-1]) into one
    induced subgraph per class [c] with [keep c], in increasing class
    order.  Each entry is exactly what {!induced} would return for that
    class's members listed in increasing node order (same renumbering,
    same arc order), but the whole family is built in one
    O(n + m + count) sweep rather than one O(m) scan per class.  Arcs
    joining distinct classes are dropped.
    @raise Invalid_argument if [component] has the wrong length or
    contains an out-of-range class id. *)

(** {1 Predicates and checks} *)

val arc_between : t -> int -> int -> int option
(** Some arc id from [u] to [v] if one exists (any of the parallels). *)

val is_cycle : t -> int list -> bool
(** [is_cycle g arcs] checks that the arc-id list forms a closed walk:
    consecutive arcs are head-to-tail and the last feeds the first.
    The empty list is not a cycle. *)

val cycle_weight : t -> int list -> int
(** Sum of weights along an arc-id list. *)

val cycle_transit : t -> int list -> int
(** Sum of transit times along an arc-id list. *)

val equal_structure : t -> t -> bool
(** Same node count and identical (src, dst, weight, transit) per arc id. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: one line per arc. *)

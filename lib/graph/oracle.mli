(** Brute-force optimum cycle mean / ratio by elementary-cycle
    enumeration.  Exponential; use only on small graphs (tests) or on
    small critical subgraphs.  Means and ratios are exact rationals
    returned as an unnormalized [(numerator, denominator)] pair with a
    witness cycle. *)

type objective = Minimize | Maximize

type answer = {
  num : int;  (** cycle weight of the witness *)
  den : int;  (** cycle length (mean) or cycle transit (ratio) of the witness *)
  cycle : int list;  (** witness cycle, arc ids in path order *)
}

val cycle_mean : ?max_cycles:int -> objective -> Digraph.t -> answer option
(** Optimum of [w(C)/|C|] over all elementary cycles; [None] if the
    graph is acyclic. *)

val cycle_ratio : ?max_cycles:int -> objective -> Digraph.t -> answer option
(** Optimum of [w(C)/t(C)] over elementary cycles with [t(C) > 0].
    [None] if there is no such cycle.
    @raise Invalid_argument if some cycle has [t(C) = 0] (the ratio
    problem is ill-posed on such graphs). *)

val cycle_mean_matrix : objective -> Digraph.t -> (int * int) option
(** A second, structurally independent oracle: min-plus matrix powers.
    [A^k(u,v)] is the minimum weight of a walk of exactly [k] arcs, so
    the optimum cycle mean is [opt_{v,1<=k<=n} A^k(v,v)/k], returned as
    an unnormalized [(weight, length)] pair.  O(n⁴) time and O(n²)
    space — small graphs only; used to cross-validate the
    cycle-enumeration oracle in the tests. *)

let bfs_levels g s =
  let n = Digraph.n g in
  let level = Array.make n (-1) in
  let queue = Queue.create () in
  level.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    Digraph.iter_out g u (fun a ->
        let v = Digraph.dst g a in
        if level.(v) < 0 then begin
          level.(v) <- level.(u) + 1;
          Queue.add v queue
        end)
  done;
  level

let reach iter g s =
  let n = Digraph.n g in
  let seen = Array.make n false in
  let stack = Stack.create () in
  seen.(s) <- true;
  Stack.push s stack;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    iter g u (fun a ->
        let v = if iter == Digraph.iter_out then Digraph.dst g a else Digraph.src g a in
        if not seen.(v) then begin
          seen.(v) <- true;
          Stack.push v stack
        end)
  done;
  seen

let reachable g s = reach Digraph.iter_out g s
let co_reachable g s = reach Digraph.iter_in g s

let is_strongly_connected g =
  let n = Digraph.n g in
  if n <= 1 then true
  else
    Array.for_all Fun.id (reachable g 0)
    && Array.for_all Fun.id (co_reachable g 0)

let topological_order g =
  let n = Digraph.n g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    order.(!k) <- u;
    incr k;
    Digraph.iter_out g u (fun a ->
        let v = Digraph.dst g a in
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
  done;
  if !k = n then Some order else None

let is_acyclic g = topological_order g <> None

let has_cycle_through g v =
  Digraph.fold_out g v (fun acc a -> acc || Digraph.dst g a = v) false
  || Digraph.fold_out g v
       (fun acc a ->
         acc || (Digraph.dst g a <> v && (reachable g (Digraph.dst g a)).(v)))
       false

(** Plain-text graph exchange format (DIMACS-flavoured) and DOT export.

    Format, one record per line, [#]-comments allowed:
    {v
    p ocr <n> <m>
    a <src> <dst> <weight> [<transit>]
    v}
    Nodes are 1-indexed in files (DIMACS convention) and 0-indexed in
    the API.  A missing transit field means transit 1. *)

val to_string : Digraph.t -> string
val of_string : string -> Digraph.t
(** @raise Failure with a line-numbered message on malformed input. *)

val write_file : string -> Digraph.t -> unit
val read_file : string -> Digraph.t

val load : string -> Digraph.t
(** {!read_file}, except that a [.gr] suffix selects {!of_dimacs} —
    the one format-dispatch rule every front-end (solve, batch, serve,
    stream, cluster workers) shares. *)

val to_dot : ?name:string -> ?highlight:int list -> Digraph.t -> string
(** GraphViz export; [highlight] arcs are drawn bold red (used for
    critical cycles). *)

(** {1 DIMACS shortest-path format}

    The 9th DIMACS challenge [.gr] format that the original SPRAND
    emits: a [p sp <n> <m>] problem line and [a <src> <dst> <weight>]
    arc lines (1-indexed, no transit times — they default to 1 here).
    [c]-comment lines are skipped. *)

val of_dimacs : string -> Digraph.t
(** @raise Failure with a line-numbered message on malformed input. *)

val to_dimacs : Digraph.t -> string
(** Transit times are not representable in [.gr] and are dropped; use
    {!to_string} to keep them. *)

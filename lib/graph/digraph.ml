(* The CSR arrays live in unboxed Bigarrays rather than OCaml heap
   arrays.  Three properties motivate the layout (see docs/PERF.md):

   - GC invisibility: the data sits outside the OCaml heap, so a
     million-arc graph contributes a handful of custom blocks to a
     major collection instead of a dozen megaword arrays the marker
     must skip over.
   - Domain sharing: Bigarray storage is not moved by the GC and can
     be read concurrently from every domain without copies or
     read barriers — the parallel improvement sweep hands raw views
     of these arrays to executor workers.
   - Unboxed float labels: [arc_weight_f]/[arc_transit_f] mirror the
     integer labels as float64, so kernel inner loops read fully
     unboxed floats instead of converting (and possibly boxing) an
     int on every arc visit.  The mirrors are exact: every label this
     library accepts is far below 2^53 (see Solver.preflight).

   The integer arrays remain the source of truth; the float mirrors
   are maintained by every operation that rewrites labels. *)

type int_array1 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type float_array1 =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let ia len : int_array1 = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len
let fa len : float_array1 =
  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len

type t = {
  n : int;
  m : int;
  arc_src : int_array1;
  arc_dst : int_array1;
  arc_weight : int_array1;
  arc_transit : int_array1;
  arc_weight_f : float_array1;  (* float64 mirror of arc_weight *)
  arc_transit_f : float_array1; (* float64 mirror of arc_transit *)
  out_start : int_array1; (* length n+1 *)
  out_arcs : int_array1;  (* arc ids grouped by source *)
  in_start : int_array1;
  in_arcs : int_array1;
}

type builder = {
  bn : int;
  mutable closed : bool;
  srcs : int Vec.t;
  dsts : int Vec.t;
  weights : int Vec.t;
  transits : int Vec.t;
}

let create_builder ?(expected_arcs = 16) n =
  if n < 0 then invalid_arg "Digraph.create_builder: negative node count";
  ignore expected_arcs;
  {
    bn = n;
    closed = false;
    srcs = Vec.create ();
    dsts = Vec.create ();
    weights = Vec.create ();
    transits = Vec.create ();
  }

let add_arc b ~src ~dst ~weight ?(transit = 1) () =
  if b.closed then invalid_arg "Digraph.add_arc: builder already built";
  if src < 0 || src >= b.bn || dst < 0 || dst >= b.bn then
    invalid_arg "Digraph.add_arc: endpoint out of range";
  if transit < 0 then invalid_arg "Digraph.add_arc: negative transit time";
  let id = Vec.length b.srcs in
  Vec.push b.srcs src;
  Vec.push b.dsts dst;
  Vec.push b.weights weight;
  Vec.push b.transits transit;
  id

let ia_init len f =
  let a = ia len in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set a i (f i)
  done;
  a

(* the float64 mirror of an int label array *)
let mirror (labels : int_array1) : float_array1 =
  let len = Bigarray.Array1.dim labels in
  let a = fa len in
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set a i
      (float_of_int (Bigarray.Array1.unsafe_get labels i))
  done;
  a

(* Builds both CSR adjacency structures with counting sort. *)
let csr n m key =
  let start = ia (n + 1) in
  Bigarray.Array1.fill start 0;
  for a = 0 to m - 1 do
    let k = key a in
    start.{k + 1} <- start.{k + 1} + 1
  done;
  for v = 1 to n do
    start.{v} <- start.{v} + start.{v - 1}
  done;
  let cursor = ia (n + 1) in
  Bigarray.Array1.blit start cursor;
  let arcs = ia m in
  for a = 0 to m - 1 do
    let k = key a in
    arcs.{cursor.{k}} <- a;
    cursor.{k} <- cursor.{k} + 1
  done;
  (start, arcs)

let of_label_arrays ~n ~m ~arc_src ~arc_dst ~arc_weight ~arc_transit =
  let out_start, out_arcs = csr n m (fun a -> arc_src.{a}) in
  let in_start, in_arcs = csr n m (fun a -> arc_dst.{a}) in
  { n; m; arc_src; arc_dst; arc_weight; arc_transit;
    arc_weight_f = mirror arc_weight; arc_transit_f = mirror arc_transit;
    out_start; out_arcs; in_start; in_arcs }

let build b =
  if b.closed then invalid_arg "Digraph.build: builder already built";
  b.closed <- true;
  let m = Vec.length b.srcs in
  let arc_src = ia_init m (Vec.get b.srcs) in
  let arc_dst = ia_init m (Vec.get b.dsts) in
  let arc_weight = ia_init m (Vec.get b.weights) in
  let arc_transit = ia_init m (Vec.get b.transits) in
  of_label_arrays ~n:b.bn ~m ~arc_src ~arc_dst ~arc_weight ~arc_transit

let of_arcs n arcs =
  let b = create_builder ~expected_arcs:(List.length arcs) n in
  let add (src, dst, weight, transit) =
    ignore (add_arc b ~src ~dst ~weight ~transit ()) in
  List.iter add arcs;
  build b

let of_weighted_arcs n arcs =
  of_arcs n (List.map (fun (u, v, w) -> (u, v, w, 1)) arcs)

let n g = g.n
let m g = g.m
let src g a = g.arc_src.{a}
let dst g a = g.arc_dst.{a}
let weight g a = g.arc_weight.{a}
let transit g a = g.arc_transit.{a}

let out_degree g u = g.out_start.{u + 1} - g.out_start.{u}
let in_degree g v = g.in_start.{v + 1} - g.in_start.{v}

let extremum_weight name better g =
  if g.m = 0 then invalid_arg ("Digraph." ^ name ^ ": graph has no arcs");
  let best = ref g.arc_weight.{0} in
  for a = 1 to g.m - 1 do
    if better g.arc_weight.{a} !best then best := g.arc_weight.{a}
  done;
  !best

let min_weight g = extremum_weight "min_weight" ( < ) g
let max_weight g = extremum_weight "max_weight" ( > ) g

let total_transit g =
  let acc = ref 0 in
  for a = 0 to g.m - 1 do
    acc := !acc + g.arc_transit.{a}
  done;
  !acc

let iter_out g u f =
  for i = g.out_start.{u} to g.out_start.{u + 1} - 1 do
    f g.out_arcs.{i}
  done

let iter_in g v f =
  for i = g.in_start.{v} to g.in_start.{v + 1} - 1 do
    f g.in_arcs.{i}
  done

let fold_out g u f init =
  let acc = ref init in
  iter_out g u (fun a -> acc := f !acc a);
  !acc

let fold_in g v f init =
  let acc = ref init in
  iter_in g v (fun a -> acc := f !acc a);
  !acc

let iter_arcs g f =
  for a = 0 to g.m - 1 do
    f a
  done

let fold_arcs g f init =
  let acc = ref init in
  iter_arcs g (fun a -> acc := f !acc a);
  !acc

let reverse g =
  {
    g with
    arc_src = g.arc_dst;
    arc_dst = g.arc_src;
    out_start = g.in_start;
    out_arcs = g.in_arcs;
    in_start = g.out_start;
    in_arcs = g.out_arcs;
  }

let map_weights g f =
  let arc_weight = ia_init g.m f in
  { g with arc_weight; arc_weight_f = mirror arc_weight }

let negate_weights g = map_weights g (fun a -> -g.arc_weight.{a})

let map_transits g f =
  let arc_transit =
    ia_init g.m (fun a ->
        let tt = f a in
        if tt < 0 then invalid_arg "Digraph.map_transits: negative transit time";
        tt)
  in
  { g with arc_transit; arc_transit_f = mirror arc_transit }

module Unsafe = struct
  let set_weight g a w =
    if a < 0 || a >= g.m then
      invalid_arg "Digraph.Unsafe.set_weight: arc out of range";
    g.arc_weight.{a} <- w;
    g.arc_weight_f.{a} <- float_of_int w

  let set_transit g a tt =
    if a < 0 || a >= g.m then
      invalid_arg "Digraph.Unsafe.set_transit: arc out of range";
    if tt < 0 then invalid_arg "Digraph.Unsafe.set_transit: negative transit time";
    g.arc_transit.{a} <- tt;
    g.arc_transit_f.{a} <- float_of_int tt

  let out_csr g = (g.out_start, g.out_arcs)
  let in_csr g = (g.in_start, g.in_arcs)
  let srcs g = g.arc_src
  let dsts g = g.arc_dst
  let weights_float g = g.arc_weight_f
  let transits_float g = g.arc_transit_f
end

let induced g nodes =
  let new_id = Array.make g.n (-1) in
  let k = ref 0 in
  let assign u =
    if u < 0 || u >= g.n then invalid_arg "Digraph.induced: node out of range";
    if new_id.(u) >= 0 then invalid_arg "Digraph.induced: duplicate node";
    new_id.(u) <- !k;
    incr k
  in
  List.iter assign nodes;
  let node_of_sub = Array.of_list nodes in
  let b = create_builder !k in
  let arc_of_sub = Vec.create () in
  iter_arcs g (fun a ->
      let u = new_id.(g.arc_src.{a}) and v = new_id.(g.arc_dst.{a}) in
      if u >= 0 && v >= 0 then begin
        ignore
          (add_arc b ~src:u ~dst:v ~weight:g.arc_weight.{a}
             ~transit:g.arc_transit.{a} ());
        Vec.push arc_of_sub a
      end);
  (build b, node_of_sub, Vec.to_array arc_of_sub)

(* One-pass split along a node partition.  For every class [c] with
   [keep c], the result holds the same (sub, node_of_sub, arc_of_sub)
   triple [induced g (members c)] would produce — nodes renumbered in
   increasing original order, arcs in increasing original id order —
   but the whole family is built in a single O(n + m + count) sweep
   instead of one O(m) scan per class. *)
let partition g ~count ~component ~keep =
  if Array.length component <> g.n then
    invalid_arg "Digraph.partition: component array has wrong length";
  (* kept classes get dense slots, in increasing class order *)
  let slot = Array.make (max count 1) (-1) in
  let k = ref 0 in
  for c = 0 to count - 1 do
    if keep c then begin
      slot.(c) <- !k;
      incr k
    end
  done;
  let k = !k in
  (* node sweep: per-slot sizes and the new id of every kept node *)
  let sub_n = Array.make (max k 1) 0 in
  let new_id = Array.make g.n (-1) in
  for v = 0 to g.n - 1 do
    let c = component.(v) in
    if c < 0 || c >= count then
      invalid_arg "Digraph.partition: component id out of range";
    let s = slot.(c) in
    if s >= 0 then begin
      new_id.(v) <- sub_n.(s);
      sub_n.(s) <- sub_n.(s) + 1
    end
  done;
  let node_of_sub = Array.init k (fun s -> Array.make sub_n.(s) 0) in
  for v = 0 to g.n - 1 do
    if new_id.(v) >= 0 then node_of_sub.(slot.(component.(v))).(new_id.(v)) <- v
  done;
  (* arc sweep: count intra-class arcs, then fill in arc-id order *)
  let sub_m = Array.make (max k 1) 0 in
  for a = 0 to g.m - 1 do
    let c = component.(g.arc_src.{a}) in
    if c = component.(g.arc_dst.{a}) && slot.(c) >= 0 then
      sub_m.(slot.(c)) <- sub_m.(slot.(c)) + 1
  done;
  let mk () = Array.init k (fun s -> ia sub_m.(s)) in
  let srcs = mk () and dsts = mk () in
  let ws = mk () and ts = mk () in
  let arc_of_sub = Array.init k (fun s -> Array.make sub_m.(s) 0) in
  let cursor = Array.make (max k 1) 0 in
  for a = 0 to g.m - 1 do
    let u = g.arc_src.{a} and v = g.arc_dst.{a} in
    let c = component.(u) in
    if c = component.(v) && slot.(c) >= 0 then begin
      let s = slot.(c) in
      let i = cursor.(s) in
      cursor.(s) <- i + 1;
      srcs.(s).{i} <- new_id.(u);
      dsts.(s).{i} <- new_id.(v);
      ws.(s).{i} <- g.arc_weight.{a};
      ts.(s).{i} <- g.arc_transit.{a};
      arc_of_sub.(s).(i) <- a
    end
  done;
  Array.init k (fun s ->
      ( of_label_arrays ~n:sub_n.(s) ~m:sub_m.(s) ~arc_src:srcs.(s)
          ~arc_dst:dsts.(s) ~arc_weight:ws.(s) ~arc_transit:ts.(s),
        node_of_sub.(s),
        arc_of_sub.(s) ))

let arc_between g u v =
  let found = ref (-1) in
  iter_out g u (fun a -> if !found < 0 && g.arc_dst.{a} = v then found := a);
  if !found < 0 then None else Some !found

let is_cycle g arcs =
  match arcs with
  | [] -> false
  | first :: _ ->
    let ok = ref true in
    let last =
      List.fold_left
        (fun prev a ->
          (match prev with
          | Some p -> if g.arc_dst.{p} <> g.arc_src.{a} then ok := false
          | None -> ());
          Some a)
        None arcs
    in
    (match last with
    | Some l -> if g.arc_dst.{l} <> g.arc_src.{first} then ok := false
    | None -> ok := false);
    !ok

let cycle_weight g arcs = List.fold_left (fun s a -> s + g.arc_weight.{a}) 0 arcs
let cycle_transit g arcs =
  List.fold_left (fun s a -> s + g.arc_transit.{a}) 0 arcs

let equal_structure g h =
  (* Bigarray equality is element-wise (caml_ba_compare) *)
  g.n = h.n && g.m = h.m
  && g.arc_src = h.arc_src && g.arc_dst = h.arc_dst
  && g.arc_weight = h.arc_weight && g.arc_transit = h.arc_transit

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph: %d nodes, %d arcs" g.n g.m;
  iter_arcs g (fun a ->
      Format.fprintf ppf "@,  #%d: %d -> %d  w=%d t=%d" a g.arc_src.{a}
        g.arc_dst.{a} g.arc_weight.{a} g.arc_transit.{a});
  Format.fprintf ppf "@]"

type t = {
  count : int;
  component : int array;
  members : int list array;
}

(* Iterative Tarjan.  For each node we keep the classic index/lowlink
   pair; the explicit stack stores (node, next-out-arc-position) frames. *)
let compute g =
  let n = Digraph.n g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let tarjan_stack = Vec.create () in
  let next_index = ref 0 in
  let comp_count = ref 0 in
  (* Materialized successor arrays give O(1) cursor access per frame. *)
  let out_adj = Array.make n [||] in
  for u = 0 to n - 1 do
    let acc = Vec.create () in
    Digraph.iter_out g u (fun a -> Vec.push acc (Digraph.dst g a));
    out_adj.(u) <- Vec.to_array acc
  done;
  let frames = Vec.create () in
  let start root =
    Vec.push frames (root, ref 0);
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    Vec.push tarjan_stack root;
    on_stack.(root) <- true;
    while not (Vec.is_empty frames) do
      let u, cursor = Vec.get frames (Vec.length frames - 1) in
      let succs = out_adj.(u) in
      if !cursor < Array.length succs then begin
        let v = succs.(!cursor) in
        incr cursor;
        if index.(v) < 0 then begin
          index.(v) <- !next_index;
          lowlink.(v) <- !next_index;
          incr next_index;
          Vec.push tarjan_stack v;
          on_stack.(v) <- true;
          Vec.push frames (v, ref 0)
        end
        else if on_stack.(v) then
          lowlink.(u) <- min lowlink.(u) index.(v)
      end
      else begin
        ignore (Vec.pop frames);
        if lowlink.(u) = index.(u) then begin
          (* u is the root of a component: pop it off the Tarjan stack *)
          let continue = ref true in
          while !continue do
            let w = Vec.pop tarjan_stack in
            on_stack.(w) <- false;
            component.(w) <- !comp_count;
            if w = u then continue := false
          done;
          incr comp_count
        end;
        if not (Vec.is_empty frames) then begin
          let p, _ = Vec.get frames (Vec.length frames - 1) in
          lowlink.(p) <- min lowlink.(p) lowlink.(u)
        end
      end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then start v
  done;
  let members = Array.make !comp_count [] in
  for v = n - 1 downto 0 do
    members.(component.(v)) <- v :: members.(component.(v))
  done;
  { count = !comp_count; component; members }

let is_trivial g scc c =
  match scc.members.(c) with
  | [ v ] -> Digraph.arc_between g v v = None
  | _ -> false

let nontrivial_components g scc =
  let acc = ref [] in
  for c = scc.count - 1 downto 0 do
    if not (is_trivial g scc c) then acc := scc.members.(c) :: !acc
  done;
  !acc

type subproblem = {
  comp : int;
  sub : Digraph.t;
  node_of_sub : int array;
  arc_of_sub : int array;
}

let partition ?(nontrivial_only = true) g t =
  let keep, kept_ids =
    if not nontrivial_only then
      ((fun _ -> true), Array.init t.count Fun.id)
    else begin
      (* a component is cyclic iff it has >= 2 nodes (strong
         connectivity forces a cycle) or a self-loop; both facts fall
         out of one O(n + m) sweep, with no per-component arc scans *)
      let size = Array.make (max t.count 1) 0 in
      Array.iter (fun c -> size.(c) <- size.(c) + 1) t.component;
      let cyclic = Array.make (max t.count 1) false in
      Digraph.iter_arcs g (fun a ->
          let u = Digraph.src g a in
          if u = Digraph.dst g a then cyclic.(t.component.(u)) <- true);
      let keep c = size.(c) >= 2 || cyclic.(c) in
      let ids = ref [] in
      for c = t.count - 1 downto 0 do
        if keep c then ids := c :: !ids
      done;
      (keep, Array.of_list !ids)
    end
  in
  let triples =
    Digraph.partition g ~count:t.count ~component:t.component ~keep
  in
  Array.mapi
    (fun i (sub, node_of_sub, arc_of_sub) ->
      { comp = kept_ids.(i); sub; node_of_sub; arc_of_sub })
    triples

let condensation g t =
  let b = Digraph.create_builder t.count in
  Digraph.iter_arcs g (fun a ->
      let cu = t.component.(Digraph.src g a)
      and cv = t.component.(Digraph.dst g a) in
      if cu <> cv then
        ignore
          (Digraph.add_arc b ~src:cu ~dst:cv ~weight:(Digraph.weight g a)
             ~transit:(Digraph.transit g a) ()));
  Digraph.build b

type objective = Minimize | Maximize

type answer = { num : int; den : int; cycle : int list }

(* a/b < c/d with b, d > 0, exact in native ints. *)
let ratio_lt a b c d = a * d < c * b

let better objective a b c d =
  match objective with
  | Minimize -> ratio_lt a b c d
  | Maximize -> ratio_lt c d a b

let optimum ~denominator ~on_zero_den ?max_cycles objective g =
  let best = ref None in
  let consider cycle =
    let num = Digraph.cycle_weight g cycle in
    let den = denominator cycle in
    if den = 0 then on_zero_den ()
    else
      match !best with
      | None -> best := Some { num; den; cycle }
      | Some b ->
        if better objective num den b.num b.den then best := Some { num; den; cycle }
  in
  ignore (Cycles.iter_cycles ?max_cycles g consider);
  !best

let cycle_mean ?max_cycles objective g =
  optimum ?max_cycles objective g
    ~denominator:(fun c -> List.length c)
    ~on_zero_den:(fun () -> assert false)

let cycle_ratio ?max_cycles objective g =
  optimum ?max_cycles objective g
    ~denominator:(fun c -> Digraph.cycle_transit g c)
    ~on_zero_den:(fun () ->
      invalid_arg "Oracle.cycle_ratio: cycle with zero total transit time")

let cycle_mean_matrix objective g =
  let n = Digraph.n g in
  let inf = max_int / 4 in
  (* adjacency matrix in the (min,+) semiring; maximization negates *)
  let sign = match objective with Minimize -> 1 | Maximize -> -1 in
  let adj = Array.make_matrix n n inf in
  Digraph.iter_arcs g (fun a ->
      let u = Digraph.src g a and v = Digraph.dst g a in
      let w = sign * Digraph.weight g a in
      if w < adj.(u).(v) then adj.(u).(v) <- w);
  let best = ref None in
  let consider num den =
    match !best with
    | Some (bn, bd) when num * bd >= bn * den -> ()
    | _ -> best := Some (num, den)
  in
  (* power = adj^k, built by repeated (min,+) multiplication *)
  let power = Array.map Array.copy adj in
  let scratch = Array.make_matrix n n inf in
  for k = 1 to n do
    if k > 1 then begin
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          scratch.(i).(j) <- inf
        done
      done;
      for i = 0 to n - 1 do
        for l = 0 to n - 1 do
          if power.(i).(l) < inf then
            for j = 0 to n - 1 do
              if adj.(l).(j) < inf then begin
                let cand = power.(i).(l) + adj.(l).(j) in
                if cand < scratch.(i).(j) then scratch.(i).(j) <- cand
              end
            done
        done
      done;
      for i = 0 to n - 1 do
        Array.blit scratch.(i) 0 power.(i) 0 n
      done
    end;
    for v = 0 to n - 1 do
      if power.(v).(v) < inf then consider power.(v).(v) k
    done
  done;
  Option.map (fun (num, den) -> (sign * num, den)) !best

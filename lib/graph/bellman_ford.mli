(** Bellman–Ford shortest paths and negative-cycle detection.

    Costs are supplied by a callback [cost : arc id -> int], so callers
    can run the algorithm on reweighted graphs (e.g. [w(e)·q - p·t(e)]
    when testing a candidate ratio [p/q]) without materializing them.
    All arithmetic is on native ints; callers are responsible for
    keeping scaled costs within range. *)

type outcome =
  | Feasible of int array
      (** Feasible potentials [d]: [d.(dst) <= d.(src) + cost a] for
          every arc [a].  Computed from a virtual super-source, so all
          nodes participate even in disconnected graphs. *)
  | Negative_cycle of int list
      (** Arc ids of a simple cycle of negative total cost, in path
          order. *)

val run : ?on_relax:(unit -> unit) -> cost:(int -> int) -> Digraph.t -> outcome
(** Standard Bellman–Ford with a FIFO queue and early exit.
    [on_relax] is invoked on every successful arc relaxation (used for
    the paper's operation counts). *)

val run_arr :
  ?on_relax:(unit -> unit) -> costs:int array -> Digraph.t -> outcome
(** [run] with the arc costs already materialized ([costs.(a)] is the
    cost of arc [a]); identical result, skips the per-arc callback in
    the scan.  For callers on the exact-finisher hot path that hold
    their costs in an array anyway.
    @raise Invalid_argument if [costs] does not have one entry per arc. *)

val negative_cycle : cost:(int -> int) -> Digraph.t -> int list option
(** [Some cycle] iff the graph contains a negative-cost cycle. *)

val cycle_in_pred_graph : Digraph.t -> int array -> int list option
(** Searches a predecessor graph ([pred_arc.(v)] is the arc last used
    to improve [v], or [-1]) for a cycle and returns its arcs in path
    order.  For any label-correcting relaxation scheme — the FIFO
    engine here, or the approx lane's synchronous value-iteration
    rounds — a cycle of the predecessor graph is a negative cycle
    (Cherkassky & Goldberg), so a hit is a sound certificate.  O(n). *)

val potentials : cost:(int -> int) -> Digraph.t -> int array option
(** [Some d] iff there is no negative cycle. *)

val shortest_from :
  cost:(int -> int) -> Digraph.t -> int -> (int array * int array, int list) result
(** [shortest_from ~cost g s] returns [Ok (dist, pred_arc)] with
    [max_int] distances for unreachable nodes and [-1] predecessor arcs,
    or [Error cycle] if a negative cycle is reachable from [s]. *)

(** {1 Float-cost variants}

    Lawler's algorithm and the scaling algorithms bisect over real
    [λ] values and test [w(e) - λ·t(e)] costs directly in floating
    point (as the original study did); these entry points mirror the
    integer ones. *)

val run_float :
  ?on_relax:(unit -> unit) -> cost:(int -> float) -> Digraph.t ->
  (float array, int list) result
(** [Ok potentials] or [Error cycle]. *)

val negative_cycle_float : cost:(int -> float) -> Digraph.t -> int list option

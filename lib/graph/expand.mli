(** Hartmann–Orlin transit-time expansion (Networks 1993, row 13 of the
    paper's Table 1): turns a minimum cost-to-time {e ratio} instance
    with small integral transit times into a minimum cycle {e mean}
    instance, by replacing each arc of transit [t] with a chain of [t]
    unit-transit arcs.  Cycle ratios are preserved:
    [w(C)/t(C) = w(C')/|C'|] for the image cycle [C']. *)

type t = {
  graph : Digraph.t;  (** expanded graph, [T] extra nodes in total *)
  orig_arc : int array;
      (** expanded arc id -> original arc id ([-1] for chain padding) *)
  orig_node : int array;
      (** expanded node id -> original node id ([-1] for chain-interior
          nodes) *)
}

val transit_expand : Digraph.t -> t
(** @raise Invalid_argument if some arc has transit time [0]; the
    transform requires strictly positive integral transit times. *)

val restrict_cycle : t -> int list -> int list
(** Maps a cycle of the expanded graph (arc ids in path order) back to
    the original graph by dropping the padding arcs. *)

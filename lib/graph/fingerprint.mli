(** Canonical structural fingerprint of a graph.

    A 128-bit SplitMix64-based hash over the CSR arrays — node count,
    arc count, then every arc's (src, dst, weight, transit) in arc-id
    order — absorbed into two independently seeded 64-bit lanes.  Two
    graphs that are {!Digraph.equal_structure} always have equal
    fingerprints; distinct structures collide with probability ≈ 2⁻¹²⁸
    per pair, which the engine's result cache treats as negligible
    (and a verify-on-hit request re-certifies against the actual graph
    anyway, see {!Engine}). *)

type t

val of_graph : Digraph.t -> t
(** O(m); no allocation beyond the result. *)

val equal : t -> t -> bool
val hash : t -> int
val to_hex : t -> string
(** 32 lowercase hex digits. *)

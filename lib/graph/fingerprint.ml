type t = { lo : int64; hi : int64 }

let golden = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer (Steele, Lea & Flood) — same mixer as Rng. *)
let mix z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let absorb st x = mix (Int64.add (Int64.add st golden) (Int64.of_int x))

let of_graph g =
  let n = Digraph.n g and m = Digraph.m g in
  (* two independently seeded lanes absorbing the same structural
     stream give a 128-bit state *)
  let lo = ref (absorb (absorb 0L n) m) in
  let hi = ref (absorb (absorb 0x6A09E667F3BCC909L m) n) in
  for a = 0 to m - 1 do
    let s = Digraph.src g a and d = Digraph.dst g a in
    let w = Digraph.weight g a and t = Digraph.transit g a in
    lo := absorb (absorb (absorb (absorb !lo s) d) w) t;
    hi := absorb (absorb (absorb (absorb !hi t) w) d) s
  done;
  { lo = !lo; hi = !hi }

let equal a b = Int64.equal a.lo b.lo && Int64.equal a.hi b.hi

let hash t = Int64.to_int t.lo land max_int

let to_hex t = Printf.sprintf "%016Lx%016Lx" t.hi t.lo

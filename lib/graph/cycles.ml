exception Limit_reached

(* Johnson's elementary-circuit algorithm.  For each root s in
   increasing node order we enumerate the cycles whose smallest node is
   s, over the subgraph induced by nodes >= s.  Blocked sets give the
   usual output-sensitive behaviour; this module is an oracle for tests
   and small critical subgraphs, so the recursion is plain OCaml
   recursion (depth <= n). *)
let iter_cycles ?(max_cycles = 1_000_000) g f =
  let n = Digraph.n g in
  let blocked = Array.make n false in
  let block_list = Array.make n [] in
  let emitted = ref 0 in
  let emit cycle =
    if !emitted >= max_cycles then raise Limit_reached;
    incr emitted;
    f cycle
  in
  let rec unblock v =
    blocked.(v) <- false;
    let waiters = block_list.(v) in
    block_list.(v) <- [];
    List.iter (fun w -> if blocked.(w) then unblock w) waiters
  in
  let truncated = ref false in
  (try
     for s = 0 to n - 1 do
       (* reset state touched by the previous root *)
       for v = s to n - 1 do
         blocked.(v) <- false;
         block_list.(v) <- []
       done;
       let rec circuit v path =
         let found = ref false in
         blocked.(v) <- true;
         Digraph.iter_out g v (fun a ->
             let w = Digraph.dst g a in
             if w >= s then
               if w = s then begin
                 emit (List.rev (a :: path));
                 found := true
               end
               else if not blocked.(w) then
                 if circuit w (a :: path) then found := true);
         if !found then unblock v
         else
           Digraph.iter_out g v (fun a ->
               let w = Digraph.dst g a in
               if w >= s && not (List.mem v block_list.(w)) then
                 block_list.(w) <- v :: block_list.(w));
         !found
       in
       ignore (circuit s [])
     done
   with Limit_reached -> truncated := true);
  if !truncated then `Truncated else `Complete

let count ?max_cycles g =
  let k = ref 0 in
  ignore (iter_cycles ?max_cycles g (fun _ -> incr k));
  !k

let list ?max_cycles g =
  let acc = ref [] in
  ignore (iter_cycles ?max_cycles g (fun c -> acc := c :: !acc));
  List.rev !acc

type outcome =
  | Feasible of int array
  | Negative_cycle of int list

(* relax-pass spans: one span per engine run, with the node count as a
   counter sample, recorded only when tracing is on — the engine is
   the inner loop of the exact finisher and must stay allocation-free
   when observability is off *)
let sp_run = Obs.intern "bf.run"
let sp_run_float = Obs.intern "bf.run_float"
let sp_nodes = Obs.intern "bf.nodes"

(* Searches the predecessor graph (at most one pred arc per node) for a
   cycle and returns its arcs in path order.  A classic invariant of
   Bellman-Ford (Cherkassky & Goldberg, "Negative-cycle detection
   algorithms") is that any cycle of the predecessor graph is a
   negative cycle, so a hit here is a sound certificate.  O(n). *)
let cycle_in_pred_graph g pred_arc =
  let n = Digraph.n g in
  let color = Array.make n 0 in (* 0 unseen, 1 on current walk, 2 done *)
  let result = ref None in
  let v = ref 0 in
  while !result = None && !v < n do
    if color.(!v) = 0 then begin
      (* walk backwards along predecessors *)
      let path = ref [] in
      let x = ref !v in
      let continue = ref true in
      while !continue do
        if pred_arc.(!x) < 0 || color.(!x) = 2 then begin
          continue := false;
          List.iter (fun y -> color.(y) <- 2) !path
        end
        else if color.(!x) = 1 then begin
          (* found a cycle through !x: collect until we return to it *)
          continue := false;
          let arcs = ref [] in
          let y = ref !x in
          let go = ref true in
          while !go do
            let a = pred_arc.(!y) in
            arcs := a :: !arcs;
            y := Digraph.src g a;
            if !y = !x then go := false
          done;
          List.iter (fun z -> color.(z) <- 2) !path;
          result := Some !arcs
        end
        else begin
          color.(!x) <- 1;
          path := !x :: !path;
          x := Digraph.src g pred_arc.(!x)
        end
      done
    end;
    incr v
  done;
  !result

(* FIFO Bellman-Ford ("Moore") with per-node update counting.  When
   [sources] is None every node starts at distance 0 (virtual
   super-source), which is the form needed for potentials and global
   negative-cycle detection.  A node reaching n+1 updates triggers a
   predecessor-graph cycle search; its counter is reset if the search
   is inconclusive, so the scan amortizes to O(1) per update. *)
let engine ?on_relax ~costs g ~sources =
  let tr = !Obs.enabled_flag in
  if tr then begin
    Trace.begin_span sp_run;
    Trace.counter_int sp_nodes (Digraph.n g)
  end;
  let n = Digraph.n g in
  let dist = Array.make n max_int in
  let pred_arc = Array.make n (-1) in
  let times_updated = Array.make n 0 in
  let in_queue = Array.make n false in
  (* FIFO over a preallocated ring: the [in_queue] guard keeps at most
     n nodes queued, so capacity n+1 never wraps onto itself.  Same
     relaxation order as the boxed Queue it replaces, none of the
     per-enqueue allocation — this engine is the inner loop of the
     exact finisher, hit once per candidate λ. *)
  let ring = Array.make (n + 1) 0 in
  let head = ref 0 and tail = ref 0 in
  let enqueue v =
    if not in_queue.(v) then begin
      in_queue.(v) <- true;
      ring.(!tail) <- v;
      tail := if !tail = n then 0 else !tail + 1
    end
  in
  (match sources with
  | None ->
    for v = 0 to n - 1 do
      dist.(v) <- 0;
      enqueue v
    done
  | Some vs ->
    List.iter
      (fun v ->
        dist.(v) <- 0;
        enqueue v)
      vs);
  (* The scan below walks the raw CSR Bigarrays rather than going
     through [Digraph.iter_out]: this loop visits every out-arc of
     every popped node, and the per-pop closure plus per-arc accessor
     calls are measurable against the handful of loads it actually
     needs.  All indices come from the graph's own CSR, so unsafe
     reads are in bounds by construction. *)
  let out_start, out_arcs = Digraph.Unsafe.out_csr g in
  let arc_dst = Digraph.Unsafe.dsts g in
  let found = ref None in
  while !found = None && !head <> !tail do
    let u = ring.(!head) in
    head := (if !head = n then 0 else !head + 1);
    in_queue.(u) <- false;
    let du = dist.(u) in
    if du < max_int then begin
      let hi = Bigarray.Array1.unsafe_get out_start (u + 1) in
      let i = ref (Bigarray.Array1.unsafe_get out_start u) in
      while !found = None && !i < hi do
        let a = Bigarray.Array1.unsafe_get out_arcs !i in
        incr i;
        let v = Bigarray.Array1.unsafe_get arc_dst a in
        let cand = du + Array.unsafe_get costs a in
        if cand < dist.(v) then begin
          (match on_relax with Some f -> f () | None -> ());
          dist.(v) <- cand;
          pred_arc.(v) <- a;
          times_updated.(v) <- times_updated.(v) + 1;
          if times_updated.(v) > n then begin
            times_updated.(v) <- 0;
            match cycle_in_pred_graph g pred_arc with
            | Some cycle -> found := Some cycle
            | None -> enqueue v
          end
          else enqueue v
        end
      done
    end
  done;
  if tr then Trace.end_span sp_run;
  match !found with
  | Some cycle -> Error cycle
  | None -> Ok (dist, pred_arc)

let run_arr ?on_relax ~costs g =
  if Array.length costs <> Digraph.m g then
    invalid_arg "Bellman_ford.run_arr: costs length <> arc count";
  match engine ?on_relax ~costs g ~sources:None with
  | Ok (dist, _) -> Feasible dist
  | Error cycle -> Negative_cycle cycle

let run ?on_relax ~cost g =
  match engine ?on_relax ~costs:(Array.init (Digraph.m g) cost) g ~sources:None with
  | Ok (dist, _) -> Feasible dist
  | Error cycle -> Negative_cycle cycle

let negative_cycle ~cost g =
  match run ~cost g with
  | Feasible _ -> None
  | Negative_cycle c -> Some c

let potentials ~cost g =
  match run ~cost g with
  | Feasible d -> Some d
  | Negative_cycle _ -> None

let shortest_from ~cost g s =
  engine ~costs:(Array.init (Digraph.m g) cost) g ~sources:(Some [ s ])

(* Float engine: a structural duplicate of [engine] over float costs.
   Kept separate rather than functorized so the hot integer path stays
   monomorphic and unboxed. *)
let engine_float ?on_relax ~cost g =
  let tr = !Obs.enabled_flag in
  if tr then Trace.begin_span sp_run_float;
  let n = Digraph.n g in
  let dist = Array.make n 0.0 in
  let pred_arc = Array.make n (-1) in
  let times_updated = Array.make n 0 in
  let in_queue = Array.make n true in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    Queue.add v queue
  done;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let u = Queue.take queue in
    in_queue.(u) <- false;
    Digraph.iter_out g u (fun a ->
        if !found = None then begin
          let v = Digraph.dst g a in
          let cand = dist.(u) +. cost a in
          if cand < dist.(v) then begin
            (match on_relax with Some f -> f () | None -> ());
            dist.(v) <- cand;
            pred_arc.(v) <- a;
            times_updated.(v) <- times_updated.(v) + 1;
            let enqueue () =
              if not in_queue.(v) then begin
                in_queue.(v) <- true;
                Queue.add v queue
              end
            in
            if times_updated.(v) > n then begin
              times_updated.(v) <- 0;
              match cycle_in_pred_graph g pred_arc with
              | Some cycle -> found := Some cycle
              | None -> enqueue ()
            end
            else enqueue ()
          end
        end)
  done;
  if tr then Trace.end_span sp_run_float;
  match !found with
  | Some cycle -> Error cycle
  | None -> Ok dist

let run_float ?on_relax ~cost g = engine_float ?on_relax ~cost g

let negative_cycle_float ~cost g =
  match run_float ~cost g with Ok _ -> None | Error c -> Some c

(* Global observability switchboard.

   This module is the root of the `ocr_obs` substrate and depends on
   nothing, so every layer — graph, core, engine, dyn, the CLI — can
   instrument itself without creating a dependency cycle.  The design
   contract, relied on by the kernel's Gc tests and the perf gate:

   - the hot-path check is a single mutable-bool load and branch
     ([enabled_flag] is exposed raw for exactly that reason);
   - with observability disabled, instrumented code allocates nothing
     and does no work beyond that branch;
   - with it enabled, recording a span or event allocates zero heap
     words (see Trace): timestamps come from the [@@noalloc] clock
     external below and land in preallocated unboxed arrays.

   Plain (unsynchronized) reads of [enabled_flag] across domains are
   deliberate: the OCaml memory model makes racy bool reads safe (no
   tearing), and observability is toggled at operation boundaries, not
   mid-solve. *)

external now_ns : unit -> int = "ocr_obs_clock_ns" [@@noalloc]

let enabled_flag = ref false
let enabled () = !enabled_flag
let enable () = enabled_flag := true
let disable () = enabled_flag := false

(* ------------------------------------------------------------------ *)
(* Interned event names                                                *)
(* ------------------------------------------------------------------ *)

(* Instrumented modules intern their span names once at module
   initialization ([let sp = Obs.intern "howard.sweep"]), so the hot
   path only ever handles small ints.  The table is tiny (a few dozen
   names) and mutated under a mutex — interning is init-time work,
   never solve-time work. *)

let intern_mutex = Mutex.create ()
let names = ref (Array.make 64 "")
let name_count = ref 0

let intern name =
  Mutex.lock intern_mutex;
  let rec find i = if i >= !name_count then -1
    else if (!names).(i) = name then i
    else find (i + 1)
  in
  let id =
    match find 0 with
    | i when i >= 0 -> i
    | _ ->
      let i = !name_count in
      if i >= Array.length !names then begin
        let bigger = Array.make (2 * Array.length !names) "" in
        Array.blit !names 0 bigger 0 i;
        names := bigger
      end;
      (!names).(i) <- name;
      name_count := i + 1;
      i
  in
  Mutex.unlock intern_mutex;
  id

let name_of id =
  if id < 0 || id >= !name_count then
    Printf.sprintf "?%d" id
  else (!names).(id)

(* ------------------------------------------------------------------ *)
(* Escaping helpers shared by the exporters                            *)
(* ------------------------------------------------------------------ *)

(* JSON string literal, with every byte that could break a consumer
   escaped.  Printf's %S is OCaml escaping, not JSON: it emits decimal
   escapes like \027 that JSON parsers reject, which is the bug this
   replaces in Telemetry. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* RFC 4180 field quoting: a field containing a separator, quote or
   newline is wrapped in quotes with inner quotes doubled; anything
   else passes through unchanged so existing numeric columns keep
   their exact bytes. *)
let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\""
        else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* *)
let prometheus_name s =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    s

(** Span/event recording into preallocated per-domain ring buffers,
    and the Chrome/Perfetto trace-event exporter.

    Recording is lock-free (each domain writes only its own ring) and
    allocation-free; all recording entry points are no-ops while
    [Obs.enabled] is false.  Names are interned ints from
    {!Obs.intern}. *)

val begin_span : int -> unit
val end_span : int -> unit

val instant : int -> unit
(** A zero-duration event (ph ["i"] in the export). *)

val counter_int : int -> int -> unit
(** Sample a counter track (ph ["C"]).  The int is converted to float
    only after the enabled check, so disabled call sites stay
    allocation-free without a caller-side guard. *)

val counter : int -> float -> unit
(** Float variant of {!counter_int}.  In alloc-sensitive code guard
    the call with [if !Obs.enabled_flag then ...] — the float argument
    is boxed at the call boundary regardless of the flag. *)

val begin_span_id : int -> int -> unit
(** [begin_span_id name tag] opens a span carrying a request trace id.
    Tagged spans export as async events (ph ["b"]/["e"]) paired by the
    tag rather than by stack nesting, so spans of different requests
    may overlap on one track.  A [tag] of 0 is identical to
    {!begin_span}.  Like {!counter_int}, the int tag is converted to
    float only after the enabled check. *)

val end_span_id : int -> int -> unit

val instant_id : int -> int -> unit
(** Tagged instant: the export carries the tag as [args.trace] (and
    the multi-process merger keys per-request flows on it).  A tag of
    0 is identical to {!instant}. *)

val set_process : pid:int -> name:string -> unit -> unit
(** Declare this process's identity in multi-process traces: events
    export under the given Chrome [pid] with a [process_name] metadata
    record, and timestamps switch from rebased-to-first-record to
    absolute monotonic microseconds so {!Trace_read.merge} can align
    files from different processes.  The cluster router uses pid 0,
    worker [i] uses pid [i + 1]. *)

val set_clock_offset_ns : int -> unit
(** Record the clock offset measured against the router's monotonic
    clock (router_now_ns - local_now_ns, from the spawn handshake).
    Stamped into the export as a [clock_offset_ns] metadata record;
    {!Trace_read.merge} adds it to every timestamp of the file. *)

val configure : ?capacity:int -> unit -> unit
(** Drop all rings and start fresh; [capacity] (rounded up to a power
    of two, default 65536 records) applies to rings created after the
    call.  Also resets the process identity ({!set_process},
    {!set_clock_offset_ns}) to the standalone default.  Call before
    enabling tracing, never mid-recording. *)

val preallocate : unit -> unit
(** Eagerly allocate the calling domain's ring.  The ring is otherwise
    allocated inside the domain's first record, whose cost would skew
    the first traced request's phase timing; setup paths that stamp
    wall-clock phases against trace events (the cluster router) call
    this right after {!configure}. *)

val reset : unit -> unit
(** Clear every ring without deallocating it. *)

type event = {
  ev_dom : int;
  ev_ts : int;
  ev_kind : [ `Begin | `End | `Instant | `Counter ];
  ev_id : int;
  ev_arg : float;
}

val events : unit -> event list
(** Snapshot: all surviving records, tracks in domain-id order,
    chronological within a track. *)

val recorded : unit -> int
(** Total records ever written (including overwritten ones). *)

val dropped : unit -> int
(** Records lost to ring wrap-around. *)

val to_chrome_json : unit -> string
(** Chrome trace-event JSON (the format Perfetto and about://tracing
    load): one thread track per domain, untagged spans as complete
    events (ph ["X"], microsecond [ts]/[dur]), tagged spans as async
    pairs (ph ["b"]/["e"] with the tag as [id] and [args.trace]),
    instants as ph ["i"], counter samples as ph ["C"].  After
    {!set_process} the events carry that pid, absolute timestamps and
    a [clock_offset_ns] metadata record. *)

val write_chrome_json : string -> unit

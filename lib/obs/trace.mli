(** Span/event recording into preallocated per-domain ring buffers,
    and the Chrome/Perfetto trace-event exporter.

    Recording is lock-free (each domain writes only its own ring) and
    allocation-free; all recording entry points are no-ops while
    [Obs.enabled] is false.  Names are interned ints from
    {!Obs.intern}. *)

val begin_span : int -> unit
val end_span : int -> unit

val instant : int -> unit
(** A zero-duration event (ph ["i"] in the export). *)

val counter_int : int -> int -> unit
(** Sample a counter track (ph ["C"]).  The int is converted to float
    only after the enabled check, so disabled call sites stay
    allocation-free without a caller-side guard. *)

val counter : int -> float -> unit
(** Float variant of {!counter_int}.  In alloc-sensitive code guard
    the call with [if !Obs.enabled_flag then ...] — the float argument
    is boxed at the call boundary regardless of the flag. *)

val configure : ?capacity:int -> unit -> unit
(** Drop all rings and start fresh; [capacity] (rounded up to a power
    of two, default 65536 records) applies to rings created after the
    call.  Call before enabling tracing, never mid-recording. *)

val reset : unit -> unit
(** Clear every ring without deallocating it. *)

type event = {
  ev_dom : int;
  ev_ts : int;
  ev_kind : [ `Begin | `End | `Instant | `Counter ];
  ev_id : int;
  ev_arg : float;
}

val events : unit -> event list
(** Snapshot: all surviving records, tracks in domain-id order,
    chronological within a track. *)

val recorded : unit -> int
(** Total records ever written (including overwritten ones). *)

val dropped : unit -> int
(** Records lost to ring wrap-around. *)

val to_chrome_json : unit -> string
(** Chrome trace-event JSON (the format Perfetto and about://tracing
    load): one thread track per domain, spans as complete events
    (ph ["X"], microsecond [ts]/[dur]), instants as ph ["i"], counter
    samples as ph ["C"]. *)

val write_chrome_json : string -> unit

(* Span/event recording into preallocated per-domain ring buffers.

   One ring per domain (= one track in the exported trace), so
   recording never takes a lock and never races: a domain only ever
   writes its own ring.  A record is three stores into unboxed arrays
   (int timestamp, packed int code, float argument) — zero heap words
   on the hot path.  When the ring wraps, the oldest records are
   overwritten; the exporter reports how many were dropped rather than
   ever stalling a solve.

   ALLOCATION CONTRACT: [begin_span]/[end_span]/[instant]/[counter_int]
   check the global enabled flag themselves, but alloc-sensitive call
   sites should still guard with [if !Obs.enabled_flag then ...] — in
   particular [counter]'s float argument would otherwise be boxed at
   the call boundary even when tracing is off. *)

type buf = {
  dom : int;
  mask : int; (* capacity - 1; capacity is a power of two *)
  ts : int array;
  code : int array; (* (name id lsl 2) lor kind *)
  arg : float array;
  mutable len : int; (* total records ever written, monotone *)
}

let kind_begin = 0
let kind_end = 1
let kind_instant = 2
let kind_counter = 3

(* ------------------------------------------------------------------ *)
(* Ring registry                                                       *)
(* ------------------------------------------------------------------ *)

let registry_mutex = Mutex.create ()
let default_capacity = ref 65536

(* [rings] is indexed by domain id for the O(1) hot-path lookup;
   [tracks] keeps registration order for the exporters.  The array is
   only ever grown (swapped) under the mutex; racing readers that still
   hold the old array see the same buf objects, so no record is lost. *)
let rings : buf option array ref = ref (Array.make 16 None)
let tracks : buf list ref = ref []

let make_buf dom cap =
  { dom; mask = cap - 1; ts = Array.make cap 0; code = Array.make cap 0;
    arg = Array.make cap 0.0; len = 0 }

let register dom =
  Mutex.lock registry_mutex;
  let arr = !rings in
  let b =
    match if dom < Array.length arr then arr.(dom) else None with
    | Some b -> b (* lost the race to another toggle of the same domain *)
    | None ->
      let b = make_buf dom !default_capacity in
      let arr =
        if dom < Array.length arr then arr
        else begin
          let size = ref (Array.length arr) in
          while dom >= !size do
            size := 2 * !size
          done;
          let bigger = Array.make !size None in
          Array.blit arr 0 bigger 0 (Array.length arr);
          rings := bigger;
          bigger
        end
      in
      arr.(dom) <- Some b;
      tracks := b :: !tracks;
      b
  in
  Mutex.unlock registry_mutex;
  b

let[@inline] buffer () =
  let dom = (Domain.self () :> int) in
  let arr = !rings in
  if dom < Array.length arr then
    match Array.unsafe_get arr dom with
    | Some b -> b
    | None -> register dom
  else register dom

let[@inline] record kind id arg =
  let b = buffer () in
  let i = b.len land b.mask in
  Array.unsafe_set b.ts i (Obs.now_ns ());
  Array.unsafe_set b.code i ((id lsl 2) lor kind);
  Array.unsafe_set b.arg i arg;
  b.len <- b.len + 1

let[@inline] begin_span id = if !Obs.enabled_flag then record kind_begin id 0.0
let[@inline] end_span id = if !Obs.enabled_flag then record kind_end id 0.0
let[@inline] instant id = if !Obs.enabled_flag then record kind_instant id 0.0

let[@inline] counter_int id v =
  if !Obs.enabled_flag then record kind_counter id (float_of_int v)

let counter id v = if !Obs.enabled_flag then record kind_counter id v

(* Tagged variants: the tag (a request trace id, 0 = untagged) rides
   in the float argument slot, converted only after the enabled check,
   so a disabled call site stays allocation-free.  A tag of 0 behaves
   exactly like the untagged entry points. *)
let[@inline] begin_span_id id tag =
  if !Obs.enabled_flag then record kind_begin id (float_of_int tag)

let[@inline] end_span_id id tag =
  if !Obs.enabled_flag then record kind_end id (float_of_int tag)

let[@inline] instant_id id tag =
  if !Obs.enabled_flag then record kind_instant id (float_of_int tag)

(* ------------------------------------------------------------------ *)
(* Process identity (multi-process export)                             *)
(* ------------------------------------------------------------------ *)

(* A standalone trace (ocr solve --trace) exports as pid 0 / "ocr"
   with timestamps rebased to the earliest record, which reads nicely
   in a viewer.  The cluster's per-process files instead need absolute
   timestamps (so the merger can align them) plus a stable pid per
   process and the clock offset measured by the router handshake. *)
let process_pid = ref 0
let process_label = ref "ocr"
let clock_offset = ref 0
let absolute_ts = ref false

let set_process ~pid ~name () =
  process_pid := pid;
  process_label := name;
  absolute_ts := true

let set_clock_offset_ns n = clock_offset := n

(* ------------------------------------------------------------------ *)
(* Configuration / lifecycle                                           *)
(* ------------------------------------------------------------------ *)

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let configure ?capacity () =
  Mutex.lock registry_mutex;
  (match capacity with
  | Some c -> default_capacity := next_pow2 (max 16 c) 16
  | None -> ());
  rings := Array.make 16 None;
  tracks := [];
  process_pid := 0;
  process_label := "ocr";
  clock_offset := 0;
  absolute_ts := false;
  Mutex.unlock registry_mutex

(* eager ring allocation for the calling domain: without it the first
   record pays ~ms of array allocation, which skews the first traced
   request's phase timing against the access log's clock stamps *)
let preallocate () = ignore (buffer () : buf)

let reset () =
  Mutex.lock registry_mutex;
  List.iter (fun b -> b.len <- 0) !tracks;
  Mutex.unlock registry_mutex

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_dom : int;
  ev_ts : int; (* monotonic ns *)
  ev_kind : [ `Begin | `End | `Instant | `Counter ];
  ev_id : int; (* interned name, Obs.name_of *)
  ev_arg : float;
}

let snapshot_track b =
  let cap = b.mask + 1 in
  let kept = min b.len cap in
  let first = b.len - kept in
  List.init kept (fun k ->
      let i = (first + k) land b.mask in
      let code = b.code.(i) in
      {
        ev_dom = b.dom;
        ev_ts = b.ts.(i);
        ev_kind =
          (match code land 3 with
          | 0 -> `Begin
          | 1 -> `End
          | 2 -> `Instant
          | _ -> `Counter);
        ev_id = code lsr 2;
        ev_arg = b.arg.(i);
      })

let sorted_tracks () =
  Mutex.lock registry_mutex;
  let ts = !tracks in
  Mutex.unlock registry_mutex;
  List.sort (fun a b -> compare a.dom b.dom) ts

let events () = List.concat_map snapshot_track (sorted_tracks ())

let recorded () = List.fold_left (fun acc b -> acc + b.len) 0 (sorted_tracks ())

let dropped () =
  List.fold_left
    (fun acc b -> acc + max 0 (b.len - (b.mask + 1)))
    0 (sorted_tracks ())

(* ------------------------------------------------------------------ *)
(* Chrome/Perfetto trace-event JSON                                    *)
(* ------------------------------------------------------------------ *)

(* One track per domain (tid = domain id); untagged spans become
   complete events (ph "X" with ts + dur, both in microseconds), which
   Perfetto nests by time containment, so Howard iteration spans show
   under their component span.  Begin/end pairing is reconstructed
   with a per-track stack; records orphaned by ring wrap-around are
   closed at the last timestamp seen (or skipped, for an end with no
   surviving begin) rather than corrupting the file.

   Tagged records (arg <> 0, written by the [_id] entry points) export
   differently: begin/end become async events (ph "b"/"e") paired by
   (cat, id) rather than the stack — request spans from different
   requests overlap freely on one track — and instants carry the tag
   as [args.trace].  The multi-process merger keys on both. *)
let to_chrome_json () =
  let tracks = sorted_tracks () in
  let all = List.concat_map snapshot_track tracks in
  let t0 =
    if !absolute_ts then 0
    else List.fold_left (fun acc e -> min acc e.ev_ts) max_int all
  in
  let pid = !process_pid in
  let us ns = float_of_int (ns - t0) /. 1_000.0 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string b ",\n";
        Buffer.add_string b s)
      fmt
  in
  emit
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
     \"args\":{\"name\":%s}}"
    pid
    (Obs.json_string !process_label);
  if !absolute_ts then
    emit
      "{\"name\":\"clock_offset_ns\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
       \"args\":{\"value\":%d}}"
      pid !clock_offset;
  List.iter
    (fun tr ->
      emit
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\
         \"args\":{\"name\":\"domain %d\"}}"
        pid tr.dom tr.dom)
    tracks;
  List.iter
    (fun tr ->
      let evs = snapshot_track tr in
      let stack = ref [] in
      let last_ts = ref (match evs with e :: _ -> e.ev_ts | [] -> t0) in
      let emit_span id ts_begin ts_end =
        emit
          "{\"name\":%s,\"cat\":\"ocr\",\"ph\":\"X\",\"ts\":%.3f,\
           \"dur\":%.3f,\"pid\":%d,\"tid\":%d}"
          (Obs.json_string (Obs.name_of id))
          (us ts_begin)
          (float_of_int (ts_end - ts_begin) /. 1_000.0)
          pid tr.dom
      in
      let emit_async ph e tag =
        emit
          "{\"name\":%s,\"cat\":\"ocr\",\"ph\":\"%s\",\"id\":\"%d\",\
           \"ts\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"trace\":%d}}"
          (Obs.json_string (Obs.name_of e.ev_id))
          ph tag (us e.ev_ts) pid tr.dom tag
      in
      List.iter
        (fun e ->
          last_ts := max !last_ts e.ev_ts;
          let tag = int_of_float e.ev_arg in
          match e.ev_kind with
          | `Begin when tag <> 0 -> emit_async "b" e tag
          | `End when tag <> 0 -> emit_async "e" e tag
          | `Begin -> stack := (e.ev_id, e.ev_ts) :: !stack
          | `End ->
            (* pop to the matching begin; anything above it was left
               open (lost its end to a wrap) and closes here *)
            if List.exists (fun (id, _) -> id = e.ev_id) !stack then begin
              let rec pop = function
                | (id, ts) :: rest when id = e.ev_id ->
                  emit_span id ts e.ev_ts;
                  rest
                | (id, ts) :: rest ->
                  emit_span id ts e.ev_ts;
                  pop rest
                | [] -> []
              in
              stack := pop !stack
            end
          | `Instant ->
            if tag <> 0 then
              emit
                "{\"name\":%s,\"cat\":\"ocr\",\"ph\":\"i\",\"ts\":%.3f,\
                 \"s\":\"t\",\"pid\":%d,\"tid\":%d,\"args\":{\"trace\":%d}}"
                (Obs.json_string (Obs.name_of e.ev_id))
                (us e.ev_ts) pid tr.dom tag
            else
              emit
                "{\"name\":%s,\"cat\":\"ocr\",\"ph\":\"i\",\"ts\":%.3f,\
                 \"s\":\"t\",\"pid\":%d,\"tid\":%d}"
                (Obs.json_string (Obs.name_of e.ev_id))
                (us e.ev_ts) pid tr.dom
          | `Counter ->
            emit
              "{\"name\":%s,\"cat\":\"ocr\",\"ph\":\"C\",\"ts\":%.3f,\
               \"pid\":%d,\"tid\":%d,\"args\":{\"value\":%g}}"
              (Obs.json_string (Obs.name_of e.ev_id))
              (us e.ev_ts) pid tr.dom e.ev_arg)
        evs;
      (* spans still open at snapshot time close at the last record *)
      List.iter (fun (id, ts) -> emit_span id ts !last_ts) !stack)
    tracks;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write_chrome_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))

/* Monotonic clock for the tracing substrate.

   Returns nanoseconds since an arbitrary epoch as an OCaml immediate
   int (63 bits hold ~146 years of nanoseconds), so the external is
   [@@noalloc] and a span record costs no heap words for its
   timestamp.  CLOCK_MONOTONIC never jumps backwards, which the span
   nesting reconstruction in the exporter relies on. */

#include <caml/mlvalues.h>

#ifdef _WIN32
#include <windows.h>

value ocr_obs_clock_ns(value unit)
{
  (void)unit;
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0)
    QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return Val_long((long)(now.QuadPart * (1000000000.0 / freq.QuadPart)));
}

#else
#include <time.h>

value ocr_obs_clock_ns(value unit)
{
  (void)unit;
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + ts.tv_nsec);
}

#endif

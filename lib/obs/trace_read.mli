(** Trace-file reader: parse Chrome trace-event JSON and aggregate
    spans by self-time (the `ocr trace summarize` engine).

    Failures are values, never exceptions — the CLI maps an [Error]
    to a structured message and a nonzero exit. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result
(** Full (nested) JSON parser; error messages carry a byte offset. *)

type span_row = {
  sr_name : string;
  sr_count : int;
  sr_total_us : float;  (** summed duration of all spans of the name *)
  sr_self_us : float;
      (** total minus the time spent in directly nested spans *)
}

val summarize : string -> (span_row list, string) result
(** Aggregate the complete events (ph ["X"]) of a trace — given as the
    file contents — per name, rows sorted by self-time descending.
    Accepts both the object form ([{"traceEvents": [...]}]) and the
    bare JSON-array form; individual events missing fields are
    skipped, a malformed file is an [Error]. *)

val summarize_file : string -> (span_row list, string) result

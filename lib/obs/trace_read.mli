(** Trace-file reader: parse Chrome trace-event JSON and aggregate
    spans by self-time (the `ocr trace summarize` engine).

    Failures are values, never exceptions — the CLI maps an [Error]
    to a structured message and a nonzero exit. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result
(** Full (nested) JSON parser; error messages carry a byte offset. *)

type span_row = {
  sr_name : string;
  sr_count : int;
  sr_total_us : float;  (** summed duration of all spans of the name *)
  sr_self_us : float;
      (** total minus the time spent in directly nested spans *)
}

val summarize : string -> (span_row list, string) result
(** Aggregate the complete events (ph ["X"]) of a trace — given as the
    file contents — per name, rows sorted by self-time descending.
    Accepts both the object form ([{"traceEvents": [...]}]) and the
    bare JSON-array form; individual events missing fields are
    skipped, a malformed file is an [Error]. *)

val summarize_file : string -> (span_row list, string) result
(** {!summarize} on a file's contents.  Unreadable, empty and
    truncated files are all an [Error], never an exception. *)

val read_file : string -> (string, string) result
(** Read a whole file, mapping [Sys_error] and a short read
    ([End_of_file] from a file truncated under us) to [Error]. *)

val merge : (string * string) list -> (string, string) result
(** [merge [(label, contents); ...]] aligns per-process trace files
    (each written by one {!Trace.set_process}-stamped process) into a
    single Chrome trace:

    - each file's timestamps are shifted by its own [clock_offset_ns]
      metadata record (the router↔worker handshake measurement), so
      every event lands on the router's clock;
    - per-request flow arrows (ph ["s"]/["f"], id = trace id) are
      synthesized from the router's [rt.sent] instant to the earliest
      same-trace event in a different process;
    - events are emitted in a deterministic total order (timestamp,
      then serialized bytes), so the merged file is independent of
      input order and ring interleaving.

    A malformed input fails the whole merge with an error naming the
    offending label. *)

type request_phases = {
  rp_trace : int;
  rp_dispatch_us : float;
      (** [rt.admit] → [rt.sent]: parse, shard decision, pipe write *)
  rp_queue_us : float;  (** [rt.sent] → [rt.head]: queue wait *)
  rp_solve_us : float;  (** [rt.head] → [rt.reply]: worker round-trip *)
  rp_serialize_us : float;
      (** [rt.reply] → [rt.done]: rewrite + client write *)
  rp_total_us : float;  (** [rt.admit] → [rt.done] *)
}

val attribute : string -> (request_phases list, string) result
(** Per-request critical-path attribution from the router's tagged
    [rt.*] phase instants (present in a router or merged trace from a
    traced [ocr cluster] run), sorted by trace id.  Requests missing
    any of the five markers (shed or failed ones) are skipped; a trace
    with no markers at all is [Ok []]. *)

val percentile : float list -> float -> float
(** Nearest-rank percentile of a sample list; 0 when empty. *)

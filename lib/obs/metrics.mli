(** Metrics registry: named counters, gauges and log2-bucketed
    histograms, with Prometheus text exposition and a human summary.

    A registry is single-domain by design — concurrent tasks record
    into their own shard and the coordinator merges shards at the join
    in task order ({!merge_into}), the same per-domain-instances rule
    Telemetry and Stats follow, so merged values are deterministic for
    every job count.  Find-or-create registration is setup-path work;
    recording into an obtained cell is O(1) and allocation-free. *)

type counter
type gauge
type histogram
type t

val create : unit -> t

val counter : t -> string -> counter
(** Find or create.  Raises [Invalid_argument] if the name is already
    registered with a different kind (same for {!gauge} and
    {!histogram}). *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one observation: bucket [i] holds values in
    [(2^(i-1), 2^i]] (bucket 0: [<= 1]); the last of the 63 buckets
    catches everything larger. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_max : histogram -> float
val hist_mean : histogram -> float

val quantile : histogram -> float -> float
(** Upper-bound estimate of the q-quantile: the smallest bucket
    boundary (a power of two) at or above it.  0 when empty. *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into]: counters and histograms add, a set gauge
    overwrites.  Deterministic given a deterministic merge order. *)

val merge : t -> t -> t

val to_prometheus : t -> string
(** Prometheus text exposition (format 0.0.4): [# TYPE] lines,
    cumulative [le]-labelled histogram buckets with the mandatory
    [+Inf] bucket, [_sum] and [_count].

    Metric names may embed a label part
    ([ocr_worker_up{worker="0"}], [ocr_queue_wait_ms{worker="0"}]):
    the base name is sanitized, the label part is emitted verbatim (it
    must not contain spaces, or commas inside label values), and
    series sharing a base share one [# TYPE] line.  For a labeled
    histogram the [le] label is appended after the series labels on
    bucket lines. *)

val of_prometheus : string -> (t, string) result
(** Parses {!to_prometheus} output back into a fresh registry — the
    merge entry point for aggregating per-process snapshots shipped as
    text (an [ocr cluster] router folds its workers' expositions
    together with {!merge_into}).  Counters and gauges round-trip
    exactly; histograms round-trip their bucket counts, [_sum] and
    [_count], while the max — absent from the wire format — is
    restored as the upper bound of the top non-empty bucket. *)

val pp_summary : Format.formatter -> t -> unit
(** One line per metric inside the caller's vertical box. *)

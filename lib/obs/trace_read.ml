(* Reader side of the trace pipeline: parse a Chrome trace-event JSON
   file (ours, or any tool's) and aggregate spans by self-time for
   `ocr trace summarize`.

   The JSON reader is a full recursive-descent parser — unlike
   Njson.parse_flat it accepts nested values, because trace events
   carry an args object — but stays ~80 lines by not streaming.  Every
   failure is an [Error] with a byte position, never an exception: the
   CLI turns it into a structured error line and a nonzero exit. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_exn (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          (* decode as a raw byte when in range, else '?' — span names
             are ASCII and this reader only aggregates by name *)
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
          | Some _ -> Buffer.add_char b '?'
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | c -> Buffer.add_char b c);
        advance ();
        go ()
      | '\255' -> fail "unterminated string"
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while num_char (peek ()) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}' in object"
        in
        members []
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' in array"
        in
        elements []
    | '"' -> Str (string_lit ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_json s =
  match parse_exn s with v -> Ok v | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Span aggregation                                                    *)
(* ------------------------------------------------------------------ *)

type span_row = {
  sr_name : string;
  sr_count : int;
  sr_total_us : float; (* summed wall time of the spans *)
  sr_self_us : float;  (* total minus time in directly nested spans *)
}

let field o k = match o with Obj l -> List.assoc_opt k l | _ -> None

let num_field o k =
  match field o k with
  | Some (Num f) -> Some f
  | _ -> None

let str_field o k =
  match field o k with
  | Some (Str s) -> Some s
  | _ -> None

(* mutable per-open-span cell for the nesting scan *)
type open_span = {
  os_name : string;
  os_dur : float;
  os_end : float;
  mutable os_children : float;
}

(* shared front door: contents -> event list.  An empty (or
   whitespace-only) file gets its own message — it is what a crashed
   or still-running writer leaves behind, and deserves better than
   "bad number at byte 0". *)
let events_of_contents contents =
  if String.trim contents = "" then Error "empty trace file"
  else
    match parse_json contents with
    | Error e -> Error ("bad JSON: " ^ e)
    | Ok json -> (
      match json with
      | Arr evs -> Ok evs (* the bare JSON-array trace format *)
      | Obj _ -> (
        match field json "traceEvents" with
        | Some (Arr evs) -> Ok evs
        | Some _ -> Error "\"traceEvents\" is not an array"
        | None -> Error "no \"traceEvents\" array")
      | _ -> Error "top level is neither an object nor an array")

let summarize contents =
  match events_of_contents contents with
    | Error e -> Error e
    | Ok events ->
      (* complete events only; metadata, instants and counters carry
         no duration.  Events missing a field are skipped, not fatal —
         third-party traces decorate events freely. *)
      let spans =
        List.filter_map
          (fun e ->
            match (str_field e "ph", str_field e "name") with
            | Some "X", Some name -> (
              match (num_field e "ts", num_field e "dur") with
              | Some ts, Some dur ->
                let tid =
                  match num_field e "tid" with Some t -> t | None -> 0.0
                in
                let pid =
                  match num_field e "pid" with Some p -> p | None -> 0.0
                in
                Some ((pid, tid), name, ts, dur)
              | _ -> None)
            | _ -> None)
          events
      in
      let by_name : (string, int ref * float ref * float ref) Hashtbl.t =
        Hashtbl.create 16
      in
      let account name dur self =
        let cnt, total, slf =
          match Hashtbl.find_opt by_name name with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0.0, ref 0.0) in
            Hashtbl.replace by_name name cell;
            cell
        in
        incr cnt;
        total := !total +. dur;
        slf := !slf +. self
      in
      (* per-track nesting: sort by start (longer spans first on a
         tie, so parents precede their children), then a stack scan
         attributes each span's duration to its innermost enclosure *)
      let tracks = Hashtbl.create 4 in
      List.iter
        (fun ((key, _, _, _) as sp) ->
          let l =
            match Hashtbl.find_opt tracks key with Some l -> l | None -> []
          in
          Hashtbl.replace tracks key (sp :: l))
        spans;
      Hashtbl.iter
        (fun _ track ->
          let track =
            List.sort
              (fun (_, _, ts1, d1) (_, _, ts2, d2) ->
                match compare ts1 ts2 with 0 -> compare d2 d1 | c -> c)
              track
          in
          let stack = ref [] in
          let close os =
            account os.os_name os.os_dur
              (Float.max 0.0 (os.os_dur -. os.os_children))
          in
          let rec pop_until ts =
            match !stack with
            | os :: rest when os.os_end <= ts ->
              close os;
              stack := rest;
              pop_until ts
            | _ -> ()
          in
          List.iter
            (fun (_, name, ts, dur) ->
              pop_until ts;
              (match !stack with
              | parent :: _ -> parent.os_children <- parent.os_children +. dur
              | [] -> ());
              stack :=
                { os_name = name; os_dur = dur; os_end = ts +. dur;
                  os_children = 0.0 }
                :: !stack)
            track;
          List.iter close !stack)
        tracks;
      let rows =
        Hashtbl.fold
          (fun name (cnt, total, slf) acc ->
            { sr_name = name; sr_count = !cnt; sr_total_us = !total;
              sr_self_us = !slf }
            :: acc)
          by_name []
      in
      Ok
        (List.sort
           (fun a b ->
             match compare b.sr_self_us a.sr_self_us with
             | 0 -> compare a.sr_name b.sr_name
             | c -> c)
           rows)

(* [really_input_string] raises [End_of_file] when the file is shorter
   than its reported length (a writer truncated it under us) — that is
   a malformed trace, not a crash *)
let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | exception End_of_file -> Error (path ^ ": truncated trace file")
  | contents -> Ok contents

let summarize_file path =
  match read_file path with
  | Error e -> Error e
  | Ok contents -> summarize contents

(* ------------------------------------------------------------------ *)
(* Multi-process merge                                                 *)
(* ------------------------------------------------------------------ *)

(* Serializer for re-emitting parsed events.  Floats print with enough
   digits to round-trip the microsecond timestamps exactly; integral
   values print as integers so the output stays close to what the
   exporter wrote. *)
let rec write_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> Buffer.add_string buf (Obs.json_string s)
  | Arr l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write_json buf v)
      l;
    Buffer.add_char buf ']'
  | Obj l ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Obs.json_string k);
        Buffer.add_char buf ':';
        write_json buf v)
      l;
    Buffer.add_char buf '}'

let json_to_string j =
  let b = Buffer.create 256 in
  write_json b j;
  Buffer.contents b

(* the trace id an event carries: args.trace (tagged instants and
   async spans), falling back to the async "id" field *)
let trace_of e =
  match field e "args" with
  | Some (Obj a) -> (
    match List.assoc_opt "trace" a with
    | Some (Num f) -> Some (int_of_float f)
    | _ -> (
      match str_field e "id" with
      | Some s -> int_of_string_opt s
      | None -> None))
  | _ -> (
    match str_field e "id" with
    | Some s -> int_of_string_opt s
    | None -> None)

(* clock_offset_ns metadata record of one file, 0 when absent *)
let offset_ns_of_events events =
  List.fold_left
    (fun acc e ->
      match (str_field e "name", str_field e "ph", field e "args") with
      | Some "clock_offset_ns", Some "M", Some (Obj a) -> (
        match List.assoc_opt "value" a with
        | Some (Num f) -> int_of_float f
        | _ -> acc)
      | _ -> acc)
    0 events

let shift_ts offset_us e =
  match e with
  | Obj fields when offset_us <> 0.0 ->
    Obj
      (List.map
         (fun (k, v) ->
           match (k, v) with
           | "ts", Num f -> (k, Num (f +. offset_us))
           | _ -> (k, v))
         fields)
  | _ -> e

let merge inputs =
  (* parse every file first: one bad input fails the whole merge with
     a message naming it *)
  let parsed =
    List.map
      (fun (label, contents) ->
        match events_of_contents contents with
        | Error e -> Error (label ^ ": " ^ e)
        | Ok evs -> Ok evs)
      inputs
  in
  match
    List.find_map (function Error e -> Some e | Ok _ -> None) parsed
  with
  | Some e -> Error e
  | None ->
    (* clock alignment: add each file's stamped offset to its own
       timestamps, putting every file on the router's clock *)
    let shifted =
      List.concat_map
        (function
          | Error _ -> []
          | Ok evs ->
            let off_us =
              float_of_int (offset_ns_of_events evs) /. 1_000.0
            in
            List.map (shift_ts off_us) evs)
        parsed
    in
    (* flow synthesis: for each request, an arrow from the router's
       rt.sent instant to the earliest event of the same trace id in a
       different process — the dispatch hop made visible *)
    let sent = Hashtbl.create 64 (* trace -> (ts, pid, tid) *) in
    let remote = Hashtbl.create 64 (* trace -> (ts, pid, tid) *) in
    let pos e =
      let ts = match num_field e "ts" with Some f -> f | None -> 0.0 in
      let pid = match num_field e "pid" with Some f -> f | None -> 0.0 in
      let tid = match num_field e "tid" with Some f -> f | None -> 0.0 in
      (ts, pid, tid)
    in
    List.iter
      (fun e ->
        match trace_of e with
        | None -> ()
        | Some tr -> (
          let p = pos e in
          if str_field e "name" = Some "rt.sent" then
            match Hashtbl.find_opt sent tr with
            | Some (ts, _, _) when ts <= (let t, _, _ = p in t) -> ()
            | _ -> Hashtbl.replace sent tr p))
      shifted;
    List.iter
      (fun e ->
        match trace_of e with
        | None -> ()
        | Some tr -> (
          match Hashtbl.find_opt sent tr with
          | None -> ()
          | Some (_, spid, _) ->
            let ((ts, pid, _) as p) = pos e in
            if pid <> spid then (
              match Hashtbl.find_opt remote tr with
              | Some (ts', _, _) when ts' <= ts -> ()
              | _ -> Hashtbl.replace remote tr p)))
      shifted;
    let flows =
      Hashtbl.fold
        (fun tr (rts, rpid, rtid) acc ->
          match Hashtbl.find_opt sent tr with
          | None -> acc
          | Some (sts, spid, stid) ->
            let mk ph extra ts pid tid =
              Obj
                ([
                   ("name", Str "req");
                   ("cat", Str "ocr");
                   ("ph", Str ph);
                   ("id", Str (string_of_int tr));
                   ("ts", Num ts);
                   ("pid", Num pid);
                   ("tid", Num tid);
                 ]
                @ extra)
            in
            mk "s" [] sts spid stid
            :: mk "f" [ ("bp", Str "e") ] rts rpid rtid
            :: acc)
        remote []
    in
    (* deterministic total order: ts first, then the serialized bytes,
       so the result is independent of input file order and of any
       interleaving of the rings *)
    let keyed =
      List.map
        (fun e ->
          let ts =
            match num_field e "ts" with
            | Some f -> f
            | None -> neg_infinity (* metadata sorts first *)
          in
          (ts, json_to_string e))
        (shifted @ flows)
    in
    let sorted =
      List.sort
        (fun (ts1, s1) (ts2, s2) ->
          match compare ts1 ts2 with 0 -> compare s1 s2 | c -> c)
        keyed
    in
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\":[";
    List.iteri
      (fun i (_, s) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b s)
      sorted;
    Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n";
    Ok (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Per-request critical-path attribution                               *)
(* ------------------------------------------------------------------ *)

type request_phases = {
  rp_trace : int;
  rp_dispatch_us : float; (* rt.admit -> rt.sent: parse + shard + pipe write *)
  rp_queue_us : float;    (* rt.sent -> rt.head: wait behind the queue *)
  rp_solve_us : float;    (* rt.head -> rt.reply: worker round-trip *)
  rp_serialize_us : float;(* rt.reply -> rt.done: rewrite + client write *)
  rp_total_us : float;    (* rt.admit -> rt.done *)
}

let attribute contents =
  match events_of_contents contents with
  | Error e -> Error e
  | Ok events ->
    let marks = Hashtbl.create 64 (* trace -> name -> ts *) in
    List.iter
      (fun e ->
        match (str_field e "ph", str_field e "name", trace_of e) with
        | Some "i", Some name, Some tr
          when String.length name > 3 && String.sub name 0 3 = "rt." -> (
          match num_field e "ts" with
          | None -> ()
          | Some ts ->
            let m =
              match Hashtbl.find_opt marks tr with
              | Some m -> m
              | None ->
                let m = Hashtbl.create 8 in
                Hashtbl.replace marks tr m;
                m
            in
            Hashtbl.replace m name ts)
        | _ -> ())
      events;
    let rows =
      Hashtbl.fold
        (fun tr m acc ->
          match
            ( Hashtbl.find_opt m "rt.admit",
              Hashtbl.find_opt m "rt.sent",
              Hashtbl.find_opt m "rt.head",
              Hashtbl.find_opt m "rt.reply",
              Hashtbl.find_opt m "rt.done" )
          with
          | Some admit, Some sent, Some head, Some reply, Some done_ ->
            {
              rp_trace = tr;
              rp_dispatch_us = sent -. admit;
              rp_queue_us = head -. sent;
              rp_solve_us = reply -. head;
              rp_serialize_us = done_ -. reply;
              rp_total_us = done_ -. admit;
            }
            :: acc
          | _ -> acc (* shed / failed requests lack the full set *))
        marks []
    in
    Ok (List.sort (fun a b -> compare a.rp_trace b.rp_trace) rows)

(* nearest-rank percentile over a sample list (not a histogram bound):
   the smallest sample at or above rank ceil(q * n) *)
let percentile samples q =
  match List.sort compare samples with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (Float.round (ceil (q *. float_of_int n))) in
    let rank = max 1 (min n rank) in
    List.nth sorted (rank - 1)

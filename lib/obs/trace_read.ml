(* Reader side of the trace pipeline: parse a Chrome trace-event JSON
   file (ours, or any tool's) and aggregate spans by self-time for
   `ocr trace summarize`.

   The JSON reader is a full recursive-descent parser — unlike
   Njson.parse_flat it accepts nested values, because trace events
   carry an args object — but stays ~80 lines by not streaming.  Every
   failure is an [Error] with a byte position, never an exception: the
   CLI turns it into a structured error line and a nonzero exit. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_exn (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          (* decode as a raw byte when in range, else '?' — span names
             are ASCII and this reader only aggregates by name *)
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
          | Some _ -> Buffer.add_char b '?'
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | c -> Buffer.add_char b c);
        advance ();
        go ()
      | '\255' -> fail "unterminated string"
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while num_char (peek ()) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}' in object"
        in
        members []
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else
        let rec elements acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']' in array"
        in
        elements []
    | '"' -> Str (string_lit ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_json s =
  match parse_exn s with v -> Ok v | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Span aggregation                                                    *)
(* ------------------------------------------------------------------ *)

type span_row = {
  sr_name : string;
  sr_count : int;
  sr_total_us : float; (* summed wall time of the spans *)
  sr_self_us : float;  (* total minus time in directly nested spans *)
}

let field o k = match o with Obj l -> List.assoc_opt k l | _ -> None

let num_field o k =
  match field o k with
  | Some (Num f) -> Some f
  | _ -> None

let str_field o k =
  match field o k with
  | Some (Str s) -> Some s
  | _ -> None

(* mutable per-open-span cell for the nesting scan *)
type open_span = {
  os_name : string;
  os_dur : float;
  os_end : float;
  mutable os_children : float;
}

let summarize contents =
  match parse_json contents with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok json -> (
    let events =
      match json with
      | Arr evs -> Ok evs (* the bare JSON-array trace format *)
      | Obj _ -> (
        match field json "traceEvents" with
        | Some (Arr evs) -> Ok evs
        | Some _ -> Error "\"traceEvents\" is not an array"
        | None -> Error "no \"traceEvents\" array")
      | _ -> Error "top level is neither an object nor an array"
    in
    match events with
    | Error e -> Error e
    | Ok events ->
      (* complete events only; metadata, instants and counters carry
         no duration.  Events missing a field are skipped, not fatal —
         third-party traces decorate events freely. *)
      let spans =
        List.filter_map
          (fun e ->
            match (str_field e "ph", str_field e "name") with
            | Some "X", Some name -> (
              match (num_field e "ts", num_field e "dur") with
              | Some ts, Some dur ->
                let tid =
                  match num_field e "tid" with Some t -> t | None -> 0.0
                in
                let pid =
                  match num_field e "pid" with Some p -> p | None -> 0.0
                in
                Some ((pid, tid), name, ts, dur)
              | _ -> None)
            | _ -> None)
          events
      in
      let by_name : (string, int ref * float ref * float ref) Hashtbl.t =
        Hashtbl.create 16
      in
      let account name dur self =
        let cnt, total, slf =
          match Hashtbl.find_opt by_name name with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0.0, ref 0.0) in
            Hashtbl.replace by_name name cell;
            cell
        in
        incr cnt;
        total := !total +. dur;
        slf := !slf +. self
      in
      (* per-track nesting: sort by start (longer spans first on a
         tie, so parents precede their children), then a stack scan
         attributes each span's duration to its innermost enclosure *)
      let tracks = Hashtbl.create 4 in
      List.iter
        (fun ((key, _, _, _) as sp) ->
          let l =
            match Hashtbl.find_opt tracks key with Some l -> l | None -> []
          in
          Hashtbl.replace tracks key (sp :: l))
        spans;
      Hashtbl.iter
        (fun _ track ->
          let track =
            List.sort
              (fun (_, _, ts1, d1) (_, _, ts2, d2) ->
                match compare ts1 ts2 with 0 -> compare d2 d1 | c -> c)
              track
          in
          let stack = ref [] in
          let close os =
            account os.os_name os.os_dur
              (Float.max 0.0 (os.os_dur -. os.os_children))
          in
          let rec pop_until ts =
            match !stack with
            | os :: rest when os.os_end <= ts ->
              close os;
              stack := rest;
              pop_until ts
            | _ -> ()
          in
          List.iter
            (fun (_, name, ts, dur) ->
              pop_until ts;
              (match !stack with
              | parent :: _ -> parent.os_children <- parent.os_children +. dur
              | [] -> ());
              stack :=
                { os_name = name; os_dur = dur; os_end = ts +. dur;
                  os_children = 0.0 }
                :: !stack)
            track;
          List.iter close !stack)
        tracks;
      let rows =
        Hashtbl.fold
          (fun name (cnt, total, slf) acc ->
            { sr_name = name; sr_count = !cnt; sr_total_us = !total;
              sr_self_us = !slf }
            :: acc)
          by_name []
      in
      Ok
        (List.sort
           (fun a b ->
             match compare b.sr_self_us a.sr_self_us with
             | 0 -> compare a.sr_name b.sr_name
             | c -> c)
           rows))

let summarize_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> summarize contents

(* Metrics registry: named counters, gauges, and log2-bucketed
   histograms.

   A registry is NOT thread-safe, on purpose: it follows the same
   per-domain-instances rule as Telemetry and Stats — each concurrent
   task records into its own registry (or its own metric cells), and
   the coordinator merges the shards at the join in task order, so the
   merged result is deterministic for every job count.  Registration
   (find-or-create by name) is an O(#metrics) scan over a handful of
   entries and is meant for setup paths; recording into an obtained
   cell is O(1) and allocation-free. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }

(* Bucket i of a histogram counts observations v with
   2^(i-1) < v <= 2^i (bucket 0: v <= 1); the last bucket is the
   catch-all.  62 buckets cover every finite latency this repo can
   measure. *)
let histogram_buckets = 62

type histogram = {
  h_name : string;
  h_counts : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
}

type item = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { mutable items : item list (* reverse creation order *) }

let create () = { items = [] }

let item_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let items t = List.rev t.items

let find t name =
  List.find_opt (fun it -> item_name it = name) t.items

let counter t name =
  match find t name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
    let c = { c_name = name; c_value = 0 } in
    t.items <- Counter c :: t.items;
    c

let gauge t name =
  match find t name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
  | None ->
    let g = { g_name = name; g_value = 0.0; g_set = false } in
    t.items <- Gauge g :: t.items;
    g

let histogram t name =
  match find t name with
  | Some (Histogram h) -> h
  | Some _ ->
    invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None ->
    let h =
      { h_name = name; h_counts = Array.make (histogram_buckets + 1) 0;
        h_count = 0; h_sum = 0.0; h_max = 0.0 }
    in
    t.items <- Histogram h :: t.items;
    h

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let counter_value c = c.c_value

let set g v =
  g.g_value <- v;
  g.g_set <- true

let gauge_value g = g.g_value

(* smallest bucket whose upper bound 2^i holds v; loop-only, so the
   hot path never boxes a float or calls frexp *)
let bucket_of v =
  if not (v > 1.0) then 0
  else begin
    let i = ref 0 and bound = ref 1.0 in
    while !i < histogram_buckets && v > !bound do
      i := !i + 1;
      bound := !bound *. 2.0
    done;
    !i
  end

let observe h v =
  let b = bucket_of v in
  h.h_counts.(b) <- h.h_counts.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v > h.h_max then h.h_max <- v

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_max h = h.h_max

let hist_mean h =
  if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

(* upper-bound estimate: the bucket boundary at or above quantile q *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let target =
      int_of_float (Float.round (q *. float_of_int h.h_count))
    in
    let target = max 1 (min h.h_count target) in
    let cum = ref 0 and b = ref 0 in
    (try
       for i = 0 to histogram_buckets do
         cum := !cum + h.h_counts.(i);
         if !cum >= target then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    2.0 ** float_of_int !b
  end

(* ------------------------------------------------------------------ *)
(* Deterministic shard merging                                         *)
(* ------------------------------------------------------------------ *)

let merge_into ~into src =
  List.iter
    (fun it ->
      match it with
      | Counter c -> add (counter into c.c_name) c.c_value
      | Gauge g -> if g.g_set then set (gauge into g.g_name) g.g_value
      | Histogram h ->
        let dst = histogram into h.h_name in
        Array.iteri
          (fun i n -> dst.h_counts.(i) <- dst.h_counts.(i) + n)
          h.h_counts;
        dst.h_count <- dst.h_count + h.h_count;
        dst.h_sum <- dst.h_sum +. h.h_sum;
        if h.h_max > dst.h_max then dst.h_max <- h.h_max)
    (items src)

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

(* Prometheus text exposition format, version 0.0.4: one # TYPE line
   per metric, histogram buckets as cumulative le-labelled counters
   with the mandatory +Inf bucket, _sum and _count. *)
let to_prometheus t =
  let b = Buffer.create 1024 in
  List.iter
    (fun it ->
      match it with
      | Counter c ->
        let n = Obs.prometheus_name c.c_name in
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
        Buffer.add_string b (Printf.sprintf "%s %d\n" n c.c_value)
      | Gauge g ->
        let n = Obs.prometheus_name g.g_name in
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
        Buffer.add_string b (Printf.sprintf "%s %g\n" n g.g_value)
      | Histogram h ->
        let n = Obs.prometheus_name h.h_name in
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
        let top = ref 0 in
        Array.iteri (fun i c -> if c > 0 then top := i) h.h_counts;
        let cum = ref 0 in
        for i = 0 to !top do
          cum := !cum + h.h_counts.(i);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%g\"} %d\n" n
               (2.0 ** float_of_int i)
               !cum)
        done;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.h_count);
        Buffer.add_string b (Printf.sprintf "%s_sum %g\n" n h.h_sum);
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.h_count))
    (items t);
  Buffer.contents b

let pp_summary ppf t =
  let first = ref true in
  List.iter
    (fun it ->
      if !first then first := false else Format.fprintf ppf "@,";
      match it with
      | Counter c -> Format.fprintf ppf "%s = %d" c.c_name c.c_value
      | Gauge g -> Format.fprintf ppf "%s = %g" g.g_name g.g_value
      | Histogram h ->
        Format.fprintf ppf
          "%s: count=%d mean=%.3f p50<=%g p99<=%g max=%.3f" h.h_name
          h.h_count (hist_mean h) (quantile h 0.5) (quantile h 0.99) h.h_max)
    (items t)

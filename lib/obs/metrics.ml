(* Metrics registry: named counters, gauges, and log2-bucketed
   histograms.

   A registry is NOT thread-safe, on purpose: it follows the same
   per-domain-instances rule as Telemetry and Stats — each concurrent
   task records into its own registry (or its own metric cells), and
   the coordinator merges the shards at the join in task order, so the
   merged result is deterministic for every job count.  Registration
   (find-or-create by name) is an O(#metrics) scan over a handful of
   entries and is meant for setup paths; recording into an obtained
   cell is O(1) and allocation-free. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float; mutable g_set : bool }

(* Bucket i of a histogram counts observations v with
   2^(i-1) < v <= 2^i (bucket 0: v <= 1); the last bucket is the
   catch-all.  62 buckets cover every finite latency this repo can
   measure. *)
let histogram_buckets = 62

type histogram = {
  h_name : string;
  h_counts : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
}

type item = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { mutable items : item list (* reverse creation order *) }

let create () = { items = [] }

let item_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let items t = List.rev t.items

let find t name =
  List.find_opt (fun it -> item_name it = name) t.items

let counter t name =
  match find t name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
    let c = { c_name = name; c_value = 0 } in
    t.items <- Counter c :: t.items;
    c

let gauge t name =
  match find t name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")
  | None ->
    let g = { g_name = name; g_value = 0.0; g_set = false } in
    t.items <- Gauge g :: t.items;
    g

let histogram t name =
  match find t name with
  | Some (Histogram h) -> h
  | Some _ ->
    invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")
  | None ->
    let h =
      { h_name = name; h_counts = Array.make (histogram_buckets + 1) 0;
        h_count = 0; h_sum = 0.0; h_max = 0.0 }
    in
    t.items <- Histogram h :: t.items;
    h

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let counter_value c = c.c_value

let set g v =
  g.g_value <- v;
  g.g_set <- true

let gauge_value g = g.g_value

(* smallest bucket whose upper bound 2^i holds v; loop-only, so the
   hot path never boxes a float or calls frexp *)
let bucket_of v =
  if not (v > 1.0) then 0
  else begin
    let i = ref 0 and bound = ref 1.0 in
    while !i < histogram_buckets && v > !bound do
      i := !i + 1;
      bound := !bound *. 2.0
    done;
    !i
  end

let observe h v =
  let b = bucket_of v in
  h.h_counts.(b) <- h.h_counts.(b) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v > h.h_max then h.h_max <- v

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_max h = h.h_max

let hist_mean h =
  if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

(* upper-bound estimate: the bucket boundary at or above quantile q *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let target =
      int_of_float (Float.round (q *. float_of_int h.h_count))
    in
    let target = max 1 (min h.h_count target) in
    let cum = ref 0 and b = ref 0 in
    (try
       for i = 0 to histogram_buckets do
         cum := !cum + h.h_counts.(i);
         if !cum >= target then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    2.0 ** float_of_int !b
  end

(* ------------------------------------------------------------------ *)
(* Deterministic shard merging                                         *)
(* ------------------------------------------------------------------ *)

let merge_into ~into src =
  List.iter
    (fun it ->
      match it with
      | Counter c -> add (counter into c.c_name) c.c_value
      | Gauge g -> if g.g_set then set (gauge into g.g_name) g.g_value
      | Histogram h ->
        let dst = histogram into h.h_name in
        Array.iteri
          (fun i n -> dst.h_counts.(i) <- dst.h_counts.(i) + n)
          h.h_counts;
        dst.h_count <- dst.h_count + h.h_count;
        dst.h_sum <- dst.h_sum +. h.h_sum;
        if h.h_max > dst.h_max then dst.h_max <- h.h_max)
    (items src)

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

(* Prometheus text exposition format, version 0.0.4: one # TYPE line
   per metric, histogram buckets as cumulative le-labelled counters
   with the mandatory +Inf bucket, _sum and _count.

   Metric names may carry a label part — everything from the first
   '{' on is emitted verbatim (labels must not contain spaces or
   commas inside values), only the base name is sanitized, and series
   sharing a base share one # TYPE line.  That is how the cluster
   router exports per-worker series (ocr_worker_up{worker="0"},
   ocr_queue_wait_ms{worker="0"}) from a label-less registry.  For a
   labeled histogram the le label is appended after the series labels
   on bucket lines (name_bucket{worker="0",le="1"}). *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (Obs.prometheus_name name, "")
  | Some i ->
    ( Obs.prometheus_name (String.sub name 0 i),
      String.sub name i (String.length name - i) )

let to_prometheus t =
  let b = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_line base kind =
    if not (Hashtbl.mem typed base) then begin
      Hashtbl.add typed base ();
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun it ->
      match it with
      | Counter c ->
        let base, labels = split_labels c.c_name in
        type_line base "counter";
        Buffer.add_string b
          (Printf.sprintf "%s%s %d\n" base labels c.c_value)
      | Gauge g ->
        let base, labels = split_labels g.g_name in
        type_line base "gauge";
        Buffer.add_string b (Printf.sprintf "%s%s %g\n" base labels g.g_value)
      | Histogram h ->
        let n, labels = split_labels h.h_name in
        type_line n "histogram";
        (* the le label goes last, after any series labels *)
        let with_le le =
          if labels = "" then Printf.sprintf "{le=\"%s\"}" le
          else
            Printf.sprintf "%s,le=\"%s\"}"
              (String.sub labels 0 (String.length labels - 1))
              le
        in
        let top = ref 0 in
        Array.iteri (fun i c -> if c > 0 then top := i) h.h_counts;
        let cum = ref 0 in
        for i = 0 to !top do
          cum := !cum + h.h_counts.(i);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" n
               (with_le (Printf.sprintf "%g" (2.0 ** float_of_int i)))
               !cum)
        done;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" n (with_le "+Inf") h.h_count);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %g\n" n labels h.h_sum);
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" n labels h.h_count))
    (items t);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Importing an exposition (the cluster's snapshot-merge entry point)  *)
(* ------------------------------------------------------------------ *)

(* Parses text produced by [to_prometheus] (same subset: # TYPE lines,
   space-free labels, log2 bucket boundaries) back into a registry, so
   a router can fold per-worker snapshots shipped as text into one
   cluster-wide registry with [merge_into].  Histogram max is not on
   the wire; it is restored as the upper bound of the top non-empty
   bucket. *)
let of_prometheus text =
  let t = create () in
  let kinds = Hashtbl.create 16 in
  (* base -> (le, cumulative) list ref, sum ref, count ref, cell *)
  let hists = Hashtbl.create 4 in
  let error = ref None in
  let fail lineno msg =
    if !error = None then
      error := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  let base_of name =
    match String.index_opt name '{' with
    | None -> name
    | Some i -> String.sub name 0 i
  in
  let chop name suffix =
    if Filename.check_suffix name suffix then
      Some (Filename.chop_suffix name suffix)
    else None
  in
  let hist_parts base =
    match Hashtbl.find_opt hists base with
    | Some parts -> parts
    | None ->
      let parts = (ref [], ref 0.0, ref 0, histogram t base) in
      Hashtbl.add hists base parts;
      parts
  in
  let labels_of name =
    match String.index_opt name '{' with
    | None -> ""
    | Some i -> String.sub name i (String.length name - i)
  in
  (* split a bucket line's label part into (series labels, le bound):
     "{worker=\"0\",le=\"1\"}" -> ("{worker=\"0\"}", 1.0).  Label
     values must not contain commas — the subset to_prometheus
     writes. *)
  let split_le labels lineno =
    if
      String.length labels < 2
      || labels.[0] <> '{'
      || labels.[String.length labels - 1] <> '}'
    then begin
      fail lineno "bucket line without labels";
      ("", infinity)
    end
    else begin
      let inner = String.sub labels 1 (String.length labels - 2) in
      let parts = String.split_on_char ',' inner in
      let is_le p =
        String.length p > 5
        && String.sub p 0 4 = {|le="|}
        && p.[String.length p - 1] = '"'
      in
      let le_parts, rest = List.partition is_le parts in
      match le_parts with
      | [ p ] ->
        let v = String.sub p 4 (String.length p - 5) in
        let le =
          if v = "+Inf" then infinity
          else
            match float_of_string_opt v with
            | Some f -> f
            | None ->
              fail lineno ("bad le value " ^ v);
              infinity
        in
        let rest_s =
          if rest = [] then "" else "{" ^ String.concat "," rest ^ "}"
        in
        (rest_s, le)
      | _ ->
        fail lineno ("no le label in " ^ labels);
        ("", infinity)
    end
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; base; kind ] -> Hashtbl.replace kinds base kind
        | _ -> () (* other comments are legal exposition *)
      end
      else
        match String.rindex_opt line ' ' with
        | None -> fail lineno "expected <name> <value>"
        | Some sp -> (
          let name = String.sub line 0 sp in
          let sval =
            String.sub line (sp + 1) (String.length line - sp - 1)
          in
          match float_of_string_opt sval with
          | None -> fail lineno ("bad value " ^ sval)
          | Some v -> (
            let base = base_of name in
            let hist_member suffix =
              match chop base suffix with
              | Some h when Hashtbl.find_opt kinds h = Some "histogram" ->
                Some h
              | _ -> None
            in
            match
              (hist_member "_bucket", hist_member "_sum", hist_member "_count")
            with
            | Some h, _, _ ->
              (* the histogram's registry key is base + series labels
                 (le stripped), so labeled families stay separate *)
              let rest, le = split_le (labels_of name) lineno in
              let buckets, _, _, _ = hist_parts (h ^ rest) in
              buckets := (le, int_of_float v) :: !buckets
            | _, Some h, _ ->
              let _, sum, _, _ = hist_parts (h ^ labels_of name) in
              sum := v
            | _, _, Some h ->
              let _, _, count, _ = hist_parts (h ^ labels_of name) in
              count := int_of_float v
            | None, None, None -> (
              match Hashtbl.find_opt kinds base with
              | Some "counter" -> add (counter t name) (int_of_float v)
              | Some "gauge" -> set (gauge t name) v
              | Some "histogram" ->
                fail lineno ("bare sample for histogram " ^ name)
              | Some k -> fail lineno ("unknown metric kind " ^ k)
              | None -> fail lineno ("no # TYPE for " ^ name)))))
    (String.split_on_char '\n' text);
  (* rebuild per-bucket counts from the cumulative le series *)
  Hashtbl.iter
    (fun base (buckets, sum, count, h) ->
      let finite =
        List.filter (fun (le, _) -> le <> infinity) !buckets
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let prev = ref 0 and top_cum = ref 0 in
      List.iter
        (fun (le, cum) ->
          let idx = bucket_of le in
          if cum < !prev then
            fail 0 (Printf.sprintf "non-monotone buckets for %s" base)
          else begin
            h.h_counts.(idx) <- h.h_counts.(idx) + (cum - !prev);
            if cum > !prev then h.h_max <- 2.0 ** float_of_int idx;
            prev := cum;
            top_cum := cum
          end)
        finite;
      if !count > !top_cum then
        (* +Inf strictly above the top finite bucket: catch-all *)
        h.h_counts.(histogram_buckets) <-
          h.h_counts.(histogram_buckets) + (!count - !top_cum);
      h.h_count <- !count;
      h.h_sum <- !sum)
    hists;
  match !error with
  | Some msg -> Error msg
  | None -> Ok t

let pp_summary ppf t =
  let first = ref true in
  List.iter
    (fun it ->
      if !first then first := false else Format.fprintf ppf "@,";
      match it with
      | Counter c -> Format.fprintf ppf "%s = %d" c.c_name c.c_value
      | Gauge g -> Format.fprintf ppf "%s = %g" g.g_name g.g_value
      | Histogram h ->
        Format.fprintf ppf
          "%s: count=%d mean=%.3f p50<=%g p99<=%g max=%.3f" h.h_name
          h.h_count (hist_mean h) (quantile h 0.5) (quantile h 0.99) h.h_max)
    (items t)

(** Global observability switchboard: the enabled flag, the monotonic
    clock, interned event names, and the escaping helpers shared by
    every exporter.  `ocr_obs` sits below every other library of the
    repo — see docs/OBS.md for the design rules. *)

external now_ns : unit -> int = "ocr_obs_clock_ns" [@@noalloc]
(** Monotonic nanoseconds since an arbitrary epoch, allocation-free. *)

val enabled_flag : bool ref
(** The raw hot-path check.  Instrumented loops guard their recording
    with [if !Obs.enabled_flag then ...] so the disabled path compiles
    to one load and branch; everything else should use {!enabled}. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val intern : string -> int
(** Intern an event/span name, returning its stable small-int id.
    Idempotent; thread-safe; meant for module-initialization time so
    hot paths only touch ints. *)

val name_of : int -> string
(** Inverse of {!intern} (["?<id>"] for unknown ids). *)

val json_string : string -> string
(** JSON string literal with correct escaping of quotes, backslashes
    and control bytes (unlike OCaml's [%S]). *)

val csv_field : string -> string
(** RFC 4180 quoting: fields containing commas, quotes or newlines
    are quoted with inner quotes doubled; other fields pass
    unchanged. *)

val prometheus_name : string -> string
(** Sanitize a string into a valid Prometheus metric name. *)

(** The cluster router: fans the serve/stream protocols out over N
    shared-nothing worker processes.

    The router re-execs the current binary in the hidden
    [cluster-worker] mode N times, holding a pipe pair per worker, and
    multiplexes one client channel (stdin/stdout for [ocr cluster])
    against all of them with [select]:

    - {b one-shot solve requests} ([<graph-file> key=value ...] lines)
      are routed by the SplitMix64 structural fingerprint of their
      graph (cached per path, stat-validated) through the rendezvous
      {!Shard_map}, so identical graphs land on the worker whose LRU
      already holds them, and worker loss reshuffles only the dead
      worker's keys;
    - {b dyn-session streams} ([{"op":"open","session":...,...}], then
      stream-protocol lines carrying the [session] field) are sticky:
      the session is pinned to one worker at open time and its
      journaled overlay stays worker-local;
    - {b robustness}: per-worker bounded in-flight queues with
      admission control ([{"ok":false,"err":"overloaded",...}] when a
      queue is full), a per-worker service timeout that SIGKILLs a hung
      worker, EOF-based crash detection, automatic respawn, and
      dyn-session recovery on the replacement worker by replaying the
      router's copy of each session's update journal (the same journal
      lines [ocr stream --replay] accepts);
    - {b observability}: the [metrics] line broadcasts to all up
      workers, parses each reply with {!Metrics.of_prometheus}, merges
      the shards deterministically (router registry first, then
      workers in id order) and answers one cluster-wide Prometheus
      exposition including [ocr_worker_up{worker="i"}], queue-depth
      and restart-count series plus the router's always-on per-worker
      latency histograms [ocr_queue_wait_ms{worker="i"}] and
      [ocr_request_total_ms{worker="i"}]; [status] answers one flat
      JSON line with per-worker pid/up/queue/restarts.  With
      [trace_dir] set the router also records distributed traces and
      with [access_log] a structured NDJSON access log (see
      {!type:config}).

    Responses are matched to requests FIFO per worker (workers are
    serial); solve responses are rewritten to the router's global
    request id, session replies already carry their session id. *)

type config = {
  exe : string;  (** binary to re-exec (the running [ocr]) *)
  workers : int;
  jobs : int;  (** per-worker domain parallelism *)
  cache_size : int;  (** total LRU entries, divided across workers *)
  queue_depth : int;  (** per-worker in-flight bound; excess is shed *)
  request_timeout_ms : float;
      (** max service time at a worker's queue head before the worker
          is presumed hung and SIGKILLed ([<= 0] disables) *)
  drain_timeout_ms : float;  (** shutdown grace for in-flight work *)
  wall : bool;  (** append wall times to solve responses *)
  metrics_file : string option;
      (** write the final aggregated exposition here on shutdown *)
  trace_dir : string option;
      (** enable cross-process request tracing: the router assigns each
          request a trace id (its global request id), records its own
          phase spans under it, propagates it to the worker as a
          [trace=<id>] key on the forwarded line, and on shutdown writes
          [router.json] plus one [worker-<i>.json] per worker into this
          directory — per-process Chrome trace files that
          [ocr trace merge] aligns into one timeline using the
          clock-offset handshake each worker answers at spawn *)
  access_log : string option;
      (** append one NDJSON line per completed/shed request (trace id,
          worker, shard key, cache hit, queue depth at admission,
          per-phase ms, status); an unusable path or failed write is
          logged and the log disabled, never the router *)
}

val config :
  ?exe:string -> ?jobs:int -> ?cache_size:int -> ?queue_depth:int ->
  ?request_timeout_ms:float -> ?drain_timeout_ms:float -> ?wall:bool ->
  ?metrics_file:string -> ?trace_dir:string -> ?access_log:string ->
  workers:int -> unit -> config
(** Defaults: [exe = Sys.executable_name], [jobs = 1],
    [cache_size = 256] (total), [queue_depth = 64],
    [request_timeout_ms = 30_000], [drain_timeout_ms = 5_000],
    [wall = false], no metrics file, tracing and access log off.
    @raise Invalid_argument if [workers < 1]. *)

val run : config -> Unix.file_descr -> out_channel -> unit
(** Serve the client on the given fd (read side) / channel (write
    side) until [quit] or EOF, then drain and shut the workers down.
    Ignores SIGPIPE for the whole process. *)

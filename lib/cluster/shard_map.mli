(** Consistent request sharding across cluster workers.

    Rendezvous (highest-random-weight) hashing: a key is assigned to
    the up worker with the largest SplitMix64 score of
    [(key, worker)], so

    - assignment is deterministic — same key, same up-set, same
      worker, in every process that computes it;
    - worker loss reshuffles {e minimally}: keys assigned to a still-up
      worker keep their assignment exactly, only the dead worker's
      keys move (and return to it when it comes back up);
    - distribution is balanced to within the usual 1/√k hash variance
      (property-tested in [test_cluster.ml]).

    The router shards one-shot solve requests by the structural
    fingerprint of their graph and pins dyn sessions by their session
    id at open time (stickiness is the stored assignment; the map only
    picks the initial owner). *)

type t

val create : workers:int -> t
(** [workers >= 1] workers, all initially up.
    @raise Invalid_argument otherwise. *)

val workers : t -> int
val up_count : t -> int
val is_up : t -> int -> bool
val set_up : t -> int -> bool -> unit

val assign : t -> int -> int option
(** Owner of an (already hashed) integer key among the up workers;
    [None] iff every worker is down. *)

val assign_string : t -> string -> int option
(** {!assign} of {!hash_string}[ s] (for session ids and path
    fallbacks). *)

val hash_string : string -> int
(** SplitMix64-absorbed hash of a string, suitable as an {!assign}
    key. *)

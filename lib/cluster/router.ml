(* The cluster router.  Single-threaded select loop: one client
   channel in, N worker pipe pairs out.  Workers are serial and answer
   exactly one line per request line, so responses are matched FIFO
   per worker; everything the router itself originates (sheds,
   dead-worker errors) is a structured line, and a worker death must
   never take the router down with it. *)

type config = {
  exe : string;
  workers : int;
  jobs : int;
  cache_size : int;
  queue_depth : int;
  request_timeout_ms : float;
  drain_timeout_ms : float;
  wall : bool;
  metrics_file : string option;
  trace_dir : string option;
  access_log : string option;
}

let config ?(exe = Sys.executable_name) ?(jobs = 1) ?(cache_size = 256)
    ?(queue_depth = 64) ?(request_timeout_ms = 30_000.)
    ?(drain_timeout_ms = 5_000.) ?(wall = false) ?metrics_file ?trace_dir
    ?access_log ~workers () =
  if workers < 1 then invalid_arg "Router.config: workers must be >= 1";
  {
    exe;
    workers;
    jobs;
    cache_size;
    queue_depth;
    request_timeout_ms;
    drain_timeout_ms;
    wall;
    metrics_file;
    trace_dir;
    access_log;
  }

exception Worker_down of int

(* ------------------------------------------------------------------ *)
(* state *)

type metrics_target = To_client | To_file of string

type collector = {
  mutable awaiting : int;
  mutable parts : (int * Metrics.t) list;
  mutable finished : bool;
  target : metrics_target;
}

(* everything the router knows about one in-flight solve: identity for
   the reply rewrite, the routing decision for the access log, and the
   phase clock (monotonic ns, the same clock the trace records use, so
   access-log and trace attribution agree by construction) *)
type solve_meta = {
  sm_gid : int;  (* global request id; rewrite req=<local> on reply *)
  sm_trace : int;  (* trace id propagated to the worker; 0 = tracing off *)
  sm_worker : int;
  sm_key : int;  (* shard key (graph fingerprint hash) *)
  sm_queue_at : int;  (* worker queue depth at admission *)
  sm_admit_ns : int;
  mutable sm_sent_ns : int;
  mutable sm_head_ns : int;  (* when the request reached the queue head *)
}

(* what the FIFO head of a worker's queue is owed *)
type pending_kind =
  | Solve of solve_meta
  | Session_op of { sid : string; line : string; journal : bool }
  | Open_op of string
  | Close_op of string
  | Replay  (* recovery traffic: reply discarded, never shed *)
  | Metrics_req of collector
  | Ping
  | Sync  (* clock-offset handshake at spawn: reply discarded *)

type pending = { kind : pending_kind; mutable since : float }

type worker = {
  w_id : int;
  mutable pid : int;
  mutable to_w : Unix.file_descr;  (* router -> worker stdin *)
  mutable from_w : Unix.file_descr;  (* worker stdout -> router *)
  rbuf : Buffer.t;  (* partial response line *)
  queue : pending Queue.t;
  mutable restarts : int;
  mutable fail_streak : int;  (* respawns without any response since *)
  mutable last_ping : float;
}

type session = {
  s_id : string;
  s_worker : int;  (* sticky: sessions are pinned by worker index *)
  s_open_line : string;
  mutable s_journal : string list;  (* acked update lines, newest first *)
  mutable s_opened : bool;
}

type t = {
  cfg : config;
  per_worker_cache : int;
  map : Shard_map.t;
  ws : worker array;
  sessions : (string, session) Hashtbl.t;
  fp_cache : (string, float * int * int) Hashtbl.t;
      (* path -> (mtime, size, fingerprint hash) *)
  client_oc : out_channel;
  mutable next_req : int;
  mutable requests : int;
  mutable shed : int;
  mutable file_collector : collector option;
  mutable stopping : bool;
  tracing : bool;
  mutable access : out_channel option;
      (* NDJSON access log; a write failure disables it, never the router *)
  lat : Metrics.t;
      (* always-on per-worker latency histograms, merged into every
         aggregated exposition *)
}

let now () = Unix.gettimeofday ()
let max_fail_streak = 5
let ping_interval_s = 2.0

(* router-side phase markers, tagged with the request's trace id.  The
   rt.request async span brackets the whole router residency; the five
   instants are the phase boundaries `ocr trace summarize` attributes
   between (dispatch = admit->sent, queue = sent->head, solve =
   head->reply, serialize = reply->done). *)
let sp_request = Obs.intern "rt.request"
let sp_admit = Obs.intern "rt.admit"
let sp_sent = Obs.intern "rt.sent"
let sp_head = Obs.intern "rt.head"
let sp_reply = Obs.intern "rt.reply"
let sp_done = Obs.intern "rt.done"
let sp_replay = Obs.intern "rt.replay"

let out_line t line =
  output_string t.client_oc line;
  output_char t.client_oc '\n';
  flush t.client_oc

let log_err fmt = Printf.ksprintf prerr_endline ("ocr cluster: " ^^ fmt)

let contains line pat =
  let n = String.length line and k = String.length pat in
  let rec go i = i + k <= n && (String.sub line i k = pat || go (i + 1)) in
  go 0

(* update replies are flat objects, so a literal "ok":true can only
   be the status field *)
let contains_ok_true line = contains line "\"ok\":true"

(* ------------------------------------------------------------------ *)
(* access log *)

let ms_between a_ns b_ns = float_of_int (b_ns - a_ns) /. 1_000_000.0

let access_write t line =
  match t.access with
  | None -> ()
  | Some oc -> (
    try
      output_string oc line;
      output_char oc '\n';
      flush oc
    with Sys_error e ->
      (* same contract as the metrics_file guard: log and disable,
         the router stays up *)
      t.access <- None;
      log_err "access log write failed, disabling it: %s" e)

(* one line per completed solve; phase fields only where the phases
   actually ran, so shed/failed requests stay greppable by status *)
let access_solve_line sm ~status ~cached ~reply_ns ~done_ns =
  Njson.obj
    [
      ("trace", string_of_int sm.sm_trace);
      ("req", string_of_int sm.sm_gid);
      ("worker", string_of_int sm.sm_worker);
      ("key", string_of_int sm.sm_key);
      ("cache", if cached then "true" else "false");
      ("queue", string_of_int sm.sm_queue_at);
      ("dispatch_ms", Njson.float_lit (ms_between sm.sm_admit_ns sm.sm_sent_ns));
      ("queue_ms", Njson.float_lit (ms_between sm.sm_sent_ns sm.sm_head_ns));
      ("solve_ms", Njson.float_lit (ms_between sm.sm_head_ns reply_ns));
      ("serialize_ms", Njson.float_lit (ms_between reply_ns done_ns));
      ("total_ms", Njson.float_lit (ms_between sm.sm_admit_ns done_ns));
      ("status", Njson.escape status);
    ]

let access_fail_line ~trace ~gid ~worker ~key ~queue ~status =
  Njson.obj
    [
      ("trace", string_of_int trace);
      ("req", string_of_int gid);
      ("worker", string_of_int worker);
      ("key", string_of_int key);
      ("queue", string_of_int queue);
      ("status", Njson.escape status);
    ]

let session_err sid msg =
  Njson.obj
    [ ("session", Njson.escape sid); ("ok", "false"); ("err", Njson.escape msg) ]

(* is this stream op one that mutates the overlay (and so must be
   replayed onto a replacement worker)? *)
let is_update_op = function
  | "set_weight" | "set_transit" | "add_arc" | "remove_arc" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* spawning *)

let spawn_into t w =
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let argv =
    Array.of_list
      ([
         t.cfg.exe;
         "cluster-worker";
         "--worker-id";
         string_of_int w.w_id;
         "--jobs";
         string_of_int t.cfg.jobs;
         "--cache-size";
         string_of_int t.per_worker_cache;
       ]
      @ (if t.cfg.wall then [ "--wall" ] else [])
      @
      match t.cfg.trace_dir with
      | Some dir ->
        (* a respawned worker rewrites the same file: the trace of the
           incarnation that survives to shutdown *)
        [ "--trace";
          Filename.concat dir (Printf.sprintf "worker-%d.json" w.w_id) ]
      | None -> [])
  in
  (* create_process dup2s the child ends onto stdin/stdout, which
     clears their cloexec; every other pipe fd vanishes at exec *)
  let pid = Unix.create_process t.cfg.exe argv req_r resp_w Unix.stderr in
  Unix.close req_r;
  Unix.close resp_w;
  Unix.set_nonblock resp_r;
  w.pid <- pid;
  w.to_w <- req_w;
  w.from_w <- resp_r;
  Buffer.clear w.rbuf;
  Queue.clear w.queue;
  w.last_ping <- now ()

(* ------------------------------------------------------------------ *)
(* request side *)

let send_to_worker w kind line =
  Queue.add { kind; since = now () } w.queue;
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  try
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write w.to_w payload !off (len - !off)
    done
  with Unix.Unix_error _ -> raise (Worker_down w.w_id)

(* clock-offset handshake, first line after every (re)spawn: the
   worker answers one line and stamps router_now_ns - its_now_ns into
   its trace metadata, so the merger can put every per-process file on
   the router's clock.  (On one host CLOCK_MONOTONIC is system-wide,
   so the measured offset is ~the one-way pipe latency — the handshake
   is what makes the files honest about it.) *)
let sync_worker w =
  try send_to_worker w Sync (Printf.sprintf "sync %d" (Obs.now_ns ()))
  with Worker_down _ -> () (* EOF detection will reap it *)

(* fingerprint-hash routing for one-shot solves: cached per path and
   validated against (mtime, size); unreadable paths hash the path
   string instead and the worker produces the proper error line *)
let solve_key t path =
  match Unix.stat path with
  | exception Unix.Unix_error _ -> Shard_map.hash_string path
  | st -> (
    let mt = st.Unix.st_mtime and sz = st.Unix.st_size in
    match Hashtbl.find_opt t.fp_cache path with
    | Some (mt', sz', h) when mt' = mt && sz' = sz -> h
    | _ -> (
      match Graph_io.load path with
      | exception _ -> Shard_map.hash_string path
      | g ->
        let h = Fingerprint.hash (Fingerprint.of_graph g) in
        Hashtbl.replace t.fp_cache path (mt, sz, h);
        h))

(* ------------------------------------------------------------------ *)
(* aggregated observability *)

let router_registry t =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "ocr_router_requests_total") t.requests;
  Metrics.add (Metrics.counter m "ocr_router_shed_total") t.shed;
  Metrics.set
    (Metrics.gauge m "ocr_cluster_workers")
    (float_of_int (Array.length t.ws));
  Metrics.set
    (Metrics.gauge m "ocr_cluster_workers_up")
    (float_of_int (Shard_map.up_count t.map));
  Metrics.set
    (Metrics.gauge m "ocr_cluster_sessions")
    (float_of_int (Hashtbl.length t.sessions));
  Metrics.add
    (Metrics.counter m "ocr_worker_restarts_total")
    (Array.fold_left (fun n w -> n + w.restarts) 0 t.ws);
  (* one family at a time, so samples of a family stay adjacent *)
  Array.iter
    (fun w ->
      Metrics.set
        (Metrics.gauge m (Printf.sprintf "ocr_worker_up{worker=\"%d\"}" w.w_id))
        (if Shard_map.is_up t.map w.w_id then 1. else 0.))
    t.ws;
  Array.iter
    (fun w ->
      Metrics.set
        (Metrics.gauge m
           (Printf.sprintf "ocr_worker_queue_depth{worker=\"%d\"}" w.w_id))
        (float_of_int (Queue.length w.queue)))
    t.ws;
  Array.iter
    (fun w ->
      Metrics.add
        (Metrics.counter m
           (Printf.sprintf "ocr_worker_restarts_total{worker=\"%d\"}" w.w_id))
        w.restarts)
    t.ws;
  (* per-worker latency attribution (queue wait and client-visible
     total per solve), recorded whether or not tracing is on *)
  Metrics.merge_into ~into:m t.lat;
  m

let queue_wait_hist t wi =
  Metrics.histogram t.lat
    (Printf.sprintf "ocr_queue_wait_ms{worker=\"%d\"}" wi)

let request_total_hist t wi =
  Metrics.histogram t.lat
    (Printf.sprintf "ocr_request_total_ms{worker=\"%d\"}" wi)

let finish_collection t c =
  if not c.finished then begin
    c.finished <- true;
    if t.file_collector == Some c then t.file_collector <- None;
    let m = router_registry t in
    List.iter
      (fun (_, part) -> Metrics.merge_into ~into:m part)
      (List.sort (fun (a, _) (b, _) -> compare a b) c.parts);
    let text = Metrics.to_prometheus m in
    match c.target with
    | To_client ->
      output_string t.client_oc text;
      flush t.client_oc
    | To_file path -> (
      try
        let oc = open_out path in
        output_string oc text;
        close_out oc
      with Sys_error e -> log_err "cannot write metrics file: %s" e)
  end

(* ------------------------------------------------------------------ *)
(* crash handling: flush in-flight with structured errors, respawn,
   replay sticky sessions from the router's journal *)

let rec handle_worker_down t w =
  if Shard_map.is_up t.map w.w_id then begin
    Shard_map.set_up t.map w.w_id false;
    log_err "worker %d (pid %d) down; failing %d in-flight request(s)" w.w_id
      w.pid (Queue.length w.queue);
    Queue.iter (fun p -> fail_pending t p) w.queue;
    Queue.clear w.queue;
    Buffer.clear w.rbuf;
    (try Unix.close w.to_w with Unix.Unix_error _ -> ());
    (try Unix.close w.from_w with Unix.Unix_error _ -> ());
    (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
    if not t.stopping then respawn t w
  end

and fail_pending t p =
  match p.kind with
  | Solve sm ->
    out_line t
      (Printf.sprintf "{\"ok\":false,\"err\":\"worker died\",\"req\":%d}"
         sm.sm_gid);
    if sm.sm_trace <> 0 then begin
      Trace.instant_id sp_done sm.sm_trace;
      Trace.end_span_id sp_request sm.sm_trace
    end;
    access_write t
      (access_fail_line ~trace:sm.sm_trace ~gid:sm.sm_gid
         ~worker:sm.sm_worker ~key:sm.sm_key ~queue:sm.sm_queue_at
         ~status:"worker died")
  | Session_op { sid; _ } -> out_line t (session_err sid "worker died")
  | Open_op sid ->
    Hashtbl.remove t.sessions sid;
    out_line t (session_err sid "worker died")
  | Close_op sid ->
    Hashtbl.remove t.sessions sid;
    out_line t (session_err sid "worker died")
  | Replay -> ()
  | Ping -> ()
  | Sync -> ()
  | Metrics_req c ->
    c.awaiting <- c.awaiting - 1;
    if c.awaiting <= 0 then finish_collection t c

and respawn t w =
  if w.fail_streak >= max_fail_streak then begin
    log_err "worker %d failed %d times in a row, leaving it down" w.w_id
      w.fail_streak;
    drop_sessions_of t w.w_id
  end
  else begin
    w.restarts <- w.restarts + 1;
    w.fail_streak <- w.fail_streak + 1;
    match spawn_into t w with
    | exception e ->
      log_err "respawn of worker %d failed: %s" w.w_id (Printexc.to_string e);
      drop_sessions_of t w.w_id
    | () ->
      Shard_map.set_up t.map w.w_id true;
      log_err "worker %d respawned as pid %d" w.w_id w.pid;
      sync_worker w;
      replay_sessions t w
  end

and drop_sessions_of t w_id =
  let doomed =
    Hashtbl.fold
      (fun sid s acc -> if s.s_worker = w_id then sid :: acc else acc)
      t.sessions []
  in
  List.iter (Hashtbl.remove t.sessions) doomed

and replay_sessions t w =
  let mine =
    Hashtbl.fold
      (fun _ s acc ->
        if s.s_worker = w.w_id && s.s_opened then s :: acc else acc)
      t.sessions []
    |> List.sort (fun a b -> compare a.s_id b.s_id)
  in
  Trace.begin_span sp_replay;
  (try
     List.iter
       (fun s ->
         send_to_worker w Replay s.s_open_line;
         List.iter
           (fun line -> send_to_worker w Replay line)
           (List.rev s.s_journal))
       mine
   with Worker_down _ -> handle_worker_down t w);
  Trace.end_span sp_replay

(* a send that survives the target dying under it *)
let forward t w kind line =
  try send_to_worker w kind line
  with Worker_down _ -> handle_worker_down t w

(* ------------------------------------------------------------------ *)
(* response side *)

let rewrite_req gid line =
  if String.length line >= 4 && String.sub line 0 4 = "req=" then begin
    let i = ref 4 in
    while !i < String.length line && line.[!i] >= '0' && line.[!i] <= '9' do
      incr i
    done;
    "req=" ^ string_of_int gid ^ String.sub line !i (String.length line - !i)
  end
  else line

let process_response t w line =
  w.fail_streak <- 0;
  match Queue.take_opt w.queue with
  | None -> log_err "unexpected line from worker %d: %s" w.w_id line
  | Some p -> (
    (* the next request's service clock starts when it reaches the head *)
    (match Queue.peek_opt w.queue with
    | Some q -> (
      q.since <- now ();
      match q.kind with
      | Solve sm ->
        sm.sm_head_ns <- Obs.now_ns ();
        if sm.sm_trace <> 0 then Trace.instant_id sp_head sm.sm_trace
      | _ -> ())
    | None -> ());
    match p.kind with
    | Solve sm ->
      let reply_ns = Obs.now_ns () in
      if sm.sm_trace <> 0 then Trace.instant_id sp_reply sm.sm_trace;
      out_line t (rewrite_req sm.sm_gid line);
      let done_ns = Obs.now_ns () in
      if sm.sm_trace <> 0 then begin
        Trace.instant_id sp_done sm.sm_trace;
        Trace.end_span_id sp_request sm.sm_trace
      end;
      Metrics.observe (queue_wait_hist t sm.sm_worker)
        (ms_between sm.sm_sent_ns sm.sm_head_ns);
      Metrics.observe (request_total_hist t sm.sm_worker)
        (ms_between sm.sm_admit_ns done_ns);
      if t.access <> None then
        access_write t
          (access_solve_line sm
             ~status:(if contains line "status=ok" then "ok" else "error")
             ~cached:(contains line "cached=true")
             ~reply_ns ~done_ns)
    | Session_op { sid; line = req; journal } -> (
      out_line t line;
      if journal && contains_ok_true line then
        match Hashtbl.find_opt t.sessions sid with
        | Some s -> s.s_journal <- req :: s.s_journal
        | None -> ())
    | Open_op sid -> (
      out_line t line;
      match Hashtbl.find_opt t.sessions sid with
      | Some s when contains_ok_true line -> s.s_opened <- true
      | Some _ -> Hashtbl.remove t.sessions sid
      | None -> ())
    | Close_op sid ->
      out_line t line;
      Hashtbl.remove t.sessions sid
    | Replay -> ()
    | Ping -> ()
    | Sync -> ()
    | Metrics_req c ->
      (match Njson.parse_flat line with
      | Ok fields -> (
        match Njson.field_string fields "metrics" with
        | Some text -> (
          match Metrics.of_prometheus text with
          | Ok m -> c.parts <- (w.w_id, m) :: c.parts
          | Error e -> log_err "bad metrics from worker %d: %s" w.w_id e)
        | None -> log_err "metrics reply without payload from worker %d" w.w_id)
      | Error e -> log_err "bad metrics reply from worker %d: %s" w.w_id e);
      c.awaiting <- c.awaiting - 1;
      if c.awaiting <= 0 then finish_collection t c)

(* pull every complete line out of the worker's read buffer *)
let drain_lines t w =
  let again = ref true in
  while !again do
    let s = Buffer.contents w.rbuf in
    match String.index_opt s '\n' with
    | None -> again := false
    | Some i ->
      Buffer.clear w.rbuf;
      Buffer.add_substring w.rbuf s (i + 1) (String.length s - i - 1);
      process_response t w (String.sub s 0 i)
  done

let read_buf = Bytes.create 65536

let handle_worker_readable t w =
  match Unix.read w.from_w read_buf 0 (Bytes.length read_buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> handle_worker_down t w
  | 0 -> handle_worker_down t w
  | n ->
    Buffer.add_subbytes w.rbuf read_buf 0 n;
    drain_lines t w

(* ------------------------------------------------------------------ *)
(* client side *)

let status_line t =
  let b = Buffer.create 128 in
  Printf.bprintf b
    "{\"ok\":true,\"workers\":%d,\"up\":%d,\"sessions\":%d,\"requests\":%d,\"shed\":%d"
    (Array.length t.ws) (Shard_map.up_count t.map)
    (Hashtbl.length t.sessions) t.requests t.shed;
  Array.iter
    (fun w ->
      Printf.bprintf b
        ",\"pid%d\":%d,\"up%d\":%b,\"queue%d\":%d,\"restarts%d\":%d" w.w_id
        w.pid w.w_id
        (Shard_map.is_up t.map w.w_id)
        w.w_id (Queue.length w.queue) w.w_id w.restarts)
    t.ws;
  Buffer.add_char b '}';
  Buffer.contents b

let start_metrics t target =
  let up =
    Array.to_list t.ws
    |> List.filter (fun w -> Shard_map.is_up t.map w.w_id)
  in
  let c =
    { awaiting = List.length up; parts = []; finished = false; target }
  in
  (match target with To_file _ -> t.file_collector <- Some c | To_client -> ());
  if c.awaiting = 0 then finish_collection t c
  else List.iter (fun w -> forward t w (Metrics_req c) "metrics") up

let queue_full t w = Queue.length w.queue >= t.cfg.queue_depth

let handle_solve_line t line =
  t.requests <- t.requests + 1;
  t.next_req <- t.next_req + 1;
  let gid = t.next_req in
  let admit_ns = Obs.now_ns () in
  (* the trace id is the global request id: unique per request, and
     greppable straight back to the client's req= field *)
  let trace = if t.tracing then gid else 0 in
  if trace <> 0 then begin
    Trace.begin_span_id sp_request trace;
    Trace.instant_id sp_admit trace
  end;
  let key =
    match Request.parse_spec line with
    | Ok spec -> solve_key t spec.Request.path
    | Error _ -> Shard_map.hash_string line
  in
  match Shard_map.assign t.map key with
  | None ->
    out_line t
      (Printf.sprintf "{\"ok\":false,\"err\":\"no workers up\",\"req\":%d}" gid);
    if trace <> 0 then begin
      Trace.instant_id sp_done trace;
      Trace.end_span_id sp_request trace
    end;
    access_write t
      (access_fail_line ~trace ~gid ~worker:(-1) ~key ~queue:0
         ~status:"no workers up")
  | Some wi ->
    let w = t.ws.(wi) in
    if queue_full t w then begin
      t.shed <- t.shed + 1;
      out_line t
        (Printf.sprintf "{\"ok\":false,\"err\":\"overloaded\",\"req\":%d}" gid);
      if trace <> 0 then begin
        Trace.instant_id sp_done trace;
        Trace.end_span_id sp_request trace
      end;
      access_write t
        (access_fail_line ~trace ~gid ~worker:wi ~key
           ~queue:(Queue.length w.queue) ~status:"overloaded")
    end
    else begin
      let sm =
        {
          sm_gid = gid;
          sm_trace = trace;
          sm_worker = wi;
          sm_key = key;
          sm_queue_at = Queue.length w.queue;
          sm_admit_ns = admit_ns;
          sm_sent_ns = admit_ns;
          sm_head_ns = admit_ns;
        }
      in
      let at_head = Queue.is_empty w.queue in
      (* context propagation: one extra key=value token, absent when
         tracing is off, ignored-but-parsed by any engine — old
         workers and clients see byte-identical traffic without it *)
      let line =
        if trace <> 0 then Printf.sprintf "%s trace=%d" line trace else line
      in
      match send_to_worker w (Solve sm) line with
      | exception Worker_down _ -> handle_worker_down t w
      | () ->
        let sent_ns = Obs.now_ns () in
        sm.sm_sent_ns <- sent_ns;
        if trace <> 0 then Trace.instant_id sp_sent trace;
        if at_head then begin
          sm.sm_head_ns <- sent_ns;
          if trace <> 0 then Trace.instant_id sp_head trace
        end
    end

let handle_session_line t line =
  match Njson.parse_flat line with
  | Error e -> out_line t (Dyn_protocol.error_line ("bad json: " ^ e))
  | Ok fields -> (
    let sid = Njson.field_string fields "session" in
    match (Njson.field_string fields "op", sid) with
    | None, _ -> out_line t (Dyn_protocol.error_line "missing string field \"op\"")
    | Some "quit", None -> t.stopping <- true
    | Some "open", None ->
      out_line t (Dyn_protocol.error_line "open: missing session field")
    | Some "open", Some sid -> (
      t.requests <- t.requests + 1;
      if Hashtbl.mem t.sessions sid then
        out_line t (session_err sid ("session already open: " ^ sid))
      else
        match Shard_map.assign_string t.map sid with
        | None -> out_line t (session_err sid "no workers up")
        | Some wi ->
          let w = t.ws.(wi) in
          if queue_full t w then begin
            t.shed <- t.shed + 1;
            out_line t (session_err sid "overloaded")
          end
          else begin
            Hashtbl.replace t.sessions sid
              {
                s_id = sid;
                s_worker = wi;
                s_open_line = line;
                s_journal = [];
                s_opened = false;
              };
            forward t w (Open_op sid) line
          end)
    | Some _, None ->
      out_line t (Dyn_protocol.error_line "missing session field")
    | Some op, Some sid -> (
      t.requests <- t.requests + 1;
      match Hashtbl.find_opt t.sessions sid with
      | None -> out_line t (session_err sid ("unknown session: " ^ sid))
      | Some s ->
        let w = t.ws.(s.s_worker) in
        if not (Shard_map.is_up t.map s.s_worker) then
          out_line t (session_err sid "worker down")
        else if queue_full t w then begin
          t.shed <- t.shed + 1;
          out_line t (session_err sid "overloaded")
        end
        else
          let kind =
            if op = "close" || op = "quit" then Close_op sid
            else Session_op { sid; line; journal = is_update_op op }
          in
          forward t w kind line))

let handle_client_line t raw =
  let line = String.trim raw in
  if line = "" || line.[0] = '#' then ()
  else if line = "quit" then t.stopping <- true
  else if line = "status" then out_line t (status_line t)
  else if line = "metrics" then start_metrics t To_client
  else if line.[0] = '{' then handle_session_line t line
  else handle_solve_line t line

(* ------------------------------------------------------------------ *)
(* the select loop *)

let check_timeouts t =
  let tick = now () in
  if t.cfg.request_timeout_ms > 0. then begin
    let limit = t.cfg.request_timeout_ms /. 1000. in
    Array.iter
      (fun w ->
        if Shard_map.is_up t.map w.w_id then
          match Queue.peek_opt w.queue with
          | Some p when tick -. p.since > limit ->
            log_err "worker %d exceeded %.0fms at queue head, killing it"
              w.w_id t.cfg.request_timeout_ms;
            handle_worker_down t w
          | _ -> ())
      t.ws
  end;
  (* proactive liveness: ping idle workers so a wedged one is noticed
     before the next real request parks behind it *)
  Array.iter
    (fun w ->
      if
        Shard_map.is_up t.map w.w_id
        && Queue.is_empty w.queue
        && tick -. w.last_ping > ping_interval_s
      then begin
        w.last_ping <- tick;
        forward t w Ping "ping"
      end)
    t.ws

let up_read_fds t =
  Array.fold_left
    (fun acc w -> if Shard_map.is_up t.map w.w_id then w.from_w :: acc else acc)
    [] t.ws

let dispatch_readable t ready ~client_fd ~on_client =
  List.iter
    (fun fd ->
      if client_fd <> None && Some fd = client_fd then on_client ()
      else
        (* resolve at dispatch time: an earlier crash in this batch may
           have closed (or reused) the fd; nonblocking reads make a
           stale hit harmless *)
        Array.iter
          (fun w ->
            if Shard_map.is_up t.map w.w_id && w.from_w = fd then
              handle_worker_readable t w)
          t.ws)
    ready

let inflight_total t =
  Array.fold_left (fun n w -> n + Queue.length w.queue) 0 t.ws

let serve_loop t client_fd =
  let cbuf = Buffer.create 256 in
  let client_open = ref true in
  let on_client () =
    match Unix.read client_fd read_buf 0 (Bytes.length read_buf) with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
      client_open := false;
      t.stopping <- true
    | 0 ->
      client_open := false;
      t.stopping <- true
    | n ->
      Buffer.add_subbytes cbuf read_buf 0 n;
      let again = ref true in
      while !again && not t.stopping do
        let s = Buffer.contents cbuf in
        match String.index_opt s '\n' with
        | None -> again := false
        | Some i ->
          Buffer.clear cbuf;
          Buffer.add_substring cbuf s (i + 1) (String.length s - i - 1);
          handle_client_line t (String.sub s 0 i)
      done
  in
  while not t.stopping do
    let rfds =
      (if !client_open then [ client_fd ] else []) @ up_read_fds t
    in
    match Unix.select rfds [] [] 0.2 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | ready, _, _ ->
      dispatch_readable t ready ~client_fd:(Some client_fd) ~on_client;
      check_timeouts t
  done

(* ------------------------------------------------------------------ *)
(* shutdown: bounded drain of in-flight work, final metrics snapshot,
   quit lines, then reap (kill stragglers) *)

let drain t =
  (match t.cfg.metrics_file with
  | Some path -> start_metrics t (To_file path)
  | None -> ());
  let deadline = now () +. (t.cfg.drain_timeout_ms /. 1000.) in
  while inflight_total t > 0 && now () < deadline do
    match Unix.select (up_read_fds t) [] [] 0.05 with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | ready, _, _ ->
      dispatch_readable t ready ~client_fd:None ~on_client:ignore;
      check_timeouts t
  done;
  (* a hung worker must not lose the whole snapshot *)
  (match t.file_collector with
  | Some c -> finish_collection t c
  | None -> ());
  Array.iter
    (fun w ->
      if Shard_map.is_up t.map w.w_id then begin
        (try
           ignore (Unix.write_substring w.to_w "quit\n" 0 5)
         with Unix.Unix_error _ -> ());
        (try Unix.close w.to_w with Unix.Unix_error _ -> ());
        (try Unix.close w.from_w with Unix.Unix_error _ -> ())
      end)
    t.ws;
  let kill_deadline = now () +. 1.0 in
  Array.iter
    (fun w ->
      if Shard_map.is_up t.map w.w_id then
        try
          let rec wait () =
            match Unix.waitpid [ Unix.WNOHANG ] w.pid with
            | 0, _ ->
              if now () < kill_deadline then begin
                Unix.sleepf 0.02;
                wait ()
              end
              else begin
                Unix.kill w.pid Sys.sigkill;
                ignore (Unix.waitpid [] w.pid)
              end
            | _ -> ()
          in
          wait ()
        with Unix.Unix_error _ -> ())
    t.ws

let run cfg client_fd client_oc =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* the router is the trace's reference clock: absolute timestamps,
     zero offset; workers ship their own files with their measured
     offsets and `ocr trace merge` aligns them here *)
  (match cfg.trace_dir with
  | Some _ ->
    Trace.configure ~capacity:65536 ();
    Trace.preallocate ();
    Trace.set_process ~pid:0 ~name:"router" ();
    Obs.enable ()
  | None -> ());
  let access =
    match cfg.access_log with
    | None -> None
    | Some path -> (
      (* same contract as the metrics file: an unusable path is logged
         and the feature disabled, the cluster still serves *)
      try Some (open_out path)
      with Sys_error e ->
        log_err "cannot open access log, disabling it: %s" e;
        None)
  in
  let t =
    {
      cfg;
      per_worker_cache = max 1 (cfg.cache_size / cfg.workers);
      map = Shard_map.create ~workers:cfg.workers;
      ws =
        Array.init cfg.workers (fun w_id ->
            {
              w_id;
              pid = -1;
              to_w = Unix.stdin;
              from_w = Unix.stdin;
              rbuf = Buffer.create 256;
              queue = Queue.create ();
              restarts = 0;
              fail_streak = 0;
              last_ping = 0.;
            });
      sessions = Hashtbl.create 16;
      fp_cache = Hashtbl.create 16;
      client_oc;
      next_req = 0;
      requests = 0;
      shed = 0;
      file_collector = None;
      stopping = false;
      tracing = cfg.trace_dir <> None;
      access;
      lat = Metrics.create ();
    }
  in
  Array.iter (fun w -> spawn_into t w) t.ws;
  if t.tracing then Array.iter (fun w -> sync_worker w) t.ws;
  serve_loop t client_fd;
  drain t;
  (match t.access with Some oc -> close_out_noerr oc | None -> ());
  match cfg.trace_dir with
  | None -> ()
  | Some dir -> (
    let path = Filename.concat dir "router.json" in
    try
      let oc = open_out path in
      output_string oc (Trace.to_chrome_json ());
      close_out oc
    with Sys_error e -> log_err "cannot write trace file: %s" e)

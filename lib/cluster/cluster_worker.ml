(* Worker-process loop: one engine, many sticky dyn sessions, one
   request line in -> one response line out, always flushed.  The
   router relies on the one-line-per-request contract to match
   responses FIFO, and on every failure being a structured error line
   rather than a dead process — the only way a worker should die is
   the router killing it (or a crash this subsystem exists to absorb). *)

type session = { sid : string; srv : Dyn_serve.t; dyn : Dyn.t }

type t = {
  worker_id : int;
  eng : Engine.t;
  wall : bool;
  cache_size : int;
  pool : Executor.t option; (* engine's pool, shared with sessions *)
  sessions : (string, session) Hashtbl.t;
  mutable order : session list; (* creation order, newest first *)
  mutable next_id : int; (* serve request ids, worker-local *)
}

let reply oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let error_line msg = Njson.obj [ ("ok", "false"); ("error", Njson.escape msg) ]

let session_error sid msg =
  Njson.obj
    [ ("session", Njson.escape sid); ("ok", "false"); ("error", Njson.escape msg) ]

(* splice the session id into a `{...}` reply from the stream protocol *)
let inject_session sid json_line =
  if String.length json_line > 0 && json_line.[0] = '{' then
    "{\"session\":" ^ Njson.escape sid ^ ","
    ^ String.sub json_line 1 (String.length json_line - 1)
  else json_line

(* one registry for the whole process: engine counters + pool health,
   then each session's counters/latency in creation order, then the
   worker-level gauges *)
let metrics_exposition t =
  let m = Engine.metrics_snapshot t.eng in
  List.iter
    (fun s -> Metrics.merge_into ~into:m (Dyn_serve.metrics_snapshot s.srv))
    (List.rev t.order);
  Metrics.set
    (Metrics.gauge m "ocr_worker_sessions")
    (float_of_int (Hashtbl.length t.sessions));
  Metrics.to_prometheus m

let metrics_line t =
  Njson.obj
    [
      ("ok", "true");
      ("worker", string_of_int t.worker_id);
      ("metrics", Njson.escape (metrics_exposition t));
    ]

let handle_open t fields =
  match Njson.field_string fields "session" with
  | None -> error_line "open: missing session field"
  | Some sid -> (
    if Hashtbl.mem t.sessions sid then
      session_error sid ("session already open: " ^ sid)
    else
      match Njson.field_string fields "graph" with
      | None -> session_error sid "open: missing graph field"
      | Some path -> (
        let problem =
          match Njson.field_string fields "problem" with
          | Some "ratio" -> Ok Solver.Cycle_ratio
          | Some "mean" | None -> Ok Solver.Cycle_mean
          | Some other -> Error ("open: unknown problem " ^ other)
        in
        let objective =
          match Njson.field_string fields "objective" with
          | Some "max" -> Ok Solver.Maximize
          | Some "min" | None -> Ok Solver.Minimize
          | Some other -> Error ("open: unknown objective " ^ other)
        in
        match (problem, objective) with
        | Error e, _ | _, Error e -> session_error sid e
        | Ok problem, Ok objective -> (
          match Graph_io.load path with
          | exception (Sys_error e | Failure e) -> session_error sid e
          | g ->
            let dyn = Dyn.create ~problem ~objective ?pool:t.pool g in
            let srv = Dyn_serve.create ~cache_size:t.cache_size dyn in
            let s = { sid; srv; dyn } in
            Hashtbl.replace t.sessions sid s;
            t.order <- s :: t.order;
            Njson.obj
              [
                ("session", Njson.escape sid);
                ("ok", "true");
                ("epoch", string_of_int (Dyn.epoch dyn));
                ("nodes", string_of_int (Dyn.n dyn));
                ("arcs", string_of_int (Dyn.live_arcs dyn));
              ])))

let close_session t s =
  Dyn.close s.dyn;
  Hashtbl.remove t.sessions s.sid;
  t.order <- List.filter (fun s' -> s'.sid <> s.sid) t.order;
  Njson.obj
    [ ("session", Njson.escape s.sid); ("ok", "true"); ("closed", "true") ]

let handle_json t line =
  match Njson.parse_flat line with
  | Error e -> error_line ("bad json: " ^ e)
  | Ok fields -> (
    match Njson.field_string fields "op" with
    | None -> error_line "missing string field \"op\""
    | Some "open" -> handle_open t fields
    | Some "close" -> (
      match Njson.field_string fields "session" with
      | None -> error_line "close: missing session field"
      | Some sid -> (
        match Hashtbl.find_opt t.sessions sid with
        | None -> session_error sid ("unknown session: " ^ sid)
        | Some s -> close_session t s))
    | Some _ -> (
      match Njson.field_string fields "session" with
      | None -> error_line "missing session field"
      | Some sid -> (
        match Hashtbl.find_opt t.sessions sid with
        | None -> session_error sid ("unknown session: " ^ sid)
        | Some s -> (
          (* the stream codec ignores the extra "session" field, so the
             raw line is forwarded untouched *)
          match Dyn_serve.handle s.srv line with
          | `Reply r -> inject_session sid r
          | `Quit -> close_session t s))))

let run ?(wall = false) ?(jobs = 1) ?(cache_size = 256) ?trace_file ~worker_id
    ic oc =
  (match trace_file with
  | Some _ ->
    Trace.configure ~capacity:65536 ();
    Trace.preallocate ();
    Trace.set_process ~pid:(worker_id + 1)
      ~name:(Printf.sprintf "worker %d" worker_id)
      ();
    Obs.enable ()
  | None -> ());
  let eng = Engine.create ~jobs ~cache_size () in
  let t =
    {
      worker_id;
      eng;
      wall;
      cache_size;
      pool = (if jobs > 1 then Some (Engine.pool eng) else None);
      sessions = Hashtbl.create 16;
      order = [];
      next_id = 0;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun s -> Dyn.close s.dyn) t.order;
      Engine.shutdown eng;
      match trace_file with
      | None -> ()
      | Some path -> (
        try
          let toc = open_out path in
          output_string toc (Trace.to_chrome_json ());
          close_out toc
        with Sys_error e ->
          prerr_endline ("ocr cluster-worker: cannot write trace file: " ^ e)))
    (fun () ->
      try
        while true do
          let line = String.trim (input_line ic) in
          if line = "" || line.[0] = '#' then ()
          else if line = "quit" then raise Exit
          else if line = "ping" then
            reply oc
              (Njson.obj
                 [ ("ok", "true"); ("pong", string_of_int t.worker_id) ])
          else if line = "metrics" then reply oc (metrics_line t)
          else if String.length line > 5 && String.sub line 0 5 = "sync " then begin
            (* clock-offset handshake: the router sends its now_ns right
               after spawning us; the difference to our clock (offset the
               merger adds to our timestamps) lands in the trace
               metadata.  One reply line keeps the FIFO contract. *)
            (match int_of_string_opt (String.sub line 5 (String.length line - 5))
             with
            | Some router_ns ->
              Trace.set_clock_offset_ns (router_ns - Obs.now_ns ())
            | None -> ());
            reply oc
              (Njson.obj
                 [ ("ok", "true"); ("sync", string_of_int t.worker_id) ])
          end
          else if line.[0] = '{' then
            reply oc
              (try handle_json t line
               with e -> error_line (Printexc.to_string e))
          else begin
            t.next_id <- t.next_id + 1;
            reply oc
              (try Serve_loop.handle_request ~wall:t.wall eng ~id:t.next_id line
               with e ->
                 Printf.sprintf "req=%d status=error msg=%S" t.next_id
                   (Printexc.to_string e))
          end
        done
      with End_of_file | Exit -> ())

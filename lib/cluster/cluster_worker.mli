(** The cluster worker loop — the process behind the hidden
    [ocr cluster-worker] mode the router re-execs.

    One worker owns one batch {!Engine} (its own result LRU and domain
    pool) plus any number of sticky {!Dyn} sessions, multiplexed over
    a single line-protocol channel pair to the router:

    - a line starting with [{] is an NDJSON session op.  [op=open]
      creates a session ([session], [graph], optional [problem],
      [objective]); [op=close] drops one; any other op carrying a
      [session] field is the existing [ocr stream] protocol dispatched
      to that session (the extra field is ignored by the codec), and
      the reply is the stream reply with the [session] echoed first.
    - [ping] answers [{"ok":true,"pong":<worker-id>}] (health check);
    - [sync <router-now-ns>] is the clock-offset handshake the router
      sends right after every (re)spawn: the worker stamps
      [router_ns - its own now_ns] into its trace metadata
      ({!Trace.set_clock_offset_ns}) and answers
      [{"ok":true,"sync":<worker-id>}];
    - [metrics] answers one NDJSON line carrying the worker's merged
      Prometheus exposition (engine plus every session, in session
      creation order) as an escaped string — framed so the router can
      aggregate it with {!Metrics.of_prometheus};
    - [quit] or EOF exits after the current request (the loop is
      serial, so this is the graceful drain);
    - anything else is an [ocr serve] request line answered by
      {!Serve_loop.handle_request}.

    Every request line produces exactly one response line, flushed —
    the router matches responses to requests FIFO per worker. *)

val run :
  ?wall:bool -> ?jobs:int -> ?cache_size:int -> ?trace_file:string ->
  worker_id:int -> in_channel -> out_channel -> unit
(** [trace_file] turns the process tracer on ({!Trace.set_process}
    with pid [worker_id + 1]) and writes the Chrome trace there on
    exit (absolute timestamps plus the handshake's clock offset, ready
    for [ocr trace merge]); a write failure is logged to stderr, never
    fatal. *)

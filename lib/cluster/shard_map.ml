(* Rendezvous hashing over a fixed worker set with an up/down mask.
   Scores are SplitMix64 finalizer outputs over (key XOR worker salt);
   comparisons are unsigned so the sign bit of the mixed value does
   not bias worker 0. *)

type t = { up : bool array }

let create ~workers =
  if workers < 1 then invalid_arg "Shard_map.create: workers must be >= 1";
  { up = Array.make workers true }

let workers t = Array.length t.up

let up_count t = Array.fold_left (fun n u -> if u then n + 1 else n) 0 t.up

let is_up t w =
  if w < 0 || w >= Array.length t.up then
    invalid_arg "Shard_map.is_up: worker out of range";
  t.up.(w)

let set_up t w v =
  if w < 0 || w >= Array.length t.up then
    invalid_arg "Shard_map.set_up: worker out of range";
  t.up.(w) <- v

(* SplitMix64 finalizer (Steele et al.), the same mixer the graph
   fingerprints use.  Int64 because the canonical constants need all
   64 bits; a shard choice is setup-path work, boxing is irrelevant. *)
let mix64 z =
  let open Int64 in
  let z = mul z 0xbf58476d1ce4e5b9L in
  let z = logxor z (shift_right_logical z 27) in
  let z = mul z 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* per-worker salts: successive SplitMix64 stream values *)
let salt w = mix64 (Int64.mul (Int64.of_int (w + 1)) 0x9e3779b97f4a7c15L)

let score key w = mix64 (Int64.logxor key (salt w))

let assign t key =
  let key = Int64.of_int key in
  let best = ref (-1) and best_score = ref 0L in
  Array.iteri
    (fun w up ->
      if up then
        let s = score key w in
        if !best < 0 || Int64.unsigned_compare !best_score s < 0 then begin
          best := w;
          best_score := s
        end)
    t.up;
  if !best < 0 then None else Some !best

let hash_string s =
  let h = ref 0x9e3779b97f4a7c15L in
  String.iter
    (fun c ->
      h := mix64 (Int64.add (Int64.mul !h 31L) (Int64.of_int (Char.code c))))
    s;
  Int64.to_int !h

let assign_string t s = assign t (hash_string s)

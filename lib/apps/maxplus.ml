type entry = int option

type t = { n : int; a : entry array array }

let create n =
  if n < 1 then invalid_arg "Maxplus.create: dimension must be positive";
  { n; a = Array.make_matrix n n None }

let dim t = t.n

let check t i j name =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then
    invalid_arg ("Maxplus." ^ name ^ ": index out of range")

let get t i j =
  check t i j "get";
  t.a.(i).(j)

let set t i j x =
  check t i j "set";
  t.a.(i).(j) <- Some x

let of_entries n entries =
  let t = create n in
  List.iter (fun (i, j, x) -> set t i j x) entries;
  t

let to_graph t =
  let b = Digraph.create_builder t.n in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      match t.a.(i).(j) with
      | Some w -> ignore (Digraph.add_arc b ~src:j ~dst:i ~weight:w ())
      | None -> ()
    done
  done;
  Digraph.build b

let of_graph g =
  let t = create (Digraph.n g) in
  Digraph.iter_arcs g (fun arc ->
      let i = Digraph.dst g arc and j = Digraph.src g arc in
      let w = Digraph.weight g arc in
      match t.a.(i).(j) with
      | Some old when old >= w -> ()
      | _ -> t.a.(i).(j) <- Some w);
  t

let plus a b =
  match (a, b) with Some x, Some y -> Some (x + y) | _ -> None

let join a b =
  match (a, b) with
  | Some x, Some y -> Some (max x y)
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

let mul x y =
  if x.n <> y.n then invalid_arg "Maxplus.mul: dimension mismatch";
  let r = create x.n in
  for i = 0 to x.n - 1 do
    for j = 0 to x.n - 1 do
      let acc = ref None in
      for k = 0 to x.n - 1 do
        acc := join !acc (plus x.a.(i).(k) y.a.(k).(j))
      done;
      r.a.(i).(j) <- !acc
    done
  done;
  r

let vec_mul t x =
  if Array.length x <> t.n then invalid_arg "Maxplus.vec_mul: dimension mismatch";
  Array.init t.n (fun i ->
      let acc = ref None in
      for j = 0 to t.n - 1 do
        acc := join !acc (plus t.a.(i).(j) x.(j))
      done;
      !acc)

let is_irreducible t = Traversal.is_strongly_connected (to_graph t)

let eigenvalue ?(algorithm = Registry.Howard) t =
  match Solver.maximum_cycle_mean ~algorithm (to_graph t) with
  | None -> None
  | Some r -> Some r.Solver.lambda

let eigenvector t =
  if not (is_irreducible t) then None
  else begin
    let g = to_graph t in
    let lambda =
      match Solver.maximum_cycle_mean g with
      | Some r -> r.Solver.lambda
      | None -> assert false (* irreducible with n >= 1 has a cycle *)
    in
    let p = Ratio.num lambda and q = Ratio.den lambda in
    (* normalized scaled arc costs: q·w − p; all cycles are <= 0, the
       critical ones are exactly 0 *)
    let cost a = (q * Digraph.weight g a) - p in
    let crit =
      Critical.critical_arcs ~den:(fun _ -> 1) (Digraph.negate_weights g)
        (Ratio.neg lambda)
    in
    let n = Digraph.n g in
    let v = Array.make n min_int in
    let queue = Queue.create () in
    let in_queue = Array.make n false in
    let push x =
      if not in_queue.(x) then begin
        in_queue.(x) <- true;
        Queue.add x queue
      end
    in
    List.iter
      (fun a ->
        List.iter
          (fun x ->
            if v.(x) < 0 then begin
              v.(x) <- 0;
              push x
            end)
          [ Digraph.src g a; Digraph.dst g a ])
      crit;
    (* longest paths from the critical nodes; terminates because no
       cycle is positive under the normalized costs *)
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      in_queue.(u) <- false;
      Digraph.iter_out g u (fun a ->
          let w = Digraph.dst g a in
          let cand = v.(u) + cost a in
          if cand > v.(w) then begin
            v.(w) <- cand;
            push w
          end)
    done;
    assert (Array.for_all (fun x -> x > min_int) v);
    Some (lambda, Array.map (fun x -> Ratio.make x q) v)
  end

let cycle_time t ~x0 ~rounds =
  if Array.length x0 <> t.n then invalid_arg "Maxplus.cycle_time: dimension mismatch";
  let x = ref x0 in
  for _ = 1 to rounds do
    x := vec_mul t !x
  done;
  !x

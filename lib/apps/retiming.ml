type block = int

type wire = { src : block; dst : block; mutable registers : int }

type t = {
  names : string Vec.t;
  delays : int Vec.t;
  wires : wire Vec.t;
}

let create () =
  { names = Vec.create (); delays = Vec.create (); wires = Vec.create () }

let add_block t ~name ~delay =
  if delay < 0 then invalid_arg "Retiming.add_block: negative delay";
  let id = Vec.length t.names in
  Vec.push t.names name;
  Vec.push t.delays delay;
  id

let check_block t v name =
  if v < 0 || v >= Vec.length t.names then
    invalid_arg ("Retiming." ^ name ^ ": unknown block")

let add_wire t ?(registers = 0) u v =
  check_block t u "add_wire";
  check_block t v "add_wire";
  if registers < 0 then invalid_arg "Retiming.add_wire: negative register count";
  Vec.push t.wires { src = u; dst = v; registers }

let block_count t = Vec.length t.names
let blocks t = Array.init (block_count t) Fun.id

let block_name t v =
  check_block t v "block_name";
  Vec.get t.names v

let block_delay t v =
  check_block t v "block_delay";
  Vec.get t.delays v

let to_graph t =
  let b = Digraph.create_builder (block_count t) in
  Vec.iter
    (fun w ->
      ignore
        (Digraph.add_arc b ~src:w.src ~dst:w.dst
           ~weight:(Vec.get t.delays w.src) ~transit:w.registers ()))
    t.wires;
  Digraph.build b

let period_lower_bound ?(algorithm = Registry.Howard) t =
  let g = to_graph t in
  match
    Solver.solve ~objective:Solver.Maximize ~problem:Solver.Cycle_ratio
      ~algorithm g
  with
  | None -> None
  | Some r -> Some r.Solver.lambda

(* Longest register-free path, each path weighted by the delays of all
   blocks on it (endpoints included). *)
let clock_period t =
  let n = block_count t in
  let g = to_graph t in
  let zero_free a = Digraph.transit g a = 0 in
  (* topological order of the register-free subgraph *)
  let indeg = Array.make n 0 in
  Digraph.iter_arcs g (fun a ->
      if zero_free a then indeg.(Digraph.dst g a) <- indeg.(Digraph.dst g a) + 1);
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let seen = ref 0 in
  let acc = Array.init n (Vec.get t.delays) in
  let period = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    incr seen;
    period := max !period acc.(u);
    Digraph.iter_out g u (fun a ->
        if zero_free a then begin
          let v = Digraph.dst g a in
          acc.(v) <- max acc.(v) (acc.(u) + Vec.get t.delays v);
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.add v queue
        end)
  done;
  if !seen < n then
    invalid_arg "Retiming.clock_period: register-free cycle (combinational loop)";
  !period

(* The Leiserson-Saxe W and D matrices: W(u,v) = minimum registers over
   u~>v paths, D(u,v) = maximum path delay among those minimum-register
   paths.  Lexicographic Floyd-Warshall on (registers, -delay). *)
let wd_matrices t =
  let n = block_count t in
  let inf = max_int / 4 in
  let w = Array.make_matrix n n inf in
  let d = Array.make_matrix n n min_int in
  for u = 0 to n - 1 do
    w.(u).(u) <- 0;
    d.(u).(u) <- Vec.get t.delays u
  done;
  Vec.iter
    (fun e ->
      let du = Vec.get t.delays e.src + Vec.get t.delays e.dst in
      if
        e.registers < w.(e.src).(e.dst)
        || (e.registers = w.(e.src).(e.dst) && du > d.(e.src).(e.dst))
      then begin
        w.(e.src).(e.dst) <- e.registers;
        d.(e.src).(e.dst) <- du
      end)
    t.wires;
  for k = 0 to n - 1 do
    for u = 0 to n - 1 do
      if w.(u).(k) < inf then
        for v = 0 to n - 1 do
          if w.(k).(v) < inf then begin
            let wr = w.(u).(k) + w.(k).(v) in
            (* block k counted once on the concatenation *)
            let dr = d.(u).(k) + d.(k).(v) - Vec.get t.delays k in
            if wr < w.(u).(v) || (wr = w.(u).(v) && dr > d.(u).(v)) then begin
              w.(u).(v) <- wr;
              d.(u).(v) <- dr
            end
          end
        done
    done
  done;
  (w, d)

(* Feasibility of clock period [c]: difference constraints solved by
   Bellman-Ford on the constraint graph; Some r on success. *)
let feasible_retiming t (w, d) c =
  let n = block_count t in
  let inf = max_int / 4 in
  let b = Digraph.create_builder n in
  (* r(u) - r(v) <= w(e): arc v -> u with cost w(e) *)
  Vec.iter
    (fun e ->
      ignore (Digraph.add_arc b ~src:e.dst ~dst:e.src ~weight:e.registers ()))
    t.wires;
  (* r(u) - r(v) <= W(u,v) - 1 whenever D(u,v) > c.  The diagonal is
     kept: D(u,u) = d(u) > c yields the self-constraint 0 <= W(u,u) - 1,
     i.e. a negative self-loop when no retiming can help, which is how
     "the period can never beat the largest block delay" is encoded. *)
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if w.(u).(v) < inf && d.(u).(v) > c then
        ignore (Digraph.add_arc b ~src:v ~dst:u ~weight:(w.(u).(v) - 1) ())
    done
  done;
  let cg = Digraph.build b in
  Bellman_ford.potentials ~cost:(Digraph.weight cg) cg

let min_period t =
  (* validates the absence of combinational loops *)
  let current = clock_period t in
  let n = block_count t in
  let wd = wd_matrices t in
  let w, d = wd in
  let inf = max_int / 4 in
  (* candidate periods: the distinct D values (the optimum is one) *)
  let candidates =
    let acc = ref [] in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if d.(u).(v) > min_int && d.(u).(v) <= current then
          acc := d.(u).(v) :: !acc
      done
    done;
    List.sort_uniq compare !acc
  in
  let arr = Array.of_list candidates in
  if Array.length arr = 0 then (current, Array.make n 0)
  else begin
    (* The probes of the binary search test constraint graphs that
       differ only in which pair arcs "D(u,v) > c" are present, so they
       share one dynamic session instead of rebuilding per candidate:
       every pair arc stays in the graph permanently and toggles
       between its real cost W(u,v) - 1 and a sentinel.  Feasibility of
       period c is "no negative cycle", i.e. the session's minimum
       cycle mean is >= 0 (or the graph is acyclic), re-solved warm
       from the previous probe over just the components the toggles
       dirtied.  Pair costs are >= -1 and wire costs >= 0, so no simple
       cycle through an arc of cost n + 1 can be negative: the sentinel
       parks a pair without taking it out of the graph. *)
    let pairs = ref [] in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if w.(u).(v) < inf && d.(u).(v) > min_int then
          pairs := (d.(u).(v), u, v) :: !pairs
      done
    done;
    let pairs = Array.of_list !pairs in
    (* sorted by D descending: the active set of any period is a prefix *)
    Array.sort (fun (d1, _, _) (d2, _, _) -> compare d2 d1) pairs;
    let sentinel = n + 1 in
    let b = Digraph.create_builder n in
    Vec.iter
      (fun e ->
        ignore (Digraph.add_arc b ~src:e.dst ~dst:e.src ~weight:e.registers ()))
      t.wires;
    let pair_arc =
      Array.map
        (fun (_, u, v) -> Digraph.add_arc b ~src:v ~dst:u ~weight:sentinel ())
        pairs
    in
    let session = Dyn.create (Digraph.build b) in
    let active = ref 0 in
    let set_active k =
      while !active < k do
        let _, u, v = pairs.(!active) in
        Dyn.set_weight session pair_arc.(!active) (w.(u).(v) - 1);
        incr active
      done;
      while !active > k do
        decr active;
        Dyn.set_weight session pair_arc.(!active) sentinel
      done
    in
    (* pairs with D > c, i.e. the length of the active prefix *)
    let count_active c =
      let lo = ref 0 and hi = ref (Array.length pairs) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        let dm, _, _ = pairs.(mid) in
        if dm > c then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let feasible c =
      set_active (count_active c);
      match Dyn.query session with
      | None -> true
      | Some r -> Ratio.leq Ratio.zero r.Dyn.lambda
    in
    (* binary search the smallest feasible candidate *)
    let lo = ref 0 and hi = ref (Array.length arr - 1) in
    let best = ref current in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if feasible arr.(mid) then begin
        best := arr.(mid);
        hi := mid - 1
      end
      else lo := mid + 1
    done;
    Dyn.close session;
    (* one Bellman-Ford at the chosen period extracts the labels *)
    match feasible_retiming t wd !best with
    | Some r -> (!best, r)
    | None -> (current, Array.make n 0)
  end

let retime t r =
  if Array.length r <> block_count t then
    invalid_arg "Retiming.retime: wrong label count";
  let t' = create () in
  for v = 0 to block_count t - 1 do
    ignore (add_block t' ~name:(Vec.get t.names v) ~delay:(Vec.get t.delays v))
  done;
  Vec.iter
    (fun e ->
      let registers = e.registers + r.(e.dst) - r.(e.src) in
      if registers < 0 then
        invalid_arg "Retiming.retime: labels make a register count negative";
      add_wire t' ~registers e.src e.dst)
    t.wires;
  t'

(** Retiming and optimal clock period (Leiserson–Saxe), the clock
    scheduling application of §1.1 (Szymanski, DAC 1992).

    A synchronous circuit is a graph of combinational blocks (each with
    a propagation delay) connected by wires carrying registers.  The
    {e clock period} is the longest register-free combinational path.
    Retiming moves registers across blocks: with labels [r],
    [w_r(e) = w(e) + r(v) − r(u)] must stay non-negative.

    The maximum delay-to-register cycle ratio is a lower bound on the
    period achievable by {e any} retiming (computed here by the cycle
    ratio solvers); the exact optimum is found by the classic
    [W/D]-matrix binary search with a Bellman–Ford feasibility test. *)

type t
type block = private int

val create : unit -> t

val add_block : t -> name:string -> delay:int -> block
(** @raise Invalid_argument if [delay < 0]. *)

val add_wire : t -> ?registers:int -> block -> block -> unit
(** @raise Invalid_argument if [registers < 0]. *)

val block_count : t -> int
val blocks : t -> block array
(** All blocks, in creation order. *)

val block_name : t -> block -> string
val block_delay : t -> block -> int

val to_graph : t -> Digraph.t
(** Arc weight = source block delay, arc transit = register count. *)

val period_lower_bound : ?algorithm:Registry.algorithm -> t -> Ratio.t option
(** [max_C d(C)/w(C)] over cycles [C] — no retiming can clock faster
    than this ratio.  [None] on acyclic circuits.
    @raise Invalid_argument if some cycle carries no register. *)

val clock_period : t -> int
(** Longest register-free path delay of the circuit as built.
    @raise Invalid_argument if a register-free cycle exists. *)

val min_period : t -> int * int array
(** Optimal retiming: the smallest achievable clock period and the
    retiming labels that realize it (Leiserson–Saxe OPT, O(n³) for the
    W/D matrices).  The binary search over candidate periods runs its
    feasibility probes on a single {!Dyn} session — each probe toggles
    the pair constraints whose activity changed and re-solves the
    dirtied components warm ("no negative cycle" = session minimum
    cycle mean ≥ 0) — with one Bellman–Ford pass at the chosen period
    to extract the labels.
    @raise Invalid_argument if a register-free cycle exists. *)

val retime : t -> int array -> t
(** Applies retiming labels; the result has the same blocks with
    register counts [w(e) + r(dst) − r(src)].
    @raise Invalid_argument if any count would become negative. *)

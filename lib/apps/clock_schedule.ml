type latch = int

type path = { src : latch; dst : latch; delay : int }

type t = { names : string Vec.t; paths : path Vec.t }

let create () = { names = Vec.create (); paths = Vec.create () }

let add_latch t ~name =
  let id = Vec.length t.names in
  Vec.push t.names name;
  id

let check_latch t v name =
  if v < 0 || v >= Vec.length t.names then
    invalid_arg ("Clock_schedule." ^ name ^ ": unknown latch")

let add_path t ~delay u v =
  check_latch t u "add_path";
  check_latch t v "add_path";
  if delay < 0 then invalid_arg "Clock_schedule.add_path: negative delay";
  Vec.push t.paths { src = u; dst = v; delay }

let latch_count t = Vec.length t.names

let latch_name t v =
  check_latch t v "latch_name";
  Vec.get t.names v

let to_graph t =
  let b = Digraph.create_builder (latch_count t) in
  Vec.iter
    (fun p -> ignore (Digraph.add_arc b ~src:p.src ~dst:p.dst ~weight:p.delay ()))
    t.paths;
  Digraph.build b

let min_period ?(algorithm = Registry.Howard) t =
  match Solver.maximum_cycle_mean ~algorithm (to_graph t) with
  | None -> None
  | Some r -> Some r.Solver.lambda

(* x(v) >= x(u) + d − P  ⟺  x(u) − x(v) <= P − d: Bellman-Ford over the
   latch graph with integer costs q·(P − d) where P = p/q; feasible
   potentials (negated) are a valid schedule.  A negative cycle under
   these costs is exactly a cycle of mean > P. *)
let schedule t ~period =
  let g = to_graph t in
  let p = Ratio.num period and q = Ratio.den period in
  let cost a = p - (q * Digraph.weight g a) in
  match Bellman_ford.potentials ~cost g with
  | None -> None
  | Some pot -> Some (Array.map (fun x -> Ratio.make (-x) q) pot)

let verify_schedule t ~period x =
  if Array.length x <> latch_count t then false
  else
    Vec.fold_left
      (fun ok p ->
        ok
        && Ratio.leq
             (Ratio.sub (Ratio.of_int p.delay) period)
             (Ratio.sub x.(p.dst) x.(p.src)))
      true t.paths

(** Rate analysis of embedded real-time systems — the Mathur, Dasdan &
    Gupta application (ACM TODAES 1998) cited in §1.1 of the paper.

    Processes execute repeatedly and exchange data through dependencies
    carrying a delay {e interval} [dmin, dmax] (computation and
    communication jitter) and an occurrence offset (pipelining /
    initial tokens).  Asymptotically, execution [k] of every process in
    a strongly connected system happens at time [p·k + O(1)], where the
    period [p] is the maximum delay-to-offset cycle ratio.  Interval
    delays therefore yield a {e period interval} — best case from the
    minimum delays, worst case from the maximum delays — whose
    reciprocals bound the process execution {e rates}.  Both ends are
    maximum cost-to-time ratio problems. *)

type t
type process = private int

val create : unit -> t

val add_process : t -> name:string -> process

val add_dependency :
  t -> ?offset:int -> dmin:int -> dmax:int -> process -> process -> unit
(** Execution [k] of the target waits between [dmin] and [dmax] time
    units after execution [k − offset] of the source.  [offset]
    defaults to 0.
    @raise Invalid_argument if [dmin < 0], [dmax < dmin] or
    [offset < 0]. *)

val process_count : t -> int
val process_name : t -> process -> string

val period_interval :
  ?algorithm:Registry.algorithm -> t -> (Ratio.t * Ratio.t) option
(** [(best, worst)] asymptotic execution period over the delay
    intervals; [None] if the dependence graph is acyclic (rates are
    then bounded by the environment, not the system).
    @raise Invalid_argument if some dependency cycle has zero total
    offset. *)

val rate_interval :
  ?algorithm:Registry.algorithm -> t -> (Ratio.t option * Ratio.t option) option
(** [(lowest, highest)] sustainable execution rates — the reciprocals
    of {!period_interval}; an end is [None] (unbounded) when the
    corresponding period is zero, i.e. when every delay on the critical
    cycle can vanish. *)

type op = int

type edge = { src : op; dst : op; delays : int }

type t = {
  names : string Vec.t;
  times : int Vec.t;
  edges : edge Vec.t;
}

let create () = { names = Vec.create (); times = Vec.create (); edges = Vec.create () }

let add_op t ~name ~time =
  if time < 0 then invalid_arg "Dataflow.add_op: negative computation time";
  let id = Vec.length t.names in
  Vec.push t.names name;
  Vec.push t.times time;
  id

let check_op t v name =
  if v < 0 || v >= Vec.length t.names then
    invalid_arg ("Dataflow." ^ name ^ ": unknown operation")

let add_edge t ?(delays = 0) u v =
  check_op t u "add_edge";
  check_op t v "add_edge";
  if delays < 0 then invalid_arg "Dataflow.add_edge: negative delay count";
  Vec.push t.edges { src = u; dst = v; delays }

let op_name t v =
  check_op t v "op_name";
  Vec.get t.names v

let op_time t v =
  check_op t v "op_time";
  Vec.get t.times v

let to_graph t =
  let b = Digraph.create_builder (Vec.length t.names) in
  Vec.iter
    (fun e ->
      ignore
        (Digraph.add_arc b ~src:e.src ~dst:e.dst
           ~weight:(Vec.get t.times e.src) ~transit:e.delays ()))
    t.edges;
  Digraph.build b

let iteration_bound ?(algorithm = Registry.Howard) t =
  let g = to_graph t in
  match Solver.solve ~objective:Solver.Maximize ~problem:Solver.Cycle_ratio ~algorithm g with
  | None -> None
  | Some r ->
    let ops = List.map (Digraph.src g) r.Solver.cycle in
    Some (r.Solver.lambda, ops)

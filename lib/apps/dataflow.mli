(** Iteration bound of DSP data-flow graphs (Ito & Parhi, J. VLSI
    Signal Processing 1995) — one of the CAD applications motivating
    the paper (§1.1).

    A data-flow graph has one node per operation (with a computation
    time) and directed edges carrying {e delays} (registers).  The
    iteration bound
    [T∞ = max_C (total computation time of C) / (total delays of C)]
    is the fastest achievable steady-state iteration period of any
    implementation; it is a {e maximum cost-to-time ratio} problem and
    is solved here through {!Solver}. *)

type t
type op = private int

val create : unit -> t

val add_op : t -> name:string -> time:int -> op
(** [time] is the operation's computation time (must be >= 0). *)

val add_edge : t -> ?delays:int -> op -> op -> unit
(** Data dependency carrying [delays] registers (default 0; must be
    >= 0). *)

val op_name : t -> op -> string
val op_time : t -> op -> int

val to_graph : t -> Digraph.t
(** The underlying ratio-problem instance: arc weight = computation
    time of the edge's source operation, arc transit = delay count. *)

val iteration_bound :
  ?algorithm:Registry.algorithm -> t -> (Ratio.t * op list) option
(** The iteration bound and the operations of a critical loop, or
    [None] if the graph has no cycle (fully feed-forward).
    @raise Invalid_argument if some cycle carries zero delays (such a
    graph is not computable). *)

(** Max-plus (tropical) spectral analysis of discrete event systems —
    the setting of Cochet-Terrasson et al. (1998), where Howard's
    algorithm originates, and of the synchronization theory of Bacelli
    et al. referenced in §1.1.

    A square matrix over ℝmax = (ℝ ∪ {−∞}, max, +) models a timed
    event graph: [x(k+1) = A ⊗ x(k)] with
    [(A ⊗ x)_i = max_j (A(i,j) + x_j)].  For an irreducible matrix the
    unique eigenvalue λ — the steady-state cycle time / inverse
    throughput — equals the {e maximum cycle mean} of the precedence
    graph, and an eigenvector is obtained from the critical graph. *)

type t

type entry = int option
(** [None] is −∞ (no dependency). *)

val create : int -> t
(** All entries −∞. *)

val dim : t -> int
val get : t -> int -> int -> entry
val set : t -> int -> int -> int -> unit

val of_entries : int -> (int * int * int) list -> t
(** [(i, j, a)] sets [A(i,j) = a]. *)

val to_graph : t -> Digraph.t
(** Precedence graph: an arc [j → i] of weight [A(i,j)] per finite
    entry, so that graph cycles correspond to dependency cycles. *)

val of_graph : Digraph.t -> t
(** [A(dst, src) = max] weight over parallel arcs. *)

val mul : t -> t -> t
(** ⊗ product.  @raise Invalid_argument on dimension mismatch. *)

val vec_mul : t -> entry array -> entry array
(** [A ⊗ x]. *)

val is_irreducible : t -> bool
(** Whether the precedence graph is strongly connected. *)

val eigenvalue : ?algorithm:Registry.algorithm -> t -> Ratio.t option
(** Maximum cycle mean of the precedence graph ([None] when it is
    acyclic, i.e. the system is finite). *)

val eigenvector : t -> (Ratio.t * Ratio.t array) option
(** For an irreducible matrix: the eigenvalue λ and a vector [v] with
    [A ⊗ v = λ + v], built from longest paths out of the critical
    graph in exact arithmetic.  [None] if the matrix is not
    irreducible. *)

val cycle_time : t -> x0:entry array -> rounds:int -> entry array
(** Plain power iteration [x ↦ A ⊗ x], for simulations and as a test
    oracle: for irreducible [A], [x(k+n) − x(k)] approaches [n·λ]. *)

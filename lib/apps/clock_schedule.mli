(** Optimal clock schedules for level-clocked circuits — the Szymanski
    (DAC 1992) application cited in §1.1 of the paper.

    Latches are level-sensitive: data may "borrow" time across latch
    boundaries, so the clock period is not limited by the longest
    single latch-to-latch path but by the {e average} delay around
    dependency cycles.  For a latch graph with combinational delays
    [d(u,v)], a period [P] is feasible iff there are departure offsets
    [x] with [x(v) ≥ x(u) + d(u,v) − P] for every path — difference
    constraints whose feasibility is exactly "no cycle of mean > P".
    Hence the optimum period is the {e maximum cycle mean}, and an
    optimal schedule falls out of the Bellman–Ford potentials at that
    period.  Everything is computed in exact rational arithmetic. *)

type t
type latch = private int

val create : unit -> t

val add_latch : t -> name:string -> latch

val add_path : t -> delay:int -> latch -> latch -> unit
(** Combinational path between two latches.
    @raise Invalid_argument if [delay < 0]. *)

val latch_count : t -> int
val latch_name : t -> latch -> string

val to_graph : t -> Digraph.t
(** Latch-to-latch delay graph (weight = delay, transit = 1). *)

val min_period : ?algorithm:Registry.algorithm -> t -> Ratio.t option
(** The smallest feasible clock period: the maximum cycle mean of the
    latch graph.  [None] for acyclic (purely feed-forward) circuits,
    which can be clocked arbitrarily fast with enough borrowing. *)

val schedule : t -> period:Ratio.t -> Ratio.t array option
(** [schedule t ~period] returns latch departure offsets realizing the
    period: [x(v) − x(u) ≥ d(u,v) − period] holds along every path.
    [None] iff the period is below {!min_period} (infeasible). *)

val verify_schedule : t -> period:Ratio.t -> Ratio.t array -> bool
(** Checks the constraint system explicitly (used by tests and by
    downstream consumers that transform schedules). *)

type process = int

type dependency = {
  src : process;
  dst : process;
  dmin : int;
  dmax : int;
  offset : int;
}

type t = { names : string Vec.t; deps : dependency Vec.t }

let create () = { names = Vec.create (); deps = Vec.create () }

let add_process t ~name =
  let id = Vec.length t.names in
  Vec.push t.names name;
  id

let check_process t p name =
  if p < 0 || p >= Vec.length t.names then
    invalid_arg ("Rate_analysis." ^ name ^ ": unknown process")

let add_dependency t ?(offset = 0) ~dmin ~dmax u v =
  check_process t u "add_dependency";
  check_process t v "add_dependency";
  if dmin < 0 then invalid_arg "Rate_analysis.add_dependency: negative dmin";
  if dmax < dmin then invalid_arg "Rate_analysis.add_dependency: dmax < dmin";
  if offset < 0 then invalid_arg "Rate_analysis.add_dependency: negative offset";
  Vec.push t.deps { src = u; dst = v; dmin; dmax; offset }

let process_count t = Vec.length t.names

let process_name t p =
  check_process t p "process_name";
  Vec.get t.names p

let graph_with t delay_of =
  let b = Digraph.create_builder (process_count t) in
  Vec.iter
    (fun d ->
      ignore
        (Digraph.add_arc b ~src:d.src ~dst:d.dst ~weight:(delay_of d)
           ~transit:d.offset ()))
    t.deps;
  Digraph.build b

let max_ratio ~algorithm g =
  Option.map
    (fun r -> r.Solver.lambda)
    (Solver.solve ~objective:Solver.Maximize ~problem:Solver.Cycle_ratio
       ~algorithm g)

let period_interval ?(algorithm = Registry.Howard) t =
  let best = max_ratio ~algorithm (graph_with t (fun d -> d.dmin)) in
  let worst = max_ratio ~algorithm (graph_with t (fun d -> d.dmax)) in
  match (best, worst) with
  | Some b, Some w -> Some (b, w)
  | None, None -> None
  | _ -> assert false (* both graphs share the same structure *)

let rate_interval ?algorithm t =
  match period_interval ?algorithm t with
  | None -> None
  | Some (best, worst) ->
    let inverse p =
      if Ratio.equal p Ratio.zero then None else Some (Ratio.div Ratio.one p)
    in
    Some (inverse worst, inverse best)

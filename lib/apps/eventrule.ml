type event = int

type rule = { src : event; dst : event; delay : int; offset : int }

type t = { names : string Vec.t; rules : rule Vec.t }

let create () = { names = Vec.create (); rules = Vec.create () }

let add_event t ~name =
  let id = Vec.length t.names in
  Vec.push t.names name;
  id

let check_event t e name =
  if e < 0 || e >= Vec.length t.names then
    invalid_arg ("Eventrule." ^ name ^ ": unknown event")

let add_rule t ?(offset = 0) ~delay e f =
  check_event t e "add_rule";
  check_event t f "add_rule";
  if delay < 0 then invalid_arg "Eventrule.add_rule: negative delay";
  if offset < 0 then invalid_arg "Eventrule.add_rule: negative offset";
  Vec.push t.rules { src = e; dst = f; delay; offset }

let event_count t = Vec.length t.names

let event_name t e =
  check_event t e "event_name";
  Vec.get t.names e

let to_graph t =
  let b = Digraph.create_builder (event_count t) in
  Vec.iter
    (fun r ->
      ignore
        (Digraph.add_arc b ~src:r.src ~dst:r.dst ~weight:r.delay
           ~transit:r.offset ()))
    t.rules;
  Digraph.build b

let cycle_period ?(algorithm = Registry.Howard) t =
  let g = to_graph t in
  match
    Solver.solve ~objective:Solver.Maximize ~problem:Solver.Cycle_ratio
      ~algorithm g
  with
  | None -> None
  | Some r ->
    let events = List.map (Digraph.src g) r.Solver.cycle in
    Some (r.Solver.lambda, events)

let simulate t ~occurrences =
  let g = to_graph t in
  (* a zero-offset cycle makes the same-iteration recurrence circular *)
  (match Critical.cycle_in g (fun a -> Digraph.transit g a = 0) with
  | Some _ ->
    invalid_arg "Eventrule.simulate: zero-offset dependency cycle (deadlock)"
  | None -> ());
  let n = event_count t in
  (* evaluation order within one iteration: topological over ε=0 rules *)
  let order =
    let indeg = Array.make n 0 in
    Vec.iter
      (fun r -> if r.offset = 0 then indeg.(r.dst) <- indeg.(r.dst) + 1)
      t.rules;
    let queue = Queue.create () in
    for v = 0 to n - 1 do
      if indeg.(v) = 0 then Queue.add v queue
    done;
    let out = Vec.create () in
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      Vec.push out u;
      Vec.iter
        (fun r ->
          if r.offset = 0 && r.src = u then begin
            indeg.(r.dst) <- indeg.(r.dst) - 1;
            if indeg.(r.dst) = 0 then Queue.add r.dst queue
          end)
        t.rules
    done;
    Vec.to_array out
  in
  assert (Array.length order = n);
  (* in-rules per event, for the recurrence *)
  let in_rules = Array.make n [] in
  Vec.iter (fun r -> in_rules.(r.dst) <- r :: in_rules.(r.dst)) t.rules;
  let times = Array.make_matrix occurrences n 0 in
  for k = 0 to occurrences - 1 do
    Array.iter
      (fun f ->
        let best = ref 0 in
        List.iter
          (fun r ->
            let earlier = k - r.offset in
            let base = if earlier < 0 then 0 else times.(earlier).(r.src) in
            if base + r.delay > !best then best := base + r.delay)
          in_rules.(f);
        times.(k).(f) <- !best)
      order
  done;
  times

(** Timed event-rule systems — Burns' model for the performance
    analysis of asynchronous circuits (Caltech 1991), the setting in
    which his cost-to-time ratio algorithm was conceived (§1.1 of the
    paper).

    An ER system has a set of {e events} (signal transitions) and
    {e rules} [(e, f, d, ε)]: occurrence [k] of event [f] must wait
    until [d] time units after occurrence [k − ε] of event [e].  The
    offset ε counts initial tokens; rules with ε = 0 are dependencies
    within the same iteration.

    For a strongly connected system, occurrence times grow linearly:
    [t_f(k) ≈ p·k + c_f], where the {e cycle period}
    [p = max_C d(C) / ε(C)] is a maximum cost-to-time ratio over the
    rule graph — computed here with the library's MCR solvers.  The
    critical cycle is the set of transitions that limit the circuit's
    throughput. *)

type t
type event = private int

val create : unit -> t

val add_event : t -> name:string -> event

val add_rule : t -> ?offset:int -> delay:int -> event -> event -> unit
(** [add_rule t ~offset ~delay e f]: occurrence [k] of [f] waits for
    occurrence [k − offset] of [e] plus [delay].  [offset] defaults to
    0 (same-iteration dependency).
    @raise Invalid_argument on negative delay or offset. *)

val event_count : t -> int
val event_name : t -> event -> string

val to_graph : t -> Digraph.t
(** Rule graph: one arc per rule, weight = delay, transit = offset. *)

val cycle_period : ?algorithm:Registry.algorithm -> t -> (Ratio.t * event list) option
(** The asymptotic cycle period and the events of a critical cycle;
    [None] if the rule graph is acyclic (a non-repetitive system).
    @raise Invalid_argument if some dependency cycle has zero total
    offset (the circuit would deadlock / the period is ill-defined). *)

val simulate : t -> occurrences:int -> int array array
(** [simulate t ~occurrences] returns [times] with
    [times.(k).(f)] = time of occurrence [k] of event [f], from the
    recurrence [t_f(k) = max over rules (e,f,d,ε) of t_e(k−ε) + d]
    (occurrences before 0 happen at time 0).  Used by the tests as an
    independent oracle: [t_f(k)/k] converges to the cycle period.
    @raise Invalid_argument if a zero-offset dependency cycle exists. *)

(** The batch solve engine: parallel execution over an {!Executor}
    pool, an LRU result cache keyed by structural {!Fingerprint}s, and
    a deadline-aware algorithm portfolio for [Auto] requests.

    {b Determinism.}  Engine results are indistinguishable from a fresh
    [Solver.solve] on the same request: the engine reuses
    [Solver.preflight], the same SCC enumeration order, and the same
    first-best tie-breaking.  Batches are deduplicated by cache key at
    submission and collected in request order, so response lines and
    cache hit/miss counters are byte-identical across [--jobs]
    settings (only wall times vary, and {!response_line} omits them by
    default).

    {b Portfolio.}  [Auto] requests run Howard under an iteration
    budget, falling back to HO (level budget) and finally Karp2
    (unbudgeted, so the portfolio always terminates exactly).  A
    per-request deadline is a shared absolute wall-clock bound across
    all attempts and SCC subtasks; exceeding it yields [Timeout] with
    the best partial result over completed components. *)

type cache_entry =
  | E_exact of {
      e_lambda : Ratio.t;
      e_cycle : int list;
      e_components : int;
      e_algorithm : string;
      e_cert : Ratio.t option;
          (** the mode=exact rational certificate, when one was computed;
              kept in the entry because exact and float answers live
              under distinct cache keys ([Request.key.kmode]) *)
    }
  | E_approx of {
      a_lo : Ratio.t;
      a_hi : Ratio.t;
      a_cycle : int list;
      a_eps : float;
      a_scale : float;
      a_components : int;
      a_tests : int;
      a_rounds : int;
      a_converged : bool;
    }

type outcome =
  | Solved of {
      lambda : Ratio.t;  (** optimum, in the request's objective sign *)
      cycle : int list;  (** witness cycle, arc ids of the request graph *)
      components : int;  (** nontrivial SCCs examined *)
      algorithm : string;
          (** the algorithm that produced it — a {!Registry.name}, or a
              lane name such as ["exact"] *)
      cached : bool;  (** served from the LRU / batch dedup *)
      fallbacks : int;  (** portfolio steps taken past the first *)
      certified : bool;  (** [Verify.certify] passed (verify requests) *)
      exact : Ratio.t option;
          (** [mode=exact] requests: λ* recomputed from the witness
              cycle's integer weight/transit sums
              ({!Verify.rational_certificate}), never from the solver's
              iterate.  Always canonical: [den > 0], [gcd = 1]. *)
    }
  | Approximate of {
      lo : Ratio.t;  (** certified: [lo <= λ* <= hi], objective sign *)
      hi : Ratio.t;
      cycle : int list;  (** witness attaining the achievable endpoint *)
      eps : float;  (** requested relative tolerance *)
      scale : float;  (** width target was [eps·scale] *)
      components : int;
      tests : int;  (** binary-search λ-tests *)
      rounds : int;  (** value-iteration rounds *)
      certified : bool;  (** width target reached (budget didn't cut in) *)
      cached : bool;
      fallback : bool;  (** served by the Auto deadline fallback *)
      verified : bool;  (** witness recheck passed (verify requests) *)
    }
      (** a certified ε-interval from the approx lane: algorithm=approx
          requests, or Auto requests with approx-eps whose deadline the
          exact portfolio missed *)
  | Acyclic  (** no cycle exists; mirrors [ocr solve] exit 2 *)
  | Timeout of { partial : Ratio.t option; attempted : string list }
      (** deadline fired; [partial] is the best bound over completed
          components, [attempted] the algorithms tried in order *)
  | Rejected of string  (** preflight or certification failure *)

type response = {
  id : int;
  path : string;
  outcome : outcome;
  wall_ms : float;
}

type t

val create : ?jobs:int -> ?cache_size:int -> ?now:(unit -> float) -> unit -> t
(** [jobs] defaults to 1 (inline, no domains); [cache_size] to 256
    entries ([<= 0] disables caching); [now] to [Unix.gettimeofday]
    and is injectable for tests. *)

val jobs : t -> int

val pool : t -> Executor.t
(** The engine's executor — shareable with co-hosted [Dyn] sessions
    (cluster workers run the batch engine and their sticky dyn
    sessions on one pool) so a process never oversubscribes domains. *)

val resize_cache : t -> int -> unit
(** Re-budget the result LRU in place ({!Lru.resize} semantics). *)

val telemetry : t -> Telemetry.t
(** Cumulative over the engine's lifetime; read it only from the
    thread driving {!solve} / {!run_batch}. *)

val metrics_snapshot : t -> Metrics.t
(** A fresh registry holding the engine's cumulative counters
    ([ocr_requests_total], [ocr_cache_hits_total], ...), the
    [ocr_solve_latency_ms] histogram (always recorded, independent of
    the tracing switch), and the executor pool-health sample.  Export
    with {!Metrics.to_prometheus} or {!Metrics.pp_summary}; call it
    from the coordinator thread only. *)

val solve : t -> Request.t -> response
(** Serve one request: probe the cache (re-certifying the hit against
    the request's actual graph when [verify] is set — a failing
    certificate is counted as a fingerprint collision and re-solved),
    else solve fresh, fanning nontrivial SCCs across the pool, and
    insert the result. *)

val run_batch : t -> Request.t list -> response list
(** Solve a batch: requests are deduplicated by cache key, unique
    misses run in parallel across the pool, and responses come back in
    request order.  Duplicates and cache hits report [cached=true]. *)

val response_line : ?wall:bool -> response -> string
(** One-line rendering, deterministic by default; [~wall:true] appends
    the (nondeterministic) wall time. *)

val shutdown : t -> unit

type alg_counters = {
  mutable runs : int;           (* successful solves attributed to the alg *)
  mutable blowouts : int;       (* iteration-budget escapes *)
  mutable alg_wall_ms : float;  (* wall time inside the algorithm attempts *)
}

type t = {
  mutable requests : int;
  mutable solved : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable acyclic : int;
  mutable timeouts : int;
  mutable rejected : int;
  mutable approx : int;         (* approx-lane answers (direct or fallback) *)
  mutable approx_iterations : int; (* value-iteration rounds in the lane *)
  mutable exact : int;          (* answers carrying a rational certificate *)
  mutable fallbacks : int;      (* portfolio steps taken past the first *)
  mutable collisions : int;     (* cache hits invalidated by verification *)
  mutable wall_ms : float;      (* end-to-end request wall time *)
  per_alg : (string, alg_counters) Hashtbl.t;
  ops : Stats.t;                (* merged per-domain operation counters *)
}

let create () =
  {
    requests = 0;
    solved = 0;
    cache_hits = 0;
    cache_misses = 0;
    acyclic = 0;
    timeouts = 0;
    rejected = 0;
    approx = 0;
    approx_iterations = 0;
    exact = 0;
    fallbacks = 0;
    collisions = 0;
    wall_ms = 0.0;
    per_alg = Hashtbl.create 8;
    ops = Stats.create ();
  }

let alg_cell t name =
  match Hashtbl.find_opt t.per_alg name with
  | Some c -> c
  | None ->
    let c = { runs = 0; blowouts = 0; alg_wall_ms = 0.0 } in
    Hashtbl.replace t.per_alg name c;
    c

let record_run t name ~wall_ms =
  let c = alg_cell t name in
  c.runs <- c.runs + 1;
  c.alg_wall_ms <- c.alg_wall_ms +. wall_ms

let record_blowout t name ~wall_ms =
  let c = alg_cell t name in
  c.blowouts <- c.blowouts + 1;
  c.alg_wall_ms <- c.alg_wall_ms +. wall_ms;
  t.fallbacks <- t.fallbacks + 1

let record_ops t stats = Stats.add t.ops stats

let add acc x =
  acc.requests <- acc.requests + x.requests;
  acc.solved <- acc.solved + x.solved;
  acc.cache_hits <- acc.cache_hits + x.cache_hits;
  acc.cache_misses <- acc.cache_misses + x.cache_misses;
  acc.acyclic <- acc.acyclic + x.acyclic;
  acc.timeouts <- acc.timeouts + x.timeouts;
  acc.rejected <- acc.rejected + x.rejected;
  acc.approx <- acc.approx + x.approx;
  acc.approx_iterations <- acc.approx_iterations + x.approx_iterations;
  acc.exact <- acc.exact + x.exact;
  acc.fallbacks <- acc.fallbacks + x.fallbacks;
  acc.collisions <- acc.collisions + x.collisions;
  acc.wall_ms <- acc.wall_ms +. x.wall_ms;
  Hashtbl.iter
    (fun name c ->
      let a = alg_cell acc name in
      a.runs <- a.runs + c.runs;
      a.blowouts <- a.blowouts + c.blowouts;
      a.alg_wall_ms <- a.alg_wall_ms +. c.alg_wall_ms)
    x.per_alg;
  Stats.add acc.ops x.ops

let merge a b =
  let t = create () in
  add t a;
  add t b;
  t

let hit_rate t =
  if t.requests = 0 then 0.0
  else float_of_int t.cache_hits /. float_of_int t.requests

let sorted_algs t =
  Hashtbl.fold (fun name c acc -> (name, c) :: acc) t.per_alg []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Deterministic counters only — no wall times — so batch summaries are
   byte-identical across --jobs settings. *)
let pp_summary ppf t =
  Format.fprintf ppf
    "requests=%d solved=%d approx=%d exact=%d acyclic=%d timeouts=%d \
     rejected=%d@,"
    t.requests t.solved t.approx t.exact t.acyclic t.timeouts t.rejected;
  Format.fprintf ppf
    "cache: hits=%d misses=%d collisions=%d hit-rate=%.2f@," t.cache_hits
    t.cache_misses t.collisions (hit_rate t);
  Format.fprintf ppf "portfolio: fallbacks=%d" t.fallbacks;
  List.iter
    (fun (name, c) ->
      Format.fprintf ppf "@,alg %s: runs=%d blowouts=%d" name c.runs
        c.blowouts)
    (sorted_algs t)

let to_csv t =
  let b = Buffer.create 512 in
  Buffer.add_string b "metric,value\n";
  (* metric names embed user-supplied algorithm names: RFC 4180 quoting
     keeps a name containing a comma, quote or newline on one record *)
  let i k v =
    Buffer.add_string b (Printf.sprintf "%s,%d\n" (Obs.csv_field k) v)
  in
  let f k v =
    Buffer.add_string b (Printf.sprintf "%s,%.3f\n" (Obs.csv_field k) v)
  in
  i "requests" t.requests;
  i "solved" t.solved;
  i "cache_hits" t.cache_hits;
  i "cache_misses" t.cache_misses;
  i "cache_collisions" t.collisions;
  i "acyclic" t.acyclic;
  i "timeouts" t.timeouts;
  i "rejected" t.rejected;
  i "approx" t.approx;
  i "approx_iterations" t.approx_iterations;
  i "exact" t.exact;
  i "fallbacks" t.fallbacks;
  f "wall_ms" t.wall_ms;
  i "ops_iterations" t.ops.Stats.iterations;
  i "ops_relaxations" t.ops.Stats.relaxations;
  i "ops_arcs_visited" t.ops.Stats.arcs_visited;
  i "ops_cycles_examined" t.ops.Stats.cycles_examined;
  List.iter
    (fun (name, c) ->
      i (Printf.sprintf "alg_%s_runs" name) c.runs;
      i (Printf.sprintf "alg_%s_blowouts" name) c.blowouts;
      f (Printf.sprintf "alg_%s_wall_ms" name) c.alg_wall_ms)
    (sorted_algs t);
  Buffer.contents b

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  let first = ref true in
  (* Obs.json_string, not %S: OCaml literal syntax escapes bytes >= 128
     as decimal \ddd which is invalid JSON *)
  let field k v =
    if not !first then Buffer.add_string b ", ";
    first := false;
    Buffer.add_string b (Printf.sprintf "%s: %s" (Obs.json_string k) v)
  in
  let i k v = field k (string_of_int v) in
  let f k v = field k (Printf.sprintf "%.3f" v) in
  i "requests" t.requests;
  i "solved" t.solved;
  i "cache_hits" t.cache_hits;
  i "cache_misses" t.cache_misses;
  i "cache_collisions" t.collisions;
  i "acyclic" t.acyclic;
  i "timeouts" t.timeouts;
  i "rejected" t.rejected;
  i "approx" t.approx;
  i "approx_iterations" t.approx_iterations;
  i "exact" t.exact;
  i "fallbacks" t.fallbacks;
  f "wall_ms" t.wall_ms;
  field "algorithms"
    (let parts =
       List.map
         (fun (name, c) ->
           Printf.sprintf "{\"name\": %s, \"runs\": %d, \"blowouts\": %d, \
                           \"wall_ms\": %.3f}"
             (Obs.json_string name) c.runs c.blowouts c.alg_wall_ms)
         (sorted_algs t)
     in
     "[" ^ String.concat ", " parts ^ "]");
  Buffer.add_string b "}";
  Buffer.contents b

(* Engine-side driver for dynamic sessions: one Dyn.t plus the engine's
   LRU result cache and telemetry, speaking the NDJSON protocol of
   Dyn_protocol line by line.  The cache is keyed by the session's
   per-epoch structural fingerprint, so a stream that returns to an
   earlier graph (undo patterns, A/B probing) answers without
   re-solving; witnesses are stored as graph-arc ids — stable under
   fingerprint equality — and mapped back to current session ids on a
   hit. *)

type cached = {
  c_lambda : Ratio.t;
  c_cycle : int list; (* graph-arc ids of the fingerprinted graph *)
  c_components : int;
}

let sp_query = Obs.intern "dyn.query"

type t = {
  session : Dyn.t;
  cache : (Fingerprint.t, cached option) Lru.t;
      (* [None] caches "acyclic" *)
  tel : Telemetry.t;
  latency : Metrics.histogram; (* per-query wall ms, hits included *)
  lat_reg : Metrics.t;
  journal : (string -> unit) option;
}

let create ?(cache_size = 256) ?journal session =
  let lat_reg = Metrics.create () in
  { session; cache = Lru.create ~capacity:cache_size; tel = Telemetry.create ();
    latency = Metrics.histogram lat_reg "ocr_solve_latency_ms"; lat_reg;
    journal }

let session t = t.session
let telemetry t = t.tel

let float_of_ratio r = Ratio.to_float r

let ok_fields t rest =
  ("ok", "true") :: ("epoch", string_of_int (Dyn.epoch t.session)) :: rest

let answer_line t ~cached ~resolved ?(exact = []) = function
  | None -> Njson.obj (ok_fields t [ ("acyclic", "true") ])
  | Some (lambda, cycle, components) ->
    Njson.obj
      (ok_fields t
         (("lambda", Njson.escape (Ratio.to_string lambda))
          :: ("float", Printf.sprintf "%.6f" (float_of_ratio lambda))
          :: exact
         @ [
             ("cycle", Njson.int_array cycle);
             ("components", string_of_int components);
             ("resolved", string_of_int resolved);
             ("cached", string_of_bool cached);
           ]))

(* mode=exact: recompute λ from the witness cycle's integer sums over
   the session's *current* weights — never the (possibly cached) float
   iterate — and cross-check before answering.  A disagreement means a
   stale or corrupt answer and is rejected rather than certified;
   Invalid_argument rides the existing rejection path in [handle], so
   the stream survives. *)
let exact_fields t lambda cycle =
  let w =
    List.fold_left (fun s a -> s + Dyn.arc_weight t.session a) 0 cycle
  in
  let d =
    match Dyn.problem t.session with
    | Solver.Cycle_mean -> List.length cycle
    | Solver.Cycle_ratio ->
      List.fold_left (fun s a -> s + Dyn.arc_transit t.session a) 0 cycle
  in
  if d <= 0 then
    invalid_arg "exact certificate: witness cycle has non-positive denominator";
  let cert = Ratio.make w d in
  if not (Ratio.equal cert lambda) then
    invalid_arg
      (Printf.sprintf
         "exact certificate: cycle sums give %s, session answered %s"
         (Ratio.to_string cert) (Ratio.to_string lambda));
  t.tel.Telemetry.exact <- t.tel.Telemetry.exact + 1;
  [
    ("lambda_num", string_of_int (Ratio.num cert));
    ("lambda_den", string_of_int (Ratio.den cert));
  ]

let telemetry_line t =
  let tel = t.tel in
  Njson.obj
    [
      ("ok", "true");
      ("requests", string_of_int tel.Telemetry.requests);
      ("solved", string_of_int tel.Telemetry.solved);
      ("approx", string_of_int tel.Telemetry.approx);
      ("exact", string_of_int tel.Telemetry.exact);
      ("acyclic", string_of_int tel.Telemetry.acyclic);
      ("rejected", string_of_int tel.Telemetry.rejected);
      ("cache_hits", string_of_int tel.Telemetry.cache_hits);
      ("cache_misses", string_of_int tel.Telemetry.cache_misses);
      ("cache_entries", string_of_int (Lru.length t.cache));
    ]

(* The same registry shape the batch engine snapshots: deterministic
   counters first, then the latency histogram (always recorded — the
   tracing switch gates spans, not metrics). *)
let metrics_snapshot t =
  let m = Metrics.create () in
  let tel = t.tel in
  let c name v = Metrics.add (Metrics.counter m name) v in
  c "ocr_requests_total" tel.Telemetry.requests;
  c "ocr_solved_total" tel.Telemetry.solved;
  c "ocr_approx_total" tel.Telemetry.approx;
  c "ocr_approx_iterations" tel.Telemetry.approx_iterations;
  c "ocr_exact_total" tel.Telemetry.exact;
  c "ocr_cache_hits_total" tel.Telemetry.cache_hits;
  c "ocr_cache_misses_total" tel.Telemetry.cache_misses;
  c "ocr_acyclic_total" tel.Telemetry.acyclic;
  c "ocr_rejected_total" tel.Telemetry.rejected;
  Metrics.set (Metrics.gauge m "ocr_cache_entries") (float_of_int (Lru.length t.cache));
  Metrics.merge_into ~into:m t.lat_reg;
  m

(* NDJSON metrics snapshot for the stream protocol: counters plus a
   latency digest.  Quantiles are log2-bucket upper bounds, so the
   numbers are coarse but stable. *)
let metrics_line t =
  let tel = t.tel in
  let h = t.latency in
  Njson.obj
    [
      ("ok", "true");
      ("requests", string_of_int tel.Telemetry.requests);
      ("cache_hits", string_of_int tel.Telemetry.cache_hits);
      ("cache_misses", string_of_int tel.Telemetry.cache_misses);
      ("latency_count", string_of_int (Metrics.hist_count h));
      ("latency_mean_ms", Printf.sprintf "%.3f" (Metrics.hist_mean h));
      ("latency_p50_ms", Printf.sprintf "%g" (Metrics.quantile h 0.5));
      ("latency_p99_ms", Printf.sprintf "%g" (Metrics.quantile h 0.99));
      ("latency_max_ms", Printf.sprintf "%.3f" (Metrics.hist_max h));
    ]

let log_journal t op =
  match t.journal with
  | Some log -> log (Dyn_protocol.render_op op)
  | None -> ()

let do_query_inner t ~exact =
  t.tel.Telemetry.requests <- t.tel.Telemetry.requests + 1;
  let fp = Dyn.fingerprint t.session in
  match Lru.find t.cache fp with
  | Some entry ->
    t.tel.Telemetry.cache_hits <- t.tel.Telemetry.cache_hits + 1;
    (match entry with
    | None ->
      t.tel.Telemetry.acyclic <- t.tel.Telemetry.acyclic + 1;
      answer_line t ~cached:true ~resolved:0 None
    | Some c ->
      t.tel.Telemetry.solved <- t.tel.Telemetry.solved + 1;
      let cycle = List.map (Dyn.of_graph_arc t.session) c.c_cycle in
      let ex = if exact then exact_fields t c.c_lambda cycle else [] in
      answer_line t ~cached:true ~resolved:0 ~exact:ex
        (Some (c.c_lambda, cycle, c.c_components)))
  | None -> (
    t.tel.Telemetry.cache_misses <- t.tel.Telemetry.cache_misses + 1;
    match Dyn.query t.session with
    | None ->
      t.tel.Telemetry.acyclic <- t.tel.Telemetry.acyclic + 1;
      Lru.add t.cache fp None;
      answer_line t ~cached:false ~resolved:0 None
    | Some r ->
      t.tel.Telemetry.solved <- t.tel.Telemetry.solved + 1;
      Telemetry.record_ops t.tel r.Dyn.stats;
      Lru.add t.cache fp
        (Some
           {
             c_lambda = r.Dyn.lambda;
             c_cycle = List.map (Dyn.to_graph_arc t.session) r.Dyn.cycle;
             c_components = r.Dyn.components;
           });
      let ex = if exact then exact_fields t r.Dyn.lambda r.Dyn.cycle else [] in
      answer_line t ~cached:false ~resolved:r.Dyn.resolved ~exact:ex
        (Some (r.Dyn.lambda, r.Dyn.cycle, r.Dyn.components)))

(* Approximate query: a certified interval over the session's current
   graph, answered by the approx lane rather than the incremental exact
   core.  Deliberately uncached — the LRU holds exact answers keyed by
   fingerprint, and an eps-wide interval must never shadow them (nor
   vice versa: a later exact query still re-solves). *)
let do_query_approx t ~eps =
  t.tel.Telemetry.requests <- t.tel.Telemetry.requests + 1;
  t.tel.Telemetry.cache_misses <- t.tel.Telemetry.cache_misses + 1;
  let g = Dyn.graph t.session in
  let stats = Stats.create () in
  match
    Approx.solve ~stats ~problem:(Dyn.problem t.session)
      ~objective:(Dyn.objective t.session) ~eps g
  with
  | None ->
    t.tel.Telemetry.acyclic <- t.tel.Telemetry.acyclic + 1;
    Njson.obj (ok_fields t [ ("acyclic", "true") ])
  | Some (c : Approx.certificate) ->
    t.tel.Telemetry.approx <- t.tel.Telemetry.approx + 1;
    t.tel.Telemetry.approx_iterations <-
      t.tel.Telemetry.approx_iterations + c.Approx.rounds;
    Telemetry.record_ops t.tel stats;
    let cycle = List.map (Dyn.of_graph_arc t.session) c.Approx.witness in
    Njson.obj
      (ok_fields t
         [
           ("lambda_lo", Njson.escape (Ratio.to_string c.Approx.lo));
           ("lambda_hi", Njson.escape (Ratio.to_string c.Approx.hi));
           ("lo_float", Printf.sprintf "%.6f" (float_of_ratio c.Approx.lo));
           ("hi_float", Printf.sprintf "%.6f" (float_of_ratio c.Approx.hi));
           ("eps", Njson.float_lit c.Approx.eps);
           ("certified", string_of_bool c.Approx.converged);
           ("cycle", Njson.int_array cycle);
           ("components", string_of_int c.Approx.components);
           ("cached", "false");
         ])

(* Wraps the query in its span and latency observation; a rejected
   query (Invalid_argument propagating to [handle]) closes the span on
   the way out so the trace stays balanced. *)
let do_query ?eps ?(exact = false) t =
  if !Obs.enabled_flag then Trace.begin_span sp_query;
  let t0 = Obs.now_ns () in
  let finish () =
    Metrics.observe t.latency (float_of_int (Obs.now_ns () - t0) /. 1e6);
    if !Obs.enabled_flag then Trace.end_span sp_query
  in
  let run () =
    match eps with
    | None -> do_query_inner t ~exact
    | Some e -> do_query_approx t ~eps:e
  in
  match run () with
  | reply ->
    finish ();
    reply
  | exception e ->
    finish ();
    raise e

(* One request line -> one response line (or Quit).  Every failure —
   unparsable line, unknown op, bad arc id, ill-posed instance — turns
   into a structured error line and the stream continues; the session
   state is unchanged by failed requests. *)
let handle t line =
  let reject msg =
    t.tel.Telemetry.rejected <- t.tel.Telemetry.rejected + 1;
    `Reply (Dyn_protocol.error_line msg)
  in
  match Dyn_protocol.parse line with
  | Error msg -> reject msg
  | Ok op -> (
    match op with
    | Dyn_protocol.Quit -> `Quit
    | Dyn_protocol.Epoch -> `Reply (Njson.obj (ok_fields t []))
    | Dyn_protocol.Fingerprint_op ->
      `Reply
        (Njson.obj
           (ok_fields t
              [ ("fingerprint",
                 Njson.escape (Fingerprint.to_hex (Dyn.fingerprint t.session)))
              ]))
    | Dyn_protocol.Telemetry_op -> `Reply (telemetry_line t)
    | Dyn_protocol.Metrics_op -> `Reply (metrics_line t)
    | Dyn_protocol.Query { q_eps; q_exact } -> (
      match do_query ?eps:q_eps ~exact:q_exact t with
      | reply ->
        log_journal t op;
        `Reply reply
      | exception Invalid_argument msg -> reject msg)
    | Dyn_protocol.Update u -> (
      match u with
      | Dyn.Add_arc { arc = _; src; dst; weight; transit } -> (
        match Dyn.add_arc t.session ~src ~dst ~weight ~transit with
        | id ->
          log_journal t
            (Dyn_protocol.Update (Dyn.Add_arc { arc = id; src; dst; weight; transit }));
          `Reply (Njson.obj (ok_fields t [ ("arc", string_of_int id) ]))
        | exception Invalid_argument msg -> reject msg)
      | u -> (
        match Dyn.apply t.session u with
        | () ->
          log_journal t (Dyn_protocol.Update u);
          `Reply (Njson.obj (ok_fields t []))
        | exception Invalid_argument msg -> reject msg)))
